package dpc_test

import (
	"testing"

	dpc "repro"
	"repro/datasets"
)

// TestArbitraryShapes verifies the density-based-clustering motivation of
// the paper's introduction end-to-end: DPC separates interleaved moons
// and spirals that centroid methods cannot.
func TestArbitraryShapesMoons(t *testing.T) {
	ds := datasets.TwoMoons(4000, 100, 3, 1)
	// Near-uniform filaments carry several local density peaks, so the
	// thresholds come from the decision graph for the known k=2 (the
	// paper's Figure 1 workflow).
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.0001}
	probe, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	dm, ok := dpc.SuggestDeltaMin(probe, 2, ds.RhoMin)
	if !ok {
		t.Fatal("no threshold for k=2")
	}
	p.DeltaMin = dm
	res, err := dpc.ClusterDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 2 {
		t.Fatalf("moons: %d clusters, want 2", res.NumClusters())
	}
	// Even/odd indices belong to opposite moons; check purity.
	bad := 0
	counts := [2]map[int32]int{{}, {}}
	for i, l := range res.Labels {
		counts[i%2][l]++
	}
	for m := 0; m < 2; m++ {
		best, total := 0, 0
		for _, c := range counts[m] {
			total += c
			if c > best {
				best = c
			}
		}
		bad += total - best
	}
	if float64(bad) > 0.05*float64(ds.Points.N) {
		t.Errorf("moons: %d of %d points mis-clustered", bad, ds.Points.N)
	}
}

func TestArbitraryShapesSpirals(t *testing.T) {
	ds := datasets.Spirals(2200, 3, 2, 0.1, 2)
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.0001}
	probe, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	dm, ok := dpc.SuggestDeltaMin(probe, 3, ds.RhoMin)
	if !ok {
		t.Fatal("no threshold for k=3")
	}
	p.DeltaMin = dm
	res, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters() != 3 {
		t.Fatalf("spirals: %d clusters, want 3", res.NumClusters())
	}
	// Points are emitted arm by arm, so arm membership is contiguous.
	perArm := ds.Points.N / 3
	bad := 0
	for m := 0; m < 3; m++ {
		counts := map[int32]int{}
		for i := m * perArm; i < (m+1)*perArm; i++ {
			counts[res.Labels[i]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		bad += perArm - best
	}
	if float64(bad) > 0.10*float64(ds.Points.N) {
		t.Errorf("spirals: %d of %d points mis-clustered", bad, ds.Points.N)
	}
}

func TestHaloPublicAPI(t *testing.T) {
	ds := datasets.SSet(3, 4000, 3) // heavy overlap: halos must exist
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.0001}
	probe, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	if dm, ok := dpc.SuggestDeltaMin(probe, 15, ds.RhoMin); ok {
		p.DeltaMin = dm
	}
	res, err := dpc.ClusterDataset(ds.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	halo, err := dpc.ComputeHaloDataset(ds.Points, res, p.DCut, 4)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, h := range halo {
		if h {
			count++
		}
	}
	if count == 0 {
		t.Error("overlapping S3 clusters should produce halo points")
	}
	if count > ds.Points.N*9/10 {
		t.Errorf("halo covers %d of %d points — too aggressive", count, ds.Points.N)
	}
}
