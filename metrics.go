package dpc

import "repro/internal/eval"

// RandIndex returns the Rand index of two labelings in [0, 1] — the
// accuracy measure of the paper's Tables 2-5, computed from a contingency
// table in O(n + clusters^2). Noise (-1) counts as one ordinary class.
func RandIndex(a, b []int32) float64 { return eval.RandIndex(a, b) }

// AdjustedRandIndex returns the chance-corrected Rand index.
func AdjustedRandIndex(a, b []int32) float64 { return eval.AdjustedRandIndex(a, b) }

// Purity returns the fraction of points whose predicted cluster's
// majority true label matches their own.
func Purity(truth, pred []int32) float64 { return eval.Purity(truth, pred) }
