// Drift-aware serving: fit a model once, stream traffic at it, then
// shift the incoming distribution and watch the daemon notice — the
// drift tracker trips, a background refit runs on the slid window, and
// the served model swaps atomically while every assign keeps answering.
// Demonstrates POST /v1/points (sliding-window append), GET /v1/drift,
// and the automatic background refit, all over the real HTTP surface.
//
//	go run ./examples/drift-refit
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/api"
	"repro/datasets"
	"repro/internal/drift"
	"repro/internal/service"
)

func main() {
	// An in-process dpcd with a demo-friendly drift policy: small windows
	// so the trip shows up after a few hundred points instead of the
	// production default of thousands, and a short cooldown.
	ref := datasets.SSet(2, 4000, 1)
	n := ref.Points.N
	svc := service.New(service.Options{
		Workers: 2,
		Window:  int64(n),
		Drift: &drift.Config{
			WindowPoints:  256,
			MinPoints:     256,
			HaloThreshold: 0.5,
			Cooldown:      time.Second,
		},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("dpcd serving on %s (window=%d, halo trip at 50%%)\n", base, n)

	client := service.NewClient(base, service.ClientOptions{})
	if _, err := svc.PutDataset("s2", ref.Points); err != nil {
		log.Fatal(err)
	}
	fit := api.FitRequest{
		Dataset: "s2", Algorithm: "Ex-DPC",
		Params: api.Params{DCut: ref.DCut, RhoMin: ref.RhoMin, DeltaMin: ref.DeltaMin},
	}

	// Phase 1: in-distribution traffic. Points near the training data
	// label cleanly and the tracker stays quiet.
	batch := func(offset float64) [][]float64 {
		pts := make([][]float64, 256)
		for i := range pts {
			row := ref.Points.At(i % n)
			q := make([]float64, len(row))
			for j, x := range row {
				q[j] = x + offset
			}
			pts[i] = q
		}
		return pts
	}
	noise := func(labels []int32) int {
		c := 0
		for _, l := range labels {
			if l == -1 {
				c++
			}
		}
		return c
	}
	resp, err := client.Assign(api.AssignRequest{FitRequest: fit, Points: batch(0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 1 — stable traffic: %d/%d noise across %d clusters\n",
		noise(resp.Labels), len(resp.Labels), resp.Clusters)
	dr, err := client.Drift("s2", "Ex-DPC")
	if err != nil {
		log.Fatal(err)
	}
	m := dr.Models[0]
	fmt.Printf("  /v1/drift: version=%d observed=%d tripped=%v\n",
		m.Version, m.Status.Observed, m.Status.Tripped)

	// Phase 2: the world moves. A window-sized append replaces the
	// dataset with the same structure translated far away — the model on
	// record was fitted somewhere else entirely.
	const shift = 1e7
	shiftedAll := make([][]float64, n)
	for i := range shiftedAll {
		row := ref.Points.At(i)
		q := make([]float64, len(row))
		for j, x := range row {
			q[j] = x + shift
		}
		shiftedAll[i] = q
	}
	ap, err := client.AppendPoints(api.AppendRequest{Dataset: "s2", Points: shiftedAll})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 2 — window slide: appended %d, expired %d, dataset now version %d\n",
		ap.Appended, ap.Expired, ap.Version)

	// Phase 3: shifted traffic against the stale model is all noise —
	// the halo rate trips the tracker and kicks the background refit.
	// The old model answers every request in the meantime. (On a fast
	// machine the refit can land between these two calls; the stats at
	// the end prove the trip happened either way.)
	resp, err = client.Assign(api.AssignRequest{FitRequest: fit, Points: batch(shift)})
	if err != nil {
		log.Fatal(err)
	}
	dr, err = client.Drift("s2", "Ex-DPC")
	if err != nil {
		log.Fatal(err)
	}
	m = dr.Models[0]
	fmt.Printf("\nphase 3 — shifted traffic: %d/%d noise on the stale model\n",
		noise(resp.Labels), len(resp.Labels))
	fmt.Printf("  /v1/drift: version=%d halo_rate=%.2f tripped=%v refitting=%v\n",
		m.Version, m.Status.HaloRate, m.Status.Tripped, m.Refitting)

	// Phase 4: wait for the swap, then verify the same shifted points now
	// label cleanly — the daemon refitted itself on the slid window.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		dr, err = client.Drift("s2", "Ex-DPC")
		if err != nil {
			log.Fatal(err)
		}
		if m = dr.Models[0]; m.Version == ap.Version && !m.Refitting {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if m.Version != ap.Version {
		log.Fatalf("refit never swapped in (still serving version %d)", m.Version)
	}
	resp, err = client.Assign(api.AssignRequest{FitRequest: fit, Points: batch(shift)})
	if err != nil {
		log.Fatal(err)
	}
	if nz := noise(resp.Labels); nz == len(resp.Labels) {
		log.Fatal("refit swapped but shifted points still label as noise")
	}
	st, err := client.LocalStats()
	if err != nil {
		log.Fatal(err)
	}
	if st.DriftTrips == 0 || st.DriftRefits == 0 {
		log.Fatalf("expected a trip and a refit, got trips=%d refits=%d", st.DriftTrips, st.DriftRefits)
	}
	fmt.Printf("\nphase 4 — after the background refit:\n")
	fmt.Printf("  serving version %d, %d/%d noise across %d clusters\n",
		m.Version, noise(resp.Labels), len(resp.Labels), resp.Clusters)
	fmt.Printf("  stats: drift_trips=%d drift_refits=%d stale_serves=%d — zero failed assigns throughout\n",
		st.DriftTrips, st.DriftRefits, st.DriftStaleServes)
}
