// Decision-graph workflow (the paper's Figure 1): when you do not know
// how many clusters a dataset has, run DPC once with a permissive
// threshold, inspect the decision graph — cluster centers stick out with
// large dependent distances — and re-run with the suggested threshold.
//
//	go run ./examples/decisiongraph
//
// Writes decision_graph.svg and clusters.ppm into the working directory.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	dpc "repro"
	"repro/datasets"
	"repro/visual"
)

func main() {
	// S2: 15 Gaussian clusters with moderate overlap, 5000 points.
	ds := datasets.SSet(2, 5000, 1)

	// Pass 1: permissive DeltaMin just above DCut, so nothing is filtered.
	probe := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.0001}
	res, err := dpc.ClusterExactDataset(ds.Points, probe)
	if err != nil {
		log.Fatal(err)
	}

	// The decision graph: the top points by dependent distance.
	fmt.Println("top of the decision graph (rho, delta):")
	for i, p := range dpc.DecisionGraph(res)[:18] {
		delta := fmt.Sprintf("%8.0f", p.Delta)
		if math.IsInf(p.Delta, 1) {
			delta = "     inf"
		}
		marker := ""
		if i == 14 {
			marker = "   <-- elbow: 15 clusters"
		}
		fmt.Printf("  %2d. rho=%7.1f delta=%s%s\n", i+1, p.Rho, delta, marker)
	}

	// Automate the elbow for k=15 and re-run.
	deltaMin, ok := dpc.SuggestDeltaMin(res, 15, ds.RhoMin)
	if !ok {
		log.Fatal("could not suggest a threshold")
	}
	fmt.Printf("\nsuggested delta_min: %.0f\n", deltaMin)

	final := probe
	final.DeltaMin = deltaMin
	res2, err := dpc.ClusterDataset(ds.Points, final) // Approx-DPC: same centers, parallel
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clusters found: %d\n", res2.NumClusters())

	must(writeSVG("decision_graph.svg", res, ds.RhoMin, deltaMin))
	must(writePPM("clusters.ppm", ds.Points, res2.Labels))
	fmt.Println("wrote decision_graph.svg and clusters.ppm")
}

func writeSVG(path string, res *dpc.Result, rhoMin, deltaMin float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return visual.DecisionGraphSVG(f, res, rhoMin, deltaMin, 640, 480)
}

func writePPM(path string, pts *dpc.Dataset, labels []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return visual.ScatterDatasetPPM(f, pts, labels, 800, 800)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
