// Out-of-sample assignment: cluster a reference batch once, then label an
// incoming stream of points against it in real time — the pattern used
// for online workload tagging where re-clustering every batch is too
// expensive. Demonstrates dpc.NewAssigner.
//
//	go run ./examples/stream-assign
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	dpc "repro"
	"repro/datasets"
)

func main() {
	// Reference batch: the PAMAP2-like activity regimes. The dataset's
	// default d_cut targets the paper's multi-million-point cardinality;
	// at 30k points the 4-d space is sparser, so widen the radius to keep
	// in-regime densities above the noise threshold.
	ref := datasets.PAMAP2Like(30000, 1)
	p := dpc.Params{DCut: 2 * ref.DCut, RhoMin: ref.RhoMin, DeltaMin: ref.DeltaMin}
	res, err := dpc.ClusterDataset(ref.Points, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference clustering: %d activity regimes from %d readings (%.2fs)\n",
		res.NumClusters(), ref.Points.N, res.Timing.Total().Seconds())

	assigner, err := dpc.NewAssignerDataset(ref.Points, res, p.DCut)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated stream: points near known regimes plus occasional garbage.
	rng := rand.New(rand.NewSource(99))
	stream := make([][]float64, 0, 50000)
	for i := 0; i < 50000; i++ {
		if rng.Float64() < 0.05 {
			stream = append(stream, []float64{
				rng.Float64() * 1e5, rng.Float64() * 1e5,
				rng.Float64() * 1e5, rng.Float64() * 1e5,
			})
			continue
		}
		base := ref.Points.At(rng.Intn(ref.Points.N))
		q := make([]float64, len(base))
		for j := range q {
			q[j] = base[j] + rng.NormFloat64()*ref.DCut/4
		}
		stream = append(stream, q)
	}

	start := time.Now()
	labels, err := assigner.AssignAll(stream)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	counts := map[int32]int{}
	for _, l := range labels {
		counts[l]++
	}
	fmt.Printf("assigned %d streamed readings in %v (%.0f readings/ms)\n",
		len(stream), elapsed, float64(len(stream))/float64(elapsed.Milliseconds()))
	fmt.Printf("  flagged as anomalous: %d (injected ~%d)\n", counts[dpc.NoCluster], 50000/20)
	shown := 0
	for l, c := range counts {
		if l == dpc.NoCluster {
			continue
		}
		fmt.Printf("  regime %2d: %d readings\n", l, c)
		if shown++; shown == 5 {
			fmt.Println("  ...")
			break
		}
	}
}
