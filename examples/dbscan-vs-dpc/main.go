// DPC vs DBSCAN (the paper's Figure 2 / Example 2): on overlapping
// Gaussian clusters, DBSCAN merges neighbors connected by border points,
// while DPC separates them by their density peaks.
//
//	go run ./examples/dbscan-vs-dpc
//
// Writes dpc_s2.ppm and dbscan_s2.ppm into the working directory.
package main

import (
	"fmt"
	"log"
	"os"

	dpc "repro"
	"repro/datasets"
	"repro/dbscan"
	"repro/visual"
)

func main() {
	ds := datasets.SSet(2, 5000, 1) // 15 Gaussians, moderate overlap

	// DPC with the dataset's default parameters, targeting 15 clusters.
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DCut * 1.0001}
	probe, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		log.Fatal(err)
	}
	if dm, ok := dpc.SuggestDeltaMin(probe, 15, ds.RhoMin); ok {
		p.DeltaMin = dm
	}
	res, err := dpc.ClusterDataset(ds.Points, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DPC:    %d clusters\n", res.NumClusters())

	// DBSCAN parameterized from OPTICS, as the paper does: search for a
	// reachability threshold that yields 15 substantial clusters.
	order := dbscan.OPTICSDataset(ds.Points, 1e9, 5)
	eps, ok := dbscan.ParamsForK(order, 15, 50)
	var db *dbscan.Result
	if ok {
		db = dbscan.ExtractDBSCAN(order, eps)
		big := 0
		counts := map[int32]int{}
		for _, l := range db.Labels {
			if l != dbscan.Noise {
				counts[l]++
			}
		}
		for _, c := range counts {
			if c >= 50 {
				big++
			}
		}
		fmt.Printf("DBSCAN: %d substantial clusters (of %d total, rest are fragments) at eps=%.0f via OPTICS\n",
			big, db.NumClusters, eps)
	} else {
		db = dbscan.ExtractDBSCAN(order, ds.DCut)
		fmt.Printf("DBSCAN: no threshold yields 15 clusters; at eps=%.0f it finds %d\n",
			ds.DCut, db.NumClusters)
	}

	// How different are the two partitions?
	fmt.Printf("Rand index between DPC and DBSCAN: %.3f\n", dpc.RandIndex(res.Labels, db.Labels))
	fmt.Println("(compare dpc_s2.ppm and dbscan_s2.ppm: DBSCAN merges overlapping blobs)")

	must(writePPM("dpc_s2.ppm", ds.Points, res.Labels))
	must(writePPM("dbscan_s2.ppm", ds.Points, db.Labels))
}

func writePPM(path string, pts *dpc.Dataset, labels []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return visual.ScatterDatasetPPM(f, pts, labels, 800, 800)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
