// Quickstart: cluster a small 2-d point set with Approx-DPC, the
// library's recommended default, and print the clusters.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	dpc "repro"
)

func main() {
	// Three Gaussian blobs plus a few stray points.
	rng := rand.New(rand.NewSource(7))
	var pts [][]float64
	centers := [][]float64{{20, 20}, {80, 25}, {50, 75}}
	for _, c := range centers {
		for i := 0; i < 200; i++ {
			pts = append(pts, []float64{c[0] + rng.NormFloat64()*4, c[1] + rng.NormFloat64()*4})
		}
	}
	pts = append(pts, []float64{5, 95}, []float64{95, 95}, []float64{0, 50})

	res, err := dpc.Cluster(pts, dpc.Params{
		DCut:     5,  // count neighbors within this radius as local density
		RhoMin:   4,  // points with fewer neighbors are noise
		DeltaMin: 20, // cluster centers must be this far from denser points
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("found %d clusters\n", res.NumClusters())
	for l, center := range res.Centers {
		size := 0
		for _, lab := range res.Labels {
			if lab == int32(l) {
				size++
			}
		}
		fmt.Printf("  cluster %d: center at (%.1f, %.1f), %d points\n",
			l, pts[center][0], pts[center][1], size)
	}
	noise := 0
	for _, lab := range res.Labels {
		if lab == dpc.NoCluster {
			noise++
		}
	}
	fmt.Printf("  noise: %d points\n", noise)
	fmt.Printf("timing: rho %.2fms, delta %.2fms\n",
		float64(res.Timing.Rho.Microseconds())/1000,
		float64(res.Timing.Delta.Microseconds())/1000)
}
