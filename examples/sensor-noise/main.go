// Sensor-mode discovery and anomaly flagging on 8-dimensional data — the
// kind of workload the paper's Sensor dataset represents. DPC finds the
// operating-mode clusters; points below the density threshold are flagged
// as anomalous readings. The example also shows the exact/approximate
// trade: S-Approx-DPC processes the same data a large factor faster with
// near-identical mode assignment.
//
//	go run ./examples/sensor-noise
package main

import (
	"fmt"
	"log"

	dpc "repro"
	"repro/datasets"
)

func main() {
	// 40k 8-dimensional readings from ~54 sensor signatures plus 2%
	// background anomalies.
	ds := datasets.SensorLike(40000, 3)
	p := dpc.Params{
		DCut:     ds.DCut,
		RhoMin:   ds.RhoMin,
		DeltaMin: ds.DeltaMin,
		Epsilon:  0.8,
	}

	exact, err := dpc.ClusterExactDataset(ds.Points, p)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := dpc.NewSApproxDPC().ClusterDataset(ds.Points, p)
	if err != nil {
		log.Fatal(err)
	}

	report("Ex-DPC (exact)", exact)
	report("S-Approx-DPC (eps=0.8)", fast)

	speedup := exact.Timing.Total().Seconds() / fast.Timing.Total().Seconds()
	agreement := dpc.RandIndex(exact.Labels, fast.Labels)
	fmt.Printf("\nS-Approx-DPC: %.1fx faster, Rand index %.3f vs exact\n", speedup, agreement)

	// The anomalies: points whose local density never reached RhoMin.
	fmt.Println("\nfirst anomalous readings (exact run):")
	shown := 0
	for i, l := range exact.Labels {
		if l != dpc.NoCluster {
			continue
		}
		fmt.Printf("  reading %6d  rho=%.1f\n", i, exact.Rho[i])
		if shown++; shown == 5 {
			break
		}
	}
}

func report(name string, res *dpc.Result) {
	noise := 0
	for _, l := range res.Labels {
		if l == dpc.NoCluster {
			noise++
		}
	}
	fmt.Printf("%-24s %3d modes, %5d anomalies, %7.3fs (rho %.3fs, delta %.3fs)\n",
		name, res.NumClusters(), noise,
		res.Timing.Total().Seconds(), res.Timing.Rho.Seconds(), res.Timing.Delta.Seconds())
}
