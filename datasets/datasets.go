// Package datasets exposes the evaluation datasets of the SIGMOD 2021
// DPC paper: the Syn random-walk synthetic, the S1-S4 Gaussian family,
// and deterministic synthetic stand-ins for the four real datasets
// (Airline, Household, PAMAP2, Sensor) that cannot be redistributed —
// see DESIGN.md §4 for the substitution rationale. CSV and binary I/O
// round out the package for user-supplied data.
package datasets

import (
	"io"

	"repro/internal/data"
	"repro/internal/geom"
)

// Dataset is a named point set bundled with the paper's default DPC
// parameters for it (DCut, RhoMin, DeltaMin). Its Points field is the
// flat row-major dpc.Dataset representation.
type Dataset = data.Dataset

// Points is the flat point-set type stored in Dataset.Points — the same
// type as dpc.Dataset.
type Points = geom.Dataset

// Syn generates the 2-d random-walk dataset (13 density peaks, domain
// [0,1e5]^2) with the given uniform-noise rate.
func Syn(n int, noiseRate float64, seed int64) *Dataset { return data.Syn(n, noiseRate, seed) }

// SSet generates an S1-S4 style 15-Gaussian benchmark; grade in 1..4
// controls cluster overlap.
func SSet(grade, n int, seed int64) *Dataset { return data.SSet(grade, n, seed) }

// AirlineLike generates the 3-d Airline stand-in (domain [0,1e6]^3).
func AirlineLike(n int, seed int64) *Dataset { return data.AirlineLike(n, seed) }

// HouseholdLike generates the 4-d Household stand-in (domain [0,1e5]^4).
func HouseholdLike(n int, seed int64) *Dataset { return data.HouseholdLike(n, seed) }

// PAMAP2Like generates the 4-d PAMAP2 stand-in (domain [0,1e5]^4).
func PAMAP2Like(n int, seed int64) *Dataset { return data.PAMAP2Like(n, seed) }

// SensorLike generates the 8-d Sensor stand-in (domain [0,1e5]^8).
func SensorLike(n int, seed int64) *Dataset { return data.SensorLike(n, seed) }

// TwoMoons generates the interleaved half-circles benchmark (classic
// arbitrary-shape workload for density-based clustering).
func TwoMoons(n int, radius, noise float64, seed int64) *Dataset {
	return data.TwoMoons(n, radius, noise, seed)
}

// Spirals generates `arms` interleaved Archimedean spirals.
func Spirals(n, arms int, turns, noise float64, seed int64) *Dataset {
	return data.Spirals(n, arms, turns, noise, seed)
}

// Names lists the bundled generator names accepted by Generate, in
// presentation order.
func Names() []string {
	return []string{
		"syn", "s1", "s2", "s3", "s4",
		"airline", "household", "pamap2", "sensor",
		"moons", "spirals",
	}
}

// Generate builds a bundled dataset by name at cardinality n — the
// dispatch cmd/dpcd and scripts use to serve a workload without shipping
// CSV files. ok is false for unknown names. Generators with extra
// parameters use their canonical defaults (Syn: 1% noise; moons: unit
// radius, 5% noise; spirals: 3 arms, 2 turns, 2% noise).
func Generate(name string, n int, seed int64) (*Dataset, bool) {
	switch name {
	case "syn":
		return Syn(n, 0.01, seed), true
	case "s1", "s2", "s3", "s4":
		return SSet(int(name[1]-'0'), n, seed), true
	case "airline":
		return AirlineLike(n, seed), true
	case "household":
		return HouseholdLike(n, seed), true
	case "pamap2":
		return PAMAP2Like(n, seed), true
	case "sensor":
		return SensorLike(n, seed), true
	case "moons":
		return TwoMoons(n, 1, 0.05, seed), true
	case "spirals":
		return Spirals(n, 3, 2, 0.02, seed), true
	}
	return nil, false
}

// Sample returns a uniform sample of a dataset at the given rate (0, 1].
func Sample(d *Dataset, rate float64, seed int64) *Dataset { return data.Sample(d, rate, seed) }

// SaveCSV writes points as comma-separated lines.
func SaveCSV(w io.Writer, ds *Points) error { return data.SaveCSV(w, ds) }

// LoadCSV reads comma/whitespace-separated points; '#' lines are comments.
func LoadCSV(r io.Reader) (*Points, error) { return data.LoadCSV(r) }

// SaveBinary writes points in the compact DPC1 binary format.
func SaveBinary(w io.Writer, ds *Points) error { return data.SaveBinary(w, ds) }

// LoadBinary reads the DPC1 binary format.
func LoadBinary(r io.Reader) (*Points, error) { return data.LoadBinary(r) }

// LoadCSVFile loads a CSV dataset from a path.
func LoadCSVFile(path string) (*Points, error) { return data.LoadCSVFile(path) }

// SaveCSVFile writes a CSV dataset to a path.
func SaveCSVFile(path string, ds *Points) error { return data.SaveCSVFile(path, ds) }
