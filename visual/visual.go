// Package visual renders clustering results and decision graphs as PPM or
// SVG images — the repository's equivalent of the paper's Figures 1, 2,
// and 6. It has no dependencies beyond the standard library.
package visual

import (
	"io"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/vis"
)

// ScatterPPM writes a binary PPM scatter plot of 2-d row-slice points
// colored by cluster label (noise gray); the rows are packed once into
// the flat layout.
func ScatterPPM(w io.Writer, pts [][]float64, labels []int32, width, height int) error {
	return vis.ScatterPPM(w, packPlot(pts), labels, width, height)
}

// ScatterSVG writes an SVG scatter plot of 2-d row-slice points colored
// by label; the rows are packed once into the flat layout.
func ScatterSVG(w io.Writer, pts [][]float64, labels []int32, width, height int) error {
	return vis.ScatterSVG(w, packPlot(pts), labels, width, height)
}

// packPlot packs rows for rendering. An empty set stays a valid (blank)
// plot, as it always was; ragged rows panic loudly rather than render
// misaligned coordinates.
func packPlot(pts [][]float64) *geom.Dataset {
	if len(pts) == 0 {
		return &geom.Dataset{}
	}
	ds, err := geom.PackRows(pts)
	if err != nil {
		panic("visual: " + err.Error())
	}
	return ds
}

// ScatterDatasetPPM renders a flat dataset as a PPM scatter plot with no
// copying — the native path.
func ScatterDatasetPPM(w io.Writer, ds *geom.Dataset, labels []int32, width, height int) error {
	return vis.ScatterPPM(w, ds, labels, width, height)
}

// ScatterDatasetSVG renders a flat dataset as an SVG scatter plot with no
// copying — the native path.
func ScatterDatasetSVG(w io.Writer, ds *geom.Dataset, labels []int32, width, height int) error {
	return vis.ScatterSVG(w, ds, labels, width, height)
}

// DecisionGraphSVG renders a result's decision graph (Figure 1 style);
// selected centers are highlighted.
func DecisionGraphSVG(w io.Writer, res *core.Result, rhoMin, deltaMin float64, width, height int) error {
	return vis.DecisionGraphSVG(w, res.Rho, res.Delta, rhoMin, deltaMin, width, height)
}
