// Package visual renders clustering results and decision graphs as PPM or
// SVG images — the repository's equivalent of the paper's Figures 1, 2,
// and 6. It has no dependencies beyond the standard library.
package visual

import (
	"io"

	"repro/internal/core"
	"repro/internal/vis"
)

// ScatterPPM writes a binary PPM scatter plot of 2-d points colored by
// cluster label (noise gray).
func ScatterPPM(w io.Writer, pts [][]float64, labels []int32, width, height int) error {
	return vis.ScatterPPM(w, pts, labels, width, height)
}

// ScatterSVG writes an SVG scatter plot of 2-d points colored by label.
func ScatterSVG(w io.Writer, pts [][]float64, labels []int32, width, height int) error {
	return vis.ScatterSVG(w, pts, labels, width, height)
}

// DecisionGraphSVG renders a result's decision graph (Figure 1 style);
// selected centers are highlighted.
func DecisionGraphSVG(w io.Writer, res *core.Result, rhoMin, deltaMin float64, width, height int) error {
	return vis.DecisionGraphSVG(w, res.Rho, res.Delta, rhoMin, deltaMin, width, height)
}
