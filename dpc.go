// Package dpc is a fast, multicore-parallel implementation of
// Density-Peaks Clustering (DPC), reproducing Amagata & Hara,
// "Fast Density-Peaks Clustering: Multicore-based Parallelization
// Approach" (SIGMOD 2021).
//
// DPC (Rodriguez & Laio, Science 2014) clusters points by computing, for
// every point, its local density rho (neighbors within a cutoff distance
// d_cut) and its dependent distance delta (distance to the nearest denser
// point). Cluster centers are dense points that are far from any denser
// point; every other point joins the cluster of its nearest denser
// neighbor; low-density points are noise.
//
// Three algorithms from the paper are provided, plus four baselines:
//
//   - ExDPC: exact, kd-tree based, O(n(n^{1-1/d} + rho_avg)); its
//     dependent-point phase is sequential.
//   - ApproxDPC: parameter-free approximation with exact densities and
//     guaranteed-identical cluster centers (Theorem 4); fully parallel.
//   - SApproxDPC: sampling-based approximation with a tunable parameter
//     Epsilon trading accuracy for speed; fully parallel.
//   - Baselines: BruteScan, RtreeScan, LSHDDP, CFSFDPA.
//
// Quick start:
//
//	res, err := dpc.Cluster(points, dpc.Params{
//		DCut:     250,   // density cutoff radius
//		RhoMin:   10,    // noise threshold
//		DeltaMin: 5000,  // cluster-center threshold (> DCut)
//	})
//	// res.Labels[i] is point i's cluster id, or dpc.NoCluster for noise.
//
// When thresholds are unknown, run once, inspect DecisionGraph(res), pick
// DeltaMin (SuggestDeltaMin automates the elbow), and re-run — the
// workflow the paper's Figure 1 illustrates.
package dpc

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Dataset is a flat, row-major point set: one contiguous []float64
// backing array plus N and Dim, with At(i) returning a zero-copy
// subslice. It is the native input representation of every algorithm —
// the [][]float64 entry points pay exactly one copy (FromRows) to reach
// it. Construct with FromRows, or wrap an existing flat buffer with
// NewDataset.
type Dataset = geom.Dataset

// FromRows copies row-slice points into a flat Dataset, validating that
// the rows are rectangular and free of NaN/Inf.
func FromRows(rows [][]float64) (*Dataset, error) { return geom.FromRows(rows) }

// NewDataset wraps an existing flat row-major buffer (len(coords) must
// be a multiple of dim) without copying.
func NewDataset(coords []float64, dim int) *Dataset { return geom.NewDataset(coords, dim) }

// Params are the clustering inputs. See the package comment and
// Definitions 1-5 of the paper.
type Params = core.Params

// Result is a completed clustering. See core.Result for field docs.
type Result = core.Result

// Timing is the decomposed per-phase wall-clock cost of a run.
type Timing = core.Timing

// Algorithm is a runnable DPC implementation.
type Algorithm = core.Algorithm

// DecisionPoint is one (rho, delta) pair of the decision graph.
type DecisionPoint = core.DecisionPoint

// NoCluster labels noise points; NoDependent marks the density peak's
// dependent-point slot.
const (
	NoCluster   = core.NoCluster
	NoDependent = core.NoDependent
)

// NewExDPC returns the paper's exact algorithm (§3).
func NewExDPC() Algorithm { return core.ExDPC{} }

// NewApproxDPC returns the paper's parameter-free approximation (§4). Its
// cluster centers provably equal Ex-DPC's for the same parameters.
func NewApproxDPC() Algorithm { return core.ApproxDPC{} }

// NewSApproxDPC returns the paper's tunable approximation (§5); set
// Params.Epsilon (default 1.0).
func NewSApproxDPC() Algorithm { return core.SApproxDPC{} }

// NewBruteScan returns the O(n^2) straightforward algorithm (§2.1).
func NewBruteScan() Algorithm { return core.Scan{} }

// NewRtreeScan returns the R-tree accelerated scan baseline (§6).
func NewRtreeScan() Algorithm { return core.RtreeScan{} }

// NewLSHDDP returns the LSH-DDP approximate baseline (Zhang et al. 2016).
func NewLSHDDP() Algorithm { return core.LSHDDP{} }

// NewCFSFDPA returns the CFSFDP-A exact baseline (Bai et al. 2017).
func NewCFSFDPA() Algorithm { return core.CFSFDPA{} }

// Algorithms returns all seven implementations in the paper's evaluation
// order; useful for comparative harnesses.
func Algorithms() []Algorithm {
	return []Algorithm{
		core.Scan{}, core.RtreeScan{}, core.LSHDDP{}, core.CFSFDPA{},
		core.ExDPC{}, core.ApproxDPC{}, core.SApproxDPC{},
	}
}

// ByName returns the algorithm with the given paper name ("Ex-DPC",
// "Approx-DPC", "S-Approx-DPC", "Scan", "R-tree + Scan", "LSH-DDP",
// "CFSFDP-A") and ok=false for unknown names.
func ByName(name string) (Algorithm, bool) {
	for _, a := range Algorithms() {
		if a.Name() == name {
			return a, true
		}
	}
	return nil, false
}

// Cluster runs Approx-DPC — the paper's recommended default: fully
// parallel, parameter-free, and center-identical to the exact algorithm.
// The rows are copied once into the flat layout; callers that already
// hold a Dataset should use ClusterDataset.
func Cluster(pts [][]float64, p Params) (*Result, error) {
	return core.ApproxDPC{}.Cluster(pts, p)
}

// ClusterDataset runs Approx-DPC over a flat Dataset with no copying.
func ClusterDataset(ds *Dataset, p Params) (*Result, error) {
	return core.ApproxDPC{}.ClusterDataset(ds, p)
}

// ClusterExact runs the exact Ex-DPC algorithm.
func ClusterExact(pts [][]float64, p Params) (*Result, error) {
	return core.ExDPC{}.Cluster(pts, p)
}

// ClusterExactDataset runs Ex-DPC over a flat Dataset with no copying.
func ClusterExactDataset(ds *Dataset, p Params) (*Result, error) {
	return core.ExDPC{}.ClusterDataset(ds, p)
}

// DecisionGraph returns the (rho, delta) pairs of a result sorted by
// descending delta — the plot users read to choose RhoMin and DeltaMin.
func DecisionGraph(res *Result) []DecisionPoint { return core.DecisionGraph(res) }

// SuggestDeltaMin proposes a DeltaMin that yields exactly k cluster
// centers, by cutting the decision graph's delta gap below the k-th
// largest value. ok is false when fewer than k+1 points qualify.
func SuggestDeltaMin(res *Result, k int, rhoMin float64) (float64, bool) {
	return core.SuggestDeltaMin(res, k, rhoMin)
}
