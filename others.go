package dpc

import "repro/internal/core"

// The paper's §6 also tested three further competitors and dropped them
// from the main charts — FastDPeak and DPCG for speed, CFSFDP-DE for
// accuracy. They are provided for completeness and for regenerating that
// observation (dpcbench -exp others).

// NewFastDPeak returns the kNN-based FastDPeak competitor (Chen et al.
// 2020 style): Definition-1 densities plus per-point kNN lists for
// dependent-point shortcuts.
func NewFastDPeak() Algorithm { return core.FastDPeak{} }

// NewDPCG returns the grid-based DPCG competitor (Xu et al. 2018 style):
// neighborhood-scan densities and ring-expansion dependent points.
func NewDPCG() Algorithm { return core.DPCG{} }

// NewCFSFDPDE returns the density-estimate variant of CFSFDP (Bai et al.
// 2017): fast but markedly less accurate, as the paper reports.
func NewCFSFDPDE() Algorithm { return core.CFSFDPDE{} }

// OtherAlgorithms returns the three §6 "also tested" competitors.
func OtherAlgorithms() []Algorithm {
	return []Algorithm{core.FastDPeak{}, core.DPCG{}, core.CFSFDPDE{}}
}
