package dpc

import "repro/internal/core"

// Assigner classifies out-of-sample points against a finished clustering:
// a new point inherits the cluster of its nearest clustered neighbor, or
// NoCluster when that neighbor is farther than d_cut. Safe for concurrent
// use.
type Assigner = core.Assigner

// NewAssigner indexes a clustering for out-of-sample assignment; pts and
// res must be the dataset and result of one clustering run and dcut the
// d_cut used there. The rows are copied once into the flat layout;
// callers holding a Dataset should use NewAssignerDataset.
func NewAssigner(pts [][]float64, res *Result, dcut float64) (*Assigner, error) {
	return core.NewAssigner(pts, res, dcut)
}

// NewAssignerDataset indexes a flat Dataset for out-of-sample assignment
// without copying the points.
func NewAssignerDataset(ds *Dataset, res *Result, dcut float64) (*Assigner, error) {
	return core.NewAssignerDataset(ds, res, dcut)
}

// SuggestCenters ranks non-noise points by gamma = rho * delta (the
// standard decision-graph product heuristic) and returns the top k point
// indices — an alternative to SuggestDeltaMin when the delta gap is not
// clean.
func SuggestCenters(res *Result, k int, rhoMin float64) []int32 {
	return core.SuggestCenters(res, k, rhoMin)
}

// ComputeHalo flags each cluster's halo (Rodriguez & Laio 2014): members
// sparser than the densest point that touches another cluster within
// d_cut. Halo points are the low-confidence fringe where clusters meet —
// the border points §6 of the reproduced paper identifies as the residual
// error source of the approximate algorithms.
func ComputeHalo(pts [][]float64, res *Result, dcut float64, workers int) ([]bool, error) {
	return core.ComputeHalo(pts, res, dcut, workers)
}

// ComputeHaloDataset is ComputeHalo over a flat Dataset (no copy).
func ComputeHaloDataset(ds *Dataset, res *Result, dcut float64, workers int) ([]bool, error) {
	return core.ComputeHaloDataset(ds, res, dcut, workers)
}
