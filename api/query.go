package api

import (
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// Dataset precision values (the ?precision= upload parameter and the
// DatasetInfo.Precision echo). PrecisionF64 is the default and the only
// behavior that existed before the parameter; PrecisionF32 stores the
// dataset as float32 — half the memory, with the distance kernels
// reading the narrow values directly.
const (
	PrecisionF32 = "f32"
	PrecisionF64 = "f64"
)

// QueryRequest is implemented by the typed query structs below. Every
// dpcd handler that reads URL query parameters decodes them through
// ParseQuery into one of these instead of ad-hoc r.URL.Query() calls,
// so each parameter is validated in exactly one place and every
// violation produces the uniform error envelope.
type QueryRequest interface {
	bindQuery(b *queryBinder)
}

// ParseQuery binds req's fields from v. It returns nil or a *APIError
// (status 400, a stable envelope code) describing the first invalid
// parameter.
func ParseQuery(v url.Values, req QueryRequest) error {
	b := &queryBinder{v: v}
	req.bindQuery(b)
	if b.err != nil {
		return b.err
	}
	return nil
}

// UploadQuery is the query half of PUT /v1/datasets/{name}. Format ""
// means "decide by Content-Type, default csv" — the handler's historical
// negotiation, which must stay outside the validator.
type UploadQuery struct {
	Format    string // "", "csv", "binary", or "frame"
	Precision string // PrecisionF32 or PrecisionF64 (defaulted)
}

func (q *UploadQuery) bindQuery(b *queryBinder) {
	b.enum("format", &q.Format, "", "csv", "binary", "frame")
	b.precision(&q.Precision)
}

// DecisionGraphQuery is the query string of GET /v1/decision-graph.
type DecisionGraphQuery struct {
	Dataset string
	DCut    float64
	Limit   int // 0 = no truncation
}

func (q *DecisionGraphQuery) bindQuery(b *queryBinder) {
	b.require("dataset", &q.Dataset)
	b.float("dcut", &q.DCut)
	b.intMin("limit", &q.Limit, 0)
}

// DriftQuery is the query string of GET /v1/drift: the dataset whose
// tracked models to report, and optionally a single algorithm to
// filter to.
type DriftQuery struct {
	Dataset   string
	Algorithm string
}

func (q *DriftQuery) bindQuery(b *queryBinder) {
	b.require("dataset", &q.Dataset)
	q.Algorithm = b.v.Get("algorithm")
}

// StreamQuery is the query string of POST /v1/assign/stream. Chunk > 0
// asks for at most that many points per label record — smaller chunks
// mean earlier first results on slow streams; the server clamps the
// value to its own configured chunk, so a client can lower latency but
// never raise the server's memory bound.
type StreamQuery struct {
	Chunk int
}

func (q *StreamQuery) bindQuery(b *queryBinder) {
	b.intMin("chunk", &q.Chunk, 0)
}

// RingQuery is the query string of GET /v1/ring: an optional key to
// resolve to its replica set.
type RingQuery struct {
	Key string
}

func (q *RingQuery) bindQuery(b *queryBinder) {
	q.Key = b.v.Get("key")
}

// queryBinder walks one query string with a sticky first error, the
// same discipline as the wire codec's payloadDecoder.
type queryBinder struct {
	v   url.Values
	err *APIError
}

func (b *queryBinder) fail(code, format string, args ...any) {
	if b.err == nil {
		b.err = &APIError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
	}
}

// require binds a parameter that must be present and non-empty.
func (b *queryBinder) require(name string, dst *string) {
	*dst = b.v.Get(name)
	if *dst == "" {
		b.fail(CodeBadRequest, "missing %s query parameter", name)
	}
}

// enum binds a parameter that must be one of allowed; absent means def.
func (b *queryBinder) enum(name string, dst *string, def string, allowed ...string) {
	s := b.v.Get(name)
	if s == "" {
		*dst = def
		return
	}
	for _, a := range allowed {
		if s == a {
			*dst = s
			return
		}
	}
	b.fail(CodeBadRequest, "unknown %s %q (want %s)", name, s, strings.Join(allowed, ", "))
}

// precision binds the ?precision= parameter; absent means f64. The
// violation carries CodeUnsupportedPrecision, not the generic
// bad-request code, so clients can switch on it.
func (b *queryBinder) precision(dst *string) {
	switch s := b.v.Get("precision"); s {
	case "":
		*dst = PrecisionF64
	case PrecisionF32, PrecisionF64:
		*dst = s
	default:
		*dst = ""
		b.fail(CodeUnsupportedPrecision, "unsupported precision %q (want %q or %q)", s, PrecisionF32, PrecisionF64)
	}
}

// float binds a required float parameter; it must parse and be finite.
func (b *queryBinder) float(name string, dst *float64) {
	s := b.v.Get(name)
	if s == "" {
		b.fail(CodeBadRequest, "missing %s query parameter", name)
		return
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.fail(CodeBadRequest, "bad %s query parameter %q", name, s)
		return
	}
	*dst = v
}

// intMin binds an optional integer parameter with a floor.
func (b *queryBinder) intMin(name string, dst *int, min int) {
	s := b.v.Get(name)
	if s == "" {
		return
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < min {
		b.fail(CodeBadRequest, "bad %s query parameter %q", name, s)
		return
	}
	*dst = v
}
