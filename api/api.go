// Package api defines the versioned wire contract of the dpcd HTTP API
// (the /v1 routes): every request and response shape the daemon accepts
// or produces, in one dependency-free package shared by the server
// (internal/service), the typed client (service.Client), and the cmd/
// CLIs. The structs here are the compatibility surface — changing a
// field tag is a wire-protocol change and belongs in a /v2.
//
// Endpoints and their shapes:
//
//	GET  /healthz                    liveness probe
//	GET  /v1/datasets                []DatasetInfo
//	GET  /v1/datasets/{name}         DatasetInfo
//	PUT  /v1/datasets/{name}         raw CSV / binary / frame body -> DatasetInfo
//	POST /v1/points                  AppendRequest -> AppendResponse (sliding-window append)
//	POST /v1/fit                     FitRequest -> FitResponse
//	POST /v1/assign                  AssignRequest -> AssignResponse
//	POST /v1/assign/stream           FitRequest header + point lines -> StreamRecord lines
//	GET  /v1/decision-graph          DecisionGraphResponse
//	POST /v1/sweep                   SweepRequest -> SweepResponse
//	GET  /v1/drift                   DriftResponse (per-model drift trackers)
//	GET  /v1/stats                   Stats (single instance) or RingStats (ring mode)
//	GET  /v1/ring                    RingInfo
//	POST /v1/ring                    RingUpdateRequest -> RingUpdateResponse
//
// Every non-2xx response carries the uniform JSON error envelope
// {"error":{"code":"...","message":"..."}} (see ErrorEnvelope); clients
// decode it into the typed *APIError.
package api

import (
	"encoding/json"
	"math"
	"strconv"
)

// Params is the wire form of the clustering parameters. Workers is
// deliberately absent: thread count is server policy, not model
// identity.
type Params struct {
	DCut     float64 `json:"dcut"`
	RhoMin   float64 `json:"rho_min"`
	DeltaMin float64 `json:"delta_min"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

// FitRequest is the body of POST /v1/fit and the model half of
// POST /v1/assign.
type FitRequest struct {
	Dataset   string `json:"dataset"`
	Algorithm string `json:"algorithm"`
	Params    Params `json:"params"`
}

// ModelStats summarizes a fitted model.
type ModelStats struct {
	Algorithm string  `json:"algorithm"`
	N         int     `json:"n"`
	Dim       int     `json:"dim"`
	Clusters  int     `json:"clusters"`
	Noise     int     `json:"noise"`
	FitSecs   float64 `json:"fit_seconds"`
	Timing    struct {
		Build float64 `json:"build_seconds"`
		Rho   float64 `json:"rho_seconds"`
		Delta float64 `json:"delta_seconds"`
		Label float64 `json:"label_seconds"`
	} `json:"timing"`
}

// FitResponse reports the fitted (or cached) model. IndexCut marks a
// model derived by re-cutting the dataset's parameter-flexible density
// index instead of running the clustering algorithm — same bytes,
// far cheaper.
type FitResponse struct {
	Dataset   string     `json:"dataset"`
	CacheHit  bool       `json:"cache_hit"`
	IndexCut  bool       `json:"index_cut,omitempty"`
	Model     ModelStats `json:"model"`
	ParamsUse Params     `json:"params"`
}

// AssignRequest is the body of POST /v1/assign.
type AssignRequest struct {
	FitRequest
	Points [][]float64 `json:"points"`
}

// AssignResponse carries one label per submitted point.
type AssignResponse struct {
	Labels   []int32 `json:"labels"`
	Clusters int     `json:"clusters"`
	CacheHit bool    `json:"cache_hit"`
}

// DatasetInfo describes one registered dataset. Precision is the
// storage width of its coordinates — PrecisionF32 or PrecisionF64 —
// negotiated at upload via ?precision= and echoed everywhere the
// dataset is listed. Empty means f64 (responses from daemons predating
// the precision surface).
type DatasetInfo struct {
	Name      string `json:"name"`
	N         int    `json:"n"`
	Dim       int    `json:"dim"`
	Precision string `json:"precision,omitempty"`
}

// AppendRequest is the body of POST /v1/points: points to append to a
// registered dataset's sliding window. The rows must match the
// dataset's dimensionality and contain no NaN/Inf.
type AppendRequest struct {
	Dataset string      `json:"dataset"`
	Points  [][]float64 `json:"points"`
}

// AppendResponse reports one sliding-window append: the dataset's new
// size and version, how many submitted points landed, how many old (or
// over-window submitted) points expired, and whether the density index
// was maintained incrementally (false also covers "no index resident").
type AppendResponse struct {
	Dataset      string `json:"dataset"`
	N            int    `json:"n"`
	Dim          int    `json:"dim"`
	Precision    string `json:"precision,omitempty"`
	Version      uint64 `json:"version"`
	Appended     int    `json:"appended"`
	Expired      int    `json:"expired"`
	IndexUpdated bool   `json:"index_updated"`
}

// DriftReference is the fit-time distribution a drift tracker scores
// against: exact quantiles of the training points' distance to their
// assigned cluster centers, and the training halo (noise) rate.
type DriftReference struct {
	Q50      float64 `json:"q50"`
	Q90      float64 `json:"q90"`
	HaloRate float64 `json:"halo_rate"`
	N        int     `json:"n"`
}

// DriftWindow summarizes one closed observation window of a tracker.
type DriftWindow struct {
	Count    int64   `json:"count"`
	Halo     int64   `json:"halo"`
	HaloRate float64 `json:"halo_rate"`
	Q50      float64 `json:"q50"`
	Q90      float64 `json:"q90"`
	Score    float64 `json:"score"`
}

// DriftStatus is the measurement half of one tracked model: lifetime
// counts, the latest window's quantiles/halo rate/score, whether the
// tracker has tripped, the reference, and recent window history.
type DriftStatus struct {
	Observed  int64          `json:"observed"`
	Halo      int64          `json:"halo"`
	HaloRate  float64        `json:"halo_rate"`
	Q50       float64        `json:"q50"`
	Q90       float64        `json:"q90"`
	Score     float64        `json:"score"`
	Tripped   bool           `json:"tripped"`
	Reference DriftReference `json:"reference"`
	Windows   []DriftWindow  `json:"windows,omitempty"`
}

// DriftModel is one tracked serving lineage of GET /v1/drift: which
// model (algorithm + params), the dataset version it currently serves,
// whether a background refit is in flight, and its tracker status (nil
// before any tracked assign traffic).
type DriftModel struct {
	Algorithm string       `json:"algorithm"`
	Params    Params       `json:"params"`
	Version   uint64       `json:"version"`
	Refitting bool         `json:"refitting"`
	Status    *DriftStatus `json:"status,omitempty"`
}

// DriftResponse is the body of GET /v1/drift?dataset=…(&algorithm=…).
// Enabled is false when the daemon runs with drift tracking off; Models
// lists the tracked lineages of the dataset, sorted by algorithm.
type DriftResponse struct {
	Dataset string       `json:"dataset"`
	Enabled bool         `json:"enabled"`
	Models  []DriftModel `json:"models"`
}

// StreamSummary is the trailing record of a successful label stream.
type StreamSummary struct {
	Points   int64 `json:"points"`
	Chunks   int64 `json:"chunks"`
	Clusters int   `json:"clusters"`
	CacheHit bool  `json:"cache_hit"`
}

// StreamRecord is one NDJSON line of the /v1/assign/stream response:
// exactly one of Labels, Summary, or Error is set.
type StreamRecord struct {
	Labels  []int32        `json:"labels,omitempty"`
	Summary *StreamSummary `json:"summary,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// DecisionPoint is one point of the decision graph: its density rho and
// dependent distance delta at the requested d_cut. Density peaks carry
// delta = +Inf, which JSON numbers cannot express — the JSON form maps
// it to null (see MarshalJSON); the binary frame codec carries the IEEE
// bits verbatim.
type DecisionPoint struct {
	ID    int32   `json:"id"`
	Rho   float64 `json:"rho"`
	Delta float64 `json:"delta"`
}

// MarshalJSON encodes an infinite delta as null.
func (p DecisionPoint) MarshalJSON() ([]byte, error) {
	delta := []byte("null")
	if !math.IsInf(p.Delta, 0) {
		delta = strconv.AppendFloat(nil, p.Delta, 'g', -1, 64)
	}
	b := make([]byte, 0, 48)
	b = append(b, `{"id":`...)
	b = strconv.AppendInt(b, int64(p.ID), 10)
	b = append(b, `,"rho":`...)
	b = strconv.AppendFloat(b, p.Rho, 'g', -1, 64)
	b = append(b, `,"delta":`...)
	b = append(b, delta...)
	b = append(b, '}')
	return b, nil
}

// UnmarshalJSON restores a null delta to +Inf.
func (p *DecisionPoint) UnmarshalJSON(raw []byte) error {
	var aux struct {
		ID    int32    `json:"id"`
		Rho   float64  `json:"rho"`
		Delta *float64 `json:"delta"`
	}
	if err := json.Unmarshal(raw, &aux); err != nil {
		return err
	}
	p.ID, p.Rho = aux.ID, aux.Rho
	if aux.Delta == nil {
		p.Delta = math.Inf(1)
	} else {
		p.Delta = *aux.Delta
	}
	return nil
}

// DecisionGraphResponse is the body of GET /v1/decision-graph: the
// (rho, delta) pairs analysts read to pick rho_min and delta_min,
// sorted by descending delta (infinite deltas — the density peaks —
// first). Points is truncated to the ?limit= query parameter when one
// was given; N is always the full dataset size. IndexReused reports
// whether the dataset's density index was already resident (false means
// this request paid the one-time build).
type DecisionGraphResponse struct {
	Dataset     string          `json:"dataset"`
	DCut        float64         `json:"dcut"`
	N           int             `json:"n"`
	IndexReused bool            `json:"index_reused"`
	Points      []DecisionPoint `json:"points"`
}

// SweepSetting is one parameter combination of a POST /v1/sweep.
type SweepSetting struct {
	DCut     float64 `json:"dcut"`
	RhoMin   float64 `json:"rho_min"`
	DeltaMin float64 `json:"delta_min"`
}

// SweepRequest asks for the clusterings of many parameter settings in
// one call: the dataset's density index is built (or reused) once and
// re-cut per setting, so a K-setting sweep costs roughly one fit plus K
// cheap cuts instead of K fits. Algorithm defaults to "Ex-DPC" and must
// be one of the index-covered exact algorithms; IncludeLabels adds the
// full label vector to every result (large — n values per setting).
type SweepRequest struct {
	Dataset       string         `json:"dataset"`
	Algorithm     string         `json:"algorithm,omitempty"`
	Settings      []SweepSetting `json:"settings"`
	IncludeLabels bool           `json:"include_labels,omitempty"`
}

// SweepResult is the clustering summary of one setting.
type SweepResult struct {
	Params   Params  `json:"params"`
	Clusters int     `json:"clusters"`
	Noise    int     `json:"noise"`
	Centers  []int32 `json:"centers"`
	Labels   []int32 `json:"labels,omitempty"`
}

// SweepResponse is the body of POST /v1/sweep, one result per setting
// in request order. IndexReused is false when this sweep paid the
// one-time index build.
type SweepResponse struct {
	Dataset     string        `json:"dataset"`
	Algorithm   string        `json:"algorithm"`
	N           int           `json:"n"`
	IndexReused bool          `json:"index_reused"`
	Results     []SweepResult `json:"results"`
}

// Stats is a point-in-time snapshot of one instance's service counters
// (GET /v1/stats; in ring mode the per-peer legs of RingStats).
type Stats struct {
	Datasets int `json:"datasets"`
	// DatasetsF32 is how many resident datasets are stored at float32
	// precision (the rest are float64) — the stats echo of the
	// per-dataset Precision field.
	DatasetsF32    int     `json:"datasets_f32"`
	ModelsCached   int     `json:"models_cached"`
	CacheCapacity  int     `json:"cache_capacity"`
	FitRequests    int64   `json:"fit_requests"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	Evictions      int64   `json:"evictions"`
	AssignRequests int64   `json:"assign_requests"`
	PointsAssigned int64   `json:"points_assigned"`
	HitRate        float64 `json:"hit_rate"`
	// IndexBuilds counts density-index constructions, IndexCuts the
	// parameter re-cuts served from them (each a fit avoided), and
	// IndexesRestored the indexes warm-loaded from snapshots on start.
	IndexBuilds     int64 `json:"index_builds"`
	IndexCuts       int64 `json:"index_cuts"`
	IndexesRestored int   `json:"indexes_restored"`
	// DatasetsRestored and ModelsRestored count what the daemon
	// warm-loaded from its snapshot store on start; PersistErrors counts
	// snapshot writes that failed (serving continued, durability did not).
	DatasetsRestored int   `json:"datasets_restored"`
	ModelsRestored   int   `json:"models_restored"`
	PersistErrors    int64 `json:"persist_errors"`
	// DatasetsReplicated and ModelsReplicated count snapshot installs
	// shipped by a key's primary — warm-loads of replica state, disjoint
	// from both the restored counters (disk) and cache misses (refits).
	DatasetsReplicated int64 `json:"datasets_replicated"`
	ModelsReplicated   int64 `json:"models_replicated"`
	// DriftModels is how many serving lineages carry a live drift
	// tracker and DriftScore the worst current score among them;
	// DriftTrips counts tracker trips, DriftRefits the background refits
	// that landed, and DriftStaleServes the assigns answered by a
	// previous-version model while awaiting a trip or refit.
	DriftModels      int     `json:"drift_models"`
	DriftScore       float64 `json:"drift_score"`
	DriftTrips       int64   `json:"drift_trips"`
	DriftRefits      int64   `json:"drift_refits"`
	DriftStaleServes int64   `json:"drift_stale_serves"`
	// PointsAppended and PointsExpired count sliding-window mutations
	// (POST /v1/points); IndexUpdates counts the density-index
	// maintenances done incrementally instead of by full rebuild.
	PointsAppended int64 `json:"points_appended"`
	PointsExpired  int64 `json:"points_expired"`
	IndexUpdates   int64 `json:"index_updates"`
}

// ReconcileStats reports one ring-rebalance pass over resident state.
type ReconcileStats struct {
	DatasetsLoaded  int `json:"datasets_loaded"`
	ModelsLoaded    int `json:"models_loaded"`
	DatasetsEvicted int `json:"datasets_evicted"`
}

// InstallResult reports what installing one shipped replication
// snapshot did (POST /v1/replica/snapshot).
type InstallResult struct {
	Kind      string `json:"kind"` // "dataset", "model", or "index"
	Dataset   string `json:"dataset"`
	Version   uint64 `json:"version"`
	Installed bool   `json:"installed"` // false: already current (idempotent no-op)
}

// RingUpdateRequest is the body of POST /v1/ring.
type RingUpdateRequest struct {
	Peers []string `json:"peers"`
}

// RingUpdateResponse reports the applied membership and what the
// reconcile moved.
type RingUpdateResponse struct {
	Self      string         `json:"self"`
	Peers     []string       `json:"peers"`
	Reconcile ReconcileStats `json:"reconcile"`
}

// RingInfo is the body of GET /v1/ring. Peers is the live ring
// membership; Configured is the full administered set and Down the
// difference — what the heartbeat currently excludes.
type RingInfo struct {
	Self       string   `json:"self"`
	Peers      []string `json:"peers"`
	Configured []string `json:"configured"`
	Down       []string `json:"down,omitempty"`
	RF         int      `json:"rf"`
	Vnodes     int      `json:"vnodes"`
	Owner      string   `json:"owner,omitempty"`  // primary of ?key=, when asked
	Owners     []string `json:"owners,omitempty"` // full replica set of ?key=
	// Dataset echoes the resident dataset the queried key names — size,
	// dimensionality, and storage precision — when the answering
	// instance replicates it; nil when the key is unknown here.
	Dataset *DatasetInfo `json:"dataset,omitempty"`
}

// PeerStats is one shard's leg of the aggregated /v1/stats.
type PeerStats struct {
	Peer string `json:"peer"`
	// Unreachable marks a configured peer outside the live set: it is
	// reported without being probed, so one dead shard adds no latency to
	// the fan-out and never fails it.
	Unreachable bool   `json:"unreachable,omitempty"`
	Error       string `json:"error,omitempty"`
	Stats       *Stats `json:"stats,omitempty"`
}

// RingStats aggregates /v1/stats across the ring: summed counters plus
// the per-peer breakdown. Forwarded/ForwardErrors and the replication
// counters are the answering instance's routing counters (each instance
// counts its own hops and ships).
type RingStats struct {
	Self              string      `json:"self"`
	Peers             []string    `json:"peers"`
	Down              []string    `json:"down,omitempty"`
	PeersUp           int         `json:"peers_up"`
	RF                int         `json:"rf"`
	Forwarded         int64       `json:"forwarded"`
	ForwardErrors     int64       `json:"forward_errors"`
	Replicated        int64       `json:"replicated"`
	ReplicationErrors int64       `json:"replication_errors"`
	Total             Stats       `json:"total"`
	PerPeer           []PeerStats `json:"per_peer"`
}

// Accumulate folds another shard's counters into s; HitRate is the
// caller's to recompute once every peer is in.
func (s *Stats) Accumulate(o Stats) {
	s.Datasets += o.Datasets
	s.DatasetsF32 += o.DatasetsF32
	s.ModelsCached += o.ModelsCached
	s.CacheCapacity += o.CacheCapacity
	s.FitRequests += o.FitRequests
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Evictions += o.Evictions
	s.AssignRequests += o.AssignRequests
	s.PointsAssigned += o.PointsAssigned
	s.IndexBuilds += o.IndexBuilds
	s.IndexCuts += o.IndexCuts
	s.IndexesRestored += o.IndexesRestored
	s.DatasetsRestored += o.DatasetsRestored
	s.ModelsRestored += o.ModelsRestored
	s.PersistErrors += o.PersistErrors
	s.DatasetsReplicated += o.DatasetsReplicated
	s.ModelsReplicated += o.ModelsReplicated
	s.DriftModels += o.DriftModels
	if o.DriftScore > s.DriftScore {
		s.DriftScore = o.DriftScore
	}
	s.DriftTrips += o.DriftTrips
	s.DriftRefits += o.DriftRefits
	s.DriftStaleServes += o.DriftStaleServes
	s.PointsAppended += o.PointsAppended
	s.PointsExpired += o.PointsExpired
	s.IndexUpdates += o.IndexUpdates
}
