package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// ErrorInfo is the payload of the uniform error envelope: a stable
// machine-readable code plus a human-readable message.
type ErrorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope is the body of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error ErrorInfo `json:"error"`
}

// Error codes carried in ErrorInfo.Code. Codes are part of the wire
// contract: clients may switch on them, so new failure classes get new
// codes rather than repurposed ones.
const (
	CodeBadRequest     = "bad_request"
	CodeNotFound       = "not_found"
	CodeTooLarge       = "too_large"
	CodeTooManyStreams = "too_many_streams"
	CodeBadGateway     = "bad_gateway"
	CodeInternal       = "internal"
	// CodeUnsupportedPrecision rejects a ?precision= value other than
	// "f32" or "f64" — its own code, not bad_request, so clients can
	// distinguish "fix the parameter" from "this daemon predates the
	// precision surface" (older daemons ignore the parameter entirely).
	CodeUnsupportedPrecision = "unsupported_precision"
)

// ErrUnsupportedPrecision is the typed form of a precision violation:
// handlers wrap it (or build a *APIError with CodeUnsupportedPrecision)
// and the error writer unwraps via errors.As to emit the right status
// and envelope code; clients compare the decoded *APIError.Code.
var ErrUnsupportedPrecision = &APIError{
	Status:  http.StatusBadRequest,
	Code:    CodeUnsupportedPrecision,
	Message: `unsupported precision (want "f32" or "f64")`,
}

// CodeForStatus maps an HTTP status to its default error code. Handlers
// that know a more specific code set it directly.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return CodeTooLarge
	case http.StatusTooManyRequests:
		return CodeTooManyStreams
	case http.StatusBadGateway:
		return CodeBadGateway
	}
	if status >= 400 && status < 500 {
		return CodeBadRequest
	}
	return CodeInternal
}

// APIError is a non-2xx response decoded client-side: the HTTP status
// plus the envelope's code and message. Status is what retry and
// failover logic switches on; Code is the stable discriminator within a
// status class.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // machine-readable code from the envelope
	Message string // human-readable message
}

// Error satisfies the error interface with the status and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("server returned %d: %s", e.Status, e.Message)
}

// DecodeError builds the *APIError for a non-2xx response body. It
// understands the uniform envelope, falls back to the legacy flat
// {"error":"msg"} shape, and finally to the raw body text, so a client
// talking to an older daemon still surfaces something readable.
func DecodeError(status int, body []byte) *APIError {
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Message != "" {
		code := env.Error.Code
		if code == "" {
			code = CodeForStatus(status)
		}
		return &APIError{Status: status, Code: code, Message: env.Error.Message}
	}
	var legacy struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &legacy); err == nil && legacy.Error != "" {
		return &APIError{Status: status, Code: CodeForStatus(status), Message: legacy.Error}
	}
	msg := strings.TrimSpace(string(body))
	if msg == "" {
		msg = http.StatusText(status)
	}
	return &APIError{Status: status, Code: CodeForStatus(status), Message: msg}
}
