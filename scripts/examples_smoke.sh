#!/usr/bin/env bash
# Runs every example under examples/ end to end and fails if any of them
# exits non-zero. Examples are self-verifying — each one log.Fatals when
# the behavior it demonstrates does not hold (e.g. drift-refit checks
# the refit actually swapped) — so this smoke keeps them compiling AND
# true as the library evolves. New example directories are picked up
# automatically.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in examples/*/; do
    name=$(basename "$dir")
    printf '== examples/%s\n' "$name"
    if ! go run "./examples/$name" >/tmp/example_"$name".log 2>&1; then
        echo "examples/$name FAILED:"
        tail -20 /tmp/example_"$name".log
        fail=1
    fi
done
exit $fail
