#!/usr/bin/env bash
# e2e_stream.sh — end-to-end proof of the chunked streaming assign path
# against real processes:
#
#   1. boots a 3-shard rf=2 dpcd ring on localhost ports;
#   2. uploads a training dataset and fits Ex-DPC exactly once (replicas
#      receive the model as a shipped snapshot, never a refit);
#   3. streams 4x the per-request batch cap (4,194,304 points by default)
#      through the one shard that does NOT replicate the dataset, so the
#      chunked body is relayed to a replica without buffering — once over
#      NDJSON and once over binary frames (application/x-dpc-frame);
#   4. sends the same points as four capped batch /v1/assign calls and
#      asserts all three label files are byte-identical;
#   5. asserts the whole run performed zero refits and that the non-owner
#      shard actually forwarded the streams.
#
# Requirements: go, curl, jq. Run from anywhere; `make e2e-stream` wraps
# it. STREAM_N overrides the point count for quick local runs; setting
# E2E_LOG_DIR preserves the daemon logs there (CI uploads them as
# artifacts when the job fails).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d /tmp/dpcd-e2e-stream.XXXXXX)"
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    if [ -n "${E2E_LOG_DIR:-}" ]; then
        mkdir -p "$E2E_LOG_DIR"
        cp "$TMP"/*.log "$E2E_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "e2e_stream: FAIL: $*" >&2; exit 1; }
log()  { echo "e2e_stream: $*"; }

# 4x the server's 1<<20 per-request batch cap: the workload the batch
# endpoint refuses in one request.
STREAM_N="${STREAM_N:-4194304}"
BATCH_SIZE=1048576
if [ "$STREAM_N" -lt $((4 * BATCH_SIZE)) ]; then
    # Scaled-down local runs still compare stream vs. batch over 4 calls.
    BATCH_SIZE=$(( (STREAM_N + 3) / 4 ))
fi

cd "$ROOT"
log "building dpcd, datagen, and dpcstream"
go build -o "$TMP/dpcd" ./cmd/dpcd
go build -o "$TMP/datagen" ./cmd/datagen
go build -o "$TMP/dpcstream" ./cmd/dpcstream

"$TMP/datagen" -dataset s2 -n 4000 -seed 7 -out "$TMP/train.csv"
log "generating $STREAM_N query points"
"$TMP/datagen" -dataset s2 -n "$STREAM_N" -seed 8 -out "$TMP/query.csv"
PARAMS='{"dcut":2500,"rho_min":5,"delta_min":12000}'
NAME=stream-e2e

SHARD_PORTS=(18084 18085 18086)
PEERS="http://127.0.0.1:${SHARD_PORTS[0]},http://127.0.0.1:${SHARD_PORTS[1]},http://127.0.0.1:${SHARD_PORTS[2]}"
for i in 0 1 2; do
    port="${SHARD_PORTS[$i]}"
    "$TMP/dpcd" -addr "127.0.0.1:$port" -workers 2 \
        -self "http://127.0.0.1:$port" -peers "$PEERS" -rf 2 \
        >"$TMP/stream-shard-$i.log" 2>&1 &
    PIDS+=($!)
done

wait_ready() {
    for _ in $(seq 1 100); do
        curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    cat "$TMP"/*.log >&2 || true
    fail "instance on port $1 never became healthy"
}
for port in "${SHARD_PORTS[@]}"; do wait_ready "$port"; done
log "ring on :${SHARD_PORTS[*]}"

# --- upload once, fit once --------------------------------------------------
curl -fsS -X PUT --data-binary "@$TMP/train.csv" \
    "http://127.0.0.1:${SHARD_PORTS[0]}/v1/datasets/$NAME" >/dev/null
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d "{\"dataset\":\"$NAME\",\"algorithm\":\"Ex-DPC\",\"params\":$PARAMS}" \
    "http://127.0.0.1:${SHARD_PORTS[1]}/v1/fit" >/dev/null

# With rf=2 the key lives on two of the three shards; the one shard
# outside .owners is the true non-owner that must relay the stream.
OWNERS="$(curl -fsS "http://127.0.0.1:${SHARD_PORTS[0]}/v1/ring?key=$NAME" | jq -r '.owners[]')"
NON_OWNER_PORT=""
for port in "${SHARD_PORTS[@]}"; do
    grep -qx "http://127.0.0.1:$port" <<<"$OWNERS" || NON_OWNER_PORT="$port"
done
[ -n "$NON_OWNER_PORT" ] || fail "could not find a non-owner shard for $NAME"
log "$NAME replicated on [$(tr '\n' ' ' <<<"$OWNERS")]; streaming through non-owner :$NON_OWNER_PORT"

agg_misses() {
    curl -fsS "http://127.0.0.1:${SHARD_PORTS[0]}/v1/stats" | jq '.total.cache_misses'
}
MISSES_BEFORE="$(agg_misses)"
[ "$MISSES_BEFORE" -eq 1 ] || fail "expected exactly 1 fit before assigning, saw $MISSES_BEFORE"
# .forwarded in the aggregate response is this instance's own hop count.
FWD_BEFORE="$(curl -fsS "http://127.0.0.1:$NON_OWNER_PORT/v1/stats" | jq '.forwarded')"

# --- stream 4x the batch cap through the non-owner --------------------------
log "streaming $STREAM_N points over NDJSON (cap is $BATCH_SIZE per batch request)"
"$TMP/dpcstream" -addr "http://127.0.0.1:$NON_OWNER_PORT" -dataset "$NAME" \
    -dcut 2500 -rhomin 5 -deltamin 12000 \
    -in "$TMP/query.csv" -out "$TMP/labels.stream" -mode stream \
    || fail "streaming assign failed"

# --- same stream over binary frames through the same non-owner --------------
log "streaming $STREAM_N points over binary frames"
"$TMP/dpcstream" -addr "http://127.0.0.1:$NON_OWNER_PORT" -dataset "$NAME" \
    -dcut 2500 -rhomin 5 -deltamin 12000 \
    -in "$TMP/query.csv" -out "$TMP/labels.binary" -mode stream -wire binary \
    || fail "binary-frame streaming assign failed"

# --- same points as four capped batch calls ---------------------------------
"$TMP/dpcstream" -addr "http://127.0.0.1:$NON_OWNER_PORT" -dataset "$NAME" \
    -dcut 2500 -rhomin 5 -deltamin 12000 \
    -in "$TMP/query.csv" -out "$TMP/labels.batch" -mode batch -batch-size "$BATCH_SIZE" \
    || fail "batched assign failed"

# --- labels byte-identical, every point answered, zero refits ---------------
cmp "$TMP/labels.stream" "$TMP/labels.batch" \
    || fail "streamed labels differ from batched labels"
cmp "$TMP/labels.stream" "$TMP/labels.binary" \
    || fail "binary-frame labels differ from NDJSON labels"
GOT_N="$(wc -l < "$TMP/labels.stream")"
[ "$GOT_N" -eq "$STREAM_N" ] || fail "stream returned $GOT_N labels, want $STREAM_N"

MISSES_AFTER="$(agg_misses)"
[ "$MISSES_AFTER" -eq "$MISSES_BEFORE" ] || \
    fail "labeling refit models: $MISSES_AFTER misses vs $MISSES_BEFORE before"
FWD_AFTER="$(curl -fsS "http://127.0.0.1:$NON_OWNER_PORT/v1/stats" | jq '.forwarded')"
[ "$FWD_AFTER" -gt "$FWD_BEFORE" ] || \
    fail "non-owner shard never forwarded (forwarded $FWD_BEFORE -> $FWD_AFTER)"

log "PASS: $STREAM_N points streamed through a non-owner shard over NDJSON and binary frames, labels byte-identical to $((STREAM_N / BATCH_SIZE)) batched calls, zero refits"
