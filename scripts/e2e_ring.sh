#!/usr/bin/env bash
# e2e_ring.sh — end-to-end proof of the dpcd consistent-hash ring against
# real processes:
#
#   1. boots a single-node dpcd (the reference) and a 3-shard ring on
#      localhost ports, each shard with its own -data-dir;
#   2. uploads the same dataset under several names through ONE shard, so
#      non-owned names must be forwarded to their owners;
#   3. fits Ex-DPC everywhere and asserts /v1/assign answers from every
#      ring instance are byte-identical to the single node's;
#   4. kills one shard, posts the shrunk membership to the survivors, and
#      asserts they still serve every key they own — from cache, with
#      zero refits — while the dead shard's keys fail cleanly.
#
# Requirements: go, curl, jq. Run from anywhere; `make e2e` wraps it.
# Setting E2E_LOG_DIR preserves the daemon logs there (CI uploads them as
# artifacts when the job fails).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d /tmp/dpcd-e2e.XXXXXX)"
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    if [ -n "${E2E_LOG_DIR:-}" ]; then
        mkdir -p "$E2E_LOG_DIR"
        cp "$TMP"/*.log "$E2E_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "e2e_ring: FAIL: $*" >&2; exit 1; }
log()  { echo "e2e_ring: $*"; }

cd "$ROOT"
log "building dpcd and datagen"
go build -o "$TMP/dpcd" ./cmd/dpcd
go build -o "$TMP/datagen" ./cmd/datagen

"$TMP/datagen" -dataset s2 -n 2000 -seed 7 -out "$TMP/points.csv"
# Default parameters for the bundled S-set generators (internal/data).
PARAMS='{"dcut":2500,"rho_min":5,"delta_min":12000}'
NAMES=(e2e-00 e2e-01 e2e-02 e2e-03 e2e-04 e2e-05)

SINGLE_PORT=18080
SHARD_PORTS=(18081 18082 18083)
PEERS="http://127.0.0.1:${SHARD_PORTS[0]},http://127.0.0.1:${SHARD_PORTS[1]},http://127.0.0.1:${SHARD_PORTS[2]}"

declare -A SHARD_PID=()
"$TMP/dpcd" -addr "127.0.0.1:$SINGLE_PORT" -workers 2 >"$TMP/single.log" 2>&1 &
PIDS+=($!)
for i in 0 1 2; do
    port="${SHARD_PORTS[$i]}"
    "$TMP/dpcd" -addr "127.0.0.1:$port" -workers 2 \
        -self "http://127.0.0.1:$port" -peers "$PEERS" \
        -data-dir "$TMP/shard-$i" >"$TMP/shard-$i.log" 2>&1 &
    PIDS+=($!)
    SHARD_PID[$port]=$!
done

wait_ready() {
    for _ in $(seq 1 100); do
        curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    cat "$TMP"/*.log >&2 || true
    fail "instance on port $1 never became healthy"
}
for port in "$SINGLE_PORT" "${SHARD_PORTS[@]}"; do wait_ready "$port"; done
log "single node on :$SINGLE_PORT, ring on :${SHARD_PORTS[*]}"

# --- upload + fit ---------------------------------------------------------
for name in "${NAMES[@]}"; do
    curl -fsS -X PUT --data-binary "@$TMP/points.csv" \
        "http://127.0.0.1:$SINGLE_PORT/v1/datasets/$name" >/dev/null
    # All ring uploads enter through shard 0: non-owned names are forwarded.
    curl -fsS -X PUT --data-binary "@$TMP/points.csv" \
        "http://127.0.0.1:${SHARD_PORTS[0]}/v1/datasets/$name" >/dev/null
done

fit() { # host:port, name
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"dataset\":\"$2\",\"algorithm\":\"Ex-DPC\",\"params\":$PARAMS}" \
        "http://127.0.0.1:$1/v1/fit" >/dev/null
}
for i in "${!NAMES[@]}"; do
    fit "$SINGLE_PORT" "${NAMES[$i]}"
    # Round-robin the fitting instance; forwarding must land each fit on
    # the owner regardless of the entry point.
    fit "${SHARD_PORTS[$((i % 3))]}" "${NAMES[$i]}"
done

# Probe batch: the first 40 uploaded points, as a JSON array of arrays.
PROBES="$(head -40 "$TMP/points.csv" \
    | jq -R -s 'split("\n") | map(select(length > 0) | split(",") | map(tonumber))')"

assign_body() { # name
    jq -cn --arg name "$1" --argjson params "$PARAMS" --argjson probes "$PROBES" \
        '{dataset: $name, algorithm: "Ex-DPC", params: $params, points: $probes}'
}
assign() { # host:port, name -> raw response body
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(assign_body "$2")" "http://127.0.0.1:$1/v1/assign"
}

# --- byte-identical answers through every instance ------------------------
declare -A WANT=()
for name in "${NAMES[@]}"; do
    # Second call so cache_hit=true on both deployments being compared.
    assign "$SINGLE_PORT" "$name" >/dev/null
    WANT[$name]="$(assign "$SINGLE_PORT" "$name")"
    [ -n "${WANT[$name]}" ] || fail "single node returned nothing for $name"
    for port in "${SHARD_PORTS[@]}"; do
        got="$(assign "$port" "$name")"
        [ "$got" = "${WANT[$name]}" ] || \
            fail "assign $name via :$port differs from single node: $got vs ${WANT[$name]}"
    done
done
log "assign answers byte-identical across all 3 instances for ${#NAMES[@]} keys"

# Forwarding must actually have happened (shard 0 took every upload but
# owns only some keys), and the aggregate must see the whole ring.
FWD=0
for port in "${SHARD_PORTS[@]}"; do
    f="$(curl -fsS "http://127.0.0.1:$port/v1/stats" | jq '.forwarded')"
    FWD=$((FWD + f))
done
[ "$FWD" -gt 0 ] || fail "no instance ever forwarded a request"
AGG="$(curl -fsS "http://127.0.0.1:${SHARD_PORTS[0]}/v1/stats")"
[ "$(jq '.peers_up' <<<"$AGG")" -eq 3 ] || fail "aggregate stats: peers_up != 3: $AGG"
[ "$(jq '.total.datasets' <<<"$AGG")" -eq "${#NAMES[@]}" ] || \
    fail "aggregate stats: total.datasets != ${#NAMES[@]}: $AGG"
log "forwarding exercised ($FWD forwards), aggregate stats see 3 peers and ${#NAMES[@]} datasets"

# --- kill a shard, rebalance, survivors keep serving their keys -----------
ring_owner() { # host:port, key
    curl -fsS "http://127.0.0.1:$1/v1/ring?key=$2" | jq -r '.owner'
}
declare -A OWNER_OF=()
for name in "${NAMES[@]}"; do
    OWNER_OF[$name]="$(ring_owner "${SHARD_PORTS[0]}" "$name")"
done
VICTIM_ADDR="${OWNER_OF[${NAMES[0]}]}"
VICTIM_PORT="${VICTIM_ADDR##*:}"
SURVIVOR_PORTS=()
SURVIVOR_ADDRS=()
for port in "${SHARD_PORTS[@]}"; do
    if [ "$port" != "$VICTIM_PORT" ]; then
        SURVIVOR_PORTS+=("$port")
        SURVIVOR_ADDRS+=("http://127.0.0.1:$port")
    fi
done
[ "${#SURVIVOR_PORTS[@]}" -eq 2 ] || fail "victim $VICTIM_ADDR not among the shard ports"

declare -A MISSES_BEFORE=()
for port in "${SURVIVOR_PORTS[@]}"; do
    MISSES_BEFORE[$port]="$(curl -fsS -H 'X-Dpcd-Forwarded: 1' \
        "http://127.0.0.1:$port/v1/stats" | jq '.cache_misses')"
done

log "killing shard $VICTIM_ADDR (owner of ${NAMES[0]})"
kill "${SHARD_PID[$VICTIM_PORT]}"
wait "${SHARD_PID[$VICTIM_PORT]}" 2>/dev/null || true

NEW_PEERS="$(printf '%s\n' "${SURVIVOR_ADDRS[@]}" | jq -R . | jq -cs '{peers: .}')"
for port in "${SURVIVOR_PORTS[@]}"; do
    curl -fsS -X POST -H 'Content-Type: application/json' -d "$NEW_PEERS" \
        "http://127.0.0.1:$port/v1/ring" >/dev/null
done

dead_keys=0
for name in "${NAMES[@]}"; do
    if [ "${OWNER_OF[$name]}" = "$VICTIM_ADDR" ]; then
        # Remapped to a survivor that never held the data: clean 404.
        dead_keys=$((dead_keys + 1))
        status="$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
            -H 'Content-Type: application/json' -d "$(assign_body "$name")" \
            "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/assign")"
        [ "$status" = "404" ] || fail "dead key $name returned HTTP $status, want 404"
        continue
    fi
    # A survivor's key: every surviving instance still answers, and the
    # answer is still byte-identical to the single node's.
    for port in "${SURVIVOR_PORTS[@]}"; do
        got="$(assign "$port" "$name")"
        [ "$got" = "${WANT[$name]}" ] || \
            fail "post-kill assign $name via :$port differs from single node"
        hit="$(jq '.cache_hit' <<<"$got")"
        [ "$hit" = "true" ] || fail "post-kill assign $name via :$port was not a cache hit"
    done
done
[ "$dead_keys" -ge 1 ] || fail "victim owned no keys; the kill test was vacuous"

for port in "${SURVIVOR_PORTS[@]}"; do
    after="$(curl -fsS -H 'X-Dpcd-Forwarded: 1' \
        "http://127.0.0.1:$port/v1/stats" | jq '.cache_misses')"
    [ "$after" -eq "${MISSES_BEFORE[$port]}" ] || \
        fail "survivor :$port refit models after the kill ($after vs ${MISSES_BEFORE[$port]} misses)"
done
AGG="$(curl -fsS "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/stats")"
[ "$(jq '.peers_up' <<<"$AGG")" -eq 2 ] || fail "aggregate after kill: peers_up != 2: $AGG"

log "PASS: survivors serve $(( ${#NAMES[@]} - dead_keys )) keys with zero refits; $dead_keys dead keys fail cleanly"
