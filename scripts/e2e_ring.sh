#!/usr/bin/env bash
# e2e_ring.sh — end-to-end proof of the replicated, self-healing dpcd
# ring against real processes:
#
#   1. boots a single-node dpcd (the reference) and a 3-shard rf=2 ring
#      with a 250ms heartbeat, each shard with its own -data-dir;
#   2. uploads the same dataset under several names through ONE shard
#      (non-owned names are forwarded to their primaries, which ship
#      snapshots to their replicas), fits Ex-DPC, and asserts /v1/assign
#      answers from every ring instance are byte-identical to the single
#      node's;
#   3. chaos: SIGKILLs the primary of a key in the middle of a long
#      label stream entering through that key's replica — the stream
#      must finish with exit 0 and labels byte-identical to a healthy
#      reference run, and batch assigns during the detection window must
#      all succeed off the surviving replicas;
#   4. waits for the heartbeat to evict the dead shard from the live
#      ring — no manual POST /v1/ring anywhere — then asserts every key
#      still answers byte-identically with cache hits and that the
#      survivors performed zero refits through the whole ordeal;
#   5. drift: slides a replicated key's window to a far-shifted cloud
#      (POST /v1/points through a non-primary shard), pushes shifted
#      traffic at the primary until the halo tracker trips, and asserts
#      the background refit swaps in with zero failed requests, the
#      replica receives the refitted model by snapshot shipping (warm
#      load — its refit and miss counters must not move), and shifted
#      points then label as clusters from both owners.
#
# Requirements: go, curl, jq. Run from anywhere; `make e2e` wraps it.
# CHAOS_N overrides the chaos stream's point count (CI uses 4194304).
# Setting E2E_LOG_DIR preserves the daemon logs there (CI uploads them
# as artifacts when the job fails).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
TMP="$(mktemp -d /tmp/dpcd-e2e.XXXXXX)"
declare -a PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    if [ -n "${E2E_LOG_DIR:-}" ]; then
        mkdir -p "$E2E_LOG_DIR"
        cp "$TMP"/*.log "$E2E_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "e2e_ring: FAIL: $*" >&2; exit 1; }
log()  { echo "e2e_ring: $*"; }

CHAOS_N="${CHAOS_N:-200000}"

cd "$ROOT"
log "building dpcd, datagen, and dpcstream"
go build -o "$TMP/dpcd" ./cmd/dpcd
go build -o "$TMP/datagen" ./cmd/datagen
go build -o "$TMP/dpcstream" ./cmd/dpcstream

"$TMP/datagen" -dataset s2 -n 2000 -seed 7 -out "$TMP/points.csv"
log "generating $CHAOS_N chaos query points"
"$TMP/datagen" -dataset s2 -n "$CHAOS_N" -seed 9 -out "$TMP/chaos.csv"
# Default parameters for the bundled S-set generators (internal/data).
PARAMS='{"dcut":2500,"rho_min":5,"delta_min":12000}'
NAMES=(e2e-00 e2e-01 e2e-02 e2e-03 e2e-04 e2e-05)

SINGLE_PORT=18080
SHARD_PORTS=(18081 18082 18083)
PEERS="http://127.0.0.1:${SHARD_PORTS[0]},http://127.0.0.1:${SHARD_PORTS[1]},http://127.0.0.1:${SHARD_PORTS[2]}"

declare -A SHARD_PID=()
"$TMP/dpcd" -addr "127.0.0.1:$SINGLE_PORT" -workers 2 >"$TMP/single.log" 2>&1 &
PIDS+=($!)
for i in 0 1 2; do
    port="${SHARD_PORTS[$i]}"
    # -window 2000 bounds every dataset's sliding window at exactly the
    # upload size, so the drift leg's full-cloud append expires every
    # original row; drift tracking itself runs at the daemon defaults.
    "$TMP/dpcd" -addr "127.0.0.1:$port" -workers 2 \
        -self "http://127.0.0.1:$port" -peers "$PEERS" \
        -rf 2 -heartbeat 250ms -dead-after 2 -window 2000 \
        -data-dir "$TMP/shard-$i" >"$TMP/shard-$i.log" 2>&1 &
    PIDS+=($!)
    SHARD_PID[$port]=$!
done

wait_ready() {
    for _ in $(seq 1 100); do
        curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    cat "$TMP"/*.log >&2 || true
    fail "instance on port $1 never became healthy"
}
for port in "$SINGLE_PORT" "${SHARD_PORTS[@]}"; do wait_ready "$port"; done
# Staggered startups can transiently evict a peer that had not bound yet;
# wait for every heartbeat to converge on the full live ring.
for port in "${SHARD_PORTS[@]}"; do
    for _ in $(seq 1 50); do
        n="$(curl -fsS "http://127.0.0.1:$port/v1/ring" | jq '.peers | length')"
        [ "$n" -eq 3 ] && break
        sleep 0.1
    done
    [ "$n" -eq 3 ] || fail "shard :$port live ring never converged to 3 peers"
done
log "single node on :$SINGLE_PORT, rf=2 ring on :${SHARD_PORTS[*]}"

# --- upload + fit ---------------------------------------------------------
for name in "${NAMES[@]}"; do
    curl -fsS -X PUT --data-binary "@$TMP/points.csv" \
        "http://127.0.0.1:$SINGLE_PORT/v1/datasets/$name" >/dev/null
    # All ring uploads enter through shard 0: non-owned names are forwarded
    # to their primaries, which ship replica snapshots.
    curl -fsS -X PUT --data-binary "@$TMP/points.csv" \
        "http://127.0.0.1:${SHARD_PORTS[0]}/v1/datasets/$name" >/dev/null
done

fit() { # host:port, name
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "{\"dataset\":\"$2\",\"algorithm\":\"Ex-DPC\",\"params\":$PARAMS}" \
        "http://127.0.0.1:$1/v1/fit" >/dev/null
}
for i in "${!NAMES[@]}"; do
    fit "$SINGLE_PORT" "${NAMES[$i]}"
    # Round-robin the fitting instance; forwarding must land each fit on
    # the primary regardless of the entry point.
    fit "${SHARD_PORTS[$((i % 3))]}" "${NAMES[$i]}"
done

# Probe batch: the first 40 uploaded points, as a JSON array of arrays.
PROBES="$(head -40 "$TMP/points.csv" \
    | jq -R -s 'split("\n") | map(select(length > 0) | split(",") | map(tonumber))')"

assign_body() { # name
    jq -cn --arg name "$1" --argjson params "$PARAMS" --argjson probes "$PROBES" \
        '{dataset: $name, algorithm: "Ex-DPC", params: $params, points: $probes}'
}
assign() { # host:port, name -> raw response body
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$(assign_body "$2")" "http://127.0.0.1:$1/v1/assign"
}

# --- byte-identical answers through every instance ------------------------
declare -A WANT=()
for name in "${NAMES[@]}"; do
    # Second call so cache_hit=true on both deployments being compared.
    assign "$SINGLE_PORT" "$name" >/dev/null
    WANT[$name]="$(assign "$SINGLE_PORT" "$name")"
    [ -n "${WANT[$name]}" ] || fail "single node returned nothing for $name"
    for port in "${SHARD_PORTS[@]}"; do
        got="$(assign "$port" "$name")"
        [ "$got" = "${WANT[$name]}" ] || \
            fail "assign $name via :$port differs from single node: $got vs ${WANT[$name]}"
    done
done
log "assign answers byte-identical across all 3 instances for ${#NAMES[@]} keys"

# Forwarding must actually have happened (shard 0 took every upload but
# is primary for only some keys), replication must have placed every key
# on exactly two shards, and the aggregate must see the whole ring.
FWD=0
for port in "${SHARD_PORTS[@]}"; do
    f="$(curl -fsS "http://127.0.0.1:$port/v1/stats" | jq '.forwarded')"
    FWD=$((FWD + f))
done
[ "$FWD" -gt 0 ] || fail "no instance ever forwarded a request"
AGG="$(curl -fsS "http://127.0.0.1:${SHARD_PORTS[0]}/v1/stats")"
[ "$(jq '.peers_up' <<<"$AGG")" -eq 3 ] || fail "aggregate stats: peers_up != 3: $AGG"
[ "$(jq '.rf' <<<"$AGG")" -eq 2 ] || fail "aggregate stats: rf != 2: $AGG"
[ "$(jq '.total.datasets' <<<"$AGG")" -eq $((2 * ${#NAMES[@]})) ] || \
    fail "aggregate stats: total.datasets != $((2 * ${#NAMES[@]})) (rf=2): $AGG"
[ "$(jq '.total.cache_misses' <<<"$AGG")" -eq "${#NAMES[@]}" ] || \
    fail "aggregate stats: replication caused refits: $AGG"
log "forwarding exercised ($FWD forwards), every key on 2 shards, ${#NAMES[@]} fits ring-wide"

# --- chaos: SIGKILL the primary mid-stream --------------------------------
# The victim is the primary of NAMES[0]; the stream enters through that
# key's replica, which serves it locally from the shipped model, so the
# primary's death must be invisible to the stream.
RING0="$(curl -fsS "http://127.0.0.1:${SHARD_PORTS[0]}/v1/ring?key=${NAMES[0]}")"
VICTIM_ADDR="$(jq -r '.owners[0]' <<<"$RING0")"
ENTRY_ADDR="$(jq -r '.owners[1]' <<<"$RING0")"
VICTIM_PORT="${VICTIM_ADDR##*:}"
ENTRY_PORT="${ENTRY_ADDR##*:}"
SURVIVOR_PORTS=()
for port in "${SHARD_PORTS[@]}"; do
    [ "$port" != "$VICTIM_PORT" ] && SURVIVOR_PORTS+=("$port")
done
[ "${#SURVIVOR_PORTS[@]}" -eq 2 ] || fail "victim $VICTIM_ADDR not among the shard ports"

declare -A MISSES_BEFORE=()
for port in "${SURVIVOR_PORTS[@]}"; do
    MISSES_BEFORE[$port]="$(curl -fsS -H 'X-Dpcd-Forwarded: 1' \
        "http://127.0.0.1:$port/v1/stats" | jq '.cache_misses')"
done

stream_chaos() { # host:port, out
    "$TMP/dpcstream" -addr "http://127.0.0.1:$1" -dataset "${NAMES[0]}" \
        -dcut 2500 -rhomin 5 -deltamin 12000 \
        -in "$TMP/chaos.csv" -out "$2" -mode stream
}
log "healthy reference stream of $CHAOS_N points via replica :$ENTRY_PORT"
stream_chaos "$ENTRY_PORT" "$TMP/labels.ref" || fail "healthy reference stream failed"

log "streaming again and SIGKILLing primary $VICTIM_ADDR mid-stream"
stream_chaos "$ENTRY_PORT" "$TMP/labels.chaos" &
STREAM_PID=$!
# Kill as soon as the first label chunks have landed, so the death is
# genuinely mid-stream at any CHAOS_N.
for _ in $(seq 1 200); do
    [ -s "$TMP/labels.chaos" ] && break
    sleep 0.05
done
kill -9 "${SHARD_PID[$VICTIM_PORT]}"
wait "${SHARD_PID[$VICTIM_PORT]}" 2>/dev/null || true

# Detection window: the heartbeat has not necessarily evicted the victim
# yet, but batch assigns for every key must already fail over to live
# replicas — zero failed assigns.
for name in "${NAMES[@]}"; do
    for port in "${SURVIVOR_PORTS[@]}"; do
        got="$(assign "$port" "$name")" || fail "assign $name via :$port failed during the detection window"
        [ "$(jq '.cache_hit' <<<"$got")" = "true" ] || \
            fail "assign $name via :$port refit during the detection window"
    done
done
log "zero failed assigns during the detection window"

wait "$STREAM_PID" || fail "chaos stream failed after the primary was SIGKILLed"
cmp "$TMP/labels.ref" "$TMP/labels.chaos" \
    || fail "labels from the chaos stream differ from the healthy reference"
GOT_N="$(wc -l < "$TMP/labels.chaos")"
[ "$GOT_N" -eq "$CHAOS_N" ] || fail "chaos stream returned $GOT_N labels, want $CHAOS_N"
log "chaos stream finished: $CHAOS_N labels byte-identical to the healthy run"

# --- heartbeat evicts the dead shard; nobody posts /v1/ring ---------------
evicted=0
for _ in $(seq 1 100); do
    ring="$(curl -fsS "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/ring")"
    if [ "$(jq '.peers | length' <<<"$ring")" -eq 2 ] && \
       [ "$(jq -r '.down[0] // empty' <<<"$ring")" = "$VICTIM_ADDR" ]; then
        evicted=1
        break
    fi
    sleep 0.1
done
[ "$evicted" -eq 1 ] || fail "heartbeat never evicted $VICTIM_ADDR from the live ring"
log "heartbeat evicted $VICTIM_ADDR without any POST /v1/ring"

# Post-eviction: every key — the victim's included — answers from the
# surviving replicas, byte-identical, from cache.
for name in "${NAMES[@]}"; do
    for port in "${SURVIVOR_PORTS[@]}"; do
        got="$(assign "$port" "$name")"
        [ "$got" = "${WANT[$name]}" ] || \
            fail "post-kill assign $name via :$port differs from single node"
        [ "$(jq '.cache_hit' <<<"$got")" = "true" ] || \
            fail "post-kill assign $name via :$port was not a cache hit"
    done
done

for port in "${SURVIVOR_PORTS[@]}"; do
    after="$(curl -fsS -H 'X-Dpcd-Forwarded: 1' \
        "http://127.0.0.1:$port/v1/stats" | jq '.cache_misses')"
    [ "$after" -eq "${MISSES_BEFORE[$port]}" ] || \
        fail "survivor :$port refit models across the chaos run ($after vs ${MISSES_BEFORE[$port]} misses)"
done
AGG="$(curl -fsS "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/stats")"
[ "$(jq '.peers_up' <<<"$AGG")" -eq 2 ] || fail "aggregate after kill: peers_up != 2: $AGG"
[ "$(jq -r '.down[0]' <<<"$AGG")" = "$VICTIM_ADDR" ] || fail "aggregate after kill: down list wrong: $AGG"
[ "$(jq --arg v "$VICTIM_ADDR" \
    '[.per_peer[] | select(.peer == $v)][0].unreachable' <<<"$AGG")" = "true" ] || \
    fail "aggregate after kill: victim not marked unreachable: $AGG"

log "SIGKILL mid-stream -> zero failed assigns, zero refits, byte-identical labels; heartbeat healed the ring"

# --- drift: a tripped tracker refits in the background; replicas warm-load --
# Runs on the healed 2-shard ring (rf=2 clamps to both survivors), after
# the zero-refit assertions above so the deliberate drift refit cannot
# contaminate them. The daemons run the default drift policy: 4096-point
# windows, trips gated behind 8192 observations, halo trip at 50% noise.
DKEY=e2e-drift
curl -fsS -X PUT --data-binary "@$TMP/points.csv" \
    "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/datasets/$DKEY" >/dev/null
fit "${SURVIVOR_PORTS[0]}" "$DKEY"

DRING="$(curl -fsS "http://127.0.0.1:${SURVIVOR_PORTS[0]}/v1/ring?key=$DKEY")"
DPRIMARY="$(jq -r '.owners[0]' <<<"$DRING")"; DPRIMARY_PORT="${DPRIMARY##*:}"
DREPLICA="$(jq -r '.owners[1]' <<<"$DRING")"; DREPLICA_PORT="${DREPLICA##*:}"
[ "$DPRIMARY_PORT" != "$DREPLICA_PORT" ] || fail "drift key $DKEY not replicated across both survivors"

local_stat() { # port, jq filter
    curl -fsS -H 'X-Dpcd-Forwarded: 1' "http://127.0.0.1:$1/v1/stats" | jq "$2"
}
# The replica got the model by snapshot shipping; its first assign must
# be a warm cache hit, not a fit.
REPLICA_MISSES="$(local_stat "$DREPLICA_PORT" '.cache_misses')"
got="$(assign "$DPRIMARY_PORT" "$DKEY")" # pins the primary's drift lineage
got="$(assign "$DREPLICA_PORT" "$DKEY")"
[ "$(jq '.cache_hit' <<<"$got")" = "true" ] || fail "drift key not warm on replica :$DREPLICA_PORT"
[ "$(local_stat "$DREPLICA_PORT" '.cache_misses')" -eq "$REPLICA_MISSES" ] || \
    fail "replica :$DREPLICA_PORT fitted $DKEY instead of warm-loading the shipped model"

# Slide the window: append a full window of far-shifted points through
# the NON-primary shard — the write is routed to the primary, which
# re-replicates. Every original row expires; the dataset is now version
# 2, but the primary keeps serving the version-1 model (stale) until its
# tracker trips.
awk -F, -v OFS=, '{ for (i = 1; i <= NF; i++) $i += 10000000; print }' \
    "$TMP/points.csv" >"$TMP/shifted.csv"
SHIFTED="$(jq -R -s 'split("\n") | map(select(length > 0) | split(",") | map(tonumber))' \
    <"$TMP/shifted.csv")"
AP="$(jq -cn --arg name "$DKEY" --argjson pts "$SHIFTED" '{dataset: $name, points: $pts}' |
    curl -fsS -X POST -H 'Content-Type: application/json' -d @- \
        "http://127.0.0.1:$DREPLICA_PORT/v1/points")"
[ "$(jq '.version' <<<"$AP")" -eq 2 ] || fail "append did not advance the dataset version: $AP"
[ "$(jq '.expired' <<<"$AP")" -eq 2000 ] || fail "append did not expire the old window: $AP"

# Shifted traffic at the primary: every request must succeed while the
# stale model answers (the labels are all noise — that IS the drift).
# Trips are evaluated when a 4096-point window closes and gated behind
# 8192 lifetime observations, so the second window close can trip at the
# earliest; 8 batches of 2000 put two closes comfortably past the gate.
drift_assign() { # port -> response body
    jq -cn --arg name "$DKEY" --argjson params "$PARAMS" --argjson pts "$SHIFTED" \
        '{dataset: $name, algorithm: "Ex-DPC", params: $params, points: $pts}' |
        curl -fsS -X POST -H 'Content-Type: application/json' -d @- \
            "http://127.0.0.1:$1/v1/assign"
}
for i in $(seq 1 8); do
    got="$(drift_assign "$DPRIMARY_PORT")" || fail "shifted assign $i failed during drift"
done
[ "$(local_stat "$DPRIMARY_PORT" '.drift_trips')" -ge 1 ] || \
    fail "shifted traffic never tripped the primary's drift tracker"

# The background refit swaps the version-2 model in; /v1/drift (asked
# via the replica — it relays to the primary) reports the swap. Assigns
# keep succeeding throughout.
swapped=0
for _ in $(seq 1 150); do
    got="$(drift_assign "$DPRIMARY_PORT")" || fail "assign failed while the refit was in flight"
    DR="$(curl -fsS "http://127.0.0.1:$DREPLICA_PORT/v1/drift?dataset=$DKEY&algorithm=Ex-DPC")"
    if [ "$(jq '.models[0].version' <<<"$DR")" -eq 2 ] && \
       [ "$(jq '.models[0].refitting' <<<"$DR")" = "false" ]; then
        swapped=1
        break
    fi
    sleep 0.2
done
[ "$swapped" -eq 1 ] || fail "background refit never swapped the version-2 model in: $DR"
[ "$(local_stat "$DPRIMARY_PORT" '.drift_refits')" -ge 1 ] || \
    fail "primary reports no drift refit after the swap"

# Post-swap: shifted points label as clusters again from the primary
# immediately; the replica adopts the refitted model when the primary's
# post-refit snapshot shipping lands (async after the swap), so poll it
# — every answer in the meantime must still succeed off its stale pin.
got="$(drift_assign "$DPRIMARY_PORT")"
nz="$(jq '[.labels[] | select(. != -1)] | length' <<<"$got")"
[ "$nz" -gt 0 ] || fail "shifted points still all-noise via primary :$DPRIMARY_PORT after the refit"
adopted=0
for _ in $(seq 1 100); do
    got="$(drift_assign "$DREPLICA_PORT")" || fail "replica assign failed while the refit shipped"
    nz="$(jq '[.labels[] | select(. != -1)] | length' <<<"$got")"
    if [ "$nz" -gt 0 ]; then
        adopted=1
        break
    fi
    sleep 0.1
done
[ "$adopted" -eq 1 ] || fail "replica :$DREPLICA_PORT never adopted the shipped refit"
[ "$(local_stat "$DREPLICA_PORT" '.drift_refits')" -eq 0 ] || \
    fail "replica :$DREPLICA_PORT refitted instead of warm-loading the drift refit"
[ "$(local_stat "$DREPLICA_PORT" '.cache_misses')" -eq "$REPLICA_MISSES" ] || \
    fail "replica :$DREPLICA_PORT cache-missed during the drift leg"
log "drift: halo trip -> background refit swapped v2 in with zero failed requests; replica warm-loaded it"

log "PASS: chaos SIGKILL healed with zero refits + drift refit swapped and shipped with zero failed requests"
