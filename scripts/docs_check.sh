#!/usr/bin/env bash
# Markdown link check for the committed docs: every relative link in the
# top-level markdown files and docs/ must point at a file that exists,
# and every #anchor must match a heading in the target file (GitHub
# slug rules: lowercase, spaces to hyphens, punctuation dropped).
# Pure shell + grep + sed — runs offline, installs nothing. External
# http(s) links are not fetched; CI must stay hermetic.
set -euo pipefail
cd "$(dirname "$0")/.."

files=(README.md ROADMAP.md CHANGES.md PAPER.md docs/*.md)

# slug <heading text> -> github anchor slug
slug() {
    printf '%s' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/`//g' -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# anchors <file> -> one slug per heading line (fenced code blocks skipped
# so `# comment` lines in shell examples are not mistaken for headings)
anchors() {
    awk '/^```/ { fence = !fence; next } !fence && /^#+ / { sub(/^#+ /, ""); print }' "$1" |
        while IFS= read -r h; do
            slug "$h"
            echo
        done
}

fail=0
for f in "${files[@]}"; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Pull out every inline link target: [text](target). One per line;
    # images and reference-style links are not used in this repo.
    targets=$(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//' || true)
    while IFS= read -r t; do
        [ -n "$t" ] || continue
        case "$t" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path=${t%%#*}
        anchor=${t#*#}
        [ "$anchor" = "$t" ] && anchor=""
        if [ -z "$path" ]; then
            target_file=$f # pure in-page anchor like (#verifying)
        else
            target_file=$dir/$path
        fi
        if [ ! -e "$target_file" ]; then
            echo "$f: broken link: ($t) -> $target_file does not exist"
            fail=1
            continue
        fi
        if [ -n "$anchor" ] && [[ $target_file == *.md ]]; then
            # No grep -q here: under pipefail its early exit would EPIPE
            # the anchors writer and fail the pipeline on a *successful*
            # match. Plain grep reads to EOF.
            if ! anchors "$target_file" | grep -xF "$anchor" >/dev/null; then
                echo "$f: broken anchor: ($t) -> no heading #$anchor in $target_file"
                fail=1
            fi
        fi
    done <<<"$targets"
done

if [ "$fail" = 0 ]; then
    echo "docs-check: all relative links and anchors resolve"
fi
exit $fail
