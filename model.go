package dpc

import (
	"repro/internal/core"
	"repro/internal/geom"
)

// Model is a fitted clustering frozen for serving: dataset, result, and
// the kd-tree Assign uses to label new points without re-clustering.
// Fit once, then call Assign/AssignAll from any number of goroutines —
// the contract cmd/dpcd serves over HTTP.
type Model = core.Model

// ModelStats summarizes a fitted model (size, clusters, fit timing).
type ModelStats = core.ModelStats

// Fit runs an algorithm over a flat Dataset and freezes the outcome into
// a reusable Model. The dataset must not be mutated afterwards.
func Fit(alg Algorithm, ds *Dataset, p Params) (*Model, error) {
	return core.Fit(alg, ds, p)
}

// FitRows is Fit over row-slice points (one copy at the boundary).
func FitRows(alg Algorithm, pts [][]float64, p Params) (*Model, error) {
	ds, err := geom.FromRows(pts)
	if err != nil {
		return nil, err
	}
	return core.Fit(alg, ds, p)
}
