package main

import (
	"testing"

	"repro/datasets"
)

func TestParsePreload(t *testing.T) {
	specs, err := parsePreload(" pamap2:20000, s2:5000 ,syn ")
	if err != nil {
		t.Fatal(err)
	}
	want := []preloadSpec{{"pamap2", 20000}, {"s2", 5000}, {"syn", 20000}}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	if specs, err := parsePreload(""); err != nil || specs != nil {
		t.Errorf("empty spec: got %v, %v", specs, err)
	}
	for _, bad := range []string{"s2:abc", "s2:0", "s2:-5"} {
		if _, err := parsePreload(bad); err == nil {
			t.Errorf("parsePreload(%q) accepted bad cardinality", bad)
		}
	}
}

func TestPreloadNamesGenerate(t *testing.T) {
	// Every advertised bundled name must actually generate, at a tiny
	// cardinality so the test stays fast.
	for _, name := range datasets.Names() {
		d, ok := datasets.Generate(name, 200, 1)
		if !ok {
			t.Errorf("Generate(%q) not found", name)
			continue
		}
		if d.Points.N == 0 || d.Points.Dim == 0 {
			t.Errorf("Generate(%q) produced empty dataset", name)
		}
		if d.DCut <= 0 || d.DeltaMin <= d.DCut {
			t.Errorf("Generate(%q) has unusable default params: %+v", name, d)
		}
	}
}

func TestParsePeers(t *testing.T) {
	got := parsePeers(" http://a:1 , http://b:2 ,, ")
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Errorf("parsePeers = %v", got)
	}
	if got := parsePeers(""); got != nil {
		t.Errorf("parsePeers(\"\") = %v, want nil", got)
	}
}
