// Command dpcd is the density-peaks clustering daemon: an HTTP server
// over the fit-once/assign-many service layer. Datasets are uploaded (or
// preloaded from the bundled generators), models are fitted at most once
// per (dataset, algorithm, params) and kept in an LRU cache, and new
// points are labeled against a fitted model via its kd-tree in
// microseconds instead of re-clustering.
//
// Usage:
//
//	dpcd                                  # empty registry on :8080
//	dpcd -preload pamap2:20000,s2:5000    # serve bundled datasets
//	dpcd -addr :9000 -workers 8 -cache 16
//	dpcd -data-dir /var/lib/dpcd          # durable: snapshots + warm start
//	dpcd -addr :8081 -data-dir /var/lib/dpcd-1 \
//	     -self http://10.0.0.1:8081 \
//	     -peers http://10.0.0.1:8081,http://10.0.0.2:8081   # ring shard
//
// With -data-dir, datasets are snapshotted on upload and models on fit
// completion; a restart warm-loads both and serves previously fitted
// models without re-clustering. With -peers, the instance joins a
// consistent-hash ring: datasets (and every model fitted on them) are
// placed on -rf shards each by successor-replica placement, any instance
// transparently forwards requests it does not replicate (reads fail over
// across replicas), uploads and fits are coordinated by the key's
// primary with snapshot shipping to replicas, /v1/stats aggregates
// across the ring, and POST /v1/ring rebalances membership with snapshot
// warm-loads instead of refits. With -heartbeat > 0 membership heals
// itself: each instance probes its peers, walks them through a
// suspect→dead state machine, and evicts dead shards from its live ring
// (promoting their keys' replicas) without any manual POST /v1/ring.
//
// Drift tracking is on by default: every assign also feeds a per-model
// drift tracker (distance-to-center quantiles and halo rate against the
// fit-time reference, O(1) per point), and when a tracker trips the
// daemon refits in the background while the old model keeps serving —
// the swap is one atomic pointer exchange, and in ring mode only the
// key's primary refits, shipping the new model to replicas. POST
// /v1/points appends to a dataset and, with -window, expires its oldest
// rows, maintaining the density index incrementally. See docs/api.md
// for the endpoint reference and docs/operations.md for flag tuning,
// the on-disk layout, recovery semantics, ring deployment, and the
// drift-refit runbook.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/datasets"
	"repro/internal/drift"
	"repro/internal/health"
	"repro/internal/persist"
	"repro/internal/ring"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker pool size for fits and batch assigns (0 = all CPUs)")
		cache       = flag.Int("cache", 8, "maximum fitted models kept in the LRU cache")
		streamChunk = flag.Int("stream-chunk", 0, "points labeled per /v1/assign/stream response record (0 = scale to -workers)")
		maxStreams  = flag.Int("max-streams", 0, "concurrent /v1/assign/stream cap; extra streams get HTTP 429 (0 = 64)")
		maxStreamPt = flag.Int64("max-stream-points", 0, "points accepted per stream before a terminal error record (0 = 1<<30)")
		preload     = flag.String("preload", "", "comma list of bundled datasets to serve, each name[:n] from "+strings.Join(datasets.Names(), ","))
		seed        = flag.Int64("seed", 1, "generation seed for preloaded datasets")
		dataDir     = flag.String("data-dir", "", "directory for dataset and model snapshots; restarts warm-load it (empty = in-memory only)")
		peers       = flag.String("peers", "", "comma list of ring shard base URLs (http://host:port); empty = single instance")
		self        = flag.String("self", "", "this instance's base URL exactly as it appears in -peers (required with -peers)")
		vnodes      = flag.Int("vnodes", ring.DefaultVnodes, "virtual nodes per shard on the consistent-hash ring")
		fwdTimeout  = flag.Duration("forward-timeout", 60*time.Second, "per-attempt timeout when forwarding a request to its owning shard; raise it if cold fits on your datasets run longer")
		fwdRetries  = flag.Int("forward-retries", 2, "additional attempts after a transport error when forwarding (0 disables retries)")
		rf          = flag.Int("rf", 1, "replication factor: each dataset key lives on this many shards (clamped to the live shard count)")
		heartbeat   = flag.Duration("heartbeat", 0, "peer health-probe interval; > 0 enables automatic membership (dead shards evicted, recovered shards re-added, no manual POST /v1/ring needed)")
		hbTimeout   = flag.Duration("heartbeat-timeout", 0, "per-probe timeout (0 = the -heartbeat interval)")
		deadAfter   = flag.Int("dead-after", 3, "consecutive failed probes before a peer is evicted from the live ring")
		window      = flag.Int64("window", 0, "sliding-window size: POST /v1/points expires the oldest rows past this many (0 = unbounded, appends only grow)")
		driftOn     = flag.Bool("drift", true, "track per-model assign drift and refit in the background when it trips")
		driftScore  = flag.Float64("drift-score-threshold", 0.25, "relative q50/q90 shift against the fit-time reference that trips a refit (0 disables the score trip)")
		driftHalo   = flag.Float64("drift-halo-threshold", 0.5, "window halo (noise-label) rate that trips a refit (0 disables the halo trip)")
		driftWindow = flag.Int("drift-window", 0, "assign observations per drift window (0 = 4096)")
		driftMinPts = flag.Int64("drift-min-points", 0, "observations required before any trip (0 = 2x the drift window)")
		driftCool   = flag.Duration("drift-cooldown", 0, "minimum time between background refits of one model (0 = 30s)")
	)
	flag.Parse()

	peerList := parsePeers(*peers)
	var owns func(string) bool
	if len(peerList) > 0 {
		if *self == "" {
			log.Fatalf("dpcd: -peers requires -self (this instance's entry in the peer list)")
		}
		var err error
		if owns, err = service.OwnsFunc(*self, peerList, *vnodes, *rf); err != nil {
			log.Fatalf("dpcd: %v", err)
		}
	}

	var store *persist.Store
	if *dataDir != "" {
		var err error
		if store, err = persist.Open(*dataDir, log.Printf); err != nil {
			log.Fatalf("dpcd: %v", err)
		}
	}
	// In ring mode the warm load is filtered to owned keys; snapshots for
	// keys owned elsewhere stay on disk, ready for a later rebalance.
	var driftCfg *drift.Config
	if *driftOn {
		driftCfg = &drift.Config{
			WindowPoints:   *driftWindow,
			MinPoints:      *driftMinPts,
			ScoreThreshold: *driftScore,
			HaloThreshold:  *driftHalo,
			Cooldown:       *driftCool,
		}
	}
	svc := service.New(service.Options{
		CacheSize: *cache, Workers: *workers, Store: store, Owns: owns,
		StreamChunk: *streamChunk, MaxStreams: *maxStreams, MaxStreamPoints: *maxStreamPt,
		Drift: driftCfg, Window: *window,
	})
	if store != nil {
		st := svc.Stats()
		log.Printf("dpcd: restored %d dataset(s) and %d model(s) from %s",
			st.DatasetsRestored, st.ModelsRestored, store.Dir())
	}

	handler := service.NewHandler(svc)
	var router *service.Router
	var monitor *health.Monitor
	if len(peerList) > 0 {
		retries := *fwdRetries
		if retries == 0 {
			retries = -1 // ClientOptions: 0 means default, < 0 means none
		}
		copts := service.ClientOptions{Timeout: *fwdTimeout, Retries: retries}
		var err error
		ropts := service.RouterOptions{Vnodes: *vnodes, RF: *rf, Client: copts}
		if router, err = service.NewRouter(svc, *self, peerList, ropts); err != nil {
			log.Fatalf("dpcd: %v", err)
		}
		handler = router.Handler()
		log.Printf("dpcd: ring shard %s of %d peer(s), %d vnodes, rf=%d", router.Self(), len(peerList), *vnodes, router.RF())
		if *heartbeat > 0 {
			monitor = health.New(health.Config{
				Self:      router.Self(),
				Interval:  *heartbeat,
				Timeout:   *hbTimeout,
				DeadAfter: *deadAfter,
			}, router.ConfiguredPeers, health.HTTPProbe(nil), func(live []string) {
				rec := router.SetLive(live)
				log.Printf("dpcd: live ring now %v (loaded %d dataset(s), %d model(s); evicted %d)",
					live, rec.DatasetsLoaded, rec.ModelsLoaded, rec.DatasetsEvicted)
			})
			log.Printf("dpcd: heartbeat every %v, dead after %d missed probes", *heartbeat, *deadAfter)
		}
	}

	specs, err := parsePreload(*preload)
	if err != nil {
		log.Fatalf("dpcd: %v", err)
	}
	for _, sp := range specs {
		// Every ring instance can be launched with the identical -preload
		// list; each registers only the keys it owns, so the ring as a
		// whole serves the full list exactly once.
		if router != nil && !router.Owns(sp.name) {
			log.Printf("dpcd: preload %s owned by another shard; skipping", sp.name)
			continue
		}
		d, ok := datasets.Generate(sp.name, sp.n, *seed)
		if !ok {
			log.Fatalf("dpcd: unknown bundled dataset %q; have %s", sp.name, strings.Join(datasets.Names(), ", "))
		}
		// PutDataset treats a bit-identical re-upload as a no-op, so a
		// preload matching a warm-loaded snapshot keeps the restored
		// models instead of purging them.
		info, err := svc.PutDataset(sp.name, d.Points)
		if err != nil {
			log.Fatalf("dpcd: preload %s: %v", sp.name, err)
		}
		log.Printf("dpcd: serving %s (n=%d dim=%d); suggested params dcut=%g rho_min=%g delta_min=%g",
			info.Name, info.N, info.Dim, d.DCut, d.RhoMin, d.DeltaMin)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(handler),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("dpcd: listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("dpcd: %v", err)
		}
	}()
	if monitor != nil {
		// Started after the listener goroutine: peers probing this instance
		// during its own first tick should find /healthz already answering.
		monitor.Start()
		defer monitor.Stop()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("dpcd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// preloadSpec is one -preload element: a bundled dataset name and its
// cardinality.
type preloadSpec struct {
	name string
	n    int
}

// parsePeers splits the -peers comma list, trimming blanks; URL
// validation happens in the service layer, which normalizes entries.
func parsePeers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parsePreload parses "name[:n]" comma lists; n defaults to 20000.
func parsePreload(s string) ([]preloadSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []preloadSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sp := preloadSpec{name: part, n: 20000}
		if name, ns, ok := strings.Cut(part, ":"); ok {
			n, err := strconv.Atoi(ns)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad preload cardinality in %q", part)
			}
			sp.name, sp.n = name, n
		}
		out = append(out, sp)
	}
	return out, nil
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
