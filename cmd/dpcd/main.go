// Command dpcd is the density-peaks clustering daemon: an HTTP server
// over the fit-once/assign-many service layer. Datasets are uploaded (or
// preloaded from the bundled generators), models are fitted at most once
// per (dataset, algorithm, params) and kept in an LRU cache, and new
// points are labeled against a fitted model via its kd-tree in
// microseconds instead of re-clustering.
//
// Usage:
//
//	dpcd                                  # empty registry on :8080
//	dpcd -preload pamap2:20000,s2:5000    # serve bundled datasets
//	dpcd -addr :9000 -workers 8 -cache 16
//	dpcd -data-dir /var/lib/dpcd          # durable: snapshots + warm start
//
// With -data-dir, datasets are snapshotted on upload and models on fit
// completion; a restart warm-loads both and serves previously fitted
// models without re-clustering. See the README "Serving: dpcd" section
// for the JSON API, the on-disk layout, and recovery semantics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/datasets"
	"repro/internal/persist"
	"repro/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "worker pool size for fits and batch assigns (0 = all CPUs)")
		cache   = flag.Int("cache", 8, "maximum fitted models kept in the LRU cache")
		preload = flag.String("preload", "", "comma list of bundled datasets to serve, each name[:n] from "+strings.Join(datasets.Names(), ","))
		seed    = flag.Int64("seed", 1, "generation seed for preloaded datasets")
		dataDir = flag.String("data-dir", "", "directory for dataset and model snapshots; restarts warm-load it (empty = in-memory only)")
	)
	flag.Parse()

	var store *persist.Store
	if *dataDir != "" {
		var err error
		if store, err = persist.Open(*dataDir, log.Printf); err != nil {
			log.Fatalf("dpcd: %v", err)
		}
	}
	svc := service.New(service.Options{CacheSize: *cache, Workers: *workers, Store: store})
	if store != nil {
		st := svc.Stats()
		log.Printf("dpcd: restored %d dataset(s) and %d model(s) from %s",
			st.DatasetsRestored, st.ModelsRestored, store.Dir())
	}
	specs, err := parsePreload(*preload)
	if err != nil {
		log.Fatalf("dpcd: %v", err)
	}
	for _, sp := range specs {
		d, ok := datasets.Generate(sp.name, sp.n, *seed)
		if !ok {
			log.Fatalf("dpcd: unknown bundled dataset %q; have %s", sp.name, strings.Join(datasets.Names(), ", "))
		}
		// PutDataset treats a bit-identical re-upload as a no-op, so a
		// preload matching a warm-loaded snapshot keeps the restored
		// models instead of purging them.
		info, err := svc.PutDataset(sp.name, d.Points)
		if err != nil {
			log.Fatalf("dpcd: preload %s: %v", sp.name, err)
		}
		log.Printf("dpcd: serving %s (n=%d dim=%d); suggested params dcut=%g rho_min=%g delta_min=%g",
			info.Name, info.N, info.Dim, d.DCut, d.RhoMin, d.DeltaMin)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(service.NewHandler(svc)),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		log.Printf("dpcd: listening on %s", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("dpcd: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("dpcd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}

// preloadSpec is one -preload element: a bundled dataset name and its
// cardinality.
type preloadSpec struct {
	name string
	n    int
}

// parsePreload parses "name[:n]" comma lists; n defaults to 20000.
func parsePreload(s string) ([]preloadSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []preloadSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sp := preloadSpec{name: part, n: 20000}
		if name, ns, ok := strings.Cut(part, ":"); ok {
			n, err := strconv.Atoi(ns)
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad preload cardinality in %q", part)
			}
			sp.name, sp.n = name, n
		}
		out = append(out, sp)
	}
	return out, nil
}

// logRequests is a minimal access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s", r.Method, r.URL.Path, time.Since(start))
	})
}
