// Command datagen writes the evaluation datasets (or stand-ins) to CSV or
// binary files for use with the dpc command or external tools.
//
// Usage:
//
//	datagen -dataset syn -n 100000 -noise 0.02 -out syn.csv
//	datagen -dataset s2 -out s2.csv
//	datagen -dataset airline -n 500000 -format bin -out airline.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/datasets"
)

func main() {
	var (
		name   = flag.String("dataset", "syn", "syn, s1, s2, s3, s4, airline, household, pamap2, sensor")
		n      = flag.Int("n", 100000, "number of points")
		noise  = flag.Float64("noise", 0.02, "noise rate (syn only)")
		seed   = flag.Int64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "csv or bin")
		out    = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if err := run(*name, *n, *noise, *seed, *format, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(name string, n int, noise float64, seed int64, format, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var ds *datasets.Dataset
	switch name {
	case "syn":
		ds = datasets.Syn(n, noise, seed)
	case "s1", "s2", "s3", "s4":
		ds = datasets.SSet(int(name[1]-'0'), n, seed)
	case "airline":
		ds = datasets.AirlineLike(n, seed)
	case "household":
		ds = datasets.HouseholdLike(n, seed)
	case "pamap2":
		ds = datasets.PAMAP2Like(n, seed)
	case "sensor":
		ds = datasets.SensorLike(n, seed)
	default:
		return fmt.Errorf("unknown dataset %q", name)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "csv":
		err = datasets.SaveCSV(f, ds.Points)
	case "bin":
		err = datasets.SaveBinary(f, ds.Points)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d %d-dimensional points to %s (defaults: dcut=%g rhomin=%g deltamin=%g)\n",
		ds.Len(), ds.Dim(), out, ds.DCut, ds.RhoMin, ds.DeltaMin)
	return nil
}
