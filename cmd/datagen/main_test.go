package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/datasets"
)

func TestRunAllDatasets(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"syn", "s1", "s2", "s3", "s4", "airline", "household", "pamap2", "sensor"} {
		out := filepath.Join(dir, name+".csv")
		if err := run(name, 500, 0.02, 1, "csv", out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		pts, err := datasets.LoadCSVFile(out)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		if pts.N < 500 {
			t.Errorf("%s: only %d points", name, pts.N)
		}
	}
}

func TestRunBinaryFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "x.bin")
	if err := run("sensor", 300, 0, 1, "bin", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pts, err := datasets.LoadBinary(f)
	if err != nil {
		t.Fatal(err)
	}
	if pts.N != 300 || pts.Dim != 8 {
		t.Errorf("reloaded %dx%d", pts.N, pts.Dim)
	}
}

func TestRunValidation(t *testing.T) {
	dir := t.TempDir()
	if err := run("syn", 10, 0, 1, "csv", ""); err == nil || !strings.Contains(err.Error(), "-out") {
		t.Error("missing -out accepted")
	}
	if err := run("marsdata", 10, 0, 1, "csv", filepath.Join(dir, "x")); err == nil || !strings.Contains(err.Error(), "unknown dataset") {
		t.Error("unknown dataset accepted")
	}
	if err := run("syn", 10, 0, 1, "xml", filepath.Join(dir, "y")); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Error("unknown format accepted")
	}
}
