// Command dpcstream labels a CSV point stream against a running dpcd
// daemon — the client side of fit-once/assign-many at any scale. By
// default it uses the chunked NDJSON endpoint (POST /v1/assign/stream),
// so the stream can be arbitrarily longer than dpcd's per-request batch
// cap while both ends stay at O(chunk) memory; -mode batch sends the
// same points as capped /v1/assign calls instead, which is also how the
// e2e suite proves the two paths label identically. -wire binary switches
// either mode onto the binary frame codec (application/x-dpc-frame),
// skipping JSON float encoding on the hot path; -float32 additionally
// halves the coordinate bytes.
//
// Usage:
//
//	dpcstream -addr http://127.0.0.1:8080 -dataset s2 \
//	    -dcut 2500 -rhomin 5 -deltamin 12000 \
//	    -in points.csv -out labels.txt
//
// Input is one comma-separated point per line (the dpcd upload format);
// "-" means stdin. Output is one integer label per input line, in input
// order; -1 is noise; "-" means stdout. A summary goes to stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/api"
	"repro/internal/service"
	"repro/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dpcstream: ")
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "dpcd base URL (any ring instance)")
		dataset   = flag.String("dataset", "", "dataset the model was (or will be) fitted on")
		algorithm = flag.String("algorithm", "Ex-DPC", "clustering algorithm by paper name")
		dcut      = flag.Float64("dcut", 0, "d_cut density radius")
		rhomin    = flag.Float64("rhomin", 0, "rho_min center density threshold")
		deltamin  = flag.Float64("deltamin", 0, "delta_min center separation threshold")
		epsilon   = flag.Float64("epsilon", 0, "epsilon (S-Approx-DPC only)")
		seed      = flag.Int64("seed", 0, "seed (randomized algorithms only)")
		in        = flag.String("in", "-", "input CSV of points, one per line (- = stdin)")
		out       = flag.String("out", "-", "output labels, one per line (- = stdout)")
		mode      = flag.String("mode", "stream", "transport: stream (/v1/assign/stream) or batch (/v1/assign)")
		batchSize = flag.Int("batch-size", 1<<20, "points per request in -mode batch (server caps at 1<<20)")
		wireFmt   = flag.String("wire", "json", "wire codec: json (NDJSON/JSON) or binary (application/x-dpc-frame)")
		f32       = flag.Bool("float32", false, "with -wire binary, send coordinates as float32 (half the bytes; lossy unless values round-trip)")
		gz        = flag.Bool("gzip", false, "with -mode stream, gzip-compress both stream directions (worthwhile on slow links)")
		upload    = flag.String("upload", "", "CSV file to upload as -dataset before fitting (empty: dataset must already exist)")
		precision = flag.String("precision", "f64", "storage precision for -upload: f32 (halves resident memory) or f64")
	)
	flag.Parse()
	if *dataset == "" {
		log.Fatal("-dataset is required")
	}
	if *batchSize <= 0 {
		log.Fatal("-batch-size must be positive")
	}
	if *precision != "f32" && *precision != "f64" {
		log.Fatalf("unknown -precision %q (want f32 or f64)", *precision)
	}
	if *precision == "f32" && *upload == "" {
		log.Fatal("-precision f32 requires -upload (precision is chosen at upload time)")
	}
	binary := false
	switch *wireFmt {
	case "json":
	case "binary":
		binary = true
	default:
		log.Fatalf("unknown -wire %q (want json or binary)", *wireFmt)
	}
	if *f32 && !binary {
		log.Fatal("-float32 requires -wire binary")
	}
	if *gz && *mode != "stream" {
		log.Fatal("-gzip requires -mode stream")
	}

	input := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		input = f
	}
	output := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		output = f
	}

	req := api.FitRequest{
		Dataset:   *dataset,
		Algorithm: *algorithm,
		Params: api.Params{
			DCut: *dcut, RhoMin: *rhomin, DeltaMin: *deltamin,
			Epsilon: *epsilon, Seed: *seed,
		},
	}
	client := service.NewClient(*addr, service.ClientOptions{GzipStream: *gz})
	if *upload != "" {
		csv, err := os.ReadFile(*upload)
		if err != nil {
			log.Fatal(err)
		}
		info, err := client.PutDatasetPrecision(*dataset, "csv", *precision, csv)
		if err != nil {
			log.Fatalf("uploading %s: %v", *upload, err)
		}
		echoed := info.Precision
		if echoed == "" {
			echoed = "f64 (daemon predates the precision surface)"
		}
		fmt.Fprintf(os.Stderr, "dpcstream: uploaded %s as %q: n=%d dim=%d precision=%s\n",
			*upload, *dataset, info.N, info.Dim, echoed)
	}
	points := bufio.NewScanner(input)
	points.Buffer(make([]byte, 64<<10), 1<<20)
	w := bufio.NewWriterSize(output, 1<<16)

	start := time.Now()
	var (
		labeled int64
		err     error
	)
	switch *mode {
	case "stream":
		labeled, err = runStream(client, req, points, w, binary, *f32)
	case "batch":
		labeled, err = runBatch(client, req, points, w, *batchSize, binary, *f32)
	default:
		log.Fatalf("unknown -mode %q (want stream or batch)", *mode)
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "dpcstream: labeled %d points in %.3fs (%.0f pts/s, mode %s, wire %s)\n",
		labeled, elapsed.Seconds(), float64(labeled)/elapsed.Seconds(), *mode, *wireFmt)
}

// runStream pipes the CSV through /v1/assign/stream: a goroutine
// converts lines to NDJSON lines — or binary points frames with -wire
// binary — as the response labels flow back, so memory stays bounded no
// matter how long the input is.
func runStream(client *service.Client, req api.FitRequest, points *bufio.Scanner, w *bufio.Writer, binary, f32 bool) (int64, error) {
	pr, pw := io.Pipe()
	go func() {
		next := func() ([]float64, error) {
			for points.Scan() {
				pt, err := parsePoint(points.Text())
				if err != nil || pt != nil {
					return pt, err
				}
			}
			if err := points.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		if binary {
			pw.CloseWithError(wire.EncodePoints(pw, next, 0, f32))
		} else {
			pw.CloseWithError(service.EncodePoints(pw, next))
		}
	}()
	var (
		sr  *service.StreamReader
		err error
	)
	if binary {
		sr, err = client.AssignStreamFrames(req, pr)
	} else {
		sr, err = client.AssignStream(req, pr)
	}
	if err != nil {
		return 0, err
	}
	defer sr.Close()
	var labeled int64
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			return labeled, nil
		}
		if err != nil {
			return labeled, err
		}
		labeled += int64(len(chunk))
		if err := writeLabels(w, chunk); err != nil {
			return labeled, err
		}
	}
}

// runBatch sends the same points as consecutive capped /v1/assign calls
// — the pre-streaming workaround, kept as the parity reference.
func runBatch(client *service.Client, req api.FitRequest, points *bufio.Scanner, w *bufio.Writer, batchSize int, binary, f32 bool) (int64, error) {
	var labeled int64
	batch := make([][]float64, 0, batchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		var (
			resp api.AssignResponse
			err  error
		)
		if binary {
			resp, err = client.AssignFrames(req, batch, f32)
		} else {
			resp, err = client.Assign(api.AssignRequest{FitRequest: req, Points: batch})
		}
		if err != nil {
			return err
		}
		labeled += int64(len(resp.Labels))
		batch = batch[:0]
		return writeLabels(w, resp.Labels)
	}
	for points.Scan() {
		pt, err := parsePoint(points.Text())
		if err != nil {
			return labeled, err
		}
		if pt == nil {
			continue
		}
		batch = append(batch, pt)
		if len(batch) == cap(batch) {
			if err := flush(); err != nil {
				return labeled, err
			}
		}
	}
	if err := points.Err(); err != nil {
		return labeled, err
	}
	return labeled, flush()
}

// parsePoint parses one CSV line into coordinates; blank lines return
// (nil, nil) and are skipped.
func parsePoint(line string) ([]float64, error) {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil, nil
	}
	cols := strings.Split(line, ",")
	pt := make([]float64, len(cols))
	for i, c := range cols {
		v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q: %w", c, err)
		}
		// JSON cannot carry NaN/Inf; reject here with the offending text
		// instead of failing mid-stream with a marshal error.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("coordinate %q is not finite", c)
		}
		pt[i] = v
	}
	return pt, nil
}

func writeLabels(w *bufio.Writer, labels []int32) error {
	var buf []byte
	for _, l := range labels {
		buf = strconv.AppendInt(buf[:0], int64(l), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
