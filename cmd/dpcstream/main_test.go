package main

import (
	"testing"
)

func TestParsePoint(t *testing.T) {
	pt, err := parsePoint(" 1.5, -2, 3e2 ")
	if err != nil || len(pt) != 3 || pt[0] != 1.5 || pt[1] != -2 || pt[2] != 300 {
		t.Errorf("parsePoint = %v, %v", pt, err)
	}
	if pt, err := parsePoint("   "); err != nil || pt != nil {
		t.Errorf("blank line: %v, %v", pt, err)
	}
	// NaN/Inf cannot ride JSON; they must fail at parse time with the
	// offending text, not mid-stream with a marshal error.
	for _, bad := range []string{"a,b", "1,,2", "1;2", "NaN,1", "1,+Inf"} {
		if _, err := parsePoint(bad); err == nil {
			t.Errorf("parsePoint(%q) accepted", bad)
		}
	}
}
