// Command dpcbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints paper-style rows to stdout;
// figure experiments additionally render PPM/SVG images into -outdir.
//
// Usage:
//
//	dpcbench -exp all                     # everything, default sizes
//	dpcbench -exp table2,table5 -n 50000  # selected, larger cardinality
//	dpcbench -exp fig6 -outdir ./figs     # with rendered images
//
// The paper ran 2-5.8M-point datasets on a 48-thread Xeon; the harness
// defaults to 20k-point stand-ins so a full pass finishes in minutes.
// Scale -n up to push toward the paper's regime.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiments to run: all, or comma list of "+strings.Join(bench.Names(), ","))
		n         = flag.Int("n", 20000, "cardinality of the real-dataset stand-ins")
		threads   = flag.Int("threads", 0, "worker count for timed runs (0 = all CPUs)")
		seed      = flag.Int64("seed", 1, "dataset generation seed")
		outdir    = flag.String("outdir", "", "directory for figure images (empty: skip rendering)")
		jsonPath  = flag.String("json", "", "write a machine-readable BENCH_*.json record of the run here")
		wireJSON  = flag.String("wire-json", "", "write the wire experiment's codec comparison record here (BENCH_wire_protocol.json)")
		sweepJSON = flag.String("sweep-json", "", "write the sweep experiment's index-vs-fits record here (BENCH_param_sweep.json)")
		simdJSON  = flag.String("simd-json", "", "write the simd experiment's kernel and fit record here (BENCH_simd_kernels.json)")
		driftJSON = flag.String("drift-json", "", "write the drift experiment's overhead and refit-swap record here (BENCH_drift.json)")
		precision = flag.String("precision", "f64", "dataset storage precision for the simd experiment's timed legs: f32 or f64")
	)
	flag.Parse()
	if *precision != "f32" && *precision != "f64" {
		fmt.Fprintf(os.Stderr, "dpcbench: unknown -precision %q (want f32 or f64)\n", *precision)
		os.Exit(1)
	}

	cfg := bench.Config{
		N: *n, Threads: *threads, Seed: *seed, OutDir: *outdir,
		WireJSON: *wireJSON, SweepJSON: *sweepJSON, SimdJSON: *simdJSON, DriftJSON: *driftJSON,
		Precision: *precision,
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dpcbench:", err)
			os.Exit(1)
		}
	}
	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.Experiments()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			e, ok := bench.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "dpcbench: unknown experiment %q; have %s\n", name, strings.Join(bench.Names(), ", "))
				os.Exit(1)
			}
			selected = append(selected, e)
		}
	}
	rec := newRecord(cfg)
	for _, e := range selected {
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dpcbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		rec.Experiments = append(rec.Experiments, experimentRecord{
			Name: e.Name, Title: e.Title, Seconds: time.Since(start).Seconds(),
		})
	}
	if *jsonPath != "" {
		if err := writeRecord(*jsonPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, "dpcbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "dpcbench: wrote %s\n", *jsonPath)
	}
}

// record is the -json output: enough configuration and environment to
// compare before/after numbers of a change across runs of the harness.
type record struct {
	Timestamp   string             `json:"timestamp"`
	GoVersion   string             `json:"go_version"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	NumCPU      int                `json:"num_cpu"`
	N           int                `json:"n"`
	Threads     int                `json:"threads"`
	Seed        int64              `json:"seed"`
	Experiments []experimentRecord `json:"experiments"`
}

type experimentRecord struct {
	Name    string  `json:"name"`
	Title   string  `json:"title"`
	Seconds float64 `json:"seconds"`
}

func newRecord(cfg bench.Config) *record {
	threads := cfg.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	return &record{
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		N:         cfg.N,
		Threads:   threads,
		Seed:      cfg.Seed,
	}
}

func writeRecord(path string, rec *record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return f.Close()
}
