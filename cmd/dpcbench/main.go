// Command dpcbench regenerates the tables and figures of the paper's
// evaluation (§6). Each experiment prints paper-style rows to stdout;
// figure experiments additionally render PPM/SVG images into -outdir.
//
// Usage:
//
//	dpcbench -exp all                     # everything, default sizes
//	dpcbench -exp table2,table5 -n 50000  # selected, larger cardinality
//	dpcbench -exp fig6 -outdir ./figs     # with rendered images
//
// The paper ran 2-5.8M-point datasets on a 48-thread Xeon; the harness
// defaults to 20k-point stand-ins so a full pass finishes in minutes.
// Scale -n up to push toward the paper's regime.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiments to run: all, or comma list of "+strings.Join(bench.Names(), ","))
		n       = flag.Int("n", 20000, "cardinality of the real-dataset stand-ins")
		threads = flag.Int("threads", 0, "worker count for timed runs (0 = all CPUs)")
		seed    = flag.Int64("seed", 1, "dataset generation seed")
		outdir  = flag.String("outdir", "", "directory for figure images (empty: skip rendering)")
	)
	flag.Parse()

	cfg := bench.Config{N: *n, Threads: *threads, Seed: *seed, OutDir: *outdir}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "dpcbench:", err)
			os.Exit(1)
		}
	}
	if *exp == "all" {
		if err := bench.RunAll(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "dpcbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		e, ok := bench.Lookup(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "dpcbench: unknown experiment %q; have %s\n", name, strings.Join(bench.Names(), ", "))
			os.Exit(1)
		}
		if err := e.Run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "dpcbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
