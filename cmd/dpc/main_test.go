package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/datasets"
)

func writeTestCSV(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "pts.csv")
	ds := datasets.SSet(1, 1500, 1)
	if err := datasets.SaveCSVFile(path, ds.Points); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunMainEndToEnd(t *testing.T) {
	in := writeTestCSV(t)
	dir := filepath.Dir(in)
	labels := filepath.Join(dir, "labels.csv")
	decision := filepath.Join(dir, "dg.svg")
	plot := filepath.Join(dir, "plot.ppm")
	err := runMain(in, "Approx-DPC", 2500, 3, 0, 15, 1.0, 2, 1, labels, decision, plot)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(labels)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 1500 {
		t.Errorf("labels file has %d lines, want 1500", len(lines))
	}
	for _, f := range []string{decision, plot} {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Errorf("artifact %s missing or empty", f)
		}
	}
}

func TestRunMainExplicitThresholds(t *testing.T) {
	in := writeTestCSV(t)
	if err := runMain(in, "Ex-DPC", 2500, 3, 12000, 0, 1.0, 2, 1, "", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMainValidation(t *testing.T) {
	in := writeTestCSV(t)
	cases := []struct {
		name string
		err  string
		fn   func() error
	}{
		{"missing input", "-in is required", func() error {
			return runMain("", "Ex-DPC", 1, 0, 2, 0, 1, 1, 1, "", "", "")
		}},
		{"bad dcut", "-dcut", func() error {
			return runMain(in, "Ex-DPC", 0, 0, 2, 0, 1, 1, 1, "", "", "")
		}},
		{"bad algorithm", "unknown algorithm", func() error {
			return runMain(in, "MagicDPC", 1, 0, 2, 0, 1, 1, 1, "", "", "")
		}},
		{"deltamin below dcut", "-deltamin", func() error {
			return runMain(in, "Ex-DPC", 2500, 0, 100, 0, 1, 1, 1, "", "", "")
		}},
		{"missing file", "no such file", func() error {
			return runMain(filepath.Join(t.TempDir(), "nope.csv"), "Ex-DPC", 1, 0, 2, 0, 1, 1, 1, "", "", "")
		}},
	}
	for _, tc := range cases {
		err := tc.fn()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.err) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.err)
		}
	}
}

func TestAlgNames(t *testing.T) {
	names := algNames()
	if len(names) != 7 {
		t.Errorf("algNames returned %d entries", len(names))
	}
}
