// Command dpc clusters a CSV dataset with one of the paper's algorithms
// and writes per-point labels (and optionally the decision graph or a
// rendered scatter plot).
//
// Usage:
//
//	dpc -in points.csv -dcut 250 -rhomin 10 -deltamin 5000 \
//	    [-alg Approx-DPC] [-eps 1.0] [-threads N] [-k 15] \
//	    [-labels out.csv] [-decision graph.svg] [-plot clusters.ppm]
//
// When -k is given, -deltamin is chosen automatically from the decision
// graph so that exactly k cluster centers emerge (the Figure 1 workflow).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	dpc "repro"
	"repro/datasets"
	"repro/visual"
)

func main() {
	var (
		in       = flag.String("in", "", "input CSV file (required; one point per line)")
		alg      = flag.String("alg", "Approx-DPC", "algorithm: "+strings.Join(algNames(), ", "))
		dcut     = flag.Float64("dcut", 0, "cutoff distance d_cut (required)")
		rhoMin   = flag.Float64("rhomin", 0, "noise threshold rho_min")
		deltaMin = flag.Float64("deltamin", 0, "cluster-center threshold delta_min (> dcut)")
		k        = flag.Int("k", 0, "pick delta_min automatically for k clusters")
		eps      = flag.Float64("eps", 1.0, "S-Approx-DPC approximation parameter")
		threads  = flag.Int("threads", 0, "worker count (0 = all CPUs)")
		seed     = flag.Int64("seed", 1, "seed for randomized baselines")
		labels   = flag.String("labels", "", "write point,label CSV here ('-' for stdout)")
		decision = flag.String("decision", "", "write decision-graph SVG here")
		plot     = flag.String("plot", "", "write cluster scatter PPM here (2-d data)")
	)
	flag.Parse()
	if err := runMain(*in, *alg, *dcut, *rhoMin, *deltaMin, *k, *eps, *threads, *seed, *labels, *decision, *plot); err != nil {
		fmt.Fprintln(os.Stderr, "dpc:", err)
		os.Exit(1)
	}
}

func algNames() []string {
	var out []string
	for _, a := range dpc.Algorithms() {
		out = append(out, a.Name())
	}
	return out
}

func runMain(in, algName string, dcut, rhoMin, deltaMin float64, k int, eps float64, threads int, seed int64, labelsOut, decisionOut, plotOut string) error {
	if in == "" {
		return fmt.Errorf("-in is required")
	}
	if dcut <= 0 {
		return fmt.Errorf("-dcut must be positive")
	}
	alg, ok := dpc.ByName(algName)
	if !ok {
		return fmt.Errorf("unknown algorithm %q (have: %s)", algName, strings.Join(algNames(), ", "))
	}
	pts, err := datasets.LoadCSVFile(in)
	if err != nil {
		return err
	}
	p := dpc.Params{
		DCut: dcut, RhoMin: rhoMin, DeltaMin: deltaMin,
		Workers: threads, Epsilon: eps, Seed: seed,
	}
	if k > 0 {
		// Probe run with a permissive threshold, then cut for k centers.
		probe := p
		probe.DeltaMin = dcut * 1.0001
		res, err := alg.ClusterDataset(pts, probe)
		if err != nil {
			return err
		}
		dm, ok := dpc.SuggestDeltaMin(res, k, rhoMin)
		if !ok {
			return fmt.Errorf("cannot pick delta_min for k=%d", k)
		}
		p.DeltaMin = dm
		fmt.Fprintf(os.Stderr, "dpc: auto delta_min = %g for k = %d\n", dm, k)
	}
	if p.DeltaMin <= p.DCut {
		return fmt.Errorf("-deltamin must exceed -dcut (got %g <= %g); or pass -k", p.DeltaMin, p.DCut)
	}
	res, err := alg.ClusterDataset(pts, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dpc: %s on %d points: %d clusters, %d noise points, %.3fs total (rho %.3fs, delta %.3fs)\n",
		alg.Name(), pts.N, res.NumClusters(), countNoise(res.Labels),
		res.Timing.Total().Seconds(), res.Timing.Rho.Seconds(), res.Timing.Delta.Seconds())

	if labelsOut != "" {
		w := os.Stdout
		if labelsOut != "-" {
			f, err := os.Create(labelsOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		for i, l := range res.Labels {
			fmt.Fprintf(w, "%d,%d\n", i, l)
		}
	}
	if decisionOut != "" {
		f, err := os.Create(decisionOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := visual.DecisionGraphSVG(f, res, p.RhoMin, p.DeltaMin, 640, 480); err != nil {
			return err
		}
	}
	if plotOut != "" {
		if pts.Dim < 2 {
			return fmt.Errorf("-plot needs at least 2-dimensional data")
		}
		f, err := os.Create(plotOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := visual.ScatterDatasetPPM(f, pts, res.Labels, 800, 800); err != nil {
			return err
		}
	}
	return nil
}

func countNoise(labels []int32) int {
	n := 0
	for _, l := range labels {
		if l == dpc.NoCluster {
			n++
		}
	}
	return n
}
