GO ?= go

# BENCHTIME is the per-benchmark budget; CI smoke-runs with 100ms so the
# benchmarks are compiled and executed on every PR without burning
# minutes.
BENCHTIME ?= 2s
# FUZZTIME is the per-target budget for fuzz-smoke.
FUZZTIME ?= 10s

# Pinned static-analysis tool versions; `make lint` and the CI lint job
# run exactly these via `go run`, so there is no drift between the two.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: verify build vet test fmt lint e2e e2e-stream bench bench-json fuzz-smoke examples docs-check serve ci

# verify is the tier-1 gate: everything must build, vet clean, and pass.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# fmt fails when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# lint runs staticcheck and govulncheck at the pinned versions above.
# Both are fetched through the module cache on first use (network needed
# once); neither is added to go.mod.
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

# e2e boots a real 3-shard rf=2 dpcd ring with heartbeats plus a
# single-node reference and proves forwarding parity, replication, and
# the chaos contract — a primary SIGKILLed mid-stream costs zero failed
# assigns and zero refits, and the heartbeat evicts it without any
# manual membership post (scripts/e2e_ring.sh). CHAOS_N sizes the chaos
# stream; CI uses 4194304, the default 200000 keeps local runs quick.
e2e:
	$(if $(CHAOS_N),CHAOS_N=$(CHAOS_N)) ./scripts/e2e_ring.sh

# e2e-stream streams 4x the per-request batch cap through a non-owner
# ring shard and proves the labels are byte-identical to the capped
# batch path, with zero refits (scripts/e2e_stream.sh). STREAM_N=40000
# makes a quick local run.
e2e-stream:
	$(if $(STREAM_N),STREAM_N=$(STREAM_N)) ./scripts/e2e_stream.sh

# bench runs the memory-layout micro-benchmarks (flat Dataset vs row
# slices; committed baseline in BENCH_flat_layout.json), the serving
# layer benchmarks (cached fit, assign batch, snapshot cold start), and
# the param-sweep experiment (one density index vs K fresh fits;
# committed record in BENCH_param_sweep.json). SWEEPN sizes the sweep
# dataset; CI smoke-runs it small.
SWEEPN ?= 20000
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSqDist|ExDPC(Rows|Flat)' -benchmem -benchtime=$(BENCHTIME) .
	$(GO) test -run '^$$' -bench 'BenchmarkService' -benchmem -benchtime=$(BENCHTIME) ./internal/service
	$(GO) run ./cmd/dpcbench -exp sweep -n $(SWEEPN)
	$(GO) run ./cmd/dpcbench -exp drift

# bench-json records a machine-readable harness run for before/after
# comparisons.
bench-json:
	$(GO) run ./cmd/dpcbench -exp table3,table6 -n 10000 -json BENCH_dpcbench.json
	$(GO) run ./cmd/dpcbench -exp sweep -n $(SWEEPN) -sweep-json BENCH_param_sweep.json

# fuzz-smoke runs each fuzz target briefly over its committed corpus —
# the upload parsers, the snapshot decoders (generic and density-index),
# and the wire frame decoder. `go test -fuzz` takes one target per
# invocation, hence the five runs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzLoadCSV$$' -fuzztime $(FUZZTIME) ./internal/data
	$(GO) test -run '^$$' -fuzz '^FuzzLoadBinary$$' -fuzztime $(FUZZTIME) ./internal/data
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeSnapshot$$' -fuzztime $(FUZZTIME) ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeIndexSnapshot$$' -fuzztime $(FUZZTIME) ./internal/persist
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZTIME) ./internal/wire

# examples builds and runs every directory under examples/ — each one is
# self-verifying and exits non-zero when the behavior it demonstrates
# does not hold (scripts/examples_smoke.sh).
examples:
	./scripts/examples_smoke.sh

# docs-check verifies every relative markdown link in README.md, docs/,
# ROADMAP.md, and CHANGES.md points at a file that exists, including
# #anchors into headings. Pure shell+awk; no network, nothing installed.
docs-check:
	./scripts/docs_check.sh

# serve runs the dpcd clustering daemon on a bundled dataset; see the
# README "Serving: dpcd" section for the API and a curl session. Add
# DATA_DIR=/path for a durable daemon that warm-loads on restart.
serve:
	$(GO) run ./cmd/dpcd -preload pamap2:20000,s2:5000 -addr :8080 $(if $(DATA_DIR),-data-dir $(DATA_DIR))

# ci mirrors the GitHub Actions test job (.github/workflows/ci.yml).
ci: fmt build vet
	$(GO) test -race ./...
