GO ?= go

.PHONY: verify build vet test fmt bench bench-json serve ci

# verify is the tier-1 gate: everything must build, vet clean, and pass.
verify: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# fmt fails when any file is not gofmt-clean.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the memory-layout micro-benchmarks (flat Dataset vs row
# slices) whose committed baseline lives in BENCH_flat_layout.json.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSqDist|ExDPC(Rows|Flat)' -benchmem -benchtime=2s .

# bench-json records a machine-readable harness run for before/after
# comparisons.
bench-json:
	$(GO) run ./cmd/dpcbench -exp table3,table6 -n 10000 -json BENCH_dpcbench.json

# serve runs the dpcd clustering daemon on a bundled dataset; see the
# README "Serving: dpcd" section for the API and a curl session.
serve:
	$(GO) run ./cmd/dpcd -preload pamap2:20000,s2:5000 -addr :8080

# ci mirrors the GitHub Actions workflow (.github/workflows/ci.yml).
ci: build vet
	$(GO) test -race ./...
