package dpc_test

// One testing.B benchmark per table and figure of the paper's evaluation
// (§6). Each benchmark executes the corresponding harness experiment from
// internal/bench at a benchmark-friendly cardinality (BENCH_N, default
// 8000) and discards the printed rows; run cmd/dpcbench for the full
// tables. Additional micro-benchmarks cover the per-algorithm phases the
// paper's Table 6 decomposes.

import (
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	dpc "repro"
	"repro/datasets"
	"repro/internal/bench"
	"repro/internal/geom"
)

func benchN() int {
	if s := os.Getenv("BENCH_N"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return 8000
}

func benchCfg() bench.Config {
	return bench.Config{N: benchN(), Seed: 1, W: io.Discard}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	e, ok := bench.Lookup(name)
	if !ok {
		b.Fatalf("unknown experiment %s", name)
	}
	cfg := benchCfg()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1DecisionGraph regenerates Figure 1 (decision graph of S2).
func BenchmarkFig1DecisionGraph(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig2DPCvsDBSCAN regenerates Figure 2 (DPC vs DBSCAN on S2).
func BenchmarkFig2DPCvsDBSCAN(b *testing.B) { runExperiment(b, "fig2") }

// BenchmarkTable2NoiseRobustness regenerates Table 2 (Rand index vs noise
// rate on Syn).
func BenchmarkTable2NoiseRobustness(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3ClusterOverlap regenerates Table 3 (Rand index on S1-S4).
func BenchmarkTable3ClusterOverlap(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkTable4RealAccuracy regenerates Table 4 (Rand index on the
// real-dataset stand-ins).
func BenchmarkTable4RealAccuracy(b *testing.B) { runExperiment(b, "table4") }

// BenchmarkTable5EpsilonTradeoff regenerates Table 5 (S-Approx-DPC
// epsilon sweep: time and Rand index).
func BenchmarkTable5EpsilonTradeoff(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig6Visualization regenerates Figure 6 (clustering of Syn by
// each algorithm; images are skipped without an out dir).
func BenchmarkFig6Visualization(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7Cardinality regenerates Figure 7 (running time vs sampling
// rate for all seven algorithms on four datasets).
func BenchmarkFig7Cardinality(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8DCut regenerates Figure 8 (running time vs d_cut).
func BenchmarkFig8DCut(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Threads regenerates Figure 9 (running time vs threads).
func BenchmarkFig9Threads(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkTable6Decomposed regenerates Table 6 (decomposed rho/delta
// seconds for every algorithm).
func BenchmarkTable6Decomposed(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkTable7Memory regenerates Table 7 (memory usage).
func BenchmarkTable7Memory(b *testing.B) { runExperiment(b, "table7") }

// --- Per-algorithm micro-benchmarks (one clustering run per iteration) ---

func benchAlgorithm(b *testing.B, alg dpc.Algorithm) {
	ds := datasets.AirlineLike(benchN(), 1)
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DeltaMin, Seed: 1, Epsilon: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := alg.ClusterDataset(ds.Points, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgorithmScan(b *testing.B)       { benchAlgorithm(b, dpc.NewBruteScan()) }
func BenchmarkAlgorithmRtreeScan(b *testing.B)  { benchAlgorithm(b, dpc.NewRtreeScan()) }
func BenchmarkAlgorithmLSHDDP(b *testing.B)     { benchAlgorithm(b, dpc.NewLSHDDP()) }
func BenchmarkAlgorithmCFSFDPA(b *testing.B)    { benchAlgorithm(b, dpc.NewCFSFDPA()) }
func BenchmarkAlgorithmExDPC(b *testing.B)      { benchAlgorithm(b, dpc.NewExDPC()) }
func BenchmarkAlgorithmApproxDPC(b *testing.B)  { benchAlgorithm(b, dpc.NewApproxDPC()) }
func BenchmarkAlgorithmSApproxDPC(b *testing.B) { benchAlgorithm(b, dpc.NewSApproxDPC()) }

// BenchmarkSingleThreadExDPC pins one worker: the paper's single-thread
// baseline configuration.
func BenchmarkSingleThreadExDPC(b *testing.B) {
	ds := datasets.AirlineLike(benchN(), 1)
	p := dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DeltaMin, Workers: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpc.ClusterExactDataset(ds.Points, p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Memory-layout micro-benchmarks (flat Dataset vs row slices) ---
//
// BenchmarkSqDistRows and BenchmarkSqDistFlat compare the inner distance
// kernel over the two storage layouts on identical coordinates and an
// identical pseudo-random access pattern. The rows variant allocates one
// slice per point (the pre-refactor layout, with a pointer dereference
// per access); the flat variant indexes one contiguous buffer.

const (
	layoutBenchN   = 100000
	layoutBenchDim = 4
)

func layoutBenchRows() [][]float64 {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]float64, layoutBenchN)
	for i := range rows {
		p := make([]float64, layoutBenchDim)
		for j := range p {
			p[j] = rng.Float64() * 1e5
		}
		rows[i] = p
	}
	return rows
}

func BenchmarkSqDistRows(b *testing.B) {
	rows := layoutBenchRows()
	idx := rand.New(rand.NewSource(7))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := rows[idx.Intn(layoutBenchN)]
		c := rows[(i*31)%layoutBenchN]
		var s float64
		for t := range a {
			d := a[t] - c[t]
			s += d * d
		}
		sink += s
	}
	_ = sink
}

func BenchmarkSqDistFlat(b *testing.B) {
	ds := geom.MustFromRows(layoutBenchRows())
	idx := rand.New(rand.NewSource(7))
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += geom.SqDistIdx(ds, int32(idx.Intn(layoutBenchN)), int32((i*31)%layoutBenchN))
	}
	_ = sink
}

// BenchmarkExDPCRowsInput and BenchmarkExDPCFlatInput run Ex-DPC end to
// end from each input representation (the rows path includes its one
// FromRows copy); both produce identical results per the equivalence
// tests.

func exdpcBenchInput() (*datasets.Dataset, dpc.Params) {
	ds := datasets.AirlineLike(benchN(), 1)
	return ds, dpc.Params{DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DeltaMin, Seed: 1}
}

func BenchmarkExDPCRowsInput(b *testing.B) {
	ds, p := exdpcBenchInput()
	rows := ds.Points.Rows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpc.ClusterExact(rows, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExDPCFlatInput(b *testing.B) {
	ds, p := exdpcBenchInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpc.ClusterExactDataset(ds.Points, p); err != nil {
			b.Fatal(err)
		}
	}
}
