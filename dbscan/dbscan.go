// Package dbscan exposes DBSCAN and OPTICS, which the paper uses only as
// a clustering-quality comparison (Figure 2: DBSCAN merges close Gaussian
// clusters that DPC separates). See repro/internal/dbscan for the
// implementation.
package dbscan

import (
	internal "repro/internal/dbscan"
	"repro/internal/geom"
)

// Noise labels noise points.
const Noise = internal.Noise

// Result is a DBSCAN clustering.
type Result = internal.Result

// OPTICSPoint is one entry of an OPTICS ordering.
type OPTICSPoint = internal.OPTICSPoint

// Run executes DBSCAN with radius eps and core threshold minPts over
// row-slice points (copied once into the flat layout).
func Run(pts [][]float64, eps float64, minPts int) *Result {
	return internal.Run(flatten(pts), eps, minPts)
}

// RunDataset executes DBSCAN over a flat dataset with no copying.
func RunDataset(ds *geom.Dataset, eps float64, minPts int) *Result {
	return internal.Run(ds, eps, minPts)
}

// OPTICS computes the OPTICS ordering for the given parameters over
// row-slice points (copied once into the flat layout).
func OPTICS(pts [][]float64, eps float64, minPts int) []OPTICSPoint {
	return internal.OPTICS(flatten(pts), eps, minPts)
}

// OPTICSDataset computes the OPTICS ordering over a flat dataset.
func OPTICSDataset(ds *geom.Dataset, eps float64, minPts int) []OPTICSPoint {
	return internal.OPTICS(ds, eps, minPts)
}

// flatten packs row-slice points into the flat layout. Shape errors
// (ragged rows) panic loudly — DBSCAN historically crashed on them via
// out-of-range indexing, and silent coordinate misalignment would be
// worse — while NaN coordinates pass through as they always did.
func flatten(pts [][]float64) *geom.Dataset {
	if len(pts) == 0 {
		return &geom.Dataset{}
	}
	ds, err := geom.PackRows(pts)
	if err != nil {
		panic("dbscan: " + err.Error())
	}
	return ds
}

// ExtractDBSCAN cuts an OPTICS ordering at a reachability threshold.
func ExtractDBSCAN(order []OPTICSPoint, epsPrime float64) *Result {
	return internal.ExtractDBSCAN(order, epsPrime)
}

// ParamsForK searches the ordering for a threshold yielding exactly k
// clusters of at least minSize points — the paper's recipe for
// parameterizing DBSCAN on S2.
func ParamsForK(order []OPTICSPoint, k, minSize int) (float64, bool) {
	return internal.ParamsForK(order, k, minSize)
}
