// Package dbscan exposes DBSCAN and OPTICS, which the paper uses only as
// a clustering-quality comparison (Figure 2: DBSCAN merges close Gaussian
// clusters that DPC separates). See repro/internal/dbscan for the
// implementation.
package dbscan

import (
	internal "repro/internal/dbscan"
)

// Noise labels noise points.
const Noise = internal.Noise

// Result is a DBSCAN clustering.
type Result = internal.Result

// OPTICSPoint is one entry of an OPTICS ordering.
type OPTICSPoint = internal.OPTICSPoint

// Run executes DBSCAN with radius eps and core threshold minPts.
func Run(pts [][]float64, eps float64, minPts int) *Result {
	return internal.Run(pts, eps, minPts)
}

// OPTICS computes the OPTICS ordering for the given parameters.
func OPTICS(pts [][]float64, eps float64, minPts int) []OPTICSPoint {
	return internal.OPTICS(pts, eps, minPts)
}

// ExtractDBSCAN cuts an OPTICS ordering at a reachability threshold.
func ExtractDBSCAN(order []OPTICSPoint, epsPrime float64) *Result {
	return internal.ExtractDBSCAN(order, epsPrime)
}

// ParamsForK searches the ordering for a threshold yielding exactly k
// clusters of at least minSize points — the paper's recipe for
// parameterizing DBSCAN on S2.
func ParamsForK(order []OPTICSPoint, k, minSize int) (float64, bool) {
	return internal.ParamsForK(order, k, minSize)
}
