package health

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeProbe lets tests script per-peer probe outcomes and flip them
// between ticks.
type fakeProbe struct {
	mu   sync.Mutex
	down map[string]bool
}

func newFakeProbe() *fakeProbe { return &fakeProbe{down: make(map[string]bool)} }

func (f *fakeProbe) set(peer string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[peer] = down
}

func (f *fakeProbe) probe(_ context.Context, peer string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down[peer] {
		return errors.New("down")
	}
	return nil
}

type liveRecorder struct {
	mu    sync.Mutex
	calls [][]string
}

func (r *liveRecorder) onChange(live []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls = append(r.calls, append([]string(nil), live...))
}

func (r *liveRecorder) last() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.calls) == 0 {
		return nil
	}
	return r.calls[len(r.calls)-1]
}

func (r *liveRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.calls)
}

func staticPeers(peers ...string) func() []string {
	return func() []string { return peers }
}

// TestSuspectDoesNotEvict: with DeadAfter=3 a peer that misses one or
// two heartbeats goes suspect but stays in the live set — the damping
// that keeps a loaded shard from triggering eviction/reload churn.
func TestSuspectDoesNotEvict(t *testing.T) {
	fp := newFakeProbe()
	rec := &liveRecorder{}
	m := New(Config{Self: "self", DeadAfter: 3}, staticPeers("a", "b"), fp.probe, rec.onChange)

	fp.set("a", true)
	for i := 0; i < 2; i++ {
		if m.Tick(context.Background()) {
			t.Fatalf("tick %d reported a live-set change while peer is only suspect", i+1)
		}
	}
	st := m.Status()
	if st[0].Peer != "a" || st[0].State != "suspect" || st[0].Fails != 2 {
		t.Fatalf("peer a status = %+v, want suspect with 2 fails", st[0])
	}
	if got, want := m.Live(), []string{"a", "b", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Live() = %v, want %v (suspect peers stay live)", got, want)
	}
	if rec.count() != 0 {
		t.Fatalf("onChange fired %d times before any eviction", rec.count())
	}
}

// TestDeadAfterEvicts: the third consecutive miss crosses DeadAfter,
// fires onChange exactly once with the reduced live set, and further
// misses stay quiet.
func TestDeadAfterEvicts(t *testing.T) {
	fp := newFakeProbe()
	rec := &liveRecorder{}
	m := New(Config{Self: "self", DeadAfter: 3}, staticPeers("a", "b"), fp.probe, rec.onChange)

	fp.set("a", true)
	m.Tick(context.Background())
	m.Tick(context.Background())
	if !m.Tick(context.Background()) {
		t.Fatal("third consecutive miss did not change the live set")
	}
	if got, want := rec.last(), []string{"b", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("onChange live = %v, want %v", got, want)
	}
	if rec.count() != 1 {
		t.Fatalf("onChange fired %d times, want 1", rec.count())
	}
	if m.Tick(context.Background()) {
		t.Fatal("already-dead peer changed the live set again")
	}
	if rec.count() != 1 {
		t.Fatalf("onChange re-fired for an already-dead peer (%d calls)", rec.count())
	}
}

// TestRecoveryReAdds: one successful probe resurrects a dead peer and
// fires onChange with the restored live set.
func TestRecoveryReAdds(t *testing.T) {
	fp := newFakeProbe()
	rec := &liveRecorder{}
	m := New(Config{Self: "self", DeadAfter: 2}, staticPeers("a"), fp.probe, rec.onChange)

	fp.set("a", true)
	m.Tick(context.Background())
	m.Tick(context.Background())
	if got, want := rec.last(), []string{"self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after death live = %v, want %v", got, want)
	}

	fp.set("a", false)
	if !m.Tick(context.Background()) {
		t.Fatal("recovery probe did not change the live set")
	}
	if got, want := rec.last(), []string{"a", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after recovery live = %v, want %v", got, want)
	}
	st := m.Status()
	if st[0].State != "alive" || st[0].Fails != 0 {
		t.Fatalf("recovered peer status = %+v, want alive/0", st[0])
	}
}

// TestPeerSetChanges: the peer source is re-read every tick — a removed
// peer drops its state (so a later return starts fresh and alive), and
// an added peer starts alive without waiting for a probe.
func TestPeerSetChanges(t *testing.T) {
	fp := newFakeProbe()
	var mu sync.Mutex
	peers := []string{"a", "b"}
	m := New(Config{Self: "self", DeadAfter: 1}, func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), peers...)
	}, fp.probe, nil)

	fp.set("a", true)
	m.Tick(context.Background()) // a dies (DeadAfter=1)
	if got, want := m.Live(), []string{"b", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Live() = %v, want %v", got, want)
	}

	mu.Lock()
	peers = []string{"b", "c"} // drop a, add c
	mu.Unlock()
	fp.set("a", false)
	m.Tick(context.Background())
	if got, want := m.Live(), []string{"b", "c", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Live() after reconfigure = %v, want %v", got, want)
	}

	// a returns to the config: its dead verdict must not have survived.
	mu.Lock()
	peers = []string{"a", "b", "c"}
	mu.Unlock()
	if got, want := m.Live(), []string{"a", "b", "c", "self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Live() with returned peer = %v, want %v (fresh peers start alive)", got, want)
	}
}

// TestSelfNeverProbed: self is filtered out of the probe set even when
// the peer source lists it, and is always in the live set.
func TestSelfNeverProbed(t *testing.T) {
	probed := make(map[string]int)
	var mu sync.Mutex
	m := New(Config{Self: "self", DeadAfter: 1}, staticPeers("self", "a"), func(_ context.Context, p string) error {
		mu.Lock()
		probed[p]++
		mu.Unlock()
		return errors.New("down")
	}, nil)
	m.Tick(context.Background())
	if probed["self"] != 0 {
		t.Fatal("self was probed")
	}
	if probed["a"] != 1 {
		t.Fatalf("peer a probed %d times, want 1", probed["a"])
	}
	if got, want := m.Live(), []string{"self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Live() = %v, want self always present: %v", got, want)
	}
}

// TestConfigDefaults pins the documented zero-value behavior.
func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.interval() != time.Second {
		t.Errorf("default interval = %v, want 1s", c.interval())
	}
	if c.timeout() != time.Second {
		t.Errorf("default timeout = %v, want interval", c.timeout())
	}
	if c.suspectAfter() != 1 {
		t.Errorf("default suspectAfter = %d, want 1", c.suspectAfter())
	}
	if c.deadAfter() != 3 {
		t.Errorf("default deadAfter = %d, want 3", c.deadAfter())
	}
	c = Config{SuspectAfter: 5, DeadAfter: 2}
	if c.deadAfter() != 5 {
		t.Errorf("deadAfter below suspectAfter not clamped: %d", c.deadAfter())
	}
}

// TestHTTPProbe exercises the standard probe against a real listener:
// 2xx passes, 5xx fails, a dead address fails, and the ctx deadline
// bounds a hung server.
func TestHTTPProbe(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			t.Errorf("probe hit %s, want /healthz", r.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	probe := HTTPProbe(srv.Client())
	if err := probe(context.Background(), srv.URL); err != nil {
		t.Fatalf("probe of healthy server failed: %v", err)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer bad.Close()
	if err := HTTPProbe(bad.Client())(context.Background(), bad.URL); err == nil {
		t.Fatal("probe of 500-ing server succeeded")
	}

	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	if err := HTTPProbe(nil)(context.Background(), deadURL); err == nil {
		t.Fatal("probe of closed server succeeded")
	}

	hung := httptest.NewServer(http.HandlerFunc(func(_ http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer hung.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := HTTPProbe(hung.Client())(ctx, hung.URL); err == nil {
		t.Fatal("probe of hung server beat its deadline")
	}
}

// TestStartStop: the background loop ticks on its own and Stop is
// idempotent and race-free with an in-flight tick.
func TestStartStop(t *testing.T) {
	fp := newFakeProbe()
	fp.set("a", true)
	rec := &liveRecorder{}
	m := New(Config{Self: "self", Interval: 5 * time.Millisecond, DeadAfter: 2}, staticPeers("a"), fp.probe, rec.onChange)
	m.Start()
	m.Start() // no-op
	deadline := time.Now().Add(2 * time.Second)
	for rec.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // no-op
	if rec.count() == 0 {
		t.Fatal("background loop never evicted the dead peer")
	}
	if got, want := rec.last(), []string{"self"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("live = %v, want %v", got, want)
	}
}

// TestConcurrentTickAndReads runs Tick against Status/Live readers to
// give the race detector something to chew on.
func TestConcurrentTickAndReads(t *testing.T) {
	fp := newFakeProbe()
	peers := make([]string, 8)
	for i := range peers {
		peers[i] = fmt.Sprintf("peer-%d", i)
	}
	m := New(Config{Self: "self", DeadAfter: 2}, staticPeers(peers...), fp.probe, func([]string) {})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			fp.set(peers[i%len(peers)], i%3 == 0)
			m.Tick(context.Background())
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				_ = m.Status()
				_ = m.Live()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
