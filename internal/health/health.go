// Package health is the heartbeat loop that turns dpcd's ring from
// manually-administered membership (POST /v1/ring) into a self-healing
// one: every instance probes its configured peers on an interval, walks
// each peer through an alive → suspect → dead state machine, and reports
// live-set changes to the serving layer, which rebuilds its ring and
// reconciles resident state — evicting a dead shard's arcs or warm-
// loading a returning one's — without an operator in the loop.
//
// The monitor is deliberately dumb about what a probe means: it is given
// a probe function (HTTPProbe builds the standard GET /healthz one), a
// peer-list source it re-reads every tick (so a manual membership post
// changes what is probed without restarting the loop), and a change
// callback. Suspect is a damping state, not a membership state — one
// missed heartbeat on a loaded box must not trigger an eviction-and-
// reload cycle, so only Dead (DeadAfter consecutive misses) removes a
// peer from the live set, and a single successful probe restores it.
package health

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// State is one peer's position in the failure-detection state machine.
type State int

const (
	// Alive: the last probe succeeded (or the peer is new and has the
	// benefit of the doubt).
	Alive State = iota
	// Suspect: at least SuspectAfter consecutive probes failed; the peer
	// is still in the live set but on notice.
	Suspect
	// Dead: at least DeadAfter consecutive probes failed; the peer is
	// removed from the live set until a probe succeeds again.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Config tunes a Monitor. The zero value of every field picks a usable
// default, but Self must be set: it is never probed and always live (an
// instance that cannot reach itself still serves what it holds).
type Config struct {
	// Self is this instance's own peer address.
	Self string
	// Interval is the probe period; <= 0 means 1s.
	Interval time.Duration
	// Timeout bounds one probe; <= 0 means Interval (a probe slower than
	// the period is as good as failed).
	Timeout time.Duration
	// SuspectAfter is the consecutive-failure count that marks a peer
	// suspect; <= 0 means 1.
	SuspectAfter int
	// DeadAfter is the consecutive-failure count that evicts a peer from
	// the live set; <= 0 means 3. It must be >= SuspectAfter.
	DeadAfter int
}

func (c Config) interval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return time.Second
}

func (c Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return c.interval()
}

func (c Config) suspectAfter() int {
	if c.SuspectAfter > 0 {
		return c.SuspectAfter
	}
	return 1
}

func (c Config) deadAfter() int {
	d := c.DeadAfter
	if d <= 0 {
		d = 3
	}
	if s := c.suspectAfter(); d < s {
		d = s
	}
	return d
}

// PeerStatus is one peer's snapshot for diagnostics (/v1/ring).
type PeerStatus struct {
	Peer  string `json:"peer"`
	State string `json:"state"`
	Fails int    `json:"fails"`
}

// Monitor drives the heartbeat loop. Construct with New, then either
// Start a background loop or call Tick directly (tests drive the state
// machine deterministically that way).
type Monitor struct {
	cfg      Config
	peers    func() []string
	probe    func(ctx context.Context, peer string) error
	onChange func(live []string)

	mu     sync.Mutex
	states map[string]*peerState

	startMu sync.Mutex
	stop    chan struct{}
	done    chan struct{}
}

type peerState struct {
	state State
	fails int
}

// New builds a monitor. peers returns the full configured peer set
// (self included or not — self is skipped either way) and is re-read
// every tick; probe checks one peer within ctx; onChange receives the
// new live set (self plus every configured non-dead peer, sorted)
// whenever it differs from the previous one. onChange runs on the tick
// goroutine with no monitor lock held, so it may take its time (a ring
// reconcile) without stalling state reads.
func New(cfg Config, peers func() []string, probe func(ctx context.Context, peer string) error, onChange func(live []string)) *Monitor {
	return &Monitor{
		cfg:      cfg,
		peers:    peers,
		probe:    probe,
		onChange: onChange,
		states:   make(map[string]*peerState),
	}
}

// HTTPProbe returns the standard probe: GET <peer>/healthz with any 2xx
// answer counting as alive. client may be nil for http.DefaultClient;
// the per-probe deadline comes from the monitor's Timeout via ctx, so
// the client needs no timeout of its own.
func HTTPProbe(client *http.Client) func(ctx context.Context, peer string) error {
	if client == nil {
		client = http.DefaultClient
	}
	return func(ctx context.Context, peer string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			return fmt.Errorf("health: %s answered HTTP %d", peer, resp.StatusCode)
		}
		return nil
	}
}

// Start launches the background loop: one Tick per Interval until Stop.
// Calling Start twice without Stop is a no-op.
func (m *Monitor) Start() {
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(m.cfg.interval())
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				m.Tick(context.Background())
			}
		}
	}(m.stop, m.done)
}

// Stop halts the background loop and waits for the in-flight tick, if
// any, to finish. Safe to call without Start.
func (m *Monitor) Stop() {
	m.startMu.Lock()
	defer m.startMu.Unlock()
	if m.stop == nil {
		return
	}
	close(m.stop)
	<-m.done
	m.stop, m.done = nil, nil
}

// Tick runs one probe round: every configured peer (except self) is
// probed concurrently under the per-probe timeout, states advance, and
// onChange fires if the live set changed. It reports whether it did.
// Ticks are safe to run concurrently with Status/Live but are intended
// to be sequential; the background loop never overlaps them.
func (m *Monitor) Tick(ctx context.Context) bool {
	peers := m.currentPeers()
	results := make([]error, len(peers))
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		go func(i int, p string) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, m.cfg.timeout())
			defer cancel()
			results[i] = m.probe(pctx, p)
		}(i, p)
	}
	wg.Wait()

	m.mu.Lock()
	// Drop state for peers no longer configured, so a peer removed by a
	// manual membership post doesn't keep a stale verdict around for its
	// possible return.
	configured := make(map[string]bool, len(peers))
	for _, p := range peers {
		configured[p] = true
	}
	for p := range m.states {
		if !configured[p] {
			delete(m.states, p)
		}
	}
	changed := false
	for i, p := range peers {
		st, ok := m.states[p]
		if !ok {
			// New peers start alive: a just-posted membership change must
			// not evict the newcomer before its first heartbeat.
			st = &peerState{state: Alive}
			m.states[p] = st
		}
		if results[i] == nil {
			if st.state == Dead {
				changed = true
			}
			st.state, st.fails = Alive, 0
			continue
		}
		st.fails++
		switch {
		case st.fails >= m.cfg.deadAfter():
			if st.state != Dead {
				changed = true
			}
			st.state = Dead
		case st.fails >= m.cfg.suspectAfter():
			if st.state == Dead {
				// Cannot happen while fails < deadAfter, but keep the
				// invariant local: leaving Dead always changes the live set.
				changed = true
			}
			st.state = Suspect
		}
	}
	live := m.liveLocked(peers)
	m.mu.Unlock()

	if changed && m.onChange != nil {
		m.onChange(live)
	}
	return changed
}

// currentPeers reads the configured peer set, minus self, deduplicated.
func (m *Monitor) currentPeers() []string {
	seen := map[string]bool{m.cfg.Self: true}
	var out []string
	for _, p := range m.peers() {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// liveLocked assembles the live set: self plus every configured peer not
// currently Dead, sorted for determinism.
func (m *Monitor) liveLocked(peers []string) []string {
	live := []string{m.cfg.Self}
	for _, p := range peers {
		if st, ok := m.states[p]; !ok || st.state != Dead {
			live = append(live, p)
		}
	}
	sort.Strings(live)
	return live
}

// Live returns the current live set (self included), sorted.
func (m *Monitor) Live() []string {
	peers := m.currentPeers()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.liveLocked(peers)
}

// Status returns a diagnostic snapshot of every probed peer, sorted by
// address. Self is not listed — it is axiomatically alive.
func (m *Monitor) Status() []PeerStatus {
	peers := m.currentPeers()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]PeerStatus, 0, len(peers))
	for _, p := range peers {
		st, ok := m.states[p]
		if !ok {
			st = &peerState{state: Alive}
		}
		out = append(out, PeerStatus{Peer: p, State: st.state.String(), Fails: st.fails})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Peer < out[b].Peer })
	return out
}
