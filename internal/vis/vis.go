// Package vis renders the paper's 2-D figures without external
// dependencies: cluster scatter plots (Figure 2, Figure 6) as PPM images
// or SVG documents, and decision graphs (Figure 1) as SVG.
package vis

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
)

// palette holds visually distinct colors for cluster labels; noise is
// drawn gray. Labels beyond the palette wrap around.
var palette = [][3]uint8{
	{230, 25, 75}, {60, 180, 75}, {0, 130, 200}, {245, 130, 48},
	{145, 30, 180}, {70, 240, 240}, {240, 50, 230}, {210, 245, 60},
	{250, 190, 212}, {0, 128, 128}, {220, 190, 255}, {170, 110, 40},
	{128, 0, 0}, {128, 128, 0}, {0, 0, 128}, {255, 215, 180},
}

const noiseGray = 200

// Color returns the RGB color for a cluster label.
func Color(label int32) [3]uint8 {
	if label < 0 {
		return [3]uint8{noiseGray, noiseGray, noiseGray}
	}
	return palette[int(label)%len(palette)]
}

// ScatterPPM writes a width x height binary PPM (P6) scatter plot of the
// 2-d points colored by label. Points beyond two dimensions use their
// first two coordinates.
func ScatterPPM(w io.Writer, ds *geom.Dataset, labels []int32, width, height int) error {
	if width <= 0 || height <= 0 {
		return fmt.Errorf("vis: non-positive image size %dx%d", width, height)
	}
	if ds.N != len(labels) {
		return fmt.Errorf("vis: %d points but %d labels", ds.N, len(labels))
	}
	minX, maxX, minY, maxY := bounds2(ds)
	img := make([]uint8, 3*width*height)
	for i := range img {
		img[i] = 255
	}
	set := func(x, y int, c [3]uint8) {
		if x < 0 || x >= width || y < 0 || y >= height {
			return
		}
		o := 3 * (y*width + x)
		img[o], img[o+1], img[o+2] = c[0], c[1], c[2]
	}
	for i := 0; i < ds.N; i++ {
		p := ds.At(i)
		x := scale(p[0], minX, maxX, width)
		y := height - 1 - scale(p[1], minY, maxY, height)
		c := Color(labels[i])
		set(x, y, c)
		set(x+1, y, c)
		set(x, y+1, c)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", width, height); err != nil {
		return err
	}
	if _, err := bw.Write(img); err != nil {
		return err
	}
	return bw.Flush()
}

// ScatterSVG writes an SVG scatter plot of the 2-d points colored by label.
func ScatterSVG(w io.Writer, ds *geom.Dataset, labels []int32, width, height int) error {
	if ds.N != len(labels) {
		return fmt.Errorf("vis: %d points but %d labels", ds.N, len(labels))
	}
	minX, maxX, minY, maxY := bounds2(ds)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	for i := 0; i < ds.N; i++ {
		p := ds.At(i)
		x := scale(p[0], minX, maxX, width)
		y := height - 1 - scale(p[1], minY, maxY, height)
		c := Color(labels[i])
		fmt.Fprintf(bw, `<circle cx="%d" cy="%d" r="1.4" fill="rgb(%d,%d,%d)"/>`+"\n", x, y, c[0], c[1], c[2])
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

// DecisionGraphSVG renders (rho, delta) pairs as the paper's Figure 1(b):
// local density on the x axis, dependent distance on the y axis. Infinite
// deltas are drawn at the top edge. Points selected as centers (delta >=
// deltaMin and rho >= rhoMin) are highlighted red.
func DecisionGraphSVG(w io.Writer, rho, delta []float64, rhoMin, deltaMin float64, width, height int) error {
	if len(rho) != len(delta) {
		return fmt.Errorf("vis: %d rho but %d delta", len(rho), len(delta))
	}
	maxRho, maxDelta := 1.0, 1.0
	for i := range rho {
		if rho[i] > maxRho {
			maxRho = rho[i]
		}
		if !math.IsInf(delta[i], 1) && delta[i] > maxDelta {
			maxDelta = delta[i]
		}
	}
	maxDelta *= 1.05
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	// Threshold guides.
	ty := height - 1 - scale(deltaMin, 0, maxDelta, height)
	fmt.Fprintf(bw, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="lightgray" stroke-dasharray="4"/>`+"\n", ty, width, ty)
	for i := range rho {
		dv := delta[i]
		if math.IsInf(dv, 1) {
			dv = maxDelta
		}
		x := scale(rho[i], 0, maxRho, width)
		y := height - 1 - scale(dv, 0, maxDelta, height)
		color := "rgb(0,130,200)"
		if rho[i] >= rhoMin && delta[i] >= deltaMin {
			color = "rgb(230,25,75)"
		}
		fmt.Fprintf(bw, `<circle cx="%d" cy="%d" r="2" fill="%s"/>`+"\n", x, y, color)
	}
	fmt.Fprint(bw, "</svg>\n")
	return bw.Flush()
}

func bounds2(ds *geom.Dataset) (minX, maxX, minY, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for i := 0; i < ds.N; i++ {
		p := ds.At(i)
		if p[0] < minX {
			minX = p[0]
		}
		if p[0] > maxX {
			maxX = p[0]
		}
		if p[1] < minY {
			minY = p[1]
		}
		if p[1] > maxY {
			maxY = p[1]
		}
	}
	if ds.N == 0 {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	return
}

func scale(v, lo, hi float64, size int) int {
	if hi <= lo {
		return size / 2
	}
	// Clamp before the int conversion: a float-to-int overflow is
	// implementation-defined in Go.
	f := (v - lo) / (hi - lo) * float64(size-1)
	if f < 0 {
		f = 0
	}
	if f > float64(size-1) {
		f = float64(size - 1)
	}
	return int(f)
}
