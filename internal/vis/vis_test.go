package vis

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestColor(t *testing.T) {
	if Color(-1) != [3]uint8{200, 200, 200} {
		t.Error("noise must be gray")
	}
	if Color(0) == Color(1) {
		t.Error("distinct labels must differ")
	}
	if Color(0) != Color(int32(len(palette))) {
		t.Error("palette must wrap")
	}
}

func TestScatterPPM(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {0.5, 0.5}}
	labels := []int32{0, 1, -1}
	var buf bytes.Buffer
	if err := ScatterPPM(&buf, geom.MustFromRows(pts), labels, 64, 48); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P6\n64 48\n255\n")) {
		t.Fatalf("bad PPM header: %q", out[:16])
	}
	want := len("P6\n64 48\n255\n") + 3*64*48
	if len(out) != want {
		t.Errorf("PPM size %d, want %d", len(out), want)
	}
	// Some pixel must be non-white.
	body := out[len(out)-3*64*48:]
	nonWhite := false
	for _, b := range body {
		if b != 255 {
			nonWhite = true
			break
		}
	}
	if !nonWhite {
		t.Error("no points drawn")
	}
}

func TestScatterPPMErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterPPM(&buf, geom.MustFromRows([][]float64{{0, 0}}), []int32{0, 1}, 10, 10); err == nil {
		t.Error("mismatched labels accepted")
	}
	if err := ScatterPPM(&buf, &geom.Dataset{}, nil, 0, 10); err == nil {
		t.Error("zero width accepted")
	}
}

func TestScatterSVG(t *testing.T) {
	pts := [][]float64{{0, 0}, {10, 10}}
	var buf bytes.Buffer
	if err := ScatterSVG(&buf, geom.MustFromRows(pts), []int32{0, 1}, 100, 100); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Error("not an SVG document")
	}
	if strings.Count(s, "<circle") != 2 {
		t.Errorf("expected 2 circles, got %d", strings.Count(s, "<circle"))
	}
}

func TestDecisionGraphSVG(t *testing.T) {
	rho := []float64{10, 50, 3}
	delta := []float64{2, math.Inf(1), 1}
	var buf bytes.Buffer
	if err := DecisionGraphSVG(&buf, rho, delta, 5, 1.5, 200, 150); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "<circle") != 3 {
		t.Errorf("expected 3 circles, got %d", strings.Count(s, "<circle"))
	}
	// The center (rho=50, delta=Inf) must be highlighted red.
	if !strings.Contains(s, "rgb(230,25,75)") {
		t.Error("no highlighted center")
	}
	if err := DecisionGraphSVG(&buf, rho, delta[:2], 5, 1.5, 10, 10); err == nil {
		t.Error("mismatched slices accepted")
	}
}

func TestScaleDegenerate(t *testing.T) {
	if got := scale(5, 3, 3, 100); got != 50 {
		t.Errorf("degenerate scale = %d, want midpoint", got)
	}
	if got := scale(-1e18, 0, 1, 100); got != 0 {
		t.Errorf("underflow clamp = %d", got)
	}
	if got := scale(1e18, 0, 1, 100); got != 99 {
		t.Errorf("overflow clamp = %d", got)
	}
}

func TestEmptyScatter(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterPPM(&buf, &geom.Dataset{}, nil, 8, 8); err != nil {
		t.Fatalf("empty scatter: %v", err)
	}
}
