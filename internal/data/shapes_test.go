package data

import (
	"math"
	"testing"
)

func TestTwoMoons(t *testing.T) {
	ds := TwoMoons(2000, 100, 4, 1)
	if ds.Points.N != 2000 {
		t.Fatalf("got %d points", ds.Points.N)
	}
	if err := ds.Points.Validate(); err != nil {
		t.Fatal(err)
	}
	// The two crescents occupy distinct vertical half-planes on average.
	var upY, downY float64
	for i := 0; i < ds.Points.N; i++ {
		p := ds.Points.At(i)
		if i%2 == 0 {
			upY += p[1]
		} else {
			downY += p[1]
		}
	}
	if upY <= downY {
		t.Error("moons do not separate vertically on average")
	}
}

func TestSpirals(t *testing.T) {
	ds := Spirals(3000, 3, 2, 0.3, 1)
	if n := ds.Points.N; n < 2000 || n > 4500 {
		t.Fatalf("got %d points, want about 3000", n)
	}
	if err := ds.Points.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spiral radius stays bounded by turns * 2 pi (plus noise).
	maxR := 0.0
	for i := 0; i < ds.Points.N; i++ {
		p := ds.Points.At(i)
		if r := math.Hypot(p[0], p[1]); r > maxR {
			maxR = r
		}
	}
	if maxR > 4+2*2*2*math.Pi+5 {
		t.Errorf("spiral radius %v exceeds bound", maxR)
	}
	if Spirals(100, 0, 1, 0, 1) == nil {
		t.Error("arms<1 must be coerced")
	}
}

func TestShapesDeterministic(t *testing.T) {
	a := TwoMoons(500, 50, 2, 9)
	b := TwoMoons(500, 50, 2, 9)
	for i := 0; i < a.Points.N; i++ {
		if a.Points.At(i)[0] != b.Points.At(i)[0] {
			t.Fatal("TwoMoons not deterministic")
		}
	}
}
