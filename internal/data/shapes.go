package data

import (
	"math"
	"math/rand"

	"repro/internal/geom"
)

// The shape generators below produce the classic arbitrary-shape
// benchmarks that motivate density-based clustering (the paper's
// introduction: "density-based clustering ... can discover clusters of
// arbitrary shapes"). They are used by tests and examples; the paper's
// own evaluation uses Syn, S1-S4, and the real datasets.

// TwoMoons generates the interleaved half-circles benchmark: n points
// split between two crescents of the given radius and Gaussian noise.
func TwoMoons(n int, radius, noise float64, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, 2*n)
	for i := 0; len(coords) < 2*n; i++ {
		theta := rng.Float64() * math.Pi
		var x, y float64
		if i%2 == 0 {
			x = radius * math.Cos(theta)
			y = radius * math.Sin(theta)
		} else {
			x = radius - radius*math.Cos(theta)
			y = radius/2 - radius*math.Sin(theta)
		}
		coords = append(coords,
			x+rng.NormFloat64()*noise,
			y+rng.NormFloat64()*noise,
		)
	}
	return &Dataset{
		Name: "TwoMoons", Points: geom.NewDataset(coords, 2),
		DCut: radius / 12, RhoMin: 3, DeltaMin: radius / 2,
	}
}

// Spirals generates `arms` interleaved Archimedean spirals — the classic
// arbitrary-shape benchmark (Chang & Yeh style). Points are placed along
// each arm at spacing that grows outward, so density decreases
// monotonically from the inner tip: each arm has exactly one density
// peak and the dependency chains of DPC flow inward along the arm.
// (DPC is known to fragment *constant*-density filaments — fluctuation
// peaks then out-rank the arm tips on the decision graph — which is why
// the generator builds the gradient in.) The n parameter is a target;
// the deterministic arc walk may emit slightly fewer or more points.
func Spirals(n, arms int, turns, noise float64, seed int64) *Dataset {
	if arms < 1 {
		arms = 1
	}
	rng := rand.New(rand.NewSource(seed))
	totalTurns := turns * 2 * math.Pi
	// Baseline spacing chosen so the default walk yields about n points;
	// the reference configuration (3 arms, 2 turns) emits ~2235 points at
	// s0=0.1, and spacing scales inversely with point count.
	s0 := 0.1 * 2235 / float64(n)
	if s0 <= 0 {
		s0 = 0.1
	}
	sMax := 3.5 * s0
	coords := make([]float64, 0, 2*n)
	for arm := 0; arm < arms; arm++ {
		for t := 0.0; t < totalTurns; {
			// Inner-radius offset keeps the arms from merging at the
			// origin; the x2 pitch keeps adjacent arms ~4 units apart.
			r := 4 + 2*t
			phi := t + float64(arm)*2*math.Pi/float64(arms)
			coords = append(coords,
				r*math.Cos(phi)+rng.NormFloat64()*noise,
				r*math.Sin(phi)+rng.NormFloat64()*noise,
			)
			s := s0 * (1 + 0.3*t)
			if s > sMax {
				s = sMax
			}
			t += s / r
		}
	}
	return &Dataset{
		Name: "Spirals", Points: geom.NewDataset(coords, 2),
		DCut: 1.2, RhoMin: 2, DeltaMin: 6,
	}
}
