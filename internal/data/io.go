package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// SaveCSV writes the points one-per-line as comma-separated coordinates.
func SaveCSV(w io.Writer, pts [][]float64) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads comma- or whitespace-separated points, skipping blank
// lines and lines starting with '#'. All rows must agree in width.
func LoadCSV(r io.Reader) ([][]float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pts [][]float64
	width := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		p := make([]float64, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			p = append(p, v)
		}
		if width == -1 {
			width = len(p)
		} else if len(p) != width {
			return nil, fmt.Errorf("data: line %d has %d columns, want %d", lineNo, len(p), width)
		}
		pts = append(pts, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pts, nil
}

// binMagic identifies the binary point format.
const binMagic = uint32(0x44504331) // "DPC1"

// SaveBinary writes points in a compact little-endian binary format
// (magic, n, d, then n*d float64s) for fast reload of large datasets.
func SaveBinary(w io.Writer, pts [][]float64) error {
	bw := bufio.NewWriter(w)
	d := 0
	if len(pts) > 0 {
		d = len(pts[0])
	}
	hdr := []uint32{binMagic, uint32(len(pts)), uint32(d)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8*d)
	for _, p := range pts {
		if len(p) != d {
			return fmt.Errorf("data: ragged dataset (row width %d, want %d)", len(p), d)
		}
		for j, v := range p {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBinary reads the SaveBinary format.
func LoadBinary(r io.Reader) ([][]float64, error) {
	br := bufio.NewReader(r)
	var magic, n, d uint32
	for _, v := range []*uint32{&magic, &n, &d} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("data: bad magic %#x", magic)
	}
	if d == 0 && n > 0 {
		return nil, fmt.Errorf("data: zero-dimensional points")
	}
	pts := make([][]float64, n)
	buf := make([]byte, 8*d)
	for i := range pts {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: truncated at row %d: %w", i, err)
		}
		p := make([]float64, d)
		for j := range p {
			p[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		pts[i] = p
	}
	return pts, nil
}

// SaveCSVFile and LoadCSVFile are path-based conveniences.
func SaveCSVFile(path string, pts [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveCSV(f, pts); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile loads a CSV dataset from disk.
func LoadCSVFile(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSV(f)
}
