package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// SaveCSV writes the points one-per-line as comma-separated coordinates.
func SaveCSV(w io.Writer, ds *geom.Dataset) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < ds.N; i++ {
		p := ds.At(i)
		for j, v := range p {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadCSV reads comma- or whitespace-separated points, skipping blank
// lines and lines starting with '#'. All rows must agree in width. The
// coordinates land directly in one flat buffer — no per-row allocation.
func LoadCSV(r io.Reader) (*geom.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var coords []float64
	width := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		if width == -1 {
			width = len(fields)
		} else if len(fields) != width {
			return nil, fmt.Errorf("data: line %d has %d columns, want %d", lineNo, len(fields), width)
		}
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("data: line %d: %w", lineNo, err)
			}
			coords = append(coords, v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if width <= 0 {
		return &geom.Dataset{}, nil
	}
	return geom.NewDataset(coords, width), nil
}

// binMagic identifies the binary point format.
const binMagic = uint32(0x44504331) // "DPC1"

// SaveBinary writes points in a compact little-endian binary format
// (magic, n, d, then n*d float64s) for fast reload of large datasets.
func SaveBinary(w io.Writer, ds *geom.Dataset) error {
	bw := bufio.NewWriter(w)
	d := 0
	if ds.N > 0 {
		d = ds.Dim
	}
	hdr := []uint32{binMagic, uint32(ds.N), uint32(d)}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, 8*d)
	for i := 0; i < ds.N; i++ {
		p := ds.At(i)
		for j, v := range p {
			binary.LittleEndian.PutUint64(buf[8*j:], math.Float64bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxBinaryDim bounds the header dimensionality LoadBinary accepts: a
// larger value is a corrupt or hostile header, not a dataset (the row
// buffer alone would be gigabytes).
const maxBinaryDim = 1 << 20

// loadPrealloc caps the coordinate buffer reserved up front from the
// header's (n, d) claim; the rest grows by append as rows actually
// arrive, so a forged multi-billion-row header costs at most this much
// memory before the truncated-input error fires.
const loadPrealloc = 1 << 22 // 4M floats = 32 MiB

// LoadBinary reads the SaveBinary format straight into one flat buffer.
// The header's row count and dimensionality are untrusted — dpcd feeds
// uploads directly into this — so allocation is bounded by the bytes
// actually present, and truncated, oversized, or int-overflowing headers
// return errors instead of panicking.
func LoadBinary(r io.Reader) (*geom.Dataset, error) {
	br := bufio.NewReader(r)
	var magic, n, d uint32
	for _, v := range []*uint32{&magic, &n, &d} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	if magic != binMagic {
		return nil, fmt.Errorf("data: bad magic %#x", magic)
	}
	if d == 0 && n > 0 {
		return nil, fmt.Errorf("data: zero-dimensional points")
	}
	if d > maxBinaryDim {
		return nil, fmt.Errorf("data: implausible dimensionality %d (max %d)", d, maxBinaryDim)
	}
	if n == 0 {
		return &geom.Dataset{Dim: int(d)}, nil
	}
	// uint64(n)*uint64(d) cannot overflow (both < 2^32), unlike the int
	// product a full up-front make would need.
	prealloc := uint64(n) * uint64(d)
	if prealloc > loadPrealloc {
		prealloc = loadPrealloc
	}
	coords := make([]float64, 0, prealloc)
	buf := make([]byte, 8*d)
	for i := 0; i < int(n); i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("data: truncated at row %d: %w", i, err)
		}
		for j := 0; j < int(d); j++ {
			coords = append(coords, math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:])))
		}
	}
	return geom.NewDataset(coords, int(d)), nil
}

// SaveCSVFile and LoadCSVFile are path-based conveniences.
func SaveCSVFile(path string, ds *geom.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveCSV(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile loads a CSV dataset from disk.
func LoadCSVFile(path string) (*geom.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSV(f)
}
