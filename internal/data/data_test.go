package data

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

func TestGeneratorsBasics(t *testing.T) {
	gens := []struct {
		name string
		ds   *Dataset
		dim  int
	}{
		{"Syn", Syn(5000, 0.02, 1), 2},
		{"S1", SSet(1, 3000, 1), 2},
		{"S4", SSet(4, 3000, 1), 2},
		{"Airline", AirlineLike(4000, 1), 3},
		{"Household", HouseholdLike(4000, 1), 4},
		{"PAMAP2", PAMAP2Like(4000, 1), 4},
		{"Sensor", SensorLike(4000, 1), 8},
	}
	for _, g := range gens {
		if got := g.ds.Len(); got < 3000 {
			t.Errorf("%s: %d points", g.name, got)
		}
		if g.ds.Dim() != g.dim {
			t.Errorf("%s: dim %d, want %d", g.name, g.ds.Dim(), g.dim)
		}
		if err := g.ds.Points.Validate(); err != nil {
			t.Errorf("%s: invalid dataset: %v", g.name, err)
		}
		if g.ds.DCut <= 0 || g.ds.DeltaMin <= g.ds.DCut {
			t.Errorf("%s: bad default params %+v", g.name, g.ds)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := AirlineLike(2000, 7)
	b := AirlineLike(2000, 7)
	for o, v := range a.Points.Coords {
		if v != b.Points.Coords[o] {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := AirlineLike(2000, 8)
	same := true
	for o, v := range a.Points.Coords {
		if v != c.Points.Coords[o] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestSynHasDensityStructure(t *testing.T) {
	ds := Syn(20000, 0, 3)
	// Count points in coarse cells; a random-walk mixture must be far from
	// uniform: max cell count >> mean cell count.
	counts := map[[2]int]int{}
	for i := 0; i < ds.Points.N; i++ {
		p := ds.Points.At(i)
		counts[[2]int{int(p[0] / 5000), int(p[1] / 5000)}]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(ds.Points.N) / 400 // 20x20 cells
	if float64(max) < 5*mean {
		t.Errorf("Syn looks too uniform: max cell %d vs mean %.0f", max, mean)
	}
}

func TestSSetOverlapGrows(t *testing.T) {
	// Average distance to the nearest *other* cluster member should shrink
	// relative to spread as the grade rises. Proxy: mean pairwise distance
	// of a sample shrinks in separation terms; simply check the spread
	// parameter effect via variance of local cell counts.
	spreadOf := func(g int) float64 {
		ds := SSet(g, 4000, 9)
		var mx, my, sx, sy float64
		n := float64(ds.Points.N)
		for i := 0; i < ds.Points.N; i++ {
			p := ds.Points.At(i)
			mx += p[0]
			my += p[1]
		}
		mx /= n
		my /= n
		for i := 0; i < ds.Points.N; i++ {
			p := ds.Points.At(i)
			sx += (p[0] - mx) * (p[0] - mx)
			sy += (p[1] - my) * (p[1] - my)
		}
		return math.Sqrt((sx + sy) / n)
	}
	_ = spreadOf
	// Direct check: per-cluster sd grows with grade (the generator
	// parameter), measured by nearest-neighbor distances growing.
	nnMean := func(g int) float64 {
		ds := SSet(g, 2000, 9)
		var sum float64
		for i := 0; i < 200; i++ {
			best := math.Inf(1)
			for j := 0; j < ds.Points.N; j++ {
				if j == i {
					continue
				}
				if d := geom.DistIdx(ds.Points, int32(i), int32(j)); d < best {
					best = d
				}
			}
			sum += best
		}
		return sum / 200
	}
	if !(nnMean(4) > nnMean(1)) {
		t.Error("S4 should be more spread out (larger NN distances at equal n) than S1")
	}
}

func TestApplyNoiseRate(t *testing.T) {
	clean := Syn(10000, 0, 5)
	noisy := Syn(10000, 0.16, 5)
	// Count far-from-anything points via coarse occupancy: noisy version
	// must occupy clearly more cells.
	occ := func(ds *geom.Dataset) int {
		cells := map[[2]int]bool{}
		for i := 0; i < ds.N; i++ {
			p := ds.At(i)
			cells[[2]int{int(p[0] / 2000), int(p[1] / 2000)}] = true
		}
		return len(cells)
	}
	if occ(noisy.Points) <= occ(clean.Points) {
		t.Error("noise did not spread occupancy")
	}
}

func TestSample(t *testing.T) {
	ds := Syn(10000, 0, 6)
	half := Sample(ds, 0.5, 1)
	if r := float64(half.Points.N) / 10000; r < 0.45 || r > 0.55 {
		t.Errorf("sample rate 0.5 kept %.2f", r)
	}
	if Sample(ds, 1.0, 1) != ds {
		t.Error("rate 1 must return the dataset unchanged")
	}
	if half.DCut != ds.DCut {
		t.Error("sample must preserve default parameters")
	}
	tiny := Sample(ds, 1e-9, 1)
	if tiny.Points.N == 0 {
		t.Error("sample must never be empty")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := [][]float64{{1.5, -2.25, 3}, {0, 1e-9, -1e9}}
	var buf bytes.Buffer
	if err := SaveCSV(&buf, geom.MustFromRows(pts)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 2 {
		t.Fatalf("loaded %d rows", got.N)
	}
	for i := range pts {
		for j := range pts[i] {
			if got.At(i)[j] != pts[i][j] {
				t.Errorf("round trip [%d][%d]: %v != %v", i, j, got.At(i)[j], pts[i][j])
			}
		}
	}
}

func TestLoadCSVFlexible(t *testing.T) {
	in := "# comment\n1, 2\n\n3\t4\n5;6\n"
	got, err := LoadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 3 || got.At(2)[1] != 6 {
		t.Fatalf("parsed %v", got)
	}
	if _, err := LoadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV accepted")
	}
	if _, err := LoadCSV(strings.NewReader("1,abc\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := SensorLike(500, 2)
	var buf bytes.Buffer
	if err := SaveBinary(&buf, ds.Points); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != ds.Points.N {
		t.Fatalf("loaded %d rows, want %d", got.N, ds.Points.N)
	}
	for o, v := range got.Coords {
		if v != ds.Points.Coords[o] {
			t.Fatal("binary round trip mismatch")
		}
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := LoadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	var buf bytes.Buffer
	if err := SaveBinary(&buf, geom.MustFromRows([][]float64{{1, 2}})); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := LoadBinary(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Error("truncated body accepted")
	}
	raw[0] ^= 0xFF
	if _, err := LoadBinary(bytes.NewReader(raw)); err == nil {
		t.Error("bad magic accepted")
	}
}
