package data

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// FuzzLoadCSV guards the dpcd upload path: arbitrary CSV bodies must
// parse or error, never panic, and an accepted dataset must be
// internally consistent and round-trip through SaveCSV losslessly.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("1,2\n3,4\n"))
	f.Add([]byte("# comment\n\n1.5 2.5\n-3e10\t4e-10\n"))
	f.Add([]byte("1;2;3\n4;5;6\n"))
	f.Add([]byte("1,2\n3\n"))               // ragged
	f.Add([]byte("NaN,Inf\n"))              // parses; rejected later by Validate
	f.Add([]byte("a,b\n"))                  // not numbers
	f.Add([]byte(""))                       // empty
	f.Add([]byte(",,,\n"))                  // separators only
	f.Add([]byte("0x1p10,2\n"))             // hex float (ParseFloat accepts)
	f.Add([]byte("1e999,0\n"))              // overflows float64
	f.Add(bytes.Repeat([]byte("7,"), 4096)) // one very wide line
	f.Fuzz(func(t *testing.T, raw []byte) {
		ds, err := LoadCSV(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if ds.N*ds.Dim != len(ds.Coords) {
			t.Fatalf("inconsistent dataset: N=%d Dim=%d coords=%d", ds.N, ds.Dim, len(ds.Coords))
		}
		if ds.N == 0 {
			return
		}
		for _, x := range ds.Coords {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				// Loadable but not clusterable; Validate (which every
				// serving path runs) must reject it without panicking.
				if ds.Validate() == nil {
					t.Fatal("Validate accepted NaN/Inf coordinates")
				}
				return
			}
		}
		// Finite datasets round-trip exactly: 'g'/-1 formatting is
		// lossless for float64.
		var buf bytes.Buffer
		if err := SaveCSV(&buf, ds); err != nil {
			t.Fatalf("SaveCSV: %v", err)
		}
		ds2, err := LoadCSV(&buf)
		if err != nil {
			t.Fatalf("reload: %v", err)
		}
		if ds2.N != ds.N || ds2.Dim != ds.Dim {
			t.Fatalf("round-trip shape changed: (%d,%d) -> (%d,%d)", ds.N, ds.Dim, ds2.N, ds2.Dim)
		}
		for i := range ds.Coords {
			if ds2.Coords[i] != ds.Coords[i] {
				t.Fatalf("round-trip coord %d: %v -> %v", i, ds.Coords[i], ds2.Coords[i])
			}
		}
	})
}

// FuzzLoadBinary guards the DPC1 binary upload path: hostile headers
// (huge n, huge d, n*d overflowing int) and truncated bodies must error
// without panicking or allocating unboundedly.
func FuzzLoadBinary(f *testing.F) {
	valid := func(n, d uint32, vals []float64) []byte {
		var buf bytes.Buffer
		for _, h := range []uint32{0x44504331, n, d} {
			binary.Write(&buf, binary.LittleEndian, h)
		}
		binary.Write(&buf, binary.LittleEndian, vals)
		return buf.Bytes()
	}
	f.Add(valid(2, 2, []float64{1, 2, 3, 4}))
	f.Add(valid(0, 3, nil))
	f.Add(valid(5, 2, []float64{1, 2})) // truncated body
	f.Add(valid(1, 0, nil))             // zero-dimensional
	// Header claims ~2^32 rows x 2^32 dims: int(n)*int(d) would overflow.
	f.Add(valid(4294967295, 4294967295, nil))
	f.Add(valid(1, 4294967295, nil)) // implausible dimensionality
	f.Add([]byte("not a DPC1 file"))
	f.Add([]byte{0x31, 0x43, 0x50, 0x44}) // magic only, header truncated
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		ds, err := LoadBinary(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if ds.N*ds.Dim != len(ds.Coords) {
			t.Fatalf("inconsistent dataset: N=%d Dim=%d coords=%d", ds.N, ds.Dim, len(ds.Coords))
		}
		if ds.N == 0 {
			return // SaveBinary writes d=0 for empty datasets; Dim does not round-trip
		}
		// Accepted payloads round-trip byte-identically (bit patterns are
		// preserved even for NaN).
		var buf bytes.Buffer
		if err := SaveBinary(&buf, ds); err != nil {
			t.Fatalf("SaveBinary: %v", err)
		}
		ds2, err := LoadBinary(&buf)
		if err != nil {
			t.Fatalf("reload: %v", err)
		}
		if ds2.N != ds.N || ds2.Dim != ds.Dim || len(ds2.Coords) != len(ds.Coords) {
			t.Fatalf("round-trip shape changed: (%d,%d) -> (%d,%d)", ds.N, ds.Dim, ds2.N, ds2.Dim)
		}
		for i := range ds.Coords {
			if math.Float64bits(ds2.Coords[i]) != math.Float64bits(ds.Coords[i]) {
				t.Fatalf("round-trip coord %d changed bits", i)
			}
		}
	})
}

// TestLoadBinaryHostileHeaders pins the specific regressions the fuzz
// targets exist for, so they are exercised on every plain `go test` run
// too.
func TestLoadBinaryHostileHeaders(t *testing.T) {
	header := func(n, d uint32) []byte {
		var buf bytes.Buffer
		for _, h := range []uint32{0x44504331, n, d} {
			binary.Write(&buf, binary.LittleEndian, h)
		}
		return buf.Bytes()
	}
	cases := map[string][]byte{
		"overflowing n*d":   header(4294967295, 4294967295),
		"huge row count":    header(4294967295, 2),
		"implausible dim":   header(1, 1<<20+1),
		"truncated body":    append(header(10, 2), 1, 2, 3),
		"zero-dim nonempty": header(3, 0),
		"bad magic":         []byte("XXXXYYYYZZZZ"),
		"empty input":       {},
	}
	for name, raw := range cases {
		if _, err := LoadBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadCSVRaggedAndJunk(t *testing.T) {
	for name, body := range map[string]string{
		"ragged":        "1,2\n3\n",
		"words":         "hello,world\n",
		"overlong line": "1," + strings.Repeat("2,", 1<<20) + "3\n",
	} {
		if _, err := LoadCSV(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
