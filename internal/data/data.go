// Package data provides the datasets of the paper's evaluation (§6):
// the Syn random-walk synthetic, the S1-S4 Gaussian benchmark family, and
// synthetic stand-ins for the four real datasets (Airline, Household,
// PAMAP2, Sensor) that are not redistributable. Each stand-in reproduces
// the properties the experiments depend on — dimensionality, domain, and a
// skewed multi-hub density profile — so every code path (kd-tree depth,
// grid occupancy, LSH bucketing) is exercised the same way; DESIGN.md §4
// records the substitutions.
//
// All generators are deterministic in (n, seed).
package data

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Dataset is a named point set with the default DPC parameters the paper
// uses for it. Points are stored flat (row-major geom.Dataset), so the
// generators allocate one contiguous buffer per dataset instead of one
// slice per point.
type Dataset struct {
	Name   string
	Points *geom.Dataset
	// DCut is the paper's default cutoff distance for this dataset.
	DCut float64
	// RhoMin and DeltaMin are defaults chosen per §2 ("rho_min is
	// specified to remove points with very small local densities").
	RhoMin   float64
	DeltaMin float64
}

// Dim returns the dataset dimensionality.
func (d *Dataset) Dim() int {
	if d.Points == nil || d.Points.N == 0 {
		return 0
	}
	return d.Points.Dim
}

// Len returns the number of points.
func (d *Dataset) Len() int {
	if d.Points == nil {
		return 0
	}
	return d.Points.N
}

// Syn generates the paper's Syn dataset: a 2-dimensional random-walk
// point set on [0, 1e5]^2 (the model of Gan & Tao, SIGMOD 2015). Walkers
// restart at random locations with the given probability, producing
// arbitrarily shaped dense filaments with density peaks; noiseRate of the
// points are replaced by uniform noise.
func Syn(n int, noiseRate float64, seed int64) *Dataset {
	const domain = 1e5
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, 2*n)
	// 13 walkers to match the paper's "13 density-peaks" on Syn.
	const walkers = 13
	starts := make([][]float64, walkers)
	for w := range starts {
		starts[w] = []float64{domain*0.1 + rng.Float64()*domain*0.8, domain*0.1 + rng.Float64()*domain*0.8}
	}
	cur := make([][]float64, walkers)
	for w := range cur {
		cur[w] = []float64{starts[w][0], starts[w][1]}
	}
	step := domain / 400
	for len(coords) < 2*n {
		w := rng.Intn(walkers)
		if rng.Float64() < 0.002 {
			// Restart near the walker's home peak so density concentrates.
			cur[w][0] = starts[w][0]
			cur[w][1] = starts[w][1]
		}
		theta := rng.Float64() * 2 * math.Pi
		cur[w][0] = clamp(cur[w][0]+math.Cos(theta)*step*rng.Float64()*2, 0, domain)
		cur[w][1] = clamp(cur[w][1]+math.Sin(theta)*step*rng.Float64()*2, 0, domain)
		// Emit a point near the walker with a tight Gaussian spread.
		coords = append(coords,
			clamp(cur[w][0]+rng.NormFloat64()*step/2, 0, domain),
			clamp(cur[w][1]+rng.NormFloat64()*step/2, 0, domain),
		)
	}
	ds := geom.NewDataset(coords, 2)
	applyNoise(ds, noiseRate, domain, rng)
	return &Dataset{Name: "Syn", Points: ds, DCut: 250, RhoMin: 10, DeltaMin: 5000}
}

// SSet generates an S1-S4 style benchmark (Fränti & Sieranoja 2018):
// 15 Gaussian clusters of equal size on [0, 1e5]^2 whose overlap grows
// with grade in {1,2,3,4}.
func SSet(grade, n int, seed int64) *Dataset {
	if grade < 1 {
		grade = 1
	}
	if grade > 4 {
		grade = 4
	}
	const domain = 1e5
	rng := rand.New(rand.NewSource(seed + int64(grade)*1000))
	const k = 15
	centers := scatteredCenters(rng, k, 2, domain, domain/6)
	// Cluster spread grows with the overlap grade: S1 well separated,
	// S4 heavily overlapping (cf. the original S-sets).
	sd := domain / 40 * (0.6 + 0.55*float64(grade))
	coords := make([]float64, 0, 2*n)
	for len(coords) < 2*n {
		c := centers[rng.Intn(k)]
		coords = append(coords,
			clamp(c[0]+rng.NormFloat64()*sd, 0, domain),
			clamp(c[1]+rng.NormFloat64()*sd, 0, domain),
		)
	}
	return &Dataset{
		Name:   fmt.Sprintf("S%d", grade),
		Points: geom.NewDataset(coords, 2), DCut: 2500, RhoMin: 5, DeltaMin: 12000,
	}
}

// AirlineLike stands in for the 3-d Airline dataset (5,810,462 flight
// records, domain [0, 1e6]^3): a mixture of many anisotropic Gaussian
// hubs of skewed sizes over a broad domain plus 3% uniform background.
func AirlineLike(n int, seed int64) *Dataset {
	ds := hubMixture(n, 3, 1e6, 40, 0.03, 1.9, seed)
	return &Dataset{Name: "Airline", Points: ds, DCut: 1000, RhoMin: 10, DeltaMin: 20000}
}

// HouseholdLike stands in for the 4-d Household electric-power dataset
// (2,049,280 rows, domain [0, 1e5]^4): correlated daily-regime ridges.
func HouseholdLike(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x4853))
	const domain = 1e5
	const regimes = 24
	centers := scatteredCenters(rng, regimes, 4, domain, domain/20)
	coords := make([]float64, 0, 4*n)
	for len(coords) < 4*n {
		c := centers[rng.Intn(regimes)]
		// Correlated dims: a shared latent factor plus per-dim noise gives
		// the ridge structure of appliance load curves.
		latent := rng.NormFloat64() * domain / 60
		for j := 0; j < 4; j++ {
			coords = append(coords, clamp(c[j]+latent+rng.NormFloat64()*domain/200, 0, domain))
		}
	}
	ds := geom.NewDataset(coords, 4)
	applyNoise(ds, 0.02, domain, rng)
	return &Dataset{Name: "Household", Points: ds, DCut: 1000, RhoMin: 10, DeltaMin: 15000}
}

// PAMAP2Like stands in for the 4-d PAMAP2 physical-activity dataset
// (3,850,505 rows): 12 activity regimes with per-regime covariance scale
// and transition noise.
func PAMAP2Like(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed ^ 0x50414d))
	const domain = 1e5
	const regimes = 12
	centers := scatteredCenters(rng, regimes, 4, domain, domain/12)
	coords := make([]float64, 0, 4*n)
	for len(coords) < 4*n {
		c := rng.Intn(regimes)
		// Regime-specific spread: resting activities are tight, dynamic
		// ones broad — the skewed-density profile the paper relies on.
		sd := domain / 150 * (1 + 3*float64(c)/regimes)
		for j := 0; j < 4; j++ {
			coords = append(coords, clamp(centers[c][j]+rng.NormFloat64()*sd, 0, domain))
		}
	}
	ds := geom.NewDataset(coords, 4)
	applyNoise(ds, 0.03, domain, rng)
	return &Dataset{Name: "PAMAP2", Points: ds, DCut: 1000, RhoMin: 10, DeltaMin: 15000}
}

// SensorLike stands in for the 8-d Intel-lab Sensor dataset (928,991
// rows): mote-signature clusters in 8 dimensions on [0, 1e5]^8.
func SensorLike(n int, seed int64) *Dataset {
	ds := hubMixture(n, 8, 1e5, 54, 0.02, 1.4, seed^0x53454e)
	return &Dataset{Name: "Sensor", Points: ds, DCut: 5000, RhoMin: 10, DeltaMin: 40000}
}

// hubMixture draws n points from `hubs` anisotropic Gaussian hubs with
// Zipf-skewed sizes over [0, domain]^d, plus a uniform background
// fraction. skew > 1 steepens the hub-size distribution.
func hubMixture(n, d int, domain float64, hubs int, background, skew float64, seed int64) *geom.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := scatteredCenters(rng, hubs, d, domain, domain/30)
	// Zipf-like hub weights.
	weights := make([]float64, hubs)
	var total float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), skew)
		total += weights[i]
	}
	cum := make([]float64, hubs)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	// Per-hub anisotropic spreads.
	sds := make([][]float64, hubs)
	for h := range sds {
		sd := make([]float64, d)
		for j := range sd {
			sd[j] = domain / 300 * (0.5 + rng.Float64()*3)
		}
		sds[h] = sd
	}
	coords := make([]float64, 0, n*d)
	for len(coords) < n*d {
		if rng.Float64() < background {
			for j := 0; j < d; j++ {
				coords = append(coords, rng.Float64()*domain)
			}
			continue
		}
		u := rng.Float64()
		h := 0
		for h < hubs-1 && cum[h] < u {
			h++
		}
		for j := 0; j < d; j++ {
			coords = append(coords, clamp(centers[h][j]+rng.NormFloat64()*sds[h][j], 0, domain))
		}
	}
	return geom.NewDataset(coords, d)
}

// scatteredCenters places k centers in [0.1, 0.9]*domain per dimension
// with a best-effort minimum pairwise separation.
func scatteredCenters(rng *rand.Rand, k, d int, domain, minSep float64) [][]float64 {
	centers := make([][]float64, 0, k)
	for len(centers) < k {
		c := make([]float64, d)
		for j := range c {
			c[j] = domain*0.1 + rng.Float64()*domain*0.8
		}
		ok := true
		for _, e := range centers {
			var sq float64
			for j := range c {
				df := c[j] - e[j]
				sq += df * df
			}
			if math.Sqrt(sq) < minSep {
				ok = false
				break
			}
		}
		if ok || rng.Float64() < 0.02 { // escape hatch for crowded configs
			centers = append(centers, c)
		}
	}
	return centers
}

// applyNoise replaces a uniform-random rate of the points with uniform
// noise over [0, domain]^d, in place.
func applyNoise(ds *geom.Dataset, rate, domain float64, rng *rand.Rand) {
	if rate <= 0 {
		return
	}
	for i := 0; i < ds.N; i++ {
		if rng.Float64() < rate {
			p := ds.At(i)
			for j := range p {
				p[j] = rng.Float64() * domain
			}
		}
	}
}

// Sample returns a uniform sample of the dataset at the given rate in
// (0, 1], preserving relative order — the paper's Figure 7 workload knob.
func Sample(d *Dataset, rate float64, seed int64) *Dataset {
	if rate >= 1 {
		return d
	}
	rng := rand.New(rand.NewSource(seed))
	dim := d.Points.Dim
	coords := make([]float64, 0, (int(float64(d.Points.N)*rate)+1)*dim)
	for i := 0; i < d.Points.N; i++ {
		if rng.Float64() < rate {
			coords = append(coords, d.Points.At(i)...)
		}
	}
	if len(coords) == 0 {
		coords = append(coords, d.Points.At(0)...)
	}
	return &Dataset{
		Name:   fmt.Sprintf("%s@%.2f", d.Name, rate),
		Points: geom.NewDataset(coords, dim), DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin,
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
