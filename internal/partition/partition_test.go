package partition

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestDynamicCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		for _, n := range []int{0, 1, 7, 1000} {
			hits := make([]atomic.Int32, n)
			Dynamic(n, workers, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestDynamicChunked(t *testing.T) {
	for _, chunk := range []int{1, 3, 16, 1000} {
		n := 257
		hits := make([]atomic.Int32, n)
		DynamicChunked(n, 4, chunk, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("chunk=%d: index %d hit %d times", chunk, i, got)
			}
		}
	}
}

func TestLPTCoversAllTasks(t *testing.T) {
	costs := []float64{5, 3, 8, 1, 1, 9, 2}
	bins := LPT(costs, 3)
	if len(bins) != 3 {
		t.Fatalf("got %d bins", len(bins))
	}
	seen := make(map[int]bool)
	for _, bin := range bins {
		for _, task := range bin {
			if seen[task] {
				t.Fatalf("task %d assigned twice", task)
			}
			seen[task] = true
		}
	}
	if len(seen) != len(costs) {
		t.Fatalf("assigned %d of %d tasks", len(seen), len(costs))
	}
}

func TestLPTKnownOptimal(t *testing.T) {
	// Classic example: {7,6,5,4,3,3} on 2 machines, optimum makespan 14.
	costs := []float64{7, 6, 5, 4, 3, 3}
	bins := LPT(costs, 2)
	if got := Makespan(costs, bins); got != 14 {
		t.Errorf("makespan = %v, want 14", got)
	}
}

func TestLPTApproximationBoundProperty(t *testing.T) {
	// Property: LPT makespan <= 3/2 * lower bound, where the lower bound is
	// max(total/m, max cost).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		m := 1 + rng.Intn(8)
		costs := make([]float64, n)
		var total, maxC float64
		for i := range costs {
			costs[i] = rng.Float64() * 100
			total += costs[i]
			if costs[i] > maxC {
				maxC = costs[i]
			}
		}
		lower := total / float64(m)
		if maxC > lower {
			lower = maxC
		}
		ms := Makespan(costs, LPT(costs, m))
		return ms <= 1.5*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRunLPTExecutesEachTaskOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	costs := make([]float64, 500)
	for i := range costs {
		costs[i] = rng.Float64()
	}
	for _, workers := range []int{1, 4, 16} {
		hits := make([]atomic.Int32, len(costs))
		RunLPT(costs, workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestLPTEmptyAndDegenerate(t *testing.T) {
	if bins := LPT(nil, 4); len(bins) != 4 {
		t.Errorf("empty tasks: got %d bins", len(bins))
	}
	bins := LPT([]float64{5}, 3)
	total := 0
	for _, b := range bins {
		total += len(b)
	}
	if total != 1 {
		t.Errorf("single task: assigned %d times", total)
	}
	// workers < 1 coerces to 1.
	bins = LPT([]float64{1, 2}, 0)
	if len(bins) != 1 || len(bins[0]) != 2 {
		t.Errorf("workers=0: bins = %v", bins)
	}
}

func TestLPTBalance(t *testing.T) {
	// Equal costs must spread evenly.
	costs := make([]float64, 40)
	for i := range costs {
		costs[i] = 1
	}
	bins := LPT(costs, 4)
	for w, bin := range bins {
		if len(bin) != 10 {
			t.Errorf("bin %d has %d tasks, want 10", w, len(bin))
		}
	}
}
