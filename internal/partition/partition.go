// Package partition provides the two parallel work-distribution strategies
// the paper uses on its multicore testbed:
//
//   - Dynamic self-scheduling (the OpenMP "schedule(dynamic)" Ex-DPC uses
//     for local densities): workers repeatedly claim the next unprocessed
//     task from a shared atomic counter, so expensive tasks never stall the
//     pool behind a static assignment.
//
//   - Cost-based greedy partitioning (the 3/2-approximation of Graham's
//     LPT rule, used by Approx-DPC): tasks with estimated costs are sorted
//     descending and each is placed on the currently least-loaded thread,
//     then every thread runs its own bucket. The paper estimates costs such
//     as |P(c)| or |P(c)|*|R| before each phase and applies this rule.
//
// Both helpers run the caller's function on the calling goroutine when
// workers <= 1, which keeps single-thread measurements free of pool
// overhead (matching the paper's single-thread baselines).
package partition

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
)

// Dynamic runs fn(i) for every i in [0, n) using the given number of
// workers with dynamic self-scheduling. fn must be safe for concurrent
// invocation on distinct indices.
func Dynamic(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
}

// DynamicChunked is Dynamic with a claim granularity of chunk indices,
// which reduces contention on the shared counter when tasks are tiny.
func DynamicChunked(n, workers, chunk int, fn func(i int)) {
	if chunk <= 1 {
		Dynamic(n, workers, fn)
		return
	}
	if n <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// LPT assigns n tasks with the given costs to `workers` bins using the
// Longest-Processing-Time greedy rule and returns, per bin, the task
// indices assigned to it. The makespan of the result is at most 3/2 the
// optimum (4/3 - 1/(3m) asymptotically), which is the guarantee the paper
// cites for its cost-based partitioning.
func LPT(costs []float64, workers int) [][]int {
	n := len(costs)
	if workers < 1 {
		workers = 1
	}
	bins := make([][]int, workers)
	if n == 0 {
		return bins
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })

	h := &binHeap{}
	for w := 0; w < workers; w++ {
		h.items = append(h.items, binLoad{idx: w})
	}
	heap.Init(h)
	for _, task := range order {
		b := &h.items[0]
		bins[b.idx] = append(bins[b.idx], task)
		b.load += costs[task]
		heap.Fix(h, 0)
	}
	return bins
}

// RunLPT partitions tasks 0..n-1 by cost with LPT, then runs each bin on
// its own goroutine; fn(i) is invoked exactly once for every task index.
func RunLPT(costs []float64, workers int, fn func(i int)) {
	if workers <= 1 {
		for i := range costs {
			fn(i)
		}
		return
	}
	bins := LPT(costs, workers)
	var wg sync.WaitGroup
	for _, bin := range bins {
		if len(bin) == 0 {
			continue
		}
		wg.Add(1)
		go func(tasks []int) {
			defer wg.Done()
			for _, i := range tasks {
				fn(i)
			}
		}(bin)
	}
	wg.Wait()
}

// Makespan returns the maximum per-bin cost sum of an assignment, the
// quantity LPT minimizes. Exposed for tests and scheduling diagnostics.
func Makespan(costs []float64, bins [][]int) float64 {
	var max float64
	for _, bin := range bins {
		var s float64
		for _, t := range bin {
			s += costs[t]
		}
		if s > max {
			max = s
		}
	}
	return max
}

type binLoad struct {
	load float64
	idx  int
}

type binHeap struct {
	items []binLoad
}

func (h *binHeap) Len() int           { return len(h.items) }
func (h *binHeap) Less(a, b int) bool { return h.items[a].load < h.items[b].load }
func (h *binHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *binHeap) Push(x interface{}) { h.items = append(h.items, x.(binLoad)) }
func (h *binHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
