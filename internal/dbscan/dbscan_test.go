package dbscan

import (
	"repro/internal/geom"

	"math"
	"math/rand"
	"testing"
)

func blobs(rng *rand.Rand, centers [][]float64, per int, sd float64) [][]float64 {
	var pts [][]float64
	for _, c := range centers {
		for i := 0; i < per; i++ {
			p := make([]float64, len(c))
			for j := range p {
				p[j] = c[j] + rng.NormFloat64()*sd
			}
			pts = append(pts, p)
		}
	}
	return pts
}

func TestDBSCANSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := blobs(rng, [][]float64{{0, 0}, {100, 0}, {0, 100}}, 150, 3)
	res := Run(geom.MustFromRows(pts), 10, 5)
	if res.NumClusters != 3 {
		t.Fatalf("found %d clusters, want 3", res.NumClusters)
	}
	// Each blob pure.
	for b := 0; b < 3; b++ {
		first := res.Labels[b*150]
		for i := b * 150; i < (b+1)*150; i++ {
			if res.Labels[i] != first {
				t.Fatalf("blob %d split", b)
			}
		}
	}
}

func TestDBSCANNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blobs(rng, [][]float64{{0, 0}}, 200, 2)
	pts = append(pts, []float64{500, 500}) // isolated
	res := Run(geom.MustFromRows(pts), 8, 5)
	if res.Labels[200] != Noise {
		t.Errorf("isolated point labelled %d, want noise", res.Labels[200])
	}
	if res.NumClusters != 1 {
		t.Errorf("clusters = %d, want 1", res.NumClusters)
	}
}

func TestDBSCANBorderAdoption(t *testing.T) {
	// A line of points with spacing just under eps: all density-connected
	// through cores, forming a single cluster.
	var pts [][]float64
	for i := 0; i < 30; i++ {
		pts = append(pts, []float64{float64(i) * 0.9, 0})
	}
	res := Run(geom.MustFromRows(pts), 1.0, 3)
	if res.NumClusters != 1 {
		t.Fatalf("chain gave %d clusters, want 1", res.NumClusters)
	}
	for i, l := range res.Labels {
		if l != 0 {
			t.Errorf("chain point %d labelled %d", i, l)
		}
	}
}

func TestDBSCANMergesCloseBlobsThatDPCSeparates(t *testing.T) {
	// The Figure 2 phenomenon: two dense blobs connected by a thin bridge
	// of points. DBSCAN (with eps large enough to make bridge points
	// core-connected) merges them into one cluster.
	rng := rand.New(rand.NewSource(3))
	pts := blobs(rng, [][]float64{{0, 0}, {60, 0}}, 300, 4)
	for i := 0; i < 20; i++ {
		pts = append(pts, []float64{3 * float64(i), rng.NormFloat64()})
	}
	// Mid-bridge points see exactly 3 neighbors within eps (themselves and
	// the two adjacent bridge points), so minPts=3 makes the bridge
	// core-connected.
	res := Run(geom.MustFromRows(pts), 6, 3)
	majority := func(lo, hi int) int32 {
		counts := map[int32]int{}
		for i := lo; i < hi; i++ {
			counts[res.Labels[i]]++
		}
		var best int32
		bestC := -1
		for l, c := range counts {
			if c > bestC {
				best, bestC = l, c
			}
		}
		return best
	}
	if a, b := majority(0, 300), majority(300, 600); a != b || a == Noise {
		t.Fatalf("bridged blobs kept separate labels %d and %d; DBSCAN should merge them at this eps", a, b)
	}
}

func TestDBSCANEmptyAndSingle(t *testing.T) {
	res := Run(&geom.Dataset{}, 1, 3)
	if res.NumClusters != 0 {
		t.Error("empty input should have 0 clusters")
	}
	res = Run(geom.MustFromRows([][]float64{{1, 1}}), 1, 1)
	if res.NumClusters != 1 || res.Labels[0] != 0 {
		t.Errorf("single point with minPts=1: %+v", res)
	}
	res = Run(geom.MustFromRows([][]float64{{1, 1}}), 1, 2)
	if res.Labels[0] != Noise {
		t.Error("single point with minPts=2 should be noise")
	}
}

func TestOPTICSOrderingComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blobs(rng, [][]float64{{0, 0}, {50, 50}}, 100, 3)
	order := OPTICS(geom.MustFromRows(pts), 15, 5)
	if len(order) != len(pts) {
		t.Fatalf("ordering has %d entries, want %d", len(order), len(pts))
	}
	seen := make([]bool, len(pts))
	for _, op := range order {
		if seen[op.ID] {
			t.Fatalf("point %d appears twice", op.ID)
		}
		seen[op.ID] = true
	}
}

func TestOPTICSValleyStructure(t *testing.T) {
	// Two separated blobs: the ordering must contain a reachability jump
	// (> blob-internal reachability) where it crosses between blobs.
	rng := rand.New(rand.NewSource(5))
	pts := blobs(rng, [][]float64{{0, 0}, {200, 0}}, 120, 3)
	order := OPTICS(geom.MustFromRows(pts), 500, 5)
	jumps := 0
	for _, op := range order[1:] {
		if op.Reachability > 50 {
			jumps++
		}
	}
	if jumps != 1 {
		t.Errorf("expected exactly 1 large reachability jump, got %d", jumps)
	}
}

func TestExtractDBSCANMatchesRun(t *testing.T) {
	// Cutting OPTICS at eps' reproduces DBSCAN(eps') cluster structure
	// (cluster counts match; labels may permute).
	rng := rand.New(rand.NewSource(6))
	pts := blobs(rng, [][]float64{{0, 0}, {80, 0}, {0, 80}}, 120, 3)
	order := OPTICS(geom.MustFromRows(pts), 100, 5)
	ext := ExtractDBSCAN(order, 10)
	run := Run(geom.MustFromRows(pts), 10, 5)
	if ext.NumClusters != run.NumClusters {
		t.Fatalf("extract gave %d clusters, Run gave %d", ext.NumClusters, run.NumClusters)
	}
	// Non-noise agreement up to relabelling.
	m := map[int32]int32{}
	agree := 0
	for i := range pts {
		a, b := ext.Labels[i], run.Labels[i]
		if a == Noise || b == Noise {
			if a == b {
				agree++
			}
			continue
		}
		if mapped, ok := m[a]; ok {
			if mapped == b {
				agree++
			}
		} else {
			m[a] = b
			agree++
		}
	}
	if float64(agree) < 0.95*float64(len(pts)) {
		t.Errorf("extract/run agreement %d/%d too low", agree, len(pts))
	}
}

func TestParamsForK(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := blobs(rng, [][]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}}, 100, 3)
	order := OPTICS(geom.MustFromRows(pts), 500, 5)
	eps, ok := ParamsForK(order, 4, 20)
	if !ok {
		t.Fatal("no threshold for 4 clusters found")
	}
	res := ExtractDBSCAN(order, eps)
	big := 0
	counts := map[int32]int{}
	for _, l := range res.Labels {
		if l != Noise {
			counts[l]++
		}
	}
	for _, c := range counts {
		if c >= 20 {
			big++
		}
	}
	if big != 4 {
		t.Errorf("threshold %v yields %d big clusters, want 4", eps, big)
	}
}

func TestOPTICSCoreDistMonotoneInMinPts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := blobs(rng, [][]float64{{0, 0}}, 150, 5)
	o3 := OPTICS(geom.MustFromRows(pts), 100, 3)
	o9 := OPTICS(geom.MustFromRows(pts), 100, 9)
	cd3 := make([]float64, len(pts))
	cd9 := make([]float64, len(pts))
	for _, op := range o3 {
		cd3[op.ID] = op.CoreDist
	}
	for _, op := range o9 {
		cd9[op.ID] = op.CoreDist
	}
	for i := range pts {
		if !math.IsInf(cd9[i], 1) && cd9[i] < cd3[i]-1e-9 {
			t.Fatalf("core distance must grow with minPts at %d: %v < %v", i, cd9[i], cd3[i])
		}
	}
}
