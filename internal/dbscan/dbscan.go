// Package dbscan implements DBSCAN (Ester et al., KDD 1996) and OPTICS
// (Ankerst et al., SIGMOD 1999) over a kd-tree. The paper uses them only
// as a clustering-quality comparison (Figure 2 and Example 2: DBSCAN
// merges close Gaussian clusters that DPC separates, with DBSCAN's
// parameters chosen from OPTICS so that the target cluster count is
// attainable); this package provides exactly that role.
package dbscan

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/kdtree"
)

// Noise is the label of noise points.
const Noise = int32(-1)

// Result is a DBSCAN clustering.
type Result struct {
	// Labels holds cluster ids in [0, NumClusters) or Noise.
	Labels []int32
	// NumClusters is the number of clusters found.
	NumClusters int
	// Core flags core points.
	Core []bool
}

// Run executes DBSCAN with radius eps and density threshold minPts
// (a point is core when at least minPts points, itself included, lie
// within eps — the inclusive convention of the original paper).
func Run(ds *geom.Dataset, eps float64, minPts int) *Result {
	n := ds.N
	res := &Result{Labels: make([]int32, n), Core: make([]bool, n)}
	if n == 0 {
		return res
	}
	tree := kdtree.BuildAll(ds)
	const unvisited = int32(-2)
	for i := range res.Labels {
		res.Labels[i] = unvisited
	}
	// Precompute neighborhoods lazily; DBSCAN touches each at most twice.
	neighborhood := func(i int32) []int32 {
		var out []int32
		// DBSCAN's eps-neighborhood is closed (dist <= eps); our tree
		// search is strict, so query with the next float up.
		tree.RangeSearch(ds.At(int(i)), math.Nextafter(eps, math.Inf(1)), func(id int32, _ float64) {
			out = append(out, id)
		})
		return out
	}

	var cluster int32
	queue := make([]int32, 0, 1024)
	for i := int32(0); i < int32(n); i++ {
		if res.Labels[i] != unvisited {
			continue
		}
		nb := neighborhood(i)
		if len(nb) < minPts {
			res.Labels[i] = Noise
			continue
		}
		// Expand a new cluster from core point i.
		res.Core[i] = true
		res.Labels[i] = cluster
		queue = queue[:0]
		queue = append(queue, nb...)
		for len(queue) > 0 {
			j := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if res.Labels[j] == Noise {
				res.Labels[j] = cluster // border point adopted by the cluster
			}
			if res.Labels[j] != unvisited {
				continue
			}
			res.Labels[j] = cluster
			nbj := neighborhood(j)
			if len(nbj) >= minPts {
				res.Core[j] = true
				queue = append(queue, nbj...)
			}
		}
		cluster++
	}
	res.NumClusters = int(cluster)
	return res
}

// OPTICSPoint is one entry of the OPTICS ordering.
type OPTICSPoint struct {
	ID           int32
	Reachability float64 // +Inf for the first point of each component
	CoreDist     float64 // +Inf for non-core points
}

// OPTICS computes the OPTICS ordering with parameters eps and minPts.
func OPTICS(ds *geom.Dataset, eps float64, minPts int) []OPTICSPoint {
	n := ds.N
	if n == 0 {
		return nil
	}
	tree := kdtree.BuildAll(ds)
	processed := make([]bool, n)
	reach := make([]float64, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	order := make([]OPTICSPoint, 0, n)

	neighborhood := func(i int32) []nbr {
		var out []nbr
		tree.RangeSearch(ds.At(int(i)), math.Nextafter(eps, math.Inf(1)), func(id int32, sq float64) {
			out = append(out, nbr{id: id, d: math.Sqrt(sq)})
		})
		sort.Slice(out, func(a, b int) bool { return out[a].d < out[b].d })
		return out
	}
	coreDist := func(nb []nbr) float64 {
		if len(nb) < minPts {
			return math.Inf(1)
		}
		return nb[minPts-1].d
	}

	// Priority queue of (reachability, id); lazy-deletion heap.
	pq := &reachHeap{}
	for i := int32(0); i < int32(n); i++ {
		if processed[i] {
			continue
		}
		nb := neighborhood(i)
		processed[i] = true
		cd := coreDist(nb)
		order = append(order, OPTICSPoint{ID: i, Reachability: math.Inf(1), CoreDist: cd})
		if !math.IsInf(cd, 1) {
			update(pq, nb, cd, reach, processed)
		}
		for pq.Len() > 0 {
			top := popMin(pq)
			if processed[top] {
				continue
			}
			nbj := neighborhood(top)
			processed[top] = true
			cdj := coreDist(nbj)
			order = append(order, OPTICSPoint{ID: top, Reachability: reach[top], CoreDist: cdj})
			if !math.IsInf(cdj, 1) {
				update(pq, nbj, cdj, reach, processed)
			}
		}
	}
	return order
}

type reachItem struct {
	r  float64
	id int32
}

type reachHeap struct{ items []reachItem }

func (h *reachHeap) Len() int { return len(h.items) }

func pushItem(h *reachHeap, it reachItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].r <= h.items[i].r {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func popMin(h *reachHeap) int32 {
	top := h.items[0].id
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h.items) && h.items[l].r < h.items[small].r {
			small = l
		}
		if r < len(h.items) && h.items[r].r < h.items[small].r {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// nbr is a neighbor with its distance, used by the OPTICS expansion.
type nbr struct {
	id int32
	d  float64
}

func update(pq *reachHeap, nb []nbr, coreDist float64, reach []float64, processed []bool) {
	for _, x := range nb {
		if processed[x.id] {
			continue
		}
		nr := math.Max(coreDist, x.d)
		if nr < reach[x.id] {
			reach[x.id] = nr
			pushItem(pq, reachItem{r: nr, id: x.id}) // lazy decrease-key
		}
	}
}

// ExtractDBSCAN cuts an OPTICS ordering at reachability threshold
// epsPrime, yielding the DBSCAN clustering that threshold induces. The
// paper picks DBSCAN parameters "so that 15 clusters are obtained from
// OPTICS"; this is the extraction that enables that.
func ExtractDBSCAN(order []OPTICSPoint, epsPrime float64) *Result {
	n := len(order)
	res := &Result{Labels: make([]int32, n), Core: make([]bool, n)}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	cluster := int32(-1)
	for _, op := range order {
		if op.Reachability > epsPrime {
			if op.CoreDist <= epsPrime {
				cluster++
				res.Labels[op.ID] = cluster
				res.Core[op.ID] = true
			}
			continue
		}
		if cluster >= 0 {
			res.Labels[op.ID] = cluster
		}
	}
	res.NumClusters = int(cluster + 1)
	return res
}

// ParamsForK searches OPTICS reachability thresholds for one that yields
// exactly k clusters with at least minSize members, returning the
// threshold and ok=false when no candidate threshold works. This mirrors
// the paper's procedure for parameterizing DBSCAN on S2.
func ParamsForK(order []OPTICSPoint, k, minSize int) (float64, bool) {
	// Candidate thresholds: the finite reachability values.
	var cands []float64
	for _, op := range order {
		if !math.IsInf(op.Reachability, 1) {
			cands = append(cands, op.Reachability)
		}
	}
	sort.Float64s(cands)
	for _, eps := range cands {
		res := ExtractDBSCAN(order, eps)
		big := 0
		counts := make(map[int32]int)
		for _, l := range res.Labels {
			if l != Noise {
				counts[l]++
			}
		}
		for _, c := range counts {
			if c >= minSize {
				big++
			}
		}
		if big == k {
			return eps, true
		}
	}
	return 0, false
}
