// Package persist is the durability layer behind dpcd: a versioned,
// checksummed binary codec for dataset and fitted-model snapshots, plus a
// manifest-driven Store (store.go) that writes them with atomic
// write-rename and survives corrupt or truncated files by skipping them.
//
// On-disk container, little-endian:
//
//	magic      uint32  "DPS1"
//	version    uint16  format version (currently 1)
//	kind       uint8   1 = dataset, 2 = model, 3 = density index
//	reserved   uint8
//	payloadLen uint64  must equal the bytes that follow the header
//	crc        uint32  IEEE CRC-32 of the payload
//	payload    ...
//
// Every length declared inside a snapshot — the payload length, string
// lengths, array element counts — is validated against the bytes actually
// present before anything is allocated, the same hostile-header hardening
// LoadBinary applies to uploads. A model snapshot stores the fitted
// Result, the identifying (dataset, version, algorithm, params) key, and
// the training dataset's fingerprint; the kd-tree assignment index is
// deliberately not serialized and is rebuilt on load by core.Restore.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

const (
	snapMagic   = uint32(0x31535044) // "DPS1" on disk
	snapVersion = uint16(1)

	kindDataset = byte(1)
	kindModel   = byte(2)
	kindIndex   = byte(3)
	// kindDataset32 is an f32-precision dataset: same layout as
	// kindDataset but coordinates stored as float32 bit patterns, so a
	// replica installs exactly the bytes (and fingerprint) the primary
	// serves. Readers predating the precision mode reject it by kind
	// byte instead of misreading the coordinates.
	kindDataset32 = byte(4)

	headerSize = 20

	// maxNameLen bounds dataset and algorithm name strings; anything
	// longer is a corrupt length field, not a name.
	maxNameLen = 1 << 12
	// maxSnapshotDim mirrors data.LoadBinary's dimensionality cap.
	maxSnapshotDim = 1 << 20
)

// ModelKey identifies one persisted model: the cache-key tuple of the
// serving layer with Workers zeroed, because thread count is host policy
// and must not pin a snapshot to the machine that wrote it.
type ModelKey struct {
	Dataset   string
	Version   uint64
	Algorithm string
	Params    core.Params
}

// Hash derives the stable 64-bit identity used for snapshot filenames.
// It must never change across releases: the sharding layer assumes a
// shard that inherits a data directory (or re-inherits keys after a ring
// membership change) finds the same filenames the original writer
// produced. Golden values are pinned in store_test.go.
//
// Params fields are written individually, tagged, and only when nonzero
// — never via %v of the whole struct — so a future Params field (zero
// for every already-persisted model) extends the key space without
// remapping a single existing snapshot. The manifest, not the name, is
// authoritative, so a (practically impossible) collision would only
// overwrite a reconstructible snapshot.
func (k ModelKey) Hash() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|", k.Dataset, k.Version, k.Algorithm)
	f := func(tag string, v float64) {
		if v != 0 {
			fmt.Fprintf(h, "%s=%g|", tag, v)
		}
	}
	f("dcut", k.Params.DCut)
	f("rhomin", k.Params.RhoMin)
	f("deltamin", k.Params.DeltaMin)
	f("epsilon", k.Params.Epsilon)
	if k.Params.Seed != 0 {
		fmt.Fprintf(h, "seed=%d|", k.Params.Seed)
	}
	// Workers is zeroed by SaveModel before hashing; it is still written
	// when set so the hash keys the full struct, like every other field.
	if k.Params.Workers != 0 {
		fmt.Fprintf(h, "workers=%d|", k.Params.Workers)
	}
	return h.Sum64()
}

// DatasetSnapshot is the decoded form of one dataset snapshot.
type DatasetSnapshot struct {
	Name    string
	Version uint64
	Points  *geom.Dataset
	// Fingerprint is Points.Fingerprint(), verified during decode and
	// kept so restoring k models on one dataset doesn't recompute the
	// O(n*dim) hash k times.
	Fingerprint uint64
}

// ModelSnapshot is the decoded form of one model snapshot. The Result is
// everything the fit computed; the Model proper is rebuilt against the
// restored dataset with core.Restore.
type ModelSnapshot struct {
	Key ModelKey
	// DatasetFingerprint is geom.Dataset.Fingerprint of the training
	// points, so a model is never rebuilt against different data.
	DatasetFingerprint uint64
	FitTime            time.Duration
	Result             *core.Result
}

// encoder accumulates a little-endian payload.
type encoder struct{ buf []byte }

func (e *encoder) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)  { e.u64(uint64(v)) }
func (e *encoder) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *encoder) f64s(vs []float64) {
	for _, v := range vs {
		e.f64(v)
	}
}

func (e *encoder) f32s(vs []float32) {
	for _, v := range vs {
		e.u32(math.Float32bits(v))
	}
}
func (e *encoder) i32s(vs []int32) {
	for _, v := range vs {
		e.u32(uint32(v))
	}
}

func (e *encoder) i64s(vs []int64) {
	for _, v := range vs {
		e.i64(v)
	}
}

// decoder walks a payload with a sticky error; every read is
// bounds-checked against the bytes remaining, and the element-count
// readers reject counts whose total size exceeds what is present before
// allocating anything.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.fail("persist: truncated payload: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *decoder) u32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64   { return int64(d.u64()) }
func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }
func (d *decoder) str() string {
	n := d.u32()
	if d.err == nil && n > maxNameLen {
		d.fail("persist: string length %d exceeds limit %d", n, maxNameLen)
	}
	return string(d.need(int(n)))
}

func (d *decoder) f32s(n int) []float32 {
	if d.err != nil {
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(d.u32())
	}
	return out
}

func (d *decoder) f64s(n int) []float64 {
	if d.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.f64()
	}
	return out
}

func (d *decoder) i32s(n int) []int32 {
	if d.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	return out
}

func (d *decoder) i64s(n int) []int64 {
	if d.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.i64()
	}
	return out
}

func (d *decoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("persist: %d trailing bytes after payload", len(d.b))
	}
	return nil
}

// encodeSnapshot wraps a payload in the checksummed container.
func encodeSnapshot(kind byte, payload []byte) []byte {
	out := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], snapMagic)
	binary.LittleEndian.PutUint16(out[4:], snapVersion)
	out[6] = kind
	out[7] = 0
	binary.LittleEndian.PutUint64(out[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(payload))
	copy(out[headerSize:], payload)
	return out
}

// decodeHeader validates the container and returns the kind and payload.
// The declared payload length must match the bytes present exactly —
// checked before the payload is touched, so a forged multi-gigabyte
// length costs nothing — and the CRC must match.
func decodeHeader(raw []byte) (kind byte, payload []byte, err error) {
	if len(raw) < headerSize {
		return 0, nil, fmt.Errorf("persist: %d-byte file is shorter than the %d-byte header", len(raw), headerSize)
	}
	if m := binary.LittleEndian.Uint32(raw[0:]); m != snapMagic {
		return 0, nil, fmt.Errorf("persist: bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint16(raw[4:]); v != snapVersion {
		return 0, nil, fmt.Errorf("persist: unsupported format version %d (want %d)", v, snapVersion)
	}
	kind = raw[6]
	if kind != kindDataset && kind != kindModel && kind != kindIndex && kind != kindDataset32 {
		return 0, nil, fmt.Errorf("persist: unknown snapshot kind %d", kind)
	}
	if raw[7] != 0 {
		return 0, nil, fmt.Errorf("persist: nonzero reserved header byte %d", raw[7])
	}
	declared := binary.LittleEndian.Uint64(raw[8:])
	if declared != uint64(len(raw)-headerSize) {
		return 0, nil, fmt.Errorf("persist: declared payload of %d bytes, file holds %d", declared, len(raw)-headerSize)
	}
	payload = raw[headerSize:]
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(raw[16:]); got != want {
		return 0, nil, fmt.Errorf("persist: payload checksum %#x, want %#x", got, want)
	}
	return kind, payload, nil
}

// DecodeSnapshot decodes one snapshot file image into a
// *DatasetSnapshot, *ModelSnapshot, or *IndexSnapshot. It is total:
// corrupt, truncated, or hostile inputs return an error without
// panicking or allocating beyond the input size.
func DecodeSnapshot(raw []byte) (any, error) {
	kind, payload, err := decodeHeader(raw)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindDataset:
		return decodeDataset(payload)
	case kindDataset32:
		return decodeDataset32(payload)
	case kindIndex:
		return decodeIndex(payload)
	}
	return decodeModel(payload)
}

// EncodeDataset produces the canonical snapshot file image for one
// dataset version; DecodeSnapshot inverts it exactly. An f32-precision
// dataset is written as a kind-4 snapshot with float32 coordinates —
// the f64 image is byte-for-byte what it was before precisions existed.
func EncodeDataset(name string, version uint64, ds *geom.Dataset) []byte {
	var e encoder
	e.str(name)
	e.u64(version)
	e.u64(uint64(ds.N))
	e.u32(uint32(ds.Dim))
	e.u64(ds.Fingerprint())
	if ds.Float32() {
		e.f32s(ds.Coords32)
		return encodeSnapshot(kindDataset32, e.buf)
	}
	e.f64s(ds.Coords)
	return encodeSnapshot(kindDataset, e.buf)
}

func decodeDataset(payload []byte) (*DatasetSnapshot, error) {
	d := &decoder{b: payload}
	name := d.str()
	version := d.u64()
	n := d.u64()
	dim := d.u32()
	fp := d.u64()
	if d.err == nil {
		if name == "" {
			d.fail("persist: empty dataset name")
		}
		if n == 0 || dim == 0 {
			d.fail("persist: empty dataset snapshot (n=%d dim=%d)", n, dim)
		}
		if dim > maxSnapshotDim {
			d.fail("persist: implausible dimensionality %d (max %d)", dim, maxSnapshotDim)
		}
		if d.err == nil && n > uint64(len(d.b))/8/uint64(dim) {
			d.fail("persist: declared %dx%d coordinates exceed %d remaining bytes", n, dim, len(d.b))
		}
	}
	coords := d.f64s(int(n) * int(dim))
	if err := d.done(); err != nil {
		return nil, err
	}
	ds := geom.NewDataset(coords, int(dim))
	if got := ds.Fingerprint(); got != fp {
		return nil, fmt.Errorf("persist: dataset fingerprint %#x, snapshot claims %#x", got, fp)
	}
	return &DatasetSnapshot{Name: name, Version: version, Points: ds, Fingerprint: fp}, nil
}

func decodeDataset32(payload []byte) (*DatasetSnapshot, error) {
	d := &decoder{b: payload}
	name := d.str()
	version := d.u64()
	n := d.u64()
	dim := d.u32()
	fp := d.u64()
	if d.err == nil {
		if name == "" {
			d.fail("persist: empty dataset name")
		}
		if n == 0 || dim == 0 {
			d.fail("persist: empty dataset snapshot (n=%d dim=%d)", n, dim)
		}
		if dim > maxSnapshotDim {
			d.fail("persist: implausible dimensionality %d (max %d)", dim, maxSnapshotDim)
		}
		if d.err == nil && n > uint64(len(d.b))/4/uint64(dim) {
			d.fail("persist: declared %dx%d coordinates exceed %d remaining bytes", n, dim, len(d.b))
		}
	}
	coords := d.f32s(int(n) * int(dim))
	if err := d.done(); err != nil {
		return nil, err
	}
	ds := geom.NewDataset32(coords, int(dim))
	if got := ds.Fingerprint(); got != fp {
		return nil, fmt.Errorf("persist: dataset fingerprint %#x, snapshot claims %#x", got, fp)
	}
	return &DatasetSnapshot{Name: name, Version: version, Points: ds, Fingerprint: fp}, nil
}

// EncodeModel produces the canonical snapshot file image for one fitted
// model: its identity key, the fingerprint of the dataset it was fitted
// on, the original fit cost, and the full Result. The kd-tree is not
// serialized; core.Restore rebuilds it on load.
func EncodeModel(k ModelKey, datasetFingerprint uint64, fitTime time.Duration, res *core.Result) []byte {
	var e encoder
	e.str(k.Dataset)
	e.u64(k.Version)
	e.u64(datasetFingerprint)
	e.str(k.Algorithm)
	e.f64(k.Params.DCut)
	e.f64(k.Params.RhoMin)
	e.f64(k.Params.DeltaMin)
	e.f64(k.Params.Epsilon)
	e.i64(k.Params.Seed)
	e.i64(int64(fitTime))
	e.i64(int64(res.Timing.Build))
	e.i64(int64(res.Timing.Rho))
	e.i64(int64(res.Timing.Delta))
	e.i64(int64(res.Timing.Label))
	e.u64(uint64(len(res.Rho)))
	e.u64(uint64(len(res.Centers)))
	e.f64s(res.Rho)
	e.f64s(res.Delta)
	e.i32s(res.Dep)
	e.i32s(res.Labels)
	e.i32s(res.Centers)
	return encodeSnapshot(kindModel, e.buf)
}

func decodeModel(payload []byte) (*ModelSnapshot, error) {
	d := &decoder{b: payload}
	snap := &ModelSnapshot{}
	snap.Key.Dataset = d.str()
	snap.Key.Version = d.u64()
	snap.DatasetFingerprint = d.u64()
	snap.Key.Algorithm = d.str()
	snap.Key.Params.DCut = d.f64()
	snap.Key.Params.RhoMin = d.f64()
	snap.Key.Params.DeltaMin = d.f64()
	snap.Key.Params.Epsilon = d.f64()
	snap.Key.Params.Seed = d.i64()
	snap.FitTime = time.Duration(d.i64())
	res := &core.Result{}
	res.Timing.Build = time.Duration(d.i64())
	res.Timing.Rho = time.Duration(d.i64())
	res.Timing.Delta = time.Duration(d.i64())
	res.Timing.Label = time.Duration(d.i64())
	n := d.u64()
	nc := d.u64()
	// Each point costs 8+8+4+4 bytes (rho, delta, dep, label) plus 4 per
	// center; reject the declared counts against the bytes present before
	// allocating any of the five arrays.
	if d.err == nil && n > uint64(len(d.b))/24 {
		d.fail("persist: declared %d points exceed %d remaining bytes", n, len(d.b))
	}
	if d.err == nil && (nc > n || nc > uint64(len(d.b))/4) {
		d.fail("persist: declared %d centers for %d points in %d bytes", nc, n, len(d.b))
	}
	res.Rho = d.f64s(int(n))
	res.Delta = d.f64s(int(n))
	res.Dep = d.i32s(int(n))
	res.Labels = d.i32s(int(n))
	res.Centers = d.i32s(int(nc))
	if err := d.done(); err != nil {
		return nil, err
	}
	if snap.Key.Dataset == "" || snap.Key.Algorithm == "" {
		return nil, fmt.Errorf("persist: model snapshot with empty dataset or algorithm name")
	}
	snap.Result = res
	return snap, nil
}
