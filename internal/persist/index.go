package persist

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// IndexSnapshot is the decoded form of one density-index snapshot: the
// CSR neighbor lists of internal/densindex, tied to the exact dataset
// version (and fingerprint) they were built from. The index structure
// itself is rebuilt by densindex.FromParts, which re-validates the CSR
// invariants — the codec below only guarantees the arrays are framed
// and sized honestly.
type IndexSnapshot struct {
	Dataset string
	Version uint64
	// DatasetFingerprint is geom.Dataset.Fingerprint of the indexed
	// points, so an index is never attached to different data.
	DatasetFingerprint uint64
	DCutMax            float64
	Start              []int64
	IDs                []int32
	Sq                 []float64
}

// EncodeIndex produces the canonical snapshot file image for one
// density index; DecodeSnapshot inverts it exactly.
func EncodeIndex(snap *IndexSnapshot) []byte {
	var e encoder
	e.str(snap.Dataset)
	e.u64(snap.Version)
	e.u64(snap.DatasetFingerprint)
	e.f64(snap.DCutMax)
	e.u64(uint64(len(snap.Start)))
	e.u64(uint64(len(snap.IDs)))
	e.i64s(snap.Start)
	e.i32s(snap.IDs)
	e.f64s(snap.Sq)
	return encodeSnapshot(kindIndex, e.buf)
}

func decodeIndex(payload []byte) (*IndexSnapshot, error) {
	d := &decoder{b: payload}
	snap := &IndexSnapshot{}
	snap.Dataset = d.str()
	snap.Version = d.u64()
	snap.DatasetFingerprint = d.u64()
	snap.DCutMax = d.f64()
	rows := d.u64()
	edges := d.u64()
	// Row offsets cost 8 bytes each, edges 4+8 (id + squared distance);
	// reject the declared counts against the bytes present before
	// allocating any of the three arrays.
	if d.err == nil && rows > uint64(len(d.b))/8 {
		d.fail("persist: declared %d row offsets exceed %d remaining bytes", rows, len(d.b))
	}
	if d.err == nil && edges > (uint64(len(d.b))-8*rows)/12 {
		d.fail("persist: declared %d index entries exceed %d remaining bytes", edges, len(d.b))
	}
	snap.Start = d.i64s(int(rows))
	snap.IDs = d.i32s(int(edges))
	snap.Sq = d.f64s(int(edges))
	if err := d.done(); err != nil {
		return nil, err
	}
	if snap.Dataset == "" {
		return nil, fmt.Errorf("persist: index snapshot with empty dataset name")
	}
	if rows < 2 {
		return nil, fmt.Errorf("persist: index snapshot with %d row offsets (need >= 2)", rows)
	}
	if !(snap.DCutMax > 0) || math.IsInf(snap.DCutMax, 1) {
		return nil, fmt.Errorf("persist: index snapshot with dcut ceiling %g", snap.DCutMax)
	}
	return snap, nil
}

// manifestIndex is the manifest entry of a density-index snapshot. The
// list rides in an omitempty field, so manifests written by this
// version remain readable (minus the indexes) by older code — JSON
// unmarshaling ignores unknown fields — and the manifest format number
// is unchanged.
type manifestIndex struct {
	Dataset string  `json:"dataset"`
	Version uint64  `json:"version"`
	DCutMax float64 `json:"dcut_max"`
	File    string  `json:"file"`
}

// SaveIndex snapshots one dataset's density index, replacing any
// previous index snapshot for the name (one index per dataset — a
// rebuild at a larger ceiling supersedes the smaller one). Like
// SaveModel it refuses to persist against a dataset version the
// manifest does not hold, and skips saves for already-replaced
// versions.
func (s *Store) SaveIndex(snap *IndexSnapshot) error {
	if len(snap.Dataset) > maxNameLen {
		return fmt.Errorf("persist: dataset name of %d bytes exceeds the %d-byte snapshot limit", len(snap.Dataset), maxNameLen)
	}
	rel := filepath.Join("indexes", fmt.Sprintf("%016x-v%d.snap", hashString(snap.Dataset), snap.Version))
	raw := EncodeIndex(snap)

	s.mu.Lock()
	defer s.mu.Unlock()
	found := false
	for _, e := range s.m.Datasets {
		if e.Name != snap.Dataset {
			continue
		}
		if e.Version > snap.Version {
			return nil // built on a replaced version; don't persist
		}
		found = e.Version == snap.Version
		break
	}
	if !found {
		return fmt.Errorf("persist: no dataset snapshot for %s v%d; index not persisted", snap.Dataset, snap.Version)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, rel), raw); err != nil {
		return err
	}
	var remove []string
	kept := s.m.Indexes[:0]
	for _, e := range s.m.Indexes {
		if e.Dataset == snap.Dataset {
			if e.File != rel {
				remove = append(remove, e.File)
			}
			continue
		}
		kept = append(kept, e)
	}
	s.m.Indexes = append(kept, manifestIndex{
		Dataset: snap.Dataset, Version: snap.Version, DCutMax: snap.DCutMax, File: rel,
	})
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	for _, rel := range remove {
		if err := os.Remove(filepath.Join(s.dir, rel)); err != nil && !os.IsNotExist(err) {
			s.logf("persist: removing stale snapshot %s: %v", rel, err)
		}
	}
	return nil
}

// RestoreIndexesOwned loads every index snapshot whose dataset the owns
// filter accepts (nil accepts everything). Damage is logged and skipped
// — a lost index costs one rebuild on the next decision-graph or sweep
// request, never a failed startup. Callers must still pair each
// snapshot with its restored dataset (matching version and fingerprint)
// before rebuilding the index structure.
func (s *Store) RestoreIndexesOwned(owns func(dataset string) bool) []*IndexSnapshot {
	s.mu.Lock()
	entries := append([]manifestIndex(nil), s.m.Indexes...)
	s.mu.Unlock()

	var out []*IndexSnapshot
	for _, e := range entries {
		if owns != nil && !owns(e.Dataset) {
			continue
		}
		v, err := s.readSnapshot(e.File, kindIndex)
		if err != nil {
			s.logf("persist: skipping index %s: %v", e.Dataset, err)
			continue
		}
		snap := v.(*IndexSnapshot)
		if snap.Dataset != e.Dataset || snap.Version != e.Version {
			s.logf("persist: skipping index %s: file holds %q v%d, manifest expects v%d",
				e.Dataset, snap.Dataset, snap.Version, e.Version)
			continue
		}
		out = append(out, snap)
	}
	return out
}
