package persist

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzDecodeSnapshot guards the snapshot restore path the same way
// FuzzLoadCSV/FuzzLoadBinary guard uploads: arbitrary file images must
// decode or error, never panic or allocate past the input size, and an
// accepted snapshot must be internally consistent and re-encode to the
// exact bytes it was decoded from (the codec is canonical).
// FuzzDecodeIndexSnapshot targets the kind-3 (density index) snapshot
// codec specifically: the CSR arrays carry three independently sized
// slabs whose declared counts must be validated against the bytes
// present before allocation, and an accepted image must re-encode
// canonically. Structural CSR invariants (monotone offsets, sorted
// rows) are *not* the codec's job — densindex.FromParts enforces those
// on restore — so this fuzz only checks framing-level consistency.
func FuzzDecodeIndexSnapshot(f *testing.F) {
	good := EncodeIndex(&IndexSnapshot{
		Dataset:            "s2",
		Version:            3,
		DatasetFingerprint: 0xfeedface,
		DCutMax:            2500,
		Start:              []int64{0, 2, 3, 3},
		IDs:                []int32{1, 2, 0},
		Sq:                 []float64{1.5, 4.25, 1.5},
	})
	empty := EncodeIndex(&IndexSnapshot{Dataset: "e", Version: 1, DCutMax: 1,
		Start: []int64{0}, IDs: nil, Sq: nil})

	f.Add(good)
	f.Add(empty)
	f.Add(good[:len(good)-8]) // truncated edge slab
	f.Add(good[:headerSize])  // header only
	hugeCounts := append([]byte(nil), good...)
	for i := 0; i < 8; i++ { // declared row count far beyond the payload
		hugeCounts[headerSize+4+len("s2")+24+i] = 0xff
	}
	f.Add(hugeCounts)
	crc := append([]byte(nil), good...)
	crc[len(crc)-1] ^= 0x01
	f.Add(crc)

	f.Fuzz(func(t *testing.T, raw []byte) {
		v, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		snap, ok := v.(*IndexSnapshot)
		if !ok {
			return // a non-index snapshot kind; FuzzDecodeSnapshot covers those
		}
		if len(snap.IDs) != len(snap.Sq) {
			t.Fatalf("ragged CSR slabs: %d ids, %d distances", len(snap.IDs), len(snap.Sq))
		}
		if len(snap.Start) == 0 {
			t.Fatal("accepted index snapshot with no row offsets")
		}
		if !bytes.Equal(EncodeIndex(snap), raw) {
			t.Fatal("accepted index snapshot did not re-encode canonically")
		}
	})
}

func FuzzDecodeSnapshot(f *testing.F) {
	ds := geom.MustFromRows([][]float64{{1, 2}, {3, 4}, {5.5, -6.5}})
	res := &core.Result{
		Rho:     []float64{3.1, 2.2, 1.3},
		Delta:   []float64{math.Inf(1), 0.5, 0.25},
		Dep:     []int32{-1, 0, 0},
		Labels:  []int32{0, 0, -1},
		Centers: []int32{0},
	}
	key := ModelKey{Dataset: "s2", Version: 2, Algorithm: "Ex-DPC",
		Params: core.Params{DCut: 0.5, RhoMin: 1, DeltaMin: 2, Seed: 7}}
	goodDS := EncodeDataset("s2", 2, ds)
	goodModel := EncodeModel(key, ds.Fingerprint(), time.Millisecond, res)

	f.Add(goodDS)
	f.Add(goodModel)
	f.Add(goodDS[:len(goodDS)-4])                               // truncated payload
	f.Add(goodDS[:headerSize])                                  // header only
	f.Add(append([]byte(nil), goodModel[:len(goodModel)-1]...)) // short one byte
	corrupt := append([]byte(nil), goodModel...)
	corrupt[headerSize+8] ^= 0x80
	f.Add(corrupt) // CRC mismatch
	f.Add([]byte("DPS1 but not really a snapshot file"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		v, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		switch snap := v.(type) {
		case *DatasetSnapshot:
			p := snap.Points
			if p.N*p.Dim != len(p.Coords) || p.N == 0 || p.Dim == 0 {
				t.Fatalf("inconsistent dataset: N=%d Dim=%d coords=%d", p.N, p.Dim, len(p.Coords))
			}
			re := EncodeDataset(snap.Name, snap.Version, p)
			if !bytes.Equal(re, raw) {
				t.Fatal("accepted dataset snapshot did not re-encode canonically")
			}
		case *ModelSnapshot:
			r := snap.Result
			n := len(r.Rho)
			if len(r.Delta) != n || len(r.Dep) != n || len(r.Labels) != n {
				t.Fatalf("ragged result arrays: %d/%d/%d/%d", n, len(r.Delta), len(r.Dep), len(r.Labels))
			}
			if len(r.Centers) > n {
				t.Fatalf("%d centers for %d points", len(r.Centers), n)
			}
			re := EncodeModel(snap.Key, snap.DatasetFingerprint, snap.FitTime, r)
			if !bytes.Equal(re, raw) {
				t.Fatal("accepted model snapshot did not re-encode canonically")
			}
		default:
			t.Fatalf("DecodeSnapshot returned %T", v)
		}
	})
}
