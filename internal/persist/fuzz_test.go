package persist

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

// FuzzDecodeSnapshot guards the snapshot restore path the same way
// FuzzLoadCSV/FuzzLoadBinary guard uploads: arbitrary file images must
// decode or error, never panic or allocate past the input size, and an
// accepted snapshot must be internally consistent and re-encode to the
// exact bytes it was decoded from (the codec is canonical).
func FuzzDecodeSnapshot(f *testing.F) {
	ds := geom.MustFromRows([][]float64{{1, 2}, {3, 4}, {5.5, -6.5}})
	res := &core.Result{
		Rho:     []float64{3.1, 2.2, 1.3},
		Delta:   []float64{math.Inf(1), 0.5, 0.25},
		Dep:     []int32{-1, 0, 0},
		Labels:  []int32{0, 0, -1},
		Centers: []int32{0},
	}
	key := ModelKey{Dataset: "s2", Version: 2, Algorithm: "Ex-DPC",
		Params: core.Params{DCut: 0.5, RhoMin: 1, DeltaMin: 2, Seed: 7}}
	goodDS := EncodeDataset("s2", 2, ds)
	goodModel := EncodeModel(key, ds.Fingerprint(), time.Millisecond, res)

	f.Add(goodDS)
	f.Add(goodModel)
	f.Add(goodDS[:len(goodDS)-4])                               // truncated payload
	f.Add(goodDS[:headerSize])                                  // header only
	f.Add(append([]byte(nil), goodModel[:len(goodModel)-1]...)) // short one byte
	corrupt := append([]byte(nil), goodModel...)
	corrupt[headerSize+8] ^= 0x80
	f.Add(corrupt) // CRC mismatch
	f.Add([]byte("DPS1 but not really a snapshot file"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		v, err := DecodeSnapshot(raw)
		if err != nil {
			return
		}
		switch snap := v.(type) {
		case *DatasetSnapshot:
			p := snap.Points
			if p.N*p.Dim != len(p.Coords) || p.N == 0 || p.Dim == 0 {
				t.Fatalf("inconsistent dataset: N=%d Dim=%d coords=%d", p.N, p.Dim, len(p.Coords))
			}
			re := EncodeDataset(snap.Name, snap.Version, p)
			if !bytes.Equal(re, raw) {
				t.Fatal("accepted dataset snapshot did not re-encode canonically")
			}
		case *ModelSnapshot:
			r := snap.Result
			n := len(r.Rho)
			if len(r.Delta) != n || len(r.Dep) != n || len(r.Labels) != n {
				t.Fatalf("ragged result arrays: %d/%d/%d/%d", n, len(r.Delta), len(r.Dep), len(r.Labels))
			}
			if len(r.Centers) > n {
				t.Fatalf("%d centers for %d points", len(r.Centers), n)
			}
			re := EncodeModel(snap.Key, snap.DatasetFingerprint, snap.FitTime, r)
			if !bytes.Equal(re, raw) {
				t.Fatal("accepted model snapshot did not re-encode canonically")
			}
		default:
			t.Fatalf("DecodeSnapshot returned %T", v)
		}
	})
}
