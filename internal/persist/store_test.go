package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// capture collects store log lines so tests can assert recovery was
// reported, not silent.
type capture struct{ lines []string }

func (c *capture) logf(format string, args ...any) {
	c.lines = append(c.lines, fmt.Sprintf(format, args...))
}

func (c *capture) contains(sub string) bool {
	for _, l := range c.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func fitModel(t *testing.T, ds *geom.Dataset, algorithm string, p core.Params) *core.Model {
	t.Helper()
	alg, ok := core.AlgorithmByName(algorithm)
	if !ok {
		t.Fatalf("unknown algorithm %s", algorithm)
	}
	m, err := core.Fit(alg, ds, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	logs := &capture{}
	st, err := Open(dir, logs.logf)
	if err != nil {
		t.Fatal(err)
	}
	d := data.SSet(2, 400, 1)
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 2}
	m := fitModel(t, d.Points, "Ex-DPC", p)

	if err := st.SaveDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	key := ModelKey{Dataset: "s2", Version: 1, Algorithm: "Ex-DPC", Params: p}
	if err := st.SaveModel(key, m); err != nil {
		t.Fatal(err)
	}

	// A brand-new store over the same directory must restore both.
	st2, err := Open(dir, logs.logf)
	if err != nil {
		t.Fatal(err)
	}
	dss, models := st2.Restore(4)
	if len(dss) != 1 || len(models) != 1 {
		t.Fatalf("restored %d datasets, %d models; want 1/1 (logs: %v)", len(dss), len(models), logs.lines)
	}
	if dss[0].Name != "s2" || dss[0].Version != 1 || dss[0].Points.Fingerprint() != d.Points.Fingerprint() {
		t.Errorf("dataset identity drifted: %q v%d", dss[0].Name, dss[0].Version)
	}
	rm := models[0]
	if rm.Key.Params.Workers != 0 {
		t.Errorf("persisted key retains Workers=%d", rm.Key.Params.Workers)
	}
	if rm.Model.Params().Workers != 4 {
		t.Errorf("restored model Workers = %d, want the value passed to Restore", rm.Model.Params().Workers)
	}
	// Restored assignments must be byte-identical to the original's.
	queries := d.Points.Rows()[:64]
	want, err := m.AssignAll(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rm.Model.AssignAll(queries, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored assign %d = %d, want %d", i, got[i], want[i])
		}
	}
	if rm.Model.FitTime() != m.FitTime() {
		t.Errorf("fit time not preserved: %v != %v", rm.Model.FitTime(), m.FitTime())
	}
}

func TestStoreReplaceDatasetPrunesOldVersion(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, (&capture{}).logf)
	if err != nil {
		t.Fatal(err)
	}
	d1 := data.SSet(2, 300, 1)
	d2 := data.SSet(2, 350, 2)
	p := core.Params{DCut: d1.DCut, RhoMin: d1.RhoMin, DeltaMin: d1.DeltaMin, Workers: 1}
	if err := st.SaveDataset("s2", 1, d1.Points); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveModel(ModelKey{Dataset: "s2", Version: 1, Algorithm: "Ex-DPC", Params: p},
		fitModel(t, d1.Points, "Ex-DPC", p)); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveDataset("s2", 2, d2.Points); err != nil {
		t.Fatal(err)
	}

	dss, models := st.Restore(1)
	if len(dss) != 1 || dss[0].Version != 2 {
		t.Fatalf("restore after replace: %d datasets (v%d)", len(dss), dss[0].Version)
	}
	if len(models) != 0 {
		t.Fatalf("model fitted on replaced version survived: %+v", models[0].Key)
	}
	// A stale save arriving late (the upload race) must be a no-op.
	if err := st.SaveDataset("s2", 1, d1.Points); err != nil {
		t.Fatal(err)
	}
	if dss, _ := st.Restore(1); dss[0].Version != 2 {
		t.Errorf("stale version-1 save replaced version 2")
	}
	// Only the live snapshots remain on disk.
	files, err := filepath.Glob(filepath.Join(dir, "*", "*.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Errorf("%d snapshot files on disk, want 1: %v", len(files), files)
	}
}

// TestStoreRecovery damages snapshots in every way the recovery contract
// names — truncation, bit rot, deletion, a corrupt manifest — and checks
// each costs exactly its own entry, with a log line, never a crash.
func TestStoreRecovery(t *testing.T) {
	build := func(t *testing.T) (string, *data.Dataset, core.Params) {
		dir := t.TempDir()
		st, err := Open(dir, (&capture{}).logf)
		if err != nil {
			t.Fatal(err)
		}
		d := data.SSet(2, 300, 1)
		p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 1}
		if err := st.SaveDataset("s2", 1, d.Points); err != nil {
			t.Fatal(err)
		}
		for _, alg := range []string{"Ex-DPC", "Approx-DPC"} {
			if err := st.SaveModel(ModelKey{Dataset: "s2", Version: 1, Algorithm: alg, Params: p},
				fitModel(t, d.Points, alg, p)); err != nil {
				t.Fatal(err)
			}
		}
		return dir, d, p
	}
	one := func(t *testing.T, glob string, damage func(t *testing.T, path string)) (ds, models int, logs *capture) {
		dir, _, _ := build(t)
		paths, err := filepath.Glob(filepath.Join(dir, glob))
		if err != nil || len(paths) == 0 {
			t.Fatalf("glob %s: %v (%d hits)", glob, err, len(paths))
		}
		damage(t, paths[0])
		logs = &capture{}
		st, err := Open(dir, logs.logf)
		if err != nil {
			t.Fatal(err)
		}
		d, m := st.Restore(1)
		return len(d), len(m), logs
	}
	truncate := func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip := func(t *testing.T, path string) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	remove := func(t *testing.T, path string) {
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("truncated model", func(t *testing.T) {
		ds, models, logs := one(t, "models/*.snap", truncate)
		if ds != 1 || models != 1 {
			t.Errorf("restored %d/%d, want 1 dataset and the surviving model", ds, models)
		}
		if !logs.contains("skipping model") {
			t.Errorf("silent recovery: %v", logs.lines)
		}
	})
	t.Run("bit-rotted model", func(t *testing.T) {
		if ds, models, _ := one(t, "models/*.snap", flip); ds != 1 || models != 1 {
			t.Errorf("restored %d/%d, want 1/1", ds, models)
		}
	})
	t.Run("deleted model file", func(t *testing.T) {
		if ds, models, _ := one(t, "models/*.snap", remove); ds != 1 || models != 1 {
			t.Errorf("restored %d/%d, want 1/1", ds, models)
		}
	})
	t.Run("corrupt dataset drops its models too", func(t *testing.T) {
		ds, models, logs := one(t, "datasets/*.snap", flip)
		if ds != 0 || models != 0 {
			t.Errorf("restored %d/%d from a corrupt dataset, want 0/0", ds, models)
		}
		if !logs.contains("skipping dataset") || !logs.contains("skipping model") {
			t.Errorf("recovery not logged: %v", logs.lines)
		}
	})
	t.Run("corrupt manifest starts empty", func(t *testing.T) {
		ds, models, logs := one(t, "manifest.json", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if ds != 0 || models != 0 {
			t.Errorf("restored %d/%d from corrupt manifest", ds, models)
		}
		if !logs.contains("corrupt manifest") {
			t.Errorf("corrupt manifest not logged: %v", logs.lines)
		}
	})
	t.Run("swapped model file is rejected", func(t *testing.T) {
		dir, _, _ := build(t)
		paths, err := filepath.Glob(filepath.Join(dir, "models", "*.snap"))
		if err != nil || len(paths) != 2 {
			t.Fatalf("want 2 model files, got %d (%v)", len(paths), err)
		}
		// Swap the two files: each now holds the other's key, which must
		// fail the manifest cross-check.
		a, err := os.ReadFile(paths[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(paths[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(paths[0], b, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(paths[1], a, 0o644); err != nil {
			t.Fatal(err)
		}
		logs := &capture{}
		st, err := Open(dir, logs.logf)
		if err != nil {
			t.Fatal(err)
		}
		if _, models := st.Restore(1); len(models) != 0 {
			t.Errorf("swapped snapshots restored: %d models", len(models))
		}
	})
}

func TestOpenCreatesLayout(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "data")
	st, err := Open(dir, (&capture{}).logf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dir() != dir {
		t.Errorf("Dir() = %q", st.Dir())
	}
	for _, sub := range []string{"datasets", "models"} {
		if fi, err := os.Stat(filepath.Join(dir, sub)); err != nil || !fi.IsDir() {
			t.Errorf("missing %s/: %v", sub, err)
		}
	}
	if ds, models := st.Restore(1); len(ds) != 0 || len(models) != 0 {
		t.Errorf("fresh store restored %d/%d", len(ds), len(models))
	}
}

// TestSaveModelRequiresDatasetSnapshot: a model whose dataset snapshot
// never landed (failed save) could never restore, so SaveModel must
// refuse it rather than write dead weight that silently refits later.
func TestSaveModelRequiresDatasetSnapshot(t *testing.T) {
	st, err := Open(t.TempDir(), (&capture{}).logf)
	if err != nil {
		t.Fatal(err)
	}
	d := data.SSet(2, 300, 1)
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 1}
	m := fitModel(t, d.Points, "Ex-DPC", p)
	key := ModelKey{Dataset: "s2", Version: 1, Algorithm: "Ex-DPC", Params: p}
	if err := st.SaveModel(key, m); err == nil {
		t.Fatal("model persisted without its dataset snapshot")
	}
	if files, _ := filepath.Glob(filepath.Join(st.Dir(), "models", "*.snap")); len(files) != 0 {
		t.Errorf("orphan model file written: %v", files)
	}
	// Once the dataset snapshot exists the same save succeeds.
	if err := st.SaveDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveModel(key, m); err != nil {
		t.Fatal(err)
	}
}

// TestEnsureDatasetHeals: EnsureDataset is a no-op over a healthy
// snapshot and a rewrite over a damaged or missing one.
func TestEnsureDatasetHeals(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, (&capture{}).logf)
	if err != nil {
		t.Fatal(err)
	}
	d := data.SSet(2, 300, 1)
	if err := st.SaveDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "datasets", "*.snap"))
	if len(paths) != 1 {
		t.Fatal("want one dataset snapshot")
	}
	before, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) {
		t.Error("EnsureDataset rewrote a healthy snapshot")
	}
	if err := os.Truncate(paths[0], 4); err != nil {
		t.Fatal(err)
	}
	if err := st.EnsureDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	if dss, _ := st.Restore(1); len(dss) != 1 {
		t.Error("EnsureDataset did not heal the damaged snapshot")
	}
}

// TestSaveModelKeepsRecencyOrder: re-persisting an existing key (refit
// after eviction) must move it to the manifest tail, because the warm
// load trims to cache capacity from the tail.
func TestSaveModelKeepsRecencyOrder(t *testing.T) {
	st, err := Open(t.TempDir(), (&capture{}).logf)
	if err != nil {
		t.Fatal(err)
	}
	d := data.SSet(2, 300, 1)
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 1}
	if err := st.SaveDataset("s2", 1, d.Points); err != nil {
		t.Fatal(err)
	}
	algs := []string{"Scan", "Ex-DPC", "Approx-DPC"}
	for _, alg := range algs {
		if err := st.SaveModel(ModelKey{Dataset: "s2", Version: 1, Algorithm: alg, Params: p},
			fitModel(t, d.Points, alg, p)); err != nil {
			t.Fatal(err)
		}
	}
	// Refit + re-persist the oldest key; it must become the most recent.
	if err := st.SaveModel(ModelKey{Dataset: "s2", Version: 1, Algorithm: "Scan", Params: p},
		fitModel(t, d.Points, "Scan", p)); err != nil {
		t.Fatal(err)
	}
	_, models := st.Restore(1)
	if len(models) != 3 {
		t.Fatalf("restored %d models", len(models))
	}
	want := []string{"Ex-DPC", "Approx-DPC", "Scan"}
	for i, rm := range models {
		if rm.Key.Algorithm != want[i] {
			t.Errorf("restore order[%d] = %s, want %s", i, rm.Key.Algorithm, want[i])
		}
	}
}

// TestModelKeyHashGolden pins ModelKey.Hash across releases. The sharding
// layer assumes a shard that inherits keys after a ring membership change
// computes the same snapshot filenames the original writer produced; a
// changed hash would orphan every model snapshot on disk.
func TestModelKeyHashGolden(t *testing.T) {
	cases := []struct {
		key  ModelKey
		want uint64
	}{
		{ModelKey{Dataset: "s2", Version: 1, Algorithm: "Ex-DPC",
			Params: core.Params{DCut: 0.05, RhoMin: 25, DeltaMin: 0.2}}, 0x04d2b7514748d56a},
		{ModelKey{Dataset: "pamap2", Version: 3, Algorithm: "Approx-DPC",
			Params: core.Params{DCut: 1.5, RhoMin: 10, DeltaMin: 6, Seed: 42}}, 0x251d4395288ae768},
		{ModelKey{Dataset: "syn", Version: 2, Algorithm: "S-Approx-DPC",
			Params: core.Params{DCut: 0.1, RhoMin: 5, DeltaMin: 0.5, Epsilon: 0.75}}, 0x82d9a601210ba165},
		{ModelKey{Dataset: "household", Version: 7, Algorithm: "Scan",
			Params: core.Params{DCut: 2, RhoMin: 1, DeltaMin: 9}}, 0xbc05d9fca259b00e},
	}
	for _, c := range cases {
		if got := c.key.Hash(); got != c.want {
			t.Errorf("ModelKey.Hash(%s/%s v%d) = %#016x, want %#016x — the hash must be stable across restarts",
				c.key.Dataset, c.key.Algorithm, c.key.Version, got, c.want)
		}
	}
	// Workers must already be zeroed by callers; the hash treats it as
	// identity like every other Params field, so two keys differing only
	// in Workers are different keys.
	k := cases[0].key
	k.Params.Workers = 8
	if k.Hash() == cases[0].want {
		t.Error("ModelKey.Hash ignored Params.Workers; SaveModel zeroes it, the hash must not")
	}
}

// TestRestoreOwned: the filter restores exactly the accepted datasets and
// their models, leaves everything else on disk untouched, and a later
// unfiltered restore still sees the full store — the "evict, don't
// delete" contract of ring rebalancing.
func TestRestoreOwned(t *testing.T) {
	logs := &capture{}
	st, err := Open(t.TempDir(), logs.logf)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"alpha", "beta", "gamma"}
	p := core.Params{DCut: 0.06, RhoMin: 3, DeltaMin: 0.3, Workers: 1}
	for i, name := range names {
		d := data.SSet(2, 300, int64(i+1))
		if err := st.SaveDataset(name, 1, d.Points); err != nil {
			t.Fatal(err)
		}
		if err := st.SaveModel(ModelKey{Dataset: name, Version: 1, Algorithm: "Ex-DPC", Params: p},
			fitModel(t, d.Points, "Ex-DPC", p)); err != nil {
			t.Fatal(err)
		}
	}
	owned := map[string]bool{"alpha": true, "gamma": true}
	dss, models := st.RestoreOwned(1, func(name string) bool { return owned[name] })
	if len(dss) != 2 || len(models) != 2 {
		t.Fatalf("RestoreOwned loaded %d datasets / %d models, want 2/2", len(dss), len(models))
	}
	for _, d := range dss {
		if !owned[d.Name] {
			t.Errorf("RestoreOwned loaded unowned dataset %q", d.Name)
		}
	}
	for _, m := range models {
		if !owned[m.Key.Dataset] {
			t.Errorf("RestoreOwned loaded model for unowned dataset %q", m.Key.Dataset)
		}
	}
	if logs.contains("skipping") {
		t.Errorf("filtered snapshots were logged as damage: %v", logs.lines)
	}
	// Nothing was deleted: a full restore still sees all three.
	dss, models = st.Restore(1)
	if len(dss) != 3 || len(models) != 3 {
		t.Fatalf("full Restore after RestoreOwned got %d datasets / %d models, want 3/3", len(dss), len(models))
	}
}
