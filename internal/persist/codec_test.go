package persist

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
)

func testDataset(t *testing.T) *geom.Dataset {
	t.Helper()
	return geom.MustFromRows([][]float64{{1, 2}, {3, 4}, {-5e300, 6.25}, {0, -0}})
}

func testResult(n int) *core.Result {
	res := &core.Result{
		Rho:     make([]float64, n),
		Delta:   make([]float64, n),
		Dep:     make([]int32, n),
		Labels:  make([]int32, n),
		Centers: []int32{0},
	}
	for i := 0; i < n; i++ {
		res.Rho[i] = float64(i) + 0.5
		res.Delta[i] = float64(n - i)
		res.Dep[i] = int32(i) - 1 // first point gets NoDependent
		res.Labels[i] = 0
	}
	res.Delta[0] = math.Inf(1)
	res.Timing.Build = 1 * time.Millisecond
	res.Timing.Rho = 2 * time.Millisecond
	res.Timing.Delta = 3 * time.Millisecond
	res.Timing.Label = 4 * time.Millisecond
	return res
}

func TestDatasetSnapshotRoundTrip(t *testing.T) {
	ds := testDataset(t)
	raw := EncodeDataset("s2 set", 7, ds)
	v, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := v.(*DatasetSnapshot)
	if !ok {
		t.Fatalf("decoded %T, want *DatasetSnapshot", v)
	}
	if snap.Name != "s2 set" || snap.Version != 7 {
		t.Errorf("identity = %q v%d", snap.Name, snap.Version)
	}
	if snap.Points.N != ds.N || snap.Points.Dim != ds.Dim {
		t.Fatalf("shape = (%d,%d), want (%d,%d)", snap.Points.N, snap.Points.Dim, ds.N, ds.Dim)
	}
	for i, x := range ds.Coords {
		if math.Float64bits(snap.Points.Coords[i]) != math.Float64bits(x) {
			t.Fatalf("coord %d changed bits: %v -> %v", i, x, snap.Points.Coords[i])
		}
	}
	if snap.Points.Fingerprint() != ds.Fingerprint() {
		t.Error("fingerprint changed across round trip")
	}
}

func TestModelSnapshotRoundTrip(t *testing.T) {
	ds := testDataset(t)
	res := testResult(ds.N)
	key := ModelKey{
		Dataset: "s2", Version: 3, Algorithm: "Ex-DPC",
		Params: core.Params{DCut: 0.5, RhoMin: 1, DeltaMin: 2, Seed: 9},
	}
	raw := EncodeModel(key, ds.Fingerprint(), 123*time.Millisecond, res)
	v, err := DecodeSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := v.(*ModelSnapshot)
	if !ok {
		t.Fatalf("decoded %T, want *ModelSnapshot", v)
	}
	if snap.Key != key {
		t.Errorf("key = %+v, want %+v", snap.Key, key)
	}
	if snap.DatasetFingerprint != ds.Fingerprint() || snap.FitTime != 123*time.Millisecond {
		t.Errorf("fingerprint/fitTime = %#x/%v", snap.DatasetFingerprint, snap.FitTime)
	}
	got := snap.Result
	if got.Timing != res.Timing {
		t.Errorf("timing = %+v, want %+v", got.Timing, res.Timing)
	}
	if len(got.Rho) != ds.N || len(got.Centers) != 1 {
		t.Fatalf("array lengths %d/%d", len(got.Rho), len(got.Centers))
	}
	for i := range res.Rho {
		if math.Float64bits(got.Rho[i]) != math.Float64bits(res.Rho[i]) ||
			math.Float64bits(got.Delta[i]) != math.Float64bits(res.Delta[i]) ||
			got.Dep[i] != res.Dep[i] || got.Labels[i] != res.Labels[i] {
			t.Fatalf("arrays diverge at %d", i)
		}
	}
	if !math.IsInf(got.Delta[0], 1) {
		t.Error("+Inf delta did not survive the round trip")
	}
}

// TestDecodeSnapshotHostileInputs is the LoadBinary-style hardening pin:
// every declared size — the container payload length, string lengths,
// point and center counts — must be rejected against the bytes actually
// present before anything is allocated, and damage must always surface
// as an error, never a panic.
func TestDecodeSnapshotHostileInputs(t *testing.T) {
	ds := testDataset(t)
	good := EncodeDataset("s2", 1, ds)
	goodModel := EncodeModel(ModelKey{Dataset: "s2", Version: 1, Algorithm: "Ex-DPC",
		Params: core.Params{DCut: 0.5, RhoMin: 1, DeltaMin: 2}},
		ds.Fingerprint(), time.Millisecond, testResult(ds.N))

	mutate := func(raw []byte, f func([]byte)) []byte {
		out := append([]byte(nil), raw...)
		f(out)
		return out
	}
	cases := map[string][]byte{
		"empty":            {},
		"short header":     good[:headerSize-1],
		"bad magic":        mutate(good, func(b []byte) { b[0] ^= 0xff }),
		"future version":   mutate(good, func(b []byte) { binary.LittleEndian.PutUint16(b[4:], 99) }),
		"unknown kind":     mutate(good, func(b []byte) { b[6] = 42 }),
		"truncated file":   good[:len(good)-3],
		"payload too long": mutate(good, func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 1<<40) }),
		"payload shrunk":   mutate(good, func(b []byte) { binary.LittleEndian.PutUint64(b[8:], 4) }),
		"payload bit flip": mutate(good, func(b []byte) { b[len(b)-1] ^= 1 }),
		"crc flip":         mutate(good, func(b []byte) { b[16] ^= 1 }),
		"model truncated":  goodModel[:len(goodModel)-5],
		"model bit flip":   mutate(goodModel, func(b []byte) { b[headerSize+2] ^= 1 }),
	}
	for name, raw := range cases {
		if _, err := DecodeSnapshot(raw); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestDecodePayloadOverflows crafts CRC-valid payloads whose internal
// counts overstate the data present; the decoders must reject them
// before allocating.
func TestDecodePayloadOverflows(t *testing.T) {
	datasetPayload := func(f func(e *encoder)) []byte {
		var e encoder
		f(&e)
		return encodeSnapshot(kindDataset, e.buf)
	}
	modelPayload := func(f func(e *encoder)) []byte {
		var e encoder
		f(&e)
		return encodeSnapshot(kindModel, e.buf)
	}
	cases := map[string][]byte{
		"dataset: huge n": datasetPayload(func(e *encoder) {
			e.str("x")
			e.u64(1)             // version
			e.u64(1 << 60)       // n
			e.u32(2)             // dim
			e.u64(0)             // fingerprint
			e.f64s([]float64{1}) // far fewer coords than declared
		}),
		"dataset: huge dim": datasetPayload(func(e *encoder) {
			e.str("x")
			e.u64(1)
			e.u64(1)
			e.u32(1 << 24)
			e.u64(0)
		}),
		"dataset: n*dim overflows": datasetPayload(func(e *encoder) {
			e.str("x")
			e.u64(1)
			e.u64(math.MaxUint64 / 2)
			e.u32(1 << 20)
			e.u64(0)
		}),
		"dataset: huge name length": datasetPayload(func(e *encoder) {
			e.u32(math.MaxUint32) // name length with no bytes behind it
		}),
		"model: huge point count": modelPayload(func(e *encoder) {
			e.str("x")
			e.u64(1)
			e.u64(0)
			e.str("Ex-DPC")
			for i := 0; i < 5; i++ {
				e.f64(1)
			}
			for i := 0; i < 5; i++ {
				e.i64(0)
			}
			e.u64(1 << 50) // n
			e.u64(0)       // centers
		}),
		"model: centers exceed points": modelPayload(func(e *encoder) {
			e.str("x")
			e.u64(1)
			e.u64(0)
			e.str("Ex-DPC")
			for i := 0; i < 5; i++ {
				e.f64(1)
			}
			for i := 0; i < 5; i++ {
				e.i64(0)
			}
			e.u64(0)
			e.u64(1 << 40)
		}),
	}
	for name, raw := range cases {
		v, err := DecodeSnapshot(raw)
		if err == nil {
			t.Errorf("%s: accepted as %T", name, v)
		} else if !strings.Contains(err.Error(), "persist:") {
			t.Errorf("%s: unexpected error shape: %v", name, err)
		}
	}
}
