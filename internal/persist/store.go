package persist

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"log"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/geom"
)

// manifestFormat versions the manifest schema, independently of the
// snapshot container version.
const manifestFormat = 1

// manifestName is the registry file inside the data dir.
const manifestName = "manifest.json"

// manifestFile is the on-disk registry of live snapshots. Snapshot files
// not referenced here are ignored on restore (orphans from interrupted
// replacements), so the manifest is the single source of truth.
type manifestFile struct {
	Format   int               `json:"format"`
	Datasets []manifestDataset `json:"datasets"`
	Models   []manifestModel   `json:"models"`
	// Indexes holds density-index snapshots (index.go). omitempty plus
	// JSON's ignore-unknown-fields rule keeps the manifest readable in
	// both directions across this addition, so Format stays 1.
	Indexes []manifestIndex `json:"indexes,omitempty"`
}

type manifestDataset struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	File    string `json:"file"`
}

type manifestParams struct {
	DCut     float64 `json:"dcut"`
	RhoMin   float64 `json:"rho_min"`
	DeltaMin float64 `json:"delta_min"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

type manifestModel struct {
	Dataset   string         `json:"dataset"`
	Version   uint64         `json:"version"`
	Algorithm string         `json:"algorithm"`
	Params    manifestParams `json:"params"`
	File      string         `json:"file"`
}

func (p manifestParams) core() core.Params {
	return core.Params{DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin, Epsilon: p.Epsilon, Seed: p.Seed}
}

func manifestParamsOf(p core.Params) manifestParams {
	return manifestParams{DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin, Epsilon: p.Epsilon, Seed: p.Seed}
}

func (m manifestModel) key() ModelKey {
	return ModelKey{Dataset: m.Dataset, Version: m.Version, Algorithm: m.Algorithm, Params: m.Params.core()}
}

// Store is a snapshot directory: manifest.json plus datasets/ and models/
// subdirectories of checksummed snapshot files. All writes are atomic
// (write to a temp file in the same directory, fsync, rename), and all
// reads treat damage as data loss to log and skip, never as a reason to
// fail startup. Safe for concurrent use.
type Store struct {
	dir  string
	logf func(format string, args ...any)

	mu sync.Mutex
	m  manifestFile
}

// Open creates or reopens a snapshot directory. A missing directory is
// created; a missing manifest means an empty store; an unreadable or
// corrupt manifest is logged and treated as empty (snapshot files are
// left on disk but unreachable until rewritten). logf defaults to
// log.Printf.
func Open(dir string, logf func(format string, args ...any)) (*Store, error) {
	if logf == nil {
		logf = log.Printf
	}
	for _, d := range []string{dir, filepath.Join(dir, "datasets"), filepath.Join(dir, "models"), filepath.Join(dir, "indexes")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("persist: %w", err)
		}
	}
	s := &Store{dir: dir, logf: logf, m: manifestFile{Format: manifestFormat}}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
	case err != nil:
		logf("persist: reading manifest: %v; starting empty", err)
	default:
		var m manifestFile
		if err := json.Unmarshal(raw, &m); err != nil {
			logf("persist: corrupt manifest: %v; starting empty", err)
		} else if m.Format != manifestFormat {
			logf("persist: manifest format %d, want %d; starting empty", m.Format, manifestFormat)
		} else {
			s.m = m
		}
	}
	return s, nil
}

// Dir returns the snapshot directory.
func (s *Store) Dir() string { return s.dir }

// Log writes to the store's logger; the serving layer routes its own
// persistence diagnostics here so daemon and tests share one sink.
func (s *Store) Log(format string, args ...any) { s.logf(format, args...) }

// SaveDataset snapshots one dataset version. Replacing a name removes the
// previous version's dataset snapshot and every model fitted on it — the
// disk mirror of the serving layer's cache purge. A save that has already
// been superseded by a newer version is skipped.
func (s *Store) SaveDataset(name string, version uint64, ds *geom.Dataset) error {
	// Refuse to write what Restore would refuse to read: a snapshot that
	// saves fine but can never load is worse than a counted persist error.
	if len(name) > maxNameLen {
		return fmt.Errorf("persist: dataset name of %d bytes exceeds the %d-byte snapshot limit", len(name), maxNameLen)
	}
	rel := filepath.Join("datasets", fmt.Sprintf("%016x-v%d.snap", hashString(name), version))
	raw := EncodeDataset(name, version, ds)

	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.m.Datasets {
		if e.Name == name && e.Version > version {
			return nil // a newer upload already landed; this save is stale
		}
	}
	if err := writeFileAtomic(filepath.Join(s.dir, rel), raw); err != nil {
		return err
	}
	var remove []string
	kept := s.m.Datasets[:0]
	for _, e := range s.m.Datasets {
		if e.Name == name {
			if e.File != rel {
				remove = append(remove, e.File)
			}
			continue
		}
		kept = append(kept, e)
	}
	s.m.Datasets = append(kept, manifestDataset{Name: name, Version: version, File: rel})
	keptM := s.m.Models[:0]
	for _, e := range s.m.Models {
		if e.Dataset == name && e.Version != version {
			remove = append(remove, e.File)
			continue
		}
		keptM = append(keptM, e)
	}
	s.m.Models = keptM
	keptI := s.m.Indexes[:0]
	for _, e := range s.m.Indexes {
		if e.Dataset == name && e.Version != version {
			remove = append(remove, e.File)
			continue
		}
		keptI = append(keptI, e)
	}
	s.m.Indexes = keptI
	if err := s.saveManifestLocked(); err != nil {
		return err
	}
	// Stale files go last: if the manifest write had failed they would
	// still be referenced; failing to remove them leaves ignorable orphans.
	for _, rel := range remove {
		if err := os.Remove(filepath.Join(s.dir, rel)); err != nil && !os.IsNotExist(err) {
			s.logf("persist: removing stale snapshot %s: %v", rel, err)
		}
	}
	return nil
}

// SaveModel snapshots one fitted model under its identity key. Workers is
// forced to zero on disk (host policy, not model identity). A model for a
// dataset version the manifest has already replaced is skipped.
func (s *Store) SaveModel(k ModelKey, m *core.Model) error {
	if len(k.Dataset) > maxNameLen || len(k.Algorithm) > maxNameLen {
		return fmt.Errorf("persist: model key names exceed the %d-byte snapshot limit", maxNameLen)
	}
	k.Params.Workers = 0
	rel := filepath.Join("models", fmt.Sprintf("%016x.snap", k.Hash()))
	raw := EncodeModel(k, m.Dataset().Fingerprint(), m.FitTime(), m.Result())

	s.mu.Lock()
	defer s.mu.Unlock()
	found := false
	for _, e := range s.m.Datasets {
		if e.Name != k.Dataset {
			continue
		}
		if e.Version > k.Version {
			return nil // fitted on a replaced version; don't persist
		}
		found = e.Version == k.Version
		break
	}
	if !found {
		// Without the dataset snapshot the model could never restore;
		// surface it as a persist error instead of writing dead weight.
		return fmt.Errorf("persist: no dataset snapshot for %s v%d; model not persisted", k.Dataset, k.Version)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, rel), raw); err != nil {
		return err
	}
	entry := manifestModel{
		Dataset: k.Dataset, Version: k.Version, Algorithm: k.Algorithm,
		Params: manifestParamsOf(k.Params), File: rel,
	}
	// Re-persisting an existing key (a refit after eviction) moves it to
	// the tail: the list stays in persist-recency order, which the warm
	// load relies on when trimming to cache capacity.
	for i, e := range s.m.Models {
		if e.key() == k {
			s.m.Models = append(s.m.Models[:i], s.m.Models[i+1:]...)
			break
		}
	}
	s.m.Models = append(s.m.Models, entry)
	return s.saveManifestLocked()
}

// EnsureDataset rewrites the dataset snapshot unless one for exactly
// (name, version) is already on disk at its exact expected size. It is
// the self-heal hook behind idempotent re-uploads: a snapshot whose
// original save failed (full disk) or that was truncated or deleted
// since gets a second chance without bumping the version or discarding
// models. The health check is a stat, not a decode — the no-op re-upload
// path runs on every provisioning pass and must stay cheap; in-place bit
// rot is still caught by the CRC at the next restart, costing one refit.
func (s *Store) EnsureDataset(name string, version uint64, ds *geom.Dataset) error {
	// The codec is canonical, so the file size is exactly determined by
	// the name and shape: container header + name + version + n + dim +
	// fingerprint + coordinates.
	wantSize := int64(headerSize + 4 + len(name) + 8 + 8 + 4 + 8 + 8*ds.N*ds.Dim)
	s.mu.Lock()
	healthy := false
	for _, e := range s.m.Datasets {
		if e.Name == name && e.Version == version {
			fi, err := os.Stat(filepath.Join(s.dir, e.File))
			healthy = err == nil && fi.Size() == wantSize
			break
		}
	}
	s.mu.Unlock()
	if healthy {
		return nil
	}
	return s.SaveDataset(name, version, ds)
}

// RestoredModel pairs a decoded model snapshot with the Model rebuilt
// against its restored dataset.
type RestoredModel struct {
	Key   ModelKey
	Model *core.Model
}

// Restore loads every manifest entry it can: datasets first, then models
// rebuilt against them via core.Restore (which re-derives the kd-tree).
// Anything missing, truncated, corrupt, or mismatched — wrong name or
// version inside the file, a fingerprint that no longer matches the
// dataset — is logged and skipped; a damaged snapshot costs one refit,
// never a failed startup. workers is baked into the restored models'
// Params so they are indistinguishable from freshly fitted ones.
func (s *Store) Restore(workers int) (datasets []*DatasetSnapshot, models []RestoredModel) {
	return s.RestoreOwned(workers, nil)
}

// RestoreOwned is Restore limited to datasets (and the models fitted on
// them) whose name the owns filter accepts; nil accepts everything. It is
// the ring-rebalance hook: a shard that stops owning a key skips its
// snapshots — without decoding them — and a shard that starts owning one
// warm-loads it with zero refits. Skipped snapshots stay on disk
// untouched, so ownership can come back cheaply.
func (s *Store) RestoreOwned(workers int, owns func(dataset string) bool) (datasets []*DatasetSnapshot, models []RestoredModel) {
	s.mu.Lock()
	m := manifestFile{
		Datasets: append([]manifestDataset(nil), s.m.Datasets...),
		Models:   append([]manifestModel(nil), s.m.Models...),
	}
	s.mu.Unlock()

	byName := make(map[string]*DatasetSnapshot, len(m.Datasets))
	for _, e := range m.Datasets {
		if owns != nil && !owns(e.Name) {
			continue
		}
		snap, err := s.readDataset(e)
		if err != nil {
			s.logf("persist: skipping dataset %q: %v", e.Name, err)
			continue
		}
		byName[e.Name] = snap
		datasets = append(datasets, snap)
	}
	for _, e := range m.Models {
		if owns != nil && !owns(e.Dataset) {
			// Filtered out with its dataset — not damage, so no log line.
			continue
		}
		snap, err := s.readModel(e)
		if err != nil {
			s.logf("persist: skipping model %s/%s: %v", e.Dataset, e.Algorithm, err)
			continue
		}
		ds, ok := byName[snap.Key.Dataset]
		if !ok || ds.Version != snap.Key.Version {
			s.logf("persist: skipping model %s/%s: its dataset version %d was not restored",
				e.Dataset, e.Algorithm, snap.Key.Version)
			continue
		}
		if ds.Fingerprint != snap.DatasetFingerprint {
			s.logf("persist: skipping model %s/%s: dataset fingerprint %#x, model fitted on %#x",
				e.Dataset, e.Algorithm, ds.Fingerprint, snap.DatasetFingerprint)
			continue
		}
		p := snap.Key.Params
		p.Workers = workers
		model, err := core.Restore(snap.Key.Algorithm, ds.Points, snap.Result, p, snap.FitTime)
		if err != nil {
			s.logf("persist: skipping model %s/%s: %v", e.Dataset, e.Algorithm, err)
			continue
		}
		models = append(models, RestoredModel{Key: snap.Key, Model: model})
	}
	return datasets, models
}

func (s *Store) readDataset(e manifestDataset) (*DatasetSnapshot, error) {
	v, err := s.readSnapshot(e.File, kindDataset)
	if err != nil {
		return nil, err
	}
	snap := v.(*DatasetSnapshot)
	if snap.Name != e.Name || snap.Version != e.Version {
		return nil, fmt.Errorf("file holds %q v%d, manifest expects %q v%d", snap.Name, snap.Version, e.Name, e.Version)
	}
	if err := snap.Points.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

func (s *Store) readModel(e manifestModel) (*ModelSnapshot, error) {
	v, err := s.readSnapshot(e.File, kindModel)
	if err != nil {
		return nil, err
	}
	snap := v.(*ModelSnapshot)
	if snap.Key != e.key() {
		return nil, fmt.Errorf("file holds key %+v, manifest expects %+v", snap.Key, e.key())
	}
	return snap, nil
}

func (s *Store) readSnapshot(rel string, wantKind byte) (any, error) {
	raw, err := os.ReadFile(filepath.Join(s.dir, rel))
	if err != nil {
		return nil, err
	}
	kind, _, err := decodeHeader(raw)
	if err != nil {
		return nil, err
	}
	if kind != wantKind {
		return nil, fmt.Errorf("snapshot kind %d, want %d", kind, wantKind)
	}
	return DecodeSnapshot(raw)
}

func (s *Store) saveManifestLocked() error {
	raw, err := json.MarshalIndent(s.m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(s.dir, manifestName), append(raw, '\n'))
}

// writeFileAtomic writes via a temp file in the target directory, fsyncs,
// and renames into place, so readers only ever see complete files and a
// crash mid-write leaves the previous version intact.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
