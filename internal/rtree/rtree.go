// Package rtree implements an STR (Sort-Tile-Recursive) bulk-loaded R-tree
// over point data. The paper evaluates an "R-tree + Scan" baseline whose
// local densities come from R-tree range searches; this package provides
// that index. Only the operations that baseline needs are implemented:
// bulk construction and circular range counting/search.
package rtree

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// DefaultFanout is the branching factor used when callers pass fanout <= 1.
// 32 keeps the tree shallow on the paper's multi-million point datasets
// while keeping per-node scans cheap.
const DefaultFanout = 32

type entry struct {
	rect  geom.Rect
	child *node // nil for leaf entries
	pt    int32 // dataset index for leaf entries
}

type node struct {
	entries []entry
	leaf    bool
}

// Tree is a read-only STR-packed R-tree over dataset point indices.
type Tree struct {
	ds     *geom.Dataset
	root   *node
	fanout int
	size   int
}

// Build bulk-loads an R-tree over every point of the flat dataset using
// Sort-Tile-Recursive packing with the given fanout (entries per node).
func Build(ds *geom.Dataset, fanout int) *Tree {
	if fanout <= 1 {
		fanout = DefaultFanout
	}
	t := &Tree{ds: ds, fanout: fanout, size: ds.N}
	if ds.N == 0 {
		return t
	}
	ids := make([]int32, ds.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	leaves := t.packLeaves(ids, ds.Dim)
	t.root = t.packUpward(leaves)
	return t
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// coord reads coordinate dim of point id straight from the flat buffer.
func (t *Tree) coord(id int32, dim int) float64 { return t.ds.Coord(id, dim) }

// packLeaves tiles the point ids into leaf nodes: recursively sort by each
// dimension and cut into vertical slabs sized so that the final groups hold
// at most fanout points (classic STR).
func (t *Tree) packLeaves(ids []int32, d int) []*node {
	groups := t.tile(ids, 0, d)
	leaves := make([]*node, 0, len(groups))
	for _, g := range groups {
		n := &node{leaf: true, entries: make([]entry, 0, len(g))}
		for _, id := range g {
			p := t.ds.At(int(id))
			n.entries = append(n.entries, entry{rect: geom.NewRect(p, p), pt: id})
		}
		leaves = append(leaves, n)
	}
	return leaves
}

// tile recursively partitions ids into groups of at most fanout by sorting
// on dimension dim and slicing into ceil((len/fanout)^(1/(d-dim))) slabs.
func (t *Tree) tile(ids []int32, dim, d int) [][]int32 {
	if len(ids) <= t.fanout || dim == d-1 {
		sort.Slice(ids, func(a, b int) bool { return t.coord(ids[a], dim) < t.coord(ids[b], dim) })
		var groups [][]int32
		for i := 0; i < len(ids); i += t.fanout {
			j := i + t.fanout
			if j > len(ids) {
				j = len(ids)
			}
			groups = append(groups, ids[i:j])
		}
		return groups
	}
	sort.Slice(ids, func(a, b int) bool { return t.coord(ids[a], dim) < t.coord(ids[b], dim) })
	nGroups := (len(ids) + t.fanout - 1) / t.fanout
	nSlabs := int(math.Ceil(math.Pow(float64(nGroups), 1/float64(d-dim))))
	if nSlabs < 1 {
		nSlabs = 1
	}
	slabSize := (len(ids) + nSlabs - 1) / nSlabs
	var groups [][]int32
	for i := 0; i < len(ids); i += slabSize {
		j := i + slabSize
		if j > len(ids) {
			j = len(ids)
		}
		groups = append(groups, t.tile(ids[i:j], dim+1, d)...)
	}
	return groups
}

// packUpward builds internal levels until a single root remains.
func (t *Tree) packUpward(level []*node) *node {
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+t.fanout-1)/t.fanout)
		for i := 0; i < len(level); i += t.fanout {
			j := i + t.fanout
			if j > len(level) {
				j = len(level)
			}
			parent := &node{entries: make([]entry, 0, j-i)}
			for _, child := range level[i:j] {
				parent.entries = append(parent.entries, entry{rect: nodeRect(child), child: child})
			}
			next = append(next, parent)
		}
		level = next
	}
	return level[0]
}

func nodeRect(n *node) geom.Rect {
	r := geom.EmptyRect(n.entries[0].rect.Dim())
	for _, e := range n.entries {
		r.ExpandRect(e.rect)
	}
	return r
}

// RangeCount returns the number of points with dist(q, p) < r (strict).
func (t *Tree) RangeCount(q []float64, r float64) int {
	count := 0
	t.RangeSearch(q, r, func(int32, float64) { count++ })
	return count
}

// RangeSearch calls fn(id, sqDist) for every point with dist(q, p) < r.
func (t *Tree) RangeSearch(q []float64, r float64, fn func(id int32, sqDist float64)) {
	if t.root == nil {
		return
	}
	sq := r * r
	stack := []*node{t.root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.leaf {
			for i := range n.entries {
				e := &n.entries[i]
				if d, ok := geom.SqDistToIdxPartial(t.ds, q, e.pt, sq); ok && d < sq {
					fn(e.pt, d)
				}
			}
			continue
		}
		for i := range n.entries {
			e := &n.entries[i]
			if e.rect.SqMinDist(q) < sq {
				stack = append(stack, e.child)
			}
		}
	}
}

// Height returns the number of levels in the tree (0 when empty).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.entries[0].child
	}
	return h
}

// Validate checks structural invariants for tests: every child rect is
// contained in its parent entry rect, leaves are all at the same depth, and
// the number of reachable points equals Len.
func (t *Tree) Validate() error {
	if t.root == nil {
		return nil
	}
	seen := 0
	leafDepth := -1
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return errLeafDepth
			}
			seen += len(n.entries)
			return nil
		}
		for i := range n.entries {
			e := &n.entries[i]
			if !e.rect.ContainsRect(nodeRect(e.child)) {
				return errRectContainment
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if seen != t.size {
		return errPointCount
	}
	return nil
}

type validateError string

func (e validateError) Error() string { return string(e) }

const (
	errLeafDepth       = validateError("rtree: leaves at different depths")
	errRectContainment = validateError("rtree: parent rect does not contain child rect")
	errPointCount      = validateError("rtree: reachable point count mismatch")
)
