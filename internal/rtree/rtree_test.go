package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randPts(rng *rand.Rand, n, d int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * scale
		}
		pts[i] = p
	}
	return pts
}

func bruteRange(pts [][]float64, q []float64, r float64) []int32 {
	var out []int32
	for i, p := range pts {
		if geom.Dist(q, p) < r {
			out = append(out, int32(i))
		}
	}
	return out
}

// flatPts packs rows into a flat dataset, tolerating the empty case.
func flatPts(pts [][]float64, d int) *geom.Dataset {
	coords := make([]float64, 0, len(pts)*d)
	for _, p := range pts {
		coords = append(coords, p...)
	}
	return geom.NewDataset(coords, d)
}

func TestBuildValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 5000} {
		for _, d := range []int{1, 2, 4, 8} {
			pts := randPts(rng, n, d, 100)
			tr := Build(flatPts(pts, d), 16)
			if tr.Len() != n {
				t.Fatalf("n=%d d=%d: Len = %d", n, d, tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatalf("n=%d d=%d: %v", n, d, err)
			}
		}
	}
}

func TestRangeCountMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 3, 8} {
		pts := randPts(rng, 900, d, 50)
		tr := Build(geom.MustFromRows(pts), 0) // default fanout
		for i := 0; i < 50; i++ {
			q := randPts(rng, 1, d, 50)[0]
			r := rng.Float64() * 25
			want := len(bruteRange(pts, q, r))
			if got := tr.RangeCount(q, r); got != want {
				t.Fatalf("d=%d: RangeCount = %d, want %d", d, got, want)
			}
		}
	}
}

func TestRangeSearchIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 400, 2, 30)
	tr := Build(geom.MustFromRows(pts), 8)
	q := []float64{15, 15}
	want := bruteRange(pts, q, 10)
	var got []int32
	tr.RangeSearch(q, 10, func(id int32, sq float64) {
		if math.Abs(sq-geom.SqDist(q, pts[id])) > 1e-9 {
			t.Fatalf("wrong sqdist for %d", id)
		}
		got = append(got, id)
	})
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ids mismatch: %v vs %v", got, want)
		}
	}
}

func TestStrictInequality(t *testing.T) {
	pts := [][]float64{{0, 0}, {5, 0}}
	tr := Build(geom.MustFromRows(pts), 4)
	if got := tr.RangeCount([]float64{0, 0}, 5); got != 1 {
		t.Errorf("point at exactly r must be excluded: count = %d", got)
	}
}

func TestEmptyAndSingle(t *testing.T) {
	tr := Build(&geom.Dataset{}, 4)
	if got := tr.RangeCount([]float64{0}, 10); got != 0 {
		t.Errorf("empty tree count = %d", got)
	}
	tr = Build(geom.MustFromRows([][]float64{{3, 3}}), 4)
	if got := tr.RangeCount([]float64{3, 3}, 1); got != 1 {
		t.Errorf("single point count = %d", got)
	}
	if tr.Height() != 1 {
		t.Errorf("single point height = %d", tr.Height())
	}
}

func TestHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 32*32*4, 2, 100)
	tr := Build(geom.MustFromRows(pts), 32)
	// 4096 points, fanout 32: 128 leaves -> 4 internal -> 1 root = 3 levels.
	if h := tr.Height(); h > 4 {
		t.Errorf("height = %d, want <= 4", h)
	}
}

func TestDuplicatePoints(t *testing.T) {
	pts := make([][]float64, 100)
	for i := range pts {
		pts[i] = []float64{7, 7, 7}
	}
	tr := Build(geom.MustFromRows(pts), 8)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeCount([]float64{7, 7, 7}, 0.001); got != 100 {
		t.Errorf("duplicate count = %d, want 100", got)
	}
}

func BenchmarkRangeCount(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 100000, 3, 1000)
	tr := Build(geom.MustFromRows(pts), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RangeCount(pts[i%len(pts)], 20)
	}
}
