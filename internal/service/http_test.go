package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
)

func doJSON(t *testing.T, client *http.Client, method, url string, body, out interface{}) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: unmarshal %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// TestHTTPRoundTrip is the acceptance-criteria test: upload a dataset
// over HTTP, fit, batch-assign, and check the served labels match a
// direct ClusterDataset run byte-for-byte; the second fit request for
// the same (dataset, algorithm, params) must come from the model cache.
func TestHTTPRoundTrip(t *testing.T) {
	const workers = 2
	svc := New(Options{Workers: workers, CacheSize: 4})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	client := ts.Client()

	// Health and empty registry.
	var health map[string]string
	if code := doJSON(t, client, "GET", ts.URL+"/healthz", nil, &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, health)
	}
	var list []api.DatasetInfo
	if code := doJSON(t, client, "GET", ts.URL+"/v1/datasets", nil, &list); code != 200 || len(list) != 0 {
		t.Fatalf("empty registry: code=%d list=%v", code, list)
	}

	// Upload the training dataset as CSV (the dpcd wire format).
	d := data.SSet(2, 1500, 1)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/s2", bytes.NewReader(csv.Bytes()))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var info api.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || info.N != d.Points.N || info.Dim != 2 {
		t.Fatalf("upload: code=%d info=%+v", resp.StatusCode, info)
	}

	// Fit: first request is a miss, second a cache hit.
	fitReq := api.FitRequest{
		Dataset:   "s2",
		Algorithm: "Approx-DPC",
		Params:    api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: 1},
	}
	var fit1, fit2 api.FitResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", fitReq, &fit1); code != 200 {
		t.Fatalf("fit 1: code=%d", code)
	}
	if fit1.CacheHit {
		t.Error("first fit reported cache_hit")
	}
	if fit1.Model.N != d.Points.N || fit1.Model.Clusters == 0 {
		t.Errorf("fit stats implausible: %+v", fit1.Model)
	}
	if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", fitReq, &fit2); code != 200 {
		t.Fatalf("fit 2: code=%d", code)
	}
	if !fit2.CacheHit {
		t.Error("second fit for the same (dataset, algorithm, params) was not served from the model cache")
	}

	// Assign the training points back through HTTP and compare against a
	// direct ClusterDataset run on the same data and params.
	direct, err := core.ApproxDPC{}.ClusterDataset(d.Points, core.Params{
		DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: workers, Epsilon: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	assignReq := api.AssignRequest{FitRequest: fitReq, Points: d.Points.Rows()}
	var ar api.AssignResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/assign", assignReq, &ar); code != 200 {
		t.Fatalf("assign: code=%d", code)
	}
	if !ar.CacheHit {
		t.Error("assign refitted a cached model")
	}
	if ar.Clusters != direct.NumClusters() {
		t.Errorf("served %d clusters, direct run found %d", ar.Clusters, direct.NumClusters())
	}
	if len(ar.Labels) != len(direct.Labels) {
		t.Fatalf("got %d labels, want %d", len(ar.Labels), len(direct.Labels))
	}
	for i := range ar.Labels {
		if ar.Labels[i] != direct.Labels[i] {
			t.Fatalf("label %d = %d over HTTP, direct ClusterDataset says %d", i, ar.Labels[i], direct.Labels[i])
		}
	}

	// Stats reflect the session.
	var st api.Stats
	if code := doJSON(t, client, "GET", ts.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: code=%d", code)
	}
	if st.Datasets != 1 || st.CacheMisses != 1 || st.CacheHits != 2 {
		t.Errorf("stats = %+v, want 1 dataset, 1 miss, 2 hits", st)
	}
	if st.PointsAssigned != int64(d.Points.N) {
		t.Errorf("points_assigned = %d, want %d", st.PointsAssigned, d.Points.N)
	}
}

func TestHTTPDatasetEndpoints(t *testing.T) {
	svc := New(Options{Workers: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	client := ts.Client()

	put := func(name, body, query string) int {
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/"+name+query, strings.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := put("ok", "1,2\n3,4\n5,6\n", ""); code != http.StatusCreated {
		t.Errorf("csv upload: code=%d", code)
	}
	var info api.DatasetInfo
	if code := doJSON(t, client, "GET", ts.URL+"/v1/datasets/ok", nil, &info); code != 200 || info.N != 3 {
		t.Errorf("get dataset: code=%d info=%+v", code, info)
	}
	if code := doJSON(t, client, "GET", ts.URL+"/v1/datasets/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown dataset: code=%d", code)
	}

	// Malformed uploads must be clean 400s, never panics.
	for name, body := range map[string]string{
		"ragged": "1,2\n3\n",
		"words":  "a,b\n",
		"nan":    "1,NaN\n2,3\n",
		"empty":  "",
	} {
		if code := put(name, body, ""); code != http.StatusBadRequest {
			t.Errorf("upload %s: code=%d, want 400", name, code)
		}
	}
	if code := put("fmt", "1,2\n", "?format=weird"); code != http.StatusBadRequest {
		t.Errorf("unknown format: code=%d", code)
	}
	// Binary upload round-trip.
	d := data.SSet(1, 100, 1)
	var bin bytes.Buffer
	if err := data.SaveBinary(&bin, d.Points); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/bin?format=binary", bytes.NewReader(bin.Bytes()))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("binary upload: code=%d", resp.StatusCode)
	}
	if code := put("badbin", "not binary at all", "?format=binary"); code != http.StatusBadRequest {
		t.Errorf("bad binary upload: code=%d", code)
	}
}

func TestHTTPErrorPaths(t *testing.T) {
	svc := New(Options{Workers: 2})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	client := ts.Client()

	d := data.SSet(2, 300, 1)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/s2", bytes.NewReader(csv.Bytes()))
	if resp, err := client.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	good := api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin}
	cases := []struct {
		name string
		req  api.FitRequest
		code int
	}{
		{"unknown dataset", api.FitRequest{Dataset: "nope", Algorithm: "Ex-DPC", Params: good}, 404},
		{"unknown algorithm", api.FitRequest{Dataset: "s2", Algorithm: "nope", Params: good}, 404},
		{"bad params", api.FitRequest{Dataset: "s2", Algorithm: "Ex-DPC", Params: api.Params{DCut: -1}}, 400},
	}
	for _, tc := range cases {
		var er api.ErrorEnvelope
		if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", tc.req, &er); code != tc.code {
			t.Errorf("%s: code=%d want %d (%s)", tc.name, code, tc.code, er.Error.Message)
		}
	}

	// Bad JSON body.
	resp, err := client.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: code=%d", resp.StatusCode)
	}

	// Trailing garbage after a valid JSON object is a client bug the
	// server must reject, not silently ignore; trailing whitespace is not
	// garbage (curl and editors add newlines).
	goodFit := string(marshal(api.FitRequest{Dataset: "s2", Algorithm: "Ex-DPC", Params: good}))
	for name, body := range map[string]string{
		"text":          goodFit + "garbage",
		"second object": goodFit + goodFit,
		"stray brace":   goodFit + "}",
	} {
		resp, err := client.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("trailing %s: code=%d, want 400", name, resp.StatusCode)
		}
	}
	resp, err = client.Post(ts.URL+"/v1/fit", "application/json", strings.NewReader(goodFit+"\n  \n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("trailing whitespace: code=%d, want 200", resp.StatusCode)
	}

	// Dimension-mismatched assign points.
	bad := api.AssignRequest{
		FitRequest: api.FitRequest{Dataset: "s2", Algorithm: "Ex-DPC", Params: good},
		Points:     [][]float64{{1, 2, 3}},
	}
	var er api.ErrorEnvelope
	if code := doJSON(t, client, "POST", ts.URL+"/v1/assign", bad, &er); code != http.StatusBadRequest {
		t.Errorf("mismatched assign: code=%d (%s)", code, er.Error.Message)
	}

	// Empty assign batch responds with "labels":[] rather than null.
	empty := api.AssignRequest{
		FitRequest: api.FitRequest{Dataset: "s2", Algorithm: "Ex-DPC", Params: good},
		Points:     [][]float64{},
	}
	b2, _ := json.Marshal(empty)
	respEmpty, err := client.Post(ts.URL+"/v1/assign", "application/json", bytes.NewReader(b2))
	if err != nil {
		t.Fatal(err)
	}
	rawEmpty, _ := io.ReadAll(respEmpty.Body)
	respEmpty.Body.Close()
	if respEmpty.StatusCode != 200 || !strings.Contains(string(rawEmpty), `"labels":[]`) {
		t.Errorf("empty batch: code=%d body=%s, want labels []", respEmpty.StatusCode, rawEmpty)
	}

	// Oversized assign batch is rejected before any work happens.
	huge := api.AssignRequest{FitRequest: api.FitRequest{Dataset: "s2", Algorithm: "Ex-DPC", Params: good}}
	huge.Points = make([][]float64, maxAssignPoints+1)
	b, _ := json.Marshal(huge)
	resp, err = client.Post(ts.URL+"/v1/assign", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: code=%d", resp.StatusCode)
	}

	// Every registered algorithm is reachable by its paper name over HTTP.
	for _, alg := range core.Registered() {
		freq := api.FitRequest{Dataset: "s2", Algorithm: alg.Name(), Params: good}
		var fr api.FitResponse
		if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", freq, &fr); code != 200 {
			t.Errorf("fit %s over HTTP: code=%d", alg.Name(), code)
		} else if fr.Model.Algorithm != alg.Name() {
			t.Errorf("fit %s returned stats for %s", alg.Name(), fr.Model.Algorithm)
		}
	}
}
