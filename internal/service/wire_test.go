package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/wire"
)

// framePoints renders rows as binary points frames — the frame-codec
// analogue of ndjsonPoints.
func framePoints(t testing.TB, pts [][]float64, f32 bool) []byte {
	t.Helper()
	return wire.AppendPointsRows(nil, pts, f32)
}

func drainStream(t *testing.T, sr *StreamReader) []int32 {
	t.Helper()
	labels, _, err := sr.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return labels
}

// TestCrossCodecEquivalence is the satellite equivalence suite at the
// single-instance level: every combination of upload codec and assign
// codec labels the same probes identically.
func TestCrossCodecEquivalence(t *testing.T) {
	svc := New(Options{Workers: 2, CacheSize: 8, StreamChunk: 16})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())

	d := data.SSet(2, 600, 3)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutDataset("ds-json", "csv", csv.Bytes()); err != nil {
		t.Fatal(err)
	}
	// Same points uploaded through the frame codec under another name.
	frameUp := framePoints(t, d.Points.Rows(), false)
	info, err := c.PutDataset("ds-frame", "frame", frameUp)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != d.Points.N || info.Dim != d.Points.Dim {
		t.Fatalf("frame upload registered %dx%d, want %dx%d", info.N, info.Dim, d.Points.N, d.Points.Dim)
	}

	params := api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin}
	reqJSON := api.FitRequest{Dataset: "ds-json", Algorithm: "Ex-DPC", Params: params}
	reqFrame := api.FitRequest{Dataset: "ds-frame", Algorithm: "Ex-DPC", Params: params}
	probes := d.Points.Rows()[:120]

	// The JSON batch on the CSV upload is the reference labeling.
	base, err := c.Assign(api.AssignRequest{FitRequest: reqJSON, Points: probes})
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, labels []int32) {
		t.Helper()
		if len(labels) != len(base.Labels) {
			t.Fatalf("%s: %d labels, want %d", name, len(labels), len(base.Labels))
		}
		for i := range labels {
			if labels[i] != base.Labels[i] {
				t.Fatalf("%s: label %d = %d, reference %d", name, i, labels[i], base.Labels[i])
			}
		}
	}

	// Upload JSON (CSV) / assign binary, batch and stream.
	fb, err := c.AssignFrames(reqJSON, probes, false)
	if err != nil {
		t.Fatal(err)
	}
	check("frames batch on csv upload", fb.Labels)
	if fb.Clusters != base.Clusters || !fb.CacheHit {
		t.Errorf("frames batch summary = %+v, want clusters=%d cache_hit=true", fb, base.Clusters)
	}
	sr, err := c.AssignStreamFrames(reqJSON, bytes.NewReader(framePoints(t, probes, false)))
	if err != nil {
		t.Fatal(err)
	}
	check("frames stream on csv upload", drainStream(t, sr))

	// Upload binary / assign stream JSON (and batch JSON).
	jb, err := c.Assign(api.AssignRequest{FitRequest: reqFrame, Points: probes})
	if err != nil {
		t.Fatal(err)
	}
	check("json batch on frame upload", jb.Labels)
	sr, err = c.AssignStream(reqFrame, bytes.NewReader(ndjsonPoints(t, probes)))
	if err != nil {
		t.Fatal(err)
	}
	check("ndjson stream on frame upload", drainStream(t, sr))

	// Frames stream on the frame upload closes the matrix.
	sr, err = c.AssignStreamFrames(reqFrame, bytes.NewReader(framePoints(t, probes, false)))
	if err != nil {
		t.Fatal(err)
	}
	check("frames stream on frame upload", drainStream(t, sr))
}

// TestCrossCodecAllAlgorithms pins the tentpole guarantee: the binary
// codec yields byte-identical labels to the JSON path under every one of
// the ten registered algorithms — the codec moves bits, the model
// decides labels.
func TestCrossCodecAllAlgorithms(t *testing.T) {
	svc := New(Options{Workers: 2, CacheSize: 16, StreamChunk: 64})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())

	d := data.SSet(2, 400, 5)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutDataset("algs", "csv", csv.Bytes()); err != nil {
		t.Fatal(err)
	}
	probes := d.Points.Rows()[:50]
	for _, alg := range core.Registered() {
		req := api.FitRequest{
			Dataset:   "algs",
			Algorithm: alg.Name(),
			Params: api.Params{
				DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin,
				Epsilon: 1.0, Seed: 42,
			},
		}
		base, err := c.Assign(api.AssignRequest{FitRequest: req, Points: probes})
		if err != nil {
			t.Fatalf("%s: json assign: %v", alg.Name(), err)
		}
		fb, err := c.AssignFrames(req, probes, false)
		if err != nil {
			t.Fatalf("%s: frames assign: %v", alg.Name(), err)
		}
		sr, err := c.AssignStreamFrames(req, bytes.NewReader(framePoints(t, probes, false)))
		if err != nil {
			t.Fatalf("%s: frames stream: %v", alg.Name(), err)
		}
		streamed := drainStream(t, sr)
		for i := range base.Labels {
			if fb.Labels[i] != base.Labels[i] || streamed[i] != base.Labels[i] {
				t.Fatalf("%s: label %d: json=%d frames=%d stream=%d",
					alg.Name(), i, base.Labels[i], fb.Labels[i], streamed[i])
			}
		}
	}
}

// TestAssignContentNegotiation pins the per-direction matrix: the
// request codec comes from Content-Type, the response codec from Accept,
// and an absent Accept mirrors the request.
func TestAssignContentNegotiation(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n9,9\n")); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{Dataset: "tiny", Algorithm: "Ex-DPC", Params: api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}}
	probes := [][]float64{{1, 2}, {9, 9}}

	jsonBody := marshal(api.AssignRequest{FitRequest: req, Points: probes})
	frameBody := wire.AppendHeader(nil, fitToHeader(req))
	frameBody = wire.AppendPointsRows(frameBody, probes, false)

	post := func(body []byte, contentType, accept string) *http.Response {
		t.Helper()
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/assign", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", contentType)
		if accept != "" {
			hr.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(resp.Body)
			t.Fatalf("CT=%s Accept=%s: status %d: %s", contentType, accept, resp.StatusCode, data)
		}
		return resp
	}

	cases := []struct {
		body        []byte
		contentType string
		accept      string
		wantFrames  bool
	}{
		{jsonBody, "application/json", "", false},                       // JSON mirrors JSON
		{jsonBody, "application/json", wire.ContentType, true},          // Accept upgrades
		{frameBody, wire.ContentType, "", true},                         // frames mirror frames
		{frameBody, wire.ContentType, "application/json", false},        // Accept downgrades
		{frameBody, wire.ContentType + "; q=1", wire.ContentType, true}, // parameters tolerated
	}
	for _, tc := range cases {
		resp := post(tc.body, tc.contentType, tc.accept)
		ct := resp.Header.Get("Content-Type")
		var labels []int32
		if tc.wantFrames {
			if !isFrameMedia(ct) {
				t.Fatalf("CT=%s Accept=%s: response Content-Type %q, want frames", tc.contentType, tc.accept, ct)
			}
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			for len(raw) > 0 {
				f, rest, err := wire.DecodeFrame(raw)
				if err != nil {
					t.Fatal(err)
				}
				if f.Kind == wire.KindLabels {
					labels = append(labels, f.Labels...)
				}
				raw = rest
			}
		} else {
			if isFrameMedia(ct) {
				t.Fatalf("CT=%s Accept=%s: response Content-Type %q, want JSON", tc.contentType, tc.accept, ct)
			}
			var ar api.AssignResponse
			if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
				t.Fatal(err)
			}
			labels = ar.Labels
		}
		resp.Body.Close()
		if len(labels) != len(probes) {
			t.Fatalf("CT=%s Accept=%s: %d labels, want %d", tc.contentType, tc.accept, len(labels), len(probes))
		}
	}
}

// TestCrossCodecEquivalenceRing runs the equivalence suite through a
// shard that does NOT own the dataset, so every request crosses the
// relay: buffered fit/assign bodies in both codecs and both stream
// codecs piped unbuffered.
func TestCrossCodecEquivalenceRing(t *testing.T) {
	h := startRing(t, 3, nil)
	e := testCorpus(t, 1)[0]
	h.uploadCSV(0, e.name, e.csv)

	via := -1
	for i, rt := range h.routers {
		if !rt.Owns(e.name) {
			via = i
			break
		}
	}
	if via == -1 {
		t.Fatal("every shard claims ownership")
	}
	c := h.clients[via]
	req := api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}

	base, err := c.Assign(api.AssignRequest{FitRequest: req, Points: e.probes})
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, labels []int32) {
		t.Helper()
		if len(labels) != len(base.Labels) {
			t.Fatalf("%s: %d labels, want %d", name, len(labels), len(base.Labels))
		}
		for i := range labels {
			if labels[i] != base.Labels[i] {
				t.Fatalf("%s: label %d = %d, reference %d", name, i, labels[i], base.Labels[i])
			}
		}
	}

	fwdBefore := h.routers[via].forwarded.Load()
	fb, err := c.AssignFrames(req, e.probes, false)
	if err != nil {
		t.Fatal(err)
	}
	check("frames batch via non-owner", fb.Labels)

	sr, err := c.AssignStreamFrames(req, bytes.NewReader(framePoints(t, e.probes, false)))
	if err != nil {
		t.Fatal(err)
	}
	check("frames stream via non-owner", drainStream(t, sr))

	sr, err = c.AssignStream(req, bytes.NewReader(ndjsonPoints(t, e.probes)))
	if err != nil {
		t.Fatal(err)
	}
	check("ndjson stream via non-owner", drainStream(t, sr))

	if fwdAfter := h.routers[via].forwarded.Load(); fwdAfter < fwdBefore+3 {
		t.Errorf("non-owner forwarded %d request(s) during the suite, want >= 3", fwdAfter-fwdBefore)
	}

	// A frame-codec upload through the non-owner must relay with its
	// codec intact and serve identically afterwards.
	d := data.SSet(2, 300, 9)
	if _, err := c.PutDataset("ring-frame", "frame", framePoints(t, d.Points.Rows(), false)); err != nil {
		t.Fatal(err)
	}
	req2 := api.FitRequest{
		Dataset: "ring-frame", Algorithm: "Ex-DPC",
		Params: api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}
	jb, err := c.Assign(api.AssignRequest{FitRequest: req2, Points: d.Points.Rows()[:20]})
	if err != nil {
		t.Fatal(err)
	}
	fb2, err := c.AssignFrames(req2, d.Points.Rows()[:20], false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jb.Labels {
		if jb.Labels[i] != fb2.Labels[i] {
			t.Fatalf("frame-uploaded dataset: label %d differs across codecs (%d vs %d)", i, jb.Labels[i], fb2.Labels[i])
		}
	}
}

// TestStreamConcurrencyCap: streams over Options.MaxStreams are refused
// with HTTP 429 before any stream bytes, and the slot frees when the
// stream ends.
func TestStreamConcurrencyCap(t *testing.T) {
	svc := New(Options{Workers: 1, StreamChunk: 1, MaxStreams: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n9,9\n")); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{Dataset: "tiny", Algorithm: "Ex-DPC", Params: api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}}

	// Hold one stream open: write a point, read its label record, leave
	// the request body unfinished so the slot stays claimed.
	pr, pw := io.Pipe()
	go pw.Write([]byte("[1,2]\n"))
	sr1, err := c.AssignStream(req, pr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sr1.Next(); err != nil {
		t.Fatalf("first stream's first chunk: %v", err)
	}

	// The second concurrent stream must be refused up front.
	_, err = c.AssignStream(req, strings.NewReader("[1,2]\n"))
	var se *api.APIError
	if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests {
		t.Fatalf("second stream: err = %v, want HTTP 429", err)
	}

	// Finish the first stream; its slot must become reusable.
	pw.Close()
	if _, _, err := sr1.Collect(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sr, err := c.AssignStream(req, strings.NewReader("[1,2]\n"))
		if err == nil {
			if _, _, err := sr.Collect(); err != nil {
				t.Fatal(err)
			}
			break
		}
		if !errors.As(err, &se) || se.Status != http.StatusTooManyRequests || time.Now().After(deadline) {
			t.Fatalf("stream after release: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamPointCap: a stream over Options.MaxStreamPoints fails with a
// terminal error record — in the stream's codec — after the chunks
// already labeled, never a silent cutoff.
func TestStreamPointCap(t *testing.T) {
	svc := New(Options{Workers: 1, StreamChunk: 4, MaxStreamPoints: 10})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n9,9\n")); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{Dataset: "tiny", Algorithm: "Ex-DPC", Params: api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}}
	pts := make([][]float64, 20)
	for i := range pts {
		pts[i] = []float64{1, 2}
	}

	open := map[string]func() (*StreamReader, error){
		"ndjson": func() (*StreamReader, error) {
			return c.AssignStream(req, bytes.NewReader(ndjsonPoints(t, pts)))
		},
		"frames": func() (*StreamReader, error) {
			return c.AssignStreamFrames(req, bytes.NewReader(framePoints(t, pts, false)))
		},
	}
	for name, start := range open {
		sr, err := start()
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		labeled := 0
		for {
			chunk, err := sr.Next()
			if err == nil {
				labeled += len(chunk)
				continue
			}
			if err == io.EOF {
				t.Errorf("%s: stream over the point cap ended in success", name)
				break
			}
			if !strings.Contains(err.Error(), "10-point limit") {
				t.Errorf("%s: error %q does not mention the point cap", name, err)
			}
			break
		}
		// Two full chunks of 4 flush before point 11 trips the cap.
		if labeled != 8 {
			t.Errorf("%s: %d labels before the cap error, want 8", name, labeled)
		}
		sr.Close()
	}
}

// TestStreamReaderTruncatedBinary: the satellite fix — a binary label
// stream cut off before its summary frame, at or inside a frame
// boundary, is an error exactly like NDJSON truncation.
func TestStreamReaderTruncatedBinary(t *testing.T) {
	for _, torn := range []bool{false, true} {
		name := "clean boundary"
		if torn {
			name = "torn frame"
		}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", wire.ContentType)
			_, _ = w.Write(wire.AppendLabels(nil, []int32{0, 1}))
			if torn {
				sum := wire.AppendSummary(nil, wire.Summary{Points: 2, Chunks: 1})
				_, _ = w.Write(sum[:len(sum)-3])
			}
			// No full summary, no error frame: the connection just ends.
		}))
		c := NewClient(ts.URL, testClientOptions())
		sr, err := c.AssignStreamFrames(api.FitRequest{Dataset: "x", Algorithm: "Ex-DPC"}, strings.NewReader(""))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := sr.Next(); err != nil {
			t.Fatalf("%s: first chunk: %v", name, err)
		}
		_, err = sr.Next()
		if err == nil || err == io.EOF || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("%s: err = %v, want truncation error", name, err)
		}
		if _, ok := sr.Summary(); ok {
			t.Errorf("%s: truncated stream produced a summary", name)
		}
		sr.Close()
		ts.Close()
	}
}

// TestRelayBinaryTerminalErrorFrame: when the owner dies mid-way through
// a binary stream, the relay appends a terminal error frame only at a
// frame boundary, and the client reads it as the stream's failure.
func TestRelayBinaryTerminalErrorFrame(t *testing.T) {
	h := startRing(t, 3, nil)
	e := testCorpus(t, 1)[0]
	h.uploadCSV(0, e.name, e.csv)

	owner, via := -1, -1
	for i, rt := range h.routers {
		if rt.Owns(e.name) {
			owner = i
		} else {
			via = i
		}
	}
	if owner == -1 || via == -1 {
		t.Fatal("could not split owner from non-owner")
	}
	req := api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}
	// Fit once so the stream starts answering immediately.
	if _, err := h.clients[via].Fit(req); err != nil {
		t.Fatal(err)
	}

	// Enough points to flush the owner's first 2048-point chunk, with the
	// request body then held open so the stream is alive when the owner
	// dies.
	burst := make([][]float64, 3000)
	for i := range burst {
		burst[i] = e.probes[i%len(e.probes)]
	}
	pr, pw := io.Pipe()
	go pw.Write(framePoints(t, burst, false))
	sr, err := h.clients[via].AssignStreamFrames(req, pr)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first chunk through relay: %v", err)
	}
	// Kill the owner mid-stream; the relay must surface the failure as a
	// terminal record, not a silent end.
	h.servers[owner].CloseClientConnections()
	pw.Close()
	for {
		_, err := sr.Next()
		if err == nil {
			continue
		}
		if err == io.EOF {
			t.Fatal("stream whose owner died ended in success")
		}
		if !strings.Contains(err.Error(), "failed mid-stream") && !strings.Contains(err.Error(), "truncated") {
			t.Errorf("owner death surfaced as %q, want mid-stream failure or truncation", err)
		}
		break
	}
}

var _ = fmt.Sprintf // keep fmt imported if cases shift
