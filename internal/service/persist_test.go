package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/data"
	"repro/internal/persist"
)

func openStore(t *testing.T, dir string) *persist.Store {
	t.Helper()
	st, err := persist.Open(dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRestartServesWithoutRefit is the acceptance test for the
// persistence layer: a new Service over the data dir of a previous one
// must serve every previously fitted model with zero fit passes, and its
// assignments must be byte-identical to the original's.
func TestRestartServesWithoutRefit(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 600)
	queries := d.Points.Rows()[:128]
	algs := []string{"Ex-DPC", "Approx-DPC", "S-Approx-DPC"}

	s1 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s1.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	want := make(map[string][]int32)
	for _, alg := range algs {
		labels, _, err := s1.Assign("s2", alg, p, queries)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		want[alg] = labels
	}

	// "Restart": a brand-new Service (fresh registry, fresh cache) over
	// the same snapshot directory, with a different worker setting to
	// prove thread count is not baked into the snapshots.
	s2 := New(Options{Workers: 4, Store: openStore(t, dir)})
	st := s2.Stats()
	if st.DatasetsRestored != 1 || st.ModelsRestored != len(algs) {
		t.Fatalf("restored %d datasets / %d models, want 1/%d", st.DatasetsRestored, st.ModelsRestored, len(algs))
	}
	if got, ok := s2.Dataset("s2"); !ok || got.Fingerprint() != d.Points.Fingerprint() {
		t.Fatal("dataset not restored bit-identically")
	}
	for _, alg := range algs {
		labels, fr, err := s2.Assign("s2", alg, p, queries)
		if err != nil {
			t.Fatalf("%s after restart: %v", alg, err)
		}
		if !fr.CacheHit {
			t.Errorf("%s after restart missed the cache", alg)
		}
		for i := range labels {
			if labels[i] != want[alg][i] {
				t.Fatalf("%s label %d = %d, want %d (restart changed assignments)", alg, i, labels[i], want[alg][i])
			}
		}
	}
	st = s2.Stats()
	if st.CacheMisses != 0 {
		t.Errorf("restarted service performed %d fits, want 0", st.CacheMisses)
	}
	if st.CacheHits != int64(len(algs)) {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, len(algs))
	}
}

// TestRestartEndToEndHTTP drives the restart through the real JSON API:
// upload a CSV, fit, restart, and check /v1/assign reports a cache hit
// and /v1/stats reports zero fit passes.
func TestRestartEndToEndHTTP(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 500)

	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	body := func(v any) *bytes.Reader {
		raw, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return bytes.NewReader(raw)
	}
	fitReq := map[string]any{
		"dataset": "s2", "algorithm": "Ex-DPC",
		"params": map[string]any{"dcut": p.DCut, "rho_min": p.RhoMin, "delta_min": p.DeltaMin},
	}

	srv1 := httptest.NewServer(NewHandler(New(Options{Workers: 2, Store: openStore(t, dir)})))
	req, _ := http.NewRequest(http.MethodPut, srv1.URL+"/v1/datasets/s2", bytes.NewReader(csv.Bytes()))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s", resp.Status)
	}
	resp, err = http.Post(srv1.URL+"/v1/fit", "application/json", body(fitReq))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fit: %s", resp.Status)
	}
	srv1.Close()

	srv2 := httptest.NewServer(NewHandler(New(Options{Workers: 2, Store: openStore(t, dir)})))
	defer srv2.Close()
	assignReq := map[string]any{
		"dataset": "s2", "algorithm": "Ex-DPC",
		"params": fitReq["params"],
		"points": d.Points.Rows()[:10],
	}
	resp, err = http.Post(srv2.URL+"/v1/assign", "application/json", body(assignReq))
	if err != nil {
		t.Fatal(err)
	}
	var ar api.AssignResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ar.CacheHit {
		t.Error("assign after restart was not a cache hit")
	}
	if len(ar.Labels) != 10 {
		t.Errorf("got %d labels", len(ar.Labels))
	}
	resp, err = http.Get(srv2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.CacheMisses != 0 || st.ModelsRestored != 1 || st.DatasetsRestored != 1 {
		t.Errorf("stats after restart: %+v, want 0 misses and 1/1 restored", st)
	}
}

// TestRestartRecoversFromCorruptSnapshot damages one model snapshot
// between runs: the restarted service must come up, serve the intact
// model from cache, and transparently refit the damaged one.
func TestRestartRecoversFromCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 500)

	s1 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s1.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"Ex-DPC", "Approx-DPC"} {
		if _, err := s1.Fit("s2", alg, p); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(dir, "models", "*.snap"))
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 model snapshots, got %d (%v)", len(files), err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var logged []string
	store, err := persist.Open(dir, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{Workers: 2, Store: store})
	st := s2.Stats()
	if st.ModelsRestored != 1 {
		t.Fatalf("restored %d models past the corrupt one, want 1 (logs: %v)", st.ModelsRestored, logged)
	}
	found := false
	for _, l := range logged {
		found = found || strings.Contains(l, "skipping model")
	}
	if !found {
		t.Errorf("corruption was not logged: %v", logged)
	}
	// Both algorithms still serve; one refit total.
	for _, alg := range []string{"Ex-DPC", "Approx-DPC"} {
		if _, err := s2.Fit("s2", alg, p); err != nil {
			t.Fatalf("%s after corrupt restart: %v", alg, err)
		}
	}
	if st := s2.Stats(); st.CacheMisses != 1 {
		t.Errorf("%d refits after losing one snapshot, want exactly 1", st.CacheMisses)
	}
	// The refit re-persisted the lost model: a third run restores both.
	s3 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if st := s3.Stats(); st.ModelsRestored != 2 {
		t.Errorf("self-heal failed: third run restored %d models, want 2", st.ModelsRestored)
	}
}

// TestReuploadReplacesSnapshots pins the disk half of the version purge:
// replacing a dataset must leave only the new version (and no stale
// models) for the next restart.
func TestReuploadReplacesSnapshots(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 400)

	s1 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s1.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Fit("s2", "Ex-DPC", p); err != nil {
		t.Fatal(err)
	}
	d2 := data.SSet(2, 450, 9)
	if _, err := s1.PutDataset("s2", d2.Points); err != nil {
		t.Fatal(err)
	}

	s2 := New(Options{Workers: 2, Store: openStore(t, dir)})
	st := s2.Stats()
	if st.DatasetsRestored != 1 || st.ModelsRestored != 0 {
		t.Fatalf("restored %d/%d after re-upload, want 1 dataset and 0 models", st.DatasetsRestored, st.ModelsRestored)
	}
	if got, ok := s2.Dataset("s2"); !ok || got.Fingerprint() != d2.Points.Fingerprint() {
		t.Error("restart restored the replaced dataset version")
	}
	// The restored version must keep counting from 2, so a fresh upload
	// still invalidates restored state downstream.
	fr, err := s2.Fit("s2", "Ex-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if fr.CacheHit || fr.Model.N() != d2.Points.N {
		t.Errorf("fit after restart: hit=%v n=%d, want refit on %d points", fr.CacheHit, fr.Model.N(), d2.Points.N)
	}
}

// TestInMemoryServiceUnchanged pins the default: no Store, no disk IO,
// Stats report nothing restored.
func TestInMemoryServiceUnchanged(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 300)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.DatasetsRestored != 0 || st.ModelsRestored != 0 || st.PersistErrors != 0 {
		t.Errorf("in-memory service reports persistence activity: %+v", st)
	}
}

// TestIdenticalReuploadKeepsModels pins the idempotent-upload rule: a
// bit-identical re-PUT of a dataset must not bump the version, purge the
// cache, or touch the snapshots — on either the live service or a
// restart.
func TestIdenticalReuploadKeepsModels(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 400)
	s := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		t.Fatal(err)
	}
	// Same bits under a fresh Dataset value (provisioning scripts re-read
	// the file; pointer identity must not matter).
	copyDS := *d.Points
	copyDS.Coords = append([]float64(nil), d.Points.Coords...)
	if _, err := s.PutDataset("s2", &copyDS); err != nil {
		t.Fatal(err)
	}
	fr, err := s.Fit("s2", "Ex-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.CacheHit {
		t.Error("identical re-upload purged the cached model")
	}
	s2 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if st := s2.Stats(); st.ModelsRestored != 1 {
		t.Errorf("identical re-upload broke snapshots: restored %d models, want 1", st.ModelsRestored)
	}
}

// TestRestoreRespectsCacheCapacity: with more model snapshots than cache
// slots, only the most recently persisted models are restored and Stats
// report exactly what is resident — no phantom evictions.
func TestRestoreRespectsCacheCapacity(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 400)
	s1 := New(Options{Workers: 2, CacheSize: 8, Store: openStore(t, dir)})
	if _, err := s1.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	algs := []string{"Scan", "Ex-DPC", "Approx-DPC", "S-Approx-DPC"}
	for _, alg := range algs {
		if _, err := s1.Fit("s2", alg, p); err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
	}

	s2 := New(Options{Workers: 2, CacheSize: 2, Store: openStore(t, dir)})
	st := s2.Stats()
	if st.ModelsRestored != 2 || st.ModelsCached != 2 || st.Evictions != 0 {
		t.Fatalf("restored=%d cached=%d evictions=%d, want 2/2/0", st.ModelsRestored, st.ModelsCached, st.Evictions)
	}
	// The two most recently persisted algorithms are the warm ones.
	for _, alg := range algs[2:] {
		if fr, err := s2.Fit("s2", alg, p); err != nil || !fr.CacheHit {
			t.Errorf("%s: hit=%v err=%v, want warm", alg, fr.CacheHit, err)
		}
	}
	if st := s2.Stats(); st.CacheMisses != 0 {
		t.Errorf("warm models refit: %d misses", st.CacheMisses)
	}
}

// TestOverlongNamePersistErrorDegrades: a dataset name the snapshot
// codec cannot round-trip must not be written (it could never restore);
// the service keeps serving it in memory and counts the persist error.
func TestOverlongNamePersistErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 300)
	s := New(Options{Workers: 2, Store: openStore(t, dir)})
	long := strings.Repeat("x", 5000)
	if _, err := s.PutDataset(long, d.Points); err != nil {
		t.Fatalf("in-memory registration must still work: %v", err)
	}
	if _, err := s.Fit(long, "Ex-DPC", p); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PersistErrors == 0 {
		t.Error("unpersistable name was not counted")
	}
	if s2 := New(Options{Workers: 2, Store: openStore(t, dir)}); s2.Stats().DatasetsRestored != 0 {
		t.Error("an unrestorable snapshot was written anyway")
	}
}

// TestIdenticalReuploadHealsDamagedSnapshot: when the dataset snapshot
// is lost while the service runs (wiped disk, failed original save), an
// idempotent re-upload of the same points must rewrite it so the next
// restart warm-loads again.
func TestIdenticalReuploadHealsDamagedSnapshot(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 400)
	s := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		t.Fatal(err)
	}
	paths, _ := filepath.Glob(filepath.Join(dir, "datasets", "*.snap"))
	if len(paths) != 1 {
		t.Fatal("want one dataset snapshot")
	}
	if err := os.Remove(paths[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.PersistErrors != 0 {
		t.Errorf("healing re-upload counted errors: %+v", st)
	}
	s2 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if st := s2.Stats(); st.DatasetsRestored != 1 || st.ModelsRestored != 1 {
		t.Errorf("after heal restored %d/%d, want 1/1", st.DatasetsRestored, st.ModelsRestored)
	}
}
