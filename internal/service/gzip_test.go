package service

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/api"
	"repro/internal/data"
	"repro/internal/wire"
)

// gzipStreamFixture boots a single-node server with one dataset and
// returns the fit request plus probe points and their expected labels.
func gzipStreamFixture(t *testing.T) (*httptest.Server, api.FitRequest, [][]float64, []int32) {
	t.Helper()
	svc := New(Options{Workers: 2, StreamChunk: 16})
	ts := httptest.NewServer(NewHandler(svc))
	t.Cleanup(ts.Close)

	d := data.SSet(2, 600, 1)
	c := NewClient(ts.URL, testClientOptions())
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutDataset("s2", "csv", csv.Bytes()); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{
		Dataset:   "s2",
		Algorithm: "Ex-DPC",
		Params:    api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}
	probes := d.Points.Rows()[:90]
	batch, err := c.Assign(api.AssignRequest{FitRequest: req, Points: probes})
	if err != nil {
		t.Fatal(err)
	}
	return ts, req, probes, batch.Labels
}

// drainStream reads every label record and returns the flattened labels
// and the summary.
func drainGzipStream(t *testing.T, sr *StreamReader) ([]int32, api.StreamSummary) {
	t.Helper()
	var labels []int32
	for {
		part, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		labels = append(labels, part...)
	}
	sum, ok := sr.Summary()
	if !ok {
		t.Fatal("stream ended without a summary")
	}
	sr.Close()
	return labels, sum
}

// TestGzipStreamClient: a client with GzipStream compresses the request
// body and asks for a compressed response; labels must equal the batch
// endpoint's, in both NDJSON and binary-frame modes.
func TestGzipStreamClient(t *testing.T) {
	ts, req, probes, want := gzipStreamFixture(t)

	gz := NewClient(ts.URL, ClientOptions{Retries: 1, GzipStream: true})
	sr, err := gz.AssignStream(req, bytes.NewReader(ndjsonPoints(t, probes)))
	if err != nil {
		t.Fatal(err)
	}
	labels, sum := drainGzipStream(t, sr)
	labelsEqual(t, "gzip ndjson stream", labels, want)
	if sum.Points != int64(len(probes)) {
		t.Errorf("summary points = %d, want %d", sum.Points, len(probes))
	}

	sr, err = gz.AssignStreamFrames(req, bytes.NewReader(wire.AppendPointsRows(nil, probes, false)))
	if err != nil {
		t.Fatal(err)
	}
	labels, sum = drainGzipStream(t, sr)
	labelsEqual(t, "gzip frame stream", labels, want)
	if sum.Points != int64(len(probes)) {
		t.Errorf("frame summary points = %d, want %d", sum.Points, len(probes))
	}
}

// TestGzipStreamRawHTTP drives the endpoint without the client wrapper
// to pin the protocol itself: Content-Encoding gzip on the request is
// decompressed, and the response is compressed only when the client's
// own Accept-Encoding asks for it.
func TestGzipStreamRawHTTP(t *testing.T) {
	ts, req, probes, want := gzipStreamFixture(t)

	body := wire.AppendHeader(nil, fitToHeader(req))
	body = wire.AppendPointsRows(body, probes, false)
	var zbody bytes.Buffer
	zw := gzip.NewWriter(&zbody)
	if _, err := zw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	// The transport must not inject its own Accept-Encoding (it would
	// transparently decompress and hide the header we assert on).
	do := func(acceptEncoding string) *http.Response {
		t.Helper()
		hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/assign/stream", bytes.NewReader(zbody.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", wire.ContentType)
		hr.Header.Set("Content-Encoding", "gzip")
		if acceptEncoding != "" {
			hr.Header.Set("Accept-Encoding", acceptEncoding)
		}
		tr := &http.Transport{DisableCompression: true}
		resp, err := tr.RoundTrip(hr)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
		}
		return resp
	}

	decodeLabels := func(raw []byte) []int32 {
		t.Helper()
		var labels []int32
		sawSummary := false
		for len(raw) > 0 {
			f, rest, err := wire.DecodeFrame(raw)
			if err != nil {
				t.Fatal(err)
			}
			switch f.Kind {
			case wire.KindLabels:
				labels = append(labels, f.Labels...)
			case wire.KindSummary:
				sawSummary = true
			}
			raw = rest
		}
		if !sawSummary {
			t.Fatal("stream ended without a summary frame")
		}
		return labels
	}

	// Plain Accept-Encoding: identity response for a gzip request.
	resp := do("")
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("response Content-Encoding %q without Accept-Encoding", enc)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, "gzip-request identity-response", decodeLabels(raw), want)

	// Accept-Encoding gzip: the response must be compressed.
	resp = do("gzip")
	if enc := resp.Header.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("response Content-Encoding %q, want gzip", enc)
	}
	zr, err := gzip.NewReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	raw, err = io.ReadAll(zr)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, "gzip-request gzip-response", decodeLabels(raw), want)
}

// TestGzipStreamThroughRing: a compressed stream sent to a non-owner
// shard must be relayed compressed to the owner and the compressed
// response passed back — same labels as an uncompressed stream to the
// owner, zero refits beyond the one fit.
func TestGzipStreamThroughRing(t *testing.T) {
	corpus := testCorpus(t, 3)
	h := startRing(t, 3, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
	}
	e := corpus[0]
	_, stranger := ownerAndStranger(t, h, e.name)
	req := api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}

	plain := NewClient(h.addrs[stranger], testClientOptions())
	sr, err := plain.AssignStream(req, bytes.NewReader(ndjsonPoints(t, e.probes)))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := drainGzipStream(t, sr)

	opts := testClientOptions()
	opts.GzipStream = true
	gz := NewClient(h.addrs[stranger], opts)

	sr, err = gz.AssignStream(req, bytes.NewReader(ndjsonPoints(t, e.probes)))
	if err != nil {
		t.Fatal(err)
	}
	labels, sum := drainGzipStream(t, sr)
	labelsEqual(t, "gzip ndjson via ring", labels, want)
	if sum.Points != int64(len(e.probes)) || !sum.CacheHit {
		t.Errorf("summary = %+v, want %d points from cache", sum, len(e.probes))
	}

	sr, err = gz.AssignStreamFrames(req, bytes.NewReader(wire.AppendPointsRows(nil, e.probes, false)))
	if err != nil {
		t.Fatal(err)
	}
	labels, _ = drainGzipStream(t, sr)
	labelsEqual(t, "gzip frames via ring", labels, want)

	// One fit total: the relay never refits, compressed or not.
	misses := int64(0)
	for _, svc := range h.svcs {
		misses += svc.Stats().CacheMisses
	}
	if misses != 1 {
		t.Errorf("%d cache misses across the ring, want 1", misses)
	}
}
