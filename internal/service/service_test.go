package service

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// fixture returns a small bundled dataset and usable params for it.
func fixture(t *testing.T, n int) (*data.Dataset, core.Params) {
	t.Helper()
	d := data.SSet(2, n, 1)
	return d, core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: 1}
}

func TestRegistry(t *testing.T) {
	s := New(Options{Workers: 2})
	d, _ := fixture(t, 500)

	if _, err := s.PutDataset("", d.Points); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.PutDataset("empty", &geom.Dataset{}); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := s.PutDataset("nan", geom.NewDataset([]float64{1, math.NaN()}, 2)); err == nil {
		t.Error("NaN dataset accepted")
	}

	info, err := s.PutDataset("s2", d.Points)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != d.Points.N || info.Dim != 2 {
		t.Errorf("info = %+v", info)
	}
	if got, ok := s.Dataset("s2"); !ok || got != d.Points {
		t.Error("Dataset lookup failed")
	}
	if _, ok := s.Dataset("nope"); ok {
		t.Error("unknown dataset found")
	}
	list := s.Datasets()
	if len(list) != 1 || list[0].Name != "s2" {
		t.Errorf("Datasets() = %+v", list)
	}
}

func TestFitCachesModel(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	d, p := fixture(t, 800)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}

	fr1, err := s.Fit("s2", "Approx-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if fr1.CacheHit {
		t.Error("first fit reported a cache hit")
	}
	fr2, err := s.Fit("s2", "Approx-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if !fr2.CacheHit || fr2.Model != fr1.Model {
		t.Error("second fit did not reuse the cached model")
	}

	// A defaulted Epsilon must hit the same cache slot as an explicit 1.
	pe := p
	pe.Epsilon = 1
	if fr, err := s.Fit("s2", "Approx-DPC", pe); err != nil || !fr.CacheHit {
		t.Errorf("epsilon normalization broke the cache key: hit=%v err=%v", fr.CacheHit, err)
	}
	// Workers must not be part of the identity either.
	pw := p
	pw.Workers = 7
	if fr, err := s.Fit("s2", "Approx-DPC", pw); err != nil || !fr.CacheHit {
		t.Errorf("workers leaked into the cache key: hit=%v err=%v", fr.CacheHit, err)
	}
	// Seed is ignored by the deterministic algorithms, so it must not
	// split the cache for them...
	ps := p
	ps.Seed = 42
	if fr, err := s.Fit("s2", "Approx-DPC", ps); err != nil || !fr.CacheHit {
		t.Errorf("seed split the cache for a deterministic algorithm: hit=%v err=%v", fr.CacheHit, err)
	}

	// ...but it is identity for the randomized substrates.
	if fr, err := s.Fit("s2", "LSH-DDP", p); err != nil || fr.CacheHit {
		t.Fatalf("first LSH-DDP fit: hit=%v err=%v", fr.CacheHit, err)
	}
	ps2 := p
	ps2.Seed = 42
	if fr, err := s.Fit("s2", "LSH-DDP", ps2); err != nil || fr.CacheHit {
		t.Errorf("different LSH-DDP seed served from cache: hit=%v err=%v", fr.CacheHit, err)
	}

	// Different params or algorithm are distinct models.
	p2 := p
	p2.DCut *= 1.5
	if fr, err := s.Fit("s2", "Approx-DPC", p2); err != nil || fr.CacheHit {
		t.Errorf("distinct params served from cache: hit=%v err=%v", fr.CacheHit, err)
	}
	if fr, err := s.Fit("s2", "Ex-DPC", p); err != nil || fr.CacheHit {
		t.Errorf("distinct algorithm served from cache: hit=%v err=%v", fr.CacheHit, err)
	}

	st := s.Stats()
	if st.CacheHits != 4 || st.CacheMisses != 5 {
		t.Errorf("stats = %+v, want 4 hits / 5 misses", st)
	}
	if st.HitRate != 4.0/9.0 {
		t.Errorf("hit rate = %v, want 4/9", st.HitRate)
	}
}

func TestFitErrors(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 300)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit("nope", "Approx-DPC", p); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := s.Fit("s2", "nope", p); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad := p
	bad.DCut = -1
	if _, err := s.Fit("s2", "Approx-DPC", bad); err == nil {
		t.Error("invalid params accepted")
	}
	if st := s.Stats(); st.CacheMisses != 0 {
		t.Errorf("failed requests touched the cache: %+v", st)
	}
}

// TestSingleFlight fires many concurrent fit requests for one key and
// checks exactly one ClusterDataset pass happened.
func TestSingleFlight(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 4})
	d, p := fixture(t, 2000)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	const g = 16
	models := make([]*core.Model, g)
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fr, err := s.Fit("s2", "Ex-DPC", p)
			if err != nil {
				t.Errorf("fit %d: %v", i, err)
				return
			}
			models[i] = fr.Model
		}(i)
	}
	wg.Wait()
	for i := 1; i < g; i++ {
		if models[i] != models[0] {
			t.Fatalf("request %d got a different model instance", i)
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("%d fits performed, want 1 (single-flight)", st.CacheMisses)
	}
	if st.CacheHits != g-1 {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, g-1)
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 2})
	d, p := fixture(t, 400)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	algs := []string{"Scan", "Ex-DPC", "Approx-DPC"}
	for _, a := range algs {
		if _, err := s.Fit("s2", a, p); err != nil {
			t.Fatalf("%s: %v", a, err)
		}
	}
	st := s.Stats()
	if st.ModelsCached != 2 || st.Evictions != 1 {
		t.Errorf("cached=%d evictions=%d, want 2/1", st.ModelsCached, st.Evictions)
	}
	// Scan was least recently used and must have been evicted; Ex-DPC
	// must still be resident.
	if fr, err := s.Fit("s2", "Ex-DPC", p); err != nil || !fr.CacheHit {
		t.Errorf("Ex-DPC evicted too early: hit=%v err=%v", fr.CacheHit, err)
	}
	if fr, err := s.Fit("s2", "Scan", p); err != nil || fr.CacheHit {
		t.Errorf("Scan not evicted: hit=%v err=%v", fr.CacheHit, err)
	}
}

func TestReuploadPurgesModels(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 400)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fit("s2", "Approx-DPC", p); err != nil {
		t.Fatal(err)
	}
	// Replace the dataset under the same name: the old model must not be
	// served again.
	d2 := data.SSet(2, 500, 9)
	if _, err := s.PutDataset("s2", d2.Points); err != nil {
		t.Fatal(err)
	}
	fr, err := s.Fit("s2", "Approx-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if fr.CacheHit {
		t.Error("model fitted on replaced dataset served from cache")
	}
	if fr.Model.N() != d2.Points.N {
		t.Errorf("model fitted on stale dataset: n=%d want %d", fr.Model.N(), d2.Points.N)
	}
	if st := s.Stats(); st.ModelsCached != 1 {
		t.Errorf("stale models still cached: %+v", st)
	}
}

// TestPurgeStaleKeepsCurrentVersion drives the cache directly: a sweep
// must drop old-version entries for the named dataset while keeping the
// current version and other datasets untouched.
func TestPurgeStaleKeepsCurrentVersion(t *testing.T) {
	c := newModelCache(8)
	mk := func(ds string, v uint64) modelKey { return modelKey{dataset: ds, version: v, algorithm: "a"} }
	fit := func() (*core.Model, error) { return &core.Model{}, nil }
	for _, k := range []modelKey{mk("x", 1), mk("x", 2), mk("y", 1)} {
		if _, _, err := c.getOrFit(k, true, fit); err != nil {
			t.Fatal(err)
		}
	}
	c.purgeStale("x", 2)
	for k, want := range map[modelKey]bool{mk("x", 1): false, mk("x", 2): true, mk("y", 1): true} {
		c.mu.Lock()
		_, ok := c.entries[k]
		c.mu.Unlock()
		if ok != want {
			t.Errorf("entry %+v present=%v, want %v", k, ok, want)
		}
	}
}

// TestFitDuringReuploadSweepsStaleModel pins the Fit/PutDataset race
// repair: a model fitted against a version that was replaced mid-fit is
// swept from the cache instead of lingering unreachable.
func TestFitDuringReuploadSweepsStaleModel(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 400)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	// Simulate "re-upload raced ahead of our fit" by bumping the version
	// after Fit has read it: fit normally, then replay the sweep path by
	// re-uploading and fitting again — the first model must be gone.
	if _, err := s.Fit("s2", "Approx-DPC", p); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutDataset("s2", data.SSet(2, 300, 5).Points); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ModelsCached != 0 {
		t.Fatalf("stale model survived re-upload: %+v", st)
	}
	fr, err := s.Fit("s2", "Approx-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if fr.CacheHit || fr.Model.N() != 300 {
		t.Errorf("fit after re-upload: hit=%v n=%d", fr.CacheHit, fr.Model.N())
	}
	if st := s.Stats(); st.ModelsCached != 1 {
		t.Errorf("models cached = %d, want 1", st.ModelsCached)
	}
}

// TestCacheFailedFitRetries drives the cache directly with a failing fit
// function: the error must not be cached.
func TestCacheFailedFitRetries(t *testing.T) {
	c := newModelCache(2)
	key := modelKey{dataset: "x", version: 1, algorithm: "a"}
	boom := errors.New("boom")
	calls := 0
	fit := func() (*core.Model, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return &core.Model{}, nil
	}
	if _, _, err := c.getOrFit(key, true, fit); !errors.Is(err, boom) {
		t.Fatalf("first call: %v", err)
	}
	m, hit, err := c.getOrFit(key, true, fit)
	if err != nil || hit || m == nil {
		t.Fatalf("retry after failure: m=%v hit=%v err=%v", m, hit, err)
	}
	if calls != 2 {
		t.Errorf("fit called %d times, want 2", calls)
	}
}

func TestAssignThroughService(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 600)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	pts := d.Points.Rows()[:100]
	labels, fr, err := s.Assign("s2", "Approx-DPC", p, pts)
	if err != nil {
		t.Fatal(err)
	}
	if fr.CacheHit {
		t.Error("first assign hit the cache")
	}
	want := fr.Model.Result().Labels
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("label %d = %d, want fitted %d", i, labels[i], want[i])
		}
	}
	if _, fr2, err := s.Assign("s2", "Approx-DPC", p, pts); err != nil || !fr2.CacheHit {
		t.Errorf("second assign missed the cache: hit=%v err=%v", fr2.CacheHit, err)
	}
	st := s.Stats()
	if st.AssignRequests != 2 || st.PointsAssigned != 200 {
		t.Errorf("assign counters wrong: %+v", st)
	}
}

// TestServiceConcurrentMixedTraffic exercises the whole service under
// -race: concurrent fits of different models, cache-hitting fits, and
// assigns, against two datasets.
func TestServiceConcurrentMixedTraffic(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 3})
	d, p := fixture(t, 500)
	if _, err := s.PutDataset("a", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutDataset("b", data.SSet(3, 500, 2).Points); err != nil {
		t.Fatal(err)
	}
	algs := []string{"Scan", "Ex-DPC", "Approx-DPC", "S-Approx-DPC"}
	pts := d.Points.Rows()[:50]
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "a"
			if i%3 == 0 {
				name = "b"
			}
			if _, _, err := s.Assign(name, algs[i%len(algs)], p, pts); err != nil {
				t.Errorf("assign %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.AssignRequests != 24 || st.ModelsCached > 3 {
		t.Errorf("stats after mixed traffic: %+v", st)
	}
	if st.CacheMisses < 8 {
		// 2 datasets x 4 algorithms with capacity 3 must have refitted.
		t.Errorf("expected refits under eviction pressure: %+v", st)
	}
}

func TestStatsSnapshotShape(t *testing.T) {
	s := New(Options{})
	st := s.Stats()
	if st.CacheCapacity != 8 {
		t.Errorf("default cache capacity = %d, want 8", st.CacheCapacity)
	}
	if st.HitRate != 0 {
		t.Errorf("idle hit rate = %v", st.HitRate)
	}
	if fmt.Sprintf("%v", st) == "" {
		t.Error("unprintable stats")
	}
}
