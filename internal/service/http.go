package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/wire"
)

// ParamsJSON is the wire form of core.Params. Workers is deliberately
// absent: thread count is server policy, not model identity.
type ParamsJSON struct {
	DCut     float64 `json:"dcut"`
	RhoMin   float64 `json:"rho_min"`
	DeltaMin float64 `json:"delta_min"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
}

func (p ParamsJSON) core() core.Params {
	return core.Params{
		DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin,
		Epsilon: p.Epsilon, Seed: p.Seed,
	}
}

// FitRequest is the body of POST /v1/fit and the model half of
// POST /v1/assign.
type FitRequest struct {
	Dataset   string     `json:"dataset"`
	Algorithm string     `json:"algorithm"`
	Params    ParamsJSON `json:"params"`
}

// FitResponse reports the fitted (or cached) model.
type FitResponse struct {
	Dataset   string          `json:"dataset"`
	CacheHit  bool            `json:"cache_hit"`
	Model     core.ModelStats `json:"model"`
	ParamsUse ParamsJSON      `json:"params"`
}

// AssignRequest is the body of POST /v1/assign.
type AssignRequest struct {
	FitRequest
	Points [][]float64 `json:"points"`
}

// AssignResponse carries one label per submitted point.
type AssignResponse struct {
	Labels   []int32 `json:"labels"`
	Clusters int     `json:"clusters"`
	CacheHit bool    `json:"cache_hit"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxUploadBytes caps dataset upload bodies (per request).
const maxUploadBytes = 256 << 20

// maxAssignPoints caps one assign batch; larger workloads should be
// split client-side so a single request cannot monopolize the pool.
const maxAssignPoints = 1 << 20

// maxAssignBytes caps the /v1/assign JSON body: enough for a full
// maxAssignPoints batch at high dimensionality, small enough that a
// handful of concurrent oversized bodies cannot exhaust memory before
// the point-count check fires. A variable only so tests can lower it
// without allocating a 192 MiB request.
var maxAssignBytes int64 = 192 << 20

// maxFitBytes caps the /v1/fit JSON body, whose legitimate size is a
// few hundred bytes.
const maxFitBytes = 1 << 20

// NewHandler wires the dpcd JSON API onto a Service:
//
//	GET  /healthz              liveness probe
//	GET  /v1/datasets          list registered datasets
//	PUT  /v1/datasets/{name}   upload CSV (?format=binary DPC1, ?format=frame) body
//	GET  /v1/datasets/{name}   one dataset's info
//	POST /v1/fit               fit (or fetch cached) model
//	POST /v1/assign            fit if needed, then label a point batch
//	POST /v1/assign/stream     chunked: label an unbounded stream
//	GET  /v1/stats             cache and request counters
//
// /v1/assign and /v1/assign/stream speak JSON/NDJSON by default and the
// binary frame codec under "application/x-dpc-frame", negotiated per
// direction: Content-Type picks the request codec, Accept the response
// codec (absent Accept mirrors the request).
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})

	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		ds, ok := s.Dataset(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
			return
		}
		writeJSON(w, http.StatusOK, DatasetInfo{Name: name, N: ds.N, Dim: ds.Dim})
	})

	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
		var (
			ds  *geom.Dataset
			err error
		)
		format := r.URL.Query().Get("format")
		if format == "" && frameRequest(r) {
			format = "frame"
		}
		switch format {
		case "", "csv":
			ds, err = data.LoadCSV(body)
		case "binary":
			ds, err = data.LoadBinary(body)
		case "frame":
			ds, err = wire.ReadDataset(body)
		default:
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q (want csv, binary, or frame)", format))
			return
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parse upload: %w", err))
			return
		}
		info, err := s.PutDataset(name, ds)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("POST /v1/fit", func(w http.ResponseWriter, r *http.Request) {
		var req FitRequest
		if !decodeJSON(w, r, &req, maxFitBytes) {
			return
		}
		fr, err := s.Fit(req.Dataset, req.Algorithm, req.Params.core())
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeFit(w, req, fr)
	})

	mux.HandleFunc("POST /v1/assign", func(w http.ResponseWriter, r *http.Request) {
		var (
			req AssignRequest
			ok  bool
		)
		if frameRequest(r) {
			req, ok = decodeAssignFrames(w, r)
		} else {
			ok = decodeJSON(w, r, &req, maxAssignBytes)
		}
		if !ok {
			return
		}
		if len(req.Points) > maxAssignPoints {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d points exceeds the %d limit; split the request", len(req.Points), maxAssignPoints))
			return
		}
		labels, fr, err := s.Assign(req.Dataset, req.Algorithm, req.Params.core(), req.Points)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeAssign(w, r, labels, fr)
	})

	mux.HandleFunc("POST /v1/assign/stream", handleAssignStream(s))

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

// decodeAssignFrames reads a frame-encoded batch assign body: one header
// frame then points frames until EOF. Frames are decoded incrementally,
// so memory is bounded by the body cap, and point rows are views into
// each frame's coordinate slab — no per-point copies.
func decodeAssignFrames(w http.ResponseWriter, r *http.Request) (AssignRequest, bool) {
	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, maxAssignBytes), 64<<10)
	h, _, err := wire.ReadHeaderFrame(br)
	if err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
		return AssignRequest{}, false
	}
	req := AssignRequest{FitRequest: headerToFit(h)}
	rd := wire.NewReader(br)
	for {
		f, err := rd.Next()
		if err == io.EOF {
			return req, true
		}
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
			return AssignRequest{}, false
		}
		if f.Kind != wire.KindPoints {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("decode request: body must contain only points frames after the header, got kind %d", f.Kind))
			return AssignRequest{}, false
		}
		for i := 0; i < f.N; i++ {
			req.Points = append(req.Points, f.Row(i))
		}
	}
}

// writeAssign writes the batch response in the negotiated codec: frames
// (labels frame + summary frame) when Accept — or, absent Accept, the
// request codec — names the frame media type, JSON otherwise.
func writeAssign(w http.ResponseWriter, r *http.Request, labels []int32, fr FitResult) {
	if !frameResponse(r) {
		writeJSON(w, http.StatusOK, AssignResponse{
			Labels:   labels,
			Clusters: fr.Model.NumClusters(),
			CacheHit: fr.CacheHit,
		})
		return
	}
	buf := wire.AppendLabels(nil, labels)
	buf = wire.AppendSummary(buf, wire.Summary{
		Points:   int64(len(labels)),
		Chunks:   1,
		Clusters: fr.Model.NumClusters(),
		CacheHit: fr.CacheHit,
	})
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func writeFit(w http.ResponseWriter, req FitRequest, fr FitResult) {
	p := fr.Model.Params()
	writeJSON(w, http.StatusOK, FitResponse{
		Dataset:  req.Dataset,
		CacheHit: fr.CacheHit,
		Model:    fr.Model.Stats(),
		ParamsUse: ParamsJSON{
			DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin,
			Epsilon: p.Epsilon, Seed: p.Seed,
		},
	})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
		return false
	}
	// One JSON object is the whole body: trailing non-whitespace (a second
	// object, stray text) means the client built the request wrong, and
	// silently ignoring it would mask the bug. dec.More() alone misses a
	// trailing close-delimiter, so read one more token: io.EOF is the only
	// clean outcome.
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: trailing data after JSON object"))
		return false
	}
	return true
}

// bodyErrStatus distinguishes "your body is malformed" (400) from "your
// body is too big" (413): MaxBytesReader surfaces the latter as a typed
// error mid-read, and conflating the two hides the actionable fix.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps service errors onto HTTP statuses: missing names are
// 404, everything else (bad params, dimension mismatches) is 400.
func statusFor(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "unknown dataset") || strings.Contains(msg, "unknown algorithm") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
