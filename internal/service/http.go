package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/wire"
)

// coreParams converts the wire parameter shape into core's. Workers is
// left zero: thread count is server policy, applied by normalize.
func coreParams(p api.Params) core.Params {
	return core.Params{
		DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin,
		Epsilon: p.Epsilon, Seed: p.Seed,
	}
}

// wireParams is the inverse of coreParams; Workers does not cross the
// wire.
func wireParams(p core.Params) api.Params {
	return api.Params{
		DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin,
		Epsilon: p.Epsilon, Seed: p.Seed,
	}
}

// maxUploadBytes caps dataset upload bodies (per request).
const maxUploadBytes = 256 << 20

// maxAssignPoints caps one assign batch; larger workloads should be
// split client-side so a single request cannot monopolize the pool.
const maxAssignPoints = 1 << 20

// maxAssignBytes caps the /v1/assign JSON body: enough for a full
// maxAssignPoints batch at high dimensionality, small enough that a
// handful of concurrent oversized bodies cannot exhaust memory before
// the point-count check fires. A variable only so tests can lower it
// without allocating a 192 MiB request.
var maxAssignBytes int64 = 192 << 20

// maxFitBytes caps the /v1/fit JSON body, whose legitimate size is a
// few hundred bytes.
const maxFitBytes = 1 << 20

// maxSweepBytes caps the /v1/sweep JSON body: settings lists are small,
// but leave room for long ones.
const maxSweepBytes = 4 << 20

// maxSweepSettings caps one sweep request; each setting costs a full
// re-cut, so an unbounded list would monopolize the pool.
const maxSweepSettings = 256

// NewHandler wires the dpcd JSON API onto a Service. The request and
// response shapes are defined in the repro/api package:
//
//	GET  /healthz              liveness probe
//	GET  /v1/datasets          list registered datasets
//	PUT  /v1/datasets/{name}   upload CSV (?format=binary DPC1, ?format=frame) body
//	GET  /v1/datasets/{name}   one dataset's info
//	POST /v1/points            append to a dataset's sliding window
//	POST /v1/fit               fit (or fetch cached) model
//	POST /v1/assign            fit if needed, then label a point batch
//	POST /v1/assign/stream     chunked: label an unbounded stream
//	GET  /v1/decision-graph    (rho, delta) pairs for interactive tuning
//	POST /v1/sweep             re-cut many parameter settings in one call
//	GET  /v1/drift             per-model drift trackers and refit state
//	GET  /v1/stats             cache and request counters
//
// /v1/assign and /v1/assign/stream speak JSON/NDJSON by default and the
// binary frame codec under "application/x-dpc-frame", negotiated per
// direction: Content-Type picks the request codec, Accept the response
// codec (absent Accept mirrors the request). /v1/decision-graph honors
// Accept the same way. Every non-2xx response is the uniform
// {"error":{"code","message"}} envelope.
func NewHandler(s *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Datasets())
	})

	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		ds, ok := s.Dataset(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", name))
			return
		}
		writeJSON(w, http.StatusOK, dsInfo(name, ds))
	})

	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var q api.UploadQuery
		if err := api.ParseQuery(r.URL.Query(), &q); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		body := http.MaxBytesReader(w, r.Body, maxUploadBytes)
		format := q.Format
		if format == "" && frameRequest(r) {
			format = "frame"
		}
		f32 := q.Precision == api.PrecisionF32
		var (
			ds  *geom.Dataset
			err error
		)
		switch format {
		case "", "csv":
			ds, err = data.LoadCSV(body)
		case "binary":
			ds, err = data.LoadBinary(body)
		case "frame":
			// The frame path lands at the target precision directly: f32
			// frames are kept without the widen/narrow round trip.
			ds, err = wire.ReadDataset32(body, f32)
			f32 = false
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parse upload: %w", err))
			return
		}
		if f32 {
			// Text and binary decoders produce float64; the requested f32
			// storage is an explicit (possibly lossy) narrowing.
			ds = ds.ToFloat32()
		}
		info, err := s.PutDataset(name, ds)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, info)
	})

	mux.HandleFunc("POST /v1/points", func(w http.ResponseWriter, r *http.Request) {
		var req api.AppendRequest
		if !decodeJSON(w, r, &req, maxAssignBytes) {
			return
		}
		if len(req.Points) > maxAssignPoints {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("append of %d points exceeds the %d limit; split the request", len(req.Points), maxAssignPoints))
			return
		}
		resp, err := s.AppendPoints(req.Dataset, req.Points)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/fit", func(w http.ResponseWriter, r *http.Request) {
		var req api.FitRequest
		if !decodeJSON(w, r, &req, maxFitBytes) {
			return
		}
		fr, err := s.Fit(req.Dataset, req.Algorithm, coreParams(req.Params))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeFit(w, req, fr)
	})

	mux.HandleFunc("POST /v1/assign", func(w http.ResponseWriter, r *http.Request) {
		var (
			req api.AssignRequest
			ok  bool
		)
		if frameRequest(r) {
			req, ok = decodeAssignFrames(w, r)
		} else {
			ok = decodeJSON(w, r, &req, maxAssignBytes)
		}
		if !ok {
			return
		}
		if len(req.Points) > maxAssignPoints {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("batch of %d points exceeds the %d limit; split the request", len(req.Points), maxAssignPoints))
			return
		}
		labels, fr, err := s.Assign(req.Dataset, req.Algorithm, coreParams(req.Params), req.Points)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeAssign(w, r, labels, fr)
	})

	mux.HandleFunc("POST /v1/assign/stream", handleAssignStream(s))

	mux.HandleFunc("GET /v1/decision-graph", func(w http.ResponseWriter, r *http.Request) {
		handleDecisionGraph(s, w, r)
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		var req api.SweepRequest
		if !decodeJSON(w, r, &req, maxSweepBytes) {
			return
		}
		if len(req.Settings) > maxSweepSettings {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("sweep of %d settings exceeds the %d limit; split the request", len(req.Settings), maxSweepSettings))
			return
		}
		resp, err := s.Sweep(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/drift", func(w http.ResponseWriter, r *http.Request) {
		var q api.DriftQuery
		if err := api.ParseQuery(r.URL.Query(), &q); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		resp, err := s.Drift(q.Dataset, q.Algorithm)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})

	return mux
}

// handleDecisionGraph serves GET /v1/decision-graph?dataset=…&dcut=…
// (&limit=… optional): the (rho, delta) pairs of the decision graph at
// the requested cut distance, from the dataset's density index — built
// on first use, re-cut afterwards. The response is JSON by default and
// a decision frame sequence when Accept names the frame media type.
func handleDecisionGraph(s *Service, w http.ResponseWriter, r *http.Request) {
	var q api.DecisionGraphQuery
	if err := api.ParseQuery(r.URL.Query(), &q); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.DecisionGraph(q.Dataset, q.DCut, q.Limit)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if !frameResponse(r) {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(wire.AppendDecision(nil, resp.Points))
}

// decodeAssignFrames reads a frame-encoded batch assign body: one header
// frame then points frames until EOF. Frames are decoded incrementally,
// so memory is bounded by the body cap, and point rows are views into
// each frame's coordinate slab — no per-point copies.
func decodeAssignFrames(w http.ResponseWriter, r *http.Request) (api.AssignRequest, bool) {
	br := bufio.NewReaderSize(http.MaxBytesReader(w, r.Body, maxAssignBytes), 64<<10)
	h, _, err := wire.ReadHeaderFrame(br)
	if err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
		return api.AssignRequest{}, false
	}
	req := api.AssignRequest{FitRequest: headerToFit(h)}
	rd := wire.NewReader(br)
	for {
		f, err := rd.Next()
		if err == io.EOF {
			return req, true
		}
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
			return api.AssignRequest{}, false
		}
		if f.Kind != wire.KindPoints {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("decode request: body must contain only points frames after the header, got kind %d", f.Kind))
			return api.AssignRequest{}, false
		}
		for i := 0; i < f.N; i++ {
			req.Points = append(req.Points, f.Row(i))
		}
	}
}

// writeAssign writes the batch response in the negotiated codec: frames
// (labels frame + summary frame) when Accept — or, absent Accept, the
// request codec — names the frame media type, JSON otherwise.
func writeAssign(w http.ResponseWriter, r *http.Request, labels []int32, fr FitResult) {
	if !frameResponse(r) {
		writeJSON(w, http.StatusOK, api.AssignResponse{
			Labels:   labels,
			Clusters: fr.Model.NumClusters(),
			CacheHit: fr.CacheHit,
		})
		return
	}
	buf := wire.AppendLabels(nil, labels)
	buf = wire.AppendSummary(buf, wire.Summary{
		Points:   int64(len(labels)),
		Chunks:   1,
		Clusters: fr.Model.NumClusters(),
		CacheHit: fr.CacheHit,
	})
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func writeFit(w http.ResponseWriter, req api.FitRequest, fr FitResult) {
	writeJSON(w, http.StatusOK, api.FitResponse{
		Dataset:   req.Dataset,
		CacheHit:  fr.CacheHit,
		IndexCut:  fr.IndexCut,
		Model:     api.ModelStats(fr.Model.Stats()),
		ParamsUse: wireParams(fr.Model.Params()),
	})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v interface{}, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, bodyErrStatus(err), fmt.Errorf("decode request: %w", err))
		return false
	}
	// One JSON object is the whole body: trailing non-whitespace (a second
	// object, stray text) means the client built the request wrong, and
	// silently ignoring it would mask the bug. dec.More() alone misses a
	// trailing close-delimiter, so read one more token: io.EOF is the only
	// clean outcome.
	if _, err := dec.Token(); err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: trailing data after JSON object"))
		return false
	}
	return true
}

// bodyErrStatus distinguishes "your body is malformed" (400) from "your
// body is too big" (413): MaxBytesReader surfaces the latter as a typed
// error mid-read, and conflating the two hides the actionable fix.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// statusFor maps service errors onto HTTP statuses: missing names are
// 404, everything else (bad params, dimension mismatches) is 400.
func statusFor(err error) int {
	msg := err.Error()
	if strings.Contains(msg, "unknown dataset") || strings.Contains(msg, "unknown algorithm") {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the uniform error envelope. A typed *api.APIError
// anywhere in the chain (ParseQuery violations, ErrUnsupportedPrecision
// wraps) carries its own status and code; everything else gets the
// status's default code (api.CodeForStatus).
func writeError(w http.ResponseWriter, status int, err error) {
	code := api.CodeForStatus(status)
	msg := err.Error()
	var ae *api.APIError
	if errors.As(err, &ae) {
		status, code = ae.Status, ae.Code
		// The envelope carries the bare message: APIError.Error() is the
		// *client-side* rendering ("server returned %d: ...") and would
		// double the framing on the wire.
		msg = ae.Message
	}
	writeJSON(w, status, api.ErrorEnvelope{Error: api.ErrorInfo{
		Code:    code,
		Message: msg,
	}})
}
