package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/api"
	"repro/internal/data"
	"repro/internal/health"
)

// chaosProxy is a TCP-level fault injector sitting between the ring and
// one shard: every byte of that shard's traffic (requests, heartbeat
// probes, snapshot ships) flows through it, so closing, delaying, or
// stalling the proxy is indistinguishable from the real network failing.
type chaosProxy struct {
	t       *testing.T
	ln      net.Listener
	target  string // backend host:port; may be empty in stall mode
	accepts atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]bool
	down  bool          // refuse service: accept then slam the connection
	delay time.Duration // sleep before forwarding a new connection
	stall int64         // > 0: swallow this many client bytes, then kill
}

func newChaosProxy(t *testing.T, target string) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{t: t, ln: ln, target: target, conns: map[net.Conn]bool{}}
	go p.acceptLoop()
	t.Cleanup(func() {
		p.ln.Close()
		p.killActive()
	})
	return p
}

// addr is the shard address the ring sees: the proxy's listener.
func (p *chaosProxy) addr() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepts.Add(1)
		p.mu.Lock()
		down, delay, stall := p.down, p.delay, p.stall
		if !down {
			p.conns[c] = true
		}
		p.mu.Unlock()
		if down {
			c.Close()
			continue
		}
		go p.handle(c, delay, stall)
	}
}

func (p *chaosProxy) handle(c net.Conn, delay time.Duration, stall int64) {
	defer p.forget(c)
	if delay > 0 {
		time.Sleep(delay)
	}
	if stall > 0 {
		// Consume part of the request so the sender has committed bytes,
		// then die without ever answering — the nastiest mid-send failure.
		io.CopyN(io.Discard, c, stall)
		c.Close()
		return
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		c.Close()
		return
	}
	p.track(up)
	defer p.forget(up)
	done := make(chan struct{}, 2)
	pump := func(dst, src net.Conn) {
		io.Copy(dst, src)
		if tc, ok := dst.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		done <- struct{}{}
	}
	go pump(up, c)
	go pump(c, up)
	<-done
	<-done
	c.Close()
	up.Close()
}

func (p *chaosProxy) track(c net.Conn) {
	p.mu.Lock()
	p.conns[c] = true
	p.mu.Unlock()
}

func (p *chaosProxy) forget(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// setDown toggles refuse-service mode; going down also kills every
// in-flight and pooled connection so the failure is immediate, not
// deferred to the next keep-alive reuse.
func (p *chaosProxy) setDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
	if down {
		p.killActive()
	}
}

// setStall arms stall mode for new connections and kills existing ones,
// so the next request is guaranteed to hit the stall path instead of a
// pooled healthy connection.
func (p *chaosProxy) setStall(n int64) {
	p.mu.Lock()
	p.stall = n
	p.mu.Unlock()
	p.killActive()
}

// refuse tears the proxy's listener down entirely: new connections get
// ECONNREFUSED — a failure that is guaranteed to happen before a single
// request byte moves, unlike accept-then-close, which races with the
// sender's buffered writes. Terminal; the proxy cannot come back up.
func (p *chaosProxy) refuse() {
	p.ln.Close()
	p.killActive()
}

func (p *chaosProxy) killActive() {
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.conns = map[net.Conn]bool{}
	p.mu.Unlock()
}

// countingHandler counts requests per path prefix, so a test can prove a
// shard was (or was not) contacted without trusting service counters.
type countingHandler struct {
	next    http.Handler
	streams atomic.Int64
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/v1/assign/stream" {
		h.streams.Add(1)
	}
	h.next.ServeHTTP(w, r)
}

// chaosRing is a 3-shard rf=2 ring where shard 2's advertised address is
// a chaos proxy: shards 0 and 1 are reached directly, every byte to or
// from shard 2 crosses the fault injector.
type chaosRing struct {
	*ringHarness
	proxy    *chaosProxy
	counters []*countingHandler
}

func startChaosRing(t *testing.T) *chaosRing {
	t.Helper()
	h := &ringHarness{t: t}
	for i := 0; i < 3; i++ {
		srv := httptest.NewUnstartedServer(nil)
		h.servers = append(h.servers, srv)
	}
	proxy := newChaosProxy(t, h.servers[2].Listener.Addr().String())
	h.addrs = []string{
		"http://" + h.servers[0].Listener.Addr().String(),
		"http://" + h.servers[1].Listener.Addr().String(),
		proxy.addr(),
	}
	cr := &chaosRing{ringHarness: h, proxy: proxy}
	for i := 0; i < 3; i++ {
		svc := New(Options{Workers: 1, CacheSize: 16})
		rt, err := NewRouter(svc, h.addrs[i], h.addrs, RouterOptions{Vnodes: 128, RF: 2, Client: testClientOptions()})
		if err != nil {
			t.Fatal(err)
		}
		h.svcs = append(h.svcs, svc)
		h.routers = append(h.routers, rt)
		ch := &countingHandler{next: rt.Handler()}
		cr.counters = append(cr.counters, ch)
		h.servers[i].Config.Handler = ch
		h.servers[i].Start()
		h.clients = append(h.clients, NewClient(h.addrs[i], testClientOptions()))
	}
	t.Cleanup(func() {
		for _, s := range h.servers {
			s.Close()
		}
	})
	return cr
}

// monitorFor builds the heartbeat monitor for shard i exactly as
// cmd/dpcd wires it, but left un-started so tests drive Tick themselves
// and stay deterministic.
func (cr *chaosRing) monitorFor(i int) *health.Monitor {
	rt := cr.routers[i]
	return health.New(health.Config{
		Self:      rt.Self(),
		Timeout:   500 * time.Millisecond,
		DeadAfter: 2,
	}, rt.ConfiguredPeers, health.HTTPProbe(nil), func(live []string) {
		rt.SetLive(live)
	})
}

// TestChaosHeartbeatEvictsDeadShard is the tentpole fault-injection
// scenario in-process: a shard's network dies; during the detection
// window every read already fails over to a replica; the heartbeat walks
// the shard suspect→dead and evicts it with zero refits; when the
// network heals, one good probe re-admits it and it still serves its
// original keys warm.
func TestChaosHeartbeatEvictsDeadShard(t *testing.T) {
	corpus := testCorpus(t, 6)
	cr := startChaosRing(t)
	for _, e := range corpus {
		cr.uploadCSV(0, e.name, e.csv)
		if _, err := cr.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	m0, m1 := cr.monitorFor(0), cr.monitorFor(1)
	ctx := context.Background()
	if m0.Tick(ctx) || m1.Tick(ctx) {
		t.Fatal("healthy ring produced a membership change on the first tick")
	}

	assignAll := func(via int) {
		t.Helper()
		for _, e := range corpus {
			resp, err := cr.clients[via].Assign(api.AssignRequest{
				FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
				Points:     e.probes,
			})
			if err != nil {
				t.Fatalf("assign %s via shard %d: %v", e.name, via, err)
			}
			if !resp.CacheHit {
				t.Errorf("assign %s via shard %d refit instead of hitting a warm replica", e.name, via)
			}
		}
	}

	missesBefore := cr.svcs[0].Stats().CacheMisses + cr.svcs[1].Stats().CacheMisses
	cr.proxy.setDown(true)

	// Detection window: no monitor has noticed yet, every key still
	// answers through the survivors — replica reads are the failover.
	assignAll(0)
	assignAll(1)

	// One tick: suspect, still live (a single lost probe must not flap
	// membership). Two: dead, evicted.
	if m0.Tick(ctx) {
		t.Fatal("first failed probe already changed membership; suspect must damp flaps")
	}
	if got := cr.routers[0].LiveMembers(); len(got) != 3 {
		t.Fatalf("suspect state shrank the live ring to %v", got)
	}
	if !m0.Tick(ctx) {
		t.Fatal("shard 0's monitor never evicted the dead shard")
	}
	m1.Tick(ctx) // m1's first failed probe: suspect
	if !m1.Tick(ctx) {
		t.Fatal("shard 1's monitor never evicted the dead shard")
	}
	for i := 0; i < 2; i++ {
		live := cr.routers[i].LiveMembers()
		if len(live) != 2 || contains(live, cr.proxy.addr()) {
			t.Fatalf("shard %d live ring = %v after eviction", i, live)
		}
	}

	// Post-eviction: everything serves from the survivors, warm.
	assignAll(0)
	assignAll(1)
	if misses := cr.svcs[0].Stats().CacheMisses + cr.svcs[1].Stats().CacheMisses; misses != missesBefore {
		t.Errorf("chaos round refit %d models on the survivors; want zero", misses-missesBefore)
	}

	// The stats fan-out marks the dead shard unreachable without sending
	// it a single byte: the proxy's accept counter must not move.
	acceptsBefore := cr.proxy.accepts.Load()
	agg, err := cr.clients[0].RingStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(agg.Down) != 1 || agg.Down[0] != cr.proxy.addr() {
		t.Errorf("aggregate down list = %v, want the proxied shard", agg.Down)
	}
	found := false
	for _, ps := range agg.PerPeer {
		if ps.Peer == cr.proxy.addr() {
			found = ps.Unreachable
		}
	}
	if !found {
		t.Errorf("dead shard not marked unreachable: %+v", agg.PerPeer)
	}
	if got := cr.proxy.accepts.Load(); got != acceptsBefore {
		t.Errorf("stats fan-out opened %d connection(s) to a peer already known dead", got-acceptsBefore)
	}

	// Network heals: one good probe re-admits the shard, which kept its
	// data the whole time and serves it warm through the proxy again.
	cr.proxy.setDown(false)
	if !m0.Tick(ctx) || !m1.Tick(ctx) {
		t.Fatal("recovered shard was not re-admitted on its first good probe")
	}
	for i := 0; i < 2; i++ {
		if got := cr.routers[i].LiveMembers(); len(got) != 3 {
			t.Fatalf("shard %d live ring = %v after recovery", i, got)
		}
	}
	shard2Misses := cr.svcs[2].Stats().CacheMisses
	assignAll(2)
	if got := cr.svcs[2].Stats().CacheMisses; got != shard2Misses {
		t.Errorf("recovered shard refit %d models; its cache should have survived the partition", got-shard2Misses)
	}
}

// chaosKey finds a dataset key whose primary is the proxied shard and
// returns it with the replica and non-owner shard indexes — the exact
// topology the stream-relay fault tests need.
func (cr *chaosRing) chaosKey(t *testing.T) (name string, replica, nonOwner int) {
	t.Helper()
	for i := 0; i < 500; i++ {
		cand := fmt.Sprintf("chaos-%03d", i)
		owners := cr.routers[0].owners(cand)
		if owners[0] != cr.proxy.addr() {
			continue
		}
		for j := 0; j < 2; j++ {
			if owners[1] == cr.addrs[j] {
				return cand, j, 1 - j
			}
		}
	}
	t.Fatal("no candidate key hashed onto the proxied shard as primary; ring placement broken")
	return "", 0, 0
}

// TestChaosStreamNoRetryAfterPartialSend: a replica relay that has sent
// any request byte upstream must fail the stream rather than replay it.
// The primary dies mid-send (proxy swallows 8KB then kills the
// connection); the relay must answer 502 and never contact the second
// replica — the counting handler proves no retry happened.
func TestChaosStreamNoRetryAfterPartialSend(t *testing.T) {
	cr := startChaosRing(t)
	name, replica, nonOwner := cr.chaosKey(t)

	d := data.SSet(2, 400, 7)
	var buf bytes.Buffer
	if err := data.SaveCSV(&buf, d.Points); err != nil {
		t.Fatal(err)
	}
	cr.uploadCSV(nonOwner, name, buf.Bytes())
	params := api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin}
	req := api.FitRequest{Dataset: name, Algorithm: "Ex-DPC", Params: params}
	if _, err := cr.clients[nonOwner].Fit(req); err != nil {
		t.Fatal(err)
	}

	// A body big enough that the relay has certainly committed bytes
	// upstream by the time the proxy kills the connection at 8KB.
	pts := make([][]float64, 5000)
	for i := range pts {
		p := d.Points.At(i % d.Points.N)
		pts[i] = []float64{p[0], p[1]}
	}
	body := ndjsonPoints(t, pts)

	cr.proxy.setStall(8 << 10)
	streamsBefore := cr.counters[replica].streams.Load()
	sr, err := cr.clients[nonOwner].AssignStream(req, bytes.NewReader(body))
	if err == nil {
		sr.Close()
		t.Fatal("stream against a mid-send failure succeeded")
	}
	var se *api.APIError
	if !errors.As(err, &se) || se.Status != http.StatusBadGateway ||
		!strings.Contains(se.Message, "stream not retried after partial send") {
		t.Fatalf("stream failure = %v, want 502 refusing the partial-send retry", err)
	}
	if got := cr.counters[replica].streams.Load(); got != streamsBefore {
		t.Fatalf("relay retried the consumed stream against the replica (%d new stream request(s))", got-streamsBefore)
	}

	// Same key, zero-consumed failure instead: the primary is down
	// outright, the dial fails before any byte moves, and now failover to
	// the replica is legal — the stream must succeed with warm labels.
	cr.proxy.refuse()
	want, err := cr.clients[nonOwner].Assign(api.AssignRequest{FitRequest: req, Points: pts[:50]})
	if err != nil {
		t.Fatalf("batch assign with dead primary: %v", err)
	}
	sr, err = cr.clients[nonOwner].AssignStream(req, bytes.NewReader(ndjsonPoints(t, pts[:50])))
	if err != nil {
		t.Fatalf("stream with dead primary (zero bytes consumed): %v", err)
	}
	labels, sum, err := sr.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 50 || !sum.CacheHit {
		t.Fatalf("failover stream: %d labels, summary %+v", len(labels), sum)
	}
	for i := range labels {
		if labels[i] != want.Labels[i] {
			t.Fatalf("failover label %d = %d, batch says %d", i, labels[i], want.Labels[i])
		}
	}
	if got := cr.counters[replica].streams.Load(); got != streamsBefore+1 {
		t.Fatalf("zero-consumed failover did not reach the replica exactly once (%d)", got-streamsBefore)
	}
}

// TestChaosSlowPeerDoesNotBlockEviction: a peer that hangs (accepts,
// never answers) is as dead as one that refuses — the probe timeout
// converts the hang into a failure and the state machine evicts it on
// schedule instead of stalling the tick.
func TestChaosSlowPeerDoesNotBlockEviction(t *testing.T) {
	cr := startChaosRing(t)
	cr.proxy.mu.Lock()
	cr.proxy.delay = 5 * time.Second // longer than any probe timeout
	cr.proxy.mu.Unlock()
	cr.proxy.killActive()

	m0 := cr.monitorFor(0) // probe timeout 500ms
	ctx := context.Background()
	start := time.Now()
	m0.Tick(ctx)
	changed := m0.Tick(ctx)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("two ticks against a hung peer took %v; the probe timeout is not bounding them", elapsed)
	}
	if !changed {
		t.Fatal("hung peer was not evicted after DeadAfter probes")
	}
	if live := cr.routers[0].LiveMembers(); contains(live, cr.proxy.addr()) {
		t.Fatalf("hung peer still in live ring %v", live)
	}
}

// TestChaosMembershipChurnRace runs assigns, streams, and stats reads
// concurrently with heartbeat-style SetLive churn on every shard. It is
// a race-detector test first (CI runs the package under -race): the
// assertion is that routing never corrupts a successful answer and the
// ring converges back to serving everything warm once the churn stops.
func TestChaosMembershipChurnRace(t *testing.T) {
	corpus := testCorpus(t, 3)
	h := startRingRF(t, 3, 2, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	want := make(map[string]api.AssignResponse, len(corpus))
	for _, e := range corpus {
		resp, err := h.clients[0].Assign(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[e.name] = resp
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Churn: each shard's live view flaps between the full ring and a
	// 2-member ring, as dueling heartbeat verdicts would drive it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		full := append([]string(nil), h.addrs...)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rt := h.routers[i%3]
			if i%2 == 0 {
				shrunk := []string{h.addrs[i%3], h.addrs[(i+1)%3]}
				rt.SetLive(shrunk)
			} else {
				rt.SetLive(full)
			}
		}
	}()

	// Traffic: assigns and streams through every shard; transient routing
	// errors (a relay hitting a shard mid-eviction) are legal, corrupted
	// successes are not.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				e := corpus[i%len(corpus)]
				via := h.clients[(w+i)%3]
				if i%4 == 3 {
					sr, err := via.AssignStream(
						api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
						bytes.NewReader(ndjsonPoints(t, e.probes)))
					if err != nil {
						continue
					}
					labels, _, err := sr.Collect()
					if err == nil && len(labels) != len(e.probes) {
						t.Errorf("churn stream %s returned %d labels, want %d", e.name, len(labels), len(e.probes))
					}
					continue
				}
				resp, err := via.Assign(api.AssignRequest{
					FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
					Points:     e.probes,
				})
				if err != nil {
					continue
				}
				if len(resp.Labels) != len(want[e.name].Labels) {
					t.Errorf("churn assign %s returned %d labels, want %d", e.name, len(resp.Labels), len(want[e.name].Labels))
					continue
				}
				for j := range resp.Labels {
					if resp.Labels[j] != want[e.name].Labels[j] {
						t.Errorf("churn assign %s label %d = %d, want %d", e.name, j, resp.Labels[j], want[e.name].Labels[j])
						break
					}
				}
			}
		}(w)
	}

	// Stats fan-out concurrently with membership swaps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.clients[i%3].RingStats()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Converge: every shard back to the full ring, then every key must
	// serve warm through every shard again.
	for _, rt := range h.routers {
		rt.SetLive(h.addrs)
	}
	for _, e := range corpus {
		for i := range h.clients {
			resp, err := h.clients[i].Assign(api.AssignRequest{
				FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
				Points:     e.probes,
			})
			if err != nil {
				t.Fatalf("post-churn assign %s via shard %d: %v", e.name, i, err)
			}
			for j := range resp.Labels {
				if resp.Labels[j] != want[e.name].Labels[j] {
					t.Fatalf("post-churn assign %s via shard %d: label %d = %d, want %d",
						e.name, i, j, resp.Labels[j], want[e.name].Labels[j])
				}
			}
		}
	}
}
