package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/ring"
	"repro/internal/wire"
)

// Router shards one dpcd ring instance: requests whose dataset key this
// instance owns are served by the local Service, everything else is
// transparently forwarded to the owning peer, so clients can talk to any
// instance. Dataset names are the ring keys — a dataset and every model
// fitted on it live on one shard, and the persisted model key embeds the
// dataset name, so memory and disk ownership always agree.
//
// Membership changes arrive through SetMembers (POST /v1/ring): the
// router swaps in a new ring and reconciles the local Service against
// it, warm-loading snapshots it now owns and evicting — never deleting —
// those it no longer does. Forwarded requests carry a marker header and
// are always served locally, so a transient membership disagreement
// between peers costs one misrouted hop, not a loop.
type Router struct {
	self   string
	vnodes int
	local  *Service
	localH http.Handler
	copts  ClientOptions

	// setMu serializes SetMembers end to end (ring swap + reconcile):
	// Service.Reconcile assumes one reconcile pass at a time, and two
	// overlapping membership posts interleaving their evict and warm-load
	// phases could leave datasets resident that the final ring does not
	// assign here.
	setMu sync.Mutex

	mu      sync.RWMutex
	ring    *ring.Ring
	clients map[string]*Client

	forwarded     atomic.Int64
	forwardErrors atomic.Int64
}

// NewRouter wraps local in a ring router. self must appear in peers;
// peer addresses are base URLs (http://host:port) and are normalized
// before ring placement, so every instance must be given the identical
// spelling of the peer list. The local service's resident state is
// reconciled against the initial ring immediately.
func NewRouter(local *Service, self string, peers []string, vnodes int, copts ClientOptions) (*Router, error) {
	selfNorm, err := normalizePeer(self)
	if err != nil {
		return nil, fmt.Errorf("service: -self: %w", err)
	}
	rt := &Router{
		self:   selfNorm,
		vnodes: vnodes,
		local:  local,
		localH: NewHandler(local),
		copts:  copts,
	}
	if _, err := rt.SetMembers(peers); err != nil {
		return nil, err
	}
	return rt, nil
}

// buildRing is the one place peer lists become rings: it normalizes
// self and every peer, constructs the ring, and verifies self is a
// member. OwnsFunc and SetMembers both go through it, so warm-load
// ownership and routing ownership can never disagree.
func buildRing(self string, peers []string, vnodes int) (selfNorm string, rg *ring.Ring, err error) {
	if selfNorm, err = normalizePeer(self); err != nil {
		return "", nil, fmt.Errorf("service: -self: %w", err)
	}
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		n, err := normalizePeer(p)
		if err != nil {
			return "", nil, fmt.Errorf("service: %w", err)
		}
		norm = append(norm, n)
	}
	if rg, err = ring.New(vnodes, norm...); err != nil {
		return "", nil, fmt.Errorf("service: %w", err)
	}
	if !rg.Has(selfNorm) {
		return "", nil, fmt.Errorf("service: self %q is not in the peer list %v", selfNorm, rg.Members())
	}
	return selfNorm, rg, nil
}

// OwnsFunc returns the ownership filter the instance at self has on a
// ring of peers, without constructing a Router. cmd/dpcd uses it so the
// Service's warm load can skip unowned snapshots before the router (which
// needs the Service) exists; NewRouter with the same arguments builds the
// identical ring, so the two never disagree.
func OwnsFunc(self string, peers []string, vnodes int) (func(dataset string) bool, error) {
	selfNorm, rg, err := buildRing(self, peers, vnodes)
	if err != nil {
		return nil, err
	}
	return func(dataset string) bool { return rg.Owner(dataset) == selfNorm }, nil
}

// normalizePeer canonicalizes one peer base URL.
func normalizePeer(p string) (string, error) {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	u, err := url.Parse(p)
	if err != nil {
		return "", fmt.Errorf("bad peer URL %q: %w", p, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer URL %q must be http:// or https://", p)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", fmt.Errorf("peer URL %q must be scheme://host[:port] with no path", p)
	}
	return p, nil
}

// Self returns this instance's normalized peer address.
func (rt *Router) Self() string { return rt.self }

// Owns reports whether this instance owns the dataset key on the
// current ring.
func (rt *Router) Owns(dataset string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Owner(dataset) == rt.self
}

// owner returns the current owner of a key and the client to reach it
// (nil when the owner is this instance).
func (rt *Router) owner(dataset string) (string, *Client) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	o := rt.ring.Owner(dataset)
	if o == rt.self {
		return o, nil
	}
	return o, rt.clients[o]
}

// peerClients returns the current peer set as (address, client) pairs;
// the self entry has a nil client.
func (rt *Router) peerClients() (peers []string, clients map[string]*Client) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Members(), rt.clients
}

// SetMembers replaces the ring membership and reconciles the local
// service against it. self must remain a member — an instance cannot
// route itself out of existence. Calls are serialized: a membership post
// that arrives mid-reconcile waits for the previous one to finish.
func (rt *Router) SetMembers(peers []string) (ReconcileStats, error) {
	rt.setMu.Lock()
	defer rt.setMu.Unlock()
	_, rg, err := buildRing(rt.self, peers, rt.vnodes)
	if err != nil {
		return ReconcileStats{}, err
	}
	clients := make(map[string]*Client, len(rg.Members()))
	rt.mu.Lock()
	for _, m := range rg.Members() {
		if m == rt.self {
			continue
		}
		if c, ok := rt.clients[m]; ok {
			clients[m] = c // keep the peer's connection pool across changes
		} else {
			clients[m] = NewClient(m, rt.copts)
		}
	}
	rt.ring = rg
	rt.clients = clients
	rt.mu.Unlock()
	return rt.local.Reconcile(rt.Owns), nil
}

// RingUpdateRequest is the body of POST /v1/ring.
type RingUpdateRequest struct {
	Peers []string `json:"peers"`
}

// RingUpdateResponse reports the applied membership and what the
// reconcile moved.
type RingUpdateResponse struct {
	Self      string         `json:"self"`
	Peers     []string       `json:"peers"`
	Reconcile ReconcileStats `json:"reconcile"`
}

// ringInfoResponse is the body of GET /v1/ring.
type ringInfoResponse struct {
	Self   string   `json:"self"`
	Peers  []string `json:"peers"`
	Vnodes int      `json:"vnodes"`
	Owner  string   `json:"owner,omitempty"` // owner of ?key=, when asked
}

// PeerStats is one shard's leg of the aggregated /v1/stats.
type PeerStats struct {
	Peer  string `json:"peer"`
	Error string `json:"error,omitempty"`
	Stats *Stats `json:"stats,omitempty"`
}

// RingStatsResponse aggregates /v1/stats across the ring: summed
// counters plus the per-peer breakdown. Forwarded/ForwardErrors are this
// instance's routing counters (each instance counts its own hops).
type RingStatsResponse struct {
	Self          string      `json:"self"`
	Peers         []string    `json:"peers"`
	PeersUp       int         `json:"peers_up"`
	Forwarded     int64       `json:"forwarded"`
	ForwardErrors int64       `json:"forward_errors"`
	Total         Stats       `json:"total"`
	PerPeer       []PeerStats `json:"per_peer"`
}

// accumulate folds another shard's counters into s; HitRate is
// recomputed by the caller once every peer is in.
func (s *Stats) accumulate(o Stats) {
	s.Datasets += o.Datasets
	s.ModelsCached += o.ModelsCached
	s.CacheCapacity += o.CacheCapacity
	s.FitRequests += o.FitRequests
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Evictions += o.Evictions
	s.AssignRequests += o.AssignRequests
	s.PointsAssigned += o.PointsAssigned
	s.DatasetsRestored += o.DatasetsRestored
	s.ModelsRestored += o.ModelsRestored
	s.PersistErrors += o.PersistErrors
}

// Handler returns the ring-mode HTTP API: the single-instance routes
// plus /v1/ring, with dataset-keyed routes forwarded to their owners and
// /v1/stats (and /v1/datasets) fanned out across the ring.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "self": rt.self})
	})

	mux.HandleFunc("GET /v1/ring", func(w http.ResponseWriter, r *http.Request) {
		rt.mu.RLock()
		resp := ringInfoResponse{Self: rt.self, Peers: rt.ring.Members(), Vnodes: rt.ring.Vnodes()}
		if key := r.URL.Query().Get("key"); key != "" {
			resp.Owner = rt.ring.Owner(key)
		}
		rt.mu.RUnlock()
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/ring", func(w http.ResponseWriter, r *http.Request) {
		var req RingUpdateRequest
		if !decodeJSON(w, r, &req, maxFitBytes) {
			return
		}
		rec, err := rt.SetMembers(req.Peers)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rt.mu.RLock()
		peers := rt.ring.Members()
		rt.mu.RUnlock()
		writeJSON(w, http.StatusOK, RingUpdateResponse{Self: rt.self, Peers: peers, Reconcile: rec})
	})

	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			writeJSON(w, http.StatusOK, rt.local.Datasets())
			return
		}
		writeJSON(w, http.StatusOK, rt.allDatasets())
	})

	// Dataset-keyed routes: served locally when owned (or when already
	// forwarded once), relayed to the owner otherwise.
	routeByName := func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		owner, peer := rt.owner(name)
		if peer == nil || r.Header.Get(forwardedHeader) != "" {
			rt.localH.ServeHTTP(w, r)
			return
		}
		// Uploads are buffered so the forward can retry; the same cap the
		// local handler enforces bounds the buffer.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("reading upload: %w", err))
			return
		}
		path := "/v1/datasets/" + url.PathEscape(name)
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		rt.relay(w, r, peer, owner, r.Method, path, body)
	}
	mux.HandleFunc("PUT /v1/datasets/{name}", routeByName)
	mux.HandleFunc("GET /v1/datasets/{name}", routeByName)

	// Fit and assign carry the dataset name inside the body — the
	// top-level JSON "dataset" field, or the leading header frame of a
	// frame-encoded body; peek at it, then either replay the exact bytes
	// into the local handler or relay them to the owner.
	routeByBody := func(limit int64, path string) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			// An over-limit body must surface as the same JSON 413 the owner
			// itself would send, not a generic 400 or a torn connection —
			// the relay hop is supposed to be invisible.
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
			if err != nil {
				writeError(w, bodyErrStatus(err), fmt.Errorf("reading request: %w", err))
				return
			}
			var name string
			if frameRequest(r) {
				name, err = wire.PeekDataset(body)
			} else {
				name, err = peekDataset(body)
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
				return
			}
			owner, peerC := rt.owner(name)
			// An absent or empty dataset name is served locally so the
			// local handler produces its usual validation error instead of
			// a peer paying to say the same thing.
			if name == "" || peerC == nil || r.Header.Get(forwardedHeader) != "" {
				r.Body = io.NopCloser(bytes.NewReader(body))
				r.ContentLength = int64(len(body))
				rt.localH.ServeHTTP(w, r)
				return
			}
			rt.relay(w, r, peerC, owner, http.MethodPost, path, body)
		}
	}
	mux.HandleFunc("POST /v1/fit", routeByBody(maxFitBytes, "/v1/fit"))
	mux.HandleFunc("POST /v1/assign", routeByBody(maxAssignBytes, "/v1/assign"))

	// The streaming assign is the one route that must NOT buffer: only
	// the header line (or header frame) is read here, for the ring key;
	// the rest of the chunked body is piped straight into the owner's
	// request, and the owner's response is piped straight back — no
	// decode-reencode in either direction, in either codec — so a relay
	// hop adds O(chunk) memory, not O(stream).
	mux.HandleFunc("POST /v1/assign/stream", func(w http.ResponseWriter, r *http.Request) {
		// The relay keeps reading the request stream while label records
		// flow back — the same duplex opt-in the serving handler needs.
		_ = http.NewResponseController(w).EnableFullDuplex()
		br := bufio.NewReaderSize(r.Body, 64<<10)
		// Reassemble exactly what was consumed: the raw header bytes plus
		// the unread remainder (br still holds its buffered prefix).
		var (
			name string
			body io.Reader
		)
		if frameRequest(r) {
			h, raw, err := wire.ReadHeaderFrame(br)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			name = h.Dataset
			body = io.MultiReader(bytes.NewReader(raw), br)
		} else {
			header, err := readStreamLine(br)
			if err != nil {
				writeError(w, streamLineStatus(err), fmt.Errorf("decode stream header: %w", err))
				return
			}
			if name, err = peekDataset(header); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			body = io.MultiReader(bytes.NewReader(append(header, '\n')), br)
		}
		owner, peerC := rt.owner(name)
		if name == "" || peerC == nil || r.Header.Get(forwardedHeader) != "" {
			r.Body = io.NopCloser(body)
			r.ContentLength = -1
			rt.localH.ServeHTTP(w, r)
			return
		}
		rt.relayStream(w, r, peerC, owner, body)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			writeJSON(w, http.StatusOK, rt.local.Stats())
			return
		}
		writeJSON(w, http.StatusOK, rt.aggregateStats())
	})

	return mux
}

// peekDataset extracts the top-level "dataset" field from a fit/assign
// body without building the rest of the document. It stops as soon as
// the field is seen — our own client and the documented request shape
// put "dataset" first, making the scan O(1) regardless of batch size —
// and in the worst case token-skips a near-cap points array without
// allocating it. Full strict validation (unknown fields, types) stays
// with the owning shard's handler; routing only needs the name. An
// object without the field returns "" and no error.
func peekDataset(body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	t, err := dec.Token()
	if err != nil {
		return "", err
	}
	if d, ok := t.(json.Delim); !ok || d != '{' {
		return "", fmt.Errorf("request body must be a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return "", err
		}
		key, _ := keyTok.(string)
		if key == "dataset" {
			var name string
			if err := dec.Decode(&name); err != nil {
				return "", fmt.Errorf("field %q must be a string: %w", key, err)
			}
			return name, nil
		}
		if err := skipValue(dec); err != nil {
			return "", err
		}
	}
	return "", nil
}

// skipValue consumes exactly one JSON value from the decoder without
// materializing it.
func skipValue(dec *json.Decoder) error {
	t, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := t.(json.Delim); ok && (d == '{' || d == '[') {
		for depth := 1; depth > 0; {
			t, err := dec.Token()
			if err != nil {
				return err
			}
			if d, ok := t.(json.Delim); ok {
				switch d {
				case '{', '[':
					depth++
				case '}', ']':
					depth--
				}
			}
		}
	}
	return nil
}

// relayContentType preserves a request's codec across the hop: an empty
// Content-Type defaults like the direct request would.
func relayContentType(r *http.Request) string {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return "application/json"
}

// relay forwards one buffered request to the owning peer and writes the
// peer's exact status and bytes back — the response a client sees is
// byte-identical whether it asked the owner or any other instance. The
// inbound Content-Type and Accept travel with it, so codec negotiation
// happens at the owner exactly as it would on a direct request.
func (rt *Router) relay(w http.ResponseWriter, r *http.Request, peer *Client, owner, method, path string, body []byte) {
	rt.forwarded.Add(1)
	status, data, ct, err := peer.do(method, path, relayContentType(r), r.Header.Get("Accept"), body, true)
	if err != nil {
		rt.forwardErrors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s unreachable: %w", owner, err))
		return
	}
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// relayStream pipes a streaming assign to the owning shard: the request
// body flows through without buffering or re-encoding — NDJSON lines and
// binary frames alike are opaque bytes here — and the owner's response is
// copied back chunk by chunk with a flush per write. If the owner dies
// mid-stream the 200 header is already gone, so the failure is delivered
// the only way left: a terminal error record in the response's codec.
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request, peer *Client, owner string, body io.Reader) {
	rt.forwarded.Add(1)
	// The inbound request context cancels the upstream leg when the
	// client hangs up, so an abandoned stream cannot pin two connections.
	resp, err := peer.stream(r.Context(), http.MethodPost, "/v1/assign/stream",
		relayContentType(r), r.Header.Get("Accept"), body, true)
	if err != nil {
		rt.forwardErrors.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Errorf("shard %s unreachable: %w", owner, err))
		return
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(resp.StatusCode)
	flushResponse(w) // the owner's status is news; don't sit on it
	fw := &flushWriter{w: w}
	if isFrameMedia(ct) {
		fw.track = &wire.Tracker{}
	}
	if _, err := io.Copy(fw, resp.Body); err != nil {
		rt.forwardErrors.Add(1)
		relayErr := fmt.Errorf("shard %s failed mid-stream: %v", owner, err)
		if fw.track != nil {
			// A binary error frame is only legal at a frame boundary;
			// welded onto a torn frame it would corrupt the stream instead
			// of explaining it. Mid-frame, leave the truncation — the
			// client's reader reports it as the stream's failure.
			if fw.track.AtBoundary() {
				_, _ = w.Write(wire.AppendError(nil, relayErr.Error()))
				flushResponse(w)
			}
			return
		}
		// The owner may have died mid-record; start a fresh line so the
		// terminal error record stays parseable instead of being welded
		// onto the torn bytes.
		if !fw.atLineStart() {
			_, _ = w.Write([]byte("\n"))
		}
		writeStreamError(w, relayErr)
	}
}

// flushWriter flushes after every write so relayed label chunks reach
// the client as the owner emits them instead of pooling in this hop. It
// remembers the last byte so an NDJSON error record can be placed on a
// fresh line after a torn copy, and (binary responses only) tracks frame
// boundaries so an error frame is appended only where one may legally go.
type flushWriter struct {
	w     http.ResponseWriter
	last  byte
	track *wire.Tracker
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.last = p[n-1]
		if fw.track != nil {
			fw.track.Consume(p[:n])
		}
	}
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

func (fw *flushWriter) atLineStart() bool { return fw.last == 0 || fw.last == '\n' }

// allDatasets fans the registry listing out across the ring and merges
// it. Unreachable peers contribute nothing — the listing degrades to
// what the live shards own, matching how their keys would serve.
func (rt *Router) allDatasets() []DatasetInfo {
	peers, clients := rt.peerClients()
	var (
		mu  sync.Mutex
		out []DatasetInfo
		wg  sync.WaitGroup
	)
	for _, p := range peers {
		if p == rt.self {
			out = append(out, rt.local.Datasets()...)
			continue
		}
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			infos, err := c.LocalDatasets()
			if err != nil {
				return
			}
			mu.Lock()
			out = append(out, infos...)
			mu.Unlock()
		}(clients[p])
	}
	wg.Wait()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// aggregateStats fans /v1/stats out to every peer and sums the
// counters; unreachable peers are reported per-peer instead of failing
// the aggregate.
func (rt *Router) aggregateStats() RingStatsResponse {
	peers, clients := rt.peerClients()
	resp := RingStatsResponse{
		Self:          rt.self,
		Peers:         peers,
		Forwarded:     rt.forwarded.Load(),
		ForwardErrors: rt.forwardErrors.Load(),
		PerPeer:       make([]PeerStats, len(peers)),
	}
	var wg sync.WaitGroup
	for i, p := range peers {
		if p == rt.self {
			st := rt.local.Stats()
			resp.PerPeer[i] = PeerStats{Peer: p, Stats: &st}
			continue
		}
		wg.Add(1)
		go func(i int, p string, c *Client) {
			defer wg.Done()
			st, err := c.LocalStats()
			if err != nil {
				resp.PerPeer[i] = PeerStats{Peer: p, Error: err.Error()}
				return
			}
			resp.PerPeer[i] = PeerStats{Peer: p, Stats: &st}
		}(i, p, clients[p])
	}
	wg.Wait()
	for _, ps := range resp.PerPeer {
		if ps.Stats == nil {
			continue
		}
		resp.PeersUp++
		resp.Total.accumulate(*ps.Stats)
	}
	if total := resp.Total.CacheHits + resp.Total.CacheMisses; total > 0 {
		resp.Total.HitRate = float64(resp.Total.CacheHits) / float64(total)
	}
	return resp
}
