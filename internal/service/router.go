package service

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/api"
	"repro/internal/ring"
	"repro/internal/wire"
)

// Router shards one dpcd ring instance. Each dataset key has a replica
// set of rf instances, placed by successor walk on the consistent-hash
// ring (ring.OwnersN): index 0 is the primary, the rest are replicas.
// Reads — assigns, streams, dataset fetches — are served by any live
// replica; writes — uploads and fits — are coordinated by the primary,
// which ships persist-codec snapshots to the replicas so their state is
// warm (a replica install is a restart-style load: kd-tree rebuilt,
// clustering never re-run, zero refits). Requests for keys this instance
// does not replicate are transparently forwarded, with failover across
// the live replica set, so clients can talk to any instance.
//
// Membership is two sets. The configured set is the full peer list
// (flags or POST /v1/ring); the live set is the subset currently
// serving, and the ring is built over the live set only. SetLive —
// driven by the health monitor's heartbeat verdicts — shrinks and
// regrows the live set automatically: when a shard dies its keys' first
// replicas become primaries on the rebuilt ring and already hold the
// data, so failover is a routing change, not a data movement. Every
// membership change reconciles the local Service (warm-loading snapshots
// now owned, evicting — never deleting — those no longer owned) and then
// re-replicates what this instance is now primary for, healing replica
// sets thinned by the change.
//
// Forwarded requests carry a marker header and are always served
// locally, so a transient membership disagreement between peers costs
// one misrouted hop, not a loop.
type Router struct {
	self   string
	vnodes int
	rf     int
	local  *Service
	localH http.Handler
	copts  ClientOptions

	// setMu serializes membership changes end to end (ring swap +
	// reconcile + re-replication): Service.Reconcile assumes one pass at a
	// time, and two overlapping changes interleaving their evict and
	// warm-load phases could leave datasets resident that the final ring
	// does not assign here. Both SetMembers (manual) and SetLive
	// (heartbeat) take it, so the two sources of change cannot interleave.
	setMu sync.Mutex

	mu         sync.RWMutex
	configured []string // full normalized peer set, sorted
	ring       *ring.Ring
	clients    map[string]*Client // keyed by configured peer, self absent

	forwarded     atomic.Int64
	forwardErrors atomic.Int64
	// replicated counts snapshot images successfully shipped to replicas;
	// replicationErrors counts ships that failed (the replica heals on the
	// next membership change or idempotent re-ship).
	replicated        atomic.Int64
	replicationErrors atomic.Int64
}

// RouterOptions configures a Router.
type RouterOptions struct {
	// Vnodes is the virtual-node count per ring member; <= 0 means
	// ring.DefaultVnodes.
	Vnodes int
	// RF is the replication factor: each key lives on min(RF, live
	// instances) distinct instances. <= 0 means 1 — the pre-replication
	// single-owner behavior.
	RF int
	// Client tunes the peer clients used for forwards and snapshot ships.
	Client ClientOptions
}

func (o RouterOptions) rf() int {
	if o.RF > 1 {
		return o.RF
	}
	return 1
}

// NewRouter wraps local in a ring router. self must appear in peers;
// peer addresses are base URLs (http://host:port) and are normalized
// before ring placement, so every instance must be given the identical
// spelling of the peer list. The initial live set is the full configured
// set, and the local service's resident state is reconciled against that
// ring immediately.
func NewRouter(local *Service, self string, peers []string, opts RouterOptions) (*Router, error) {
	selfNorm, err := normalizePeer(self)
	if err != nil {
		return nil, fmt.Errorf("service: -self: %w", err)
	}
	rt := &Router{
		self:   selfNorm,
		vnodes: opts.Vnodes,
		rf:     opts.rf(),
		local:  local,
		localH: NewHandler(local),
		copts:  opts.Client,
	}
	if _, err := rt.SetMembers(peers); err != nil {
		return nil, err
	}
	// Ring-mode drift coordination: only a key's primary runs background
	// refits, and a landed refit ships to the replicas immediately — so a
	// replica's lineage swaps models by warm-load, never by refitting.
	local.SetDriftHooks(
		func(name string) bool {
			owners := rt.owners(name)
			return len(owners) == 0 || owners[0] == rt.self
		},
		rt.replicateDataset,
	)
	return rt, nil
}

// buildRing is the one place peer lists become rings: it normalizes
// self and every peer, constructs the ring, and verifies self is a
// member. OwnsFunc and the membership setters both go through it, so
// warm-load ownership and routing ownership can never disagree.
func buildRing(self string, peers []string, vnodes int) (selfNorm string, rg *ring.Ring, err error) {
	if selfNorm, err = normalizePeer(self); err != nil {
		return "", nil, fmt.Errorf("service: -self: %w", err)
	}
	norm := make([]string, 0, len(peers))
	for _, p := range peers {
		n, err := normalizePeer(p)
		if err != nil {
			return "", nil, fmt.Errorf("service: %w", err)
		}
		norm = append(norm, n)
	}
	if rg, err = ring.New(vnodes, norm...); err != nil {
		return "", nil, fmt.Errorf("service: %w", err)
	}
	if !rg.Has(selfNorm) {
		return "", nil, fmt.Errorf("service: self %q is not in the peer list %v", selfNorm, rg.Members())
	}
	return selfNorm, rg, nil
}

// OwnsFunc returns the replica-ownership filter the instance at self has
// on a ring of peers, without constructing a Router. cmd/dpcd uses it so
// the Service's warm load can skip unowned snapshots before the router
// (which needs the Service) exists; NewRouter with the same arguments
// builds the identical ring, so the two never disagree. With rf > 1 an
// instance "owns" every key it replicates, primary or not.
func OwnsFunc(self string, peers []string, vnodes, rf int) (func(dataset string) bool, error) {
	selfNorm, rg, err := buildRing(self, peers, vnodes)
	if err != nil {
		return nil, err
	}
	if rf < 1 {
		rf = 1
	}
	return func(dataset string) bool {
		return contains(rg.OwnersN(dataset, rf), selfNorm)
	}, nil
}

// contains reports whether ms includes m; replica sets are tiny (rf is
// 2 or 3) so a linear scan beats any set allocation.
func contains(ms []string, m string) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// normalizePeer canonicalizes one peer base URL.
func normalizePeer(p string) (string, error) {
	p = strings.TrimRight(strings.TrimSpace(p), "/")
	u, err := url.Parse(p)
	if err != nil {
		return "", fmt.Errorf("bad peer URL %q: %w", p, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("peer URL %q must be http:// or https://", p)
	}
	if u.Host == "" || u.Path != "" || u.RawQuery != "" {
		return "", fmt.Errorf("peer URL %q must be scheme://host[:port] with no path", p)
	}
	return p, nil
}

// Self returns this instance's normalized peer address.
func (rt *Router) Self() string { return rt.self }

// RF returns the configured replication factor.
func (rt *Router) RF() int { return rt.rf }

// Owns reports whether this instance replicates the dataset key on the
// current live ring (primary or replica).
func (rt *Router) Owns(dataset string) bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return contains(rt.ring.OwnersN(dataset, rt.rf), rt.self)
}

// owners returns the key's live replica set in successor order (primary
// first).
func (rt *Router) owners(dataset string) []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.OwnersN(dataset, rt.rf)
}

// clientFor returns the client for a configured peer, nil for self or
// unknown addresses.
func (rt *Router) clientFor(peer string) *Client {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.clients[peer]
}

// ConfiguredPeers returns the full configured peer set — what the health
// monitor probes, independent of current liveness verdicts.
func (rt *Router) ConfiguredPeers() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.configured...)
}

// LiveMembers returns the current live ring membership.
func (rt *Router) LiveMembers() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.Members()
}

// SetMembers replaces the configured membership and resets the live set
// to all of it (a freshly posted peer gets the benefit of the doubt; the
// heartbeat demotes it if it is not actually there). self must remain a
// member — an instance cannot route itself out of existence.
func (rt *Router) SetMembers(peers []string) (api.ReconcileStats, error) {
	rt.setMu.Lock()
	defer rt.setMu.Unlock()
	_, rg, err := buildRing(rt.self, peers, rt.vnodes)
	if err != nil {
		return api.ReconcileStats{}, err
	}
	return rt.applyLocked(rg.Members(), rg), nil
}

// SetLive replaces the live set — the heartbeat monitor's sink. The set
// is intersected with the configured membership (a heartbeat verdict
// about a peer that was since removed is stale) and always includes
// self. Unknown or malformed addresses are ignored rather than erroring:
// the monitor's view may lag a concurrent SetMembers by one tick, and
// the next tick converges.
func (rt *Router) SetLive(live []string) api.ReconcileStats {
	rt.setMu.Lock()
	defer rt.setMu.Unlock()
	rt.mu.RLock()
	configured := rt.configured
	rt.mu.RUnlock()
	inConfig := make(map[string]bool, len(configured))
	for _, p := range configured {
		inConfig[p] = true
	}
	members := []string{rt.self}
	for _, p := range live {
		n, err := normalizePeer(p)
		if err != nil || !inConfig[n] || n == rt.self {
			continue
		}
		members = append(members, n)
	}
	_, rg, err := buildRing(rt.self, members, rt.vnodes)
	if err != nil {
		// Unreachable: members is non-empty and contains self. Keep the
		// current ring rather than panicking a serving daemon.
		return api.ReconcileStats{}
	}
	rt.mu.RLock()
	same := sameMembers(rt.ring.Members(), rg.Members())
	rt.mu.RUnlock()
	if same {
		return api.ReconcileStats{}
	}
	return rt.applyLocked(configured, rg)
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a { // both sorted by ring.New
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// applyLocked (setMu held) swaps in a new configured set + live ring,
// reconciles the local service against it, and re-replicates everything
// this instance is now primary for. Clients are keyed by configured peer
// and survive liveness flaps, so a recovered peer reuses its connection
// pool.
func (rt *Router) applyLocked(configured []string, rg *ring.Ring) api.ReconcileStats {
	sortedCfg := append([]string(nil), configured...)
	sort.Strings(sortedCfg)
	clients := make(map[string]*Client, len(sortedCfg))
	rt.mu.Lock()
	for _, m := range sortedCfg {
		if m == rt.self {
			continue
		}
		if c, ok := rt.clients[m]; ok {
			clients[m] = c
		} else {
			clients[m] = NewClient(m, rt.copts)
		}
	}
	rt.configured = sortedCfg
	rt.ring = rg
	rt.clients = clients
	rt.mu.Unlock()
	rec := rt.local.Reconcile(rt.Owns)
	rt.selfHeal()
	return rec
}

// selfHeal re-replicates every resident dataset this instance is primary
// for. After a membership change some keys have a fresh replica (a death
// promoted this instance, or a new peer took over a successor slot) that
// holds nothing yet; shipping the snapshots now restores the replication
// factor instead of waiting for the next write. Installs are idempotent,
// so re-shipping to an already-current replica is a cheap no-op.
func (rt *Router) selfHeal() {
	for _, info := range rt.local.Datasets() {
		owners := rt.owners(info.Name)
		if len(owners) == 0 || owners[0] != rt.self {
			continue
		}
		rt.replicate(info.Name, owners)
	}
}

// replicateDataset ships the named dataset plus its completed models to
// the key's live replicas. Called by the primary after a successful
// upload or fresh fit, and by selfHeal after membership changes.
func (rt *Router) replicateDataset(name string) {
	owners := rt.owners(name)
	if len(owners) == 0 || owners[0] != rt.self {
		return
	}
	rt.replicate(name, owners)
}

func (rt *Router) replicate(name string, owners []string) {
	if len(owners) < 2 {
		return
	}
	snaps := rt.local.ReplicationSnapshots(name)
	if snaps == nil {
		return
	}
	for _, o := range owners[1:] {
		c := rt.clientFor(o)
		if c == nil {
			continue
		}
		for _, raw := range snaps {
			if _, err := c.ShipSnapshot(raw); err != nil {
				rt.replicationErrors.Add(1)
				// The dataset snapshot must land before its models can; skip
				// the rest of this replica's batch and let the next self-heal
				// or write retry it.
				break
			}
			rt.replicated.Add(1)
		}
	}
}

// serveLocallyRead decides whether a read for name is answered by the
// local service. True when this instance replicates the key and either
// holds the dataset or is its primary (a primary without the dataset
// answers the authoritative 404; a replica without it — replication lag
// or a failed ship — defers to the primary rather than 404ing a dataset
// the ring does serve).
func (rt *Router) serveLocallyRead(name string, owners []string) bool {
	if !contains(owners, rt.self) {
		return false
	}
	if owners[0] == rt.self {
		return true
	}
	_, resident := rt.local.Dataset(name)
	return resident
}

// readTargets orders the relay candidates for a read: the key's live
// replica set, primary first, self excluded.
func (rt *Router) readTargets(owners []string) []string {
	out := make([]string, 0, len(owners))
	for _, o := range owners {
		if o != rt.self {
			out = append(out, o)
		}
	}
	return out
}

// Handler returns the ring-mode HTTP API: the single-instance routes
// plus /v1/ring and the internal /v1/replica/snapshot, with reads served
// by any live replica, writes coordinated by the primary, and /v1/stats
// (and /v1/datasets) fanned out across the live ring.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "self": rt.self})
	})

	mux.HandleFunc("GET /v1/ring", func(w http.ResponseWriter, r *http.Request) {
		var q api.RingQuery
		if err := api.ParseQuery(r.URL.Query(), &q); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rt.mu.RLock()
		resp := api.RingInfo{
			Self:       rt.self,
			Peers:      rt.ring.Members(),
			Configured: rt.configured,
			RF:         rt.rf,
			Vnodes:     rt.ring.Vnodes(),
		}
		for _, p := range rt.configured {
			if !rt.ring.Has(p) {
				resp.Down = append(resp.Down, p)
			}
		}
		if q.Key != "" {
			resp.Owners = rt.ring.OwnersN(q.Key, rt.rf)
			resp.Owner = resp.Owners[0]
		}
		rt.mu.RUnlock()
		if q.Key != "" {
			// Echo the resident dataset the key names — including its
			// storage precision — when this instance replicates it.
			if ds, ok := rt.local.Dataset(q.Key); ok {
				info := dsInfo(q.Key, ds)
				resp.Dataset = &info
			}
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("POST /v1/ring", func(w http.ResponseWriter, r *http.Request) {
		var req api.RingUpdateRequest
		if !decodeJSON(w, r, &req, maxFitBytes) {
			return
		}
		rec, err := rt.SetMembers(req.Peers)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		rt.mu.RLock()
		peers := rt.ring.Members()
		rt.mu.RUnlock()
		writeJSON(w, http.StatusOK, api.RingUpdateResponse{Self: rt.self, Peers: peers, Reconcile: rec})
	})

	// The replication sink: a primary ships persist snapshot images here.
	// Always served locally — the ship is already addressed to the replica
	// that must install it.
	mux.HandleFunc("POST /v1/replica/snapshot", func(w http.ResponseWriter, r *http.Request) {
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("reading snapshot: %w", err))
			return
		}
		res, err := rt.local.InstallSnapshot(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, res)
	})

	mux.HandleFunc("GET /v1/datasets", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			writeJSON(w, http.StatusOK, rt.local.Datasets())
			return
		}
		writeJSON(w, http.StatusOK, rt.allDatasets())
	})

	// Dataset reads: served by any live replica holding the data, relayed
	// with replica failover otherwise.
	mux.HandleFunc("GET /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		owners := rt.owners(name)
		if r.Header.Get(forwardedHeader) != "" || rt.serveLocallyRead(name, owners) {
			rt.localH.ServeHTTP(w, r)
			return
		}
		path := "/v1/datasets/" + url.PathEscape(name)
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		rt.relaySeq(w, r, rt.readTargets(owners), http.MethodGet, path, nil)
	})

	// Dataset uploads are writes: coordinated by the key's primary, which
	// replicates the accepted snapshot before answering. A non-primary
	// entry point relays to the primary only — no failover, because two
	// coordinators accepting the same upload could assign the same version
	// to different points. During the heartbeat's detection window after a
	// primary death, writes fail fast; reads keep working off replicas.
	mux.HandleFunc("PUT /v1/datasets/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		owners := rt.owners(name)
		// Uploads are buffered so the forward can retry; the same cap the
		// local handler enforces bounds the buffer.
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxUploadBytes))
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("reading upload: %w", err))
			return
		}
		if r.Header.Get(forwardedHeader) != "" || len(owners) == 0 || owners[0] == rt.self {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			rt.serveWriteLocally(w, r, name)
			return
		}
		path := "/v1/datasets/" + url.PathEscape(name)
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		rt.relaySeq(w, r, owners[:1], http.MethodPut, path, body)
	})

	// Fit and assign carry the dataset name inside the body — the
	// top-level JSON "dataset" field, or the leading header frame of a
	// frame-encoded body; peek at it, then route: fits to the primary
	// (writes — they create replicated model state), assigns to any live
	// replica (reads).
	routeByBody := func(limit int64, path string, write bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			// An over-limit body must surface as the same JSON 413 the owner
			// itself would send, not a generic 400 or a torn connection —
			// the relay hop is supposed to be invisible.
			body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
			if err != nil {
				writeError(w, bodyErrStatus(err), fmt.Errorf("reading request: %w", err))
				return
			}
			var name string
			if frameRequest(r) {
				name, err = wire.PeekDataset(body)
			} else {
				name, err = peekDataset(body)
			}
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
				return
			}
			owners := rt.owners(name)
			serveLocal := name == "" || r.Header.Get(forwardedHeader) != ""
			if !serveLocal {
				if write {
					serveLocal = len(owners) == 0 || owners[0] == rt.self
				} else {
					serveLocal = rt.serveLocallyRead(name, owners)
				}
			}
			// An absent or empty dataset name is served locally so the
			// local handler produces its usual validation error instead of
			// a peer paying to say the same thing.
			if serveLocal {
				r.Body = io.NopCloser(bytes.NewReader(body))
				r.ContentLength = int64(len(body))
				if write && name != "" {
					rt.serveWriteLocally(w, r, name)
				} else {
					rt.localH.ServeHTTP(w, r)
				}
				return
			}
			targets := rt.readTargets(owners)
			if write {
				targets = owners[:1]
			}
			rt.relaySeq(w, r, targets, http.MethodPost, path, body)
		}
	}
	mux.HandleFunc("POST /v1/fit", routeByBody(maxFitBytes, "/v1/fit", true))
	mux.HandleFunc("POST /v1/assign", routeByBody(maxAssignBytes, "/v1/assign", false))
	// Sliding-window appends are writes: the primary applies the append,
	// advances the version, and ships the new dataset snapshot to the
	// replicas before the response is released (serveWriteLocally).
	mux.HandleFunc("POST /v1/points", routeByBody(maxAssignBytes, "/v1/points", true))

	// The streaming assign is the one route that must NOT buffer: only
	// the header line (or header frame) is read here, for the ring key;
	// the rest of the chunked body is piped straight into the replica's
	// request, and the response is piped straight back — no
	// decode-reencode in either direction, in either codec — so a relay
	// hop adds O(chunk) memory, not O(stream).
	mux.HandleFunc("POST /v1/assign/stream", func(w http.ResponseWriter, r *http.Request) {
		// The relay keeps reading the request stream while label records
		// flow back — the same duplex opt-in the serving handler needs.
		_ = http.NewResponseController(w).EnableFullDuplex()
		br := bufio.NewReaderSize(r.Body, 64<<10)
		// Reassemble exactly what was consumed: the raw header bytes plus
		// the unread remainder (br still holds its buffered prefix).
		var (
			name string
			body io.Reader
		)
		if gzipRequest(r) {
			// The routing key is inside the compressed stream. Peek it
			// through a decompressor that tees every raw byte it consumes,
			// then reassemble the ORIGINAL compressed stream — captured
			// prefix plus unread remainder — for the serving side, local or
			// relayed, which sees exactly the bytes the client sent. (The
			// decompressor may read ahead; the tee makes that harmless.)
			var captured bytes.Buffer
			zr, err := gzip.NewReader(io.TeeReader(br, &captured))
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode gzip stream body: %w", err))
				return
			}
			zbr := bufio.NewReaderSize(zr, 64<<10)
			if frameRequest(r) {
				h, _, err := wire.ReadHeaderFrame(zbr)
				if err != nil {
					writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
					return
				}
				name = h.Dataset
			} else {
				header, err := readStreamLine(zbr)
				if err != nil {
					writeError(w, streamLineStatus(err), fmt.Errorf("decode stream header: %w", err))
					return
				}
				if name, err = peekDataset(header); err != nil {
					writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
					return
				}
			}
			body = io.MultiReader(bytes.NewReader(captured.Bytes()), br)
		} else if frameRequest(r) {
			h, raw, err := wire.ReadHeaderFrame(br)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			name = h.Dataset
			body = io.MultiReader(bytes.NewReader(raw), br)
		} else {
			header, err := readStreamLine(br)
			if err != nil {
				writeError(w, streamLineStatus(err), fmt.Errorf("decode stream header: %w", err))
				return
			}
			if name, err = peekDataset(header); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			body = io.MultiReader(bytes.NewReader(append(header, '\n')), br)
		}
		owners := rt.owners(name)
		if name == "" || r.Header.Get(forwardedHeader) != "" || rt.serveLocallyRead(name, owners) {
			r.Body = io.NopCloser(body)
			r.ContentLength = -1
			rt.localH.ServeHTTP(w, r)
			return
		}
		rt.relayStream(w, r, rt.readTargets(owners), body)
	})

	// Decision graphs and sweeps build (or reuse) the dataset's density
	// index, which is built on the key's primary. Both routes pin to the
	// primary: served locally when this instance is it, relayed to it
	// otherwise (no failover — a replica would pay a full index build
	// just to answer one exploratory call). When a call pays a fresh
	// build, the primary re-ships the key's snapshots — which now include
	// the index — so a replica promoted later serves re-cuts warm instead
	// of rebuilding.
	mux.HandleFunc("GET /v1/decision-graph", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("dataset")
		owners := rt.owners(name)
		if name == "" || r.Header.Get(forwardedHeader) != "" || len(owners) == 0 || owners[0] == rt.self {
			rt.serveIndexLocally(w, r, name)
			return
		}
		path := "/v1/decision-graph"
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		rt.relaySeq(w, r, owners[:1], http.MethodGet, path, nil)
	})

	mux.HandleFunc("POST /v1/sweep", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSweepBytes))
		if err != nil {
			writeError(w, bodyErrStatus(err), fmt.Errorf("reading request: %w", err))
			return
		}
		name, err := peekDataset(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		owners := rt.owners(name)
		if name == "" || r.Header.Get(forwardedHeader) != "" || len(owners) == 0 || owners[0] == rt.self {
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			rt.serveIndexLocally(w, r, name)
			return
		}
		rt.relaySeq(w, r, owners[:1], http.MethodPost, "/v1/sweep", body)
	})

	// Drift trackers live where the assign traffic lands, and refits run
	// only on the primary — so the primary's answer is the authoritative
	// one. Pinned like decision-graph: no failover to replicas that hold
	// an idle (empty) tracker.
	mux.HandleFunc("GET /v1/drift", func(w http.ResponseWriter, r *http.Request) {
		name := r.URL.Query().Get("dataset")
		owners := rt.owners(name)
		if name == "" || r.Header.Get(forwardedHeader) != "" || len(owners) == 0 || owners[0] == rt.self {
			rt.localH.ServeHTTP(w, r)
			return
		}
		path := "/v1/drift"
		if q := r.URL.RawQuery; q != "" {
			path += "?" + q
		}
		rt.relaySeq(w, r, owners[:1], http.MethodGet, path, nil)
	})

	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(forwardedHeader) != "" {
			writeJSON(w, http.StatusOK, rt.local.Stats())
			return
		}
		writeJSON(w, http.StatusOK, rt.aggregateStats())
	})

	return mux
}

// bufferedResponse captures a local handler's response so the router can
// act on its status (replicate after a 2xx write) before releasing the
// bytes to the client. Write bodies are already bounded and buffered on
// entry, so buffering the (much smaller) response adds no new memory
// class.
type bufferedResponse struct {
	header http.Header
	status int
	body   bytes.Buffer
}

func newBufferedResponse() *bufferedResponse {
	return &bufferedResponse{header: make(http.Header), status: http.StatusOK}
}

func (b *bufferedResponse) Header() http.Header { return b.header }

func (b *bufferedResponse) WriteHeader(status int) { b.status = status }

func (b *bufferedResponse) Write(p []byte) (int, error) { return b.body.Write(p) }

func (b *bufferedResponse) flushTo(w http.ResponseWriter) {
	for k, vs := range b.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body.Bytes())
}

// serveWriteLocally runs a write (upload or fit) through the local
// handler and, on success, ships the resulting snapshots to the key's
// replicas before the response is released — by the time the client
// sees the 2xx, every live replica can serve the state it names. A
// cache-hit fit created nothing new and ships nothing.
func (rt *Router) serveWriteLocally(w http.ResponseWriter, r *http.Request, name string) {
	brw := newBufferedResponse()
	rt.localH.ServeHTTP(brw, r)
	if brw.status >= 200 && brw.status <= 299 && !cacheHitResponse(brw.body.Bytes()) {
		rt.replicateDataset(name)
	}
	brw.flushTo(w)
}

// cacheHitResponse reports whether a successful write response body is a
// fit answered from cache ("cache_hit": true) — the one 2xx write that
// changes no state and therefore needs no replication. Upload responses
// have no such field and report false.
func cacheHitResponse(body []byte) bool {
	var probe struct {
		CacheHit *bool `json:"cache_hit"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.CacheHit == nil {
		return false
	}
	return *probe.CacheHit
}

// serveIndexLocally runs a decision-graph or sweep through the local
// handler and, when the successful response reports a freshly built
// index ("index_reused": false), re-ships the key's snapshots — which
// include the just-built index — to its replicas, so a replica promoted
// later answers re-cuts warm instead of re-paying the build.
// replicateDataset no-ops unless this instance is the key's primary, so
// a forwarded hop served here for routing hygiene ships nothing.
func (rt *Router) serveIndexLocally(w http.ResponseWriter, r *http.Request, name string) {
	brw := newBufferedResponse()
	rt.localH.ServeHTTP(brw, r)
	if name != "" && brw.status >= 200 && brw.status <= 299 &&
		indexBuiltResponse(brw.header.Get("Content-Type"), brw.body.Bytes()) {
		rt.replicateDataset(name)
	}
	brw.flushTo(w)
}

// indexBuiltResponse reports whether a 2xx decision-graph or sweep
// response paid a fresh index build ("index_reused": false). Frame-coded
// bodies are not probed — a build they paid ships on the next self-heal
// or JSON-coded call instead of this hop decoding binary frames.
func indexBuiltResponse(contentType string, body []byte) bool {
	if isFrameMedia(contentType) {
		return false
	}
	var probe struct {
		IndexReused *bool `json:"index_reused"`
	}
	if json.Unmarshal(body, &probe) != nil || probe.IndexReused == nil {
		return false
	}
	return !*probe.IndexReused
}

// peekDataset extracts the top-level "dataset" field from a fit/assign
// body without building the rest of the document. It stops as soon as
// the field is seen — our own client and the documented request shape
// put "dataset" first, making the scan O(1) regardless of batch size —
// and in the worst case token-skips a near-cap points array without
// allocating it. Full strict validation (unknown fields, types) stays
// with the owning shard's handler; routing only needs the name. An
// object without the field returns "" and no error.
func peekDataset(body []byte) (string, error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	t, err := dec.Token()
	if err != nil {
		return "", err
	}
	if d, ok := t.(json.Delim); !ok || d != '{' {
		return "", fmt.Errorf("request body must be a JSON object")
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return "", err
		}
		key, _ := keyTok.(string)
		if key == "dataset" {
			var name string
			if err := dec.Decode(&name); err != nil {
				return "", fmt.Errorf("field %q must be a string: %w", key, err)
			}
			return name, nil
		}
		if err := skipValue(dec); err != nil {
			return "", err
		}
	}
	return "", nil
}

// skipValue consumes exactly one JSON value from the decoder without
// materializing it.
func skipValue(dec *json.Decoder) error {
	t, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := t.(json.Delim); ok && (d == '{' || d == '[') {
		for depth := 1; depth > 0; {
			t, err := dec.Token()
			if err != nil {
				return err
			}
			if d, ok := t.(json.Delim); ok {
				switch d {
				case '{', '[':
					depth++
				case '}', ']':
					depth--
				}
			}
		}
	}
	return nil
}

// relayContentType preserves a request's codec across the hop: an empty
// Content-Type defaults like the direct request would.
func relayContentType(r *http.Request) string {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return "application/json"
}

// relaySeq forwards one buffered request across the target list in
// order, failing over on transport errors only: the first replica that
// answers — with any HTTP status — is the answer, byte-identical to what
// a direct request would get. The body is a byte slice, so every attempt
// replays identical bytes; this is what makes buffered-path failover
// safe where the streaming path's is not. The inbound Content-Type and
// Accept travel with it, so codec negotiation happens at the serving
// replica exactly as it would on a direct request.
func (rt *Router) relaySeq(w http.ResponseWriter, r *http.Request, targets []string, method, path string, body []byte) {
	rt.forwarded.Add(1)
	var lastErr error
	for _, o := range targets {
		peer := rt.clientFor(o)
		if peer == nil {
			continue
		}
		status, data, ct, err := peer.do(method, path, relayContentType(r), r.Header.Get("Accept"), body, true)
		if err != nil {
			rt.forwardErrors.Add(1)
			lastErr = fmt.Errorf("shard %s unreachable: %w", o, err)
			continue
		}
		if ct == "" {
			ct = "application/json"
		}
		w.Header().Set("Content-Type", ct)
		w.WriteHeader(status)
		_, _ = w.Write(data)
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no live replica for this key")
	}
	writeError(w, http.StatusBadGateway, lastErr)
}

// countingReader counts the bytes a failed stream attempt consumed — the
// fact that decides whether failover is allowed.
type countingReader struct {
	r io.Reader
	n atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

// relayStream pipes a streaming assign to a live replica of the key: the
// request body flows through without buffering or re-encoding — NDJSON
// lines and binary frames alike are opaque bytes here — and the replica's
// response is copied back chunk by chunk with a flush per write.
//
// Failover follows the no-retry rule for unreplayable bodies (see
// Client.stream): an attempt that consumed zero request-body bytes —
// dial refused, connection reset before the body moved — may fail over
// to the next replica, because the next attempt replays nothing; the
// moment any body byte has been consumed the stream is committed to that
// replica, and a failure is delivered as a terminal error, never a
// silent resend. If the replica dies after the 200 went out, the failure
// arrives the only way left: a terminal error record in the response's
// codec.
func (rt *Router) relayStream(w http.ResponseWriter, r *http.Request, targets []string, body io.Reader) {
	rt.forwarded.Add(1)
	// Query knobs (?chunk=) travel with the hop so the serving replica
	// honors them exactly as it would on a direct request.
	path := "/v1/assign/stream"
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	cr := &countingReader{r: body}
	var (
		resp    *http.Response
		lastErr error
		target  string
	)
	for _, o := range targets {
		peer := rt.clientFor(o)
		if peer == nil {
			continue
		}
		var err error
		// The inbound request context cancels the upstream leg when the
		// client hangs up, so an abandoned stream cannot pin two connections.
		// Encoding headers travel verbatim: the relay never re-compresses —
		// gzip bodies pass through as opaque bytes. An explicit
		// Accept-Encoding also disables the transport's transparent gzip,
		// so the response encoding stays visible for the passthrough below.
		var enc http.Header
		if ce := r.Header.Get("Content-Encoding"); ce != "" {
			enc = http.Header{"Content-Encoding": {ce}}
		}
		if ae := r.Header.Get("Accept-Encoding"); ae != "" {
			if enc == nil {
				enc = http.Header{}
			}
			enc.Set("Accept-Encoding", ae)
		}
		resp, err = peer.stream(r.Context(), http.MethodPost, path,
			relayContentType(r), r.Header.Get("Accept"), cr, true, enc)
		if err == nil {
			target = o
			break
		}
		rt.forwardErrors.Add(1)
		lastErr = fmt.Errorf("shard %s unreachable: %w", o, err)
		if cr.n.Load() > 0 {
			// The failed attempt consumed part of the inbound stream; a
			// second attempt would replay a torn prefix. Fail loudly.
			writeError(w, http.StatusBadGateway,
				fmt.Errorf("stream not retried after partial send: %w", lastErr))
			return
		}
	}
	if resp == nil {
		if lastErr == nil {
			lastErr = fmt.Errorf("no live replica for this key")
		}
		writeError(w, http.StatusBadGateway, lastErr)
		return
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/json"
	}
	w.Header().Set("Content-Type", ct)
	gzResp := false
	if ce := resp.Header.Get("Content-Encoding"); ce != "" {
		w.Header().Set("Content-Encoding", ce)
		gzResp = true
	}
	w.WriteHeader(resp.StatusCode)
	flushResponse(w) // the replica's status is news; don't sit on it
	fw := &flushWriter{w: w}
	if isFrameMedia(ct) && !gzResp {
		fw.track = &wire.Tracker{}
	}
	if _, err := io.Copy(fw, resp.Body); err != nil {
		rt.forwardErrors.Add(1)
		relayErr := fmt.Errorf("shard %s failed mid-stream: %v", target, err)
		if gzResp {
			// Welding anything onto a torn compressed stream would corrupt
			// it; the truncation itself is the client's failure signal (its
			// gzip reader errors before any summary record).
			return
		}
		if fw.track != nil {
			// A binary error frame is only legal at a frame boundary;
			// welded onto a torn frame it would corrupt the stream instead
			// of explaining it. Mid-frame, leave the truncation — the
			// client's reader reports it as the stream's failure.
			if fw.track.AtBoundary() {
				_, _ = w.Write(wire.AppendError(nil, relayErr.Error()))
				flushResponse(w)
			}
			return
		}
		// The replica may have died mid-record; start a fresh line so the
		// terminal error record stays parseable instead of being welded
		// onto the torn bytes.
		if !fw.atLineStart() {
			_, _ = w.Write([]byte("\n"))
		}
		writeStreamError(w, relayErr)
	}
}

// flushWriter flushes after every write so relayed label chunks reach
// the client as the replica emits them instead of pooling in this hop. It
// remembers the last byte so an NDJSON error record can be placed on a
// fresh line after a torn copy, and (binary responses only) tracks frame
// boundaries so an error frame is appended only where one may legally go.
type flushWriter struct {
	w     http.ResponseWriter
	last  byte
	track *wire.Tracker
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if n > 0 {
		fw.last = p[n-1]
		if fw.track != nil {
			fw.track.Consume(p[:n])
		}
	}
	if f, ok := fw.w.(http.Flusher); ok {
		f.Flush()
	}
	return n, err
}

func (fw *flushWriter) atLineStart() bool { return fw.last == 0 || fw.last == '\n' }

// allDatasets fans the registry listing out across the live ring and
// merges it, deduplicating by name — with rf > 1 every dataset is
// resident on several shards but is still one dataset. Dead peers are
// skipped without probing; unreachable live peers contribute nothing —
// the listing degrades to what the reachable shards hold.
func (rt *Router) allDatasets() []api.DatasetInfo {
	rt.mu.RLock()
	peers := rt.ring.Members()
	clients := rt.clients
	rt.mu.RUnlock()
	var (
		mu  sync.Mutex
		all []api.DatasetInfo
		wg  sync.WaitGroup
	)
	for _, p := range peers {
		if p == rt.self {
			// Under mu too: goroutines spawned for earlier peers may
			// already be appending.
			mu.Lock()
			all = append(all, rt.local.Datasets()...)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			infos, err := c.LocalDatasets()
			if err != nil {
				return
			}
			mu.Lock()
			all = append(all, infos...)
			mu.Unlock()
		}(clients[p])
	}
	wg.Wait()
	sort.Slice(all, func(a, b int) bool { return all[a].Name < all[b].Name })
	out := all[:0]
	for i, d := range all {
		if i == 0 || all[i-1].Name != d.Name {
			out = append(out, d)
		}
	}
	return out
}

// aggregateStats fans /v1/stats out across the configured peer set and
// sums the counters. Peers outside the live set are reported with the
// unreachable marker and never probed — a dead shard must not add a
// timeout to every stats call — and a live peer that fails its probe is
// reported per-peer instead of failing the aggregate.
func (rt *Router) aggregateStats() api.RingStats {
	rt.mu.RLock()
	configured := rt.configured
	live := rt.ring
	clients := rt.clients
	rt.mu.RUnlock()
	resp := api.RingStats{
		Self:              rt.self,
		Peers:             live.Members(),
		RF:                rt.rf,
		Forwarded:         rt.forwarded.Load(),
		ForwardErrors:     rt.forwardErrors.Load(),
		Replicated:        rt.replicated.Load(),
		ReplicationErrors: rt.replicationErrors.Load(),
		PerPeer:           make([]api.PeerStats, len(configured)),
	}
	var wg sync.WaitGroup
	for i, p := range configured {
		switch {
		case p == rt.self:
			st := rt.local.Stats()
			resp.PerPeer[i] = api.PeerStats{Peer: p, Stats: &st}
		case !live.Has(p):
			resp.PerPeer[i] = api.PeerStats{Peer: p, Unreachable: true}
			resp.Down = append(resp.Down, p)
		default:
			wg.Add(1)
			go func(i int, p string, c *Client) {
				defer wg.Done()
				st, err := c.LocalStats()
				if err != nil {
					resp.PerPeer[i] = api.PeerStats{Peer: p, Error: err.Error()}
					return
				}
				resp.PerPeer[i] = api.PeerStats{Peer: p, Stats: &st}
			}(i, p, clients[p])
		}
	}
	wg.Wait()
	for _, ps := range resp.PerPeer {
		if ps.Stats == nil {
			continue
		}
		resp.PeersUp++
		resp.Total.Accumulate(*ps.Stats)
	}
	if total := resp.Total.CacheHits + resp.Total.CacheMisses; total > 0 {
		resp.Total.HitRate = float64(resp.Total.CacheHits) / float64(total)
	}
	return resp
}
