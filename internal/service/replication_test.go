package service

import (
	"bytes"
	"fmt"
	"net/http"
	"testing"

	"repro/api"
	"repro/internal/data"
	"repro/internal/persist"
)

// countResidents returns how many shards hold name in their registry.
func (h *ringHarness) countResidents(name string) int {
	n := 0
	for _, s := range h.svcs {
		if _, ok := s.Dataset(name); ok {
			n++
		}
	}
	return n
}

func (h *ringHarness) totalMisses() int64 {
	var n int64
	for _, s := range h.svcs {
		n += s.Stats().CacheMisses
	}
	return n
}

// TestReplicatedWritePath: with rf=2 every upload and fit lands on
// exactly two shards — the primary serving the write plus the replica it
// ships snapshots to — and the replica's copy is installed state, not a
// refit.
func TestReplicatedWritePath(t *testing.T) {
	corpus := testCorpus(t, 6)
	h := startRingRF(t, 3, 2, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range corpus {
		if got := h.countResidents(e.name); got != 2 {
			t.Errorf("dataset %s resident on %d shards, want rf=2", e.name, got)
		}
	}
	// Each fresh fit ran exactly once ring-wide; the replica copies are
	// installs, visible in the replication counters, not in cache misses.
	if misses := h.totalMisses(); misses != int64(len(corpus)) {
		t.Errorf("ring performed %d fits for %d datasets; replication must not refit", misses, len(corpus))
	}
	var dsRepl, mRepl int64
	for _, s := range h.svcs {
		st := s.Stats()
		dsRepl += st.DatasetsReplicated
		mRepl += st.ModelsReplicated
	}
	if dsRepl != int64(len(corpus)) || mRepl != int64(len(corpus)) {
		t.Errorf("replica installs = %d datasets / %d models, want %d/%d",
			dsRepl, mRepl, len(corpus), len(corpus))
	}
	// The merged dataset listing deduplicates replicas: one entry per name.
	infos, err := h.clients[0].RingStats()
	if err != nil {
		t.Fatal(err)
	}
	if infos.Total.Datasets != 2*len(corpus) {
		t.Errorf("aggregate datasets = %d, want %d (each name on two shards)", infos.Total.Datasets, 2*len(corpus))
	}
	if infos.RF != 2 {
		t.Errorf("aggregate rf = %d, want 2", infos.RF)
	}
	var listed []api.DatasetInfo
	if err := h.clients[0].call(http.MethodGet, "/v1/datasets", "", nil, false, &listed); err != nil {
		t.Fatal(err)
	}
	if len(listed) != len(corpus) {
		t.Errorf("merged listing has %d entries, want %d deduplicated names", len(listed), len(corpus))
	}
}

// TestReplicatedAssignAnyReplica: assigns for a key answer byte-identical
// through every shard — primary, replica, and non-owner alike — and all
// of them serve from warm models.
func TestReplicatedAssignAnyReplica(t *testing.T) {
	corpus := testCorpus(t, 6)
	h := startRingRF(t, 3, 2, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[1].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	missesBefore := h.totalMisses()
	for _, e := range corpus {
		req := marshal(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		wantStatus, want := rawPost(t, h.addrs[0]+"/v1/assign", req)
		if wantStatus != http.StatusOK {
			t.Fatalf("assign %s via shard 0: HTTP %d: %s", e.name, wantStatus, want)
		}
		for i := 1; i < len(h.addrs); i++ {
			gotStatus, got := rawPost(t, h.addrs[i]+"/v1/assign", req)
			if gotStatus != wantStatus || !bytes.Equal(got, want) {
				t.Errorf("assign %s via shard %d: HTTP %d %q, want HTTP %d %q",
					e.name, i, gotStatus, got, wantStatus, want)
			}
		}
	}
	if misses := h.totalMisses(); misses != missesBefore {
		t.Errorf("assigns through replicas refit %d models; want zero", misses-missesBefore)
	}
}

// TestReplicaFailoverZeroRefit is the tentpole contract in-process: with
// rf=2, killing a shard and evicting it from the live ring (as the
// heartbeat would) leaves every key serving byte-identically from its
// surviving replica — warm cache, zero refits, no 404s — without any
// snapshot store involved.
func TestReplicaFailoverZeroRefit(t *testing.T) {
	corpus := testCorpus(t, 6)
	h := startRingRF(t, 3, 2, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	// Reference answers from the healthy ring, via shard 0.
	type ref struct {
		status int
		body   []byte
	}
	want := map[string]ref{}
	for _, e := range corpus {
		req := marshal(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		status, body := rawPost(t, h.addrs[0]+"/v1/assign", req)
		if status != http.StatusOK {
			t.Fatalf("healthy assign %s: HTTP %d: %s", e.name, status, body)
		}
		want[e.name] = ref{status, body}
	}

	// Kill the primary of the first dataset, so the failover below is
	// never vacuous.
	dead := 0
	for i, a := range h.addrs {
		if h.routers[i].owners(corpus[0].name)[0] == a {
			dead = i
		}
	}
	var alive []int
	for i := range h.addrs {
		if i != dead {
			alive = append(alive, i)
		}
	}
	missesBefore := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses
	h.servers[dead].Close()

	// Heartbeat verdict: survivors drop the dead shard from their live
	// sets. SetLive, not SetMembers — the configured set is untouched.
	survivors := []string{h.addrs[alive[0]], h.addrs[alive[1]]}
	for _, i := range alive {
		h.routers[i].SetLive(survivors)
		if got := h.routers[i].LiveMembers(); len(got) != 2 {
			t.Fatalf("shard %d live set = %v after eviction", i, got)
		}
	}

	// Every key — the dead shard's included — answers byte-identically
	// via both survivors, from warm models.
	for _, e := range corpus {
		req := marshal(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		for _, i := range alive {
			status, body := rawPost(t, h.addrs[i]+"/v1/assign", req)
			if status != want[e.name].status || !bytes.Equal(body, want[e.name].body) {
				t.Errorf("assign %s via survivor %d after failover: HTTP %d %q, want HTTP %d %q",
					e.name, i, status, body, want[e.name].status, want[e.name].body)
			}
		}
	}
	if misses := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses; misses != missesBefore {
		t.Errorf("failover refit %d models; want zero", misses-missesBefore)
	}

	// The stats fan-out marks the dead shard unreachable without failing
	// or probing it.
	agg, err := h.clients[alive[0]].RingStats()
	if err != nil {
		t.Fatal(err)
	}
	if agg.PeersUp != 2 || len(agg.Down) != 1 || agg.Down[0] != h.addrs[dead] {
		t.Errorf("aggregate after failover: up=%d down=%v", agg.PeersUp, agg.Down)
	}
	marked := false
	for _, ps := range agg.PerPeer {
		if ps.Peer == h.addrs[dead] {
			marked = ps.Unreachable && ps.Stats == nil
		}
	}
	if !marked {
		t.Errorf("dead peer not marked unreachable in per-peer stats: %+v", agg.PerPeer)
	}
}

// TestSelfHealRestoresReplicationFactor: after a death shrinks a key's
// replica set to one live holder, the next membership change re-ships
// snapshots so the promoted survivor's keys regain a second replica —
// the ring heals back to rf without any writes.
func TestSelfHealRestoresReplicationFactor(t *testing.T) {
	corpus := testCorpus(t, 6)
	h := startRingRF(t, 3, 2, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	dead := 0
	for i, a := range h.addrs {
		if h.routers[i].owners(corpus[0].name)[0] == a {
			dead = i
		}
	}
	var alive []int
	for i := range h.addrs {
		if i != dead {
			alive = append(alive, i)
		}
	}
	h.servers[dead].Close()
	survivors := []string{h.addrs[alive[0]], h.addrs[alive[1]]}
	for _, i := range alive {
		h.routers[i].SetLive(survivors)
	}
	// With only two live shards and rf=2, every key must now be resident
	// on both survivors: eviction promoted replicas, self-heal re-shipped
	// the promoted keys to their new secondaries.
	for _, e := range corpus {
		resident := 0
		for _, i := range alive {
			if _, ok := h.svcs[i].Dataset(e.name); ok {
				resident++
			}
		}
		if resident != 2 {
			t.Errorf("dataset %s resident on %d survivors after self-heal, want 2", e.name, resident)
		}
	}
	// And with warm models everywhere: zero refits on any subsequent
	// assign through either survivor.
	missesBefore := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses
	for _, e := range corpus {
		for _, i := range alive {
			resp, err := h.clients[i].Assign(api.AssignRequest{
				FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
				Points:     e.probes,
			})
			if err != nil {
				t.Fatalf("assign %s via survivor %d: %v", e.name, i, err)
			}
			if !resp.CacheHit {
				t.Errorf("assign %s via survivor %d missed the cache after self-heal", e.name, i)
			}
		}
	}
	if misses := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses; misses != missesBefore {
		t.Errorf("self-heal path refit %d models; want zero", misses-missesBefore)
	}
}

// TestInstallSnapshotSemantics pins the install state machine directly
// on one Service: fresh installs land, duplicates and stale versions
// no-op, models require their exact dataset version, and none of it
// touches the cache miss counter.
func TestInstallSnapshotSemantics(t *testing.T) {
	d := data.SSet(2, 400, 1)
	primary := New(Options{Workers: 1, CacheSize: 16})
	if _, err := primary.PutDataset("ds", d.Points); err != nil {
		t.Fatal(err)
	}
	params := coreParams(api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin})
	if _, err := primary.Fit("ds", "Ex-DPC", params); err != nil {
		t.Fatal(err)
	}
	snaps := primary.ReplicationSnapshots("ds")
	if len(snaps) != 2 {
		t.Fatalf("primary exported %d snapshots, want dataset+model", len(snaps))
	}

	replica := New(Options{Workers: 1, CacheSize: 16})
	// Model before its dataset: refused, not silently dropped.
	if _, err := replica.InstallSnapshot(snaps[1]); err == nil {
		t.Fatal("model install without its dataset succeeded")
	}
	for i, raw := range snaps {
		res, err := replica.InstallSnapshot(raw)
		if err != nil {
			t.Fatalf("install %d: %v", i, err)
		}
		if !res.Installed {
			t.Fatalf("install %d reported a no-op on a fresh replica: %+v", i, res)
		}
	}
	// Idempotent re-ship: both become no-ops.
	for i, raw := range snaps {
		res, err := replica.InstallSnapshot(raw)
		if err != nil {
			t.Fatalf("re-install %d: %v", i, err)
		}
		if res.Installed {
			t.Fatalf("re-install %d was not a no-op: %+v", i, res)
		}
	}
	st := replica.Stats()
	if st.DatasetsReplicated != 1 || st.ModelsReplicated != 1 {
		t.Errorf("replica counters = %d/%d, want 1/1", st.DatasetsReplicated, st.ModelsReplicated)
	}
	if st.CacheMisses != 0 {
		t.Errorf("installs produced %d cache misses; they are warm-loads", st.CacheMisses)
	}
	// The installed model serves without fitting.
	fr, err := replica.Fit("ds", "Ex-DPC", params)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.CacheHit {
		t.Error("fit on the replica missed the installed model")
	}

	// A newer version on the replica wins over a stale ship.
	d2 := data.SSet(2, 500, 2)
	if _, err := replica.PutDataset("ds", d2.Points); err != nil {
		t.Fatal(err)
	}
	res, err := replica.InstallSnapshot(snaps[0])
	if err != nil {
		t.Fatalf("stale dataset ship errored: %v", err)
	}
	if res.Installed {
		t.Fatal("stale dataset ship replaced a newer resident version")
	}
	if _, err := replica.InstallSnapshot(snaps[1]); err == nil {
		t.Fatal("model ship for a replaced dataset version succeeded")
	}
	// Garbage is an error, not a panic.
	if _, err := replica.InstallSnapshot([]byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot installed")
	}
}

// TestReplicatedRestartWarmLoad: with rf=2 the ownership filter accepts
// replicated keys too, so a restarted shard warm-loads both the keys it
// is primary for and the ones it replicates — including snapshots that
// arrived via shipping, which SaveDataset/SaveModel persisted on install.
func TestReplicatedRestartWarmLoad(t *testing.T) {
	corpus := testCorpus(t, 6)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	h := startRingRF(t, 3, 2, dirs)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	target := 0
	for i := range h.routers {
		if h.routers[i].Owns(corpus[0].name) {
			target = i
		}
	}
	owned := 0
	for _, e := range corpus {
		if h.routers[target].Owns(e.name) {
			owned++
		}
	}
	if owned == 0 {
		t.Fatal("target shard replicates nothing; harness broken")
	}
	store, err := persist.Open(dirs[target], t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	restarted := New(Options{Workers: 1, CacheSize: 16, Store: store, Owns: h.routers[target].Owns})
	st := restarted.Stats()
	if st.DatasetsRestored != owned {
		t.Fatalf("restart restored %d datasets, want the %d replicated keys (primary and replica alike)",
			st.DatasetsRestored, owned)
	}
	if st.ModelsRestored != owned {
		t.Fatalf("restart restored %d models, want %d", st.ModelsRestored, owned)
	}
	for _, e := range corpus {
		if !h.routers[target].Owns(e.name) {
			continue
		}
		fr, err := restarted.Fit(e.name, "Ex-DPC", coreParams(e.params))
		if err != nil {
			t.Fatal(err)
		}
		if !fr.CacheHit {
			t.Errorf("fit %s after restart missed the restored cache", e.name)
		}
	}
	if got := restarted.Stats().CacheMisses; got != 0 {
		t.Errorf("restarted shard performed %d fits; want zero", got)
	}
}

// TestOwnsFuncMatchesRouter: the pre-router warm-load filter and the
// router's own replica ownership must agree for every key and rf, or a
// restart would load the wrong snapshot set.
func TestOwnsFuncMatchesRouter(t *testing.T) {
	addrs := []string{"http://10.0.0.1:1", "http://10.0.0.2:1", "http://10.0.0.3:1"}
	for rf := 1; rf <= 3; rf++ {
		for _, self := range addrs {
			owns, err := OwnsFunc(self, addrs, 128, rf)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := NewRouter(New(Options{}), self, addrs, RouterOptions{Vnodes: 128, RF: rf})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("dataset-%03d", i)
				if owns(key) != rt.Owns(key) {
					t.Fatalf("rf=%d self=%s key=%s: OwnsFunc=%v Router.Owns=%v",
						rf, self, key, owns(key), rt.Owns(key))
				}
			}
		}
	}
}
