package service

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strings"

	"repro/api"
	"repro/internal/core"
	"repro/internal/wire"
)

// The streaming assign wire format (POST /v1/assign/stream) is NDJSON in
// both directions by default. The request is one header line — a
// api.FitRequest object — followed by one point per line, each a JSON array
// of coordinates:
//
//	{"dataset":"s2","algorithm":"Ex-DPC","params":{"dcut":2500,...}}
//	[12034.1,38840.2]
//	[61300.0,20018.7]
//	...
//
// The response is a sequence of api.StreamRecord lines: one {"labels":[...]}
// record per labeled chunk, in input order, terminated by exactly one of
// {"summary":{...}} (success) or {"error":"..."} (failure after the
// stream began; failures before any labeling use plain JSON statuses like
// the batch endpoint). Memory on both sides stays O(chunk), never O(body),
// so one fitted model can label arbitrarily long query streams through
// any shard.
//
// Both directions also speak the binary frame codec (internal/wire) under
// Content-Type/Accept "application/x-dpc-frame": the request becomes one
// header frame followed by points frames, the response labels frames
// terminated by a summary (or error) frame. Each direction negotiates
// independently — the request codec comes from Content-Type, the response
// codec from Accept, and an absent Accept mirrors the request.

// ndjsonContentType is the default media type of both stream directions.
const ndjsonContentType = "application/x-ndjson"

// isFrameMedia reports whether a media-type header value names the
// binary frame codec.
func isFrameMedia(v string) bool {
	mt, _, err := mime.ParseMediaType(v)
	if err != nil {
		return strings.HasPrefix(strings.TrimSpace(v), wire.ContentType)
	}
	return mt == wire.ContentType
}

// frameRequest reports whether the request body is frame-encoded
// (Content-Type negotiation).
func frameRequest(r *http.Request) bool {
	return isFrameMedia(r.Header.Get("Content-Type"))
}

// frameResponse reports whether the response should be frame-encoded: an
// explicit Accept naming the frame codec wins; an absent Accept mirrors
// the request codec, so a frames-in client gets frames out without extra
// headers. ("*/*" and other wildcards keep the mirrored default — both
// codecs satisfy them, and the request codec is the better tiebreak.)
func frameResponse(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	if accept == "" || accept == "*/*" {
		return frameRequest(r)
	}
	for _, part := range strings.Split(accept, ",") {
		if isFrameMedia(part) {
			return true
		}
	}
	return false
}

// gzipRequest reports whether the request body arrives gzip-compressed
// (Content-Encoding negotiation; "x-gzip" is its HTTP/1.0 alias).
func gzipRequest(r *http.Request) bool {
	ce := strings.TrimSpace(r.Header.Get("Content-Encoding"))
	return strings.EqualFold(ce, "gzip") || strings.EqualFold(ce, "x-gzip")
}

// wantsGzipResponse reports whether the client asked for a gzip response
// body via an explicit Accept-Encoding. Only explicit opt-in counts: the
// Go transport silently injects its own Accept-Encoding: gzip and then
// transparently decompresses, so honoring that default would gain
// nothing while hiding the encoding from relays.
func wantsGzipResponse(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc := part
		if i := strings.IndexByte(enc, ';'); i >= 0 {
			enc = enc[:i]
		}
		enc = strings.TrimSpace(enc)
		if strings.EqualFold(enc, "gzip") || strings.EqualFold(enc, "x-gzip") {
			return true
		}
	}
	return false
}

// gzipResponseWriter compresses a label stream on the way out. Flush
// must flush the compressor first — a gzip.Writer buffers a whole
// deflate block — or the per-chunk flush discipline of the stream
// handlers would stop delivering chunks promptly.
type gzipResponseWriter struct {
	http.ResponseWriter
	gz *gzip.Writer
}

func (g *gzipResponseWriter) Write(p []byte) (int, error) { return g.gz.Write(p) }

func (g *gzipResponseWriter) Flush() {
	_ = g.gz.Flush()
	if f, ok := g.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// maxStreamLineBytes caps one NDJSON line (header or point). A point line
// is a single coordinate array, so 1 MiB allows ~65k dimensions — far
// beyond any real dataset — while bounding what a hostile stream can make
// the server buffer per line. Gzip request bodies are capped after
// decompression — the limit bounds buffered memory, which a compressed
// transport does not change.
const maxStreamLineBytes = 1 << 20

// streamChunk resolves the chunk size: Options.StreamChunk when set,
// otherwise scaled to the worker pool so every chunk can spread across
// all assign workers with work to spare, clamped so chunks stay small
// enough that label records flush frequently and large enough that
// per-chunk overhead (JSON record, flush, dispatch) amortizes. Explicit
// values are capped at the batch-endpoint limit: every stream allocates
// its chunk buffer up front, and a misconfigured huge -stream-chunk must
// not turn each request into an OOM.
func (o Options) streamChunk() int {
	if o.StreamChunk > 0 {
		return min(o.StreamChunk, maxAssignPoints)
	}
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	c := 2048 * w
	if c > 65536 {
		c = 65536
	}
	return c
}

// errTooManyStreams refuses a stream over the concurrency cap; it maps
// to HTTP 429 so clients know to retry, not to fix their request.
var errTooManyStreams = errors.New("service: too many concurrent streams; retry later")

// acquireStream claims a concurrent-stream slot without blocking; the
// caller must releaseStream iff it returns true.
func (s *Service) acquireStream() bool {
	select {
	case s.streamSem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *Service) releaseStream() { <-s.streamSem }

// AssignStream labels an unbounded point stream against the model for
// (dataset, algorithm, params), fitting it at most once. next returns one
// point per call and io.EOF at end of stream; emit receives each chunk's
// labels in input order and may abort the stream by returning an error.
// Memory is bounded by the chunk size regardless of stream length. The
// stream counts against Options.MaxStreams and MaxStreamPoints.
func (s *Service) AssignStream(dataset, algorithm string, p core.Params, next func() ([]float64, error), emit func([]int32) error) (api.StreamSummary, error) {
	fr, obs, err := s.serveFit(dataset, algorithm, p)
	if err != nil {
		return api.StreamSummary{}, err
	}
	if !s.acquireStream() {
		return api.StreamSummary{}, errTooManyStreams
	}
	defer s.releaseStream()
	return s.assignStream(fr, obs, 0, next, emit)
}

// assignStream is the chunked labeling loop shared by AssignStream and
// the HTTP handler (which performs the Fit itself so pre-stream errors
// keep their HTTP statuses). chunkSize > 0 lowers the label-chunk size
// below the configured default (the ?chunk= request knob); it can never
// raise it, so the server's memory bound holds regardless of input.
// fr and obs are captured once at stream start: a drift refit that
// swaps the served model mid-stream does not affect this stream — it
// finishes on the model it started with, observing into the tracker
// paired with that model.
func (s *Service) assignStream(fr FitResult, obs *driftObs, chunkSize int, next func() ([]float64, error), emit func([]int32) error) (api.StreamSummary, error) {
	s.assignRequests.Add(1)
	sum := api.StreamSummary{Clusters: fr.Model.NumClusters(), CacheHit: fr.CacheHit}
	dim := fr.Model.Dim()
	limit := s.opts.maxStreamPoints()
	if max := s.opts.streamChunk(); chunkSize <= 0 || chunkSize > max {
		chunkSize = max
	}
	chunk := make([][]float64, 0, chunkSize)
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		labels, err := s.assignChunk(fr.Model, obs, chunk)
		if err != nil {
			return err
		}
		sum.Chunks++
		chunk = chunk[:0]
		return emit(labels)
	}
	for {
		pt, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return sum, err
		}
		if len(pt) != dim {
			return sum, fmt.Errorf("service: stream point %d has dimension %d, want %d", sum.Points, len(pt), dim)
		}
		chunk = append(chunk, pt)
		sum.Points++
		if sum.Points > limit {
			return sum, fmt.Errorf("service: stream exceeds the %d-point limit", limit)
		}
		if len(chunk) == cap(chunk) {
			if err := flush(); err != nil {
				return sum, err
			}
		}
	}
	if err := flush(); err != nil {
		return sum, err
	}
	return sum, nil
}

// headerToFit converts a decoded binary header frame into the FitRequest
// it mirrors.
func headerToFit(h wire.Header) api.FitRequest {
	return api.FitRequest{
		Dataset:   h.Dataset,
		Algorithm: h.Algorithm,
		Params: api.Params{
			DCut: h.DCut, RhoMin: h.RhoMin, DeltaMin: h.DeltaMin,
			Epsilon: h.Epsilon, Seed: h.Seed,
		},
	}
}

// fitToHeader is headerToFit's inverse — the client half of the frame
// codec.
func fitToHeader(req api.FitRequest) wire.Header {
	return wire.Header{
		Dataset:   req.Dataset,
		Algorithm: req.Algorithm,
		DCut:      req.Params.DCut,
		RhoMin:    req.Params.RhoMin,
		DeltaMin:  req.Params.DeltaMin,
		Epsilon:   req.Params.Epsilon,
		Seed:      req.Params.Seed,
	}
}

// streamEmitter abstracts the response half of a label stream over the
// two codecs: chunks of labels in order, then exactly one summary or
// terminal error.
type streamEmitter interface {
	contentType() string
	labels([]int32) error
	summary(api.StreamSummary)
	terminalError(error)
}

// ndjsonEmitter writes api.StreamRecord lines with a flush per record.
type ndjsonEmitter struct {
	w   http.ResponseWriter
	enc *json.Encoder
}

func newNDJSONEmitter(w http.ResponseWriter) *ndjsonEmitter {
	return &ndjsonEmitter{w: w, enc: json.NewEncoder(w)}
}

func (e *ndjsonEmitter) contentType() string { return ndjsonContentType }

func (e *ndjsonEmitter) labels(labels []int32) error {
	if err := e.enc.Encode(api.StreamRecord{Labels: labels}); err != nil {
		return err
	}
	flushResponse(e.w)
	return nil
}

func (e *ndjsonEmitter) summary(sum api.StreamSummary) {
	_ = e.enc.Encode(api.StreamRecord{Summary: &sum})
	flushResponse(e.w)
}

func (e *ndjsonEmitter) terminalError(err error) { writeStreamError(e.w, err) }

// frameEmitter writes binary labels/summary/error frames, reusing one
// buffer across chunks so the hot path allocates nothing per record.
type frameEmitter struct {
	w   http.ResponseWriter
	buf []byte
}

func (e *frameEmitter) contentType() string { return wire.ContentType }

func (e *frameEmitter) labels(labels []int32) error {
	e.buf = wire.AppendLabels(e.buf[:0], labels)
	if _, err := e.w.Write(e.buf); err != nil {
		return err
	}
	flushResponse(e.w)
	return nil
}

func (e *frameEmitter) summary(sum api.StreamSummary) {
	e.buf = wire.AppendSummary(e.buf[:0], wire.Summary{
		Points: sum.Points, Chunks: sum.Chunks,
		Clusters: sum.Clusters, CacheHit: sum.CacheHit,
	})
	_, _ = e.w.Write(e.buf)
	flushResponse(e.w)
}

func (e *frameEmitter) terminalError(err error) {
	e.buf = wire.AppendError(e.buf[:0], err.Error())
	_, _ = e.w.Write(e.buf)
	flushResponse(e.w)
}

func flushResponse(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleAssignStream is POST /v1/assign/stream. Errors before the first
// byte of the response stream (bad header, unknown dataset, failed fit,
// stream cap reached) are plain JSON with the same statuses as the batch
// endpoint; once streaming has begun the only channel left is a terminal
// error record in the negotiated codec.
func handleAssignStream(s *Service) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		// An HTTP/1.x server normally closes the request body at the first
		// response write; this handler interleaves reading points with
		// writing labels for the stream's whole life, so it must opt in to
		// full duplex. (HTTP/2 is duplex natively and reports unsupported.)
		_ = http.NewResponseController(w).EnableFullDuplex()
		var sq api.StreamQuery
		if err := api.ParseQuery(r.URL.Query(), &sq); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		bodySrc := io.Reader(r.Body)
		if gzipRequest(r) {
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode gzip request body: %w", err))
				return
			}
			defer zr.Close()
			bodySrc = zr
		}
		br := bufio.NewReaderSize(bodySrc, 64<<10)

		var (
			req  api.FitRequest
			next func() ([]float64, error)
		)
		if frameRequest(r) {
			h, _, err := wire.ReadHeaderFrame(br)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			req = headerToFit(h)
			next = frameNext(wire.NewReader(br))
		} else {
			header, err := readStreamLine(br)
			if err != nil {
				writeError(w, streamLineStatus(err), fmt.Errorf("decode stream header: %w", err))
				return
			}
			if err := decodeStrict(header, &req); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("decode stream header: %w", err))
				return
			}
			next = ndjsonNext(br)
		}
		fr, obs, err := s.serveFit(req.Dataset, req.Algorithm, coreParams(req.Params))
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		if !s.acquireStream() {
			writeError(w, http.StatusTooManyRequests, errTooManyStreams)
			return
		}
		defer s.releaseStream()

		out := http.ResponseWriter(w)
		if wantsGzipResponse(r) {
			gz := gzip.NewWriter(w)
			defer gz.Close()
			out = &gzipResponseWriter{ResponseWriter: w, gz: gz}
			w.Header().Set("Content-Encoding", "gzip")
		}
		var emitter streamEmitter
		if frameResponse(r) {
			emitter = &frameEmitter{w: out}
		} else {
			emitter = newNDJSONEmitter(out)
		}
		w.Header().Set("Content-Type", emitter.contentType())
		w.WriteHeader(http.StatusOK)
		// Flush the 200 now: a full-duplex client is allowed to wait for
		// the status before it commits to streaming the whole body.
		flushResponse(out)

		sum, err := s.assignStream(fr, obs, sq.Chunk, next, emitter.labels)
		if err != nil {
			emitter.terminalError(err)
			return
		}
		emitter.summary(sum)
	}
}

// ndjsonNext yields one point per NDJSON line.
func ndjsonNext(br *bufio.Reader) func() ([]float64, error) {
	lineNo := int64(0)
	return func() ([]float64, error) {
		for {
			line, err := readStreamLine(br)
			if err != nil {
				if err == io.EOF {
					return nil, io.EOF
				}
				return nil, fmt.Errorf("stream point %d: %w", lineNo, err)
			}
			if len(line) == 0 {
				continue // tolerate blank lines and the trailing newline
			}
			var pt []float64
			if err := json.Unmarshal(line, &pt); err != nil {
				return nil, fmt.Errorf("stream point %d: %w", lineNo, err)
			}
			lineNo++
			return pt, nil
		}
	}
}

// frameNext yields rows out of successive points frames. Rows are views
// into the current frame's coordinate slab — no per-point copy; the chunk
// buffer keeps the frame alive until its labels are emitted.
func frameNext(fr *wire.Reader) func() ([]float64, error) {
	var cur *wire.Frame
	row := 0
	return func() ([]float64, error) {
		for {
			if cur != nil && row < cur.N {
				pt := cur.Row(row)
				row++
				return pt, nil
			}
			f, err := fr.Next()
			if err != nil {
				return nil, err // io.EOF only at a clean frame boundary
			}
			if f.Kind != wire.KindPoints {
				return nil, fmt.Errorf("stream body must contain only points frames after the header, got kind %d", f.Kind)
			}
			cur, row = f, 0
		}
	}
}

// writeStreamError emits the terminal NDJSON error record — the failure
// channel once the 200 header and some labels are already on the wire.
func writeStreamError(w http.ResponseWriter, err error) {
	_ = json.NewEncoder(w).Encode(api.StreamRecord{Error: err.Error()})
	if flusher, ok := w.(http.Flusher); ok {
		flusher.Flush()
	}
}

// errStreamLineTooLong rejects a single NDJSON line over
// maxStreamLineBytes; as a request-size violation it maps to 413 when it
// can still influence the status.
var errStreamLineTooLong = fmt.Errorf("line exceeds %d bytes", maxStreamLineBytes)

func streamLineStatus(err error) int {
	if errors.Is(err, errStreamLineTooLong) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// readStreamLine reads one newline-terminated line (the final line may be
// unterminated), stripped of its \r?\n, enforcing maxStreamLineBytes. It
// returns io.EOF only at a clean end of stream with no pending bytes.
func readStreamLine(br *bufio.Reader) ([]byte, error) {
	var line []byte
	for {
		frag, err := br.ReadSlice('\n')
		// ReadSlice's buffer is invalidated by the next read; append copies.
		line = append(line, frag...)
		if len(line) > maxStreamLineBytes {
			return nil, errStreamLineTooLong
		}
		switch err {
		case nil:
			return trimEOL(line), nil
		case bufio.ErrBufferFull:
			continue
		case io.EOF:
			if len(line) == 0 {
				return nil, io.EOF
			}
			return trimEOL(line), nil
		default:
			return nil, err
		}
	}
}

func trimEOL(line []byte) []byte {
	line = bytes.TrimSuffix(line, []byte("\n"))
	return bytes.TrimSuffix(line, []byte("\r"))
}

// EncodePoints writes points as NDJSON lines — the producer half of the
// stream wire format — until next returns io.EOF. Callers feed it to one
// end of an io.Pipe whose other end is Client.AssignStream, so encoding
// lives here next to the format definition instead of being re-derived
// at every call site.
func EncodePoints(w io.Writer, next func() ([]float64, error)) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for {
		pt, err := next()
		if err == io.EOF {
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		raw, err := json.Marshal(pt)
		if err != nil {
			return err
		}
		if _, err := bw.Write(raw); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
}

// decodeStrict unmarshals one JSON object with unknown fields and
// trailing data rejected — the per-line analogue of decodeJSON.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON object")
	}
	return nil
}
