package service

import (
	"math"
	"testing"

	"repro/api"
	"repro/internal/core"
)

// labelsEqual compares full label vectors.
func labelsEqual(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d labels, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: label[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestDecisionGraphThroughService checks GET /v1/decision-graph's
// backing call: the first request pays the index build, the second
// reuses it, and the (rho, delta) pairs are bit-identical to what a
// fresh Ex-DPC fit computes.
func TestDecisionGraphThroughService(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 900)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}

	if _, err := s.DecisionGraph("nope", p.DCut, 0); err == nil {
		t.Error("decision graph for unknown dataset succeeded")
	}

	g1, err := s.DecisionGraph("s2", p.DCut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g1.IndexReused {
		t.Error("first decision graph claims to have reused an index")
	}
	if g1.N != d.Points.N || len(g1.Points) != d.Points.N {
		t.Fatalf("N=%d points=%d, want %d", g1.N, len(g1.Points), d.Points.N)
	}
	for i := 1; i < len(g1.Points); i++ {
		if g1.Points[i].Delta > g1.Points[i-1].Delta {
			t.Fatal("decision graph points not sorted by descending delta")
		}
	}

	// The graph's vectors must match a fresh fit bit-for-bit.
	alg, _ := core.AlgorithmByName("Ex-DPC")
	want, err := alg.ClusterDataset(d.Points, s.normalize("Ex-DPC", p))
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range g1.Points {
		if math.Float64bits(pt.Rho) != math.Float64bits(want.Rho[pt.ID]) {
			t.Fatalf("point %d rho %v, fit computed %v", pt.ID, pt.Rho, want.Rho[pt.ID])
		}
		if math.Float64bits(pt.Delta) != math.Float64bits(want.Delta[pt.ID]) {
			t.Fatalf("point %d delta %v, fit computed %v", pt.ID, pt.Delta, want.Delta[pt.ID])
		}
	}

	g2, err := s.DecisionGraph("s2", p.DCut, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.IndexReused {
		t.Error("second decision graph rebuilt the index")
	}
	if len(g2.Points) != 10 || g2.N != d.Points.N {
		t.Errorf("limit=10 returned %d points, N=%d", len(g2.Points), g2.N)
	}

	st := s.Stats()
	if st.IndexBuilds != 1 || st.IndexCuts != 2 {
		t.Errorf("builds=%d cuts=%d, want 1 build / 2 cuts", st.IndexBuilds, st.IndexCuts)
	}
}

// TestSweepMatchesFreshFits is the sweep acceptance: one index build
// amortized over the whole parameter grid, every setting's labels and
// centers byte-identical to a fresh fit of the same algorithm, and
// nothing leaking into the model cache.
func TestSweepMatchesFreshFits(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 16})
	d, p := fixture(t, 900)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}

	grid := []float64{1250, 1500, 1875, 2200, 2500, 2800, 3125, 3500}
	req := api.SweepRequest{Dataset: "s2", IncludeLabels: true}
	for _, dc := range grid {
		req.Settings = append(req.Settings, api.SweepSetting{DCut: dc, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin})
	}
	resp, err := s.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Algorithm != "Ex-DPC" {
		t.Errorf("default algorithm = %q, want Ex-DPC", resp.Algorithm)
	}
	if resp.IndexReused {
		t.Error("first sweep claims to have reused an index")
	}
	if len(resp.Results) != len(grid) {
		t.Fatalf("%d results for %d settings", len(resp.Results), len(grid))
	}

	// Reference fits on a separate index-free path: a second Service that
	// never built an index, so every fit is the real algorithm.
	ref := New(Options{Workers: 2, CacheSize: 16})
	if _, err := ref.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	for i, dc := range grid {
		rp := p
		rp.DCut = dc
		fr, err := ref.Fit("s2", "Ex-DPC", rp)
		if err != nil {
			t.Fatalf("reference fit dc=%g: %v", dc, err)
		}
		if fr.IndexCut {
			t.Fatalf("reference fit dc=%g came from an index", dc)
		}
		res := resp.Results[i]
		labelsEqual(t, "sweep labels", res.Labels, fr.Model.Result().Labels)
		if res.Clusters != fr.Model.NumClusters() {
			t.Errorf("dc=%g: %d clusters, fit found %d", dc, res.Clusters, fr.Model.NumClusters())
		}
		noise := 0
		for _, l := range fr.Model.Result().Labels {
			if l == core.NoCluster {
				noise++
			}
		}
		if res.Noise != noise {
			t.Errorf("dc=%g: noise %d, fit found %d", dc, res.Noise, noise)
		}
	}

	st := s.Stats()
	if st.IndexBuilds != 1 {
		t.Errorf("sweep paid %d index builds, want 1", st.IndexBuilds)
	}
	if st.IndexCuts != int64(len(grid)) {
		t.Errorf("sweep paid %d cuts for %d settings", st.IndexCuts, len(grid))
	}
	if st.ModelsCached != 0 || st.CacheMisses != 0 {
		t.Errorf("sweep polluted the model cache: %d resident, %d misses", st.ModelsCached, st.CacheMisses)
	}

	// A second sweep reuses the index: zero further builds.
	resp2, err := s.Sweep(api.SweepRequest{Dataset: "s2", Settings: req.Settings[:2]})
	if err != nil {
		t.Fatal(err)
	}
	if !resp2.IndexReused {
		t.Error("second sweep rebuilt the index")
	}
	if len(resp2.Results[0].Labels) != 0 {
		t.Error("labels returned without include_labels")
	}
	if st := s.Stats(); st.IndexBuilds != 1 {
		t.Errorf("second sweep paid a build (total %d)", st.IndexBuilds)
	}
}

func TestSweepValidation(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 300)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	ok := []api.SweepSetting{{DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin}}

	cases := []struct {
		name string
		req  api.SweepRequest
	}{
		{"unknown dataset", api.SweepRequest{Dataset: "nope", Settings: ok}},
		{"unknown algorithm", api.SweepRequest{Dataset: "s2", Algorithm: "nope", Settings: ok}},
		{"uncovered algorithm", api.SweepRequest{Dataset: "s2", Algorithm: "Approx-DPC", Settings: ok}},
		{"no settings", api.SweepRequest{Dataset: "s2"}},
		{"non-positive dcut", api.SweepRequest{Dataset: "s2",
			Settings: []api.SweepSetting{{DCut: 0, DeltaMin: 1}}}},
		{"delta_min below dcut", api.SweepRequest{Dataset: "s2",
			Settings: []api.SweepSetting{{DCut: p.DCut, DeltaMin: p.DCut / 2}}}},
	}
	for _, tc := range cases {
		if _, err := s.Sweep(tc.req); err == nil {
			t.Errorf("%s: sweep succeeded", tc.name)
		}
	}
	if st := s.Stats(); st.IndexCuts != 0 {
		t.Errorf("rejected sweeps still paid %d cuts", st.IndexCuts)
	}
}

// TestFitReusesResidentIndex: once a decision-graph request has built
// the index, a covered algorithm's fit at any covered d_cut is served
// by a re-cut — IndexCut true, no cache-miss accounting — and the model
// is byte-identical to a fresh fit. An uncovered algorithm still runs
// for real.
func TestFitReusesResidentIndex(t *testing.T) {
	s := New(Options{Workers: 2, CacheSize: 8})
	d, p := fixture(t, 900)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DecisionGraph("s2", p.DCut, 0); err != nil {
		t.Fatal(err)
	}

	// The build used headroom, so a slightly larger d_cut is still covered.
	pUp := p
	pUp.DCut = p.DCut * 1.2
	fr, err := s.Fit("s2", "Ex-DPC", pUp)
	if err != nil {
		t.Fatal(err)
	}
	if !fr.IndexCut || fr.CacheHit {
		t.Errorf("fit under a resident index: IndexCut=%v CacheHit=%v", fr.IndexCut, fr.CacheHit)
	}

	ref := New(Options{Workers: 2})
	if _, err := ref.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	rf, err := ref.Fit("s2", "Ex-DPC", pUp)
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, "index-cut model", fr.Model.Result().Labels, rf.Model.Result().Labels)

	// The cut model entered the cache without counting as a miss.
	st := s.Stats()
	if st.CacheMisses != 0 {
		t.Errorf("index cut counted as a cache miss (%d)", st.CacheMisses)
	}
	fr2, err := s.Fit("s2", "Ex-DPC", pUp)
	if err != nil {
		t.Fatal(err)
	}
	if !fr2.CacheHit || fr2.IndexCut {
		t.Errorf("repeat fit: CacheHit=%v IndexCut=%v, want hit without a cut", fr2.CacheHit, fr2.IndexCut)
	}

	// Beyond the index ceiling the fit falls back to the real algorithm.
	pFar := p
	pFar.DCut = p.DCut * 10
	pFar.DeltaMin = pFar.DCut * 3
	frFar, err := s.Fit("s2", "Ex-DPC", pFar)
	if err != nil {
		t.Fatal(err)
	}
	if frFar.IndexCut {
		t.Error("fit beyond the index ceiling claims an index cut")
	}

	// Uncovered algorithms never take the index path.
	frApprox, err := s.Fit("s2", "Approx-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if frApprox.IndexCut {
		t.Error("uncovered algorithm served from the index")
	}
}

// TestWarmLoadedIndexServesFits is the restart leg of the acceptance
// sweep: the index built by one process is snapshotted, a new Service
// over the same data dir warm-loads it, and a covered fit is served by
// a re-cut with zero builds — byte-identical to the first process's.
func TestWarmLoadedIndexServesFits(t *testing.T) {
	dir := t.TempDir()
	d, p := fixture(t, 700)

	s1 := New(Options{Workers: 2, Store: openStore(t, dir)})
	if _, err := s1.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.DecisionGraph("s2", p.DCut, 0); err != nil {
		t.Fatal(err)
	}
	fr1, err := s1.Fit("s2", "Ex-DPC", p)
	if err != nil {
		t.Fatal(err)
	}
	if !fr1.IndexCut {
		t.Fatal("first process's fit was not an index cut")
	}

	s2 := New(Options{Workers: 4, Store: openStore(t, dir)})
	st := s2.Stats()
	if st.IndexesRestored != 1 {
		t.Fatalf("restored %d indexes, want 1", st.IndexesRestored)
	}
	// The restored model cache already holds the fit; go around it with a
	// different d_cut still under the warm index's ceiling.
	p2 := p
	p2.DCut = p.DCut * 1.1
	fr2, err := s2.Fit("s2", "Ex-DPC", p2)
	if err != nil {
		t.Fatal(err)
	}
	if !fr2.IndexCut {
		t.Error("fit after restart did not use the warm-loaded index")
	}
	if st := s2.Stats(); st.IndexBuilds != 0 {
		t.Errorf("restart paid %d index builds", st.IndexBuilds)
	}

	ref := New(Options{Workers: 2})
	if _, err := ref.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	rf, err := ref.Fit("s2", "Ex-DPC", p2)
	if err != nil {
		t.Fatal(err)
	}
	labelsEqual(t, "warm-index model", fr2.Model.Result().Labels, rf.Model.Result().Labels)
}

// TestReuploadDropsIndex: replacing a dataset must invalidate its
// resident index — the next decision graph rebuilds against the new
// points.
func TestReuploadDropsIndex(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 400)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DecisionGraph("s2", p.DCut, 0); err != nil {
		t.Fatal(err)
	}
	d2, _ := fixture(t, 500)
	if _, err := s.PutDataset("s2", d2.Points); err != nil {
		t.Fatal(err)
	}
	g, err := s.DecisionGraph("s2", p.DCut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.IndexReused {
		t.Error("decision graph after re-upload reused the stale index")
	}
	if g.N != d2.Points.N {
		t.Errorf("graph over %d points, want %d", g.N, d2.Points.N)
	}
	if st := s.Stats(); st.IndexBuilds != 2 {
		t.Errorf("builds=%d, want 2", st.IndexBuilds)
	}
}
