package service

import (
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/api"
	"repro/internal/data"
)

// ownerAndStranger returns one shard index that owns name as primary and
// one that does not.
func ownerAndStranger(t *testing.T, h *ringHarness, name string) (owner, stranger int) {
	t.Helper()
	owner, stranger = -1, -1
	for i, rt := range h.routers {
		if rt.Owns(name) {
			owner = i
		} else if stranger == -1 {
			stranger = i
		}
	}
	if owner == -1 || stranger == -1 {
		t.Skipf("dataset %q has no distinct owner/stranger pair this run", name)
	}
	return owner, stranger
}

// TestDecisionGraphHTTPRoundTrip: the JSON wire form must survive the
// client round trip bit-for-bit — including the density peaks' infinite
// delta, which JSON numbers cannot express (the codec maps it to null).
func TestDecisionGraphHTTPRoundTrip(t *testing.T) {
	svc := New(Options{Workers: 2})
	d := data.SSet(2, 500, 9)
	if _, err := svc.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())

	got, err := c.DecisionGraph("s2", d.DCut, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := svc.DecisionGraph("s2", d.DCut, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Points) != len(want.Points) {
		t.Fatalf("%d points over HTTP, %d in process", len(got.Points), len(want.Points))
	}
	peaks := 0
	for i := range want.Points {
		a, b := got.Points[i], want.Points[i]
		if a.ID != b.ID ||
			math.Float64bits(a.Rho) != math.Float64bits(b.Rho) ||
			math.Float64bits(a.Delta) != math.Float64bits(b.Delta) {
			t.Fatalf("point %d: HTTP %+v, in-process %+v", i, a, b)
		}
		if math.IsInf(b.Delta, 1) {
			peaks++
		}
	}
	if peaks == 0 {
		t.Fatal("no infinite-delta peak in the graph; the null mapping went untested")
	}

	// Errors arrive as the typed envelope.
	if _, err := c.DecisionGraph("nope", d.DCut, 0); err == nil {
		t.Error("unknown dataset succeeded over HTTP")
	} else if ae := (&api.APIError{}); !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Errorf("unknown dataset error = %v, want a 404 APIError", err)
	}
}

// TestRingDecisionGraphRoutesToPrimary: a decision-graph request sent to
// a non-owner must be answered by the dataset's primary — identical to
// asking the primary directly — and the index must exist on exactly one
// shard.
func TestRingDecisionGraphRoutesToPrimary(t *testing.T) {
	corpus := testCorpus(t, 3)
	h := startRing(t, 3, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
	}
	e := corpus[0]
	owner, stranger := ownerAndStranger(t, h, e.name)

	viaStranger, err := h.clients[stranger].DecisionGraph(e.name, e.params.DCut, 25)
	if err != nil {
		t.Fatalf("decision graph via non-owner: %v", err)
	}
	viaOwner, err := h.clients[owner].DecisionGraph(e.name, e.params.DCut, 25)
	if err != nil {
		t.Fatalf("decision graph via owner: %v", err)
	}
	if viaStranger.N != viaOwner.N || len(viaStranger.Points) != len(viaOwner.Points) {
		t.Fatalf("relayed graph shape N=%d/%d points=%d/%d",
			viaStranger.N, viaOwner.N, len(viaStranger.Points), len(viaOwner.Points))
	}
	for i := range viaOwner.Points {
		a, b := viaStranger.Points[i], viaOwner.Points[i]
		if a.ID != b.ID ||
			math.Float64bits(a.Rho) != math.Float64bits(b.Rho) ||
			math.Float64bits(a.Delta) != math.Float64bits(b.Delta) {
			t.Fatalf("point %d differs across routes: %+v vs %+v", i, a, b)
		}
	}
	// The first call built the index on the primary; the relayed call must
	// not have built one anywhere else.
	builds := int64(0)
	for i, svc := range h.svcs {
		st := svc.Stats()
		if i != owner && st.IndexBuilds != 0 {
			t.Errorf("shard %d (non-owner) built %d indexes", i, st.IndexBuilds)
		}
		builds += st.IndexBuilds
	}
	if builds != 1 {
		t.Errorf("%d index builds across the ring, want 1", builds)
	}
	if !viaOwner.IndexReused {
		t.Error("owner's second request did not reuse the index")
	}
}

// TestRingSweepRoutesToPrimary: sweeps relay the same way, and a sweep
// through a non-owner costs the ring exactly one index build plus one
// cut per setting — all on the primary.
func TestRingSweepRoutesToPrimary(t *testing.T) {
	corpus := testCorpus(t, 3)
	h := startRing(t, 3, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
	}
	e := corpus[0]
	owner, stranger := ownerAndStranger(t, h, e.name)

	req := api.SweepRequest{Dataset: e.name, IncludeLabels: true}
	for _, scale := range []float64{0.6, 0.8, 1.0, 1.2} {
		req.Settings = append(req.Settings, api.SweepSetting{
			DCut: e.params.DCut * scale, RhoMin: e.params.RhoMin, DeltaMin: e.params.DeltaMin,
		})
	}
	got, err := h.clients[stranger].Sweep(req)
	if err != nil {
		t.Fatalf("sweep via non-owner: %v", err)
	}
	if len(got.Results) != len(req.Settings) {
		t.Fatalf("%d results for %d settings", len(got.Results), len(req.Settings))
	}

	// Single-node reference over the same CSV: labels must agree exactly.
	single := New(Options{Workers: 1, CacheSize: 16})
	singleSrv := httptest.NewServer(NewHandler(single))
	defer singleSrv.Close()
	singleC := NewClient(singleSrv.URL, testClientOptions())
	if _, err := singleC.PutDataset(e.name, "csv", e.csv); err != nil {
		t.Fatal(err)
	}
	want, err := singleC.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Results {
		labelsEqual(t, "relayed sweep labels", got.Results[i].Labels, want.Results[i].Labels)
		if got.Results[i].Clusters != want.Results[i].Clusters || got.Results[i].Noise != want.Results[i].Noise {
			t.Errorf("setting %d: clusters/noise %d/%d, single-node %d/%d", i,
				got.Results[i].Clusters, got.Results[i].Noise, want.Results[i].Clusters, want.Results[i].Noise)
		}
	}

	for i, svc := range h.svcs {
		st := svc.Stats()
		if i == owner {
			if st.IndexBuilds != 1 || st.IndexCuts != int64(len(req.Settings)) {
				t.Errorf("owner: builds=%d cuts=%d, want 1/%d", st.IndexBuilds, st.IndexCuts, len(req.Settings))
			}
			if st.ModelsCached != 0 {
				t.Errorf("owner cached %d models from a sweep", st.ModelsCached)
			}
		} else if st.IndexBuilds != 0 || st.IndexCuts != 0 {
			t.Errorf("shard %d (non-owner): builds=%d cuts=%d, want 0/0", i, st.IndexBuilds, st.IndexCuts)
		}
	}

	// Validation errors surface through the relay as typed APIErrors.
	if _, err := h.clients[stranger].Sweep(api.SweepRequest{Dataset: e.name}); err == nil {
		t.Error("empty sweep accepted through the relay")
	}
}
