package service

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/densindex"
	"repro/internal/drift"
	"repro/internal/geom"
)

// The drift subsystem converts the serving layer from fit-once-static
// to continuously self-correcting. With Options.Drift set, every batch
// and stream assign also feeds a per-model drift.Tracker (one lock per
// chunk, O(1) per point); when a tracker trips — the observed
// distance-to-center distribution or halo rate has left the fit-time
// reference — a single-flight background refit runs on the current
// dataset version while the old model keeps serving every in-flight
// and new request. The finished fit is published with one atomic
// pointer swap; streams that started on the old model finish on it.
//
// driftState pins the model it serves independently of the LRU cache,
// so neither eviction nor the version purge a sliding-window append
// performs can yank a model out from under live traffic.

// driftKey identifies one tracked serving lineage: the dataset name and
// the (normalized) model parameters, but NOT the dataset version — the
// whole point is to span version advances until a refit lands.
type driftKey struct {
	dataset   string
	algorithm string
	params    core.Params
}

// driftState is the serving state of one tracked model lineage.
type driftState struct {
	key driftKey

	mu            sync.Mutex
	served        *core.Model
	servedVersion uint64
	tracker       *drift.Tracker
	refitting     bool
	lastRefit     time.Time
}

// driftObs carries the observation target through one request: the
// tracker captured when the request resolved its model, plus the state
// for trip handling. A stream holds one driftObs for its whole life, so
// its observations stay paired with the model that produced them even
// if a refit swaps the state mid-stream.
type driftObs struct {
	st      *driftState
	tracker *drift.Tracker
}

// driftStatesCap bounds the tracked-lineage map; each entry pins one
// model. Scaled to the cache so drift pinning can never hold more than
// a few multiples of what the LRU already budgets.
func (s *Service) driftStatesCap() int {
	c := 4 * s.opts.cacheSize()
	if c < 32 {
		c = 32
	}
	return c
}

// driftState returns (creating if needed) the state for key.
func (s *Service) driftState(key driftKey) *driftState {
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	if st, ok := s.drifts[key]; ok {
		return st
	}
	if len(s.drifts) >= s.driftStatesCap() {
		for k, old := range s.drifts {
			old.mu.Lock()
			busy := old.refitting
			old.mu.Unlock()
			if busy {
				continue
			}
			delete(s.drifts, k)
			break
		}
	}
	st := &driftState{key: key}
	s.drifts[key] = st
	return st
}

// dropDriftStates forgets every tracked lineage of a dataset — called
// when the dataset is replaced wholesale (the old model is meaningless
// for the new points, so the next assign fits fresh, exactly as before
// drift existed) or evicted by a ring rebalance.
func (s *Service) dropDriftStates(name string) {
	s.driftMu.Lock()
	for k := range s.drifts {
		if k.dataset == name {
			delete(s.drifts, k)
		}
	}
	s.driftMu.Unlock()
}

// SetDriftHooks wires ring-mode coordination into the drift subsystem:
// primary gates background refits to the dataset's primary owner
// (replicas stale-serve until the refitted model arrives by snapshot
// shipping — they never refit), and onRefit fires after a refit swaps
// in a new model so the router can ship it to the replicas. Either may
// be nil (single-instance mode: always primary, nothing to ship).
func (s *Service) SetDriftHooks(primary func(dataset string) bool, onRefit func(dataset string)) {
	s.driftMu.Lock()
	s.driftPrimary, s.onDriftRefit = primary, onRefit
	s.driftMu.Unlock()
}

func (s *Service) driftHooks() (primary func(string) bool, onRefit func(string)) {
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	return s.driftPrimary, s.onDriftRefit
}

// serveFit resolves the model for an assign-path request. With drift
// disabled it is exactly Fit. With drift enabled it consults the
// lineage state first:
//
//   - served model at the current dataset version: serve it (the Fit
//     call is the usual cache hit and keeps every counter honest);
//   - version advanced (append, window expiry, replication install): a
//     ready model for the new version is adopted from the cache without
//     fitting; otherwise the pinned old model keeps serving — and if
//     the tracker has tripped, a background refit is (re)kicked;
//   - nothing served yet: a synchronous Fit, as before drift existed.
//
// Explicit POST /v1/fit keeps its synchronous semantics by calling Fit
// directly; only the assign paths serve stale.
func (s *Service) serveFit(dataset, algorithm string, p core.Params) (FitResult, *driftObs, error) {
	cfg := s.opts.Drift
	if cfg == nil {
		fr, err := s.Fit(dataset, algorithm, p)
		return fr, nil, err
	}
	if _, ok := core.AlgorithmByName(algorithm); !ok {
		return FitResult{}, nil, fmt.Errorf("service: unknown algorithm %q", algorithm)
	}
	p = s.normalize(algorithm, p)
	if err := p.Validate(); err != nil {
		return FitResult{}, nil, err
	}
	s.mu.RLock()
	e, ok := s.datasets[dataset]
	s.mu.RUnlock()
	if !ok {
		return FitResult{}, nil, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	v := e.version
	st := s.driftState(driftKey{dataset: dataset, algorithm: algorithm, params: p})

	st.mu.Lock()
	served, servedV, tracker := st.served, st.servedVersion, st.tracker
	st.mu.Unlock()

	switch {
	case served != nil && servedV == v:
		fr, err := s.Fit(dataset, algorithm, p)
		if err != nil {
			return FitResult{}, nil, err
		}
		if fr.Model != served {
			// Evicted and refit at the same version; re-pin and restart
			// tracking (the reference is deterministic, only counters reset).
			tracker = s.publish(st, fr.Model, v)
		}
		return fr, &driftObs{st: st, tracker: tracker}, nil

	case served != nil: // version advanced past the pinned model
		key := modelKey{dataset: dataset, version: v, algorithm: algorithm, params: p}
		if m, ok := s.cache.peekReady(key); ok {
			// The new version's model is already resident (shipped to this
			// replica, or fitted by an explicit /v1/fit): atomic adopt, no
			// fit, no stale serve.
			tracker = s.publish(st, m, v)
			s.fitRequests.Add(1)
			s.cache.hits.Add(1)
			return FitResult{Model: m, CacheHit: true}, &driftObs{st: st, tracker: tracker}, nil
		}
		s.fitRequests.Add(1)
		s.cache.hits.Add(1)
		s.driftStaleServes.Add(1)
		if tracker != nil && tracker.Tripped() {
			s.kickRefit(st, tracker)
		}
		return FitResult{Model: served, CacheHit: true}, &driftObs{st: st, tracker: tracker}, nil

	default: // nothing served yet
		fr, err := s.Fit(dataset, algorithm, p)
		if err != nil {
			return FitResult{}, nil, err
		}
		if mv, ok := s.versionOf(dataset, fr.Model); ok {
			tracker = s.publish(st, fr.Model, mv)
		}
		return fr, &driftObs{st: st, tracker: tracker}, nil
	}
}

// versionOf maps a model back to the registry version it was fitted on
// by backing-array identity; false when the dataset was replaced since.
func (s *Service) versionOf(name string, m *core.Model) (uint64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[name]
	if !ok || e.points != m.Dataset() {
		return 0, false
	}
	return e.version, true
}

// publish pins m as the lineage's served model and starts a fresh
// tracker against m's fit-time reference. Idempotent on the same model.
// Returns the current tracker.
func (s *Service) publish(st *driftState, m *core.Model, version uint64) *drift.Tracker {
	cfg := s.opts.Drift
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.served == m {
		st.servedVersion = version
		return st.tracker
	}
	ref := drift.NewReference(m.ReferenceDists(cfg.RefSample()))
	st.served = m
	st.servedVersion = version
	st.tracker = drift.NewTracker(*cfg, ref)
	return st.tracker
}

// kickRefit starts the single-flight background refit for a tripped
// lineage, unless one is already running, the cooldown has not elapsed,
// or this instance is not the dataset's primary (replicas receive the
// refitted model by snapshot shipping instead). tr must be the tracker
// whose trip motivated the kick — a retired tracker (its model was
// already swapped) kicks nothing.
func (s *Service) kickRefit(st *driftState, tr *drift.Tracker) {
	primary, _ := s.driftHooks()
	st.mu.Lock()
	if tr == nil || st.tracker != tr || st.refitting {
		st.mu.Unlock()
		return
	}
	if !st.lastRefit.IsZero() && time.Since(st.lastRefit) < s.opts.Drift.RefitCooldown() {
		st.mu.Unlock()
		return
	}
	if primary != nil && !primary(st.key.dataset) {
		st.mu.Unlock()
		return
	}
	st.refitting = true
	st.lastRefit = time.Now()
	st.mu.Unlock()
	go s.runRefit(st)
}

// runRefit performs one background refit and publishes the result. The
// Fit goes through the normal single-flight cache path, so a concurrent
// explicit /v1/fit and the refit share one ClusterDataset pass.
func (s *Service) runRefit(st *driftState) {
	fr, err := s.Fit(st.key.dataset, st.key.algorithm, st.key.params)
	swapped := false
	st.mu.Lock()
	st.refitting = false
	if err == nil {
		if v, ok := s.versionOf(st.key.dataset, fr.Model); ok && fr.Model != st.served {
			cfg := s.opts.Drift
			ref := drift.NewReference(fr.Model.ReferenceDists(cfg.RefSample()))
			st.served = fr.Model
			st.servedVersion = v
			st.tracker = drift.NewTracker(*cfg, ref)
			swapped = true
		}
	}
	st.mu.Unlock()
	if err != nil {
		if s.store != nil {
			s.store.Log("service: drift refit %s/%s: %v", st.key.dataset, st.key.algorithm, err)
		}
		return
	}
	if swapped {
		s.driftRefits.Add(1)
		if _, onRefit := s.driftHooks(); onRefit != nil {
			// Ship the refitted model to the replicas so they swap by
			// warm-load, never by refitting.
			onRefit(st.key.dataset)
		}
	}
}

// Drift reports the drift status of every tracked model lineage of a
// dataset (GET /v1/drift), optionally filtered to one algorithm. The
// dataset must be registered; an empty Models list means no assign
// traffic has been tracked yet.
func (s *Service) Drift(dataset, algorithm string) (*api.DriftResponse, error) {
	s.mu.RLock()
	_, ok := s.datasets[dataset]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	resp := &api.DriftResponse{Dataset: dataset, Enabled: s.opts.Drift != nil}
	if !resp.Enabled {
		return resp, nil
	}
	s.driftMu.Lock()
	states := make([]*driftState, 0, len(s.drifts))
	for k, st := range s.drifts {
		if k.dataset != dataset || (algorithm != "" && k.algorithm != algorithm) {
			continue
		}
		states = append(states, st)
	}
	s.driftMu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		m := api.DriftModel{
			Algorithm: st.key.algorithm,
			Params:    wireParams(st.key.params),
			Version:   st.servedVersion,
			Refitting: st.refitting,
		}
		tracker := st.tracker
		st.mu.Unlock()
		if tracker != nil {
			m.Status = wireDriftStatus(tracker.Status())
		}
		resp.Models = append(resp.Models, m)
	}
	sort.Slice(resp.Models, func(a, b int) bool {
		if resp.Models[a].Algorithm != resp.Models[b].Algorithm {
			return resp.Models[a].Algorithm < resp.Models[b].Algorithm
		}
		return resp.Models[a].Params.DCut < resp.Models[b].Params.DCut
	})
	return resp, nil
}

// wireDriftStatus converts a tracker snapshot into its wire shape.
func wireDriftStatus(st drift.Status) *api.DriftStatus {
	out := &api.DriftStatus{
		Observed: st.Observed,
		Halo:     st.Halo,
		HaloRate: st.HaloRate,
		Q50:      st.Q50,
		Q90:      st.Q90,
		Score:    st.Score,
		Tripped:  st.Tripped,
		Reference: api.DriftReference{
			Q50: st.Reference.Q50, Q90: st.Reference.Q90,
			HaloRate: st.Reference.HaloRate, N: st.Reference.N,
		},
	}
	for _, w := range st.Windows {
		out.Windows = append(out.Windows, api.DriftWindow{
			Count: w.Count, Halo: w.Halo, HaloRate: w.HaloRate,
			Q50: w.Q50, Q90: w.Q90, Score: w.Score,
		})
	}
	return out
}

// driftScore returns the maximum live drift score across tracked
// lineages — the single-gauge summary Stats carries.
func (s *Service) driftScore() (score float64, models int) {
	s.driftMu.Lock()
	states := make([]*driftState, 0, len(s.drifts))
	for _, st := range s.drifts {
		states = append(states, st)
	}
	s.driftMu.Unlock()
	for _, st := range states {
		st.mu.Lock()
		tracker := st.tracker
		st.mu.Unlock()
		if tracker == nil {
			continue
		}
		if sc := tracker.Status().Score; sc > score {
			score = sc
		}
	}
	return score, len(states)
}

// AppendPoints appends pts to a registered dataset, expiring the oldest
// points past Options.Window (<= 0: unbounded), and advances the
// dataset version — the sliding-window mutation of POST /v1/points.
// Models fitted on the previous version are purged from the cache but
// keep serving through their drift pins until a refit lands; the
// density index is maintained incrementally when resident (full rebuild
// on demand otherwise). The appended rows are validated like an upload:
// rectangular, the dataset's dimensionality, no NaN/Inf.
func (s *Service) AppendPoints(name string, pts [][]float64) (api.AppendResponse, error) {
	if len(pts) == 0 {
		return api.AppendResponse{}, fmt.Errorf("service: append of zero points")
	}
	for {
		s.mu.RLock()
		e, ok := s.datasets[name]
		s.mu.RUnlock()
		if !ok {
			return api.AppendResponse{}, fmt.Errorf("service: unknown dataset %q", name)
		}
		old, oldVersion := e.points, e.version
		for i, p := range pts {
			if len(p) != old.Dim {
				return api.AppendResponse{}, fmt.Errorf("service: appended point %d has dimension %d, want %d", i, len(p), old.Dim)
			}
			for j, x := range p {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return api.AppendResponse{}, fmt.Errorf("service: appended point %d coordinate %d is %v", i, j, x)
				}
			}
		}
		// Window arithmetic: keep the newest Window points overall. A
		// window smaller than the append itself drops the append's own
		// head too.
		keepPts := pts
		total := old.N + len(pts)
		expire := 0
		if w := int(s.opts.Window); w > 0 && total > w {
			expire = total - w
			if expire > old.N {
				keepPts = pts[expire-old.N:]
				expire = old.N
			}
		}
		expired := expire + (len(pts) - len(keepPts))
		nds := appendDataset(old, expire, keepPts)
		newVersion := oldVersion + 1

		s.mu.Lock()
		cur, still := s.datasets[name]
		if !still || cur.version != oldVersion {
			s.mu.Unlock()
			continue // raced a replace/append; revalidate against the new entry
		}
		s.datasets[name] = &datasetEntry{points: nds, version: newVersion}
		s.mu.Unlock()

		s.cache.purgeStale(name, newVersion)
		s.pointsAppended.Add(int64(len(keepPts)))
		s.pointsExpired.Add(int64(expired))
		updated := s.updateIndex(name, oldVersion, newVersion, nds, expire, len(keepPts))
		if s.store != nil {
			if err := s.store.SaveDataset(name, newVersion, nds); err != nil {
				s.persistErrors.Add(1)
				s.store.Log("service: persisting dataset %q v%d: %v", name, newVersion, err)
			}
		}
		return api.AppendResponse{
			Dataset: name, N: nds.N, Dim: nds.Dim, Precision: nds.Precision(),
			Version: newVersion, Appended: len(keepPts), Expired: expired,
			IndexUpdated: updated,
		}, nil
	}
}

// appendDataset builds the post-append dataset: old rows [expire:] plus
// pts, in fresh backing arrays at the old precision (models keep
// references to the old arrays — datasets are frozen, so the append is
// copy-on-write).
func appendDataset(old *geom.Dataset, expire int, pts [][]float64) *geom.Dataset {
	kept := old.N - expire
	n := kept + len(pts)
	dim := old.Dim
	if old.Float32() {
		coords := make([]float32, 0, n*dim)
		coords = append(coords, old.Coords32[expire*dim:]...)
		for _, p := range pts {
			for _, x := range p {
				coords = append(coords, float32(x))
			}
		}
		return &geom.Dataset{Coords32: coords, N: n, Dim: dim}
	}
	coords := make([]float64, 0, n*dim)
	coords = append(coords, old.Coords[expire*dim:]...)
	for _, p := range pts {
		coords = append(coords, p...)
	}
	return &geom.Dataset{Coords: coords, N: n, Dim: dim}
}

// updateIndex maintains the dataset's density index across an append:
// when an index is resident (ready, at the pre-append version) it is
// updated incrementally — expired edges filtered, appended points
// range-searched against a tree over just the appended rows — and the
// result adopted at the new version; any other state drops the index
// (rebuilt on demand, the correctness fallback). Reports whether the
// incremental update succeeded.
func (s *Service) updateIndex(name string, oldVersion, newVersion uint64, nds *geom.Dataset, expired, appended int) bool {
	s.indexMu.Lock()
	ent := s.indexes[name]
	s.indexMu.Unlock()
	if ent == nil || ent.version != oldVersion {
		s.dropIndex(name)
		return false
	}
	select {
	case <-ent.ready:
	default:
		s.dropIndex(name) // still building for the replaced version
		return false
	}
	if ent.err != nil || ent.idx == nil {
		s.dropIndex(name)
		return false
	}
	idx, err := densindex.Update(ent.idx, nds, expired, appended, s.opts.Workers, s.opts.indexMaxEdges())
	if err != nil {
		s.dropIndex(name)
		return false
	}
	if !s.adoptIndex(name, newVersion, idx) {
		return false
	}
	s.indexUpdates.Add(1)
	if s.store != nil {
		s.persistIndex(name, newVersion, idx)
	}
	return true
}
