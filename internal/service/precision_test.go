package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/api"
	"repro/internal/data"
)

// TestPrecisionUploadHTTP covers the ?precision= upload surface: f32
// uploads store narrowed points and echo "f32" everywhere DatasetInfo
// appears, the default stays f64, an unsupported value is the typed
// unsupported_precision envelope, and an f32 dataset serves fits.
func TestPrecisionUploadHTTP(t *testing.T) {
	svc := New(Options{Workers: 2, CacheSize: 4})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	client := ts.Client()

	d := data.SSet(2, 400, 3)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	put := func(name, query string) (int, api.DatasetInfo, api.ErrorEnvelope) {
		req, _ := http.NewRequest("PUT", ts.URL+"/v1/datasets/"+name+query, bytes.NewReader(csv.Bytes()))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info api.DatasetInfo
		var env api.ErrorEnvelope
		if resp.StatusCode < 300 {
			if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
				t.Fatal(err)
			}
		} else if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, info, env
	}

	code, info, _ := put("narrow", "?precision=f32")
	if code != http.StatusCreated || info.Precision != api.PrecisionF32 {
		t.Fatalf("f32 upload: code=%d info=%+v", code, info)
	}
	code, info, _ = put("wide", "")
	if code != http.StatusCreated || info.Precision != api.PrecisionF64 {
		t.Fatalf("default upload: code=%d info=%+v", code, info)
	}
	code, info, _ = put("wide2", "?precision=f64")
	if code != http.StatusCreated || info.Precision != api.PrecisionF64 {
		t.Fatalf("explicit f64 upload: code=%d info=%+v", code, info)
	}
	code, _, env := put("bogus", "?precision=f16")
	if code != http.StatusBadRequest || env.Error.Code != api.CodeUnsupportedPrecision {
		t.Fatalf("bad precision: code=%d envelope=%+v, want 400 %s", code, env, api.CodeUnsupportedPrecision)
	}

	// GET echoes the stored precision; stats count the narrow dataset.
	var got api.DatasetInfo
	if code := doJSON(t, client, "GET", ts.URL+"/v1/datasets/narrow", nil, &got); code != 200 || got.Precision != api.PrecisionF32 {
		t.Fatalf("get narrow: code=%d info=%+v", code, got)
	}
	var st api.Stats
	if code := doJSON(t, client, "GET", ts.URL+"/v1/stats", nil, &st); code != 200 {
		t.Fatalf("stats: code=%d", code)
	}
	if st.Datasets != 3 || st.DatasetsF32 != 1 {
		t.Fatalf("stats = %d datasets / %d f32, want 3/1", st.Datasets, st.DatasetsF32)
	}

	// The f32 dataset fits and assigns like any other.
	fitReq := api.FitRequest{
		Dataset: "narrow", Algorithm: "Ex-DPC",
		Params: api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}
	var fr api.FitResponse
	if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", fitReq, &fr); code != 200 || fr.Model.Clusters == 0 {
		t.Fatalf("fit on f32 dataset: code=%d resp=%+v", code, fr)
	}

	// Same bytes at a different width are a replacement, not a no-op
	// re-upload: the stored precision flips and cached models of the f32
	// version are purged, so the same fit is a fresh miss.
	code, info, _ = put("narrow", "?precision=f64")
	if code != http.StatusCreated || info.Precision != api.PrecisionF64 {
		t.Fatalf("re-upload at f64: code=%d info=%+v", code, info)
	}
	if code := doJSON(t, client, "POST", ts.URL+"/v1/fit", fitReq, &fr); code != 200 {
		t.Fatalf("fit after width change: code=%d", code)
	}
	if fr.CacheHit {
		t.Fatal("fit after width change served the f32 model from cache; precision is identity")
	}
}

// TestPrecisionQueryValidation exercises the consolidated ParseQuery
// surface beyond precision: a malformed decision-graph query and a
// malformed stream chunk must both produce the uniform error envelope,
// never a bare-string body.
func TestPrecisionQueryValidation(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	for _, tc := range []struct {
		url  string
		code string
	}{
		{"/v1/decision-graph?dataset=x&dcut=abc", api.CodeBadRequest},
		{"/v1/decision-graph?dcut=1", api.CodeBadRequest},
		{"/v1/decision-graph?dataset=x&dcut=1&limit=-2", api.CodeBadRequest},
	} {
		resp, err := ts.Client().Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		var env api.ErrorEnvelope
		err = json.NewDecoder(resp.Body).Decode(&env)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: body is not the error envelope: %v", tc.url, err)
		}
		if resp.StatusCode != http.StatusBadRequest || env.Error.Code != tc.code {
			t.Errorf("%s: code=%d envelope=%+v, want 400 %s", tc.url, resp.StatusCode, env, tc.code)
		}
		if env.Error.Message == "" {
			t.Errorf("%s: empty error message", tc.url)
		}
	}
}

// TestPrecisionRingEcho: GET /v1/ring?key= on a replicating instance
// echoes the resident dataset's precision — including on a replica whose
// copy arrived as a shipped snapshot, proving f32 survives replication.
func TestPrecisionRingEcho(t *testing.T) {
	h := startRingRF(t, 2, 2, nil)
	d := data.SSet(1, 300, 5)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := h.clients[0].PutDatasetPrecision("pts", "csv", api.PrecisionF32, csv.Bytes()); err != nil {
		t.Fatal(err)
	}
	for i := range h.addrs {
		resp, err := http.Get(h.addrs[i] + "/v1/ring?key=pts")
		if err != nil {
			t.Fatal(err)
		}
		var ri api.RingInfo
		err = json.NewDecoder(resp.Body).Decode(&ri)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ri.Dataset == nil {
			t.Fatalf("shard %d: no dataset echo for a key it replicates (rf=2, 2 shards)", i)
		}
		if ri.Dataset.Precision != api.PrecisionF32 || ri.Dataset.N != d.Points.N {
			t.Errorf("shard %d: echo %+v, want n=%d precision=f32", i, ri.Dataset, d.Points.N)
		}
	}
}

// TestPrecisionClientUnsupported: the typed error surfaces through the
// Go client as CodeUnsupportedPrecision, distinguishable from a generic
// bad request.
func TestPrecisionClientUnsupported(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	_, err := c.PutDatasetPrecision("x", "csv", "f99", []byte("1,2\n"))
	if err == nil {
		t.Fatal("unsupported precision accepted")
	}
	var ae *api.APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeUnsupportedPrecision {
		t.Errorf("error %v does not carry the %s code", err, api.CodeUnsupportedPrecision)
	}
}
