package service

import (
	"bytes"
	"testing"

	"repro/internal/data"
)

// TestIndexShipsToReplicas: once the primary pays a decision-graph
// index build, the index travels to the key's replicas alongside the
// dataset and model snapshots, so a promoted replica re-cuts warm. The
// replica must hold a resident, ready index for the current version
// without ever having built one itself.
func TestIndexShipsToReplicas(t *testing.T) {
	h := startRingRF(t, 2, 2, nil)
	d := data.SSet(2, 400, 7)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	const name = "pts"
	h.uploadCSV(0, name, csv.Bytes())

	primary := -1
	for i, rt := range h.routers {
		if owners := rt.owners(name); len(owners) > 0 && owners[0] == rt.self {
			primary = i
		}
	}
	if primary == -1 {
		t.Fatal("no primary for the key")
	}
	replica := 1 - primary

	if _, err := h.clients[primary].DecisionGraph(name, d.DCut, 10); err != nil {
		t.Fatal(err)
	}

	for i, svc := range h.svcs {
		st := svc.Stats()
		if i == primary && st.IndexBuilds != 1 {
			t.Errorf("primary paid %d builds, want 1", st.IndexBuilds)
		}
		if i == replica && st.IndexBuilds != 0 {
			t.Errorf("replica paid %d builds, want 0 (the index ships)", st.IndexBuilds)
		}
	}

	// The replica holds the shipped index, resident and ready at the
	// dataset's current version.
	rs := h.svcs[replica]
	rs.mu.RLock()
	e, ok := rs.datasets[name]
	rs.mu.RUnlock()
	if !ok {
		t.Fatal("replica lost the dataset")
	}
	idx, ok := rs.residentIndex(name, e.version, d.DCut)
	if !ok || idx == nil {
		t.Fatal("replica has no resident index after the primary's build; the ship did not land")
	}

	// Serving from the shipped copy: the replica's own decision graph is
	// an index reuse, not a rebuild, and matches the primary's answer.
	gotP, err := h.svcs[primary].DecisionGraph(name, d.DCut, 10)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := rs.DecisionGraph(name, d.DCut, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !gotR.IndexReused {
		t.Error("replica rebuilt instead of reusing the shipped index")
	}
	if len(gotR.Points) != len(gotP.Points) {
		t.Fatalf("replica graph has %d points, primary %d", len(gotR.Points), len(gotP.Points))
	}
	for i := range gotP.Points {
		if gotP.Points[i] != gotR.Points[i] {
			t.Fatalf("graph point %d differs: primary %+v, replica %+v", i, gotP.Points[i], gotR.Points[i])
		}
	}
	if st := rs.Stats(); st.IndexBuilds != 0 {
		t.Errorf("replica paid %d builds after serving from the shipped index", st.IndexBuilds)
	}
}

// TestSelfHealShipsIndex: the membership-change self-heal pass re-ships
// indexes too — a replica that joined after the build still ends up
// warm.
func TestSelfHealShipsIndex(t *testing.T) {
	h := startRingRF(t, 2, 2, nil)
	d := data.SSet(3, 300, 11)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	const name = "heal"
	h.uploadCSV(0, name, csv.Bytes())

	primary := -1
	for i, rt := range h.routers {
		if owners := rt.owners(name); len(owners) > 0 && owners[0] == rt.self {
			primary = i
		}
	}
	replica := 1 - primary

	// Build on the primary, then wipe the replica's index (simulating a
	// replica that missed the post-build ship) and force a self-heal.
	if _, err := h.clients[primary].DecisionGraph(name, d.DCut, 5); err != nil {
		t.Fatal(err)
	}
	h.svcs[replica].dropIndex(name)
	h.routers[primary].selfHeal()

	rs := h.svcs[replica]
	rs.mu.RLock()
	e, ok := rs.datasets[name]
	rs.mu.RUnlock()
	if !ok {
		t.Fatal("replica lost the dataset")
	}
	if _, ok := rs.residentIndex(name, e.version, d.DCut); !ok {
		t.Fatal("self-heal did not restore the replica's index")
	}
}
