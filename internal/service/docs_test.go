package service

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// routeRegistration matches the literal patterns handed to
// mux.HandleFunc in this package — the single source of truth for what
// the daemon serves.
var routeRegistration = regexp.MustCompile(`mux\.HandleFunc\("([A-Z]+) ([^"]+)"`)

// TestDocsCoverRegisteredRoutes enumerates every route registered by the
// single-node handler and the ring router and fails if docs/api.md does
// not mention it — so an endpoint cannot ship undocumented, and the doc
// page cannot silently rot when routes move.
func TestDocsCoverRegisteredRoutes(t *testing.T) {
	docs, err := os.ReadFile("../../docs/api.md")
	if err != nil {
		t.Fatalf("docs/api.md must exist and document every route: %v", err)
	}
	seen := map[string]bool{}
	for _, src := range []string{"http.go", "router.go"} {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range routeRegistration.FindAllStringSubmatch(string(b), -1) {
			method, path := m[1], m[2]
			key := method + " " + path
			if seen[key] {
				continue
			}
			seen[key] = true
			if !strings.Contains(string(docs), "`"+path+"`") {
				t.Errorf("%s (registered in %s) is not documented in docs/api.md", key, src)
			}
		}
	}
	// A rewrite that moves registration off mux.HandleFunc literals would
	// silently blind this test; the floor catches that.
	if len(seen) < 12 {
		t.Fatalf("found only %d registered routes — route extraction is broken", len(seen))
	}
}
