package service

import (
	"fmt"

	"repro/api"
	"repro/internal/core"
	"repro/internal/densindex"
	"repro/internal/persist"
)

// Replication is snapshot shipping, not consensus: fitted models are
// immutable and datasets are versioned, so the primary for a key simply
// encodes the same persist snapshot images it writes to its own disk and
// POSTs them to the key's replicas, which install them as warm state.
// An install is exactly a restart warm-load — the kd-tree is rebuilt,
// the clustering is not re-run — so replica state never costs a refit
// and never counts as a cache miss. Installs are idempotent and
// version-ordered, which makes re-shipping after membership changes (the
// router's self-heal pass) safe to do eagerly.

// snapshotContentType is the media type of a shipped snapshot image: the
// DPS1 container from internal/persist, byte-identical to the on-disk
// snapshot files.
const snapshotContentType = "application/x-dpc-snapshot"

// InstallSnapshot decodes one shipped snapshot image (dataset or model)
// and installs it as warm local state, exactly as a restart warm-load
// would: no refit, no cache miss. Stale ships — an older dataset
// version, a model for a version no longer resident — are refused or
// no-oped rather than regressing local state, so replays from a lagging
// primary are harmless.
func (s *Service) InstallSnapshot(raw []byte) (api.InstallResult, error) {
	snap, err := persist.DecodeSnapshot(raw)
	if err != nil {
		return api.InstallResult{}, fmt.Errorf("service: decoding shipped snapshot: %w", err)
	}
	switch sn := snap.(type) {
	case *persist.DatasetSnapshot:
		return s.installDataset(sn)
	case *persist.ModelSnapshot:
		return s.installModel(sn)
	case *persist.IndexSnapshot:
		return s.installIndex(sn)
	default:
		return api.InstallResult{}, fmt.Errorf("service: unknown snapshot type %T", snap)
	}
}

// installDataset registers a shipped dataset unless an equal-or-newer
// version is already resident. Versions are assigned by the key's
// primary and travel with every snapshot, so replicas order ships
// without any clock. A fresh install purges cached models of older
// versions, mirroring PutDataset.
func (s *Service) installDataset(sn *persist.DatasetSnapshot) (api.InstallResult, error) {
	res := api.InstallResult{Kind: "dataset", Dataset: sn.Name, Version: sn.Version}
	s.mu.Lock()
	if old, ok := s.datasets[sn.Name]; ok && old.version >= sn.Version {
		s.mu.Unlock()
		if s.store != nil && old.version == sn.Version {
			// Same self-heal opportunity as an idempotent re-upload: if this
			// version's snapshot never made it to disk, write it now.
			if err := s.store.EnsureDataset(sn.Name, sn.Version, sn.Points); err != nil {
				s.persistErrors.Add(1)
				s.store.Log("service: re-persisting replicated dataset %q v%d: %v", sn.Name, sn.Version, err)
			}
		}
		return res, nil
	}
	s.datasets[sn.Name] = &datasetEntry{points: sn.Points, version: sn.Version}
	s.mu.Unlock()
	s.cache.purgeStale(sn.Name, sn.Version)
	res.Installed = true
	s.datasetsReplicated.Add(1)
	if s.store != nil {
		if err := s.store.SaveDataset(sn.Name, sn.Version, sn.Points); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting replicated dataset %q v%d: %v", sn.Name, sn.Version, err)
		}
	}
	return res, nil
}

// installModel rebuilds a shipped model against the resident dataset and
// puts it in the cache as a completed entry. The dataset must already be
// resident at the snapshot's exact version with a matching fingerprint —
// the primary always ships the dataset before its models, so a mismatch
// means the ship is stale and is an error the primary's counters surface.
func (s *Service) installModel(sn *persist.ModelSnapshot) (api.InstallResult, error) {
	res := api.InstallResult{Kind: "model", Dataset: sn.Key.Dataset, Version: sn.Key.Version}
	s.mu.RLock()
	e, ok := s.datasets[sn.Key.Dataset]
	s.mu.RUnlock()
	if !ok {
		return res, fmt.Errorf("service: model snapshot for absent dataset %q", sn.Key.Dataset)
	}
	if e.version != sn.Key.Version {
		return res, fmt.Errorf("service: model snapshot for %q v%d but resident version is v%d",
			sn.Key.Dataset, sn.Key.Version, e.version)
	}
	if e.points.Fingerprint() != sn.DatasetFingerprint {
		return res, fmt.Errorf("service: model snapshot for %q v%d fitted on different points (fingerprint mismatch)",
			sn.Key.Dataset, sn.Key.Version)
	}
	key := s.restoredKey(sn.Key)
	if s.cache.has(key) {
		return res, nil
	}
	m, err := core.Restore(sn.Key.Algorithm, e.points, sn.Result, key.params, sn.FitTime)
	if err != nil {
		return res, fmt.Errorf("service: rebuilding replicated model %s/%s: %w", sn.Key.Dataset, sn.Key.Algorithm, err)
	}
	if !s.cache.put(key, m) {
		return res, nil // a concurrent install or fit won the race
	}
	res.Installed = true
	s.modelsReplicated.Add(1)
	if s.store != nil {
		if err := s.store.SaveModel(sn.Key, m); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting replicated model %s/%s: %v", sn.Key.Dataset, sn.Key.Algorithm, err)
		}
	}
	return res, nil
}

// installIndex adopts a shipped density-index snapshot as warm state,
// the same way restart warm-loading does. The primary ships its index
// alongside dataset and model snapshots once a build completes, so a
// promoted replica answers decision-graph and sweep requests without
// re-paying the build; a replica that never received one still rebuilds
// on demand. Mismatched dataset version or fingerprint is a stale
// ship — refused.
func (s *Service) installIndex(sn *persist.IndexSnapshot) (api.InstallResult, error) {
	res := api.InstallResult{Kind: "index", Dataset: sn.Dataset, Version: sn.Version}
	s.mu.RLock()
	e, ok := s.datasets[sn.Dataset]
	s.mu.RUnlock()
	if !ok {
		return res, fmt.Errorf("service: index snapshot for absent dataset %q", sn.Dataset)
	}
	if e.version != sn.Version {
		return res, fmt.Errorf("service: index snapshot for %q v%d but resident version is v%d",
			sn.Dataset, sn.Version, e.version)
	}
	if e.points.Fingerprint() != sn.DatasetFingerprint {
		return res, fmt.Errorf("service: index snapshot for %q v%d built on different points (fingerprint mismatch)",
			sn.Dataset, sn.Version)
	}
	idx, err := densindex.FromParts(e.points, sn.DCutMax, sn.Start, sn.IDs, sn.Sq)
	if err != nil {
		return res, fmt.Errorf("service: rebuilding shipped index for %q: %w", sn.Dataset, err)
	}
	if !s.adoptIndex(sn.Dataset, sn.Version, idx) {
		return res, nil // a resident index already covers at least this ceiling
	}
	res.Installed = true
	return res, nil
}

// ReplicationSnapshots encodes everything a replica needs for one
// resident dataset: the dataset snapshot first (installs must see it
// before any model or index), then one model snapshot per completed
// cache entry fitted on the current version, then — when a density
// index for the current version is resident and ready — that index's
// snapshot, so a promoted replica serves decision-graph and sweep
// requests without re-paying the build. nil when the dataset is not
// resident. In-flight fits and builds are skipped — they ship when they
// finish via the router's post-write replication.
func (s *Service) ReplicationSnapshots(name string) [][]byte {
	s.mu.RLock()
	e, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok {
		return nil
	}
	out := [][]byte{persist.EncodeDataset(name, e.version, e.points)}
	fp := e.points.Fingerprint()
	for _, cm := range s.cache.completed(name, e.version) {
		pk := persist.ModelKey{
			Dataset:   cm.key.dataset,
			Version:   cm.key.version,
			Algorithm: cm.key.algorithm,
			Params:    cm.key.params,
		}
		// Thread count is host policy, not model identity — zeroed on the
		// wire exactly as SaveModel zeroes it on disk.
		pk.Params.Workers = 0
		out = append(out, persist.EncodeModel(pk, fp, cm.model.FitTime(), cm.model.Result()))
	}
	if raw := s.indexSnapshot(name, e.version, fp); raw != nil {
		out = append(out, raw)
	}
	return out
}

// indexSnapshot encodes the dataset's resident density index when it is
// ready and built on exactly this version; nil otherwise (absent, in
// flight, failed, or stale — a replica rebuilds on demand in those
// cases, as before).
func (s *Service) indexSnapshot(name string, version uint64, fingerprint uint64) []byte {
	s.indexMu.Lock()
	ent := s.indexes[name]
	s.indexMu.Unlock()
	if ent == nil || ent.version != version {
		return nil
	}
	select {
	case <-ent.ready:
	default:
		return nil
	}
	if ent.err != nil || ent.idx == nil {
		return nil
	}
	dcMax, start, ids, sq := ent.idx.Parts()
	return persist.EncodeIndex(&persist.IndexSnapshot{
		Dataset: name, Version: version,
		DatasetFingerprint: fingerprint,
		DCutMax:            dcMax, Start: start, IDs: ids, Sq: sq,
	})
}

// completedModel is one snapshot-able cache entry.
type completedModel struct {
	key   modelKey
	model *core.Model
}

// completed returns the cache's finished, successful entries for one
// dataset version. In-flight and failed entries are excluded.
func (c *modelCache) completed(name string, version uint64) []completedModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []completedModel
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		if e.key.dataset != name || e.key.version != version {
			continue
		}
		select {
		case <-e.ready:
		default:
			continue // still fitting
		}
		if e.err != nil || e.model == nil {
			continue
		}
		out = append(out, completedModel{key: e.key, model: e.model})
	}
	return out
}

// has reports whether key is present (completed or in flight) without
// touching LRU order or hit counters.
func (c *modelCache) has(key modelKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}
