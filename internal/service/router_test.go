package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/api"
	"repro/internal/data"
	"repro/internal/persist"
	"repro/internal/ring"
)

// ringHarness is an in-process dpcd ring: one Service+Router per shard,
// each behind a real HTTP listener, plus the datasets the test uploaded.
type ringHarness struct {
	t       *testing.T
	addrs   []string
	servers []*httptest.Server
	routers []*Router
	svcs    []*Service
	clients []*Client
}

// testClientOptions keeps retries fast so a test against a killed shard
// fails over in milliseconds, not seconds.
func testClientOptions() ClientOptions {
	return ClientOptions{Retries: 1, Backoff: time.Millisecond}
}

// startRing boots n shards at rf=1 — the pre-replication single-owner
// ring. dirs[i], when non-empty, gives shard i a snapshot store.
func startRing(t *testing.T, n int, dirs []string) *ringHarness {
	return startRingRF(t, n, 1, dirs)
}

// startRingRF boots n shards with the given replication factor.
// Listeners are created first so every router can be born knowing the
// full (real) peer list.
func startRingRF(t *testing.T, n, rf int, dirs []string) *ringHarness {
	t.Helper()
	h := &ringHarness{t: t}
	for i := 0; i < n; i++ {
		srv := httptest.NewUnstartedServer(nil)
		h.servers = append(h.servers, srv)
		h.addrs = append(h.addrs, "http://"+srv.Listener.Addr().String())
	}
	for i := 0; i < n; i++ {
		var store *persist.Store
		if dirs != nil && dirs[i] != "" {
			var err error
			store, err = persist.Open(dirs[i], t.Logf)
			if err != nil {
				t.Fatal(err)
			}
		}
		svc := New(Options{Workers: 1, CacheSize: 16, Store: store})
		rt, err := NewRouter(svc, h.addrs[i], h.addrs, RouterOptions{Vnodes: 128, RF: rf, Client: testClientOptions()})
		if err != nil {
			t.Fatal(err)
		}
		h.svcs = append(h.svcs, svc)
		h.routers = append(h.routers, rt)
		h.servers[i].Config.Handler = rt.Handler()
		h.servers[i].Start()
		h.clients = append(h.clients, NewClient(h.addrs[i], testClientOptions()))
	}
	t.Cleanup(func() {
		for _, s := range h.servers {
			s.Close()
		}
	})
	return h
}

// uploadCSV uploads the same CSV bytes under name through the given
// instance (routing forwards to the owner as needed).
func (h *ringHarness) uploadCSV(via int, name string, csv []byte) {
	h.t.Helper()
	if _, err := h.clients[via].PutDataset(name, "csv", csv); err != nil {
		h.t.Fatalf("upload %s via shard %d: %v", name, via, err)
	}
}

// testCorpus builds k small named datasets with a shared probe batch per
// dataset: CSV bytes for upload, fit params, and perturbed probe points.
type corpusEntry struct {
	name   string
	csv    []byte
	params api.Params
	probes [][]float64
}

func testCorpus(t *testing.T, k int) []corpusEntry {
	t.Helper()
	out := make([]corpusEntry, 0, k)
	for i := 0; i < k; i++ {
		d := data.SSet(2, 400, int64(i+1))
		var buf bytes.Buffer
		if err := data.SaveCSV(&buf, d.Points); err != nil {
			t.Fatal(err)
		}
		probes := make([][]float64, 25)
		for j := range probes {
			base := d.Points.At((j * 13) % d.Points.N)
			q := make([]float64, len(base))
			for c := range q {
				q[c] = base[c] + float64(j%5)*d.DCut/10
			}
			probes[j] = q
		}
		out = append(out, corpusEntry{
			name:   fmt.Sprintf("ds-%02d", i),
			csv:    buf.Bytes(),
			params: api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
			probes: probes,
		})
	}
	return out
}

// rawPost posts body and returns status plus the exact response bytes.
func rawPost(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRingByteIdenticalAnswers is the acceptance core: a 3-shard ring
// answers /v1/fit and /v1/assign for any key sent to any instance with
// responses byte-identical to a single-node dpcd over the same data.
func TestRingByteIdenticalAnswers(t *testing.T) {
	corpus := testCorpus(t, 6)

	// Single-node reference.
	single := New(Options{Workers: 1, CacheSize: 16})
	singleSrv := httptest.NewServer(NewHandler(single))
	defer singleSrv.Close()
	singleC := NewClient(singleSrv.URL, testClientOptions())

	h := startRing(t, 3, nil)
	for _, e := range corpus {
		if _, err := singleC.PutDataset(e.name, "csv", e.csv); err != nil {
			t.Fatal(err)
		}
		// All ring uploads go through shard 0; non-owned names must be
		// forwarded to their owners transparently.
		h.uploadCSV(0, e.name, e.csv)
	}

	// Ownership must be spread: with 6 keys on 3 shards at 128 vnodes it
	// is astronomically unlikely one shard owns everything, and the
	// forwarding assertions below are vacuous if routing never happens.
	owners := map[string]bool{}
	for _, e := range corpus {
		for _, rt := range h.routers {
			if rt.Owns(e.name) {
				owners[rt.Self()] = true
			}
		}
	}
	if len(owners) < 2 {
		// ~0.4% per run with random listener ports; a skip, not a failure.
		t.Skipf("all %d datasets landed on one shard; forwarding untested this run", len(corpus))
	}

	// Warm both deployments so cache_hit agrees in the compared bodies.
	for _, e := range corpus {
		req := marshal(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params})
		if status, body := rawPost(t, singleSrv.URL+"/v1/fit", req); status != http.StatusOK {
			t.Fatalf("single fit %s: HTTP %d: %s", e.name, status, body)
		}
		if status, body := rawPost(t, h.addrs[1]+"/v1/fit", req); status != http.StatusOK {
			t.Fatalf("ring fit %s: HTTP %d: %s", e.name, status, body)
		}
	}

	for _, e := range corpus {
		req := marshal(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		wantStatus, want := rawPost(t, singleSrv.URL+"/v1/assign", req)
		if wantStatus != http.StatusOK {
			t.Fatalf("single assign %s: HTTP %d: %s", e.name, wantStatus, want)
		}
		// Every instance must give the same bytes, owner or not.
		for i, addr := range h.addrs {
			gotStatus, got := rawPost(t, addr+"/v1/assign", req)
			if gotStatus != wantStatus || !bytes.Equal(got, want) {
				t.Errorf("assign %s via shard %d: HTTP %d %q, single-node HTTP %d %q",
					e.name, i, gotStatus, got, wantStatus, want)
			}
		}
		// Fit responses carry wall-clock timings, so byte-identity is off
		// the table; the model identity must still agree exactly.
		wantFit, err := singleC.Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params})
		if err != nil {
			t.Fatal(err)
		}
		gotFit, err := h.clients[2].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params})
		if err != nil {
			t.Fatal(err)
		}
		if gotFit.Model.Clusters != wantFit.Model.Clusters ||
			gotFit.Model.Noise != wantFit.Model.Noise ||
			gotFit.Model.N != wantFit.Model.N ||
			!gotFit.CacheHit || !wantFit.CacheHit {
			t.Errorf("fit %s: ring model %+v (hit=%v), single-node %+v (hit=%v)",
				e.name, gotFit.Model, gotFit.CacheHit, wantFit.Model, wantFit.CacheHit)
		}
	}

	// The aggregate view must account for every dataset and every fit
	// exactly once across the ring — same totals as the single node.
	agg, err := h.clients[0].RingStats()
	if err != nil {
		t.Fatal(err)
	}
	ss := single.Stats()
	if agg.PeersUp != 3 {
		t.Errorf("peers_up = %d, want 3", agg.PeersUp)
	}
	if agg.Total.Datasets != ss.Datasets || agg.Total.CacheMisses != ss.CacheMisses {
		t.Errorf("aggregate datasets/misses = %d/%d, single-node %d/%d",
			agg.Total.Datasets, agg.Total.CacheMisses, ss.Datasets, ss.CacheMisses)
	}
	if agg.Forwarded == 0 {
		t.Error("shard 0 never forwarded although it does not own every key")
	}
	listed := 0
	for _, c := range h.clients {
		infos, err := c.LocalDatasets()
		if err != nil {
			t.Fatal(err)
		}
		listed += len(infos)
	}
	if listed != len(corpus) {
		t.Errorf("shards hold %d datasets between them, want %d (each key on exactly one shard)", listed, len(corpus))
	}
}

// TestRingShardDeath: killing one shard must leave the survivors serving
// every key they own — before the membership change their forwards to the
// dead peer fail loudly (502), after it the dead shard's keys are
// remapped (and 404, since its data died with it) while the survivors'
// keys keep answering from cache with zero refits.
func TestRingShardDeath(t *testing.T) {
	corpus := testCorpus(t, 6)
	h := startRing(t, 3, nil)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	ownedBy := func(shard int) []corpusEntry {
		var out []corpusEntry
		for _, e := range corpus {
			if h.routers[shard].Owns(e.name) {
				out = append(out, e)
			}
		}
		return out
	}
	// Kill the shard that owns the first dataset — guaranteed non-vacuous
	// regardless of how this run's listener ports hashed.
	dead := 0
	for i := range h.routers {
		if h.routers[i].Owns(corpus[0].name) {
			dead = i
		}
	}
	var alive []int
	for i := range h.routers {
		if i != dead {
			alive = append(alive, i)
		}
	}
	missesBefore := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses

	// Capture the pre-change partition: after SetMembers the survivors'
	// rings remap the dead shard's keys onto themselves, so ownedBy would
	// no longer distinguish "always mine" from "inherited but dataless".
	deadKeys := ownedBy(dead)
	surviving := append(ownedBy(alive[0]), ownedBy(alive[1])...)

	h.servers[dead].Close()
	for _, e := range deadKeys {
		_, err := h.clients[alive[0]].Assign(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		var se *api.APIError
		if !errors.As(err, &se) || se.Status != http.StatusBadGateway {
			t.Fatalf("assign %s with dead owner: err = %v, want api.APIError 502", e.name, err)
		}
	}

	// Tell the survivors the shard is gone.
	survivors := []string{h.addrs[alive[0]], h.addrs[alive[1]]}
	for _, i := range alive {
		resp, err := h.clients[i].SetRing(survivors)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Peers) != 2 {
			t.Fatalf("shard %d ring = %v after update", i, resp.Peers)
		}
	}

	// Survivors' keys: still served, from cache, via either survivor.
	for _, e := range surviving {
		for _, i := range alive {
			resp, err := h.clients[i].Assign(api.AssignRequest{
				FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
				Points:     e.probes,
			})
			if err != nil {
				t.Fatalf("assign %s via survivor %d: %v", e.name, i, err)
			}
			if !resp.CacheHit {
				t.Errorf("assign %s via survivor %d refit instead of using the warm model", e.name, i)
			}
		}
	}
	// The dead shard's keys remapped to survivors that never saw the
	// data: a clean 404, not a hang, a loop, or a silent wrong answer.
	for _, e := range deadKeys {
		_, err := h.clients[alive[0]].Assign(api.AssignRequest{
			FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
			Points:     e.probes,
		})
		var se *api.APIError
		if !errors.As(err, &se) || se.Status != http.StatusNotFound {
			t.Fatalf("assign %s after remap: err = %v, want api.APIError 404", e.name, err)
		}
	}
	if misses := h.svcs[alive[0]].Stats().CacheMisses + h.svcs[alive[1]].Stats().CacheMisses; misses != missesBefore {
		t.Errorf("survivors refit %d models during rebalance; want zero", misses-missesBefore)
	}
	// Aggregate stats still answer, reporting only the live membership.
	agg, err := h.clients[alive[0]].RingStats()
	if err != nil {
		t.Fatal(err)
	}
	if agg.PeersUp != 2 || len(agg.Peers) != 2 {
		t.Errorf("aggregate sees %d/%d peers up, want 2/2", agg.PeersUp, len(agg.Peers))
	}
}

// TestRingRebalanceZeroRefit is the snapshot-aware rebalancing contract:
// ownership leaving a shard evicts from memory but never deletes from
// disk, so when ownership returns the shard warm-loads its snapshots and
// serves them again without a single refit. The round-trip is driven by
// a "ghost" member — an address no process listens on — joining and then
// leaving the ring, which steals keys from the real shards and gives
// them back.
func TestRingRebalanceZeroRefit(t *testing.T) {
	corpus := testCorpus(t, 6)
	dirs := []string{t.TempDir(), t.TempDir()}
	h := startRing(t, 2, dirs)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	misses0 := h.svcs[0].Stats().CacheMisses
	misses1 := h.svcs[1].Stats().CacheMisses
	residentBefore := h.svcs[0].Stats().Datasets + h.svcs[1].Stats().Datasets
	if residentBefore != len(corpus) {
		t.Fatalf("ring holds %d datasets, want %d", residentBefore, len(corpus))
	}

	// Pick a ghost address that actually steals at least one test key;
	// listener ports vary per run, so probe candidates against a local
	// ring instead of hoping.
	ghost := ""
	for port := 2; port < 60 && ghost == ""; port++ {
		cand := fmt.Sprintf("http://127.0.0.1:%d", port)
		rg, err := ring.New(128, h.addrs[0], h.addrs[1], cand)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range corpus {
			if rg.Owner(e.name) == cand {
				ghost = cand
				break
			}
		}
	}
	if ghost == "" {
		t.Skip("no candidate ghost stole a key; statistically (2/3)^(6*58) — something else is wrong")
	}
	grown := []string{h.addrs[0], h.addrs[1], ghost}

	// Ghost joins: both real shards evict the stolen keys from memory.
	evicted := 0
	for i := 0; i < 2; i++ {
		resp, err := h.clients[i].SetRing(grown)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Reconcile.DatasetsLoaded != 0 {
			t.Errorf("shard %d loaded %d datasets while losing keys", i, resp.Reconcile.DatasetsLoaded)
		}
		evicted += resp.Reconcile.DatasetsEvicted
	}
	if evicted == 0 {
		t.Fatal("ghost joined but no shard evicted anything")
	}
	if got := h.svcs[0].Stats().Datasets + h.svcs[1].Stats().Datasets; got != residentBefore-evicted {
		t.Fatalf("resident datasets = %d after eviction, want %d", got, residentBefore-evicted)
	}

	// Ghost leaves: the stolen keys come back and must be warm-loaded
	// from each shard's own snapshot directory.
	loadedDS, loadedM := 0, 0
	for i := 0; i < 2; i++ {
		resp, err := h.clients[i].SetRing(h.addrs[:2])
		if err != nil {
			t.Fatal(err)
		}
		loadedDS += resp.Reconcile.DatasetsLoaded
		loadedM += resp.Reconcile.ModelsLoaded
	}
	if loadedDS != evicted {
		t.Errorf("reconcile warm-loaded %d datasets, want the %d evicted earlier", loadedDS, evicted)
	}
	if loadedM != evicted {
		t.Errorf("reconcile warm-loaded %d models, want %d (one Ex-DPC model per dataset)", loadedM, evicted)
	}

	// Every key serves again, from cache, through either instance.
	for _, e := range corpus {
		for i := 0; i < 2; i++ {
			resp, err := h.clients[i].Assign(api.AssignRequest{
				FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params},
				Points:     e.probes,
			})
			if err != nil {
				t.Fatalf("assign %s via shard %d after rebalance: %v", e.name, i, err)
			}
			if !resp.CacheHit {
				t.Errorf("assign %s via shard %d refit after rebalance", e.name, i)
			}
		}
	}
	if got := h.svcs[0].Stats().CacheMisses; got != misses0 {
		t.Errorf("shard 0 refit %d models across the rebalance round-trip; want zero", got-misses0)
	}
	if got := h.svcs[1].Stats().CacheMisses; got != misses1 {
		t.Errorf("shard 1 refit %d models across the rebalance round-trip; want zero", got-misses1)
	}
}

// TestRingRestartWarmLoad: a ring shard restarted over its data dir with
// an ownership filter loads exactly its own keys and serves them with
// zero refits — the multi-instance extension of the single-node warm
// start.
func TestRingRestartWarmLoad(t *testing.T) {
	corpus := testCorpus(t, 6)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	h := startRing(t, 3, dirs)
	for _, e := range corpus {
		h.uploadCSV(0, e.name, e.csv)
		if _, err := h.clients[0].Fit(api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}); err != nil {
			t.Fatal(err)
		}
	}
	// Restart whichever shard owns the first dataset, so the test is
	// never vacuous.
	target := 0
	for i := range h.routers {
		if h.routers[i].Owns(corpus[0].name) {
			target = i
		}
	}
	owned := 0
	for _, e := range corpus {
		if h.routers[target].Owns(e.name) {
			owned++
		}
	}

	// "Restart" the shard: fresh Service over the same dir, warm-load
	// filtered by ring ownership exactly as cmd/dpcd wires it.
	store, err := persist.Open(dirs[target], t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	restarted := New(Options{Workers: 1, CacheSize: 16, Store: store,
		Owns: h.routers[target].Owns})
	st := restarted.Stats()
	if st.DatasetsRestored != owned || st.Datasets != owned {
		t.Fatalf("restart restored %d datasets (holds %d), want exactly the %d owned keys",
			st.DatasetsRestored, st.Datasets, owned)
	}
	if st.ModelsRestored != owned {
		t.Fatalf("restart restored %d models, want %d", st.ModelsRestored, owned)
	}
	for _, e := range corpus {
		if !h.routers[target].Owns(e.name) {
			continue
		}
		fr, err := restarted.Fit(e.name, "Ex-DPC", coreParams(e.params))
		if err != nil {
			t.Fatal(err)
		}
		if !fr.CacheHit {
			t.Errorf("fit %s after restart was not served from the restored cache", e.name)
		}
	}
	if got := restarted.Stats().CacheMisses; got != 0 {
		t.Errorf("restarted shard performed %d fits; want zero", got)
	}
}

// TestRingStreamForwarding: the streaming assign must answer with the
// same labels through every instance — owner or not — with the relay
// piping the chunked body instead of buffering it, and a mid-stream
// client error must come back as a terminal error record through the
// forwarded hop.
func TestRingStreamForwarding(t *testing.T) {
	corpus := testCorpus(t, 3)
	h := startRing(t, 3, nil)
	e := corpus[0]
	h.uploadCSV(0, e.name, e.csv)
	req := api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}
	if _, err := h.clients[0].Fit(req); err != nil {
		t.Fatal(err)
	}

	want, err := h.clients[0].Assign(api.AssignRequest{FitRequest: req, Points: e.probes})
	if err != nil {
		t.Fatal(err)
	}
	missesBefore := int64(0)
	for _, s := range h.svcs {
		missesBefore += s.Stats().CacheMisses
	}
	nonOwner := -1
	for i := range h.routers {
		forwardedBefore := h.routers[i].forwarded.Load()
		sr, err := h.clients[i].AssignStream(req, bytes.NewReader(ndjsonPoints(t, e.probes)))
		if err != nil {
			t.Fatalf("stream via shard %d: %v", i, err)
		}
		labels, sum, err := sr.Collect()
		if err != nil {
			t.Fatalf("stream via shard %d: %v", i, err)
		}
		if len(labels) != len(want.Labels) {
			t.Fatalf("shard %d: %d labels, want %d", i, len(labels), len(want.Labels))
		}
		for j := range labels {
			if labels[j] != want.Labels[j] {
				t.Fatalf("shard %d label %d: stream %d, batch %d", i, j, labels[j], want.Labels[j])
			}
		}
		if !sum.CacheHit || sum.Clusters != want.Clusters || sum.Points != int64(len(e.probes)) {
			t.Errorf("shard %d summary = %+v", i, sum)
		}
		if !h.routers[i].Owns(e.name) {
			nonOwner = i
			if h.routers[i].forwarded.Load() != forwardedBefore+1 {
				t.Errorf("non-owner shard %d did not count the stream forward", i)
			}
		}
	}
	if nonOwner < 0 {
		t.Skip("one shard owned the key from every entry point; forwarding untested this run")
	}
	var misses int64
	for _, s := range h.svcs {
		misses += s.Stats().CacheMisses
	}
	if misses != missesBefore {
		t.Errorf("streaming through the ring refit %d models; want zero", misses-missesBefore)
	}

	// Mid-stream garbage through the forwarded hop: label chunks for the
	// points before the bad line, then a terminal error record.
	body := append(ndjsonPoints(t, e.probes), []byte("not json\n")...)
	sr, err := h.clients[nonOwner].AssignStream(req, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sr.Collect()
	if err == nil || !strings.Contains(err.Error(), fmt.Sprintf("stream point %d", len(e.probes))) {
		t.Errorf("mid-stream garbage through relay: err = %v, want terminal error record", err)
	}
}

// TestRelayOversizedAssignIs413: an /v1/assign body over the relay
// buffer cap must come back as the same JSON 413 from any entry point —
// the non-owner hop included — never a generic 400 or a torn connection.
func TestRelayOversizedAssignIs413(t *testing.T) {
	saved := maxAssignBytes
	maxAssignBytes = 64 << 10 // keep the oversized request test-sized
	t.Cleanup(func() { maxAssignBytes = saved })

	corpus := testCorpus(t, 1)
	h := startRing(t, 2, nil)
	e := corpus[0]
	h.uploadCSV(0, e.name, e.csv)

	big := api.AssignRequest{FitRequest: api.FitRequest{Dataset: e.name, Algorithm: "Ex-DPC", Params: e.params}}
	for len(marshal(big)) <= int(maxAssignBytes) {
		big.Points = append(big.Points, make([][]float64, 4096)...)
		for i := len(big.Points) - 4096; i < len(big.Points); i++ {
			big.Points[i] = []float64{1, 2}
		}
	}
	body := marshal(big)
	for i := range h.addrs {
		status, raw := rawPost(t, h.addrs[i]+"/v1/assign", body)
		if status != http.StatusRequestEntityTooLarge {
			t.Errorf("shard %d: status %d, want 413", i, status)
		}
		var er api.ErrorEnvelope
		if err := json.Unmarshal(raw, &er); err != nil || er.Error.Message == "" {
			t.Errorf("shard %d: body %q is not a JSON error", i, raw)
		}
	}
}

func TestNormalizePeer(t *testing.T) {
	for _, bad := range []string{"", "localhost:8080", "http://", "http://h:1/path", "ftp://h:1", "http://h:1?x=1"} {
		if _, err := normalizePeer(bad); err == nil {
			t.Errorf("normalizePeer(%q) accepted", bad)
		}
	}
	got, err := normalizePeer(" http://127.0.0.1:9000/ ")
	if err != nil || got != "http://127.0.0.1:9000" {
		t.Errorf("normalizePeer trimmed to %q, %v", got, err)
	}
}

func TestPeekDataset(t *testing.T) {
	cases := []struct {
		body, want string
		wantErr    bool
	}{
		{`{"dataset":"a","algorithm":"Ex-DPC"}`, "a", false},
		// Canonical order is dataset-first, but clients are free to put it
		// after a large points array; the token skip must find it.
		{`{"points":[[1,2],[3,4]],"params":{"dcut":1},"dataset":"tail"}`, "tail", false},
		{`{"algorithm":"Ex-DPC"}`, "", false}, // absent: local handler rejects
		{`{"dataset":42}`, "", true},
		{`[1,2,3]`, "", true},
		{`{"dataset":"a"`, "a", false}, // truncated after the field: name already found
		{`{"points":[[1,2]`, "", true}, // truncated before the field
		{`not json`, "", true},
	}
	for _, c := range cases {
		got, err := peekDataset([]byte(c.body))
		if (err != nil) != c.wantErr || got != c.want {
			t.Errorf("peekDataset(%q) = %q, %v; want %q, err=%v", c.body, got, err, c.want, c.wantErr)
		}
	}
}
