package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/api"
	"repro/internal/wire"
)

// forwardedHeader marks a request as already routed by a peer. A
// receiver serves such requests locally no matter what its own ring
// says, so a transient membership disagreement degrades to one wrong
// hop instead of a forwarding loop.
const forwardedHeader = "X-Dpcd-Forwarded"

// ClientOptions tunes a Client. The zero value is usable.
type ClientOptions struct {
	// Timeout bounds one HTTP attempt; <= 0 means 60s (an assign of a
	// full batch against a cold model can legitimately take a while).
	Timeout time.Duration
	// Retries is the number of additional attempts after a transport
	// error; < 0 means 0, default 2. Every dpcd endpoint is idempotent —
	// uploads are versioned, fits are single-flight, assigns are reads —
	// so retrying POSTs is safe.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt;
	// <= 0 means 50ms.
	Backoff time.Duration
	// GzipStream compresses the request body of streaming assigns with
	// gzip and asks for a gzip response — worthwhile on slow links, pure
	// CPU overhead on localhost. Batch endpoints are unaffected.
	GzipStream bool
}

func (o ClientOptions) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 60 * time.Second
}

func (o ClientOptions) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return 2
	}
	return o.Retries
}

func (o ClientOptions) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 50 * time.Millisecond
}

// Client is a typed HTTP client for one dpcd instance. The router uses
// it to forward requests to the owning shard; the bench harness and
// tests use it as a regular API client.
type Client struct {
	base string
	hc   *http.Client
	// sc is the streaming client: no overall timeout, because a label
	// stream legitimately outlives any fixed deadline — progress, not
	// wall-clock, is the health signal. It shares hc's connection pool.
	sc         *http.Client
	retries    int
	backoff    time.Duration
	gzipStream bool
}

// NewClient returns a client for the instance at base (scheme://host:port,
// no trailing slash required).
func NewClient(base string, opts ClientOptions) *Client {
	// The stream client must not bound the whole exchange, but a server
	// that accepts the connection and never sends response headers would
	// otherwise hang a stream forever; Timeout covers the header wait on
	// the transport instead.
	streamTransport := http.DefaultTransport
	if t, ok := http.DefaultTransport.(*http.Transport); ok {
		tc := t.Clone()
		tc.ResponseHeaderTimeout = opts.timeout()
		streamTransport = tc
	}
	return &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         &http.Client{Timeout: opts.timeout()},
		sc:         &http.Client{Transport: streamTransport},
		retries:    opts.retries(),
		backoff:    opts.backoff(),
		gzipStream: opts.GzipStream,
	}
}

// Base returns the instance URL this client targets.
func (c *Client) Base() string { return c.base }

// do performs one request with transport-level retries. Bodies are
// byte slices, never streams, so every retry replays identical bytes.
// HTTP-level errors (any status) are returned to the caller untouched —
// a 400 from the owner is the answer, not a reason to retry. accept,
// when non-empty, asks the server for that response codec.
func (c *Client) do(method, path string, contentType, accept string, body []byte, forwarded bool) (status int, data []byte, ct string, err error) {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, rerr := http.NewRequest(method, c.base+path, rd)
		if rerr != nil {
			return 0, nil, "", rerr
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		if forwarded {
			req.Header.Set(forwardedHeader, "1")
		}
		resp, derr := c.hc.Do(req)
		if derr != nil {
			err = derr
			if attempt >= c.retries {
				return 0, nil, "", fmt.Errorf("service: %s %s%s: %w (after %d attempts)", method, c.base, path, err, attempt+1)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		data, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if attempt >= c.retries {
				return 0, nil, "", fmt.Errorf("service: %s %s%s: reading response: %w", method, c.base, path, err)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		return resp.StatusCode, data, resp.Header.Get("Content-Type"), nil
	}
}

// call is do plus JSON decoding and error mapping for the typed methods.
func (c *Client) call(method, path string, contentType string, body []byte, forwarded bool, out any) error {
	status, data, _, err := c.do(method, path, contentType, "", body, forwarded)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return statusError(status, data)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: %s %s%s: decoding response: %w", method, c.base, path, err)
	}
	return nil
}

// statusError maps a non-2xx response body — the JSON error envelope on
// every dpcd error path, regardless of the request codec — onto a typed
// *api.APIError (legacy flat bodies and plain text degrade gracefully).
func statusError(status int, data []byte) error {
	return api.DecodeError(status, data)
}

func marshal(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		// All request types are plain data structs; this cannot fail.
		panic(fmt.Sprintf("service: marshaling %T: %v", v, err))
	}
	return raw
}

// Health reports whether the instance answers its liveness probe.
func (c *Client) Health() error {
	return c.call(http.MethodGet, "/healthz", "", nil, false, nil)
}

// PutDataset uploads a dataset body in the given format ("csv" or
// "binary") at the server's default (float64) storage precision.
func (c *Client) PutDataset(name, format string, body []byte) (api.DatasetInfo, error) {
	return c.PutDatasetPrecision(name, format, "", body)
}

// PutDatasetPrecision uploads a dataset body, requesting a storage
// precision: api.PrecisionF32 stores the points as float32 (halving
// resident memory and unlocking the f32 kernels), api.PrecisionF64 or
// "" keeps the default float64. A daemon predating the precision
// surface ignores the parameter and stores float64 — check the
// returned DatasetInfo.Precision when it matters.
func (c *Client) PutDatasetPrecision(name, format, precision string, body []byte) (api.DatasetInfo, error) {
	q := url.Values{}
	if format != "" && format != "csv" {
		q.Set("format", format)
	}
	if precision != "" && precision != api.PrecisionF64 {
		q.Set("precision", precision)
	}
	path := "/v1/datasets/" + url.PathEscape(name)
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var info api.DatasetInfo
	err := c.call(http.MethodPut, path, "application/octet-stream", body, false, &info)
	return info, err
}

// AppendPoints appends points to a registered dataset's sliding window
// (POST /v1/points): the points land at the end, the oldest rows past
// the server's -window expire, and the dataset version advances.
func (c *Client) AppendPoints(req api.AppendRequest) (api.AppendResponse, error) {
	var out api.AppendResponse
	err := c.call(http.MethodPost, "/v1/points", "application/json", marshal(req), false, &out)
	return out, err
}

// Drift fetches the drift trackers of a dataset's served models (GET
// /v1/drift), optionally filtered to one algorithm.
func (c *Client) Drift(dataset, algorithm string) (api.DriftResponse, error) {
	path := "/v1/drift?dataset=" + url.QueryEscape(dataset)
	if algorithm != "" {
		path += "&algorithm=" + url.QueryEscape(algorithm)
	}
	var out api.DriftResponse
	err := c.call(http.MethodGet, path, "", nil, false, &out)
	return out, err
}

// Fit requests (or fetches the cached) model for the triple in req.
func (c *Client) Fit(req api.FitRequest) (api.FitResponse, error) {
	var out api.FitResponse
	err := c.call(http.MethodPost, "/v1/fit", "application/json", marshal(req), false, &out)
	return out, err
}

// Assign labels req.Points against the model for the triple in req.
func (c *Client) Assign(req api.AssignRequest) (api.AssignResponse, error) {
	var out api.AssignResponse
	err := c.call(http.MethodPost, "/v1/assign", "application/json", marshal(req), false, &out)
	return out, err
}

// DecisionGraph fetches the decision graph of a dataset at dcut — the
// (rho, delta) pairs sorted by descending delta, from the instance's
// density index. limit > 0 truncates to the top entries (a plot rarely
// needs more than the head; the elbow is what the analyst reads).
func (c *Client) DecisionGraph(dataset string, dcut float64, limit int) (api.DecisionGraphResponse, error) {
	path := fmt.Sprintf("/v1/decision-graph?dataset=%s&dcut=%s",
		url.QueryEscape(dataset), url.QueryEscape(strconv.FormatFloat(dcut, 'g', -1, 64)))
	if limit > 0 {
		path += fmt.Sprintf("&limit=%d", limit)
	}
	var out api.DecisionGraphResponse
	err := c.call(http.MethodGet, path, "", nil, false, &out)
	return out, err
}

// Sweep runs one parameter sweep: the server builds (or reuses) the
// dataset's density index once and re-cuts it per setting, so K settings
// cost far less than K fits and never touch the model cache.
func (c *Client) Sweep(req api.SweepRequest) (api.SweepResponse, error) {
	var out api.SweepResponse
	err := c.call(http.MethodPost, "/v1/sweep", "application/json", marshal(req), false, &out)
	return out, err
}

// assignFrameChunk bounds one points frame of a batch body well under
// wire.MaxPayload at any sane dimensionality.
const assignFrameChunk = 8192

// AssignFrames is Assign over the binary frame codec in both directions:
// the request is a header frame plus chunked points frames, the response
// a labels frame and its summary. float32w narrows coordinates to
// float32 on the wire — half the bytes, lossless only when the values
// round-trip.
func (c *Client) AssignFrames(req api.FitRequest, pts [][]float64, float32w bool) (api.AssignResponse, error) {
	body := wire.AppendHeader(nil, fitToHeader(req))
	for i := 0; i < len(pts); i += assignFrameChunk {
		body = wire.AppendPointsRows(body, pts[i:min(i+assignFrameChunk, len(pts))], float32w)
	}
	status, data, _, err := c.do(http.MethodPost, "/v1/assign", wire.ContentType, wire.ContentType, body, false)
	if err != nil {
		return api.AssignResponse{}, err
	}
	if status < 200 || status > 299 {
		return api.AssignResponse{}, statusError(status, data)
	}
	var out api.AssignResponse
	sawSummary := false
	for len(data) > 0 {
		f, rest, err := wire.DecodeFrame(data)
		if err != nil {
			return api.AssignResponse{}, fmt.Errorf("service: decoding assign response: %w", err)
		}
		data = rest
		switch f.Kind {
		case wire.KindLabels:
			out.Labels = append(out.Labels, f.Labels...)
		case wire.KindSummary:
			out.Clusters = f.Summary.Clusters
			out.CacheHit = f.Summary.CacheHit
			sawSummary = true
		case wire.KindError:
			return api.AssignResponse{}, fmt.Errorf("service: %s", f.ErrMsg)
		default:
			return api.AssignResponse{}, fmt.Errorf("service: unexpected frame kind %d in assign response", f.Kind)
		}
	}
	if !sawSummary {
		return api.AssignResponse{}, fmt.Errorf("service: assign response ended without a summary frame")
	}
	return out, nil
}

// stream performs one request whose body is a live stream. No retries:
// the body cannot be replayed, and a half-consumed stream must fail
// loudly rather than resend silently. This rule extends to replica
// failover — a router relaying a stream may try another replica only
// while zero body bytes have been consumed (see Router.relayStream);
// once any byte has moved, the stream is committed and a failure is
// terminal. ctx cancels the exchange at any point (a relay hop passes
// its inbound request context, so a client hanging up tears down the
// upstream leg too). The caller owns the response body.
func (c *Client) stream(ctx context.Context, method, path, contentType, accept string, body io.Reader, forwarded bool, extra http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	for k, vs := range extra {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	if forwarded {
		req.Header.Set(forwardedHeader, "1")
	}
	resp, err := c.sc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("service: %s %s%s: %w", method, c.base, path, err)
	}
	return resp, nil
}

// AssignStream labels an unbounded point stream against the model for
// the triple in req via POST /v1/assign/stream. points is NDJSON — one
// JSON coordinate array per line; the header line is prepended here. The
// returned StreamReader yields label chunks as the server emits them, so
// neither side ever holds more than one chunk in memory.
func (c *Client) AssignStream(req api.FitRequest, points io.Reader) (*StreamReader, error) {
	return c.AssignStreamContext(context.Background(), req, points)
}

// AssignStreamContext is AssignStream with caller-owned cancellation.
func (c *Client) AssignStreamContext(ctx context.Context, req api.FitRequest, points io.Reader) (*StreamReader, error) {
	body := io.MultiReader(bytes.NewReader(append(marshal(req), '\n')), points)
	return c.openStream(ctx, ndjsonContentType, body)
}

// AssignStreamFrames is AssignStream over the binary frame codec in both
// directions: points must be a stream of wire points frames (see
// wire.EncodePoints); the header frame is prepended here.
func (c *Client) AssignStreamFrames(req api.FitRequest, points io.Reader) (*StreamReader, error) {
	return c.AssignStreamFramesContext(context.Background(), req, points)
}

// AssignStreamFramesContext is AssignStreamFrames with caller-owned
// cancellation.
func (c *Client) AssignStreamFramesContext(ctx context.Context, req api.FitRequest, points io.Reader) (*StreamReader, error) {
	body := io.MultiReader(bytes.NewReader(wire.AppendHeader(nil, fitToHeader(req))), points)
	return c.openStream(ctx, wire.ContentType, body)
}

// openStream starts one streaming assign and wraps the live response in
// a StreamReader for whichever codec the server chose (the response
// Content-Type decides — a relay hop may legitimately answer in the
// request codec even if this client could read either).
func (c *Client) openStream(ctx context.Context, contentType string, body io.Reader) (*StreamReader, error) {
	var extra http.Header
	if c.gzipStream {
		// Compress through a pipe so memory stays O(chunk): the request
		// goroutine pulls from pr as it sends, the copy goroutine feeds the
		// compressor from the caller's stream. Setting Accept-Encoding
		// explicitly also stops the transport's transparent gzip layer, so
		// the response encoding below is ours to handle.
		pr, pw := io.Pipe()
		go func(src io.Reader) {
			gz := gzip.NewWriter(pw)
			_, err := io.Copy(gz, src)
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
			pw.CloseWithError(err)
		}(body)
		body = pr
		extra = http.Header{
			"Content-Encoding": {"gzip"},
			"Accept-Encoding":  {"gzip"},
		}
	}
	resp, err := c.stream(ctx, http.MethodPost, "/v1/assign/stream", contentType, contentType, body, false, extra)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		// Pre-stream failure: a plain JSON error body, same as batch.
		data, _ := io.ReadAll(io.LimitReader(resp.Body, maxStreamLineBytes))
		resp.Body.Close()
		return nil, statusError(resp.StatusCode, data)
	}
	rbody := io.Reader(resp.Body)
	ce := resp.Header.Get("Content-Encoding")
	if strings.EqualFold(ce, "gzip") || strings.EqualFold(ce, "x-gzip") {
		zr, err := gzip.NewReader(resp.Body)
		if err != nil {
			resp.Body.Close()
			return nil, fmt.Errorf("service: decoding gzip label stream: %w", err)
		}
		rbody = zr
	}
	sr := &StreamReader{body: resp.Body}
	if isFrameMedia(resp.Header.Get("Content-Type")) {
		sr.fr = wire.NewReader(rbody)
	} else {
		sr.dec = json.NewDecoder(rbody)
	}
	return sr, nil
}

// StreamReader iterates the label chunks of one streaming assign, over
// either response codec: exactly one of dec (NDJSON records) or fr
// (binary frames) is set.
//
// Retry guidance: a failed stream must never be retried by resending the
// same reader — the request body was consumed as it was sent and cannot
// be replayed. This holds across replica failover too: when a ring hop
// relays a stream, only an attempt that consumed zero body bytes may
// move to another replica; after that, a mid-stream death surfaces here
// as a terminal error record or a truncation error, and re-running the
// stream is the caller's decision, from a fresh source.
type StreamReader struct {
	body    io.ReadCloser
	dec     *json.Decoder
	fr      *wire.Reader
	summary *api.StreamSummary
	err     error
}

// Next returns the next chunk of labels in input order. It returns
// io.EOF after the terminal summary record; any other error — including
// a server-side error record or a stream truncated without a summary —
// is the stream's failure.
func (sr *StreamReader) Next() ([]int32, error) {
	if sr.err != nil {
		return nil, sr.err
	}
	if sr.summary != nil {
		return nil, io.EOF
	}
	if sr.fr != nil {
		return sr.nextFrame()
	}
	var rec api.StreamRecord
	switch err := sr.dec.Decode(&rec); {
	case err == io.EOF:
		// The summary is the success marker; EOF before it means the
		// server (or a relay hop) died mid-stream.
		sr.err = fmt.Errorf("service: label stream truncated before its summary record")
	case err != nil:
		sr.err = fmt.Errorf("service: decoding label stream: %w", err)
	case rec.Error != "":
		sr.err = fmt.Errorf("service: %s", rec.Error)
	case rec.Summary != nil:
		sr.summary = rec.Summary
		return nil, io.EOF
	default:
		return rec.Labels, nil
	}
	return nil, sr.err
}

// nextFrame is Next over the binary codec. An upstream that dies
// mid-stream surfaces exactly like NDJSON truncation: a clean EOF before
// the summary frame, or a torn frame, are both the stream's failure —
// never a silent success.
func (sr *StreamReader) nextFrame() ([]int32, error) {
	switch f, err := sr.fr.Next(); {
	case err == io.EOF:
		sr.err = fmt.Errorf("service: label stream truncated before its summary record")
	case err != nil:
		sr.err = fmt.Errorf("service: decoding label stream: %w", err)
	case f.Kind == wire.KindError:
		sr.err = fmt.Errorf("service: %s", f.ErrMsg)
	case f.Kind == wire.KindSummary:
		sr.summary = &api.StreamSummary{
			Points: f.Summary.Points, Chunks: f.Summary.Chunks,
			Clusters: f.Summary.Clusters, CacheHit: f.Summary.CacheHit,
		}
		return nil, io.EOF
	case f.Kind == wire.KindLabels:
		return f.Labels, nil
	default:
		sr.err = fmt.Errorf("service: unexpected frame kind %d in label stream", f.Kind)
	}
	return nil, sr.err
}

// Summary returns the terminal summary record; ok is false until Next
// has returned io.EOF.
func (sr *StreamReader) Summary() (api.StreamSummary, bool) {
	if sr.summary == nil {
		return api.StreamSummary{}, false
	}
	return *sr.summary, true
}

// Collect drains the stream into one label slice plus the summary —
// convenience for callers that want streaming transport without
// incremental consumption.
func (sr *StreamReader) Collect() ([]int32, api.StreamSummary, error) {
	defer sr.Close()
	var labels []int32
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			sum, _ := sr.Summary()
			return labels, sum, nil
		}
		if err != nil {
			return labels, api.StreamSummary{}, err
		}
		labels = append(labels, chunk...)
	}
}

// Close releases the underlying response body; abandoning a stream
// without Close leaks the connection.
func (sr *StreamReader) Close() error { return sr.body.Close() }

// ShipSnapshot delivers one persist snapshot image (dataset or model)
// to the instance's replication sink. The body is a byte slice, so the
// usual transport retries replay identical bytes, and installs are
// idempotent on the receiving side — a duplicate delivery is a no-op.
func (c *Client) ShipSnapshot(raw []byte) (api.InstallResult, error) {
	var out api.InstallResult
	err := c.call(http.MethodPost, "/v1/replica/snapshot", snapshotContentType, raw, true, &out)
	return out, err
}

// LocalStats fetches the instance's own counters, bypassing the ring
// fan-out — the per-peer leg of the aggregate /v1/stats.
func (c *Client) LocalStats() (api.Stats, error) {
	var out api.Stats
	err := c.call(http.MethodGet, "/v1/stats", "", nil, true, &out)
	return out, err
}

// LocalDatasets lists the datasets resident on the instance itself,
// bypassing the ring fan-out.
func (c *Client) LocalDatasets() ([]api.DatasetInfo, error) {
	var out []api.DatasetInfo
	err := c.call(http.MethodGet, "/v1/datasets", "", nil, true, &out)
	return out, err
}

// RingStats fetches the ring-wide aggregated counters from a ring-mode
// instance.
func (c *Client) RingStats() (api.RingStats, error) {
	var out api.RingStats
	err := c.call(http.MethodGet, "/v1/stats", "", nil, false, &out)
	return out, err
}

// SetRing replaces the instance's ring membership; the instance
// reconciles its resident state (and snapshot directory) against the new
// ring and reports what moved.
func (c *Client) SetRing(peers []string) (api.RingUpdateResponse, error) {
	var out api.RingUpdateResponse
	err := c.call(http.MethodPost, "/v1/ring", "application/json",
		marshal(api.RingUpdateRequest{Peers: peers}), false, &out)
	return out, err
}
