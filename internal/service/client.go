package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// forwardedHeader marks a request as already routed by a peer. A
// receiver serves such requests locally no matter what its own ring
// says, so a transient membership disagreement degrades to one wrong
// hop instead of a forwarding loop.
const forwardedHeader = "X-Dpcd-Forwarded"

// ClientOptions tunes a Client. The zero value is usable.
type ClientOptions struct {
	// Timeout bounds one HTTP attempt; <= 0 means 60s (an assign of a
	// full batch against a cold model can legitimately take a while).
	Timeout time.Duration
	// Retries is the number of additional attempts after a transport
	// error; < 0 means 0, default 2. Every dpcd endpoint is idempotent —
	// uploads are versioned, fits are single-flight, assigns are reads —
	// so retrying POSTs is safe.
	Retries int
	// Backoff is the sleep before the first retry, doubling per attempt;
	// <= 0 means 50ms.
	Backoff time.Duration
}

func (o ClientOptions) timeout() time.Duration {
	if o.Timeout > 0 {
		return o.Timeout
	}
	return 60 * time.Second
}

func (o ClientOptions) retries() int {
	if o.Retries < 0 {
		return 0
	}
	if o.Retries == 0 {
		return 2
	}
	return o.Retries
}

func (o ClientOptions) backoff() time.Duration {
	if o.Backoff > 0 {
		return o.Backoff
	}
	return 50 * time.Millisecond
}

// Client is a typed HTTP client for one dpcd instance. The router uses
// it to forward requests to the owning shard; the bench harness and
// tests use it as a regular API client.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
}

// NewClient returns a client for the instance at base (scheme://host:port,
// no trailing slash required).
func NewClient(base string, opts ClientOptions) *Client {
	return &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: opts.timeout()},
		retries: opts.retries(),
		backoff: opts.backoff(),
	}
}

// Base returns the instance URL this client targets.
func (c *Client) Base() string { return c.base }

// StatusError is a non-2xx response from a peer with the decoded error
// message. A forwarding router relays the code instead of flattening
// everything to 502.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s (HTTP %d)", e.Msg, e.Code)
}

// do performs one request with transport-level retries. Bodies are
// byte slices, never streams, so every retry replays identical bytes.
// HTTP-level errors (any status) are returned to the caller untouched —
// a 400 from the owner is the answer, not a reason to retry.
func (c *Client) do(method, path string, contentType string, body []byte, forwarded bool) (status int, data []byte, ct string, err error) {
	backoff := c.backoff
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, rerr := http.NewRequest(method, c.base+path, rd)
		if rerr != nil {
			return 0, nil, "", rerr
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		if forwarded {
			req.Header.Set(forwardedHeader, "1")
		}
		resp, derr := c.hc.Do(req)
		if derr != nil {
			err = derr
			if attempt >= c.retries {
				return 0, nil, "", fmt.Errorf("service: %s %s%s: %w (after %d attempts)", method, c.base, path, err, attempt+1)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		data, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			if attempt >= c.retries {
				return 0, nil, "", fmt.Errorf("service: %s %s%s: reading response: %w", method, c.base, path, err)
			}
			time.Sleep(backoff)
			backoff *= 2
			continue
		}
		return resp.StatusCode, data, resp.Header.Get("Content-Type"), nil
	}
}

// call is do plus JSON decoding and error mapping for the typed methods.
func (c *Client) call(method, path string, contentType string, body []byte, forwarded bool, out any) error {
	status, data, _, err := c.do(method, path, contentType, body, forwarded)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		var er errorResponse
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			return &StatusError{Code: status, Msg: er.Error}
		}
		return &StatusError{Code: status, Msg: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: %s %s%s: decoding response: %w", method, c.base, path, err)
	}
	return nil
}

func marshal(v any) []byte {
	raw, err := json.Marshal(v)
	if err != nil {
		// All request types are plain data structs; this cannot fail.
		panic(fmt.Sprintf("service: marshaling %T: %v", v, err))
	}
	return raw
}

// Health reports whether the instance answers its liveness probe.
func (c *Client) Health() error {
	return c.call(http.MethodGet, "/healthz", "", nil, false, nil)
}

// PutDataset uploads a dataset body in the given format ("csv" or
// "binary").
func (c *Client) PutDataset(name, format string, body []byte) (DatasetInfo, error) {
	path := "/v1/datasets/" + url.PathEscape(name)
	if format != "" && format != "csv" {
		path += "?format=" + url.QueryEscape(format)
	}
	var info DatasetInfo
	err := c.call(http.MethodPut, path, "application/octet-stream", body, false, &info)
	return info, err
}

// Fit requests (or fetches the cached) model for the triple in req.
func (c *Client) Fit(req FitRequest) (FitResponse, error) {
	var out FitResponse
	err := c.call(http.MethodPost, "/v1/fit", "application/json", marshal(req), false, &out)
	return out, err
}

// Assign labels req.Points against the model for the triple in req.
func (c *Client) Assign(req AssignRequest) (AssignResponse, error) {
	var out AssignResponse
	err := c.call(http.MethodPost, "/v1/assign", "application/json", marshal(req), false, &out)
	return out, err
}

// LocalStats fetches the instance's own counters, bypassing the ring
// fan-out — the per-peer leg of the aggregate /v1/stats.
func (c *Client) LocalStats() (Stats, error) {
	var out Stats
	err := c.call(http.MethodGet, "/v1/stats", "", nil, true, &out)
	return out, err
}

// LocalDatasets lists the datasets resident on the instance itself,
// bypassing the ring fan-out.
func (c *Client) LocalDatasets() ([]DatasetInfo, error) {
	var out []DatasetInfo
	err := c.call(http.MethodGet, "/v1/datasets", "", nil, true, &out)
	return out, err
}

// RingStats fetches the ring-wide aggregated counters from a ring-mode
// instance.
func (c *Client) RingStats() (RingStatsResponse, error) {
	var out RingStatsResponse
	err := c.call(http.MethodGet, "/v1/stats", "", nil, false, &out)
	return out, err
}

// SetRing replaces the instance's ring membership; the instance
// reconciles its resident state (and snapshot directory) against the new
// ring and reports what moved.
func (c *Client) SetRing(peers []string) (RingUpdateResponse, error) {
	var out RingUpdateResponse
	err := c.call(http.MethodPost, "/v1/ring", "application/json",
		marshal(RingUpdateRequest{Peers: peers}), false, &out)
	return out, err
}
