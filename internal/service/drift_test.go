package service

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/geom"
)

// driftConfig is a test policy that trips on halo rate quickly and
// never by cooldown (an hour apart — each test sees at most one refit
// per lineage unless it resets the clock itself).
func driftConfig() *drift.Config {
	return &drift.Config{
		WindowPoints:  64,
		MinPoints:     64,
		HaloThreshold: 0.5,
		Cooldown:      time.Hour,
	}
}

// rows extracts dataset rows [lo, hi) as fresh row slices, shifted by
// off on every coordinate — off far beyond the data's extent turns
// every assignment into noise under a model fitted before the shift.
func rows(ds *geom.Dataset, lo, hi int, off float64) [][]float64 {
	out := make([][]float64, 0, hi-lo)
	for i := lo; i < hi; i++ {
		p := ds.At(i)
		r := make([]float64, len(p))
		for j, x := range p {
			r[j] = x + off
		}
		out = append(out, r)
	}
	return out
}

// noiseCount counts NoCluster labels.
func noiseCount(labels []int32) int {
	n := 0
	for _, l := range labels {
		if l == core.NoCluster {
			n++
		}
	}
	return n
}

// waitFor polls cond for up to 5s — background refits land on their own
// schedule.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDriftDisabledIsLegacy pins the compatibility contract: without
// Options.Drift the assign path is byte-for-byte the old one — no drift
// state, no stale serving, identical counters.
func TestDriftDisabledIsLegacy(t *testing.T) {
	s := New(Options{Workers: 2})
	d, p := fixture(t, 800)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	labels, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 100, 0))
	if err != nil || len(labels) != 100 {
		t.Fatalf("assign: %v (%d labels)", err, len(labels))
	}
	st := s.Stats()
	if st.DriftModels != 0 || st.DriftTrips != 0 || st.DriftStaleServes != 0 {
		t.Fatalf("drift counters moved without drift enabled: %+v", st)
	}
	resp, err := s.Drift("s2", "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Enabled || len(resp.Models) != 0 {
		t.Fatalf("Drift() = %+v, want disabled and empty", resp)
	}
}

// TestDriftStaleServeAndAdopt covers the version-advance path without a
// trip: after an append the pinned model keeps serving (counted as
// stale serves), and once a model for the new version exists in the
// cache — here via an explicit synchronous fit — the lineage adopts it
// without fitting again.
func TestDriftStaleServeAndAdopt(t *testing.T) {
	cfg := driftConfig()
	cfg.HaloThreshold = 0 // no trips in this test
	s := New(Options{Workers: 2, Drift: cfg})
	d, p := fixture(t, 800)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 50, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendPoints("s2", rows(d.Points, 0, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, fr, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 50, 0)); err != nil || !fr.CacheHit {
		t.Fatalf("stale serve: err=%v cacheHit=%v", err, fr.CacheHit)
	}
	if st := s.Stats(); st.DriftStaleServes != 1 || st.DriftModels != 1 {
		t.Fatalf("stats after stale serve: staleServes=%d models=%d", st.DriftStaleServes, st.DriftModels)
	}
	resp, err := s.Drift("s2", "Scan")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Models) != 1 || resp.Models[0].Version != 1 {
		t.Fatalf("Drift() before adopt = %+v", resp.Models)
	}
	// A synchronous fit materializes the v2 model; the next assign adopts
	// it from the cache — no new fit, no extra stale serve.
	if _, err := s.Fit("s2", "Scan", p); err != nil {
		t.Fatal(err)
	}
	misses := s.Stats().CacheMisses
	if _, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 50, 0)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CacheMisses != misses || st.DriftStaleServes != 1 {
		t.Fatalf("adopt refitted or stale-served: misses %d->%d staleServes=%d", misses, st.CacheMisses, st.DriftStaleServes)
	}
	if resp, _ = s.Drift("s2", ""); len(resp.Models) != 1 || resp.Models[0].Version != 2 {
		t.Fatalf("Drift() after adopt = %+v", resp.Models)
	}
}

// TestDriftTripRefitSwap is the tentpole acceptance scenario: a window
// slide replaces the dataset with a shifted cloud, serve traffic on the
// old model trips the halo threshold, a background refit runs while
// every assign keeps succeeding on the old model, and the refitted
// model swaps in atomically — after which the shifted points label
// cleanly.
func TestDriftTripRefitSwap(t *testing.T) {
	const shift = 1e7
	s := New(Options{Workers: 2, Drift: driftConfig(), Window: 800})
	d, p := fixture(t, 800)
	n := d.Points.N
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	// Warm traffic on v1: clean assigns, no trip.
	labels, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 100, 0))
	if err != nil {
		t.Fatal(err)
	}
	if noiseCount(labels) == len(labels) {
		t.Fatal("v1 traffic labeled all-noise; fixture params are wrong")
	}
	// Slide the whole window to the shifted cloud: same structure,
	// different place. Version advances, models are purged, drift pins
	// keep the old model serving.
	resp, err := s.AppendPoints("s2", rows(d.Points, 0, n, shift))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != 2 || resp.Appended != n || resp.Expired != n || resp.N != n {
		t.Fatalf("append = %+v", resp)
	}
	// Shifted traffic: stale-served by the v1 model (all noise), which
	// must trip the tracker and kick the background refit. Every assign
	// must succeed while the refit is in flight.
	for i := 0; i < 4; i++ {
		labels, fr, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 100, shift))
		if err != nil || len(labels) != 100 {
			t.Fatalf("assign during refit window: %v (%d labels)", err, len(labels))
		}
		if fr.Model == nil {
			t.Fatal("assign served no model")
		}
	}
	if st := s.Stats(); st.DriftTrips == 0 {
		t.Fatalf("tracker never tripped: %+v", st)
	}
	waitFor(t, "background refit", func() bool { return s.Stats().DriftRefits >= 1 })
	// The swapped model was fitted on the shifted cloud: shifted points
	// now label cleanly, and the lineage reports the new version with a
	// fresh (untripped) tracker.
	waitFor(t, "post-swap clean labels", func() bool {
		labels, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 100, shift))
		return err == nil && noiseCount(labels) < len(labels)
	})
	dr, err := s.Drift("s2", "Scan")
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Models) != 1 || dr.Models[0].Version != 2 || dr.Models[0].Refitting {
		t.Fatalf("Drift() after swap = %+v", dr.Models)
	}
	if dr.Models[0].Status != nil && dr.Models[0].Status.Tripped {
		t.Fatalf("tracker not reset after swap: %+v", dr.Models[0].Status)
	}
	if st := s.Stats(); st.DriftRefits != 1 {
		t.Fatalf("refits = %d, want exactly 1 (single-flight + cooldown)", st.DriftRefits)
	}
}

// TestDriftReplicaNeverRefits pins the ring contract: a non-primary
// instance never starts a background refit — even with a tripped
// tracker — and swaps models only when the primary's refit arrives by
// snapshot shipping, which the lineage adopts from the cache without
// fitting.
func TestDriftReplicaNeverRefits(t *testing.T) {
	const shift = 1e7
	d, p := fixture(t, 800)
	n := d.Points.N

	primary := New(Options{Workers: 2, Drift: driftConfig(), Window: 800})
	replica := New(Options{Workers: 2, Drift: driftConfig(), Window: 800})
	replica.SetDriftHooks(func(string) bool { return false }, nil)

	if _, err := primary.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Fit("s2", "Scan", p); err != nil {
		t.Fatal(err)
	}
	// Warm assign traffic pins the v1 lineage on the primary, so the
	// later version advance stale-serves (and can trip) instead of
	// silently fitting v2 on first touch.
	if _, _, err := primary.Assign("s2", "Scan", p, rows(d.Points, 0, 20, 0)); err != nil {
		t.Fatal(err)
	}
	// Ship dataset + model v1 to the replica (what an upload + fit on the
	// primary does through the router).
	for _, raw := range primary.ReplicationSnapshots("s2") {
		if _, err := replica.InstallSnapshot(raw); err != nil {
			t.Fatal(err)
		}
	}
	misses := replica.Stats().CacheMisses
	if misses != 0 {
		t.Fatalf("replica paid %d misses before any traffic", misses)
	}
	// Replica serves reads off the shipped model without fitting.
	if _, fr, err := replica.Assign("s2", "Scan", p, rows(d.Points, 0, 50, 0)); err != nil || !fr.CacheHit {
		t.Fatalf("replica assign: err=%v cacheHit=%v", err, fr.CacheHit)
	}
	if replica.Stats().CacheMisses != 0 {
		t.Fatal("replica assign paid a fit")
	}

	// The window slides on the primary; the new dataset version ships.
	if _, err := primary.AppendPoints("s2", rows(d.Points, 0, n, shift)); err != nil {
		t.Fatal(err)
	}
	for _, raw := range primary.ReplicationSnapshots("s2") {
		if _, err := replica.InstallSnapshot(raw); err != nil {
			t.Fatal(err)
		}
	}
	// Shifted traffic on the replica trips its tracker — but the primary
	// gate must keep it from refitting, stale-serving instead.
	for i := 0; i < 4; i++ {
		if _, _, err := replica.Assign("s2", "Scan", p, rows(d.Points, 0, 100, shift)); err != nil {
			t.Fatal(err)
		}
	}
	st := replica.Stats()
	if st.DriftTrips == 0 {
		t.Fatal("replica tracker never tripped")
	}
	if st.DriftStaleServes == 0 {
		t.Fatal("replica did not stale-serve across the version advance")
	}
	time.Sleep(50 * time.Millisecond) // a wrongly-kicked refit would land here
	if st := replica.Stats(); st.DriftRefits != 0 || st.CacheMisses != 0 {
		t.Fatalf("replica refitted: refits=%d misses=%d", st.DriftRefits, st.CacheMisses)
	}

	// The primary refits (kicked by its own traffic) and ships; the
	// replica adopts the v2 model with zero fits.
	for i := 0; i < 4; i++ {
		if _, _, err := primary.Assign("s2", "Scan", p, rows(d.Points, 0, 100, shift)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "primary refit", func() bool { return primary.Stats().DriftRefits >= 1 })
	for _, raw := range primary.ReplicationSnapshots("s2") {
		if _, err := replica.InstallSnapshot(raw); err != nil {
			t.Fatal(err)
		}
	}
	if _, fr, err := replica.Assign("s2", "Scan", p, rows(d.Points, 0, 50, shift)); err != nil || !fr.CacheHit {
		t.Fatalf("replica post-ship assign: err=%v cacheHit=%v", err, fr.CacheHit)
	}
	dr, err := replica.Drift("s2", "Scan")
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Models) != 1 || dr.Models[0].Version != 2 {
		t.Fatalf("replica Drift() = %+v", dr.Models)
	}
	if st := replica.Stats(); st.DriftRefits != 0 || st.CacheMisses != 0 || st.ModelsReplicated == 0 {
		t.Fatalf("replica end state: refits=%d misses=%d replicated=%d", st.DriftRefits, st.CacheMisses, st.ModelsReplicated)
	}
}

// TestAppendPointsWindow covers the sliding-window arithmetic edges:
// growth below the window, expiry at the window, an append larger than
// the whole window (its own head expires too), and the unbounded
// window=0 mode.
func TestAppendPointsWindow(t *testing.T) {
	d, _ := fixture(t, 800)
	n := d.Points.N

	t.Run("bounded", func(t *testing.T) {
		s := New(Options{Workers: 2, Window: int64(n + 50)})
		if _, err := s.PutDataset("s2", d.Points); err != nil {
			t.Fatal(err)
		}
		// Below the window: pure growth.
		resp, err := s.AppendPoints("s2", rows(d.Points, 0, 30, 0))
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != n+30 || resp.Expired != 0 || resp.Appended != 30 || resp.Version != 2 {
			t.Fatalf("growth append = %+v", resp)
		}
		// Past the window: the oldest rows expire.
		resp, err = s.AppendPoints("s2", rows(d.Points, 0, 40, 0))
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != n+50 || resp.Expired != 20 || resp.Appended != 40 || resp.Version != 3 {
			t.Fatalf("expiring append = %+v", resp)
		}
		// An append larger than the window: every old row AND the append's
		// own head expire; the window is exactly the append's tail.
		big := rows(d.Points, 0, n, 0)
		big = append(big, rows(d.Points, 0, n, 0)...)
		resp, err = s.AppendPoints("s2", big)
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != n+50 || resp.Appended != n+50 || resp.Expired != (n+50)+(2*n-(n+50)) || resp.Version != 4 {
			t.Fatalf("oversized append = %+v", resp)
		}
		st := s.Stats()
		if st.PointsAppended == 0 || st.PointsExpired == 0 {
			t.Fatalf("append counters: %+v", st)
		}
	})

	t.Run("unbounded", func(t *testing.T) {
		s := New(Options{Workers: 2})
		if _, err := s.PutDataset("s2", d.Points); err != nil {
			t.Fatal(err)
		}
		resp, err := s.AppendPoints("s2", rows(d.Points, 0, 100, 0))
		if err != nil {
			t.Fatal(err)
		}
		if resp.N != n+100 || resp.Expired != 0 {
			t.Fatalf("unbounded append = %+v", resp)
		}
	})

	t.Run("validation", func(t *testing.T) {
		s := New(Options{Workers: 2})
		if _, err := s.PutDataset("s2", d.Points); err != nil {
			t.Fatal(err)
		}
		if _, err := s.AppendPoints("nope", rows(d.Points, 0, 1, 0)); err == nil {
			t.Error("unknown dataset accepted")
		}
		if _, err := s.AppendPoints("s2", nil); err == nil {
			t.Error("empty append accepted")
		}
		if _, err := s.AppendPoints("s2", [][]float64{{1, 2, 3}}); err == nil {
			t.Error("wrong dimension accepted")
		}
		bad := [][]float64{{1, 2}}
		bad[0][1] = bad[0][1] / 0 // +Inf
		if _, err := s.AppendPoints("s2", bad); err == nil {
			t.Error("Inf coordinate accepted")
		}
	})
}

// TestAppendMaintainsIndex requires a resident density index to survive
// an append incrementally — and re-cuts of the updated index to match a
// fresh fit on the new window, the index's usual byte-identity bar.
func TestAppendMaintainsIndex(t *testing.T) {
	d, p := fixture(t, 800)
	s := New(Options{Workers: 2, Window: int64(d.Points.N)})
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DecisionGraph("s2", p.DCut, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := s.AppendPoints("s2", rows(d.Points, 0, 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IndexUpdated {
		t.Fatalf("index not maintained incrementally: %+v", resp)
	}
	if st := s.Stats(); st.IndexUpdates != 1 {
		t.Fatalf("IndexUpdates = %d", st.IndexUpdates)
	}
	// A fit served by an index re-cut must agree with a fresh fit of the
	// same algorithm on the appended window.
	fr, err := s.Fit("s2", "Scan", p)
	if err != nil {
		t.Fatal(err)
	}
	nds, ok := s.Dataset("s2")
	if !ok {
		t.Fatal("dataset vanished")
	}
	alg, ok := core.AlgorithmByName("Scan")
	if !ok {
		t.Fatal("Scan not registered")
	}
	fresh := p
	fresh.Workers = 2
	want, err := alg.ClusterDataset(nds, fresh)
	if err != nil {
		t.Fatal(err)
	}
	got := fr.Model.Result().Labels
	if len(got) != len(want.Labels) {
		t.Fatalf("label lengths differ: %d vs %d", len(got), len(want.Labels))
	}
	for i := range got {
		if got[i] != want.Labels[i] {
			t.Fatalf("label[%d] = %d, want %d (index update diverged from fresh fit)", i, got[i], want.Labels[i])
		}
	}
}

// TestAppendDuringStream pins the capture semantics: a stream that
// started before a window slide finishes on the model it started with —
// every chunk labeled, no error — even though the version advanced and
// the cache purged mid-stream.
func TestAppendDuringStream(t *testing.T) {
	s := New(Options{Workers: 2, Drift: driftConfig(), Window: 800})
	d, p := fixture(t, 800)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 10, 0)); err != nil {
		t.Fatal(err)
	}

	const total = 400
	fed := 0
	appended := false
	next := func() ([]float64, error) {
		if fed == total/2 && !appended {
			appended = true
			if _, err := s.AppendPoints("s2", rows(d.Points, 0, 100, 3)); err != nil {
				return nil, fmt.Errorf("mid-stream append: %w", err)
			}
		}
		if fed >= total {
			return nil, io.EOF
		}
		p := d.Points.At(fed % d.Points.N)
		fed++
		return append([]float64(nil), p...), nil
	}
	var got int
	sum, err := s.AssignStream("s2", "Scan", p, next, func(labels []int32) error {
		got += len(labels)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != total || sum.Points != total {
		t.Fatalf("stream labeled %d/%d points (summary %+v)", got, total, sum)
	}
}

// TestDriftConcurrentRace exercises the whole drift surface at once —
// batch assigns, streams, window appends, drift reads, stats — so the
// race detector can see the hot path and the refit machinery colliding.
func TestDriftConcurrentRace(t *testing.T) {
	cfg := driftConfig()
	cfg.Cooldown = time.Millisecond // allow repeated refits
	s := New(Options{Workers: 2, Drift: cfg, Window: 800})
	d, p := fixture(t, 800)
	n := d.Points.N
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 50, 0)); err != nil {
		t.Fatal(err)
	}

	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		fails atomic.Int64
	)
	record := func(err error) {
		if err != nil {
			fails.Add(1)
			t.Error(err)
		}
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(shift float64) {
			defer wg.Done()
			for !stop.Load() {
				labels, _, err := s.Assign("s2", "Scan", p, rows(d.Points, 0, 80, shift))
				record(err)
				if err == nil && len(labels) != 80 {
					fails.Add(1)
					t.Errorf("assign returned %d labels", len(labels))
				}
			}
		}(float64(g) * 1e7)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			fed := 0
			_, err := s.AssignStream("s2", "Scan", p, func() ([]float64, error) {
				if fed >= 100 {
					return nil, io.EOF
				}
				q := d.Points.At(fed)
				fed++
				return append([]float64(nil), q...), nil
			}, func([]int32) error { return nil })
			record(err)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_, err := s.AppendPoints("s2", rows(d.Points, 0, 50, 1e7))
			record(err)
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_, err := s.Drift("s2", "")
			record(err)
			_ = s.Stats()
		}
	}()

	time.Sleep(300 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	if fails.Load() > 0 {
		t.Fatalf("%d operations failed under concurrency", fails.Load())
	}
	_ = n
}
