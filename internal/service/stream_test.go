package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/data"
)

// ndjsonPoints renders rows as the stream wire format: one JSON array
// per line.
func ndjsonPoints(t testing.TB, pts [][]float64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, p := range pts {
		raw, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(raw)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestStreamAssignParity is the tentpole contract at the unit level:
// streaming labels equal the batch endpoint's labels for the same
// points, chunk boundaries land where StreamChunk says, and the summary
// accounts for every point without a refit.
func TestStreamAssignParity(t *testing.T) {
	const chunk = 7
	svc := New(Options{Workers: 2, CacheSize: 4, StreamChunk: chunk})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()

	d := data.SSet(2, 800, 1)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		t.Fatal(err)
	}
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("s2", "csv", csv.Bytes()); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{
		Dataset:   "s2",
		Algorithm: "Ex-DPC",
		Params:    api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}
	probes := d.Points.Rows()[:100]

	batch, err := c.Assign(api.AssignRequest{FitRequest: req, Points: probes})
	if err != nil {
		t.Fatal(err)
	}
	missesAfterBatch := svc.Stats().CacheMisses

	sr, err := c.AssignStream(req, bytes.NewReader(ndjsonPoints(t, probes)))
	if err != nil {
		t.Fatal(err)
	}
	var labels []int32
	records := 0
	for {
		part, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(part) > chunk {
			t.Errorf("label record has %d labels, chunk size is %d", len(part), chunk)
		}
		records++
		labels = append(labels, part...)
	}
	sum, ok := sr.Summary()
	if !ok {
		t.Fatal("stream ended without a summary")
	}
	sr.Close()

	if len(labels) != len(batch.Labels) {
		t.Fatalf("stream returned %d labels, batch %d", len(labels), len(batch.Labels))
	}
	for i := range labels {
		if labels[i] != batch.Labels[i] {
			t.Fatalf("label %d: stream %d, batch %d", i, labels[i], batch.Labels[i])
		}
	}
	wantRecords := (len(probes) + chunk - 1) / chunk
	if records != wantRecords || sum.Chunks != int64(wantRecords) {
		t.Errorf("stream sent %d records (summary says %d), want %d", records, sum.Chunks, wantRecords)
	}
	if sum.Points != int64(len(probes)) || sum.Clusters != batch.Clusters || !sum.CacheHit {
		t.Errorf("summary = %+v, want points=%d clusters=%d cache_hit=true", sum, len(probes), batch.Clusters)
	}
	if got := svc.Stats().CacheMisses; got != missesAfterBatch {
		t.Errorf("streaming refit the model (%d misses, want %d)", got, missesAfterBatch)
	}
	st := svc.Stats()
	if st.PointsAssigned != int64(2*len(probes)) {
		t.Errorf("points_assigned = %d, want %d", st.PointsAssigned, 2*len(probes))
	}
}

// TestStreamAssignEmpty: a header with no points is a success with an
// all-zero summary, mirroring the batch path's "labels":[] behavior.
func TestStreamAssignEmpty(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n")); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{Dataset: "tiny", Algorithm: "Ex-DPC", Params: api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}}
	sr, err := c.AssignStream(req, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	labels, sum, err := sr.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 0 || sum.Points != 0 || sum.Chunks != 0 {
		t.Errorf("empty stream: labels=%v summary=%+v", labels, sum)
	}
}

// TestStreamAssignPreStreamErrors: failures before any labeling keep the
// batch endpoint's JSON statuses — no 200, no NDJSON.
func TestStreamAssignPreStreamErrors(t *testing.T) {
	svc := New(Options{Workers: 1})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n")); err != nil {
		t.Fatal(err)
	}
	good := api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/assign/stream", ndjsonContentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, raw
	}

	if _, err := c.AssignStream(api.FitRequest{Dataset: "nope", Algorithm: "Ex-DPC", Params: good}, strings.NewReader("")); err == nil {
		t.Error("unknown dataset accepted")
	} else {
		var se *api.APIError
		if !errors.As(err, &se) || se.Status != http.StatusNotFound {
			t.Errorf("unknown dataset: err = %v, want api.APIError 404", err)
		}
	}
	if code, body := post("not json\n[1,2]\n"); code != http.StatusBadRequest {
		t.Errorf("garbage header: code=%d body=%s", code, body)
	}
	if code, body := post(`{"dataset":"tiny","algorithm":"Ex-DPC","params":{"dcut":10,"delta_min":11}} trailing` + "\n"); code != http.StatusBadRequest {
		t.Errorf("trailing garbage on header line: code=%d body=%s", code, body)
	}
	if code, body := post(""); code != http.StatusBadRequest {
		t.Errorf("empty body: code=%d body=%s", code, body)
	}
	// A header line over the per-line cap is a size violation, not a
	// parse error.
	huge := `{"dataset":"` + strings.Repeat("x", maxStreamLineBytes) + `"}`
	if code, _ := post(huge); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized header line: code=%d, want 413", code)
	}
}

// TestStreamAssignMidStreamErrors: once labels are flowing the status is
// spent, so failures must arrive as a terminal error record — after the
// chunks that were already answered — and surface through the client as
// an error, never as a silently short label set.
func TestStreamAssignMidStreamErrors(t *testing.T) {
	const chunk = 4
	svc := New(Options{Workers: 1, StreamChunk: chunk})
	ts := httptest.NewServer(NewHandler(svc))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	if _, err := c.PutDataset("tiny", "csv", []byte("1,2\n3,4\n5,6\n9,9\n")); err != nil {
		t.Fatal(err)
	}
	req := api.FitRequest{Dataset: "tiny", Algorithm: "Ex-DPC", Params: api.Params{DCut: 10, RhoMin: 0, DeltaMin: 11}}

	cases := []struct {
		name   string
		points string
		want   string // substring of the terminal error
		chunks int    // full chunks answered before the failure
	}{
		{"garbage line", "[1,2]\n[1,2]\n[1,2]\n[1,2]\n[1,2]\nnot json\n", "stream point 5", 1},
		{"wrong dimension", "[1,2]\n[1,2,3]\n", "dimension 3, want 2", 0},
		{"non-array line", "[1,2]\n{\"x\":1}\n", "stream point 1", 0},
	}
	for _, tc := range cases {
		sr, err := c.AssignStream(req, strings.NewReader(tc.points))
		if err != nil {
			t.Fatalf("%s: open stream: %v", tc.name, err)
		}
		got := 0
		for {
			_, err := sr.Next()
			if err == nil {
				got++
				continue
			}
			if err == io.EOF {
				t.Errorf("%s: stream ended in success", tc.name)
				break
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
			}
			break
		}
		if got != tc.chunks {
			t.Errorf("%s: %d chunks answered before the error, want %d", tc.name, got, tc.chunks)
		}
		sr.Close()
	}
}

// TestStreamReaderTruncated: a stream cut off before the summary — the
// shape of a relay hop dying — must be an error, not a quiet success
// with fewer labels.
func TestStreamReaderTruncated(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", ndjsonContentType)
		fmt.Fprintln(w, `{"labels":[0,1]}`)
		// No summary, no error record: the connection just ends.
	}))
	defer ts.Close()
	c := NewClient(ts.URL, testClientOptions())
	sr, err := c.AssignStream(api.FitRequest{Dataset: "x", Algorithm: "Ex-DPC"}, strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	if _, err := sr.Next(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	_, err = sr.Next()
	if err == nil || err == io.EOF || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("truncated stream: err = %v, want truncation error", err)
	}
	if _, ok := sr.Summary(); ok {
		t.Error("truncated stream produced a summary")
	}
}

// TestServiceAssignStreamDirect exercises the Service-level API without
// HTTP: the in-process path the bench harness and embedders use.
func TestServiceAssignStreamDirect(t *testing.T) {
	svc := New(Options{Workers: 2, StreamChunk: 3})
	d := data.SSet(2, 500, 1)
	if _, err := svc.PutDataset("s2", d.Points); err != nil {
		t.Fatal(err)
	}
	p := coreParams(api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin})
	probes := d.Points.Rows()[:10]
	i := 0
	next := func() ([]float64, error) {
		if i == len(probes) {
			return nil, io.EOF
		}
		i++
		return probes[i-1], nil
	}
	var got []int32
	sum, err := svc.AssignStream("s2", "Ex-DPC", p, next, func(labels []int32) error {
		got = append(got, labels...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := svc.Assign("s2", "Ex-DPC", p, probes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream %d labels, batch %d", len(got), len(want))
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("label %d: stream %d, batch %d", j, got[j], want[j])
		}
	}
	if sum.Points != int64(len(probes)) || sum.Chunks != 4 {
		t.Errorf("summary = %+v, want 10 points in 4 chunks", sum)
	}

	// An emit error (client gone) aborts the stream.
	i = 0
	sentinel := errors.New("consumer gone")
	if _, err := svc.AssignStream("s2", "Ex-DPC", p, next, func([]int32) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Errorf("emit error not propagated: %v", err)
	}
}
