// Package service is the fit-once/assign-many serving layer behind cmd/dpcd:
// a named dataset registry, an LRU cache of fitted core.Model instances
// keyed by (dataset, algorithm, params) with single-flight fit
// deduplication, and request metrics. Heavy traffic for the same model
// pays one ClusterDataset pass; everything after that is O(log n)
// kd-tree assignment per point.
package service

import (
	"container/list"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/persist"
)

// Options configures a Service.
type Options struct {
	// CacheSize is the maximum number of fitted models kept; <= 0 means 8.
	CacheSize int
	// Workers is the worker count used for fits and batch assigns;
	// <= 0 means all CPUs. Request parameters cannot override it, so the
	// cache never holds duplicate models differing only in thread count.
	Workers int
	// Store, when non-nil, makes the service durable: datasets are
	// snapshotted on upload, models on fit completion, and New warm-loads
	// both so a restarted daemon serves previously fitted models with
	// zero refits. Persistence failures are logged and counted in Stats
	// but never fail the request — durability degrades, serving does not.
	Store *persist.Store
	// Owns, when non-nil, restricts the warm load to datasets the filter
	// accepts. Ring mode sets it to "this shard owns the key": snapshots
	// for keys owned elsewhere stay on disk, unloaded, so a later
	// membership change can Reconcile them back in with zero refits.
	Owns func(dataset string) bool
	// StreamChunk is the number of points labeled (and answered) per
	// response record on /v1/assign/stream; <= 0 scales it to Workers.
	// Memory per in-flight stream is O(StreamChunk), never O(stream).
	StreamChunk int
	// MaxStreams caps concurrent /v1/assign/stream requests; <= 0 means
	// 64. A request over the cap is refused up front (HTTP 429) rather
	// than queued: a stream holds its slot for its whole life, and
	// invisible queueing behind long streams is worse than an honest
	// retry signal.
	MaxStreams int
	// MaxStreamPoints caps the points one stream may submit; <= 0 means
	// 1<<30. The breach surfaces as the stream's terminal error record —
	// labels already emitted stay valid.
	MaxStreamPoints int64
}

func (o Options) cacheSize() int {
	if o.CacheSize > 0 {
		return o.CacheSize
	}
	return 8
}

func (o Options) maxStreams() int {
	if o.MaxStreams > 0 {
		return o.MaxStreams
	}
	return 64
}

func (o Options) maxStreamPoints() int64 {
	if o.MaxStreamPoints > 0 {
		return o.MaxStreamPoints
	}
	return 1 << 30
}

// Service owns the dataset registry and the model cache.
type Service struct {
	opts Options

	mu       sync.RWMutex
	datasets map[string]*datasetEntry

	cache *modelCache

	// streamSem bounds concurrent label streams; each stream holds one
	// slot from just after its fit until it finishes.
	streamSem chan struct{}

	store *persist.Store
	// The restored counters are atomic, not plain ints guarded by mu:
	// ring reconciles bump them at runtime while fan-out /stats reads
	// them from another goroutine.
	datasetsRestored atomic.Int64
	modelsRestored   atomic.Int64
	persistErrors    atomic.Int64

	// Replica installs (snapshot shipping from a key's primary). Like the
	// restored counters these are warm-loads, never refits, and never
	// touch the cache hit/miss counters.
	datasetsReplicated atomic.Int64
	modelsReplicated   atomic.Int64

	fitRequests    atomic.Int64
	assignRequests atomic.Int64
	pointsAssigned atomic.Int64
}

type datasetEntry struct {
	points *geom.Dataset
	// version increments on re-upload so cached models fitted on the old
	// points can never serve the new name.
	version uint64
}

// New creates a service. With Options.Store set it warm-loads the
// dataset registry and repopulates the model cache from the snapshot
// directory — the kd-trees are rebuilt, the clustering itself is not
// re-run. Damaged snapshots are skipped (the store logs them); they cost
// a refit on first request, nothing more.
func New(opts Options) *Service {
	s := &Service{
		opts:      opts,
		datasets:  make(map[string]*datasetEntry),
		cache:     newModelCache(opts.cacheSize()),
		streamSem: make(chan struct{}, opts.maxStreams()),
	}
	if opts.Store != nil {
		s.store = opts.Store
		dss, models := opts.Store.RestoreOwned(opts.Workers, opts.Owns)
		for _, d := range dss {
			s.datasets[d.Name] = &datasetEntry{points: d.Points, version: d.Version}
			s.datasetsRestored.Add(1)
		}
		// More snapshots than cache slots: keep the most recently
		// persisted (manifest order is persist order), so ModelsRestored
		// counts what is actually resident and no phantom evictions show
		// up in Stats before any traffic.
		if cap := opts.cacheSize(); len(models) > cap {
			models = models[len(models)-cap:]
		}
		for _, rm := range models {
			if s.cache.put(s.restoredKey(rm.Key), rm.Model) {
				s.modelsRestored.Add(1)
			}
		}
	}
	return s
}

// restoredKey maps a persisted model key (Workers zeroed on disk) onto
// the in-memory cache key (Workers is this host's policy).
func (s *Service) restoredKey(k persist.ModelKey) modelKey {
	return modelKey{
		dataset:   k.Dataset,
		version:   k.Version,
		algorithm: k.Algorithm,
		params:    s.normalize(k.Algorithm, k.Params),
	}
}

// ReconcileStats reports one ring-rebalance pass over resident state.
type ReconcileStats struct {
	DatasetsLoaded  int `json:"datasets_loaded"`
	ModelsLoaded    int `json:"models_loaded"`
	DatasetsEvicted int `json:"datasets_evicted"`
}

// Reconcile aligns resident state with ring ownership after a membership
// change: datasets (and their cached models) this shard no longer owns
// are evicted from memory — their snapshots stay on disk untouched, for
// the shard that owns them now or for this one if ownership returns —
// and snapshots it now owns are warm-loaded, so a rebalance costs zero
// refits. A nil filter owns everything (single-instance mode) and
// reconciling is a no-op.
func (s *Service) Reconcile(owns func(dataset string) bool) ReconcileStats {
	var st ReconcileStats
	if owns == nil {
		return st
	}
	s.mu.Lock()
	var gone []string
	resident := make(map[string]bool, len(s.datasets))
	for name := range s.datasets {
		if !owns(name) {
			delete(s.datasets, name)
			gone = append(gone, name)
			continue
		}
		resident[name] = true
	}
	s.mu.Unlock()
	for _, name := range gone {
		s.cache.purgeStale(name, 0)
	}
	st.DatasetsEvicted = len(gone)
	if s.store == nil {
		return st
	}
	// The snapshot decode is slow, so it runs outside the lock; the
	// resident set cannot lose entries meanwhile (evictions only happen
	// here), so the skip condition stays valid. An upload racing the
	// reconcile is resolved at insert time below — the upload wins.
	dss, models := s.store.RestoreOwned(s.opts.Workers, func(name string) bool {
		return owns(name) && !resident[name]
	})
	restored := make(map[string]uint64, len(dss))
	for _, d := range dss {
		s.mu.Lock()
		if _, ok := s.datasets[d.Name]; ok {
			s.mu.Unlock()
			continue
		}
		s.datasets[d.Name] = &datasetEntry{points: d.Points, version: d.Version}
		s.mu.Unlock()
		restored[d.Name] = d.Version
		st.DatasetsLoaded++
		s.datasetsRestored.Add(1)
	}
	for _, rm := range models {
		// Only attach models to the dataset snapshot that actually landed;
		// if a concurrent upload won the insert race, its version differs
		// and the snapshot model must not serve it.
		if v, ok := restored[rm.Key.Dataset]; !ok || v != rm.Key.Version {
			continue
		}
		if s.cache.put(s.restoredKey(rm.Key), rm.Model) {
			st.ModelsLoaded++
			s.modelsRestored.Add(1)
		}
	}
	return st
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name string `json:"name"`
	N    int    `json:"n"`
	Dim  int    `json:"dim"`
}

// PutDataset registers (or replaces) a named dataset. The dataset is
// validated once here — NaN/Inf coordinates are rejected so a malformed
// upload cannot reach the clustering kernels — and frozen: the service
// keeps the pointer, so callers must not mutate it afterwards. Replacing
// a name purges every cached model fitted on the old points; re-uploading
// bit-identical points is a no-op that keeps the version, the cached
// models, and the snapshots (an idempotent provisioning script must not
// throw away the warm cache).
func (s *Service) PutDataset(name string, ds *geom.Dataset) (DatasetInfo, error) {
	if name == "" {
		return DatasetInfo{}, fmt.Errorf("service: empty dataset name")
	}
	if ds == nil || ds.N == 0 {
		return DatasetInfo{}, fmt.Errorf("service: dataset %q is empty", name)
	}
	if err := ds.Validate(); err != nil {
		return DatasetInfo{}, fmt.Errorf("service: dataset %q: %w", name, err)
	}
	s.mu.Lock()
	version := uint64(1)
	if old, ok := s.datasets[name]; ok {
		// Exact comparison, not a fingerprint: uploads are untrusted HTTP
		// bodies, and a 64-bit hash collision here would silently keep
		// serving the old points under the new upload.
		if old.points.Dim == ds.Dim && slices.Equal(old.points.Coords, ds.Coords) {
			points, ver := old.points, old.version
			s.mu.Unlock()
			if s.store != nil {
				// Self-heal: if the snapshot for this version failed to
				// write earlier (or was damaged on disk since), the
				// idempotent re-upload is the retry opportunity.
				if err := s.store.EnsureDataset(name, ver, points); err != nil {
					s.persistErrors.Add(1)
					s.store.Log("service: re-persisting dataset %q v%d: %v", name, ver, err)
				}
			}
			return DatasetInfo{Name: name, N: ds.N, Dim: ds.Dim}, nil
		}
		version = old.version + 1
	}
	s.datasets[name] = &datasetEntry{points: ds, version: version}
	s.mu.Unlock()
	if version > 1 {
		s.cache.purgeStale(name, version)
	}
	if s.store != nil {
		// SaveDataset also drops the replaced version's snapshots — the
		// disk mirror of the purge above.
		if err := s.store.SaveDataset(name, version, ds); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting dataset %q v%d: %v", name, version, err)
		}
	}
	return DatasetInfo{Name: name, N: ds.N, Dim: ds.Dim}, nil
}

// Dataset returns a registered dataset.
func (s *Service) Dataset(name string) (*geom.Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[name]
	if !ok {
		return nil, false
	}
	return e.points, true
}

// Datasets lists the registry sorted by name.
func (s *Service) Datasets() []DatasetInfo {
	s.mu.RLock()
	out := make([]DatasetInfo, 0, len(s.datasets))
	for name, e := range s.datasets {
		out = append(out, DatasetInfo{Name: name, N: e.points.N, Dim: e.points.Dim})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// normalize canonicalizes request parameters for cache keying: the
// worker count is service policy (not part of model identity), and
// parameters the chosen algorithm ignores (Seed for the deterministic
// ones, Epsilon for everything but S-Approx-DPC) are zeroed so
// identical models are fitted and cached once.
func (s *Service) normalize(algorithm string, p core.Params) core.Params {
	p = core.CanonicalParams(algorithm, p)
	p.Workers = s.opts.Workers
	return p
}

// FitResult is the outcome of one fit request.
type FitResult struct {
	Model    *core.Model
	CacheHit bool
}

// Fit returns the model for (dataset, algorithm, params), fitting it at
// most once: concurrent requests for the same key share a single
// ClusterDataset pass, later requests hit the LRU cache. algorithm is a
// paper name resolved against the full ten-algorithm registry.
func (s *Service) Fit(dataset, algorithm string, p core.Params) (FitResult, error) {
	s.fitRequests.Add(1)
	alg, ok := core.AlgorithmByName(algorithm)
	if !ok {
		return FitResult{}, fmt.Errorf("service: unknown algorithm %q", algorithm)
	}
	s.mu.RLock()
	e, ok := s.datasets[dataset]
	s.mu.RUnlock()
	if !ok {
		return FitResult{}, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	p = s.normalize(algorithm, p)
	if err := p.Validate(); err != nil {
		return FitResult{}, err
	}
	key := modelKey{dataset: dataset, version: e.version, algorithm: algorithm, params: p}
	model, hit, err := s.cache.getOrFit(key, func() (*core.Model, error) {
		return core.Fit(alg, e.points, p)
	})
	if err != nil {
		return FitResult{}, err
	}
	// A re-upload may have bumped the version between our registry read
	// and the cache insert; the model is still correct for this caller,
	// but its key is unreachable by future requests and would pin the
	// replaced dataset in the LRU. Sweep stale versions when detected.
	s.mu.RLock()
	cur, still := s.datasets[dataset]
	s.mu.RUnlock()
	if !still || cur.version != e.version {
		keep := uint64(0)
		if still {
			keep = cur.version
		}
		s.cache.purgeStale(dataset, keep)
	} else if s.store != nil && !hit {
		// A fresh fit on a still-current dataset version: snapshot it so
		// the next process start skips this ClusterDataset pass. Workers
		// is zeroed on disk — thread count is host policy, not identity.
		pk := persist.ModelKey{Dataset: dataset, Version: e.version, Algorithm: algorithm, Params: p}
		if err := s.store.SaveModel(pk, model); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting model %s/%s: %v", dataset, algorithm, err)
		}
	}
	return FitResult{Model: model, CacheHit: hit}, nil
}

// Assign labels a batch of points against the model for (dataset,
// algorithm, params), fitting it first if needed. It returns the labels
// and whether the model came from the cache.
func (s *Service) Assign(dataset, algorithm string, p core.Params, pts [][]float64) ([]int32, FitResult, error) {
	fr, err := s.Fit(dataset, algorithm, p)
	if err != nil {
		return nil, FitResult{}, err
	}
	s.assignRequests.Add(1)
	labels, err := s.assignChunk(fr.Model, pts)
	if err != nil {
		return nil, FitResult{}, err
	}
	return labels, fr, nil
}

// assignChunk is the labeling core shared by the batch path (one chunk =
// the whole batch) and the streaming path (one chunk per response
// record): a parallel AssignAll plus the points counter.
func (s *Service) assignChunk(m *core.Model, pts [][]float64) ([]int32, error) {
	labels, err := m.AssignAll(pts, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.pointsAssigned.Add(int64(len(pts)))
	return labels, nil
}

// Stats is a point-in-time snapshot of service counters.
type Stats struct {
	Datasets       int     `json:"datasets"`
	ModelsCached   int     `json:"models_cached"`
	CacheCapacity  int     `json:"cache_capacity"`
	FitRequests    int64   `json:"fit_requests"`
	CacheHits      int64   `json:"cache_hits"`
	CacheMisses    int64   `json:"cache_misses"`
	Evictions      int64   `json:"evictions"`
	AssignRequests int64   `json:"assign_requests"`
	PointsAssigned int64   `json:"points_assigned"`
	HitRate        float64 `json:"hit_rate"`
	// DatasetsRestored and ModelsRestored count what New warm-loaded from
	// the snapshot store; PersistErrors counts snapshot writes that
	// failed (serving continued, durability did not).
	DatasetsRestored int   `json:"datasets_restored"`
	ModelsRestored   int   `json:"models_restored"`
	PersistErrors    int64 `json:"persist_errors"`
	// DatasetsReplicated and ModelsReplicated count snapshot installs
	// shipped by a key's primary — warm-loads of replica state, disjoint
	// from both the restored counters (disk) and cache misses (refits).
	DatasetsReplicated int64 `json:"datasets_replicated"`
	ModelsReplicated   int64 `json:"models_replicated"`
}

// Stats returns current counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	nds := len(s.datasets)
	s.mu.RUnlock()
	hits, misses, evictions, cached := s.cache.counters()
	st := Stats{
		Datasets:       nds,
		ModelsCached:   cached,
		CacheCapacity:  s.cache.capacity,
		FitRequests:    s.fitRequests.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Evictions:      evictions,
		AssignRequests: s.assignRequests.Load(),
		PointsAssigned: s.pointsAssigned.Load(),

		DatasetsRestored: int(s.datasetsRestored.Load()),
		ModelsRestored:   int(s.modelsRestored.Load()),
		PersistErrors:    s.persistErrors.Load(),

		DatasetsReplicated: s.datasetsReplicated.Load(),
		ModelsReplicated:   s.modelsReplicated.Load(),
	}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}

// modelKey identifies one fitted model. core.Params is a flat struct of
// scalars, so the whole key is comparable and works as a map key.
type modelKey struct {
	dataset   string
	version   uint64
	algorithm string
	params    core.Params
}

// modelCache is an LRU of fitted models with single-flight fills: a miss
// inserts an in-flight entry under the lock, then fits outside it, so
// concurrent requests for the same key block on the entry instead of
// fitting again. Failed fits are removed so the next request retries.
type modelCache struct {
	capacity int

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[modelKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key   modelKey
	ready chan struct{} // closed once model/err are set
	model *core.Model
	err   error
}

func newModelCache(capacity int) *modelCache {
	return &modelCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[modelKey]*list.Element),
	}
}

// getOrFit returns the cached model for key, joining an in-flight fit or
// performing the fit itself when absent. hit reports whether the caller
// avoided a fresh fit (cached or joined).
func (c *modelCache) getOrFit(key modelKey, fit func() (*core.Model, error)) (model *core.Model, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The fit this caller joined failed; surface its error without
			// counting a hit. The owner already removed the entry, so a
			// retry starts fresh.
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.model, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()
	c.misses.Add(1)

	e.model, e.err = fit()
	if e.err != nil {
		c.remove(key, e)
	}
	close(e.ready)
	if e.err == nil {
		// The insert-time sweep skips in-flight entries, so the cache can
		// exceed capacity while fits run; settle it now that this entry is
		// evictable.
		c.mu.Lock()
		c.evictLocked()
		c.mu.Unlock()
	}
	return e.model, false, e.err
}

// put inserts an already-fitted model — a snapshot restore — as a
// completed entry at the front, evicting LRU overflow. It reports whether
// the key was absent. Restores neither count as hits nor misses; the
// counters keep meaning "requests served without / with a fit".
func (c *modelCache) put(key modelKey, m *core.Model) bool {
	ready := make(chan struct{})
	close(ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ready: ready, model: m})
	c.evictLocked()
	return true
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its capacity. In-flight entries are never evicted (their
// fitters and joiners hold references); if everything is in flight the
// cache temporarily exceeds capacity.
func (c *modelCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		evicted := false
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
			default:
				continue // still fitting
			}
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// remove deletes key if it still maps to entry e (a purge or eviction
// may have raced ahead).
func (c *modelCache) remove(key modelKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

// purgeStale drops every entry fitted on the named dataset whose
// version differs from keepVersion (0 keeps nothing). In-flight fits
// complete for their waiters but are no longer reachable through the
// cache.
func (c *modelCache) purgeStale(name string, keepVersion uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.dataset == name && e.key.version != keepVersion {
			c.ll.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

func (c *modelCache) counters() (hits, misses, evictions int64, cached int) {
	c.mu.Lock()
	cached = c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), cached
}
