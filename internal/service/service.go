// Package service is the fit-once/assign-many serving layer behind cmd/dpcd:
// a named dataset registry, an LRU cache of fitted core.Model instances
// keyed by (dataset, algorithm, params) with single-flight fit
// deduplication, and request metrics. Heavy traffic for the same model
// pays one ClusterDataset pass; everything after that is O(log n)
// kd-tree assignment per point.
package service

import (
	"container/list"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"repro/api"
	"repro/internal/core"
	"repro/internal/densindex"
	"repro/internal/drift"
	"repro/internal/geom"
	"repro/internal/persist"
)

// Options configures a Service.
type Options struct {
	// CacheSize is the maximum number of fitted models kept; <= 0 means 8.
	CacheSize int
	// Workers is the worker count used for fits and batch assigns;
	// <= 0 means all CPUs. Request parameters cannot override it, so the
	// cache never holds duplicate models differing only in thread count.
	Workers int
	// Store, when non-nil, makes the service durable: datasets are
	// snapshotted on upload, models on fit completion, and New warm-loads
	// both so a restarted daemon serves previously fitted models with
	// zero refits. Persistence failures are logged and counted in Stats
	// but never fail the request — durability degrades, serving does not.
	Store *persist.Store
	// Owns, when non-nil, restricts the warm load to datasets the filter
	// accepts. Ring mode sets it to "this shard owns the key": snapshots
	// for keys owned elsewhere stay on disk, unloaded, so a later
	// membership change can Reconcile them back in with zero refits.
	Owns func(dataset string) bool
	// StreamChunk is the number of points labeled (and answered) per
	// response record on /v1/assign/stream; <= 0 scales it to Workers.
	// Memory per in-flight stream is O(StreamChunk), never O(stream).
	StreamChunk int
	// MaxStreams caps concurrent /v1/assign/stream requests; <= 0 means
	// 64. A request over the cap is refused up front (HTTP 429) rather
	// than queued: a stream holds its slot for its whole life, and
	// invisible queueing behind long streams is worse than an honest
	// retry signal.
	MaxStreams int
	// MaxStreamPoints caps the points one stream may submit; <= 0 means
	// 1<<30. The breach surfaces as the stream's terminal error record —
	// labels already emitted stay valid.
	MaxStreamPoints int64
	// IndexMaxEdges caps the stored entries of one dataset's density
	// index (each costs 12 bytes); <= 0 means 1<<25 (~384 MiB). A
	// decision-graph or sweep request whose d_cut would exceed the budget
	// fails with a clear error instead of exhausting memory.
	IndexMaxEdges int64
	// Drift, when non-nil, enables assign-path drift tracking and
	// trip-triggered background refits with atomic model swap (see
	// internal/service/drift.go). Nil keeps the pre-drift behavior and
	// its zero per-point overhead.
	Drift *drift.Config
	// Window caps a dataset's point count across POST /v1/points
	// appends: once an append would exceed it, the oldest points expire
	// (sliding window). <= 0 means unbounded.
	Window int64
}

func (o Options) cacheSize() int {
	if o.CacheSize > 0 {
		return o.CacheSize
	}
	return 8
}

func (o Options) maxStreams() int {
	if o.MaxStreams > 0 {
		return o.MaxStreams
	}
	return 64
}

func (o Options) maxStreamPoints() int64 {
	if o.MaxStreamPoints > 0 {
		return o.MaxStreamPoints
	}
	return 1 << 30
}

func (o Options) indexMaxEdges() int64 {
	if o.IndexMaxEdges > 0 {
		return o.IndexMaxEdges
	}
	return 1 << 25
}

// Service owns the dataset registry and the model cache.
type Service struct {
	opts Options

	mu       sync.RWMutex
	datasets map[string]*datasetEntry

	cache *modelCache

	// indexMu guards indexes: at most one density index per dataset,
	// built single-flight (the entry is inserted before the build runs,
	// so concurrent requests join it instead of building again).
	indexMu sync.Mutex
	indexes map[string]*indexEntry

	// streamSem bounds concurrent label streams; each stream holds one
	// slot from just after its fit until it finishes.
	streamSem chan struct{}

	store *persist.Store
	// The restored counters are atomic, not plain ints guarded by mu:
	// ring reconciles bump them at runtime while fan-out /stats reads
	// them from another goroutine.
	datasetsRestored atomic.Int64
	modelsRestored   atomic.Int64
	persistErrors    atomic.Int64

	// Replica installs (snapshot shipping from a key's primary). Like the
	// restored counters these are warm-loads, never refits, and never
	// touch the cache hit/miss counters.
	datasetsReplicated atomic.Int64
	modelsReplicated   atomic.Int64

	fitRequests    atomic.Int64
	assignRequests atomic.Int64
	pointsAssigned atomic.Int64

	indexBuilds     atomic.Int64
	indexCuts       atomic.Int64
	indexesRestored atomic.Int64

	// Drift subsystem (see drift.go): per-lineage serving state keyed by
	// (dataset, algorithm, params) — deliberately not version — plus the
	// ring hooks and the append/expiry counters.
	driftMu          sync.Mutex
	drifts           map[driftKey]*driftState
	driftPrimary     func(dataset string) bool
	onDriftRefit     func(dataset string)
	driftTrips       atomic.Int64
	driftRefits      atomic.Int64
	driftStaleServes atomic.Int64
	pointsAppended   atomic.Int64
	pointsExpired    atomic.Int64
	indexUpdates     atomic.Int64
}

type datasetEntry struct {
	points *geom.Dataset
	// version increments on re-upload so cached models fitted on the old
	// points can never serve the new name.
	version uint64
}

// dsInfo is the one place a dataset becomes its wire description, so
// the precision echo cannot drift between the listing, the single-get,
// and the upload response.
func dsInfo(name string, ds *geom.Dataset) api.DatasetInfo {
	return api.DatasetInfo{Name: name, N: ds.N, Dim: ds.Dim, Precision: ds.Precision()}
}

// New creates a service. With Options.Store set it warm-loads the
// dataset registry and repopulates the model cache from the snapshot
// directory — the kd-trees are rebuilt, the clustering itself is not
// re-run. Damaged snapshots are skipped (the store logs them); they cost
// a refit on first request, nothing more.
func New(opts Options) *Service {
	s := &Service{
		opts:      opts,
		datasets:  make(map[string]*datasetEntry),
		cache:     newModelCache(opts.cacheSize()),
		indexes:   make(map[string]*indexEntry),
		drifts:    make(map[driftKey]*driftState),
		streamSem: make(chan struct{}, opts.maxStreams()),
	}
	if opts.Store != nil {
		s.store = opts.Store
		dss, models := opts.Store.RestoreOwned(opts.Workers, opts.Owns)
		for _, d := range dss {
			s.datasets[d.Name] = &datasetEntry{points: d.Points, version: d.Version}
			s.datasetsRestored.Add(1)
		}
		s.restoreIndexes(dss, opts.Owns)
		// More snapshots than cache slots: keep the most recently
		// persisted (manifest order is persist order), so ModelsRestored
		// counts what is actually resident and no phantom evictions show
		// up in Stats before any traffic.
		if cap := opts.cacheSize(); len(models) > cap {
			models = models[len(models)-cap:]
		}
		for _, rm := range models {
			if s.cache.put(s.restoredKey(rm.Key), rm.Model) {
				s.modelsRestored.Add(1)
			}
		}
	}
	return s
}

// restoredKey maps a persisted model key (Workers zeroed on disk) onto
// the in-memory cache key (Workers is this host's policy).
func (s *Service) restoredKey(k persist.ModelKey) modelKey {
	return modelKey{
		dataset:   k.Dataset,
		version:   k.Version,
		algorithm: k.Algorithm,
		params:    s.normalize(k.Algorithm, k.Params),
	}
}

// indexEntry is one dataset's density index, single-flight like a cache
// entry: it is inserted (with ready open) before the build runs, so
// concurrent requests wait on ready instead of building twice. A failed
// build removes the entry; the next request retries.
type indexEntry struct {
	version uint64
	dcMax   float64 // build ceiling; == idx.DCutMax() once ready
	ready   chan struct{}
	idx     *densindex.Index
	err     error
}

// restoreIndexes rebuilds warm-loaded index snapshots against the
// restored datasets. Version and fingerprint must both match — an index
// must never serve different points — and FromParts re-validates the
// CSR invariants, so a damaged or forged snapshot costs one rebuild on
// demand, nothing more.
func (s *Service) restoreIndexes(dss []*persist.DatasetSnapshot, owns func(string) bool) {
	byName := make(map[string]*persist.DatasetSnapshot, len(dss))
	for _, d := range dss {
		byName[d.Name] = d
	}
	for _, snap := range s.store.RestoreIndexesOwned(owns) {
		d, ok := byName[snap.Dataset]
		if !ok || d.Version != snap.Version || d.Fingerprint != snap.DatasetFingerprint {
			s.store.Log("service: skipping index %s: its dataset v%d was not restored or changed", snap.Dataset, snap.Version)
			continue
		}
		idx, err := densindex.FromParts(d.Points, snap.DCutMax, snap.Start, snap.IDs, snap.Sq)
		if err != nil {
			s.store.Log("service: skipping index %s: %v", snap.Dataset, err)
			continue
		}
		ready := make(chan struct{})
		close(ready)
		s.indexMu.Lock()
		s.indexes[snap.Dataset] = &indexEntry{
			version: snap.Version, dcMax: idx.DCutMax(), ready: ready, idx: idx,
		}
		s.indexMu.Unlock()
		s.indexesRestored.Add(1)
	}
}

// dropIndex forgets a dataset's resident index (re-upload, eviction).
// An in-flight build keeps running for its waiters but its result is no
// longer reachable.
func (s *Service) dropIndex(name string) {
	s.indexMu.Lock()
	delete(s.indexes, name)
	s.indexMu.Unlock()
}

// adoptIndex installs an already-validated index as the dataset's
// resident entry, unless one at least as capable (same version, ceiling
// covering the newcomer's) is already resident or in flight. Reports
// whether the index was adopted.
func (s *Service) adoptIndex(name string, version uint64, idx *densindex.Index) bool {
	ready := make(chan struct{})
	close(ready)
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	if ent := s.indexes[name]; ent != nil && ent.version == version && ent.dcMax >= idx.DCutMax() {
		return false
	}
	s.indexes[name] = &indexEntry{version: version, dcMax: idx.DCutMax(), ready: ready, idx: idx}
	return true
}

// residentIndex returns the dataset's index only if it is already built
// for this version and covers dcut — the condition under which a fit
// request may be satisfied by a re-cut without ever paying a build.
func (s *Service) residentIndex(name string, version uint64, dcut float64) (*densindex.Index, bool) {
	s.indexMu.Lock()
	ent := s.indexes[name]
	s.indexMu.Unlock()
	if ent == nil || ent.version != version || ent.dcMax < dcut {
		return nil, false
	}
	select {
	case <-ent.ready:
	default:
		return nil, false // still building; a fit should not wait on it
	}
	if ent.err != nil || ent.idx == nil {
		return nil, false
	}
	return ent.idx, true
}

// indexHeadroom scales a requested d_cut up to the build ceiling, so an
// analyst nudging d_cut upward re-cuts the existing index instead of
// triggering a rebuild per nudge.
const indexHeadroom = 1.5

// ensureIndex returns the dataset's density index, building it (or
// rebuilding it with a larger ceiling) if the resident one does not
// cover needDC. reused reports whether the caller joined an index that
// was already resident or in flight — false means this request
// initiated the build it waited on.
func (s *Service) ensureIndex(name string, needDC float64) (idx *densindex.Index, version uint64, reused bool, err error) {
	// The headroom absorbs an analyst nudging d_cut upward without a
	// rebuild per nudge.
	return s.ensureIndexCeil(name, needDC, needDC*indexHeadroom)
}

// ensureIndexCeil is ensureIndex with an explicit build ceiling: a sweep
// knows its whole grid up front, so it builds at exactly the grid
// maximum instead of paying the interactive-nudge headroom (edge counts
// grow with the ceiling's square).
func (s *Service) ensureIndexCeil(name string, needDC, buildDC float64) (idx *densindex.Index, version uint64, reused bool, err error) {
	if !(needDC > 0) {
		return nil, 0, false, fmt.Errorf("service: dcut must be positive, got %g", needDC)
	}
	for attempts := 0; ; attempts++ {
		s.mu.RLock()
		e, ok := s.datasets[name]
		s.mu.RUnlock()
		if !ok {
			return nil, 0, false, fmt.Errorf("service: unknown dataset %q", name)
		}

		s.indexMu.Lock()
		ent := s.indexes[name]
		if ent != nil && ent.version == e.version && ent.dcMax >= needDC {
			s.indexMu.Unlock()
			<-ent.ready
			if ent.err == nil {
				return ent.idx, e.version, true, nil
			}
			// The build this caller joined failed; its owner already removed
			// the entry. Retry once from scratch, then surface the error.
			if attempts > 0 {
				return nil, 0, false, ent.err
			}
			continue
		}
		ent = &indexEntry{version: e.version, dcMax: buildDC, ready: make(chan struct{})}
		s.indexes[name] = ent
		s.indexMu.Unlock()

		// Build outside both locks; joiners block on ready. The headroom
		// build is retried at exactly needDC when it blows the edge budget —
		// the analyst asked for needDC, not for the convenience margin.
		ent.idx, ent.err = densindex.Build(e.points, ent.dcMax, s.opts.Workers, s.opts.indexMaxEdges())
		if errors.Is(ent.err, densindex.ErrTooDense) {
			ent.dcMax = needDC
			ent.idx, ent.err = densindex.Build(e.points, needDC, s.opts.Workers, s.opts.indexMaxEdges())
		}
		if ent.err != nil {
			s.indexMu.Lock()
			if s.indexes[name] == ent {
				delete(s.indexes, name)
			}
			s.indexMu.Unlock()
			close(ent.ready)
			return nil, 0, false, ent.err
		}
		ent.dcMax = ent.idx.DCutMax()
		close(ent.ready)
		s.indexBuilds.Add(1)
		if s.store != nil {
			s.persistIndex(name, e.version, ent.idx)
		}
		return ent.idx, e.version, false, nil
	}
}

// persistIndex snapshots a freshly built index so a restart warm-loads
// it. Failures degrade durability, not serving.
func (s *Service) persistIndex(name string, version uint64, idx *densindex.Index) {
	s.mu.RLock()
	e, ok := s.datasets[name]
	s.mu.RUnlock()
	if !ok || e.version != version {
		return // replaced while building; nothing worth persisting
	}
	dcMax, start, ids, sq := idx.Parts()
	snap := &persist.IndexSnapshot{
		Dataset: name, Version: version,
		DatasetFingerprint: e.points.Fingerprint(),
		DCutMax:            dcMax, Start: start, IDs: ids, Sq: sq,
	}
	if err := s.store.SaveIndex(snap); err != nil {
		s.persistErrors.Add(1)
		s.store.Log("service: persisting index %q v%d: %v", name, version, err)
	}
}

// Reconcile aligns resident state with ring ownership after a membership
// change: datasets (and their cached models) this shard no longer owns
// are evicted from memory — their snapshots stay on disk untouched, for
// the shard that owns them now or for this one if ownership returns —
// and snapshots it now owns are warm-loaded, so a rebalance costs zero
// refits. A nil filter owns everything (single-instance mode) and
// reconciling is a no-op.
func (s *Service) Reconcile(owns func(dataset string) bool) api.ReconcileStats {
	var st api.ReconcileStats
	if owns == nil {
		return st
	}
	s.mu.Lock()
	var gone []string
	resident := make(map[string]bool, len(s.datasets))
	for name := range s.datasets {
		if !owns(name) {
			delete(s.datasets, name)
			gone = append(gone, name)
			continue
		}
		resident[name] = true
	}
	s.mu.Unlock()
	for _, name := range gone {
		s.cache.purgeStale(name, 0)
		s.dropIndex(name)
		s.dropDriftStates(name)
	}
	st.DatasetsEvicted = len(gone)
	if s.store == nil {
		return st
	}
	// The snapshot decode is slow, so it runs outside the lock; the
	// resident set cannot lose entries meanwhile (evictions only happen
	// here), so the skip condition stays valid. An upload racing the
	// reconcile is resolved at insert time below — the upload wins.
	dss, models := s.store.RestoreOwned(s.opts.Workers, func(name string) bool {
		return owns(name) && !resident[name]
	})
	restored := make(map[string]uint64, len(dss))
	for _, d := range dss {
		s.mu.Lock()
		if _, ok := s.datasets[d.Name]; ok {
			s.mu.Unlock()
			continue
		}
		s.datasets[d.Name] = &datasetEntry{points: d.Points, version: d.Version}
		s.mu.Unlock()
		restored[d.Name] = d.Version
		st.DatasetsLoaded++
		s.datasetsRestored.Add(1)
	}
	for _, rm := range models {
		// Only attach models to the dataset snapshot that actually landed;
		// if a concurrent upload won the insert race, its version differs
		// and the snapshot model must not serve it.
		if v, ok := restored[rm.Key.Dataset]; !ok || v != rm.Key.Version {
			continue
		}
		if s.cache.put(s.restoredKey(rm.Key), rm.Model) {
			st.ModelsLoaded++
			s.modelsRestored.Add(1)
		}
	}
	// Index snapshots ride the same rebalance: only those matching a
	// dataset that landed in this pass are rebuilt.
	landed := dss[:0]
	for _, d := range dss {
		if v, ok := restored[d.Name]; ok && v == d.Version {
			landed = append(landed, d)
		}
	}
	s.restoreIndexes(landed, func(name string) bool {
		_, ok := restored[name]
		return ok
	})
	return st
}

// PutDataset registers (or replaces) a named dataset. The dataset is
// validated once here — NaN/Inf coordinates are rejected so a malformed
// upload cannot reach the clustering kernels — and frozen: the service
// keeps the pointer, so callers must not mutate it afterwards. Replacing
// a name purges every cached model fitted on the old points; re-uploading
// bit-identical points is a no-op that keeps the version, the cached
// models, and the snapshots (an idempotent provisioning script must not
// throw away the warm cache).
func (s *Service) PutDataset(name string, ds *geom.Dataset) (api.DatasetInfo, error) {
	if name == "" {
		return api.DatasetInfo{}, fmt.Errorf("service: empty dataset name")
	}
	if ds == nil || ds.N == 0 {
		return api.DatasetInfo{}, fmt.Errorf("service: dataset %q is empty", name)
	}
	if err := ds.Validate(); err != nil {
		return api.DatasetInfo{}, fmt.Errorf("service: dataset %q: %w", name, err)
	}
	s.mu.Lock()
	version := uint64(1)
	if old, ok := s.datasets[name]; ok {
		// Exact comparison, not a fingerprint: uploads are untrusted HTTP
		// bodies, and a 64-bit hash collision here would silently keep
		// serving the old points under the new upload. Precision is part
		// of identity — the same values re-uploaded at the other width
		// are a replacement, not a no-op (the kernels would read
		// different bytes).
		if old.points.Dim == ds.Dim &&
			slices.Equal(old.points.Coords, ds.Coords) &&
			slices.Equal(old.points.Coords32, ds.Coords32) {
			points, ver := old.points, old.version
			s.mu.Unlock()
			if s.store != nil {
				// Self-heal: if the snapshot for this version failed to
				// write earlier (or was damaged on disk since), the
				// idempotent re-upload is the retry opportunity.
				if err := s.store.EnsureDataset(name, ver, points); err != nil {
					s.persistErrors.Add(1)
					s.store.Log("service: re-persisting dataset %q v%d: %v", name, ver, err)
				}
			}
			return dsInfo(name, points), nil
		}
		version = old.version + 1
	}
	s.datasets[name] = &datasetEntry{points: ds, version: version}
	s.mu.Unlock()
	if version > 1 {
		s.cache.purgeStale(name, version)
		// The replaced points' index must never re-cut for the new name.
		s.dropIndex(name)
		// A wholesale replacement also retires the drift lineages: the old
		// model is meaningless for the new points, so the next assign fits
		// fresh instead of stale-serving it. (Appends keep their lineages —
		// that continuity is the sliding-window feature.)
		s.dropDriftStates(name)
	}
	if s.store != nil {
		// SaveDataset also drops the replaced version's snapshots — the
		// disk mirror of the purge above.
		if err := s.store.SaveDataset(name, version, ds); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting dataset %q v%d: %v", name, version, err)
		}
	}
	return dsInfo(name, ds), nil
}

// Dataset returns a registered dataset.
func (s *Service) Dataset(name string) (*geom.Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.datasets[name]
	if !ok {
		return nil, false
	}
	return e.points, true
}

// Datasets lists the registry sorted by name.
func (s *Service) Datasets() []api.DatasetInfo {
	s.mu.RLock()
	out := make([]api.DatasetInfo, 0, len(s.datasets))
	for name, e := range s.datasets {
		out = append(out, dsInfo(name, e.points))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// normalize canonicalizes request parameters for cache keying: the
// worker count is service policy (not part of model identity), and
// parameters the chosen algorithm ignores (Seed for the deterministic
// ones, Epsilon for everything but S-Approx-DPC) are zeroed so
// identical models are fitted and cached once.
func (s *Service) normalize(algorithm string, p core.Params) core.Params {
	p = core.CanonicalParams(algorithm, p)
	p.Workers = s.opts.Workers
	return p
}

// FitResult is the outcome of one fit request. IndexCut reports that
// the model was derived by re-cutting the dataset's density index
// instead of running the algorithm — byte-identical labels, a fraction
// of the cost, and no cache-miss accounting (no fit happened).
type FitResult struct {
	Model    *core.Model
	CacheHit bool
	IndexCut bool
}

// Fit returns the model for (dataset, algorithm, params), fitting it at
// most once: concurrent requests for the same key share a single
// ClusterDataset pass, later requests hit the LRU cache. algorithm is a
// paper name resolved against the full ten-algorithm registry. When the
// dataset's density index is already resident (built by an earlier
// decision-graph or sweep request, or warm-loaded from a snapshot) and
// covers the requested d_cut, a covered algorithm's model is derived by
// an index re-cut instead of a fresh fit.
func (s *Service) Fit(dataset, algorithm string, p core.Params) (FitResult, error) {
	s.fitRequests.Add(1)
	alg, ok := core.AlgorithmByName(algorithm)
	if !ok {
		return FitResult{}, fmt.Errorf("service: unknown algorithm %q", algorithm)
	}
	s.mu.RLock()
	e, ok := s.datasets[dataset]
	s.mu.RUnlock()
	if !ok {
		return FitResult{}, fmt.Errorf("service: unknown dataset %q", dataset)
	}
	p = s.normalize(algorithm, p)
	if err := p.Validate(); err != nil {
		return FitResult{}, err
	}
	key := modelKey{dataset: dataset, version: e.version, algorithm: algorithm, params: p}
	fill := func() (*core.Model, error) {
		return core.Fit(alg, e.points, p)
	}
	indexCut := false
	if densindex.Covers(algorithm) {
		if idx, ok := s.residentIndex(dataset, e.version, p.DCut); ok {
			indexCut = true
			fill = func() (*core.Model, error) {
				return s.cutModel(idx, algorithm, e.points, p)
			}
		}
	}
	model, hit, err := s.cache.getOrFit(key, !indexCut, fill)
	if err != nil {
		return FitResult{}, err
	}
	// A re-upload may have bumped the version between our registry read
	// and the cache insert; the model is still correct for this caller,
	// but its key is unreachable by future requests and would pin the
	// replaced dataset in the LRU. Sweep stale versions when detected.
	s.mu.RLock()
	cur, still := s.datasets[dataset]
	s.mu.RUnlock()
	if !still || cur.version != e.version {
		keep := uint64(0)
		if still {
			keep = cur.version
		}
		s.cache.purgeStale(dataset, keep)
	} else if s.store != nil && !hit {
		// A fresh fit on a still-current dataset version: snapshot it so
		// the next process start skips this ClusterDataset pass. Workers
		// is zeroed on disk — thread count is host policy, not identity.
		pk := persist.ModelKey{Dataset: dataset, Version: e.version, Algorithm: algorithm, Params: p}
		if err := s.store.SaveModel(pk, model); err != nil {
			s.persistErrors.Add(1)
			s.store.Log("service: persisting model %s/%s: %v", dataset, algorithm, err)
		}
	}
	return FitResult{Model: model, CacheHit: hit, IndexCut: indexCut && !hit}, nil
}

// cutModel derives a covered algorithm's model from the density index:
// one re-cut plus the kd-tree rebuild core.Restore performs. The re-cut
// Result is byte-identical to what the algorithm would compute.
func (s *Service) cutModel(idx *densindex.Index, algorithm string, ds *geom.Dataset, p core.Params) (*core.Model, error) {
	res, err := idx.Cut(p)
	if err != nil {
		return nil, err
	}
	s.indexCuts.Add(1)
	return core.Restore(algorithm, ds, res, p, res.Timing.Total())
}

// Assign labels a batch of points against the model for (dataset,
// algorithm, params), fitting it first if needed. It returns the labels
// and whether the model came from the cache. With drift enabled the
// model may be a pinned previous-version model while a background refit
// runs (see serveFit), and the batch feeds the lineage's drift tracker.
func (s *Service) Assign(dataset, algorithm string, p core.Params, pts [][]float64) ([]int32, FitResult, error) {
	fr, obs, err := s.serveFit(dataset, algorithm, p)
	if err != nil {
		return nil, FitResult{}, err
	}
	s.assignRequests.Add(1)
	labels, err := s.assignChunk(fr.Model, obs, pts)
	if err != nil {
		return nil, FitResult{}, err
	}
	return labels, fr, nil
}

// assignChunk is the labeling core shared by the batch path (one chunk =
// the whole batch) and the streaming path (one chunk per response
// record): a parallel AssignAll plus the points counter. A non-nil obs
// adds drift observation — an exact halo count off the labels, one
// O(dim) center distance every Config.SampleEvery points for the
// quantile sketch, one tracker lock per chunk — and kicks the
// background refit when this chunk trips the tracker.
func (s *Service) assignChunk(m *core.Model, obs *driftObs, pts [][]float64) ([]int32, error) {
	if obs == nil || obs.tracker == nil {
		labels, err := m.AssignAll(pts, s.opts.Workers)
		if err != nil {
			return nil, err
		}
		s.pointsAssigned.Add(int64(len(pts)))
		return labels, nil
	}
	labels, err := m.AssignAll(pts, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.pointsAssigned.Add(int64(len(pts)))
	var halo int64
	for _, l := range labels {
		if l == core.NoCluster {
			halo++
		}
	}
	stride := s.opts.Drift.SampleStride()
	samples := make([]float64, 0, len(pts)/stride+1)
	for i := 0; i < len(pts); i += stride {
		samples = append(samples, m.CenterDist(pts[i], labels[i]))
	}
	if obs.tracker.ObserveSampled(int64(len(pts)), halo, samples) {
		s.driftTrips.Add(1)
		s.kickRefit(obs.st, obs.tracker)
	}
	return labels, nil
}

// Stats returns current counters (shape: api.Stats).
func (s *Service) Stats() api.Stats {
	s.mu.RLock()
	nds := len(s.datasets)
	nf32 := 0
	for _, e := range s.datasets {
		if e.points.Float32() {
			nf32++
		}
	}
	s.mu.RUnlock()
	hits, misses, evictions, cached := s.cache.counters()
	st := api.Stats{
		Datasets:       nds,
		DatasetsF32:    nf32,
		ModelsCached:   cached,
		CacheCapacity:  s.cache.capacity,
		FitRequests:    s.fitRequests.Load(),
		CacheHits:      hits,
		CacheMisses:    misses,
		Evictions:      evictions,
		AssignRequests: s.assignRequests.Load(),
		PointsAssigned: s.pointsAssigned.Load(),

		IndexBuilds:     s.indexBuilds.Load(),
		IndexCuts:       s.indexCuts.Load(),
		IndexesRestored: int(s.indexesRestored.Load()),

		DatasetsRestored: int(s.datasetsRestored.Load()),
		ModelsRestored:   int(s.modelsRestored.Load()),
		PersistErrors:    s.persistErrors.Load(),

		DatasetsReplicated: s.datasetsReplicated.Load(),
		ModelsReplicated:   s.modelsReplicated.Load(),

		DriftTrips:       s.driftTrips.Load(),
		DriftRefits:      s.driftRefits.Load(),
		DriftStaleServes: s.driftStaleServes.Load(),
		PointsAppended:   s.pointsAppended.Load(),
		PointsExpired:    s.pointsExpired.Load(),
		IndexUpdates:     s.indexUpdates.Load(),
	}
	st.DriftScore, st.DriftModels = s.driftScore()
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st
}

// DecisionGraph computes the decision graph of a dataset at dcut from
// its density index (built on first use), returning the (rho, delta)
// pairs sorted by descending delta — density peaks first, the order an
// analyst reads to pick rho_min and delta_min. limit > 0 truncates the
// point list after sorting; N always reports the full dataset size.
func (s *Service) DecisionGraph(dataset string, dcut float64, limit int) (*api.DecisionGraphResponse, error) {
	idx, _, reused, err := s.ensureIndex(dataset, dcut)
	if err != nil {
		return nil, err
	}
	rho, delta, err := idx.Decision(dcut, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.indexCuts.Add(1)
	pts := make([]api.DecisionPoint, len(rho))
	for i := range pts {
		pts[i] = api.DecisionPoint{ID: int32(i), Rho: rho[i], Delta: delta[i]}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].Delta > pts[b].Delta })
	if limit > 0 && len(pts) > limit {
		pts = pts[:limit]
	}
	return &api.DecisionGraphResponse{
		Dataset: dataset, DCut: dcut, N: len(rho),
		IndexReused: reused, Points: pts,
	}, nil
}

// Sweep re-cuts one dataset's density index for every requested
// parameter setting: the index is built (or reused) once, each setting
// then costs an O(n log n)-ish cut instead of a fit, and nothing enters
// the model cache — a K-setting sweep must not evict K models. The
// algorithm (default "Ex-DPC") must be covered by the index; every
// result is byte-identical to fitting that algorithm at the setting.
func (s *Service) Sweep(req api.SweepRequest) (*api.SweepResponse, error) {
	algorithm := req.Algorithm
	if algorithm == "" {
		algorithm = "Ex-DPC"
	}
	if _, ok := core.AlgorithmByName(algorithm); !ok {
		return nil, fmt.Errorf("service: unknown algorithm %q", algorithm)
	}
	if !densindex.Covers(algorithm) {
		return nil, fmt.Errorf("service: algorithm %q is not covered by the density index (covered: %v)",
			algorithm, densindex.CoveredAlgorithms())
	}
	if len(req.Settings) == 0 {
		return nil, fmt.Errorf("service: sweep needs at least one parameter setting")
	}
	maxDC := 0.0
	for i, set := range req.Settings {
		if !(set.DCut > 0) {
			return nil, fmt.Errorf("service: setting %d: dcut must be positive, got %g", i, set.DCut)
		}
		if set.DCut > maxDC {
			maxDC = set.DCut
		}
	}
	// The grid is known in full, so build at exactly its maximum — the
	// interactive-nudge headroom would square the edge count for nothing.
	idx, _, reused, err := s.ensureIndexCeil(req.Dataset, maxDC, maxDC)
	if err != nil {
		return nil, err
	}
	resp := &api.SweepResponse{
		Dataset: req.Dataset, Algorithm: algorithm, N: idx.N(),
		IndexReused: reused, Results: make([]api.SweepResult, len(req.Settings)),
	}
	for i, set := range req.Settings {
		p := s.normalize(algorithm, core.Params{DCut: set.DCut, RhoMin: set.RhoMin, DeltaMin: set.DeltaMin})
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("service: setting %d: %w", i, err)
		}
		res, err := idx.Cut(p)
		if err != nil {
			return nil, fmt.Errorf("service: setting %d: %w", i, err)
		}
		s.indexCuts.Add(1)
		noise := 0
		for _, l := range res.Labels {
			if l == core.NoCluster {
				noise++
			}
		}
		r := api.SweepResult{
			Params:   wireParams(p),
			Clusters: res.NumClusters(),
			Noise:    noise,
			Centers:  append([]int32{}, res.Centers...),
		}
		if req.IncludeLabels {
			r.Labels = res.Labels
		}
		resp.Results[i] = r
	}
	return resp, nil
}

// modelKey identifies one fitted model. core.Params is a flat struct of
// scalars, so the whole key is comparable and works as a map key.
type modelKey struct {
	dataset   string
	version   uint64
	algorithm string
	params    core.Params
}

// modelCache is an LRU of fitted models with single-flight fills: a miss
// inserts an in-flight entry under the lock, then fits outside it, so
// concurrent requests for the same key block on the entry instead of
// fitting again. Failed fits are removed so the next request retries.
type modelCache struct {
	capacity int

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *cacheEntry
	entries map[modelKey]*list.Element

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheEntry struct {
	key   modelKey
	ready chan struct{} // closed once model/err are set
	model *core.Model
	err   error
}

func newModelCache(capacity int) *modelCache {
	return &modelCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[modelKey]*list.Element),
	}
}

// getOrFit returns the cached model for key, joining an in-flight fit or
// performing the fit itself when absent. hit reports whether the caller
// avoided a fresh fit (cached or joined). countMiss controls whether a
// fresh fill counts as a cache miss: true for real fits, false for
// index re-cuts, which are not fits and must not skew the hit rate the
// misses counter implies.
func (c *modelCache) getOrFit(key modelKey, countMiss bool, fit func() (*core.Model, error)) (model *core.Model, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The fit this caller joined failed; surface its error without
			// counting a hit. The owner already removed the entry, so a
			// retry starts fresh.
			return nil, false, e.err
		}
		c.hits.Add(1)
		return e.model, true, nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.ll.PushFront(e)
	c.evictLocked()
	c.mu.Unlock()
	if countMiss {
		c.misses.Add(1)
	}

	e.model, e.err = fit()
	if e.err != nil {
		c.remove(key, e)
	}
	close(e.ready)
	if e.err == nil {
		// The insert-time sweep skips in-flight entries, so the cache can
		// exceed capacity while fits run; settle it now that this entry is
		// evictable.
		c.mu.Lock()
		c.evictLocked()
		c.mu.Unlock()
	}
	return e.model, false, e.err
}

// peekReady returns the completed model for key without blocking on an
// in-flight fit and without touching the hit/miss counters (callers
// that adopt the peek account for it themselves). A successful peek
// still refreshes LRU recency.
func (c *modelCache) peekReady(key modelKey) (*core.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	select {
	case <-e.ready:
	default:
		return nil, false
	}
	if e.err != nil || e.model == nil {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return e.model, true
}

// put inserts an already-fitted model — a snapshot restore — as a
// completed entry at the front, evicting LRU overflow. It reports whether
// the key was absent. Restores neither count as hits nor misses; the
// counters keep meaning "requests served without / with a fit".
func (c *modelCache) put(key modelKey, m *core.Model) bool {
	ready := make(chan struct{})
	close(ready)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ready: ready, model: m})
	c.evictLocked()
	return true
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its capacity. In-flight entries are never evicted (their
// fitters and joiners hold references); if everything is in flight the
// cache temporarily exceeds capacity.
func (c *modelCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		evicted := false
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*cacheEntry)
			select {
			case <-e.ready:
			default:
				continue // still fitting
			}
			c.ll.Remove(el)
			delete(c.entries, e.key)
			c.evictions.Add(1)
			evicted = true
			break
		}
		if !evicted {
			return
		}
	}
}

// remove deletes key if it still maps to entry e (a purge or eviction
// may have raced ahead).
func (c *modelCache) remove(key modelKey, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
		c.ll.Remove(el)
		delete(c.entries, key)
	}
}

// purgeStale drops every entry fitted on the named dataset whose
// version differs from keepVersion (0 keeps nothing). In-flight fits
// complete for their waiters but are no longer reachable through the
// cache.
func (c *modelCache) purgeStale(name string, keepVersion uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.ll.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.key.dataset == name && e.key.version != keepVersion {
			c.ll.Remove(el)
			delete(c.entries, e.key)
		}
	}
}

func (c *modelCache) counters() (hits, misses, evictions int64, cached int) {
	c.mu.Lock()
	cached = c.ll.Len()
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), c.evictions.Load(), cached
}
