package service

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/persist"
)

func benchService(b *testing.B, opts Options) (*Service, *data.Dataset, core.Params) {
	b.Helper()
	d := data.SSet(2, 2000, 1)
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: 1}
	s := New(opts)
	if _, err := s.PutDataset("s2", d.Points); err != nil {
		b.Fatal(err)
	}
	return s, d, p
}

// BenchmarkServiceFitCached measures the hot fit path: key
// normalization, registry lookup, and an LRU hit — the per-request
// overhead every cached model pays.
func BenchmarkServiceFitCached(b *testing.B) {
	s, _, p := benchService(b, Options{Workers: 2})
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := s.Fit("s2", "Ex-DPC", p)
		if err != nil || !fr.CacheHit {
			b.Fatalf("hit=%v err=%v", fr.CacheHit, err)
		}
	}
}

// BenchmarkServiceAssignBatch measures a 256-point assign batch against
// a cached model — the steady-state serving workload.
func BenchmarkServiceAssignBatch(b *testing.B) {
	s, d, p := benchService(b, Options{Workers: 2})
	pts := d.Points.Rows()[:256]
	if _, _, err := s.Assign("s2", "Ex-DPC", p, pts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Assign("s2", "Ex-DPC", p, pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceAssignStream measures the chunked streaming path over
// the same 256 points as the batch benchmark — the per-chunk overhead
// (line parse, label record, flush) on top of the shared assign core.
func BenchmarkServiceAssignStream(b *testing.B) {
	s, d, p := benchService(b, Options{Workers: 2, StreamChunk: 64})
	pts := d.Points.Rows()[:256]
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := 0
		next := func() ([]float64, error) {
			if j == len(pts) {
				return nil, io.EOF
			}
			j++
			return pts[j-1], nil
		}
		if _, err := s.AssignStream("s2", "Ex-DPC", p, next, func([]int32) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceColdStartSnapshot measures New over a populated
// snapshot directory — the restart path persistence optimizes: decode,
// fingerprint check, and kd-tree rebuild, but no clustering.
func BenchmarkServiceColdStartSnapshot(b *testing.B) {
	dir := b.TempDir()
	quiet := func(string, ...any) {}
	store, err := persist.Open(dir, quiet)
	if err != nil {
		b.Fatal(err)
	}
	s, _, p := benchService(b, Options{Workers: 2, Store: store})
	if _, err := s.Fit("s2", "Ex-DPC", p); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store, err := persist.Open(dir, quiet)
		if err != nil {
			b.Fatal(err)
		}
		warm := New(Options{Workers: 2, Store: store})
		if warm.Stats().ModelsRestored != 1 {
			b.Fatal("snapshot restore failed")
		}
	}
}
