// Package densindex implements a parameter-flexible density index for
// density-peaks clustering, after the FINEX idea (index once, re-cut per
// parameter setting): one per-dataset structure from which density rho,
// dependent distance delta, the decision graph, and full label vectors
// for any d_cut up to a build-time ceiling are derived with zero
// distance recomputation.
//
// The structure is a CSR adjacency of every point's neighbors within
// DCutMax, each list sorted by ascending squared distance: rho at any
// d_cut <= DCutMax is a binary search (the strict count of stored
// neighbors closer than d_cut, plus self and the framework jitter), and
// delta/dep fall out of one ordered scan of the same lists, with a
// brute-force fallback only for points that are local density maxima at
// the DCutMax scale. Stored squared distances come straight out of the
// kd-tree's full dimension-order accumulation — the same float
// operations, in the same order, as the Scan kernels — so a re-cut's
// Rho/Delta/Dep (and therefore its labels) are byte-identical to a
// fresh fit of the covered algorithms.
//
// Covered algorithms: Scan, R-tree + Scan, and Ex-DPC — the framework's
// exact algorithms, which share the strict-threshold density of
// Definition 1 and the nearest-higher-density dependency of Definition
// 2. Approximate and sampling algorithms (LSH-DDP, Approx-DPC, ...)
// compute different quantities and are not reproducible from this
// index.
package densindex

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// covered is the set of algorithms whose fits an index re-cut
// reproduces byte-for-byte.
var covered = map[string]bool{
	"Scan":          true,
	"R-tree + Scan": true,
	"Ex-DPC":        true,
}

// Covers reports whether a re-cut of the index reproduces the named
// algorithm's fit exactly.
func Covers(algorithm string) bool { return covered[algorithm] }

// CoveredAlgorithms lists the covered algorithm names, sorted.
func CoveredAlgorithms() []string {
	out := make([]string, 0, len(covered))
	for name := range covered {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Index is the frozen per-dataset structure. It references the dataset
// (no copy) and is immutable after Build/FromParts — safe for
// concurrent Cut and Decision calls.
type Index struct {
	ds    *geom.Dataset
	dcMax float64

	// CSR neighbor lists: point i's neighbors strictly within dcMax are
	// ids[start[i]:start[i+1]] with squared distances sq[...], sorted by
	// (sq, id). Self is excluded; id order on equal sq keeps the layout
	// deterministic across builds.
	start []int64
	ids   []int32
	sq    []float64
}

// ErrTooDense is wrapped by Build when the neighbor lists would exceed
// the edge budget; callers retry with a smaller d_cut ceiling or give
// up.
var ErrTooDense = fmt.Errorf("densindex: neighbor lists exceed the edge budget")

// Build constructs the index with neighborhood ceiling dcMax: every
// point pair closer than dcMax is materialized once per endpoint.
// maxEdges caps the total stored entries (<= 0 means no cap) — each
// entry costs 12 bytes, and a dcMax far above the useful d_cut range
// degenerates toward n^2.
func Build(ds *geom.Dataset, dcMax float64, workers int, maxEdges int64) (*Index, error) {
	if ds == nil || ds.N == 0 {
		return nil, fmt.Errorf("densindex: empty dataset")
	}
	if !(dcMax > 0) || math.IsInf(dcMax, 1) {
		return nil, fmt.Errorf("densindex: dcut ceiling must be a positive finite number, got %g", dcMax)
	}
	n := ds.N
	tree := kdtree.BuildAll(ds)

	// Count pass: exact per-point neighbor counts size the CSR slabs, so
	// the fill pass never reallocates and the edge budget is checked
	// before the big allocation.
	workers = core.Params{Workers: workers}.WorkerCount()
	counts := make([]int64, n)
	partition.DynamicChunked(n, workers, 4, func(i int) {
		counts[i] = int64(tree.RangeCount(ds.At(i), dcMax)) - 1 // exclude self
	})
	start := make([]int64, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i]
	}
	total := start[n]
	if maxEdges > 0 && total > maxEdges {
		return nil, fmt.Errorf("%w: %d entries at dcut<=%g, budget %d — lower the requested dcut or raise the index edge budget",
			ErrTooDense, total, dcMax, maxEdges)
	}

	x := &Index{
		ds: ds, dcMax: dcMax,
		start: start,
		ids:   make([]int32, total),
		sq:    make([]float64, total),
	}
	partition.DynamicChunked(n, workers, 4, func(i int) {
		lo := start[i]
		w := lo
		tree.RangeSearch(ds.At(i), dcMax, func(id int32, d float64) {
			if int(id) == i {
				return
			}
			x.ids[w] = id
			x.sq[w] = d
			w++
		})
		x.sortRow(lo, w)
	})
	return x, nil
}

// edge pairs one CSR entry for sorting; sq values are finite and
// non-negative so a plain < comparison is a total order.
type edge struct {
	sq float64
	id int32
}

// edgeScratch recycles per-row sort buffers across the build workers.
var edgeScratch = sync.Pool{
	New: func() any { return new([]edge) },
}

// sortRow orders one CSR segment by (sq, id). The parallel id/sq pairs
// are packed into a scratch slice and sorted by a concrete-typed
// quicksort whose comparisons inline — both sort.Sort and the generic
// slices.SortFunc pay an indirect call per comparison, which over the
// index's millions of entries dominated the whole build.
func (x *Index) sortRow(lo, hi int64) {
	ids, sq := x.ids[lo:hi], x.sq[lo:hi]
	bp := edgeScratch.Get().(*[]edge)
	row := (*bp)[:0]
	for j := range ids {
		row = append(row, edge{sq: sq[j], id: ids[j]})
	}
	sortEdges(row)
	for j, e := range row {
		ids[j], sq[j] = e.id, e.sq
	}
	*bp = row
	edgeScratch.Put(bp)
}

// edgeLess is the (sq, id) total order; (sq, id) pairs are unique within
// a row, so every correct sort yields the same byte layout.
func edgeLess(a, b edge) bool {
	return a.sq < b.sq || (a.sq == b.sq && a.id < b.id)
}

// sortEdges is quicksort with median-of-three pivots and an insertion
// sort floor, recursing into the smaller half so the stack stays
// O(log n) even on adversarial rows.
func sortEdges(e []edge) {
	for len(e) > 24 {
		p := partitionEdges(e)
		if p < len(e)-p {
			sortEdges(e[:p])
			e = e[p+1:]
		} else {
			sortEdges(e[p+1:])
			e = e[:p]
		}
	}
	insertionEdges(e)
}

func insertionEdges(e []edge) {
	for i := 1; i < len(e); i++ {
		x := e[i]
		j := i - 1
		for j >= 0 && edgeLess(x, e[j]) {
			e[j+1] = e[j]
			j--
		}
		e[j+1] = x
	}
}

// partitionEdges orders e[0], e[mid], e[hi], parks the median next to
// the end as the pivot, and Hoare-scans the interior; the two outer
// elements act as sentinels so the inner loops need no bounds checks.
func partitionEdges(e []edge) int {
	hi := len(e) - 1
	m := len(e) / 2
	if edgeLess(e[m], e[0]) {
		e[0], e[m] = e[m], e[0]
	}
	if edgeLess(e[hi], e[0]) {
		e[0], e[hi] = e[hi], e[0]
	}
	if edgeLess(e[hi], e[m]) {
		e[m], e[hi] = e[hi], e[m]
	}
	e[m], e[hi-1] = e[hi-1], e[m]
	pivot := e[hi-1]
	i, j := 0, hi-1
	for {
		for i++; edgeLess(e[i], pivot); i++ {
		}
		for j--; edgeLess(pivot, e[j]); j-- {
		}
		if i >= j {
			break
		}
		e[i], e[j] = e[j], e[i]
	}
	e[i], e[hi-1] = e[hi-1], e[i]
	return i
}

// FromParts reassembles an index from persisted arrays, validating the
// invariants an untrusted snapshot could violate: monotone row offsets,
// in-range neighbor ids, and per-row squared distances ascending and
// strictly below dcMax^2. The slices are adopted, not copied.
func FromParts(ds *geom.Dataset, dcMax float64, start []int64, ids []int32, sq []float64) (*Index, error) {
	if ds == nil || ds.N == 0 {
		return nil, fmt.Errorf("densindex: empty dataset")
	}
	if !(dcMax > 0) || math.IsInf(dcMax, 1) {
		return nil, fmt.Errorf("densindex: dcut ceiling must be a positive finite number, got %g", dcMax)
	}
	n := ds.N
	if len(start) != n+1 {
		return nil, fmt.Errorf("densindex: %d row offsets for %d points", len(start), n)
	}
	if start[0] != 0 || start[n] != int64(len(ids)) || len(ids) != len(sq) {
		return nil, fmt.Errorf("densindex: offsets [%d,%d] do not frame %d ids / %d distances",
			start[0], start[n], len(ids), len(sq))
	}
	limit := dcMax * dcMax
	for i := 0; i < n; i++ {
		lo, hi := start[i], start[i+1]
		if lo > hi {
			return nil, fmt.Errorf("densindex: row %d offsets decrease (%d > %d)", i, lo, hi)
		}
		prev := -1.0
		for e := lo; e < hi; e++ {
			id, d := ids[e], sq[e]
			if id < 0 || int(id) >= n || int(id) == i {
				return nil, fmt.Errorf("densindex: row %d has neighbor id %d (n=%d)", i, id, n)
			}
			if !(d >= 0) || d >= limit { // !(d>=0) also rejects NaN
				return nil, fmt.Errorf("densindex: row %d has squared distance %g outside [0, %g)", i, d, limit)
			}
			if d < prev {
				return nil, fmt.Errorf("densindex: row %d distances not ascending", i)
			}
			prev = d
		}
	}
	return &Index{ds: ds, dcMax: dcMax, start: start, ids: ids, sq: sq}, nil
}

// DCutMax returns the neighborhood ceiling: Cut and Decision accept any
// d_cut in (0, DCutMax].
func (x *Index) DCutMax() float64 { return x.dcMax }

// Edges returns the number of stored neighbor entries.
func (x *Index) Edges() int64 { return x.start[len(x.start)-1] }

// N returns the indexed point count.
func (x *Index) N() int { return x.ds.N }

// Parts exposes the persistable arrays (ceiling, row offsets, neighbor
// ids, squared distances). Callers must not mutate them.
func (x *Index) Parts() (dcMax float64, start []int64, ids []int32, sq []float64) {
	return x.dcMax, x.start, x.ids, x.sq
}

// checkDC validates a requested cut distance against the ceiling.
func (x *Index) checkDC(dcut float64) error {
	if !(dcut > 0) || math.IsInf(dcut, 1) {
		return fmt.Errorf("densindex: dcut must be a positive finite number, got %g", dcut)
	}
	if dcut > x.dcMax {
		return fmt.Errorf("densindex: dcut %g exceeds the index ceiling %g", dcut, x.dcMax)
	}
	return nil
}

// rho computes the density vector at dcut: for each point, one binary
// search for the strict squared-distance threshold, plus self and the
// framework jitter — the exact value the Scan kernels compute from a
// full distance pass.
func (x *Index) rho(dcut float64, workers int) []float64 {
	sqCut := dcut * dcut
	out := make([]float64, x.ds.N)
	partition.DynamicChunked(x.ds.N, workers, 64, func(i int) {
		lo, hi := x.start[i], x.start[i+1]
		row := x.sq[lo:hi]
		k := sort.Search(len(row), func(e int) bool { return row[e] >= sqCut })
		// k stored neighbors strictly within dcut, +1 for the point itself
		// (the kernels' self-comparison accumulates 0 < dcut^2).
		out[i] = float64(k+1) + core.Jitter(i)
	})
	return out
}

// deltaDep derives delta and dep from a density vector. For each
// non-peak point the dependent is found in its stored list: the nearest
// stored neighbor of higher density is the true nearest higher-density
// point, because any closer higher-density point would itself be stored
// (all pairs within dcMax are). Ties on squared distance resolve to the
// earliest-in-density-order candidate, exactly like the framework's
// scanDelta; tying with an unstored point is impossible (unstored
// means >= dcMax^2, stored means < dcMax^2). Points with no stored
// higher-density neighbor — local density maxima at the dcMax scale —
// fall back to the scanDelta brute-force scan, which replicates its
// float operations verbatim.
func (x *Index) deltaDep(rho []float64, workers int) (delta []float64, dep []int32) {
	n := x.ds.N
	order := core.DensityOrder(rho, workers)
	rank := make([]int32, n)
	for r, i := range order {
		rank[i] = int32(r)
	}
	delta = make([]float64, n)
	dep = make([]int32, n)
	peak := order[0]
	delta[peak] = math.Inf(1)
	dep[peak] = core.NoDependent
	partition.DynamicChunked(n-1, workers, 8, func(k int) {
		r := k + 1
		i := order[r]
		lo, hi := x.start[i], x.start[i+1]
		myRank := rank[i]
		best := core.NoDependent
		bestSq := math.Inf(1)
		for e := lo; e < hi; e++ {
			j := x.ids[e]
			if rank[j] >= myRank {
				continue
			}
			if best == core.NoDependent {
				best, bestSq = j, x.sq[e]
				continue
			}
			if x.sq[e] != bestSq {
				break // rows are sq-ascending: no more ties possible
			}
			if rank[j] < rank[best] {
				best = j
			}
		}
		if best == core.NoDependent {
			// Local maximum at the dcMax scale: scan all higher-density
			// points the way scanDelta does. This is the only place a cut
			// touches raw coordinates.
			for _, j := range order[:r] {
				if s, ok := geom.SqDistIdxPartial(x.ds, i, j, bestSq); ok && s < bestSq {
					bestSq = s
					best = j
				}
			}
			delta[i] = math.Sqrt(bestSq)
			dep[i] = best
			return
		}
		delta[i] = math.Sqrt(bestSq)
		dep[i] = best
	})
	return delta, dep
}

// Decision computes the decision graph at dcut: per-point density and
// dependent distance, without center selection or labeling.
func (x *Index) Decision(dcut float64, workers int) (rho, delta []float64, err error) {
	if err := x.checkDC(dcut); err != nil {
		return nil, nil, err
	}
	workers = core.Params{Workers: workers}.WorkerCount()
	rho = x.rho(dcut, workers)
	delta, _ = x.deltaDep(rho, workers)
	return rho, delta, nil
}

// Cut derives the full clustering for p — Rho, Delta, Dep, Centers,
// Labels — byte-identical to a fresh fit of any covered algorithm at
// the same parameters. p.DCut must be in (0, DCutMax]; p.Workers
// follows core.Params semantics.
func (x *Index) Cut(p core.Params) (*core.Result, error) {
	if err := x.checkDC(p.DCut); err != nil {
		return nil, err
	}
	workers := p.WorkerCount()
	res := &core.Result{}
	start := time.Now()
	res.Rho = x.rho(p.DCut, workers)
	res.Timing.Rho = time.Since(start)
	start = time.Now()
	res.Delta, res.Dep = x.deltaDep(res.Rho, workers)
	res.Timing.Delta = time.Since(start)
	start = time.Now()
	core.Finalize(res, p)
	res.Timing.Label = time.Since(start)
	return res, nil
}
