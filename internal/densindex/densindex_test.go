package densindex

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

// dcGrid is the re-cut sweep used throughout: 9 cut distances spanning
// a 4x range around the S2 default (2500), all below the build ceiling.
var dcGrid = []float64{1200, 1600, 2000, 2400, 2500, 2800, 3200, 4000, 4800}

const dcCeiling = 4800

// sameBits requires exact float64 bit equality — the index's contract
// is byte-identity with a fresh fit, not approximate agreement.
func sameBits(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (bits %x), want %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func sameInt32(t *testing.T, what string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d] = %d, want %d", what, i, got[i], want[i])
		}
	}
}

// TestCutMatchesFreshFit is the core byte-identity guarantee: for every
// covered algorithm and every d_cut on the grid, a re-cut of one index
// built at the ceiling reproduces a fresh fit exactly — densities,
// dependent distances, dependent points, labels, and centers.
func TestCutMatchesFreshFit(t *testing.T) {
	d := data.SSet(2, 1500, 7)
	idx, err := Build(d.Points, dcCeiling, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range CoveredAlgorithms() {
		alg, ok := core.AlgorithmByName(name)
		if !ok {
			t.Fatalf("covered algorithm %q is unknown to core", name)
		}
		for _, dc := range dcGrid {
			t.Run(fmt.Sprintf("%s/dc=%g", name, dc), func(t *testing.T) {
				p := core.Params{DCut: dc, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 4}
				if p.DeltaMin <= p.DCut {
					p.DeltaMin = p.DCut * 3
				}
				want, err := alg.ClusterDataset(d.Points, p)
				if err != nil {
					t.Fatal(err)
				}
				got, err := idx.Cut(p)
				if err != nil {
					t.Fatal(err)
				}
				sameBits(t, "rho", got.Rho, want.Rho)
				sameBits(t, "delta", got.Delta, want.Delta)
				sameInt32(t, "dep", got.Dep, want.Dep)
				sameInt32(t, "labels", got.Labels, want.Labels)
				sameInt32(t, "centers", got.Centers, want.Centers)
			})
		}
	}
}

// TestCutSerialMatchesParallel pins the worker-count independence the
// service relies on: the same cut with 1 worker and many workers is
// bit-identical (the kernels only partition iteration, never change
// float op order within a point).
func TestCutSerialMatchesParallel(t *testing.T) {
	d := data.SSet(2, 800, 3)
	idx, err := Build(d.Points, 3000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	p1 := core.Params{DCut: 2500, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 1}
	p8 := p1
	p8.Workers = 8
	a, err := idx.Cut(p1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx.Cut(p8)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "rho", a.Rho, b.Rho)
	sameBits(t, "delta", a.Delta, b.Delta)
	sameInt32(t, "labels", a.Labels, b.Labels)
}

func TestCutRejectsBeyondCeiling(t *testing.T) {
	d := data.SSet(1, 300, 1)
	idx, err := Build(d.Points, 2000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, dc := range []float64{2000.5, math.Inf(1), math.NaN(), -1, 0} {
		p := core.Params{DCut: dc, DeltaMin: 1e9}
		if _, err := idx.Cut(p); err == nil {
			t.Errorf("Cut accepted dcut %v beyond ceiling %v", dc, idx.DCutMax())
		}
	}
	// At exactly the ceiling the cut must work.
	if _, err := idx.Cut(core.Params{DCut: 2000, DeltaMin: 1e9}); err != nil {
		t.Errorf("Cut at the exact ceiling failed: %v", err)
	}
}

func TestBuildEdgeBudget(t *testing.T) {
	d := data.SSet(4, 400, 2)
	if _, err := Build(d.Points, 1e5, 2, 50); err == nil {
		t.Fatal("Build under an absurdly small edge budget succeeded")
	} else if !errors.Is(err, ErrTooDense) {
		t.Fatalf("budget overflow error %v does not unwrap to ErrTooDense", err)
	}
}

// TestFromPartsRoundTrip rebuilds an index from its own Parts and checks
// a cut agrees bit-for-bit — the persistence warm-load path in miniature.
func TestFromPartsRoundTrip(t *testing.T) {
	d := data.SSet(2, 600, 5)
	idx, err := Build(d.Points, 3000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	dcMax, start, ids, sq := idx.Parts()
	idx2, err := FromParts(d.Points, dcMax, start, ids, sq)
	if err != nil {
		t.Fatal(err)
	}
	p := core.Params{DCut: 2500, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 2}
	a, err := idx.Cut(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := idx2.Cut(p)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "rho", a.Rho, b.Rho)
	sameBits(t, "delta", a.Delta, b.Delta)
	sameInt32(t, "labels", a.Labels, b.Labels)
}

func TestFromPartsRejectsDamage(t *testing.T) {
	d := data.SSet(1, 100, 4)
	idx, err := Build(d.Points, 5000, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	dcMax, start, ids, sq := idx.Parts()
	n := d.Points.N

	check := func(name string, mut func(start []int64, ids []int32, sq []float64)) {
		s2 := append([]int64(nil), start...)
		i2 := append([]int32(nil), ids...)
		q2 := append([]float64(nil), sq...)
		mut(s2, i2, q2)
		if _, err := FromParts(d.Points, dcMax, s2, i2, q2); err == nil {
			t.Errorf("%s: damaged parts accepted", name)
		}
	}

	check("self edge", func(_ []int64, ids []int32, _ []float64) {
		for r := 0; r < n; r++ {
			if start[r] < start[r+1] {
				ids[start[r]] = int32(r)
				return
			}
		}
		t.Skip("index has no edges")
	})
	check("id out of range", func(_ []int64, ids []int32, _ []float64) {
		if len(ids) == 0 {
			t.Skip("index has no edges")
		}
		ids[0] = int32(n)
	})
	check("descending row", func(_ []int64, _ []int32, sq []float64) {
		for r := 0; r < n; r++ {
			if start[r]+1 < start[r+1] {
				sq[start[r]] = sq[start[r]+1] + 1
				return
			}
		}
		t.Skip("no row with two edges")
	})
	check("NaN distance", func(_ []int64, _ []int32, sq []float64) {
		if len(sq) == 0 {
			t.Skip("index has no edges")
		}
		sq[0] = math.NaN()
	})
	check("distance beyond ceiling", func(_ []int64, _ []int32, sq []float64) {
		if len(sq) == 0 {
			t.Skip("index has no edges")
		}
		sq[len(sq)-1] = dcMax*dcMax + 1
	})
	check("offsets not monotone", func(start []int64, _ []int32, _ []float64) {
		start[1] = -1
	})
	if _, err := FromParts(d.Points, dcMax, start[:n], ids, sq); err == nil {
		t.Error("short offset array accepted")
	}
	_ = idx
}

// TestDecisionGolden pins the decision-graph vectors on a fixed seeded
// dataset: Decision must reproduce a fresh fit's rho/delta bit-for-bit,
// and thresholding them at the dataset defaults must recover exactly
// the centers the full clustering picks.
func TestDecisionGolden(t *testing.T) {
	d := data.SSet(2, 1200, 11)
	idx, err := Build(d.Points, 3000, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	rho, delta, err := idx.Decision(d.DCut, 4)
	if err != nil {
		t.Fatal(err)
	}
	alg, ok := core.AlgorithmByName("Ex-DPC")
	if !ok {
		t.Fatal("Ex-DPC not registered")
	}
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Workers: 4}
	want, err := alg.ClusterDataset(d.Points, p)
	if err != nil {
		t.Fatal(err)
	}
	sameBits(t, "rho", rho, want.Rho)
	sameBits(t, "delta", delta, want.Delta)

	var centers []int32
	for i := range rho {
		if rho[i] > p.RhoMin && delta[i] > p.DeltaMin {
			centers = append(centers, int32(i))
		}
	}
	sameInt32(t, "thresholded centers", centers, want.Centers)
	if len(centers) == 0 {
		t.Fatal("golden dataset yields no centers at its default thresholds")
	}
}

func TestCovers(t *testing.T) {
	for _, name := range CoveredAlgorithms() {
		if !Covers(name) {
			t.Errorf("Covers(%q) = false for a listed algorithm", name)
		}
		if _, ok := core.AlgorithmByName(name); !ok {
			t.Errorf("covered algorithm %q does not resolve in core", name)
		}
	}
	for _, name := range []string{"Approx-DPC", "S-Approx-DPC", "LSH-DDP", "CFSFDP-DE", "nope"} {
		if Covers(name) {
			t.Errorf("Covers(%q) = true for an uncovered algorithm", name)
		}
	}
}
