package densindex

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
)

// sameIndex requires bit-exact equality of two indexes' persistable
// parts — the update contract is byte-identity with a fresh build, the
// same bar the index itself holds against fresh fits.
func sameIndex(t *testing.T, got, want *Index) {
	t.Helper()
	gd, gs, gi, gq := got.Parts()
	wd, ws, wi, wq := want.Parts()
	if gd != wd {
		t.Fatalf("dcMax = %g, want %g", gd, wd)
	}
	if len(gs) != len(ws) {
		t.Fatalf("start: length %d, want %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("start[%d] = %d, want %d", i, gs[i], ws[i])
		}
	}
	sameInt32(t, "ids", gi, wi)
	sameBits(t, "sq", gq, wq)
}

// window cuts a zero-copy row window [lo, hi) out of a backing dataset,
// at the backing dataset's precision.
func window(full *geom.Dataset, lo, hi int) *geom.Dataset {
	if full.Float32() {
		return geom.NewDataset32(full.Coords32[lo*full.Dim:hi*full.Dim], full.Dim)
	}
	return geom.NewDataset(full.Coords[lo*full.Dim:hi*full.Dim], full.Dim)
}

// TestUpdateMatchesBuild slides a window over a backing dataset in
// several shapes — append only, expire only, mixed, expire-all — and
// requires Update's output to be byte-identical to a fresh Build of the
// slid window, at both storage precisions.
func TestUpdateMatchesBuild(t *testing.T) {
	const oldN = 900
	backing := data.SSet(2, 1500, 7).Points
	cases := []struct{ expired, appended int }{
		{0, 200},
		{200, 0},
		{150, 250},
		{oldN, 300}, // expire-all: nothing survives, pure rebuild of the appends
		{1, 1},
	}
	for _, f32 := range []bool{false, true} {
		full := backing
		if f32 {
			full = full.ToFloat32()
		}
		old := window(full, 0, oldN)
		oldIdx, err := Build(old, dcCeiling, 4, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range cases {
			t.Run(fmt.Sprintf("f32=%v/expire%d_append%d", f32, c.expired, c.appended), func(t *testing.T) {
				nds := window(full, c.expired, oldN+c.appended)
				got, err := Update(oldIdx, nds, c.expired, c.appended, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Build(nds, dcCeiling, 4, 0)
				if err != nil {
					t.Fatal(err)
				}
				sameIndex(t, got, want)
			})
		}
	}
}

// TestUpdateEdgeBudget requires the update to honor Build's edge budget
// with the same sentinel error.
func TestUpdateEdgeBudget(t *testing.T) {
	full := data.SSet(2, 1200, 3).Points
	old := window(full, 0, 900)
	idx, err := Build(old, dcCeiling, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	nds := window(full, 0, 1200)
	if _, err := Update(idx, nds, 0, 300, 4, 8); !errors.Is(err, ErrTooDense) {
		t.Fatalf("tiny budget: err = %v, want ErrTooDense", err)
	}
}

// TestUpdateValidation covers the shape errors: dimension mismatch,
// negative/oversized expiry, and a dataset that doesn't frame the
// mutation.
func TestUpdateValidation(t *testing.T) {
	full := data.SSet(2, 1000, 5).Points
	old := window(full, 0, 800)
	idx, err := Build(old, dcCeiling, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Update(idx, window(full, 0, 900), 0, 50, 4, 0); err == nil {
		t.Fatal("mismatched point count accepted")
	}
	if _, err := Update(idx, window(full, 0, 800), -1, 1, 4, 0); err == nil {
		t.Fatal("negative expiry accepted")
	}
	if _, err := Update(idx, window(full, 0, 800), 801, 1, 4, 0); err == nil {
		t.Fatal("expiry beyond the window accepted")
	}
	bad := geom.NewDataset(make([]float64, 800*3), 3)
	if _, err := Update(idx, bad, 0, 0, 4, 0); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Update(nil, old, 0, 0, 4, 0); err == nil {
		t.Fatal("nil index accepted")
	}
}
