package densindex

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/kdtree"
	"repro/internal/partition"
)

// Update derives the index of a slid window from the index of the
// previous one: ds must be the indexed dataset with its first expired
// rows removed and appended new rows added at the end (the service's
// sliding-window append). Surviving pairs keep their stored squared
// distances — filtered and id-shifted, never recomputed — and only
// pairs involving an appended point are searched, against a kd-tree
// over the appended rows alone. The result is byte-identical to
// Build(ds, ...) at the same ceiling: rows are (sq, id)-sorted, the
// distance kernel is deterministic per point pair, and squared
// distance is exactly symmetric per dimension, so reusing a stored
// value or its mirror cannot change a single bit.
//
// Cost is O(E) filtering plus one range query per point against the
// appended-only tree — proportional to the mutation, not the dataset,
// when appends are small. The same ErrTooDense budget applies as in
// Build.
func Update(x *Index, ds *geom.Dataset, expired, appended, workers int, maxEdges int64) (*Index, error) {
	if x == nil {
		return nil, fmt.Errorf("densindex: update of a nil index")
	}
	if ds == nil || ds.N == 0 {
		return nil, fmt.Errorf("densindex: empty dataset")
	}
	if ds.Dim != x.ds.Dim {
		return nil, fmt.Errorf("densindex: update dimension %d, index has %d", ds.Dim, x.ds.Dim)
	}
	if expired < 0 || expired > x.ds.N || appended < 0 {
		return nil, fmt.Errorf("densindex: update expiring %d of %d points, appending %d", expired, x.ds.N, appended)
	}
	base := x.ds.N - expired // surviving old points keep order at ids [0, base)
	n := ds.N
	if n != base+appended {
		return nil, fmt.Errorf("densindex: update dataset has %d points, want %d survivors + %d appended", n, base, appended)
	}
	workers = core.Params{Workers: workers}.WorkerCount()

	// fresh[i] holds point i's edges to appended points, (sq, id)-sorted,
	// from range queries against a tree over the appended ids only. The
	// tree indexes the full new dataset, so reported ids are global and
	// the accepted distances are the same full dimension-order
	// accumulations a whole-dataset build would store.
	fresh := make([][]edge, n)
	if appended > 0 {
		ids := make([]int32, appended)
		for j := range ids {
			ids[j] = int32(base + j)
		}
		tree := kdtree.Build(ds, ids)
		partition.DynamicChunked(n, workers, 4, func(i int) {
			var row []edge
			tree.RangeSearch(ds.At(i), x.dcMax, func(id int32, d float64) {
				if int(id) == i {
					return
				}
				row = append(row, edge{sq: d, id: id})
			})
			sortEdges(row)
			fresh[i] = row
		})
	}

	// inv[j] mirrors the survivor->appended edges onto the appended
	// points' rows: the reverse pair has the exact same squared distance,
	// so no second query is needed for the survivor side.
	inv := make([][]edge, appended)
	for i := 0; i < base; i++ {
		for _, e := range fresh[i] {
			j := int(e.id) - base
			inv[j] = append(inv[j], edge{sq: e.sq, id: int32(i)})
		}
	}
	partition.DynamicChunked(appended, workers, 8, func(j int) {
		sortEdges(inv[j])
	})

	// Count pass: survivors keep their old edges minus the expired ones;
	// everyone gains their fresh appended-side edges.
	counts := make([]int64, n)
	partition.DynamicChunked(n, workers, 8, func(i int) {
		if i < base {
			oi := i + expired
			kept := int64(0)
			for e := x.start[oi]; e < x.start[oi+1]; e++ {
				if int(x.ids[e]) >= expired {
					kept++
				}
			}
			counts[i] = kept + int64(len(fresh[i]))
			return
		}
		counts[i] = int64(len(inv[i-base]) + len(fresh[i]))
	})
	start := make([]int64, n+1)
	for i := 0; i < n; i++ {
		start[i+1] = start[i] + counts[i]
	}
	total := start[n]
	if maxEdges > 0 && total > maxEdges {
		return nil, fmt.Errorf("%w: %d entries at dcut<=%g after update, budget %d — lower the index ceiling or raise the edge budget",
			ErrTooDense, total, x.dcMax, maxEdges)
	}

	nx := &Index{
		ds: ds, dcMax: x.dcMax,
		start: start,
		ids:   make([]int32, total),
		sq:    make([]float64, total),
	}
	// Fill pass: merge each point's two sorted streams. Surviving edges
	// keep their relative (sq, id) order under the uniform id shift, and
	// fresh/inverted edges sit entirely in the appended/survivor id range
	// respectively, so a plain two-cursor merge lands the exact layout a
	// fresh build would sort into.
	partition.DynamicChunked(n, workers, 4, func(i int) {
		w := start[i]
		f := fresh[i]
		fi := 0
		emit := func(e edge) {
			nx.ids[w], nx.sq[w] = e.id, e.sq
			w++
		}
		merge := func(oe edge) {
			for fi < len(f) && edgeLess(f[fi], oe) {
				emit(f[fi])
				fi++
			}
			emit(oe)
		}
		if i < base {
			oi := i + expired
			for e := x.start[oi]; e < x.start[oi+1]; e++ {
				if id := x.ids[e]; int(id) >= expired {
					merge(edge{sq: x.sq[e], id: id - int32(expired)})
				}
			}
		} else {
			for _, oe := range inv[i-base] {
				merge(oe)
			}
		}
		for ; fi < len(f); fi++ {
			emit(f[fi])
		}
	})
	return nx, nil
}
