package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func randPts(rng *rand.Rand, n, d int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * scale
		}
		pts[i] = p
	}
	return pts
}

func bruteRange(pts [][]float64, q []float64, r float64) []int32 {
	var out []int32
	for i, p := range pts {
		if geom.Dist(q, p) < r {
			out = append(out, int32(i))
		}
	}
	return out
}

func bruteNN(pts [][]float64, ids []int32, q []float64) (int32, float64) {
	best, bestSq := int32(-1), math.Inf(1)
	for _, id := range ids {
		if d := geom.SqDist(q, pts[id]); d < bestSq {
			best, bestSq = id, d
		}
	}
	return best, bestSq
}

func TestBuildValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 8} {
		pts := randPts(rng, 500, d, 100)
		tr := BuildAll(geom.MustFromRows(pts))
		if tr.Len() != 500 {
			t.Fatalf("d=%d: Len = %d, want 500", d, tr.Len())
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestBuildBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPts(rng, 1<<12, 2, 100)
	tr := BuildAll(geom.MustFromRows(pts))
	// A median-split tree over 4096 points has height 13; allow slack for
	// duplicate-coordinate ties.
	if h := tr.Height(); h > 16 {
		t.Errorf("height = %d, want <= 16 for 4096 points", h)
	}
}

func TestBuildDuplicatePoints(t *testing.T) {
	// All points identical: the tree must still build, validate, and answer.
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{1, 2}
	}
	tr := BuildAll(geom.MustFromRows(pts))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeCount([]float64{1, 2}, 0.5); got != 64 {
		t.Errorf("RangeCount over duplicates = %d, want 64", got)
	}
	id, sq := tr.NN([]float64{0, 0})
	if id < 0 || sq != 5 {
		t.Errorf("NN over duplicates = (%d, %v)", id, sq)
	}
}

func TestRangeCountMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 5, 8} {
		pts := randPts(rng, 800, d, 50)
		tr := BuildAll(geom.MustFromRows(pts))
		for i := 0; i < 50; i++ {
			q := pts[rng.Intn(len(pts))]
			r := rng.Float64() * 20
			want := len(bruteRange(pts, q, r))
			if got := tr.RangeCount(q, r); got != want {
				t.Fatalf("d=%d: RangeCount(%v, %v) = %d, want %d", d, q, r, got, want)
			}
		}
	}
}

func TestRangeSearchMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 600, 3, 50)
	tr := BuildAll(geom.MustFromRows(pts))
	for i := 0; i < 40; i++ {
		q := randPts(rng, 1, 3, 50)[0]
		r := rng.Float64() * 25
		want := bruteRange(pts, q, r)
		var got []int32
		tr.RangeSearch(q, r, func(id int32, sq float64) {
			if math.Abs(sq-geom.SqDist(q, pts[id])) > 1e-9 {
				t.Fatalf("reported sqdist %v != actual %v", sq, geom.SqDist(q, pts[id]))
			}
			got = append(got, id)
		})
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(want) {
			t.Fatalf("RangeSearch size %d, want %d", len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("RangeSearch ids %v, want %v", got, want)
			}
		}
	}
}

func TestRangeStrictInequality(t *testing.T) {
	// Definition 1 counts dist < d_cut strictly: a point exactly at radius r
	// must not be counted.
	pts := [][]float64{{0, 0}, {3, 0}, {2.999, 0}}
	tr := BuildAll(geom.MustFromRows(pts))
	if got := tr.RangeCount([]float64{0, 0}, 3); got != 2 {
		t.Errorf("strict range count = %d, want 2 (self + 2.999)", got)
	}
}

func TestNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []int{1, 2, 4, 8} {
		pts := randPts(rng, 700, d, 50)
		ids := make([]int32, len(pts))
		for i := range ids {
			ids[i] = int32(i)
		}
		tr := BuildAll(geom.MustFromRows(pts))
		for i := 0; i < 60; i++ {
			q := randPts(rng, 1, d, 60)[0]
			_, wantSq := bruteNN(pts, ids, q)
			_, gotSq := tr.NN(q)
			if math.Abs(gotSq-wantSq) > 1e-9 {
				t.Fatalf("d=%d: NN sq %v, want %v", d, gotSq, wantSq)
			}
		}
	}
}

func TestNNEmpty(t *testing.T) {
	tr := New(&geom.Dataset{Dim: 2})
	if id, sq := tr.NN([]float64{0, 0}); id != -1 || !math.IsInf(sq, 1) {
		t.Errorf("NN on empty tree = (%d, %v), want (-1, +Inf)", id, sq)
	}
	if got := tr.RangeCount([]float64{0, 0}, 10); got != 0 {
		t.Errorf("RangeCount on empty tree = %d", got)
	}
}

func TestInsertIncremental(t *testing.T) {
	// The Ex-DPC pattern: query NN, then insert, repeatedly.
	rng := rand.New(rand.NewSource(6))
	pts := randPts(rng, 400, 2, 100)
	tr := New(geom.MustFromRows(pts))
	var present []int32
	for i := 0; i < len(pts); i++ {
		q := pts[i]
		wantID, wantSq := bruteNN(pts, present, q)
		gotID, gotSq := tr.NN(q)
		if wantID == -1 {
			if gotID != -1 {
				t.Fatalf("step %d: NN on empty tree returned %d", i, gotID)
			}
		} else if math.Abs(gotSq-wantSq) > 1e-9 {
			t.Fatalf("step %d: NN sq %v, want %v", i, gotSq, wantSq)
		}
		tr.Insert(int32(i))
		present = append(present, int32(i))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len after inserts = %d", tr.Len())
	}
}

func TestInsertThenRange(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randPts(rng, 300, 3, 40)
	tr := New(geom.MustFromRows(pts))
	for i := range pts {
		tr.Insert(int32(i))
	}
	for i := 0; i < 30; i++ {
		q := randPts(rng, 1, 3, 40)[0]
		r := rng.Float64() * 15
		if got, want := tr.RangeCount(q, r), len(bruteRange(pts, q, r)); got != want {
			t.Fatalf("insert-built RangeCount = %d, want %d", got, want)
		}
	}
}

func TestNNFiltered(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	tr := BuildAll(geom.MustFromRows(pts))
	q := []float64{0.4, 0}
	// Exclude the true nearest (index 0): expect index 1.
	id, sq := tr.NNFiltered(q, func(id int32) bool { return id != 0 })
	if id != 1 || math.Abs(sq-0.36) > 1e-12 {
		t.Errorf("NNFiltered = (%d, %v), want (1, 0.36)", id, sq)
	}
	// Filter everything: expect miss.
	if id, _ := tr.NNFiltered(q, func(int32) bool { return false }); id != -1 {
		t.Errorf("NNFiltered with empty filter = %d, want -1", id)
	}
}

func TestBuildSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPts(rng, 200, 2, 10)
	ids := []int32{5, 17, 99, 150, 151, 152}
	tr := Build(geom.MustFromRows(pts), append([]int32(nil), ids...))
	if tr.Len() != len(ids) {
		t.Fatalf("subset Len = %d", tr.Len())
	}
	q := []float64{5, 5}
	wantID, wantSq := bruteNN(pts, ids, q)
	gotID, gotSq := tr.NN(q)
	if gotSq != wantSq {
		t.Errorf("subset NN = (%d,%v), want (%d,%v)", gotID, gotSq, wantID, wantSq)
	}
}

func TestQuickPropertyRangeConsistency(t *testing.T) {
	// Property: for random data and queries, tree range count == brute count.
	type q struct {
		Seed int64
		R    float64
	}
	f := func(in q) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		pts := randPts(rng, 150, 2, 30)
		tr := BuildAll(geom.MustFromRows(pts))
		r := math.Mod(math.Abs(in.R), 30)
		qp := randPts(rng, 1, 2, 30)[0]
		return tr.RangeCount(qp, r) == len(bruteRange(pts, qp, r))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSelectNth(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPts(rng, 101, 1, 1000)
	tr := &Tree{ds: geom.MustFromRows(pts), dim: 1}
	ids := make([]int32, len(pts))
	for i := range ids {
		ids[i] = int32(i)
	}
	for _, n := range []int{0, 1, 50, 99, 100} {
		shuffled := append([]int32(nil), ids...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		tr.selectNth(shuffled, n, 0)
		vals := make([]float64, len(pts))
		for i, id := range shuffled {
			vals[i] = pts[id][0]
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		if vals[n] != sorted[n] {
			t.Fatalf("selectNth(%d) = %v, want %v", n, vals[n], sorted[n])
		}
	}
}

func BenchmarkRangeCount(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	pts := randPts(rng, 100000, 3, 1000)
	tr := BuildAll(geom.MustFromRows(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RangeCount(pts[i%len(pts)], 20)
	}
}

func BenchmarkNN(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pts := randPts(rng, 100000, 3, 1000)
	tr := BuildAll(geom.MustFromRows(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NN(pts[i%len(pts)])
	}
}
