package kdtree

import (
	"math"

	"repro/internal/geom"
)

// KNN returns the k nearest tree points to q as (ids, sqDists), ordered
// by ascending distance. Fewer than k results are returned when the tree
// is smaller. It is used by the FastDPeak baseline, whose local density is
// derived from the k-NN distance.
func (t *Tree) KNN(q []float64, k int) ([]int32, []float64) {
	if k <= 0 || t.root == nilNode {
		return nil, nil
	}
	h := &maxHeap{cap: k}
	t.knn(t.root, q, h)
	// Extract in ascending order.
	ids := make([]int32, len(h.items))
	sqs := make([]float64, len(h.items))
	for i := len(h.items) - 1; i >= 0; i-- {
		it := h.popMax()
		ids[i] = it.id
		sqs[i] = it.sq
	}
	return ids, sqs
}

func (t *Tree) knn(cur int32, q []float64, h *maxHeap) {
	nd := &t.nodes[cur]
	sq := geom.SqDistToIdx(t.ds, q, nd.pt)
	h.offer(nd.pt, sq)
	ax := q[nd.dim] - t.coord(nd.pt, int(nd.dim))
	near, far := nd.l, nd.r
	if ax >= 0 {
		near, far = nd.r, nd.l
	}
	if near != nilNode {
		t.knn(near, q, h)
	}
	if far != nilNode && (len(h.items) < h.cap || ax*ax < h.items[0].sq) {
		t.knn(far, q, h)
	}
}

type knnItem struct {
	sq float64
	id int32
}

// maxHeap keeps the k smallest squared distances seen, with the largest
// at the root for O(log k) replacement.
type maxHeap struct {
	items []knnItem
	cap   int
}

func (h *maxHeap) offer(id int32, sq float64) {
	if len(h.items) < h.cap {
		h.items = append(h.items, knnItem{sq: sq, id: id})
		h.siftUp(len(h.items) - 1)
		return
	}
	if sq >= h.items[0].sq {
		return
	}
	h.items[0] = knnItem{sq: sq, id: id}
	h.siftDown(0)
}

func (h *maxHeap) popMax() knnItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.siftDown(0)
	}
	return top
}

func (h *maxHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].sq >= h.items[i].sq {
			return
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *maxHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.items[l].sq > h.items[big].sq {
			big = l
		}
		if r < n && h.items[r].sq > h.items[big].sq {
			big = r
		}
		if big == i {
			return
		}
		h.items[i], h.items[big] = h.items[big], h.items[i]
		i = big
	}
}

// kthNearestSq returns the squared distance to the k-th nearest tree
// point (or +Inf when the tree has fewer than k points). Convenience for
// density-by-kNN estimators.
func (t *Tree) KthNearestSq(q []float64, k int) float64 {
	_, sqs := t.KNN(q, k)
	if len(sqs) < k {
		return math.Inf(1)
	}
	return sqs[k-1]
}
