// Package kdtree implements an in-memory kd-tree over point indices.
//
// It is the workhorse index of the paper's algorithms: Ex-DPC issues one
// circular range count per point for local densities and a nearest-neighbor
// query per point (against an incrementally grown tree) for dependent
// points; Approx-DPC issues one joint range search per grid cell and builds
// s small trees for its exact dependent-point phase.
//
// The tree stores int32 indices into a caller-owned flat geom.Dataset, so
// several trees over subsets of one dataset share the point storage, and
// construction is pure index permutation: no point is ever copied and the
// only allocations are the node arena and the id slice. Nodes live in a
// flat arena to keep pointers out of the GC's way; this matters at the
// paper's cardinalities (10^6-10^7 points).
//
// Bulk construction splits on the dimension of largest spread at each level
// (median split via in-place quickselect), yielding the O(n^{1-1/d} + k)
// range-search guarantee the paper's analysis relies on. Incremental Insert
// places new points below existing leaves, cycling the discriminator, which
// is exactly the behaviour Ex-DPC's dependent-point loop assumes.
package kdtree

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

const nilNode = int32(-1)

type node struct {
	pt   int32 // index into the dataset
	dim  int32 // splitting dimension
	l, r int32 // children, nilNode when absent
}

// Tree is a kd-tree over a subset of a dataset. The zero value is not
// usable; construct with New or Build.
type Tree struct {
	ds    *geom.Dataset
	nodes []node
	root  int32
	dim   int
}

// coord returns coordinate dim of point id straight from the flat buffer.
func (t *Tree) coord(id int32, dim int) float64 { return t.ds.Coord(id, dim) }

// New returns an empty tree over the dataset. Points are added with
// Insert.
func New(ds *geom.Dataset) *Tree {
	return &Tree{ds: ds, root: nilNode, dim: ds.Dim}
}

// Build bulk-loads a balanced tree over the given point indices.
// The ids slice is reordered in place.
func Build(ds *geom.Dataset, ids []int32) *Tree {
	if ds.N == 0 {
		panic("kdtree: Build over empty dataset")
	}
	t := &Tree{ds: ds, root: nilNode, dim: ds.Dim}
	if len(ids) == 0 {
		return t
	}
	t.nodes = make([]node, 0, len(ids))
	t.root = t.build(ids)
	return t
}

// BuildAll bulk-loads a tree over every point of the dataset.
func BuildAll(ds *geom.Dataset) *Tree {
	ids := make([]int32, ds.N)
	for i := range ids {
		ids[i] = int32(i)
	}
	return Build(ds, ids)
}

// Len returns the number of points currently in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// build constructs the subtree over ids and returns its node index.
func (t *Tree) build(ids []int32) int32 {
	if len(ids) == 0 {
		return nilNode
	}
	if len(ids) == 1 {
		t.nodes = append(t.nodes, node{pt: ids[0], dim: 0, l: nilNode, r: nilNode})
		return int32(len(t.nodes) - 1)
	}
	dim := t.widestDim(ids)
	mid := len(ids) / 2
	t.selectNth(ids, mid, dim)
	me := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{pt: ids[mid], dim: int32(dim), l: nilNode, r: nilNode})
	l := t.build(ids[:mid])
	r := t.build(ids[mid+1:])
	t.nodes[me].l = l
	t.nodes[me].r = r
	return me
}

// widestDim returns the dimension with the largest coordinate spread among
// the given points; ties resolve to the lowest dimension.
func (t *Tree) widestDim(ids []int32) int {
	lo := make([]float64, t.dim)
	hi := make([]float64, t.dim)
	for j := 0; j < t.dim; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	buf := make([]float64, t.dim)
	for _, id := range ids {
		p := t.ds.AtBuf(int(id), buf)
		for j := 0; j < t.dim; j++ {
			if p[j] < lo[j] {
				lo[j] = p[j]
			}
			if p[j] > hi[j] {
				hi[j] = p[j]
			}
		}
	}
	best, spread := 0, hi[0]-lo[0]
	for j := 1; j < t.dim; j++ {
		if s := hi[j] - lo[j]; s > spread {
			best, spread = j, s
		}
	}
	return best
}

// selectNth partially sorts ids so that ids[n] holds the element of rank n
// by coordinate dim (Hoare quickselect with median-of-three pivots).
func (t *Tree) selectNth(ids []int32, n, dim int) {
	lo, hi := 0, len(ids)-1
	for lo < hi {
		// Median-of-three pivot to dodge quadratic behaviour on sorted input.
		mid := lo + (hi-lo)/2
		a, b, c := t.coord(ids[lo], dim), t.coord(ids[mid], dim), t.coord(ids[hi], dim)
		var pi int
		switch {
		case (a <= b) == (b <= c):
			pi = mid
		case (b <= a) == (a <= c):
			pi = lo
		default:
			pi = hi
		}
		ids[pi], ids[hi] = ids[hi], ids[pi]
		pivot := t.coord(ids[hi], dim)
		i := lo
		for j := lo; j < hi; j++ {
			if t.coord(ids[j], dim) < pivot {
				ids[i], ids[j] = ids[j], ids[i]
				i++
			}
		}
		ids[i], ids[hi] = ids[hi], ids[i]
		switch {
		case n == i:
			return
		case n < i:
			hi = i - 1
		default:
			lo = i + 1
		}
	}
}

// Insert adds the dataset point with index id to the tree. Inserting the
// same index twice stores it twice; callers own deduplication.
func (t *Tree) Insert(id int32) {
	n := int32(len(t.nodes))
	if t.root == nilNode {
		t.nodes = append(t.nodes, node{pt: id, dim: 0, l: nilNode, r: nilNode})
		t.root = n
		return
	}
	cur := t.root
	for {
		nd := &t.nodes[cur]
		if t.coord(id, int(nd.dim)) < t.coord(nd.pt, int(nd.dim)) {
			if nd.l == nilNode {
				childDim := int32((int(nd.dim) + 1) % t.dim)
				t.nodes = append(t.nodes, node{pt: id, dim: childDim, l: nilNode, r: nilNode})
				t.nodes[cur].l = n
				return
			}
			cur = nd.l
		} else {
			if nd.r == nilNode {
				childDim := int32((int(nd.dim) + 1) % t.dim)
				t.nodes = append(t.nodes, node{pt: id, dim: childDim, l: nilNode, r: nilNode})
				t.nodes[cur].r = n
				return
			}
			cur = nd.r
		}
	}
}

// RangeCount returns the number of tree points with dist(q, p) < r
// (strict, matching Definition 1 of the paper).
func (t *Tree) RangeCount(q []float64, r float64) int {
	if t.root == nilNode {
		return 0
	}
	sq := r * r
	count := 0
	t.rangeWalk(t.root, q, r, sq, func(int32, float64) { count++ })
	return count
}

// RangeSearch calls fn(id, sqDist) for every tree point with
// dist(q, p) < r. The visit order is unspecified.
func (t *Tree) RangeSearch(q []float64, r float64, fn func(id int32, sqDist float64)) {
	if t.root == nilNode {
		return
	}
	t.rangeWalk(t.root, q, r, r*r, fn)
}

// rangeWalk is an explicit-stack traversal; recursion costs show up at the
// paper's dataset sizes, and an explicit stack also bounds stack growth on
// the unbalanced trees Insert can produce.
func (t *Tree) rangeWalk(root int32, q []float64, r, sq float64, fn func(int32, float64)) {
	stack := make([]int32, 0, 64)
	stack = append(stack, root)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[cur]
		if d, ok := geom.SqDistToIdxPartial(t.ds, q, nd.pt, sq); ok && d < sq {
			fn(nd.pt, d)
		}
		ax := q[nd.dim] - t.coord(nd.pt, int(nd.dim))
		if ax < 0 {
			if nd.l != nilNode {
				stack = append(stack, nd.l)
			}
			if nd.r != nilNode && ax*ax < sq {
				stack = append(stack, nd.r)
			}
		} else {
			if nd.r != nilNode {
				stack = append(stack, nd.r)
			}
			if nd.l != nilNode && ax*ax <= sq {
				stack = append(stack, nd.l)
			}
		}
	}
}

// NN returns the index of the nearest tree point to q and its squared
// distance. It returns (-1, +Inf) when the tree is empty. Points at
// distance zero (duplicates of q) are legal results; Ex-DPC queries the
// tree before inserting the query point, so self-matches cannot occur
// there.
func (t *Tree) NN(q []float64) (int32, float64) {
	best := int32(-1)
	bestSq := math.Inf(1)
	if t.root == nilNode {
		return best, bestSq
	}
	t.nn(t.root, q, &best, &bestSq)
	return best, bestSq
}

func (t *Tree) nn(cur int32, q []float64, best *int32, bestSq *float64) {
	nd := &t.nodes[cur]
	if d, ok := geom.SqDistToIdxPartial(t.ds, q, nd.pt, *bestSq); ok && d < *bestSq {
		*bestSq = d
		*best = nd.pt
	}
	ax := q[nd.dim] - t.coord(nd.pt, int(nd.dim))
	near, far := nd.l, nd.r
	if ax >= 0 {
		near, far = nd.r, nd.l
	}
	if near != nilNode {
		t.nn(near, q, best, bestSq)
	}
	if far != nilNode && ax*ax < *bestSq {
		t.nn(far, q, best, bestSq)
	}
}

// NNWithBound returns the nearest tree point to q strictly closer than
// sqrt(boundSq), with its squared distance, or (-1, boundSq) when none
// exists. Passing the best distance found so far lets multi-tree searches
// (Approx-DPC's s-subset dependent-point phase) prune most of the later
// trees instead of re-searching them from scratch.
func (t *Tree) NNWithBound(q []float64, boundSq float64) (int32, float64) {
	best := int32(-1)
	bestSq := boundSq
	if t.root != nilNode {
		t.nn(t.root, q, &best, &bestSq)
	}
	return best, bestSq
}

// NNFiltered returns the nearest tree point to q that satisfies keep, with
// its squared distance, or (-1, +Inf) when none qualifies. It is used by
// the dependent-point searches that must respect the higher-density
// constraint.
func (t *Tree) NNFiltered(q []float64, keep func(id int32) bool) (int32, float64) {
	best := int32(-1)
	bestSq := math.Inf(1)
	if t.root == nilNode {
		return best, bestSq
	}
	t.nnFiltered(t.root, q, keep, &best, &bestSq)
	return best, bestSq
}

func (t *Tree) nnFiltered(cur int32, q []float64, keep func(int32) bool, best *int32, bestSq *float64) {
	nd := &t.nodes[cur]
	if d, ok := geom.SqDistToIdxPartial(t.ds, q, nd.pt, *bestSq); ok && d < *bestSq && keep(nd.pt) {
		*bestSq = d
		*best = nd.pt
	}
	ax := q[nd.dim] - t.coord(nd.pt, int(nd.dim))
	near, far := nd.l, nd.r
	if ax >= 0 {
		near, far = nd.r, nd.l
	}
	if near != nilNode {
		t.nnFiltered(near, q, keep, best, bestSq)
	}
	if far != nilNode && ax*ax < *bestSq {
		t.nnFiltered(far, q, keep, best, bestSq)
	}
}

// Height returns the height of the tree (0 for empty, 1 for a single
// node). Exposed for balance diagnostics in tests.
func (t *Tree) Height() int {
	return t.height(t.root)
}

func (t *Tree) height(cur int32) int {
	if cur == nilNode {
		return 0
	}
	l := t.height(t.nodes[cur].l)
	r := t.height(t.nodes[cur].r)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Validate checks the kd-tree ordering invariant on every node and that the
// node count matches Len. It is meant for tests.
func (t *Tree) Validate() error {
	if t.root == nilNode {
		if len(t.nodes) != 0 {
			return fmt.Errorf("kdtree: empty root but %d nodes", len(t.nodes))
		}
		return nil
	}
	seen := 0
	var walk func(cur int32) error
	walk = func(cur int32) error {
		if cur == nilNode {
			return nil
		}
		seen++
		nd := t.nodes[cur]
		split := t.coord(nd.pt, int(nd.dim))
		var check func(c int32, left bool) error
		check = func(c int32, left bool) error {
			if c == nilNode {
				return nil
			}
			v := t.coord(t.nodes[c].pt, int(nd.dim))
			// Ties may land on either side of the median during bulk
			// construction, so the invariant is non-strict: left <= split,
			// right >= split. Search pruning only relies on this weak form.
			if left && v > split {
				return fmt.Errorf("kdtree: left descendant %d violates split on dim %d (%v > %v)", t.nodes[c].pt, nd.dim, v, split)
			}
			if !left && v < split {
				return fmt.Errorf("kdtree: right descendant %d violates split on dim %d (%v < %v)", t.nodes[c].pt, nd.dim, v, split)
			}
			if err := check(t.nodes[c].l, left); err != nil {
				return err
			}
			return check(t.nodes[c].r, left)
		}
		if err := check(nd.l, true); err != nil {
			return err
		}
		if err := check(nd.r, false); err != nil {
			return err
		}
		if err := walk(nd.l); err != nil {
			return err
		}
		return walk(nd.r)
	}
	if err := walk(t.root); err != nil {
		return err
	}
	if seen != len(t.nodes) {
		return fmt.Errorf("kdtree: reachable nodes %d != stored nodes %d", seen, len(t.nodes))
	}
	return nil
}
