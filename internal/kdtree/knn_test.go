package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func bruteKNN(pts [][]float64, q []float64, k int) []float64 {
	sqs := make([]float64, len(pts))
	for i, p := range pts {
		sqs[i] = geom.SqDist(q, p)
	}
	sort.Float64s(sqs)
	if k > len(sqs) {
		k = len(sqs)
	}
	return sqs[:k]
}

func TestKNNMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []int{1, 2, 3, 8} {
		pts := randPts(rng, 600, d, 50)
		tr := BuildAll(geom.MustFromRows(pts))
		for trial := 0; trial < 40; trial++ {
			q := randPts(rng, 1, d, 60)[0]
			k := 1 + rng.Intn(20)
			want := bruteKNN(pts, q, k)
			ids, sqs := tr.KNN(q, k)
			if len(ids) != k {
				t.Fatalf("d=%d k=%d: got %d results", d, k, len(ids))
			}
			for i := range sqs {
				if math.Abs(sqs[i]-want[i]) > 1e-9 {
					t.Fatalf("d=%d k=%d rank %d: sq %v, want %v", d, k, i, sqs[i], want[i])
				}
				if math.Abs(sqs[i]-geom.SqDist(q, pts[ids[i]])) > 1e-9 {
					t.Fatalf("reported distance does not match reported id")
				}
			}
		}
	}
}

func TestKNNOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := randPts(rng, 300, 2, 10)
	tr := BuildAll(geom.MustFromRows(pts))
	_, sqs := tr.KNN([]float64{5, 5}, 25)
	for i := 1; i < len(sqs); i++ {
		if sqs[i] < sqs[i-1] {
			t.Fatal("KNN results not in ascending order")
		}
	}
}

func TestKNNSmallTree(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}}
	tr := BuildAll(geom.MustFromRows(pts))
	ids, _ := tr.KNN([]float64{0, 0}, 10)
	if len(ids) != 2 {
		t.Fatalf("k > n: got %d results, want 2", len(ids))
	}
	if ids[0] != 0 || ids[1] != 1 {
		t.Fatalf("order wrong: %v", ids)
	}
	if ids, _ := tr.KNN([]float64{0, 0}, 0); ids != nil {
		t.Error("k=0 should return nil")
	}
	empty := New(geom.MustFromRows(pts))
	if ids, _ := empty.KNN([]float64{0, 0}, 3); ids != nil {
		t.Error("empty tree should return nil")
	}
}

func TestKthNearestSq(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	tr := BuildAll(geom.MustFromRows(pts))
	// From q=0: distances 0,1,2,3 -> squared 0,1,4,9.
	if got := tr.KthNearestSq([]float64{0}, 3); got != 4 {
		t.Errorf("KthNearestSq(3) = %v, want 4", got)
	}
	if got := tr.KthNearestSq([]float64{0}, 10); !math.IsInf(got, 1) {
		t.Errorf("k > n should be +Inf, got %v", got)
	}
}

func TestKNNOnInsertBuiltTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randPts(rng, 200, 3, 20)
	tr := New(geom.MustFromRows(pts))
	for i := range pts {
		tr.Insert(int32(i))
	}
	q := []float64{10, 10, 10}
	want := bruteKNN(pts, q, 7)
	_, sqs := tr.KNN(q, 7)
	for i := range want {
		if math.Abs(sqs[i]-want[i]) > 1e-9 {
			t.Fatalf("insert-built KNN rank %d: %v want %v", i, sqs[i], want[i])
		}
	}
}
