package lsh

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randPts(rng *rand.Rand, n, d int, scale float64) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * scale
		}
		pts[i] = p
	}
	return pts
}

func TestCandidatesNoSelfNoDup(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 500, 3, 100)
	f := Build(geom.MustFromRows(pts), Params{Tables: 5, Hashes: 2, Width: 30, Seed: 7})
	stamp := make([]int32, len(pts))
	for i := int32(0); i < 100; i++ {
		seen := map[int32]bool{}
		f.Candidates(i, stamp, i+1, func(j int32) {
			if j == i {
				t.Fatalf("self returned as candidate")
			}
			if seen[j] {
				t.Fatalf("duplicate candidate %d for point %d", j, i)
			}
			seen[j] = true
		})
	}
}

func TestClosePointsShareBuckets(t *testing.T) {
	// Two tight clusters far apart: with width ~ cluster spread, nearly all
	// intra-cluster pairs should be candidates and no inter-cluster pair
	// should dominate. LSH is probabilistic, so assert loose bounds.
	rng := rand.New(rand.NewSource(2))
	var pts [][]float64
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 50; i++ {
		pts = append(pts, []float64{1000 + rng.NormFloat64(), 1000 + rng.NormFloat64()})
	}
	f := Build(geom.MustFromRows(pts), Params{Tables: 6, Hashes: 2, Width: 20, Seed: 3})
	stamp := make([]int32, len(pts))
	intra, inter := 0, 0
	for i := int32(0); i < int32(len(pts)); i++ {
		f.Candidates(i, stamp, i+1, func(j int32) {
			if (i < 50) == (j < 50) {
				intra++
			} else {
				inter++
			}
		})
	}
	if intra == 0 {
		t.Fatal("no intra-cluster candidates at all")
	}
	if inter > intra/4 {
		t.Errorf("too many inter-cluster candidates: intra=%d inter=%d", intra, inter)
	}
}

func TestRecallWithinWidth(t *testing.T) {
	// For points within width/4 of each other, multi-table LSH should find
	// most pairs. Statistical test with a generous threshold.
	rng := rand.New(rand.NewSource(4))
	pts := randPts(rng, 400, 2, 200)
	w := 40.0
	f := Build(geom.MustFromRows(pts), DefaultParams(w/4))
	stamp := make([]int32, len(pts))
	found, total := 0, 0
	for i := int32(0); i < int32(len(pts)); i++ {
		cand := map[int32]bool{}
		f.Candidates(i, stamp, i+1, func(j int32) { cand[j] = true })
		for j := int32(0); j < int32(len(pts)); j++ {
			if j == i {
				continue
			}
			if geom.Dist(pts[i], pts[j]) < w/4 {
				total++
				if cand[j] {
					found++
				}
			}
		}
	}
	if total == 0 {
		t.Skip("no close pairs generated")
	}
	if recall := float64(found) / float64(total); recall < 0.5 {
		t.Errorf("recall of close pairs = %.2f, want >= 0.5", recall)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := randPts(rng, 200, 3, 50)
	p := Params{Tables: 3, Hashes: 2, Width: 10, Seed: 42}
	a, b := Build(geom.MustFromRows(pts), p), Build(geom.MustFromRows(pts), p)
	sa, sb := a.BucketSizes(), b.BucketSizes()
	if len(sa) != len(sb) {
		t.Fatal("bucket structure differs between identical builds")
	}
}

func TestParamCoercion(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}}
	f := Build(geom.MustFromRows(pts), Params{Tables: 0, Hashes: 0, Width: 5})
	if f.NumTables() != 1 {
		t.Errorf("Tables coerced to %d, want 1", f.NumTables())
	}
	defer func() {
		if recover() == nil {
			t.Error("zero width must panic")
		}
	}()
	Build(geom.MustFromRows(pts), Params{Tables: 1, Hashes: 1, Width: 0})
}

func TestBucketSizesSumPerTable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := randPts(rng, 300, 2, 100)
	f := Build(geom.MustFromRows(pts), Params{Tables: 3, Hashes: 1, Width: 25, Seed: 9})
	total := 0
	for _, s := range f.BucketSizes() {
		total += s
	}
	if total != 3*len(pts) {
		t.Errorf("bucket sizes sum to %d, want %d", total, 3*len(pts))
	}
}
