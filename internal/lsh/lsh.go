// Package lsh implements p-stable locality-sensitive hashing (Datar et al.,
// SoCG 2004) for Euclidean distance, the bucketing scheme used by the
// LSH-DDP baseline (Zhang et al., TKDE 2016).
//
// A single hash is h(p) = floor((a.p + b) / w) with a ~ N(0, I) and
// b ~ U[0, w). A compound hash concatenates k such values, and a table
// groups points by their compound key. LSH-DDP runs M compound tables and
// treats bucket-mates as the candidate neighborhood of each point.
package lsh

import (
	"encoding/binary"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Params configures an LSH forest.
type Params struct {
	// Tables is M, the number of compound hash tables.
	Tables int
	// Hashes is k, the number of concatenated hashes per table.
	Hashes int
	// Width is w, the quantization width. LSH-DDP ties it to d_cut so that
	// points within d_cut usually share buckets.
	Width float64
	// Seed drives the random projections.
	Seed int64
}

// DefaultParams mirrors the configuration the paper attributes to LSH-DDP:
// a handful of compound tables whose width tracks the cutoff distance.
func DefaultParams(dcut float64) Params {
	return Params{Tables: 4, Hashes: 2, Width: 4 * dcut, Seed: 1}
}

type hashFunc struct {
	a []float64
	b float64
}

type table struct {
	funcs   []hashFunc
	width   float64
	buckets map[string][]int32
	// keys remembers each point's bucket key for O(1) lookup.
	keys []string
}

// Forest is a set of M compound LSH tables over one dataset.
type Forest struct {
	params Params
	tables []table
	n      int
}

// Build hashes every point of the flat dataset into all tables.
func Build(ds *geom.Dataset, p Params) *Forest {
	if p.Tables < 1 {
		p.Tables = 1
	}
	if p.Hashes < 1 {
		p.Hashes = 1
	}
	if p.Width <= 0 {
		panic("lsh: non-positive width")
	}
	d := ds.Dim
	if ds.N == 0 {
		d = 0
	}
	rng := rand.New(rand.NewSource(p.Seed))
	f := &Forest{params: p, n: ds.N}
	f.tables = make([]table, p.Tables)
	for t := range f.tables {
		tb := &f.tables[t]
		tb.width = p.Width
		tb.funcs = make([]hashFunc, p.Hashes)
		for h := range tb.funcs {
			a := make([]float64, d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			tb.funcs[h] = hashFunc{a: a, b: rng.Float64() * p.Width}
		}
		tb.buckets = make(map[string][]int32)
		tb.keys = make([]string, ds.N)
		keyBuf := make([]byte, 8*p.Hashes)
		for i := 0; i < ds.N; i++ {
			k := tb.key(ds.At(i), keyBuf)
			tb.buckets[k] = append(tb.buckets[k], int32(i))
			tb.keys[i] = k
		}
	}
	return f
}

func (tb *table) key(p []float64, buf []byte) string {
	for h, fn := range tb.funcs {
		var dot float64
		for j, x := range p {
			dot += fn.a[j] * x
		}
		v := int64(math.Floor((dot + fn.b) / tb.width))
		binary.LittleEndian.PutUint64(buf[8*h:], uint64(v))
	}
	return string(buf)
}

// Candidates invokes fn once per distinct bucket-mate of point i across all
// tables (i itself excluded). Deduplication uses the caller-provided stamp
// slice (len n, reset implicitly via the epoch value), so repeated calls
// do not allocate; this is the hot path of LSH-DDP.
func (f *Forest) Candidates(i int32, stamp []int32, epoch int32, fn func(j int32)) {
	for t := range f.tables {
		tb := &f.tables[t]
		for _, j := range tb.buckets[tb.keys[i]] {
			if j == i || stamp[j] == epoch {
				continue
			}
			stamp[j] = epoch
			fn(j)
		}
	}
}

// BucketSizes returns the size of every bucket in every table; the paper's
// complexity expression O(M * sum b^2) is in terms of these.
func (f *Forest) BucketSizes() []int {
	var out []int
	for t := range f.tables {
		for _, b := range f.tables[t].buckets {
			out = append(out, len(b))
		}
	}
	return out
}

// NumTables returns M.
func (f *Forest) NumTables() int { return len(f.tables) }
