package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// Simd measures the two hardware-speed legs of the fit pipeline: the
// distance kernel (pre-SIMD sequential scalar vs the dispatched kernel —
// AVX2 assembly where available, the unrolled multi-accumulator Go
// fallback otherwise) across dataset dimensionalities and both storage
// precisions, and the end-to-end fit (serial vs parallel phases, SIMD
// off vs on, f64 vs f32 per Config.Precision). Labels are
// verified byte-identical across every float64 leg — the kernels share
// one accumulation order, so speed is the only thing these switches
// change — and the f32 leg reports its label agreement against f64.
// With Config.SimdJSON set, the run is also written as a
// machine-readable record (BENCH_simd_kernels.json).
func (c Config) Simd() error {
	w := c.w()
	header(w, "SIMD distance kernels and parallel fit phases")
	fmt.Fprintf(w, "simd available: %v (GOARCH %s), workers=%d\n",
		geom.SIMDEnabled(), runtime.GOARCH, c.threads())

	rec := simdRecord{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(), Threads: c.threads(),
		N: c.n(), Seed: c.Seed,
		SIMDAvailable: geom.SIMDEnabled(),
		Precision:     c.precision(),
	}

	// Kernel ns/op across the dimensionalities the serving paths see —
	// 2-d S-sets (below the 4-lane dispatch floor: the scalar path by
	// construction), the 3/4-d real stand-ins, the 8-d Sensor mixture —
	// plus wide uniform clouds (16/32/64-d) where a row spans many
	// 4-lane chunks and vectorization actually pays. Each set is timed
	// at both storage precisions: the f64 ratio is bounded by the
	// bit-identity constraint (one accumulator chain, no FMA), while the
	// f32 kernel also vectorizes the widening the scalar baseline pays
	// per element, so it is where the hardware headroom shows.
	kernelSets := []*data.Dataset{
		data.SSet(2, 2048, c.Seed),
		data.AirlineLike(2048, c.Seed),
		data.PAMAP2Like(2048, c.Seed),
		data.SensorLike(2048, c.Seed),
		wideCloud(16, 2048, c.Seed),
		wideCloud(32, 2048, c.Seed),
		wideCloud(64, 2048, c.Seed),
	}
	fmt.Fprintf(w, "%-10s %4s %5s %12s %12s %8s\n", "dataset", "dim", "prec", "scalar", "dispatched", "speedup")
	for _, d := range kernelSets {
		for _, prec := range []string{api.PrecisionF64, api.PrecisionF32} {
			ds := d.Points
			if prec == api.PrecisionF32 {
				ds = ds.ToFloat32()
			}
			kr := benchKernel(d.Name, prec, ds, c.Seed)
			rec.Kernels = append(rec.Kernels, kr)
			if kr.Speedup > rec.KernelSpeedupBest {
				rec.KernelSpeedupBest = kr.Speedup
			}
			fmt.Fprintf(w, "%-10s %4d %5s %9.2f ns %9.2f ns %7.2fx\n",
				kr.Dataset, kr.Dim, kr.Precision, kr.ScalarNsOp, kr.DispatchedNsOp, kr.Speedup)
		}
	}

	// End-to-end: one Ex-DPC fit on the 4-d PAMAP2 stand-in, the same
	// clustering four ways. Serial+scalar is the pre-PR pipeline.
	d := data.PAMAP2Like(c.n(), c.Seed)
	ds := d.Points
	if c.precision() == api.PrecisionF32 {
		ds = ds.ToFloat32()
	}
	serial := c.params(d)
	serial.Workers = 1
	parallel := c.params(d)

	prev := geom.SetSIMD(false)
	defer geom.SetSIMD(prev)
	fit := func(pts *geom.Dataset, p core.Params) (*core.Result, float64, error) {
		t0 := time.Now()
		res, err := run(core.ExDPC{}, pts, p)
		return res, secs(time.Since(t0)), err
	}
	resSerial, tSerial, err := fit(ds, serial)
	if err != nil {
		return err
	}
	resPar, tPar, err := fit(ds, parallel)
	if err != nil {
		return err
	}
	geom.SetSIMD(true)
	resSimd, tSimd, err := fit(ds, parallel)
	if err != nil {
		return err
	}
	geom.SetSIMD(false)

	rec.Fit = fitLegs{
		Algorithm: "Ex-DPC", Dataset: d.Name, Dim: ds.Dim, N: ds.N,
		SerialSec: tSerial, ParallelSec: tPar, ParallelSIMDSec: tSimd,
		ParallelSpeedup:   tSerial / tPar,
		SIMDSpeedup:       tPar / tSimd,
		LabelsSerialEqual: labelsEqual(resSerial.Labels, resPar.Labels),
		LabelsSIMDEqual:   labelsEqual(resPar.Labels, resSimd.Labels),
	}
	if !rec.Fit.LabelsSerialEqual {
		return fmt.Errorf("simd: parallel fit labels differ from serial")
	}
	if !rec.Fit.LabelsSIMDEqual {
		return fmt.Errorf("simd: SIMD fit labels differ from scalar")
	}
	fmt.Fprintf(w, "fit Ex-DPC on %s (n=%d, d=%d, %s):\n", d.Name, ds.N, ds.Dim, rec.Precision)
	fmt.Fprintf(w, "  serial, scalar:    %8.3fs\n", tSerial)
	fmt.Fprintf(w, "  parallel, scalar:  %8.3fs  (%.2fx, labels identical)\n", tPar, rec.Fit.ParallelSpeedup)
	fmt.Fprintf(w, "  parallel, simd:    %8.3fs  (%.2fx over scalar, labels identical)\n", tSimd, rec.Fit.SIMDSpeedup)

	// f32 leg: the same fit on the narrowed dataset. Labels may legally
	// differ at dc-boundary ties (a point whose distance straddles d_cut
	// after narrowing), so agreement is reported, not gated, here — the
	// tolerance gate lives in the equivalence tests.
	if c.precision() != api.PrecisionF32 {
		geom.SetSIMD(true)
		res32, t32, err := fit(ds.ToFloat32(), parallel)
		geom.SetSIMD(false)
		if err != nil {
			return err
		}
		rec.Fit.F32Sec = t32
		rec.Fit.F32LabelAgreement = labelAgreement(resSimd.Labels, res32.Labels)
		fmt.Fprintf(w, "  parallel, simd, f32: %6.3fs  (label agreement %.4f vs f64)\n",
			t32, rec.Fit.F32LabelAgreement)
	}

	if c.SimdJSON != "" {
		if err := writeSimdRecord(c.SimdJSON, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", c.SimdJSON)
	}
	return nil
}

// wideCloud is a uniform high-dimensional cloud for the kernel grid —
// kernel cost depends on row width, not cluster structure, so uniform
// coordinates are enough and keep the grid independent of the serving
// stand-ins' fixed dimensionalities.
func wideCloud(dim, n int, seed int64) *data.Dataset {
	rng := rand.New(rand.NewSource(seed ^ int64(dim)<<20))
	coords := make([]float64, n*dim)
	for i := range coords {
		coords[i] = rng.Float64() * 1e5
	}
	return &data.Dataset{
		Name:   fmt.Sprintf("Wide%d", dim),
		Points: geom.NewDataset(coords, dim),
	}
}

// benchKernel times the sequential scalar baseline against the
// dispatched kernel over a fixed random pair set. Each leg is the
// minimum of several trials — min-time is robust against preemption on
// shared hosts, where a single mean can swing 2x between runs. The legs
// call the kernels directly (no function-pointer indirection) so the
// measured gap is the kernels', not the harness's. The accumulated sum
// anchors the calls against dead-code elimination.
func benchKernel(name, precision string, ds *geom.Dataset, seed int64) kernelRecord {
	const pairs = 2048
	rng := rand.New(rand.NewSource(seed ^ 0x51d))
	pi := make([]int32, pairs)
	pj := make([]int32, pairs)
	for t := range pi {
		pi[t] = int32(rng.Intn(ds.N))
		pj[t] = int32(rng.Intn(ds.N))
	}
	const rounds = 64 // pairs*rounds evaluations per trial
	const trials = 9
	var sum float64
	best := func(leg func()) float64 {
		bestNs := math.MaxFloat64
		for k := 0; k < trials; k++ {
			t0 := time.Now()
			leg()
			if ns := float64(time.Since(t0).Nanoseconds()); ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs / float64(rounds*pairs)
	}
	prev := geom.SetSIMD(true)
	scalarNs := best(func() {
		for r := 0; r < rounds; r++ {
			for t := range pi {
				sum += geom.SqDistIdxScalar(ds, pi[t], pj[t])
			}
		}
	})
	dispNs := best(func() {
		for r := 0; r < rounds; r++ {
			for t := range pi {
				sum += geom.SqDistIdx(ds, pi[t], pj[t])
			}
		}
	})
	geom.SetSIMD(prev)
	_ = sum
	return kernelRecord{
		Dataset: name, Dim: ds.Dim, Precision: precision,
		ScalarNsOp: scalarNs, DispatchedNsOp: dispNs,
		Speedup: scalarNs / dispNs,
	}
}

func labelsEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelAgreement is the fraction of positions with equal labels.
func labelAgreement(a, b []int32) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// simdRecord is the machine-readable form of one Simd run
// (BENCH_simd_kernels.json).
type simdRecord struct {
	GoVersion         string         `json:"go_version"`
	GOOS              string         `json:"goos"`
	GOARCH            string         `json:"goarch"`
	NumCPU            int            `json:"num_cpu"`
	Threads           int            `json:"threads"`
	N                 int            `json:"n"`
	Seed              int64          `json:"seed"`
	SIMDAvailable     bool           `json:"simd_available"`
	Precision         string         `json:"precision"`
	Kernels           []kernelRecord `json:"kernels"`
	KernelSpeedupBest float64        `json:"kernel_speedup_best"`
	Fit               fitLegs        `json:"fit"`
}

type kernelRecord struct {
	Dataset        string  `json:"dataset"`
	Dim            int     `json:"dim"`
	Precision      string  `json:"precision"`
	ScalarNsOp     float64 `json:"scalar_ns_op"`
	DispatchedNsOp float64 `json:"dispatched_ns_op"`
	Speedup        float64 `json:"speedup"`
}

type fitLegs struct {
	Algorithm         string  `json:"algorithm"`
	Dataset           string  `json:"dataset"`
	Dim               int     `json:"dim"`
	N                 int     `json:"n"`
	SerialSec         float64 `json:"serial_seconds"`
	ParallelSec       float64 `json:"parallel_seconds"`
	ParallelSIMDSec   float64 `json:"parallel_simd_seconds"`
	ParallelSpeedup   float64 `json:"parallel_speedup"`
	SIMDSpeedup       float64 `json:"simd_speedup"`
	LabelsSerialEqual bool    `json:"labels_serial_vs_parallel_identical"`
	LabelsSIMDEqual   bool    `json:"labels_scalar_vs_simd_identical"`
	F32Sec            float64 `json:"f32_seconds,omitempty"`
	F32LabelAgreement float64 `json:"f32_label_agreement,omitempty"`
}

func writeSimdRecord(path string, rec simdRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return f.Close()
}
