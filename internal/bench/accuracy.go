package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

// Table2 reproduces "Rand index of LSH-DDP, Approx-DPC, and S-Approx-DPC
// on Syn with different noise rate". Ground truth is Ex-DPC at the same
// parameters; eps = 1.0 for S-Approx-DPC, as in the paper.
func (c Config) Table2() error {
	w := c.w()
	header(w, "Table 2: Rand index on Syn vs noise rate (ground truth: Ex-DPC)")
	fmt.Fprintf(w, "%-10s %10s %12s %14s\n", "Noise rate", "LSH-DDP", "Approx-DPC", "S-Approx-DPC")
	for _, rate := range []float64{0.01, 0.02, 0.04, 0.08, 0.16} {
		ds := data.Syn(2*c.n(), rate, c.Seed)
		p := c.params(ds)
		truth, err := run(core.ExDPC{}, ds.Points, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10.2f", rate)
		for _, alg := range approxAlgs() {
			res, err := run(alg, ds.Points, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", eval.RandIndex(truth.Labels, res.Labels))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table3 reproduces "Rand index on S1, S2, S3, and S4" (robustness to
// cluster overlap; 15 Gaussian clusters each).
func (c Config) Table3() error {
	w := c.w()
	header(w, "Table 3: Rand index on S1-S4 (ground truth: Ex-DPC)")
	fmt.Fprintf(w, "%-8s %10s %12s %14s\n", "Dataset", "LSH-DDP", "Approx-DPC", "S-Approx-DPC")
	for grade := 1; grade <= 4; grade++ {
		ds := data.SSet(grade, 5000, c.Seed)
		p := c.params(ds)
		truth, err := run(core.ExDPC{}, ds.Points, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-8s", ds.Name)
		for _, alg := range approxAlgs() {
			res, err := run(alg, ds.Points, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", eval.RandIndex(truth.Labels, res.Labels))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table4 reproduces "Rand index of LSH-DDP and Approx-DPC on real
// datasets" (default d_cut per dataset).
func (c Config) Table4() error {
	w := c.w()
	header(w, "Table 4: Rand index on real-dataset stand-ins (ground truth: Ex-DPC)")
	fmt.Fprintf(w, "%-12s %10s %12s\n", "Dataset", "LSH-DDP", "Approx-DPC")
	for _, ds := range c.realDatasets() {
		p := c.params(ds)
		truth, err := run(core.ExDPC{}, ds.Points, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s", ds.Name)
		for _, alg := range []core.Algorithm{core.LSHDDP{}, core.ApproxDPC{}} {
			res, err := run(alg, ds.Points, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %12.3f", eval.RandIndex(truth.Labels, res.Labels))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table5 reproduces "Running time [sec] vs accuracy (Rand index) of
// S-Approx-DPC" under an epsilon sweep on the Airline and Household
// stand-ins (12 threads in the paper; Config.Threads here).
func (c Config) Table5() error {
	w := c.w()
	header(w, "Table 5: S-Approx-DPC epsilon sweep (time [s] / Rand index)")
	dss := []*data.Dataset{data.AirlineLike(c.n(), c.Seed), data.HouseholdLike(c.n(), c.Seed)}
	fmt.Fprintf(w, "%-6s", "eps")
	for _, ds := range dss {
		fmt.Fprintf(w, " %12s-time %12s-RI", ds.Name, ds.Name)
	}
	fmt.Fprintln(w)
	truths := make([]*core.Result, len(dss))
	for i, ds := range dss {
		t, err := run(core.ExDPC{}, ds.Points, c.params(ds))
		if err != nil {
			return err
		}
		truths[i] = t
	}
	for _, eps := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		fmt.Fprintf(w, "%-6.1f", eps)
		for i, ds := range dss {
			p := c.params(ds)
			p.Epsilon = eps
			res, err := run(core.SApproxDPC{}, ds.Points, p)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %17.3f %15.3f", secs(res.Timing.Total()), eval.RandIndex(truths[i].Labels, res.Labels))
		}
		fmt.Fprintln(w)
	}
	return nil
}
