// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§6). Each exported function
// corresponds to one artifact (Table2 ... Table7, Fig1 ... Fig9), prints
// the same rows or series the paper reports, and returns any fatal error.
//
// The harness runs on synthetic stand-ins at configurable cardinality
// (Config.N); the paper's absolute numbers came from 2-5.8M-point datasets
// on a 48-thread Xeon, so only the *shape* of the results — who wins, by
// roughly what factor, where the crossovers fall — is expected to match.
// EXPERIMENTS.md records paper-vs-measured for every artifact.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// Config controls the harness.
type Config struct {
	// N is the target cardinality for the real-dataset stand-ins
	// (<= 0 means 20000). The Syn dataset uses 2N, S-sets use 5000
	// as in the original benchmark.
	N int
	// Threads is the worker count for timed runs (<= 0: GOMAXPROCS).
	Threads int
	// Seed drives all dataset generation.
	Seed int64
	// OutDir receives figure images (PPM/SVG); empty disables rendering.
	OutDir string
	// WireJSON, when non-empty, is where the wire experiment writes its
	// machine-readable BENCH_wire_protocol.json record.
	WireJSON string
	// SweepJSON, when non-empty, is where the sweep experiment writes
	// its machine-readable BENCH_param_sweep.json record.
	SweepJSON string
	// SimdJSON, when non-empty, is where the simd experiment writes its
	// machine-readable BENCH_simd_kernels.json record.
	SimdJSON string
	// DriftJSON, when non-empty, is where the drift experiment writes
	// its machine-readable BENCH_drift.json record.
	DriftJSON string
	// Precision selects the dataset storage precision for the simd
	// experiment's timed legs: api.PrecisionF32 or api.PrecisionF64
	// (empty means f64).
	Precision string
	// W receives the printed tables; nil means os.Stdout.
	W io.Writer
}

func (c Config) n() int {
	if c.N > 0 {
		return c.N
	}
	return 20000
}

func (c Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) precision() string {
	if c.Precision == api.PrecisionF32 {
		return api.PrecisionF32
	}
	return api.PrecisionF64
}

func (c Config) w() io.Writer {
	if c.W != nil {
		return c.W
	}
	return os.Stdout
}

func (c Config) outPath(name string) (string, bool) {
	if c.OutDir == "" {
		return "", false
	}
	return filepath.Join(c.OutDir, name), true
}

// realDatasets returns the four real-dataset stand-ins at the configured
// cardinality, in the paper's column order.
func (c Config) realDatasets() []*data.Dataset {
	n := c.n()
	return []*data.Dataset{
		data.AirlineLike(n, c.Seed),
		data.HouseholdLike(n, c.Seed),
		data.PAMAP2Like(n, c.Seed),
		data.SensorLike(n, c.Seed),
	}
}

// params builds core.Params from a dataset's defaults.
func (c Config) params(ds *data.Dataset) core.Params {
	return core.Params{
		DCut: ds.DCut, RhoMin: ds.RhoMin, DeltaMin: ds.DeltaMin,
		Workers: c.threads(), Epsilon: 1.0, Seed: c.Seed,
	}
}

// run executes one algorithm over a flat dataset and returns its result;
// fatal errors abort the experiment (they indicate a bug, not a
// measurement).
func run(alg core.Algorithm, ds *geom.Dataset, p core.Params) (*core.Result, error) {
	res, err := alg.ClusterDataset(ds, p)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", alg.Name(), err)
	}
	return res, nil
}

func secs(d time.Duration) float64 { return d.Seconds() }

// approxAlgs returns the three approximation algorithms compared in the
// accuracy tables, in the paper's column order.
func approxAlgs() []core.Algorithm {
	return []core.Algorithm{core.LSHDDP{}, core.ApproxDPC{}, core.SApproxDPC{}}
}

// allAlgs returns all seven algorithms in the paper's legend order.
func allAlgs() []core.Algorithm {
	return []core.Algorithm{
		core.Scan{}, core.RtreeScan{}, core.LSHDDP{}, core.CFSFDPA{},
		core.ExDPC{}, core.ApproxDPC{}, core.SApproxDPC{},
	}
}

// fastAlgs excludes the two quadratic-delta baselines (Scan, R-tree+Scan,
// CFSFDP-A); used by sweeps where quadratic baselines at full N would
// dominate harness runtime. Callers say which set they use in the output.
func fastAlgs() []core.Algorithm {
	return []core.Algorithm{core.LSHDDP{}, core.ExDPC{}, core.ApproxDPC{}, core.SApproxDPC{}}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
