package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// smallCfg keeps harness tests fast: tiny cardinality, two workers.
func smallCfg(t *testing.T, buf *bytes.Buffer) Config {
	t.Helper()
	return Config{N: 1500, Threads: 2, Seed: 1, W: buf}
}

func TestAccuracyTablesRun(t *testing.T) {
	var buf bytes.Buffer
	c := smallCfg(t, &buf)
	for _, name := range []string{"table2", "table3", "table4", "table5"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %s missing", name)
		}
		if err := e.Run(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 4", "Table 5", "S4", "Approx-DPC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Accuracy values parse as numbers in [0,1]: spot check there are
	// plenty of "0." prefixed or "1.000" cells.
	if strings.Count(out, "0.")+strings.Count(out, "1.000") < 10 {
		t.Error("accuracy tables look empty")
	}
}

func TestPerfExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("perf harness in -short mode")
	}
	var buf bytes.Buffer
	c := Config{N: 800, Threads: 2, Seed: 1, W: &buf}
	for _, name := range []string{"table6", "table7", "fig7", "fig8", "fig9"} {
		e, _ := Lookup(name)
		if err := e.Run(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table 6", "Table 7", "Figure 7", "Figure 8", "Figure 9", "Ex-DPC", "S-Approx-DPC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigureExperimentsRenderFiles(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	c := Config{N: 1200, Threads: 2, Seed: 1, W: &buf, OutDir: dir}
	for _, name := range []string{"fig1", "fig2", "fig6"} {
		e, _ := Lookup(name)
		if err := e.Run(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	wantFiles := []string{
		"fig1_decision_graph_s2.svg",
		"fig2_dpc_s2.ppm", "fig2_dbscan_s2.ppm",
		"fig6_b_exdpc.ppm", "fig6_d_approx.ppm", "fig6_f_sapprox_eps1.0.ppm",
	}
	for _, f := range wantFiles {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("missing artifact %s: %v", f, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("artifact %s is empty", f)
		}
	}
	if !strings.Contains(buf.String(), "decision graph") {
		t.Error("fig1 output missing")
	}
}

func TestRegistry(t *testing.T) {
	if len(Experiments()) != 21 {
		t.Errorf("registry has %d experiments, want 21", len(Experiments()))
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("unknown experiment found")
	}
	if len(Names()) != 21 {
		t.Error("Names() incomplete")
	}
	for _, e := range Experiments() {
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.Name)
		}
	}
}

func TestOthersAndAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation harness in -short mode")
	}
	var buf bytes.Buffer
	c := Config{N: 800, Threads: 2, Seed: 1, W: &buf}
	for _, name := range []string{"others", "abl-joint", "abl-sched", "abl-subsets"} {
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("experiment %s missing", name)
		}
		if err := e.Run(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"FastDPeak", "DPCG", "CFSFDP-DE", "joint", "LPT", "Eq.(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestServiceExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	c := smallCfg(t, &buf)
	e, ok := Lookup("service")
	if !ok {
		t.Fatal("service experiment missing")
	}
	if err := e.Run(c); err != nil {
		t.Fatalf("service: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"fit-once", "Ex-DPC", "Approx-DPC", "hit rate", "1 fit(s) performed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestWireExperimentRuns(t *testing.T) {
	var buf bytes.Buffer
	c := smallCfg(t, &buf)
	c.WireJSON = filepath.Join(t.TempDir(), "wire.json")
	e, ok := Lookup("wire")
	if !ok {
		t.Fatal("wire experiment missing")
	}
	if err := e.Run(c); err != nil {
		t.Fatalf("wire: %v", err)
	}
	out := buf.String()
	// Every leg ran, labels matched, and the machine-readable record
	// landed where WireJSON pointed.
	for _, want := range []string{
		"batch/json", "batch/frames", "stream/ndjson", "stream/frames",
		"stream/frames-f32", "relay/frames", "stream speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(c.WireJSON)
	if err != nil {
		t.Fatalf("wire record: %v", err)
	}
	for _, want := range []string{"stream_speedup_binary_vs_ndjson", "bytes_per_point", `"labels_match": true`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("wire record missing %q", want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.n() != 20000 {
		t.Errorf("default n = %d", c.n())
	}
	if c.threads() < 1 {
		t.Error("default threads < 1")
	}
	if c.w() == nil {
		t.Error("default writer nil")
	}
	if _, ok := c.outPath("x"); ok {
		t.Error("empty OutDir should disable rendering")
	}
}
