package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/service"
)

// sweepScales is the K-point d_cut grid the experiment amortizes one
// index over: scales of the dataset's default cut distance, bracketing
// it the way an interactive tuning session would. The index's build
// cost grows with the square of the grid's maximum (edge count is
// quadratic in d_cut), so the bracket stays near the default rather
// than doubling it.
var sweepScales = []float64{0.5, 0.65, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3}

// ParamSweep measures what the density index buys during parameter
// tuning: clustering one dataset at K d_cut settings as K independent
// fits (the only option before /v1/sweep) versus one POST /v1/sweep
// (one index build amortized over K re-cuts). Labels are verified
// identical per setting — the index is exact, so the speedup is free.
// With Config.SweepJSON set, the run is also written as a
// machine-readable record (BENCH_param_sweep.json).
func (c Config) ParamSweep() error {
	w := c.w()
	header(w, "Parameter sweep: K fresh fits vs one density index re-cut K times")

	d := data.SSet(2, c.n(), c.Seed)
	settings := make([]api.SweepSetting, len(sweepScales))
	for i, s := range sweepScales {
		settings[i] = api.SweepSetting{DCut: d.DCut * s, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin}
	}
	k := len(settings)
	fmt.Fprintf(w, "dataset %s (n=%d), algorithm Ex-DPC, %d settings, d_cut %g..%g, workers=%d\n",
		d.Name, d.Points.N, k, settings[0].DCut, settings[k-1].DCut, c.threads())

	// Baseline: K independent fits through the service, no index resident
	// — each setting pays a full ClusterDataset pass.
	fits := service.New(service.Options{Workers: c.threads(), CacheSize: 2 * k})
	if _, err := fits.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	baseline := make([]*core.Result, k)
	fitTimes := make([]float64, k)
	runtime.GC()
	stop := make(chan struct{})
	peakC := heapPeak(stop)
	start := time.Now()
	for i, set := range settings {
		p := core.Params{DCut: set.DCut, RhoMin: set.RhoMin, DeltaMin: set.DeltaMin, Seed: c.Seed}
		t0 := time.Now()
		fr, err := fits.Fit(d.Name, "Ex-DPC", p)
		if err != nil {
			return fmt.Errorf("sweep baseline dcut=%g: %w", set.DCut, err)
		}
		fitTimes[i] = secs(time.Since(t0))
		if fr.IndexCut || fr.CacheHit {
			return fmt.Errorf("sweep baseline dcut=%g was not a fresh fit", set.DCut)
		}
		baseline[i] = fr.Model.Result()
	}
	fitTotal := time.Since(start)
	close(stop)
	fitPeak := <-peakC

	// Sweep: a fresh service, one call, one index build.
	swp := service.New(service.Options{Workers: c.threads(), CacheSize: 2 * k})
	if _, err := swp.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	runtime.GC()
	stop = make(chan struct{})
	peakC = heapPeak(stop)
	start = time.Now()
	resp, err := swp.Sweep(api.SweepRequest{
		Dataset: d.Name, Algorithm: "Ex-DPC", Settings: settings, IncludeLabels: true,
	})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	sweepTotal := time.Since(start)
	close(stop)
	sweepPeak := <-peakC

	st := swp.Stats()
	if st.IndexBuilds != 1 || st.IndexCuts != int64(k) {
		return fmt.Errorf("sweep paid %d builds / %d cuts, want 1/%d", st.IndexBuilds, st.IndexCuts, k)
	}
	for i := range settings {
		want := baseline[i].Labels
		got := resp.Results[i].Labels
		if len(got) != len(want) {
			return fmt.Errorf("sweep dcut=%g: %d labels vs %d from the fit", settings[i].DCut, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				return fmt.Errorf("sweep dcut=%g: label %d differs (index %d, fit %d)",
					settings[i].DCut, j, got[j], want[j])
			}
		}
	}

	fmt.Fprintf(w, "%-10s %10s %9s %8s\n", "d_cut", "fit", "clusters", "noise")
	for i, set := range settings {
		fmt.Fprintf(w, "%-10g %9.3fs %9d %8d\n",
			set.DCut, fitTimes[i], resp.Results[i].Clusters, resp.Results[i].Noise)
	}
	speedup := secs(fitTotal) / secs(sweepTotal)
	fmt.Fprintf(w, "%d fresh fits:           %8.3fs  peak heap %4d MiB\n",
		k, secs(fitTotal), fitPeak>>20)
	fmt.Fprintf(w, "1 sweep (build+%d cuts): %8.3fs  peak heap %4d MiB  (%.1fx faster, labels identical)\n",
		k, secs(sweepTotal), sweepPeak>>20, speedup)
	maxFit := 0.0
	for _, ft := range fitTimes {
		if ft > maxFit {
			maxFit = ft
		}
	}
	fmt.Fprintf(w, "sweep vs one fit: %.2fx the slowest single fit (%0.3fs) buys all %d settings\n",
		secs(sweepTotal)/maxFit, maxFit, k)

	if c.SweepJSON != "" {
		rec := sweepRecord{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), Threads: c.threads(),
			N: d.Points.N, Settings: k, Seed: c.Seed,
			Algorithm:      "Ex-DPC",
			FitSeconds:     fitTimes,
			FitsTotalSec:   secs(fitTotal),
			SweepTotalSec:  secs(sweepTotal),
			FitsPeakHeap:   fitPeak,
			SweepPeakHeap:  sweepPeak,
			Speedup:        speedup,
			VsSlowedstFit:  secs(sweepTotal) / maxFit,
			LabelsVerified: true,
		}
		if err := writeSweepRecord(c.SweepJSON, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", c.SweepJSON)
	}
	return nil
}

// sweepRecord is the machine-readable form of one ParamSweep run.
type sweepRecord struct {
	GoVersion      string    `json:"go_version"`
	GOOS           string    `json:"goos"`
	GOARCH         string    `json:"goarch"`
	NumCPU         int       `json:"num_cpu"`
	Threads        int       `json:"threads"`
	N              int       `json:"n"`
	Settings       int       `json:"settings"`
	Seed           int64     `json:"seed"`
	Algorithm      string    `json:"algorithm"`
	FitSeconds     []float64 `json:"fit_seconds"`
	FitsTotalSec   float64   `json:"fits_total_seconds"`
	SweepTotalSec  float64   `json:"sweep_total_seconds"`
	FitsPeakHeap   uint64    `json:"fits_peak_heap_bytes"`
	SweepPeakHeap  uint64    `json:"sweep_peak_heap_bytes"`
	Speedup        float64   `json:"speedup_sweep_vs_fits"`
	VsSlowedstFit  float64   `json:"sweep_vs_slowest_single_fit"`
	LabelsVerified bool      `json:"labels_verified"`
}

func writeSweepRecord(path string, rec sweepRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return f.Close()
}
