package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

// Others reproduces the §6 paragraph on the competitors dropped from the
// main charts: FastDPeak and DPCG are substantially slower than Ex-DPC
// ("took 8114 and 14390 seconds on Airline"), and CFSFDP-DE's Rand index
// is far below the other approximations ("0.18 on PAMAP2").
func (c Config) Others() error {
	w := c.w()
	header(w, fmt.Sprintf("Others (§6): dropped competitors (n=%d, %d threads)", c.n(), c.threads()))
	air := data.AirlineLike(c.n(), c.Seed)
	pam := data.PAMAP2Like(c.n(), c.Seed)
	fmt.Fprintf(w, "%-12s %14s %18s\n", "Algorithm", "Airline time[s]", "PAMAP2 Rand index")
	truthPam, err := run(core.ExDPC{}, pam.Points, c.params(pam))
	if err != nil {
		return err
	}
	exAir, err := run(core.ExDPC{}, air.Points, c.params(air))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %15.3f %18.3f\n", "Ex-DPC", secs(exAir.Timing.Total()), 1.0)
	for _, alg := range []core.Algorithm{core.FastDPeak{}, core.DPCG{}, core.CFSFDPDE{}} {
		resAir, err := run(alg, air.Points, c.params(air))
		if err != nil {
			return err
		}
		resPam, err := run(alg, pam.Points, c.params(pam))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %15.3f %18.3f\n", alg.Name(),
			secs(resAir.Timing.Total()), eval.RandIndex(truthPam.Labels, resPam.Labels))
	}
	return nil
}

// AblJoint isolates the joint-range-search design choice (§4.2): the rho
// phase of Approx-DPC (one expanded search per cell) against the rho
// phase of Ex-DPC (one search per point) on every dataset. Remark 1
// predicts the joint version wins, increasingly with density.
func (c Config) AblJoint() error {
	w := c.w()
	header(w, fmt.Sprintf("Ablation: joint range search vs per-point range search (rho phase [s], n=%d)", c.n()))
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "Dataset", "per-point", "joint", "speedup")
	for _, ds := range c.realDatasets() {
		p := c.params(ds)
		ex, err := run(core.ExDPC{}, ds.Points, p)
		if err != nil {
			return err
		}
		ap, err := run(core.ApproxDPC{}, ds.Points, p)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %14.3f %14.3f %9.1fx\n", ds.Name,
			secs(ex.Timing.Rho), secs(ap.Timing.Rho),
			secs(ex.Timing.Rho)/secs(ap.Timing.Rho))
	}
	return nil
}

// AblSched isolates the cost-based LPT scheduling choice (§4.5) by
// running Approx-DPC with LPT, plain dynamic, and static scheduling.
// Labels are identical across strategies; only time may differ.
func (c Config) AblSched() error {
	w := c.w()
	header(w, fmt.Sprintf("Ablation: Approx-DPC scheduling strategy (total [s], n=%d, %d threads)", c.n(), c.threads()))
	modes := []struct {
		name string
		m    core.SchedMode
	}{
		{"LPT (paper)", core.SchedLPT},
		{"dynamic", core.SchedDynamic},
		{"static", core.SchedStatic},
	}
	fmt.Fprintf(w, "%-12s", "Dataset")
	for _, m := range modes {
		fmt.Fprintf(w, " %14s", m.name)
	}
	fmt.Fprintln(w)
	for _, ds := range c.realDatasets() {
		fmt.Fprintf(w, "%-12s", ds.Name)
		var ref []int32
		for _, m := range modes {
			res, err := run(core.ApproxDPC{Sched: m.m}, ds.Points, c.params(ds))
			if err != nil {
				return err
			}
			if ref == nil {
				ref = res.Labels
			} else if eval.RandIndex(ref, res.Labels) != 1 {
				return fmt.Errorf("scheduling changed the clustering on %s", ds.Name)
			}
			fmt.Fprintf(w, " %14.3f", secs(res.Timing.Total()))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblSubsets sweeps the number of density-sorted subsets s in Approx-DPC's
// exact dependent-point phase around the Equation (2) choice.
func (c Config) AblSubsets() error {
	w := c.w()
	header(w, fmt.Sprintf("Ablation: subset count s in exact dependent phase (delta time [s], n=%d)", c.n()))
	ds := data.AirlineLike(c.n(), c.Seed)
	p := c.params(ds)
	fmt.Fprintf(w, "%-10s %14s\n", "s", "delta [s]")
	for _, s := range []int{0, 2, 4, 8, 16, 32, 64} {
		res, err := run(core.ApproxDPC{SubsetS: s}, ds.Points, p)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%d", s)
		if s == 0 {
			label = "Eq.(2)"
		}
		fmt.Fprintf(w, "%-10s %14.3f\n", label, secs(res.Timing.Delta))
	}
	return nil
}
