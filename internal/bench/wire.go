package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/internal/data"
	"repro/internal/service"
	"repro/internal/wire"
)

// Wire compares the binary frame codec (application/x-dpc-frame) against
// the JSON/NDJSON codec on the assign hot path: the same 4M-point query
// workload is pushed through POST /v1/assign (batched at the request
// cap) and POST /v1/assign/stream in both codecs, over a real localhost
// HTTP hop with the wire bytes counted at the socket. Labels must be
// identical across every float64 leg — the codecs may only change how
// fast bits move, never what they say. A final leg streams binary
// frames through a non-owning ring shard, so the zero-copy relay is
// measured too. With Config.WireJSON set, the table is also written as
// a machine-readable record.
func (c Config) Wire() error {
	w := c.w()
	header(w, "Wire codec: binary frames vs JSON on the assign path")

	total := 4 << 20 // the e2e stream configuration
	batchSize := 1 << 20
	if n := c.n(); n < 20000 {
		// Smoke-scale invocations shrink the workload with the run.
		total, batchSize = 4*n, n
	}

	// Training matches the e2e stream configuration (s2 at 4000 points):
	// the experiment measures the wire, so the shared per-point assign
	// compute is kept at the deployment the 4M-point e2e run exercises.
	trainN := c.n()
	if trainN > 4000 {
		trainN = 4000
	}
	d := data.SSet(2, trainN, c.Seed)
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		return err
	}
	req := api.FitRequest{
		Dataset:   "wire",
		Algorithm: "Ex-DPC",
		Params:    api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}

	// One instance behind a byte-counting listener: bytes/point includes
	// everything the codec puts on the wire — HTTP framing too.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	cl := &countingListener{Listener: ln}
	// StreamChunk matches the client's 8192-point frames so one inbound
	// frame turns into one labeled record; both codecs share the server,
	// so the tuning cannot favor either.
	svc := service.New(service.Options{Workers: c.threads(), CacheSize: 8, StreamChunk: 8192})
	srv := &http.Server{Handler: service.NewHandler(svc)}
	go func() { _ = srv.Serve(cl) }()
	defer srv.Close()
	client := service.NewClient("http://"+ln.Addr().String(), service.ClientOptions{})
	if _, err := client.PutDataset("wire", "csv", csv.Bytes()); err != nil {
		return err
	}
	if _, err := client.Fit(req); err != nil {
		return err
	}

	// The query workload: training points perturbed inside the d_cut
	// ball, generated once up front so the timed legs measure the wire
	// and the assign — not the random number generator. One flat backing
	// array keeps the resident cost to coords + row headers.
	dim := d.Points.Dim
	coords := make([]float64, total*dim)
	rows := make([][]float64, total)
	rng := rand.New(rand.NewSource(c.Seed + 55))
	for i := range rows {
		row := coords[i*dim : (i+1)*dim : (i+1)*dim]
		base := d.Points.At(rng.Intn(d.Points.N))
		for j := range row {
			row[j] = base[j] + rng.NormFloat64()*d.DCut/4
		}
		rows[i] = row
	}

	// The JSON batch leg runs first and its labels are the reference;
	// every other float64 leg must reproduce them bit for bit.
	var ref []int32
	checkLabels := func(leg string, off int, labels []int32, mustMatch bool) (bool, error) {
		match := off+len(labels) <= len(ref)
		if match {
			for i, l := range labels {
				if l != ref[off+i] {
					match = false
					break
				}
			}
		}
		if mustMatch && !match {
			return false, fmt.Errorf("wire bench: %s labels diverge from the JSON batch reference at offset %d", leg, off)
		}
		return match, nil
	}

	type leg struct {
		name      string
		mustMatch bool
		f32       bool
		run       func() (int64, error) // returns points labeled
	}

	batchLeg := func(binary bool) func() (int64, error) {
		return func() (int64, error) {
			buildRef := !binary && ref == nil // the JSON leg defines the reference
			var labeled int64
			for off := 0; off < total; off += batchSize {
				pts := rows[off : off+batchSize]
				var (
					resp api.AssignResponse
					err  error
				)
				if binary {
					resp, err = client.AssignFrames(req, pts, false)
				} else {
					resp, err = client.Assign(api.AssignRequest{FitRequest: req, Points: pts})
				}
				if err != nil {
					return labeled, err
				}
				if buildRef {
					ref = append(ref, resp.Labels...)
				}
				labeled += int64(len(resp.Labels))
			}
			return labeled, nil
		}
	}
	streamLeg := func(binary, f32 bool, legName string) func() (int64, error) {
		return func() (int64, error) {
			pr, pw := io.Pipe()
			go func() {
				sent := 0
				next := func() ([]float64, error) {
					if sent == total {
						return nil, io.EOF
					}
					sent++
					return rows[sent-1], nil
				}
				if binary {
					pw.CloseWithError(wire.EncodePoints(pw, next, 0, f32))
				} else {
					pw.CloseWithError(service.EncodePoints(pw, next))
				}
			}()
			var (
				sr  *service.StreamReader
				err error
			)
			if binary {
				sr, err = client.AssignStreamFrames(req, pr)
			} else {
				sr, err = client.AssignStream(req, pr)
			}
			if err != nil {
				return 0, err
			}
			defer sr.Close()
			var labeled int64
			for {
				chunk, err := sr.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					return labeled, err
				}
				if _, err := checkLabels(legName, int(labeled), chunk, !f32); err != nil {
					return labeled, err
				}
				labeled += int64(len(chunk))
			}
			if sum, ok := sr.Summary(); !ok || !sum.CacheHit {
				return labeled, fmt.Errorf("wire bench: %s refit the model mid-run", legName)
			}
			return labeled, nil
		}
	}

	legs := []leg{
		{name: "batch/json", mustMatch: true, run: batchLeg(false)},
		{name: "batch/frames", mustMatch: true, run: batchLeg(true)},
		{name: "stream/ndjson", mustMatch: true, run: streamLeg(false, false, "stream/ndjson")},
		{name: "stream/frames", mustMatch: true, run: streamLeg(true, false, "stream/frames")},
		// float32 halves the coordinate bytes; queries are rounded to
		// float32 on the way in, so boundary points may legitimately flip.
		{name: "stream/frames-f32", f32: true, run: streamLeg(true, true, "stream/frames-f32")},
	}

	fmt.Fprintf(w, "workload: %d query points against %s (n=%d, d=%d), workers=%d, batch size %d\n",
		total, d.Name, d.Points.N, d.Points.Dim, c.threads(), batchSize)
	fmt.Fprintf(w, "%-18s %9s %12s %9s %8s %7s\n",
		"leg", "time", "pts/s", "bytes/pt", "MiB", "labels")
	results := make([]wireLeg, 0, len(legs)+1)
	for _, l := range legs {
		runtime.GC()
		inBefore, outBefore := cl.in.Load(), cl.out.Load()
		start := time.Now()
		labeled, err := l.run()
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		if labeled != int64(total) {
			return fmt.Errorf("wire bench: %s labeled %d points, want %d", l.name, labeled, total)
		}
		bytesIn, bytesOut := cl.in.Load()-inBefore, cl.out.Load()-outBefore
		match := true
		if l.name == "batch/frames" {
			// Batch legs buffer their labels; streams are checked per
			// chunk. Replay the frames batch untimed and compare all of it.
			m, err := verifyBatch(client, req, rows, batchSize, ref)
			if err != nil {
				return err
			}
			match = m
			if !match {
				return fmt.Errorf("wire bench: batch/frames labels diverge from the JSON batch reference")
			}
		}
		r := wireLeg{
			Name:         l.name,
			Points:       labeled,
			Seconds:      elapsed.Seconds(),
			PointsPerSec: float64(labeled) / elapsed.Seconds(),
			BytesIn:      bytesIn,
			BytesOut:     bytesOut,
			BytesPerPt:   float64(bytesIn+bytesOut) / float64(labeled),
			LabelsMatch:  match || l.f32,
		}
		results = append(results, r)
		labelNote := "equal"
		if l.f32 {
			labelNote = "f32"
		}
		fmt.Fprintf(w, "%-18s %8.3fs %12.0f %9.1f %8.1f %7s\n",
			r.Name, r.Seconds, r.PointsPerSec, r.BytesPerPt,
			float64(bytesIn+bytesOut)/(1<<20), labelNote)
	}

	relay, err := c.wireRelayLeg(req.Params, csv.Bytes(), rows, ref)
	if err != nil {
		return err
	}
	// The relay leg runs against a fresh ring, so its labels are checked
	// against the same reference.
	results = append(results, relay.record)
	fmt.Fprintf(w, "%-18s %8.3fs %12.0f %9s %8s %7s   (3-shard ring, non-owner entry)\n",
		relay.record.Name, relay.record.Seconds, relay.record.PointsPerSec, "-", "-", "equal")

	var streamJSONPts, streamBinPts float64
	for _, r := range results {
		switch r.Name {
		case "stream/ndjson":
			streamJSONPts = r.PointsPerSec
		case "stream/frames":
			streamBinPts = r.PointsPerSec
		}
	}
	speedup := streamBinPts / streamJSONPts
	fmt.Fprintf(w, "stream speedup, binary frames over NDJSON: %.1fx points/sec\n", speedup)

	if c.WireJSON != "" {
		rec := wireRecord{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), Threads: c.threads(),
			TrainN: d.Points.N, QueryPoints: total, BatchSize: batchSize,
			Seed: c.Seed, Legs: results, StreamSpeedup: speedup,
		}
		if err := writeWireRecord(c.WireJSON, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", c.WireJSON)
	}
	return nil
}

// verifyBatch replays the reference workload through AssignFrames and
// compares every label — the batch legs stream too many points to keep
// two copies of the responses around during the timed run.
func verifyBatch(client *service.Client, req api.FitRequest, rows [][]float64,
	batchSize int, ref []int32) (bool, error) {
	for off := 0; off < len(rows); off += batchSize {
		resp, err := client.AssignFrames(req, rows[off:off+batchSize], false)
		if err != nil {
			return false, err
		}
		for i, l := range resp.Labels {
			if l != ref[off+i] {
				return false, nil
			}
		}
	}
	return true, nil
}

type wireRelayResult struct {
	record wireLeg
}

// wireRelayLeg streams binary frames through a ring shard that does not
// own the dataset: every byte crosses client -> non-owner -> owner and
// back, with the relay forwarding frames as opaque bytes. The labels
// must still match the single-instance reference — the relay may not
// touch the payload — and the summary must report a cache hit, proving
// the forwarded stream reused the owner's fitted model.
func (c Config) wireRelayLeg(params api.Params, csv []byte,
	rows [][]float64, ref []int32) (wireRelayResult, error) {
	shards, routers, err := startRingShards(3, c.threads())
	if err != nil {
		return wireRelayResult{}, err
	}
	defer func() {
		for _, s := range shards {
			s.close()
		}
	}()
	via := 0
	for i, rt := range routers {
		if !rt.Owns("wire") {
			via = i
			break
		}
	}
	client := service.NewClient(shards[via].addr, service.ClientOptions{})
	if _, err := client.PutDataset("wire", "csv", csv); err != nil {
		return wireRelayResult{}, err
	}
	req := api.FitRequest{Dataset: "wire", Algorithm: "Ex-DPC", Params: params}
	if _, err := client.Fit(req); err != nil {
		return wireRelayResult{}, err
	}

	pr, pw := io.Pipe()
	go func() {
		sent := 0
		pw.CloseWithError(wire.EncodePoints(pw, func() ([]float64, error) {
			if sent == len(rows) {
				return nil, io.EOF
			}
			sent++
			return rows[sent-1], nil
		}, 0, false))
	}()
	start := time.Now()
	sr, err := client.AssignStreamFrames(req, pr)
	if err != nil {
		return wireRelayResult{}, err
	}
	defer sr.Close()
	var labeled int64
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return wireRelayResult{}, fmt.Errorf("wire bench: relay stream: %w", err)
		}
		for i, l := range chunk {
			if l != ref[int(labeled)+i] {
				return wireRelayResult{}, fmt.Errorf("wire bench: relay labels diverge from the reference at offset %d", int(labeled)+i)
			}
		}
		labeled += int64(len(chunk))
	}
	elapsed := time.Since(start)
	sum, ok := sr.Summary()
	if !ok || !sum.CacheHit {
		return wireRelayResult{}, fmt.Errorf("wire bench: relay stream refit the model")
	}
	if labeled != int64(len(rows)) {
		return wireRelayResult{}, fmt.Errorf("wire bench: relay stream labeled %d points, want %d", labeled, len(rows))
	}
	return wireRelayResult{record: wireLeg{
		Name:         "relay/frames",
		Points:       labeled,
		Seconds:      elapsed.Seconds(),
		PointsPerSec: float64(labeled) / elapsed.Seconds(),
		LabelsMatch:  true,
	}}, nil
}

// startRingShards is startShards for ring mode when the caller needs the
// router handles (ownership queries) too.
func startRingShards(n, workersTotal int) ([]*inprocShard, []*service.Router, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		listeners[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	perShard := workersTotal / n
	if perShard < 1 {
		perShard = 1
	}
	shards := make([]*inprocShard, n)
	routers := make([]*service.Router, n)
	for i := range shards {
		svc := service.New(service.Options{Workers: perShard, CacheSize: 16, StreamChunk: 8192})
		rt, err := service.NewRouter(svc, addrs[i], addrs, service.RouterOptions{Vnodes: 128})
		if err != nil {
			return nil, nil, err
		}
		routers[i] = rt
		srv := &http.Server{Handler: rt.Handler()}
		shards[i] = &inprocShard{addr: addrs[i], srv: srv}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(srv, listeners[i])
	}
	return shards, routers, nil
}

// wireLeg is one measured transport x codec combination.
type wireLeg struct {
	Name         string  `json:"name"`
	Points       int64   `json:"points"`
	Seconds      float64 `json:"seconds"`
	PointsPerSec float64 `json:"points_per_sec"`
	BytesIn      int64   `json:"bytes_in,omitempty"`
	BytesOut     int64   `json:"bytes_out,omitempty"`
	BytesPerPt   float64 `json:"bytes_per_point,omitempty"`
	LabelsMatch  bool    `json:"labels_match"`
}

// wireRecord is the committed BENCH_wire_protocol.json shape.
type wireRecord struct {
	GoVersion     string    `json:"go_version"`
	GOOS          string    `json:"goos"`
	GOARCH        string    `json:"goarch"`
	NumCPU        int       `json:"num_cpu"`
	Threads       int       `json:"threads"`
	TrainN        int       `json:"train_n"`
	QueryPoints   int       `json:"query_points"`
	BatchSize     int       `json:"batch_size"`
	Seed          int64     `json:"seed"`
	Legs          []wireLeg `json:"legs"`
	StreamSpeedup float64   `json:"stream_speedup_binary_vs_ndjson"`
}

func writeWireRecord(path string, rec wireRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return f.Close()
}

// countingListener wraps every accepted connection so reads (client ->
// server) and writes (server -> client) are tallied at the socket: the
// honest wire size of a codec, HTTP chunking included.
type countingListener struct {
	net.Listener
	in, out atomic.Int64
}

func (l *countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: c, in: &l.in, out: &l.out}, nil
}

type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}
