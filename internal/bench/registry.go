package bench

import (
	"sort"
)

// Experiment names one regenerable artifact of the paper.
type Experiment struct {
	Name  string
	Title string
	Run   func(Config) error
}

// Experiments returns the registry of all regenerable tables and figures
// in presentation order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "Decision graph of S2", Config.Fig1},
		{"fig2", "DPC vs DBSCAN quality on S2", Config.Fig2},
		{"table2", "Rand index vs noise rate on Syn", Config.Table2},
		{"table3", "Rand index on S1-S4", Config.Table3},
		{"table4", "Rand index on real-dataset stand-ins", Config.Table4},
		{"table5", "S-Approx-DPC epsilon sweep", Config.Table5},
		{"fig6", "2-D visualization on Syn", Config.Fig6},
		{"fig7", "Running time vs sampling rate", Config.Fig7},
		{"fig8", "Running time vs d_cut", Config.Fig8},
		{"fig9", "Running time vs threads", Config.Fig9},
		{"table6", "Decomposed rho/delta time", Config.Table6},
		{"table7", "Memory usage", Config.Table7},
		{"others", "Dropped competitors (FastDPeak, DPCG, CFSFDP-DE)", Config.Others},
		{"abl-joint", "Ablation: joint vs per-point range search", Config.AblJoint},
		{"abl-sched", "Ablation: scheduling strategies", Config.AblSched},
		{"abl-subsets", "Ablation: subset count s", Config.AblSubsets},
		{"service", "Fit-once/assign-many serving latency and cache hit rate", Config.Service},
		{"wire", "Binary frame codec vs JSON on the assign wire path", Config.Wire},
		{"sweep", "Parameter sweep: one density index vs K fresh fits", Config.ParamSweep},
		{"simd", "SIMD kernel vs scalar and parallel vs serial fit", Config.Simd},
		{"drift", "Drift-tracking assign overhead and background refit swap", Config.Drift},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names returns the sorted experiment names, for usage messages.
func Names() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
