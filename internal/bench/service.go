package bench

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/api"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/persist"
	"repro/internal/service"
)

// Service measures the fit-once/assign-many serving layer behind dpcd:
// cold fit latency vs cached fit latency vs batched assign latency per
// algorithm, then a concurrent burst that reports the model cache hit
// rate and single-flight dedup. This is the serving-side counterpart of
// Table 6 — it shows how much of the per-request cost the model cache
// removes once the density/dependency computation is paid once.
func (c Config) Service() error {
	w := c.w()
	header(w, "Serving: fit-once vs assign-many (dpcd service layer)")

	d := data.SSet(2, c.n(), c.Seed)
	svc := service.New(service.Options{Workers: c.threads(), CacheSize: 8})
	if _, err := svc.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: c.Seed}

	// Query batch: training points perturbed inside the d_cut ball, the
	// stream-assign workload shape.
	rng := rand.New(rand.NewSource(c.Seed + 77))
	batch := make([][]float64, 10000)
	for i := range batch {
		base := d.Points.At(rng.Intn(d.Points.N))
		q := make([]float64, len(base))
		for j := range q {
			q[j] = base[j] + rng.NormFloat64()*d.DCut/4
		}
		batch[i] = q
	}

	fmt.Fprintf(w, "dataset %s (n=%d, d=%d), workers=%d, assign batch=%d\n",
		d.Name, d.Points.N, d.Points.Dim, c.threads(), len(batch))
	fmt.Fprintf(w, "%-14s %12s %12s %14s %12s %10s\n",
		"algorithm", "fit cold", "fit cached", "assign batch", "per point", "fit/assign")
	for _, name := range []string{"Ex-DPC", "Approx-DPC", "S-Approx-DPC"} {
		start := time.Now()
		if _, err := svc.Fit(d.Name, name, p); err != nil {
			return fmt.Errorf("service: %s: %w", name, err)
		}
		cold := time.Since(start)

		start = time.Now()
		fr, err := svc.Fit(d.Name, name, p)
		if err != nil {
			return err
		}
		cached := time.Since(start)
		if !fr.CacheHit {
			return fmt.Errorf("service: %s: second fit missed the cache", name)
		}

		start = time.Now()
		if _, _, err := svc.Assign(d.Name, name, p, batch); err != nil {
			return err
		}
		assign := time.Since(start)
		fmt.Fprintf(w, "%-14s %11.3fs %11.6fs %13.4fs %11.2fus %9.0fx\n",
			name, secs(cold), secs(cached), secs(assign),
			float64(assign.Microseconds())/float64(len(batch)),
			secs(cold)/secs(assign))
	}

	// Concurrent burst on one uncached key: single-flight must collapse
	// the fits to one ClusterDataset pass.
	before := svc.Stats()
	pb := p
	pb.DCut *= 1.25 // new key, not yet cached
	const clients = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := svc.Assign(d.Name, "Approx-DPC", pb, batch[:1000]); err != nil {
				panic(err) // harness bug, not a measurement
			}
		}()
	}
	wg.Wait()
	burst := time.Since(start)
	st := svc.Stats()
	fmt.Fprintf(w, "burst: %d concurrent assign clients on one cold model in %.3fs: %d fit(s) performed, %d joined/cached\n",
		clients, secs(burst), st.CacheMisses-before.CacheMisses, st.CacheHits-before.CacheHits)
	fmt.Fprintf(w, "cache: %d hits / %d misses, hit rate %.2f, %d models resident\n",
		st.CacheHits, st.CacheMisses, st.HitRate, st.ModelsCached)

	// Cold start: a dpcd restart with -data-dir warm-loads snapshots and
	// rebuilds only the kd-trees, versus refitting every model from the
	// raw points. The ratio is what persistence buys on the restart path.
	dir, err := os.MkdirTemp("", "dpcd-bench-snap-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	quiet := func(string, ...any) {}
	store, err := persist.Open(dir, quiet)
	if err != nil {
		return err
	}
	algs := []string{"Ex-DPC", "Approx-DPC", "S-Approx-DPC"}
	writer := service.New(service.Options{Workers: c.threads(), CacheSize: 8, Store: store})
	if _, err := writer.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	for _, name := range algs {
		if _, err := writer.Fit(d.Name, name, p); err != nil {
			return err
		}
	}

	start = time.Now()
	refit := service.New(service.Options{Workers: c.threads(), CacheSize: 8})
	if _, err := refit.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	for _, name := range algs {
		if _, err := refit.Fit(d.Name, name, p); err != nil {
			return err
		}
	}
	coldRefit := time.Since(start)

	start = time.Now()
	store2, err := persist.Open(dir, quiet)
	if err != nil {
		return err
	}
	warm := service.New(service.Options{Workers: c.threads(), CacheSize: 8, Store: store2})
	coldSnap := time.Since(start)
	wst := warm.Stats()
	if wst.ModelsRestored != len(algs) {
		return fmt.Errorf("service: snapshot cold start restored %d models, want %d", wst.ModelsRestored, len(algs))
	}
	for _, name := range algs {
		fr, err := warm.Fit(d.Name, name, p)
		if err != nil {
			return err
		}
		if !fr.CacheHit {
			return fmt.Errorf("service: %s not served from restored cache", name)
		}
	}
	fmt.Fprintf(w, "cold start (%d models on %s): refit %.3fs, snapshot restore %.3fs (%.0fx), 0 fits after restore\n",
		len(algs), d.Name, secs(coldRefit), secs(coldSnap), secs(coldRefit)/secs(coldSnap))

	if err := c.serviceStream(w); err != nil {
		return err
	}
	return c.serviceSharded(w)
}

// heapPeak samples HeapInuse until stop closes and reports the maximum —
// a peak-RSS proxy for comparing how much resident memory a workload
// forces, which cumulative alloc counters hide.
func heapPeak(stop <-chan struct{}) <-chan uint64 {
	out := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		peak := uint64(0)
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapInuse > peak {
				peak = ms.HeapInuse
			}
			select {
			case <-stop:
				out <- peak
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()
	return out
}

// serviceStream compares the batch /v1/assign path against the chunked
// /v1/assign/stream path over the same HTTP hop at 4x the batch cap —
// the workload the cap forces clients to split today. Throughput should
// be comparable; the peak-heap proxy is where streaming wins, because
// neither side ever materializes the full body.
func (c Config) serviceStream(w io.Writer) error {
	total := 4 << 20 // 4x the 1<<20 per-request batch cap
	batchSize := 1 << 20
	if n := c.n(); n < 20000 {
		// Smoke-scale invocations shrink the stream with the run.
		total, batchSize = 4*n, n
	}

	d := data.SSet(2, c.n(), c.Seed)
	shards, err := startShards(1, c.threads())
	if err != nil {
		return err
	}
	defer shards[0].close()
	cl := service.NewClient(shards[0].addr, service.ClientOptions{})
	var csv bytes.Buffer
	if err := data.SaveCSV(&csv, d.Points); err != nil {
		return err
	}
	if _, err := cl.PutDataset("stream", "csv", csv.Bytes()); err != nil {
		return err
	}
	req := api.FitRequest{
		Dataset:   "stream",
		Algorithm: "Ex-DPC",
		Params:    api.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
	}
	if _, err := cl.Fit(req); err != nil {
		return err
	}

	// One deterministic query point per index, generated on demand so the
	// streaming side never holds more than a chunk of them.
	point := func(rng *rand.Rand) []float64 {
		base := d.Points.At(rng.Intn(d.Points.N))
		q := make([]float64, len(base))
		for j := range q {
			q[j] = base[j] + rng.NormFloat64()*d.DCut/4
		}
		return q
	}

	runtime.GC()
	stop := make(chan struct{})
	peakC := heapPeak(stop)
	start := time.Now()
	rng := rand.New(rand.NewSource(c.Seed + 55))
	labeledBatch := 0
	for off := 0; off < total; off += batchSize {
		pts := make([][]float64, batchSize)
		for i := range pts {
			pts[i] = point(rng)
		}
		resp, err := cl.Assign(api.AssignRequest{FitRequest: req, Points: pts})
		if err != nil {
			return fmt.Errorf("stream bench: batch assign: %w", err)
		}
		labeledBatch += len(resp.Labels)
	}
	batchTime := time.Since(start)
	close(stop)
	batchPeak := <-peakC

	runtime.GC()
	stop = make(chan struct{})
	peakC = heapPeak(stop)
	start = time.Now()
	rng = rand.New(rand.NewSource(c.Seed + 55))
	pr, pw := io.Pipe()
	go func() {
		sent := 0
		pw.CloseWithError(service.EncodePoints(pw, func() ([]float64, error) {
			if sent == total {
				return nil, io.EOF
			}
			sent++
			return point(rng), nil
		}))
	}()
	sr, err := cl.AssignStream(req, pr)
	if err != nil {
		return fmt.Errorf("stream bench: open stream: %w", err)
	}
	labeledStream := 0
	for {
		chunk, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("stream bench: %w", err)
		}
		labeledStream += len(chunk)
	}
	sum, _ := sr.Summary()
	sr.Close()
	streamTime := time.Since(start)
	close(stop)
	streamPeak := <-peakC
	if labeledStream != total || labeledBatch != total {
		return fmt.Errorf("stream bench: labeled %d streamed / %d batched, want %d", labeledStream, labeledBatch, total)
	}
	if !sum.CacheHit {
		return fmt.Errorf("stream bench: stream refit the model")
	}

	fmt.Fprintf(w, "streaming: %d points through one HTTP instance (batch size %d, %d stream chunks)\n",
		total, batchSize, sum.Chunks)
	fmt.Fprintf(w, "  batch  /v1/assign:        %8.3fs  %9.0f pts/s  peak heap %4d MiB\n",
		secs(batchTime), float64(total)/secs(batchTime), batchPeak>>20)
	fmt.Fprintf(w, "  stream /v1/assign/stream: %8.3fs  %9.0f pts/s  peak heap %4d MiB (%.1fx less)\n",
		secs(streamTime), float64(total)/secs(streamTime), streamPeak>>20,
		float64(batchPeak)/float64(streamPeak))
	return nil
}

// inprocShard is one dpcd instance on a real localhost listener —
// in-process, but reached through the same HTTP path as a deployed
// shard, so forwarding costs are measured, not simulated.
type inprocShard struct {
	addr string
	srv  *http.Server
}

func (s *inprocShard) close() { _ = s.srv.Close() }

// startShards boots n instances. With n == 1 the instance runs the plain
// single-node handler; otherwise the instances form a consistent-hash
// ring and each request may be forwarded to its owner. workersTotal is
// split across the shards — on one machine the comparison holds total
// compute constant and measures what the routing layer costs (or buys).
func startShards(n, workersTotal int) ([]*inprocShard, error) {
	listeners := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		addrs[i] = "http://" + ln.Addr().String()
	}
	perShard := workersTotal / n
	if perShard < 1 {
		perShard = 1
	}
	shards := make([]*inprocShard, n)
	for i := range shards {
		svc := service.New(service.Options{Workers: perShard, CacheSize: 16})
		handler := service.NewHandler(svc)
		if n > 1 {
			rt, err := service.NewRouter(svc, addrs[i], addrs, service.RouterOptions{Vnodes: 128})
			if err != nil {
				return nil, err
			}
			handler = rt.Handler()
		}
		srv := &http.Server{Handler: handler}
		shards[i] = &inprocShard{addr: addrs[i], srv: srv}
		go func(srv *http.Server, ln net.Listener) { _ = srv.Serve(ln) }(srv, listeners[i])
	}
	return shards, nil
}

// serviceSharded compares fit and assign throughput of one dpcd
// instance against a 3-shard ring over the same total worker budget:
// every request goes to a round-robin instance, so roughly two thirds of
// the ring's traffic pays a forwarding hop. This is the serving-side
// scale experiment behind the ROADMAP's sharding item.
func (c Config) serviceSharded(w io.Writer) error {
	const (
		numShards   = 3
		numDatasets = 6
		clients     = 8
		batchesPer  = 8
		batchSize   = 2000
	)
	dn := c.n() / 4
	if dn < 400 {
		dn = 400
	}

	type entry struct {
		name   string
		csv    []byte
		params core.Params
		batch  [][]float64
	}
	rng := rand.New(rand.NewSource(c.Seed + 99))
	entries := make([]entry, numDatasets)
	for i := range entries {
		d := data.SSet(2, dn, c.Seed+int64(i))
		var buf bytes.Buffer
		if err := data.SaveCSV(&buf, d.Points); err != nil {
			return err
		}
		batch := make([][]float64, batchSize)
		for j := range batch {
			base := d.Points.At(rng.Intn(d.Points.N))
			q := make([]float64, len(base))
			for k := range q {
				q[k] = base[k] + rng.NormFloat64()*d.DCut/4
			}
			batch[j] = q
		}
		entries[i] = entry{
			name:   fmt.Sprintf("shard-ds-%02d", i),
			csv:    buf.Bytes(),
			params: core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin},
			batch:  batch,
		}
	}

	run := func(n int) (fit, assign time.Duration, err error) {
		shards, err := startShards(n, c.threads())
		if err != nil {
			return 0, 0, err
		}
		defer func() {
			for _, s := range shards {
				s.close()
			}
		}()
		cls := make([]*service.Client, len(shards))
		for i, s := range shards {
			cls[i] = service.NewClient(s.addr, service.ClientOptions{})
		}
		// Uploads all enter through instance 0; the ring forwards what it
		// does not own.
		for _, e := range entries {
			if _, err := cls[0].PutDataset(e.name, "csv", e.csv); err != nil {
				return 0, 0, err
			}
		}
		toParams := func(p core.Params) api.Params {
			return api.Params{DCut: p.DCut, RhoMin: p.RhoMin, DeltaMin: p.DeltaMin}
		}
		start := time.Now()
		errs := make(chan error, numDatasets)
		for i, e := range entries {
			go func(i int, e entry) {
				_, err := cls[i%len(cls)].Fit(api.FitRequest{
					Dataset: e.name, Algorithm: "Ex-DPC", Params: toParams(e.params)})
				errs <- err
			}(i, e)
		}
		for range entries {
			if err := <-errs; err != nil {
				return 0, 0, err
			}
		}
		fit = time.Since(start)

		start = time.Now()
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				for b := 0; b < batchesPer; b++ {
					e := entries[(cl+b)%len(entries)]
					_, err := cls[(cl+b)%len(cls)].Assign(api.AssignRequest{
						FitRequest: api.FitRequest{
							Dataset: e.name, Algorithm: "Ex-DPC", Params: toParams(e.params)},
						Points: e.batch,
					})
					if err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, 0, err
		default:
		}
		assign = time.Since(start)
		return fit, assign, nil
	}

	fit1, assign1, err := run(1)
	if err != nil {
		return fmt.Errorf("sharding (1 instance): %w", err)
	}
	fit3, assign3, err := run(numShards)
	if err != nil {
		return fmt.Errorf("sharding (%d shards): %w", numShards, err)
	}
	points := float64(clients * batchesPer * batchSize)
	fmt.Fprintf(w, "sharding: %d datasets (n=%d each), %d total workers, requests round-robin across instances\n",
		numDatasets, dn, c.threads())
	fmt.Fprintf(w, "  fit all (Ex-DPC):    1 instance %8.3fs   %d shards %8.3fs  (%.2fx)\n",
		secs(fit1), numShards, secs(fit3), secs(fit1)/secs(fit3))
	fmt.Fprintf(w, "  assign %dx%d batches: 1 instance %7.0f pts/s  %d shards %7.0f pts/s  (%.2fx)\n",
		clients, batchesPer, points/secs(assign1), numShards, points/secs(assign3),
		secs(assign1)/secs(assign3))
	return nil
}
