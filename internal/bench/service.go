package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/persist"
	"repro/internal/service"
)

// Service measures the fit-once/assign-many serving layer behind dpcd:
// cold fit latency vs cached fit latency vs batched assign latency per
// algorithm, then a concurrent burst that reports the model cache hit
// rate and single-flight dedup. This is the serving-side counterpart of
// Table 6 — it shows how much of the per-request cost the model cache
// removes once the density/dependency computation is paid once.
func (c Config) Service() error {
	w := c.w()
	header(w, "Serving: fit-once vs assign-many (dpcd service layer)")

	d := data.SSet(2, c.n(), c.Seed)
	svc := service.New(service.Options{Workers: c.threads(), CacheSize: 8})
	if _, err := svc.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: c.Seed}

	// Query batch: training points perturbed inside the d_cut ball, the
	// stream-assign workload shape.
	rng := rand.New(rand.NewSource(c.Seed + 77))
	batch := make([][]float64, 10000)
	for i := range batch {
		base := d.Points.At(rng.Intn(d.Points.N))
		q := make([]float64, len(base))
		for j := range q {
			q[j] = base[j] + rng.NormFloat64()*d.DCut/4
		}
		batch[i] = q
	}

	fmt.Fprintf(w, "dataset %s (n=%d, d=%d), workers=%d, assign batch=%d\n",
		d.Name, d.Points.N, d.Points.Dim, c.threads(), len(batch))
	fmt.Fprintf(w, "%-14s %12s %12s %14s %12s %10s\n",
		"algorithm", "fit cold", "fit cached", "assign batch", "per point", "fit/assign")
	for _, name := range []string{"Ex-DPC", "Approx-DPC", "S-Approx-DPC"} {
		start := time.Now()
		if _, err := svc.Fit(d.Name, name, p); err != nil {
			return fmt.Errorf("service: %s: %w", name, err)
		}
		cold := time.Since(start)

		start = time.Now()
		fr, err := svc.Fit(d.Name, name, p)
		if err != nil {
			return err
		}
		cached := time.Since(start)
		if !fr.CacheHit {
			return fmt.Errorf("service: %s: second fit missed the cache", name)
		}

		start = time.Now()
		if _, _, err := svc.Assign(d.Name, name, p, batch); err != nil {
			return err
		}
		assign := time.Since(start)
		fmt.Fprintf(w, "%-14s %11.3fs %11.6fs %13.4fs %11.2fus %9.0fx\n",
			name, secs(cold), secs(cached), secs(assign),
			float64(assign.Microseconds())/float64(len(batch)),
			secs(cold)/secs(assign))
	}

	// Concurrent burst on one uncached key: single-flight must collapse
	// the fits to one ClusterDataset pass.
	before := svc.Stats()
	pb := p
	pb.DCut *= 1.25 // new key, not yet cached
	const clients = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := svc.Assign(d.Name, "Approx-DPC", pb, batch[:1000]); err != nil {
				panic(err) // harness bug, not a measurement
			}
		}()
	}
	wg.Wait()
	burst := time.Since(start)
	st := svc.Stats()
	fmt.Fprintf(w, "burst: %d concurrent assign clients on one cold model in %.3fs: %d fit(s) performed, %d joined/cached\n",
		clients, secs(burst), st.CacheMisses-before.CacheMisses, st.CacheHits-before.CacheHits)
	fmt.Fprintf(w, "cache: %d hits / %d misses, hit rate %.2f, %d models resident\n",
		st.CacheHits, st.CacheMisses, st.HitRate, st.ModelsCached)

	// Cold start: a dpcd restart with -data-dir warm-loads snapshots and
	// rebuilds only the kd-trees, versus refitting every model from the
	// raw points. The ratio is what persistence buys on the restart path.
	dir, err := os.MkdirTemp("", "dpcd-bench-snap-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	quiet := func(string, ...any) {}
	store, err := persist.Open(dir, quiet)
	if err != nil {
		return err
	}
	algs := []string{"Ex-DPC", "Approx-DPC", "S-Approx-DPC"}
	writer := service.New(service.Options{Workers: c.threads(), CacheSize: 8, Store: store})
	if _, err := writer.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	for _, name := range algs {
		if _, err := writer.Fit(d.Name, name, p); err != nil {
			return err
		}
	}

	start = time.Now()
	refit := service.New(service.Options{Workers: c.threads(), CacheSize: 8})
	if _, err := refit.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	for _, name := range algs {
		if _, err := refit.Fit(d.Name, name, p); err != nil {
			return err
		}
	}
	coldRefit := time.Since(start)

	start = time.Now()
	store2, err := persist.Open(dir, quiet)
	if err != nil {
		return err
	}
	warm := service.New(service.Options{Workers: c.threads(), CacheSize: 8, Store: store2})
	coldSnap := time.Since(start)
	wst := warm.Stats()
	if wst.ModelsRestored != len(algs) {
		return fmt.Errorf("service: snapshot cold start restored %d models, want %d", wst.ModelsRestored, len(algs))
	}
	for _, name := range algs {
		fr, err := warm.Fit(d.Name, name, p)
		if err != nil {
			return err
		}
		if !fr.CacheHit {
			return fmt.Errorf("service: %s not served from restored cache", name)
		}
	}
	fmt.Fprintf(w, "cold start (%d models on %s): refit %.3fs, snapshot restore %.3fs (%.0fx), 0 fits after restore\n",
		len(algs), d.Name, secs(coldRefit), secs(coldSnap), secs(coldRefit)/secs(coldSnap))
	return nil
}
