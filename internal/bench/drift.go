package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/drift"
	"repro/internal/service"
)

// Drift measures what the drift trackers cost on the assign hot path —
// the per-point distance observation, quantile-sketch update, and one
// mutex acquisition per batch — by timing identical assign workloads
// with tracking off and on (trips disabled, so the on leg pays pure
// bookkeeping). Both legs take the fastest of several trials, the usual
// defense against scheduler noise on small machines. The second half
// measures the trip-to-swap story end to end: a window slide replaces
// the dataset with a shifted cloud, shifted traffic trips the halo
// threshold, and the experiment clocks how long the background refit
// takes to swap in while counting assign failures (which must be zero —
// the old model serves throughout). With Config.DriftJSON set, the run
// is also written as a machine-readable record (BENCH_drift.json).
func (c Config) Drift() error {
	w := c.w()
	header(w, "Drift tracking: assign overhead and background refit swap")

	const (
		batch  = 2048
		rounds = 256
		trials = 5
	)
	d := data.SSet(2, c.n(), c.Seed)
	n := d.Points.N
	p := core.Params{DCut: d.DCut, RhoMin: d.RhoMin, DeltaMin: d.DeltaMin, Seed: c.Seed}
	queries := make([][]float64, batch)
	for i := range queries {
		queries[i] = append([]float64(nil), d.Points.At(i%n)...)
	}
	fmt.Fprintf(w, "dataset %s (n=%d), algorithm Ex-DPC, %d assigns/round x %d rounds, best of %d trials, workers=%d\n",
		d.Name, n, batch, rounds, trials, c.threads())

	// One timed trial: rounds batches against a warm model.
	trial := func(s *service.Service) (float64, error) {
		start := time.Now()
		for r := 0; r < rounds; r++ {
			labels, _, err := s.Assign(d.Name, "Ex-DPC", p, queries)
			if err != nil {
				return 0, err
			}
			if len(labels) != batch {
				return 0, fmt.Errorf("assign returned %d labels", len(labels))
			}
		}
		return secs(time.Since(start)), nil
	}
	leg := func(cfg *drift.Config) (float64, error) {
		s := service.New(service.Options{Workers: c.threads(), Drift: cfg})
		if _, err := s.PutDataset(d.Name, d.Points); err != nil {
			return 0, err
		}
		if _, _, err := s.Assign(d.Name, "Ex-DPC", p, queries[:1]); err != nil { // warm fit
			return 0, err
		}
		best := 0.0
		for t := 0; t < trials; t++ {
			sec, err := trial(s)
			if err != nil {
				return 0, err
			}
			if best == 0 || sec < best {
				best = sec
			}
		}
		return best, nil
	}

	offSec, err := leg(nil)
	if err != nil {
		return fmt.Errorf("drift off leg: %w", err)
	}
	// Trips disabled: the on leg pays observation cost only.
	onSec, err := leg(&drift.Config{ScoreThreshold: 0, HaloThreshold: 0})
	if err != nil {
		return fmt.Errorf("drift on leg: %w", err)
	}
	points := float64(batch * rounds)
	overhead := (onSec - offSec) / offSec * 100
	fmt.Fprintf(w, "tracking off: %8.3fs  %12.0f points/s\n", offSec, points/offSec)
	fmt.Fprintf(w, "tracking on:  %8.3fs  %12.0f points/s  (%+.2f%% overhead)\n", onSec, points/onSec, overhead)

	// Refit swap: slide the window to a shifted cloud and keep assigning
	// shifted points until the background refit swaps in (first batch
	// that labels non-noise again). Halo trips fire fast — the window is
	// small so the swap latency is dominated by the refit itself.
	cfg := &drift.Config{WindowPoints: 512, MinPoints: 512, HaloThreshold: 0.5, Cooldown: time.Hour}
	s := service.New(service.Options{Workers: c.threads(), Drift: cfg, Window: int64(n)})
	if _, err := s.PutDataset(d.Name, d.Points); err != nil {
		return err
	}
	if _, _, err := s.Assign(d.Name, "Ex-DPC", p, queries); err != nil {
		return err
	}
	const shift = 1e9
	shifted := make([][]float64, n)
	shiftedQ := make([][]float64, batch)
	for i := range shifted {
		row := d.Points.At(i)
		r := make([]float64, len(row))
		for j, x := range row {
			r[j] = x + shift
		}
		shifted[i] = r
		if i < batch {
			shiftedQ[i] = r
		}
	}
	if _, err := s.AppendPoints(d.Name, shifted); err != nil {
		return err
	}
	var failures int
	swapStart := time.Now()
	swapSec := -1.0
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		labels, _, err := s.Assign(d.Name, "Ex-DPC", p, shiftedQ)
		if err != nil {
			failures++
			continue
		}
		clustered := 0
		for _, l := range labels {
			if l != core.NoCluster {
				clustered++
			}
		}
		if clustered > 0 { // the refitted model is serving
			swapSec = secs(time.Since(swapStart))
			break
		}
	}
	if swapSec < 0 {
		return fmt.Errorf("refit never swapped in")
	}
	st := s.Stats()
	if st.DriftRefits < 1 || failures > 0 {
		return fmt.Errorf("refit swap: refits=%d failures=%d", st.DriftRefits, failures)
	}
	fmt.Fprintf(w, "refit swap: shifted window tripped after %d observations; old model served %s with 0 failed assigns until the swap\n",
		st.DriftTrips*int64(cfg.WindowPoints), time.Duration(swapSec*float64(time.Second)).Round(time.Millisecond))

	if c.DriftJSON != "" {
		rec := driftRecord{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), Threads: c.threads(),
			N: n, Batch: batch, Rounds: rounds, Trials: trials, Seed: c.Seed,
			Algorithm:       "Ex-DPC",
			OffSeconds:      offSec,
			OnSeconds:       onSec,
			OffPointsPerSec: points / offSec,
			OnPointsPerSec:  points / onSec,
			OverheadPct:     overhead,
			SwapSeconds:     swapSec,
			SwapFailures:    failures,
			Refits:          st.DriftRefits,
		}
		if err := writeDriftRecord(c.DriftJSON, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", c.DriftJSON)
	}
	return nil
}

// driftRecord is the machine-readable form of one Drift run.
type driftRecord struct {
	GoVersion       string  `json:"go_version"`
	GOOS            string  `json:"goos"`
	GOARCH          string  `json:"goarch"`
	NumCPU          int     `json:"num_cpu"`
	Threads         int     `json:"threads"`
	N               int     `json:"n"`
	Batch           int     `json:"batch"`
	Rounds          int     `json:"rounds"`
	Trials          int     `json:"trials"`
	Seed            int64   `json:"seed"`
	Algorithm       string  `json:"algorithm"`
	OffSeconds      float64 `json:"tracking_off_seconds"`
	OnSeconds       float64 `json:"tracking_on_seconds"`
	OffPointsPerSec float64 `json:"tracking_off_points_per_sec"`
	OnPointsPerSec  float64 `json:"tracking_on_points_per_sec"`
	OverheadPct     float64 `json:"overhead_pct"`
	SwapSeconds     float64 `json:"refit_swap_seconds"`
	SwapFailures    int     `json:"refit_swap_failed_assigns"`
	Refits          int64   `json:"refits"`
}

func writeDriftRecord(path string, rec driftRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		return err
	}
	return f.Close()
}
