package bench

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/eval"
)

// Table6 reproduces "Decomposed time [sec]": the rho-computation and
// delta-computation seconds of every algorithm on the four real-dataset
// stand-ins at default parameters.
func (c Config) Table6() error {
	w := c.w()
	header(w, fmt.Sprintf("Table 6: decomposed time [s] (n=%d per dataset, %d threads)", c.n(), c.threads()))
	dss := c.realDatasets()
	fmt.Fprintf(w, "%-14s", "Algorithm")
	for _, ds := range dss {
		fmt.Fprintf(w, " %10s-rho %10s-dlt", ds.Name, ds.Name)
	}
	fmt.Fprintln(w)
	for _, alg := range allAlgs() {
		fmt.Fprintf(w, "%-14s", alg.Name())
		for _, ds := range dss {
			res, err := run(alg, ds.Points, c.params(ds))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %14.3f %14.3f", secs(res.Timing.Rho), secs(res.Timing.Delta))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table7 reproduces "Memory usage [MB]" per algorithm on the four
// real-dataset stand-ins. Go's GC makes this approximate; the ordering
// (Ex-DPC smallest, grid algorithms above it, CFSFDP-A largest among
// accelerated exact baselines) is the reproduced shape.
func (c Config) Table7() error {
	w := c.w()
	header(w, fmt.Sprintf("Table 7: retained memory [MB] (n=%d per dataset)", c.n()))
	dss := c.realDatasets()
	algs := []core.Algorithm{
		core.RtreeScan{}, core.LSHDDP{}, core.CFSFDPA{},
		core.ExDPC{}, core.ApproxDPC{}, core.SApproxDPC{},
	}
	fmt.Fprintf(w, "%-14s", "Algorithm")
	for _, ds := range dss {
		fmt.Fprintf(w, " %10s", ds.Name)
	}
	fmt.Fprintln(w)
	for _, alg := range algs {
		fmt.Fprintf(w, "%-14s", alg.Name())
		for _, ds := range dss {
			p := c.params(ds)
			var keep *core.Result
			mem := eval.MeasureMem(func() {
				r, err := alg.ClusterDataset(ds.Points, p)
				if err != nil {
					panic(err)
				}
				keep = r
			})
			runtime.KeepAlive(keep)
			fmt.Fprintf(w, " %10s", eval.FormatMB(mem))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig7 reproduces "Impact of cardinality (sampling rate)": total running
// time of every algorithm while uniformly sampling each dataset at rates
// 0.5 ... 1.0.
func (c Config) Fig7() error {
	w := c.w()
	header(w, fmt.Sprintf("Figure 7: running time [s] vs sampling rate (n=%d at rate 1, %d threads)", c.n(), c.threads()))
	rates := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	for _, ds := range c.realDatasets() {
		fmt.Fprintf(w, "\n[%s]\n%-14s", ds.Name, "Algorithm")
		for _, r := range rates {
			fmt.Fprintf(w, " %8.1f", r)
		}
		fmt.Fprintln(w)
		for _, alg := range allAlgs() {
			fmt.Fprintf(w, "%-14s", alg.Name())
			for i, rate := range rates {
				sub := data.Sample(ds, rate, c.Seed+int64(i))
				res, err := run(alg, sub.Points, c.params(ds))
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %8.3f", secs(res.Timing.Total()))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig8 reproduces "Impact of d_cut": total running time under a cutoff
// sweep (500..1500 for the 1e5/1e6-domain datasets, 4000..6000 for
// Sensor, as in the paper).
func (c Config) Fig8() error {
	w := c.w()
	header(w, fmt.Sprintf("Figure 8: running time [s] vs d_cut (n=%d, %d threads)", c.n(), c.threads()))
	for _, ds := range c.realDatasets() {
		cuts := []float64{500, 750, 1000, 1250, 1500}
		if ds.Name == "Sensor" {
			cuts = []float64{4000, 4500, 5000, 5500, 6000}
		}
		fmt.Fprintf(w, "\n[%s]\n%-14s", ds.Name, "Algorithm")
		for _, dc := range cuts {
			fmt.Fprintf(w, " %8.0f", dc)
		}
		fmt.Fprintln(w)
		for _, alg := range allAlgs() {
			fmt.Fprintf(w, "%-14s", alg.Name())
			for _, dc := range cuts {
				p := c.params(ds)
				p.DCut = dc
				p.DeltaMin = dc * 3
				res, err := run(alg, ds.Points, p)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %8.3f", secs(res.Timing.Total()))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Fig9 reproduces "Impact of number of threads": total running time with
// 1, 2, 4, ... up to the host CPU count. The paper's key shapes: Ex-DPC
// plateaus (its delta phase is serial), Approx-DPC and S-Approx-DPC keep
// scaling, LSH-DDP scales irregularly (no load balancing).
func (c Config) Fig9() error {
	w := c.w()
	maxT := runtime.GOMAXPROCS(0)
	var threads []int
	for t := 1; t < maxT; t *= 2 {
		threads = append(threads, t)
	}
	threads = append(threads, maxT)
	header(w, fmt.Sprintf("Figure 9: running time [s] vs threads (n=%d)", c.n()))
	for _, ds := range c.realDatasets() {
		fmt.Fprintf(w, "\n[%s]\n%-14s", ds.Name, "Algorithm")
		for _, t := range threads {
			fmt.Fprintf(w, " %8d", t)
		}
		fmt.Fprintln(w)
		for _, alg := range allAlgs() {
			fmt.Fprintf(w, "%-14s", alg.Name())
			for _, t := range threads {
				p := c.params(ds)
				p.Workers = t
				res, err := run(alg, ds.Points, p)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, " %8.3f", secs(res.Timing.Total()))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}
