package bench

import (
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/dbscan"
	"repro/internal/eval"
	"repro/internal/geom"
	"repro/internal/vis"
)

// Fig1 reproduces the decision graph of S2 (Figure 1): it prints the 20
// largest dependent distances with their densities — the "15 points with
// comparatively large dependent distances" observation — and renders the
// graph as SVG when OutDir is set.
func (c Config) Fig1() error {
	w := c.w()
	ds := data.SSet(2, 5000, c.Seed)
	p := c.params(ds)
	res, err := run(core.ExDPC{}, ds.Points, p)
	if err != nil {
		return err
	}
	header(w, "Figure 1: decision graph of S2 (top 20 by dependent distance)")
	dg := core.DecisionGraph(res)
	fmt.Fprintf(w, "%-6s %12s %14s\n", "rank", "rho", "delta")
	for i := 0; i < 20 && i < len(dg); i++ {
		d := dg[i].Delta
		ds := fmt.Sprintf("%.1f", d)
		if math.IsInf(d, 1) {
			ds = "inf"
		}
		fmt.Fprintf(w, "%-6d %12.1f %14s\n", i+1, dg[i].Rho, ds)
	}
	// The visual claim: a clear gap between the 15th and 16th delta.
	if len(dg) > 15 {
		d15, d16 := dg[14].Delta, dg[15].Delta
		if math.IsInf(d15, 1) {
			d15 = dg[0].Rho // placeholder; ratio printed only when finite
		}
		fmt.Fprintf(w, "gap: delta[15]/delta[16] = %.2f (clear elbow expected > 2)\n", d15/d16)
	}
	if path, ok := c.outPath("fig1_decision_graph_s2.svg"); ok {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := vis.DecisionGraphSVG(f, res.Rho, res.Delta, p.RhoMin, p.DeltaMin, 640, 480); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// Fig2 reproduces the DPC vs DBSCAN quality comparison on S2 (Figure 2):
// DBSCAN parameters are chosen from OPTICS so that 15 clusters are
// attainable, and the two labelings are compared.
func (c Config) Fig2() error {
	w := c.w()
	ds := data.SSet(2, 5000, c.Seed)
	p := c.params(ds)
	res, err := run(core.ExDPC{}, ds.Points, p)
	if err != nil {
		return err
	}
	header(w, "Figure 2: DPC vs DBSCAN on S2")
	fmt.Fprintf(w, "DPC clusters: %d (want 15)\n", res.NumClusters())

	minPts := 5
	order := dbscan.OPTICS(ds.Points, 1e9, minPts)
	eps, ok := dbscan.ParamsForK(order, 15, 50)
	var db *dbscan.Result
	if ok {
		db = dbscan.ExtractDBSCAN(order, eps)
		big := 0
		counts := map[int32]int{}
		for _, l := range db.Labels {
			if l != dbscan.Noise {
				counts[l]++
			}
		}
		for _, cnt := range counts {
			if cnt >= 50 {
				big++
			}
		}
		fmt.Fprintf(w, "DBSCAN(eps=%.0f, minPts=%d): %d substantial clusters (%d total incl. fragments)\n",
			eps, minPts, big, db.NumClusters)
	} else {
		// No threshold yields 15 clusters — itself the paper's point that
		// DBSCAN cannot always separate overlapping Gaussians. Fall back
		// to the best threshold for reporting.
		eps = ds.DCut
		db = dbscan.ExtractDBSCAN(order, eps)
		fmt.Fprintf(w, "DBSCAN: no OPTICS threshold yields 15 clusters; at eps=%.0f it finds %d\n", eps, db.NumClusters)
	}
	ri := eval.RandIndex(res.Labels, db.Labels)
	fmt.Fprintf(w, "Rand index DPC vs DBSCAN: %.3f (the paper's point: the clusterings differ)\n", ri)
	if path, ok := c.outPath("fig2_dpc_s2.ppm"); ok {
		if err := writePPM(path, ds.Points, res.Labels); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	if path, ok := c.outPath("fig2_dbscan_s2.ppm"); ok {
		if err := writePPM(path, ds.Points, db.Labels); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", path)
	}
	return nil
}

// Fig6 reproduces the 2-D visualization of each algorithm's clustering on
// Syn (Figure 6): Ex-DPC as ground truth, then LSH-DDP, Approx-DPC, and
// S-Approx-DPC at eps 0.2 and 1.0, with Rand indexes and rendered images.
func (c Config) Fig6() error {
	w := c.w()
	ds := data.Syn(2*c.n(), 0.02, c.Seed)
	p := c.params(ds)
	truth, err := run(core.ExDPC{}, ds.Points, p)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("Figure 6: clustering visualization on Syn (n=%d, d_cut=%.0f)", ds.Points.N, p.DCut))
	fmt.Fprintf(w, "Ex-DPC clusters: %d (paper: 13 density peaks)\n", truth.NumClusters())
	if path, ok := c.outPath("fig6_b_exdpc.ppm"); ok {
		if err := writePPM(path, ds.Points, truth.Labels); err != nil {
			return err
		}
	}
	cases := []struct {
		file string
		alg  core.Algorithm
		eps  float64
	}{
		{"fig6_c_lshddp.ppm", core.LSHDDP{}, 0},
		{"fig6_d_approx.ppm", core.ApproxDPC{}, 0},
		{"fig6_e_sapprox_eps0.2.ppm", core.SApproxDPC{}, 0.2},
		{"fig6_f_sapprox_eps1.0.ppm", core.SApproxDPC{}, 1.0},
	}
	for _, tc := range cases {
		pp := p
		if tc.eps > 0 {
			pp.Epsilon = tc.eps
		}
		res, err := run(tc.alg, ds.Points, pp)
		if err != nil {
			return err
		}
		label := tc.alg.Name()
		if tc.eps > 0 {
			label = fmt.Sprintf("%s (eps=%.1f)", label, tc.eps)
		}
		fmt.Fprintf(w, "%-24s clusters=%3d  RandIndex=%.3f\n",
			label, res.NumClusters(), eval.RandIndex(truth.Labels, res.Labels))
		if path, ok := c.outPath(tc.file); ok {
			if err := writePPM(path, ds.Points, res.Labels); err != nil {
				return err
			}
		}
	}
	if c.OutDir != "" {
		fmt.Fprintf(w, "images in %s\n", c.OutDir)
	}
	return nil
}

func writePPM(path string, ds *geom.Dataset, labels []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := vis.ScatterPPM(f, ds, labels, 800, 800); err != nil {
		return err
	}
	return f.Close()
}
