// Package ring implements the consistent-hash ring that partitions dpcd
// datasets across shard instances. Datasets own their fitted models, so
// hashing the dataset name places a dataset and every model fitted on it
// on one shard; the persisted model key embeds the same dataset name, so
// ownership of the in-memory state and of the on-disk snapshots always
// agrees.
//
// The hash is FNV-64a — deterministic, dependency-free, and stable
// across processes and platforms, which the rebalancing protocol relies
// on: a shard that picks up a key after a membership change computes the
// same ownership as the shard that persisted it, and warm-loads the
// snapshot instead of refitting. Virtual nodes smooth the partition;
// with the default 128 vnodes per member a 3-shard ring stays within a
// few percent of uniform. Removing a member only remaps that member's
// arcs — the defining property that makes rebalancing proportional to
// the departed shard's share, not the keyspace.
//
// A Ring is immutable after New; membership changes build a new Ring.
// That keeps lookups lock-free and makes "the ring changed" an explicit
// event the serving layer can reconcile against.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member used when callers
// pass vnodes <= 0.
const DefaultVnodes = 128

// Ring is an immutable consistent-hash ring.
type Ring struct {
	vnodes  int
	members []string
	points  []point // sorted by hash, ties broken by member
}

// point is one virtual node: the hash of "member#i" and the member it
// routes to.
type point struct {
	hash   uint64
	member string
}

// Hash is the ring's key hash: FNV-64a of the raw bytes pushed through
// the splitmix64 finalizer. Raw FNV is not enough — two keys differing
// only in a trailing digit ("ds-00" vs "ds-01") land within ~2^48 of
// each other, closer than an average vnode arc (~2^55 on a 3×128-vnode
// ring), so sequential dataset names would all map to one shard. The
// finalizer is a fixed bijection, so the combined hash is exactly as
// stable across processes and platforms as FNV itself. Exported so tests
// can pin its values; changing it silently would remap every key on
// upgrade.
func Hash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a constant, well-avalanched
// bijection on 64-bit values.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// vnodeHash places virtual node i of a member whose name hashes to base.
// The golden-ratio stride plus mix64 spreads a member's vnodes uniformly
// regardless of how similar member names are.
func vnodeHash(base uint64, i int) uint64 {
	return mix64(base + uint64(i)*0x9e3779b97f4a7c15)
}

// New builds a ring over the given members with vnodes virtual nodes
// each (<= 0 means DefaultVnodes). Members are deduplicated; order does
// not matter — two rings over the same member set are identical.
func New(vnodes int, members ...string) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("ring: no members")
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes:  vnodes,
		members: uniq,
		points:  make([]point, 0, len(uniq)*vnodes),
	}
	for _, m := range uniq {
		base := Hash(m)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: vnodeHash(base, i), member: m})
		}
	}
	// Ties broken by member name so the ring is a pure function of the
	// member set, never of insertion order.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].member < r.points[b].member
	})
	return r, nil
}

// Owner returns the member owning key: the first virtual node at or
// after the key's hash, wrapping at the top of the hash space.
func (r *Ring) Owner(key string) string {
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// OwnersN returns the key's replica set: the first rf distinct members
// whose virtual nodes follow the key's hash in ring order, wrapping at
// the top of the hash space. Index 0 is the primary — always equal to
// Owner(key) — and each subsequent entry is the next successor instance,
// skipping virtual nodes of members already chosen so replicas land on
// rf distinct instances, never twice on the same one. rf is clamped to
// [1, len(members)]: asking for more replicas than the ring has members
// returns every member exactly once.
//
// Like Owner, the placement is a pure function of (member set, vnodes,
// key): membership changes move only the arcs of the members that
// changed, so growing or shrinking the ring reassigns the smallest
// possible set of (key, replica) pairs. In particular, removing a
// member promotes its rf-th successor into each affected replica set
// while every surviving (key, replica) pair stays put — the property
// that makes RF-replicated failover a warm-cache event.
func (r *Ring) OwnersN(key string, rf int) []string {
	if rf < 1 {
		rf = 1
	}
	if rf > len(r.members) {
		rf = len(r.members)
	}
	out := make([]string, 0, rf)
	h := Hash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for scanned := 0; scanned < len(r.points) && len(out) < rf; scanned++ {
		if i == len(r.points) {
			i = 0
		}
		m := r.points[i].member
		if !contains(out, m) {
			out = append(out, m)
		}
		i++
	}
	return out
}

// contains is a linear scan; replica sets are tiny (rf is 2 or 3), so
// this beats any set allocation on the lookup path.
func contains(ms []string, m string) bool {
	for _, x := range ms {
		if x == m {
			return true
		}
	}
	return false
}

// Members returns the member set in sorted order. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Vnodes returns the virtual-node count per member.
func (r *Ring) Vnodes() int { return r.vnodes }

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	i := sort.SearchStrings(r.members, member)
	return i < len(r.members) && r.members[i] == member
}
