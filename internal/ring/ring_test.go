package ring

import (
	"fmt"
	"testing"
)

// TestHashGolden pins the key hash. These values must never change: the
// rebalancing protocol assumes a shard restarted on a new binary computes
// the same ownership for the snapshots already on its disk.
func TestHashGolden(t *testing.T) {
	golden := map[string]uint64{
		"":            0xf52a15e9a9b5e89b, // mix64(FNV-64a offset basis)
		"pamap2":      0xe9276f3efb0bb559,
		"s2":          0xa58284df895b07ed,
		"syn":         0xf1240260bc540516,
		"household":   0xd9b2f06c03058a4e,
		"dataset-00":  0x13c6ec3e34890efe,
		"a#0":         0xb9b5fec617b7e565,
		"shard-b#127": 0x6c2cf8b06ff4be1d,
	}
	for key, want := range golden {
		if got := Hash(key); got != want {
			t.Errorf("Hash(%q) = %#016x, want %#016x — changing the ring hash remaps every key", key, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(128); err == nil {
		t.Error("New with no members succeeded")
	}
	if _, err := New(128, "a", ""); err == nil {
		t.Error("New with an empty member name succeeded")
	}
	r, err := New(0, "b", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Members(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Members() = %v, want deduplicated sorted [a b]", got)
	}
	if r.Vnodes() != DefaultVnodes {
		t.Errorf("Vnodes() = %d, want default %d", r.Vnodes(), DefaultVnodes)
	}
	if !r.Has("a") || r.Has("c") {
		t.Error("Has misreports membership")
	}
}

// TestOwnerIndependentOfOrder: the ring is a pure function of the member
// set, so two instances given the same -peers list in different orders
// must agree on every owner.
func TestOwnerIndependentOfOrder(t *testing.T) {
	r1, err := New(64, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(64, "shard-c", "shard-a", "shard-b")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("dataset-%04d", i)
		if o1, o2 := r1.Owner(key), r2.Owner(key); o1 != o2 {
			t.Fatalf("owner of %q differs by member order: %q vs %q", key, o1, o2)
		}
	}
}

// TestDistribution: with 128 vnodes, 3 shards split a large keyspace
// within ±20% of uniform — the balance bound the ISSUE's rebalancing
// story budgets for.
func TestDistribution(t *testing.T) {
	members := []string{"http://10.0.0.1:8080", "http://10.0.0.2:8080", "http://10.0.0.3:8080"}
	r, err := New(128, members...)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 30000
	counts := make(map[string]int, len(members))
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("dataset-%05d", i))]++
	}
	want := float64(keys) / float64(len(members))
	for _, m := range members {
		got := float64(counts[m])
		if got < want*0.8 || got > want*1.2 {
			t.Errorf("shard %s owns %d of %d keys (%.1f%% of uniform); want within ±20%%",
				m, counts[m], keys, 100*got/want)
		}
	}
}

// TestSequentialKeysSpread is the regression for raw-FNV clustering:
// keys differing only in a trailing digit hash within ~2^48 of each
// other, closer than an average vnode arc, so without a finalizer a
// whole "ds-00..ds-05" family lands on one shard.
func TestSequentialKeysSpread(t *testing.T) {
	r, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[string]bool)
	for i := 0; i < 10; i++ {
		owners[r.Owner(fmt.Sprintf("ds-%02d", i))] = true
	}
	if len(owners) < 2 {
		t.Fatalf("10 sequential keys all owned by one shard: %v", owners)
	}
}

// TestRemovalRemapsOnlyRemovedKeys: deleting a member moves exactly the
// keys that member owned; everything else keeps its owner. This is what
// makes killing one shard cost only that shard's share — the survivors'
// warm caches and snapshots stay valid.
func TestRemovalRemapsOnlyRemovedKeys(t *testing.T) {
	full, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New(128, "shard-a", "shard-b")
	if err != nil {
		t.Fatal(err)
	}
	const keys = 10000
	remapped := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("dataset-%05d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "shard-c" {
			if after == "shard-c" {
				t.Fatalf("key %q still owned by removed shard", key)
			}
			remapped++
			continue
		}
		if before != after {
			t.Fatalf("key %q moved %q -> %q although its owner survived", key, before, after)
		}
	}
	if remapped == 0 {
		t.Fatal("removed shard owned no keys; distribution is broken")
	}
}

// TestAdditionOnlySteals: the converse — adding a member only takes keys,
// never shuffles them between existing members.
func TestAdditionOnlySteals(t *testing.T) {
	small, err := New(128, "shard-a", "shard-b")
	if err != nil {
		t.Fatal(err)
	}
	grown, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("dataset-%05d", i)
		before, after := small.Owner(key), grown.Owner(key)
		if after != before && after != "shard-c" {
			t.Fatalf("key %q moved %q -> %q when only shard-c was added", key, before, after)
		}
	}
}

// TestOwnerStable pins a handful of concrete placements so an
// accidental change to vnode labeling or tie-breaking (which would remap
// keys across a rolling upgrade) fails loudly.
func TestOwnerStable(t *testing.T) {
	r, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	// Golden placements, generated once with this package's own code and
	// frozen: they only break if the hash, vnode labels, or tie-break
	// change — any of which would remap keys across a rolling upgrade.
	golden := map[string]string{
		"pamap2":     "shard-c",
		"s2":         "shard-c",
		"syn":        "shard-a",
		"household":  "shard-c",
		"dataset-00": "shard-a",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestOwnersN is the table-driven contract of successor-replica
// placement: the primary is Owner(key), replicas are distinct instances,
// and rf degrades gracefully when it exceeds the member count.
func TestOwnersN(t *testing.T) {
	cases := []struct {
		name    string
		members []string
		rf      int
		wantLen int
	}{
		{"rf=1 is Owner", []string{"shard-a", "shard-b", "shard-c"}, 1, 1},
		{"rf=2 of 3", []string{"shard-a", "shard-b", "shard-c"}, 2, 2},
		{"rf=3 of 3", []string{"shard-a", "shard-b", "shard-c"}, 3, 3},
		{"rf exceeds members", []string{"shard-a", "shard-b", "shard-c"}, 7, 3},
		{"rf <= 0 clamps to 1", []string{"shard-a", "shard-b", "shard-c"}, 0, 1},
		{"single node", []string{"only"}, 3, 1},
		{"two nodes rf=2", []string{"shard-a", "shard-b"}, 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := New(128, c.members...)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("dataset-%03d", i)
				got := r.OwnersN(key, c.rf)
				if len(got) != c.wantLen {
					t.Fatalf("OwnersN(%q, %d) = %v, want %d members", key, c.rf, got, c.wantLen)
				}
				if got[0] != r.Owner(key) {
					t.Fatalf("OwnersN(%q)[0] = %q, Owner = %q — primary must agree", key, got[0], r.Owner(key))
				}
				// The same-instance vnode skip: every instance holds 128
				// consecutive candidate vnodes somewhere, so without the skip
				// duplicates would show up constantly.
				seen := map[string]bool{}
				for _, m := range got {
					if seen[m] {
						t.Fatalf("OwnersN(%q, %d) = %v repeats member %q", key, c.rf, got, m)
					}
					seen[m] = true
				}
			}
		})
	}
}

// TestOwnersNGolden pins concrete replica placements, mirroring
// TestOwnerStable: generated once with this package's own code and
// frozen. They only break if the hash, vnode labels, tie-break, or
// successor walk change — any of which would remap (key, replica) pairs
// across a rolling upgrade and turn warm failovers into refits.
func TestOwnersNGolden(t *testing.T) {
	r, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	golden := map[string][]string{
		"pamap2":     {"shard-c", "shard-b", "shard-a"},
		"s2":         {"shard-c", "shard-a", "shard-b"},
		"syn":        {"shard-a", "shard-c", "shard-b"},
		"household":  {"shard-c", "shard-b", "shard-a"},
		"dataset-00": {"shard-a", "shard-b", "shard-c"},
	}
	for key, want := range golden {
		for rf := 1; rf <= 3; rf++ {
			got := r.OwnersN(key, rf)
			if len(got) != rf {
				t.Fatalf("OwnersN(%q, %d) returned %d members", key, rf, len(got))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Errorf("OwnersN(%q, %d)[%d] = %q, want %q", key, rf, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOwnersNRemovalPromotesReplica: removing a member must promote the
// keys it was primary for onto their existing first replica — the exact
// property that makes an RF=2 shard death a warm-cache failover instead
// of a refit storm — and must not disturb any surviving (key, replica)
// pair.
func TestOwnersNRemovalPromotesReplica(t *testing.T) {
	full, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New(128, "shard-a", "shard-b")
	if err != nil {
		t.Fatal(err)
	}
	promoted := 0
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("dataset-%04d", i)
		before := full.OwnersN(key, 2)
		after := reduced.OwnersN(key, 2)
		if before[0] == "shard-c" {
			if after[0] != before[1] {
				t.Fatalf("key %q: dead primary shard-c replaced by %q, want its replica %q", key, after[0], before[1])
			}
			promoted++
			continue
		}
		if after[0] != before[0] {
			t.Fatalf("key %q: primary moved %q -> %q although it survived", key, before[0], after[0])
		}
		if before[1] != "shard-c" && after[1] != before[1] {
			t.Fatalf("key %q: surviving replica moved %q -> %q", key, before[1], after[1])
		}
	}
	if promoted == 0 {
		t.Fatal("removed shard was primary for no keys; distribution is broken")
	}
}

func BenchmarkOwner(b *testing.B) {
	r, err := New(128, "shard-a", "shard-b", "shard-c")
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("dataset-%04d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(keys[i%len(keys)])
	}
}
