package geom

import "math"

// Distance kernels.
//
// Every squared-distance evaluation in this repository — fresh fits,
// kd-tree and R-tree walks, density-index builds and re-cuts, assigns —
// flows through the kernels in this file, and they all share ONE
// accumulation order so results are bit-identical no matter which path
// computed them:
//
//	four float64 accumulator lanes over dimension chunks of 4
//	(lane k sums (a[4c+k]-b[4c+k])^2 in chunk order), reduced as
//	(s0+s2)+(s1+s3), then the <4 trailing dimensions added
//	sequentially to the reduced sum.
//
// The AVX2 assembly (simd_amd64.s) is this exact operation sequence on
// one ymm register — VSUBPD/VMULPD/VADDPD per chunk (no FMA: a fused
// multiply-add rounds once where the Go code rounds twice, which would
// break bit-identity with the fallback), VEXTRACTF128+VADDPD+VHADDPD
// for the (s0+s2)+(s1+s3) reduction, scalar tail — so the assembly and
// the pure-Go fallback return identical bits for every input, and the
// `noasm` build tag or SetSIMD(false) change speed, never results.
// Float32 datasets widen each element to float64 before subtracting
// (exactly, so the f32 kernels agree bitwise with widening the whole
// row first) and otherwise follow the same order.
//
// The partial (early-exit) variants accumulate in the same order and
// additionally compare the running reduced sum against a limit once per
// chunk and once per tail element. Partial sums of non-negative terms
// are monotone under IEEE rounding, so an early exit can only fire when
// the completed sum would also exceed the limit: callers that accept
// strictly-closer candidates (`ok && v < limit`) decide identically to
// the full kernel, and a completed partial returns the canonical sum
// bit-for-bit.

// SqDist returns the squared Euclidean distance between a and b in the
// canonical accumulation order above. It is the inner loop of every
// algorithm here, so it avoids the sqrt.
func SqDist(a, b Point) float64 {
	return sqdist64(a, b)
}

// SqDistPartial computes the squared distance but abandons the sum as
// soon as it exceeds limit, returning (sum, false). When the full
// distance is at most limit it returns the canonical full sum and true.
// Useful for range counting with many far-away candidates.
func SqDistPartial(a, b Point, limit float64) (float64, bool) {
	return sqdist64Partial(a, b, limit)
}

// SqDistIdx returns the squared Euclidean distance between points i and
// j of the dataset — the flat-index twin of SqDist, and the innermost
// kernel of every algorithm here. On float32 datasets it reads the f32
// rows directly (no widened-row allocation).
func SqDistIdx(ds *Dataset, i, j int32) float64 {
	if ds.Coords32 != nil {
		return sqdist32(ds.row32(i), ds.row32(j))
	}
	return sqdist64(ds.row64(i), ds.row64(j))
}

// DistIdx returns the Euclidean distance between points i and j.
func DistIdx(ds *Dataset, i, j int32) float64 {
	return math.Sqrt(SqDistIdx(ds, i, j))
}

// SqDistIdxPartial is the flat-index twin of SqDistPartial: it abandons
// the sum as soon as it exceeds limit, returning (sum, false); when the
// full squared distance is at most limit it returns (sum, true).
func SqDistIdxPartial(ds *Dataset, i, j int32, limit float64) (float64, bool) {
	if ds.Coords32 != nil {
		return sqdist32Partial(ds.row32(i), ds.row32(j), limit)
	}
	return sqdist64Partial(ds.row64(i), ds.row64(j), limit)
}

// SqDistToIdx returns the squared distance between an external query
// point q (always float64 — wire coordinates and tree queries are
// float64 rows) and dataset point i. On float32 datasets the row is
// widened element-wise inside the kernel, so per-node tree evaluations
// never allocate a widened row.
func SqDistToIdx(ds *Dataset, q Point, i int32) float64 {
	if ds.Coords32 != nil {
		return sqdistMixed(q, ds.row32(i))
	}
	return sqdist64(q, ds.row64(i))
}

// SqDistToIdxPartial is SqDistToIdx with the early-exit contract of
// SqDistPartial.
func SqDistToIdxPartial(ds *Dataset, q Point, i int32, limit float64) (float64, bool) {
	if ds.Coords32 != nil {
		return sqdistMixedPartial(q, ds.row32(i), limit)
	}
	return sqdist64Partial(q, ds.row64(i), limit)
}

// SqDistIdxScalar is the pre-SIMD sequential kernel — one accumulator,
// one element at a time — kept only as the baseline the
// BENCH_simd_kernels.json speedups are measured against. No algorithm
// calls it.
func SqDistIdxScalar(ds *Dataset, i, j int32) float64 {
	if ds.Coords32 != nil {
		a, b := ds.row32(i), ds.row32(j)
		var s float64
		for t := range a {
			v := float64(a[t]) - float64(b[t])
			s += v * v
		}
		return s
	}
	a, b := ds.row64(i), ds.row64(j)
	var s float64
	for t := range a {
		v := a[t] - b[t]
		s += v * v
	}
	return s
}

// SIMDEnabled reports whether the AVX2 assembly kernels are currently
// dispatched (false on non-amd64 builds, under the noasm tag, on CPUs
// without AVX2, or after SetSIMD(false)).
func SIMDEnabled() bool { return useSIMD }

// SetSIMD switches the assembly kernels on or off, returning the
// previous setting. Enabling is a no-op when the build or CPU does not
// support them. Results are bit-identical either way; this exists so
// benchmarks and equivalence tests can measure and gate the scalar
// fallback on SIMD-capable hosts. Not synchronized — toggle only while
// no fits or queries are in flight.
func SetSIMD(on bool) bool {
	prev := useSIMD
	useSIMD = on && simdSupported
	return prev
}

// ---------------------------------------------------------------------------
// Pure-Go canonical kernels. These DEFINE the accumulation order; the
// assembly mirrors them instruction for instruction.

func sqdist64Go(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := a[t] - b[t]
		d1 := a[t+1] - b[t+1]
		d2 := a[t+2] - b[t+2]
		d3 := a[t+3] - b[t+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(a); t++ {
		d := a[t] - b[t]
		s += d * d
	}
	return s
}

func sqdist64Partial(a, b []float64, limit float64) (float64, bool) {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := a[t] - b[t]
		d1 := a[t+1] - b[t+1]
		d2 := a[t+2] - b[t+2]
		d3 := a[t+3] - b[t+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if s := (s0 + s2) + (s1 + s3); s > limit {
			return s, false
		}
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(a); t++ {
		d := a[t] - b[t]
		s += d * d
		if s > limit {
			return s, false
		}
	}
	return s, true
}

func sqdist32Go(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := float64(a[t]) - float64(b[t])
		d1 := float64(a[t+1]) - float64(b[t+1])
		d2 := float64(a[t+2]) - float64(b[t+2])
		d3 := float64(a[t+3]) - float64(b[t+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(a); t++ {
		d := float64(a[t]) - float64(b[t])
		s += d * d
	}
	return s
}

func sqdist32Partial(a, b []float32, limit float64) (float64, bool) {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := float64(a[t]) - float64(b[t])
		d1 := float64(a[t+1]) - float64(b[t+1])
		d2 := float64(a[t+2]) - float64(b[t+2])
		d3 := float64(a[t+3]) - float64(b[t+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if s := (s0 + s2) + (s1 + s3); s > limit {
			return s, false
		}
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(a); t++ {
		d := float64(a[t]) - float64(b[t])
		s += d * d
		if s > limit {
			return s, false
		}
	}
	return s, true
}

func sqdistMixedGo(q []float64, b []float32) float64 {
	b = b[:len(q)]
	var s0, s1, s2, s3 float64
	n := len(q) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := q[t] - float64(b[t])
		d1 := q[t+1] - float64(b[t+1])
		d2 := q[t+2] - float64(b[t+2])
		d3 := q[t+3] - float64(b[t+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(q); t++ {
		d := q[t] - float64(b[t])
		s += d * d
	}
	return s
}

func sqdistMixedPartial(q []float64, b []float32, limit float64) (float64, bool) {
	b = b[:len(q)]
	var s0, s1, s2, s3 float64
	n := len(q) &^ 3
	for t := 0; t < n; t += 4 {
		d0 := q[t] - float64(b[t])
		d1 := q[t+1] - float64(b[t+1])
		d2 := q[t+2] - float64(b[t+2])
		d3 := q[t+3] - float64(b[t+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		if s := (s0 + s2) + (s1 + s3); s > limit {
			return s, false
		}
	}
	s := (s0 + s2) + (s1 + s3)
	for t := n; t < len(q); t++ {
		d := q[t] - float64(b[t])
		s += d * d
		if s > limit {
			return s, false
		}
	}
	return s, true
}
