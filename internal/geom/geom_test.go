package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1}, Point{1}, 0},
		{Point{-1, -1}, Point{1, 1}, 2 * math.Sqrt2},
		{Point{0, 0, 0, 0}, Point{1, 1, 1, 1}, 2},
	}
	for _, tt := range tests {
		if got := Dist(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSqDistPartial(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{1, 1, 1}
	if s, ok := SqDistPartial(a, b, 3); !ok || s != 3 {
		t.Errorf("SqDistPartial within limit: got (%v,%v), want (3,true)", s, ok)
	}
	if _, ok := SqDistPartial(a, b, 2.9); ok {
		t.Errorf("SqDistPartial should abandon when sum exceeds limit")
	}
	// Early abandon must never claim in-range for an out-of-range pair.
	if _, ok := SqDistPartial(Point{0, 0}, Point{10, 0}, 99); ok {
		t.Errorf("SqDistPartial accepted out-of-range pair")
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return Dist(a, b) == Dist(b, a) && Dist(a, a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		d := 1 + rng.Intn(6)
		a, b, c := randPt(rng, d), randPt(rng, d), randPt(rng, d)
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: a=%v b=%v c=%v", a, b, c)
		}
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
			return true
		}
	}
	return false
}

func randPt(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()*200 - 100
	}
	return p
}

func TestRectContains(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{10, 10})
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("Contains should be inclusive")
	}
	if r.Contains(Point{10.001, 5}) || r.Contains(Point{-0.1, 5}) {
		t.Error("Contains accepted an outside point")
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{5, 5})
	tests := []struct {
		b    Rect
		want bool
	}{
		{NewRect(Point{4, 4}, Point{9, 9}), true},
		{NewRect(Point{5, 5}, Point{9, 9}), true}, // touching counts
		{NewRect(Point{6, 6}, Point{9, 9}), false},
		{NewRect(Point{6, 0}, Point{9, 5}), false},
		{NewRect(Point{1, 1}, Point{2, 2}), true}, // contained
	}
	for i, tt := range tests {
		if got := a.Intersects(tt.b); got != tt.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, tt.want)
		}
		if got := tt.b.Intersects(a); got != tt.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestRectExpand(t *testing.T) {
	r := EmptyRect(2)
	r.Expand(Point{3, 4})
	r.Expand(Point{-1, 10})
	want := NewRect(Point{-1, 4}, Point{3, 10})
	if !Equal(r.Lo, want.Lo) || !Equal(r.Up, want.Up) {
		t.Errorf("Expand = %v, want %v", r, want)
	}
	var s Rect = EmptyRect(2)
	s.ExpandRect(r)
	if !Equal(s.Lo, want.Lo) || !Equal(s.Up, want.Up) {
		t.Errorf("ExpandRect = %v, want %v", s, want)
	}
}

func TestSqMinMaxDist(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 2})
	tests := []struct {
		p        Point
		min, max float64
	}{
		{Point{1, 1}, 0, 2},  // inside: max to a corner sqrt(1+1)
		{Point{3, 1}, 1, 10}, // right of the box: min 1, max to (0,0)or(0,2): 9+1
		{Point{-1, -1}, 2, 18},
	}
	for i, tt := range tests {
		if got := r.SqMinDist(tt.p); math.Abs(got-tt.min) > 1e-12 {
			t.Errorf("case %d: SqMinDist = %v, want %v", i, got, tt.min)
		}
		if got := r.SqMaxDist(tt.p); math.Abs(got-tt.max) > 1e-12 {
			t.Errorf("case %d: SqMaxDist = %v, want %v", i, got, tt.max)
		}
	}
}

func TestSqMinDistBoundsProperty(t *testing.T) {
	// For random rects and points, every point inside the rect must be at
	// least SqMinDist and at most SqMaxDist away from the query.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		d := 1 + rng.Intn(5)
		a, b := randPt(rng, d), randPt(rng, d)
		r := EmptyRect(d)
		r.Expand(a)
		r.Expand(b)
		q := randPt(rng, d)
		// Random point inside the rect.
		in := make(Point, d)
		for j := 0; j < d; j++ {
			in[j] = r.Lo[j] + rng.Float64()*(r.Up[j]-r.Lo[j])
		}
		sq := SqDist(q, in)
		if sq < r.SqMinDist(q)-1e-9 {
			t.Fatalf("SqMinDist too large: %v > %v", r.SqMinDist(q), sq)
		}
		if sq > r.SqMaxDist(q)+1e-9 {
			t.Fatalf("SqMaxDist too small: %v < %v", r.SqMaxDist(q), sq)
		}
	}
}

func TestRectAreaMargin(t *testing.T) {
	r := NewRect(Point{0, 0, 0}, Point{2, 3, 4})
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %v, want 24", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %v, want 9", got)
	}
	if got := EmptyRect(3).Area(); got != 0 {
		t.Errorf("empty Area = %v, want 0", got)
	}
}

func TestBounds(t *testing.T) {
	pts := []Point{{1, 2}, {-3, 8}, {5, 0}}
	r := Bounds(pts)
	if !Equal(r.Lo, Point{-3, 0}) || !Equal(r.Up, Point{5, 8}) {
		t.Errorf("Bounds = %v", r)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("Bounds does not contain %v", p)
		}
	}
}

func TestValidateDataset(t *testing.T) {
	if _, err := ValidateDataset(nil); err == nil {
		t.Error("empty dataset should fail")
	}
	if _, err := ValidateDataset([]Point{{1, 2}, {3}}); err == nil {
		t.Error("ragged dataset should fail")
	}
	if _, err := ValidateDataset([]Point{{1, math.NaN()}}); err == nil {
		t.Error("NaN should fail")
	}
	if _, err := ValidateDataset([]Point{{1, math.Inf(1)}}); err == nil {
		t.Error("Inf should fail")
	}
	if d, err := ValidateDataset([]Point{{1, 2, 3}, {4, 5, 6}}); err != nil || d != 3 {
		t.Errorf("valid dataset: got (%d,%v)", d, err)
	}
	if _, err := ValidateDataset([]Point{{}}); err == nil {
		t.Error("zero-dimensional dataset should fail")
	}
}

func TestCenterClone(t *testing.T) {
	r := NewRect(Point{0, 2}, Point{4, 8})
	if c := r.Center(); !Equal(c, Point{2, 5}) {
		t.Errorf("Center = %v", c)
	}
	p := Point{1, 2}
	q := Clone(p)
	q[0] = 9
	if p[0] != 1 {
		t.Error("Clone aliases its input")
	}
}

func TestContainsRect(t *testing.T) {
	outer := NewRect(Point{0, 0}, Point{10, 10})
	if !outer.ContainsRect(NewRect(Point{1, 1}, Point{9, 9})) {
		t.Error("inner rect should be contained")
	}
	if outer.ContainsRect(NewRect(Point{1, 1}, Point{11, 9})) {
		t.Error("overflowing rect should not be contained")
	}
}
