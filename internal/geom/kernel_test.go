package geom

import (
	"math"
	"math/rand"
	"testing"
)

// randDataset builds an n×dim f64 dataset with coordinates spanning
// several orders of magnitude so accumulation order actually matters —
// uniform [0,1) data can mask order-dependent rounding.
func randDataset(t *testing.T, n, dim int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, n*dim)
	for i := range coords {
		coords[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
	}
	return NewDataset(coords, dim)
}

func randDataset32(t *testing.T, n, dim int, seed int64) *Dataset {
	t.Helper()
	return randDataset(t, n, dim, seed).ToFloat32()
}

// TestKernelAsmMatchesGo locks the tentpole contract: the dispatched
// kernel (AVX2 assembly where available) and the pure-Go canonical
// kernel return identical bits for every dimension, on both precisions,
// including the mixed query×row form. On builds without assembly both
// legs run the same code and the test is a tautology — the CI noasm leg
// still runs it so the fallback cannot rot.
func TestKernelAsmMatchesGo(t *testing.T) {
	if !SIMDEnabled() {
		t.Log("SIMD not available on this build/CPU; comparing Go against itself")
	}
	for dim := 1; dim <= 67; dim++ {
		ds := randDataset(t, 8, dim, int64(1000+dim))
		ds32 := randDataset32(t, 8, dim, int64(2000+dim))
		for i := int32(0); i < 8; i++ {
			for j := int32(0); j < 8; j++ {
				got := SqDistIdx(ds, i, j)
				want := sqdist64Go(ds.row64(i), ds.row64(j))
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("dim %d f64 (%d,%d): asm %v != go %v", dim, i, j, got, want)
				}
				got32 := SqDistIdx(ds32, i, j)
				want32 := sqdist32Go(ds32.row32(i), ds32.row32(j))
				if math.Float64bits(got32) != math.Float64bits(want32) {
					t.Fatalf("dim %d f32 (%d,%d): asm %v != go %v", dim, i, j, got32, want32)
				}
				q := ds32.At(int(i))
				gotm := SqDistToIdx(ds32, q, j)
				wantm := sqdistMixedGo(q, ds32.row32(j))
				if math.Float64bits(gotm) != math.Float64bits(wantm) {
					t.Fatalf("dim %d mixed (%d,%d): asm %v != go %v", dim, i, j, gotm, wantm)
				}
				// Widening the f32 row first and running the f64 kernel
				// must agree with the direct f32 kernel: float32→float64
				// is exact, so the same canonical order sums the same
				// values.
				wide := sqdist64Go(ds32.At(int(i)), ds32.At(int(j)))
				if math.Float64bits(got32) != math.Float64bits(wide) {
					t.Fatalf("dim %d f32-vs-widened (%d,%d): %v != %v", dim, i, j, got32, wide)
				}
				if math.Float64bits(gotm) != math.Float64bits(got32) {
					t.Fatalf("dim %d mixed-vs-f32 (%d,%d): %v != %v", dim, i, j, gotm, got32)
				}
			}
		}
	}
}

// TestKernelSetSIMDToggle proves SetSIMD changes speed, never results:
// with the assembly forced off, every kernel returns the same bits it
// returned dispatched.
func TestKernelSetSIMDToggle(t *testing.T) {
	ds := randDataset(t, 16, 33, 42)
	type pair struct{ i, j int32 }
	pairs := []pair{{0, 1}, {2, 15}, {7, 7}, {14, 3}}
	on := make([]float64, len(pairs))
	for k, p := range pairs {
		on[k] = SqDistIdx(ds, p.i, p.j)
	}
	prev := SetSIMD(false)
	defer SetSIMD(prev)
	if SIMDEnabled() {
		t.Fatal("SIMDEnabled true after SetSIMD(false)")
	}
	for k, p := range pairs {
		off := SqDistIdx(ds, p.i, p.j)
		if math.Float64bits(on[k]) != math.Float64bits(off) {
			t.Fatalf("pair %v: simd %v != scalar %v", p, on[k], off)
		}
	}
	SetSIMD(prev)
	if SIMDEnabled() != prev {
		t.Fatalf("SetSIMD did not restore previous state %v", prev)
	}
}

// TestKernelPartialConsistency checks the early-exit contract on both
// precisions: a completed partial returns the full canonical sum
// bit-for-bit, and an early exit fires only when the full sum genuinely
// exceeds the limit.
func TestKernelPartialConsistency(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		for dim := 1; dim <= 19; dim++ {
			var ds *Dataset
			if f32 {
				ds = randDataset32(t, 8, dim, int64(3000+dim))
			} else {
				ds = randDataset(t, 8, dim, int64(3000+dim))
			}
			for i := int32(0); i < 8; i++ {
				for j := int32(0); j < 8; j++ {
					full := SqDistIdx(ds, i, j)
					for _, limit := range []float64{0, full * 0.5, full, full * 2, math.Inf(1)} {
						s, ok := SqDistIdxPartial(ds, i, j, limit)
						if ok {
							if full > limit {
								t.Fatalf("f32=%v dim %d: partial completed at limit %v but full is %v", f32, dim, limit, full)
							}
							if math.Float64bits(s) != math.Float64bits(full) {
								t.Fatalf("f32=%v dim %d: completed partial %v != full %v", f32, dim, s, full)
							}
						} else if full <= limit {
							t.Fatalf("f32=%v dim %d: early exit at limit %v though full %v fits", f32, dim, limit, full)
						}
						q := ds.At(int(i))
						s2, ok2 := SqDistToIdxPartial(ds, q, j, limit)
						if ok != ok2 || (ok && math.Float64bits(s) != math.Float64bits(s2)) {
							t.Fatalf("f32=%v dim %d: SqDistToIdxPartial (%v,%v) disagrees with SqDistIdxPartial (%v,%v)",
								f32, dim, s2, ok2, s, ok)
						}
					}
				}
			}
		}
	}
}

// TestKernelPointForms checks SqDist/SqDistPartial (the Point forms)
// agree with the Idx kernels, and DistIdx is the square root.
func TestKernelPointForms(t *testing.T) {
	ds := randDataset(t, 6, 23, 7)
	for i := int32(0); i < 6; i++ {
		for j := int32(0); j < 6; j++ {
			idx := SqDistIdx(ds, i, j)
			pt := SqDist(ds.At(int(i)), ds.At(int(j)))
			if math.Float64bits(idx) != math.Float64bits(pt) {
				t.Fatalf("(%d,%d): SqDistIdx %v != SqDist %v", i, j, idx, pt)
			}
			if d := DistIdx(ds, i, j); math.Float64bits(d) != math.Float64bits(math.Sqrt(idx)) {
				t.Fatalf("(%d,%d): DistIdx %v != sqrt %v", i, j, d, math.Sqrt(idx))
			}
			to := SqDistToIdx(ds, ds.At(int(i)), j)
			if math.Float64bits(idx) != math.Float64bits(to) {
				t.Fatalf("(%d,%d): SqDistToIdx %v != SqDistIdx %v", i, j, to, idx)
			}
		}
	}
}

// TestKernelScalarBaselineClose sanity-checks the retained sequential
// baseline: not bit-equal (different order) but within a few ulps of
// the canonical kernel for well-conditioned data.
func TestKernelScalarBaselineClose(t *testing.T) {
	ds := randDataset(t, 4, 48, 11)
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			a, b := SqDistIdx(ds, i, j), SqDistIdxScalar(ds, i, j)
			if a == 0 && b == 0 {
				continue
			}
			if rel := math.Abs(a-b) / math.Max(a, b); rel > 1e-12 {
				t.Fatalf("(%d,%d): canonical %v vs scalar %v differ rel %g", i, j, a, b, rel)
			}
		}
	}
}

func TestDatasetPrecision(t *testing.T) {
	ds := randDataset(t, 5, 3, 99)
	if ds.Precision() != "f64" || ds.Float32() {
		t.Fatalf("f64 dataset reports %q/%v", ds.Precision(), ds.Float32())
	}
	ds32 := ds.ToFloat32()
	if ds32.Precision() != "f32" || !ds32.Float32() {
		t.Fatalf("f32 dataset reports %q/%v", ds32.Precision(), ds32.Float32())
	}
	if ds32.ToFloat32() != ds32 || ds.ToFloat64() != ds {
		t.Fatal("precision conversion to the same precision should return the receiver")
	}
	if err := ds32.Validate(); err != nil {
		t.Fatalf("f32 Validate: %v", err)
	}
	back := ds32.ToFloat64()
	for i := 0; i < ds.N; i++ {
		for j := 0; j < ds.Dim; j++ {
			if float64(float32(ds.Coord(int32(i), j))) != back.Coord(int32(i), j) {
				t.Fatalf("round-trip coord (%d,%d) mismatch", i, j)
			}
		}
	}
	if ds.Fingerprint() == ds32.Fingerprint() {
		t.Fatal("f32 and f64 datasets should not share a fingerprint")
	}
	sel := ds32.Select([]int32{2, 0})
	if !sel.Float32() || sel.N != 2 || sel.Coord(0, 1) != ds32.Coord(2, 1) {
		t.Fatal("Select on f32 dataset lost precision or order")
	}
	// AtBuf must reuse the buffer on f32 and alias the backing on f64.
	buf := make(Point, ds32.Dim)
	row := ds32.AtBuf(3, buf)
	if &row[0] != &buf[0] {
		t.Fatal("AtBuf on f32 did not use the caller's buffer")
	}
	row64 := ds.AtBuf(3, buf)
	if &row64[0] != &ds.Coords[3*ds.Dim] {
		t.Fatal("AtBuf on f64 did not return the zero-copy view")
	}
}
