//go:build amd64 && !noasm

package geom

// simdSupported is fixed at init: true when the CPU can run the AVX2
// kernels in simd_amd64.s. useSIMD is the live dispatch switch —
// starts at simdSupported, flipped by SetSIMD for benchmarks/tests.
var (
	simdSupported = detectAVX2()
	useSIMD       = simdSupported
)

// detectAVX2 reports AVX2 usability: the feature bit alone is not
// enough — the OS must have enabled saving the ymm state (OSXSAVE set
// and XCR0 covering SSE+AVX), or executing a VEX-256 instruction
// faults.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	if xcr0&6 != 6 { // XMM and YMM state enabled by the OS
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}

// The dispatchers sit between the exported kernels and the two
// implementations. The assembly needs at least one full 4-lane chunk to
// beat the call overhead; below that the pure-Go tail loop is the same
// code either way. The len(b) guard keeps a mismatched pair on the Go
// path, which bounds-checks and panics instead of reading out of range.

func sqdist64(a, b []float64) float64 {
	if useSIMD && len(a) >= 4 && len(b) >= len(a) {
		return sqdist64AVX2(a, b)
	}
	return sqdist64Go(a, b)
}

func sqdist32(a, b []float32) float64 {
	if useSIMD && len(a) >= 4 && len(b) >= len(a) {
		return sqdist32AVX2(a, b)
	}
	return sqdist32Go(a, b)
}

func sqdistMixed(q []float64, b []float32) float64 {
	if useSIMD && len(q) >= 4 && len(b) >= len(q) {
		return sqdistMixedAVX2(q, b)
	}
	return sqdistMixedGo(q, b)
}

//go:noescape
func sqdist64AVX2(a, b []float64) float64

//go:noescape
func sqdist32AVX2(a, b []float32) float64

//go:noescape
func sqdistMixedAVX2(q []float64, b []float32) float64

//go:noescape
func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)
