//go:build !noasm

#include "textflag.h"

// The three squared-distance kernels below implement, instruction for
// instruction, the canonical accumulation order defined by the pure-Go
// kernels in kernel.go: four float64 lanes over dimension chunks of 4,
// reduced as (s0+s2)+(s1+s3), then a sequential scalar tail. No FMA —
// a fused multiply-add rounds once where the Go code rounds twice, and
// the whole point is bit-identity with the fallback.

// func sqdist64AVX2(a, b []float64) float64
TEXT ·sqdist64AVX2(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VXORPD Y0, Y0, Y0     // Y0 = (s0, s1, s2, s3)
	MOVQ   CX, DX
	SHRQ   $2, DX         // DX = number of 4-lane chunks
	JZ     reduce64

loop64:
	VMOVUPD (SI), Y1
	VMOVUPD (DI), Y2
	VSUBPD  Y2, Y1, Y1    // Y1 = a - b
	VMULPD  Y1, Y1, Y1    // Y1 = d*d
	VADDPD  Y1, Y0, Y0    // lane k: sk += dk*dk
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     loop64

reduce64:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0 // X0 = (s0+s2, s1+s3)
	VHADDPD      X0, X0, X0 // X0[0] = (s0+s2)+(s1+s3)
	ANDQ         $3, CX     // CX = tail length
	JZ           done64

tail64:
	VMOVSD (SI), X1
	VMOVSD (DI), X2
	VSUBSD X2, X1, X1
	VMULSD X1, X1, X1
	VADDSD X1, X0, X0
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    tail64

done64:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func sqdist32AVX2(a, b []float32) float64
//
// Same order as sqdist64AVX2; each 4-float group is widened to four
// doubles with VCVTPS2PD (exact — float32 embeds in float64) before the
// identical subtract/multiply/accumulate.
TEXT ·sqdist32AVX2(SB), NOSPLIT, $0-56
	MOVQ   a_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   a_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     reduce32

loop32:
	VCVTPS2PD (SI), Y1
	VCVTPS2PD (DI), Y2
	VSUBPD    Y2, Y1, Y1
	VMULPD    Y1, Y1, Y1
	VADDPD    Y1, Y0, Y0
	ADDQ      $16, SI
	ADDQ      $16, DI
	DECQ      DX
	JNZ       loop32

reduce32:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	ANDQ         $3, CX
	JZ           done32

tail32:
	VCVTSS2SD (SI), X1, X1
	VCVTSS2SD (DI), X2, X2
	VSUBSD    X2, X1, X1
	VMULSD    X1, X1, X1
	VADDSD    X1, X0, X0
	ADDQ      $4, SI
	ADDQ      $4, DI
	DECQ      CX
	JNZ       tail32

done32:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func sqdistMixedAVX2(q []float64, b []float32) float64
//
// float64 query against a float32 dataset row: the row side is widened
// per group, the query side loads directly.
TEXT ·sqdistMixedAVX2(SB), NOSPLIT, $0-56
	MOVQ   q_base+0(FP), SI
	MOVQ   b_base+24(FP), DI
	MOVQ   q_len+8(FP), CX
	VXORPD Y0, Y0, Y0
	MOVQ   CX, DX
	SHRQ   $2, DX
	JZ     reducem

loopm:
	VMOVUPD   (SI), Y1
	VCVTPS2PD (DI), Y2
	VSUBPD    Y2, Y1, Y1
	VMULPD    Y1, Y1, Y1
	VADDPD    Y1, Y0, Y0
	ADDQ      $32, SI
	ADDQ      $16, DI
	DECQ      DX
	JNZ       loopm

reducem:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VHADDPD      X0, X0, X0
	ANDQ         $3, CX
	JZ           donem

tailm:
	VMOVSD    (SI), X1
	VCVTSS2SD (DI), X2, X2
	VSUBSD    X2, X1, X1
	VMULSD    X1, X1, X1
	VADDSD    X1, X0, X0
	ADDQ      $8, SI
	ADDQ      $4, DI
	DECQ      CX
	JNZ       tailm

donem:
	VZEROUPPER
	MOVSD X0, ret+48(FP)
	RET

// func cpuidAsm(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL  leaf+0(FP), AX
	MOVL  sub+4(FP), CX
	CPUID
	MOVL  AX, eax+8(FP)
	MOVL  BX, ebx+12(FP)
	MOVL  CX, ecx+16(FP)
	MOVL  DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
//
// Reads XCR0. Only called after CPUID has confirmed OSXSAVE, so the
// instruction cannot fault.
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL  CX, CX
	XGETBV
	MOVL  AX, eax+0(FP)
	MOVL  DX, edx+4(FP)
	RET
