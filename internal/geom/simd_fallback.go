//go:build !amd64 || noasm

package geom

// No assembly on this build: the canonical pure-Go kernels are the only
// implementation, so useSIMD stays false and SetSIMD(true) is refused.
var (
	simdSupported = false
	useSIMD       = false
)

func sqdist64(a, b []float64) float64 { return sqdist64Go(a, b) }

func sqdist32(a, b []float32) float64 { return sqdist32Go(a, b) }

func sqdistMixed(q []float64, b []float32) float64 { return sqdistMixedGo(q, b) }
