// Package geom provides the small vector-geometry kernel shared by every
// spatial index and clustering algorithm in this repository: points,
// Euclidean distances, axis-aligned rectangles, and point↔rectangle
// distance bounds.
//
// Points are plain []float64 slices so that callers can store datasets as
// [][]float64 without conversion. All functions assume (and the indexes
// verify at construction) that every point in a dataset has the same
// dimensionality.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in R^d.
type Point = []float64

// Dist returns the Euclidean distance between a and b.
func Dist(a, b Point) float64 {
	return math.Sqrt(SqDist(a, b))
}

// SqDist and SqDistPartial live in kernel.go with the rest of the
// distance kernels; they share the canonical accumulation order with
// the AVX2 assembly.

// Equal reports whether a and b are the same location.
func Equal(a, b Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of p.
func Clone(p Point) Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Rect is an axis-aligned rectangle (hyper-box) given by its lower and
// upper corners. A Rect with Lo[i] > Up[i] in any dimension is empty.
type Rect struct {
	Lo, Up Point
}

// NewRect returns a rectangle spanning the given corners. It panics if the
// corners disagree in dimensionality, because that is always a programming
// error in this codebase.
func NewRect(lo, up Point) Rect {
	if len(lo) != len(up) {
		panic(fmt.Sprintf("geom: rect corners of different dimensions %d and %d", len(lo), len(up)))
	}
	return Rect{Lo: Clone(lo), Up: Clone(up)}
}

// EmptyRect returns the identity element for ExpandRect in d dimensions:
// every coordinate interval is inverted (+Inf, -Inf).
func EmptyRect(d int) Rect {
	lo := make(Point, d)
	up := make(Point, d)
	for i := 0; i < d; i++ {
		lo[i] = math.Inf(1)
		up[i] = math.Inf(-1)
	}
	return Rect{Lo: lo, Up: up}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Contains reports whether p lies inside r (inclusive on both sides).
func (r Rect) Contains(p Point) bool {
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Up[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Up[i] > r.Up[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share any point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Up[i] || r.Up[i] < s.Lo[i] {
			return false
		}
	}
	return true
}

// Expand grows r in place so that it contains p.
func (r *Rect) Expand(p Point) {
	for i := range p {
		if p[i] < r.Lo[i] {
			r.Lo[i] = p[i]
		}
		if p[i] > r.Up[i] {
			r.Up[i] = p[i]
		}
	}
}

// ExpandRect grows r in place so that it contains s.
func (r *Rect) ExpandRect(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Up[i] > r.Up[i] {
			r.Up[i] = s.Up[i]
		}
	}
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range c {
		c[i] = (r.Lo[i] + r.Up[i]) / 2
	}
	return c
}

// Margin returns the sum of edge lengths (used by R-tree split heuristics).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Up[i] - r.Lo[i]
	}
	return m
}

// Area returns the d-dimensional volume of r. An empty rect has area 0.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		e := r.Up[i] - r.Lo[i]
		if e < 0 {
			return 0
		}
		a *= e
	}
	return a
}

// SqMinDist returns the squared minimum distance from p to any point of r
// (0 when p is inside r). This is the pruning bound used by kd-tree and
// R-tree ball queries.
func (r Rect) SqMinDist(p Point) float64 {
	var s float64
	for i := range p {
		switch {
		case p[i] < r.Lo[i]:
			d := r.Lo[i] - p[i]
			s += d * d
		case p[i] > r.Up[i]:
			d := p[i] - r.Up[i]
			s += d * d
		}
	}
	return s
}

// SqMaxDist returns the squared maximum distance from p to any point of r.
// When SqMaxDist < radius^2 an entire subtree can be accepted without
// per-point checks during range counting.
func (r Rect) SqMaxDist(p Point) float64 {
	var s float64
	for i := range p {
		lo := p[i] - r.Lo[i]
		up := r.Up[i] - p[i]
		d := math.Max(math.Abs(lo), math.Abs(up))
		s += d * d
	}
	return s
}

// Bounds returns the minimum bounding rectangle of pts.
// It panics when pts is empty.
func Bounds(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: Bounds of empty point set")
	}
	r := EmptyRect(len(pts[0]))
	for _, p := range pts {
		r.Expand(p)
	}
	return r
}

// ValidateDataset checks that all points share one dimensionality d >= 1
// and contain no NaN or Inf coordinates, returning d.
func ValidateDataset(pts []Point) (int, error) {
	if len(pts) == 0 {
		return 0, fmt.Errorf("geom: empty dataset")
	}
	d := len(pts[0])
	if d == 0 {
		return 0, fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	for i, p := range pts {
		if len(p) != d {
			return 0, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), d)
		}
		for j, x := range p {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0, fmt.Errorf("geom: point %d coordinate %d is %v", i, j, x)
			}
		}
	}
	return d, nil
}
