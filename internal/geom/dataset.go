package geom

import (
	"fmt"
	"math"
)

// Dataset is a flat, row-major point set: point i occupies
// Coords[i*Dim : (i+1)*Dim]. One contiguous backing array replaces the
// [][]float64 representation on every hot path, so the inner distance
// loops of the clustering algorithms stream over contiguous memory
// instead of chasing a pointer per point — the cache-conscious layout
// the paper's multicore speedups assume.
//
// The zero value is an empty dataset. Construct with NewDataset over an
// existing flat buffer (zero copy) or FromRows over row slices (one
// copy). Mutating Coords after handing the Dataset to an index is the
// caller's responsibility, exactly as it was for shared [][]float64.
type Dataset struct {
	// Coords is the row-major backing array; len(Coords) == N*Dim.
	Coords []float64
	// N is the number of points.
	N int
	// Dim is the dimensionality of every point.
	Dim int
}

// NewDataset wraps an existing flat buffer without copying. It panics
// when dim < 1 or len(coords) is not a multiple of dim, because that is
// always a programming error in this codebase.
func NewDataset(coords []float64, dim int) *Dataset {
	if dim < 1 {
		panic(fmt.Sprintf("geom: NewDataset with dim %d", dim))
	}
	if len(coords)%dim != 0 {
		panic(fmt.Sprintf("geom: NewDataset with %d coords not divisible by dim %d", len(coords), dim))
	}
	return &Dataset{Coords: coords, N: len(coords) / dim, Dim: dim}
}

// PackRows copies row-slice points into a fresh flat Dataset, checking
// only the shape (non-empty, rectangular, d >= 1). Callers that need the
// NaN/Inf guarantee use FromRows, or run Validate once on the result —
// the split lets the clustering entry points avoid scanning the
// coordinates twice.
func PackRows(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("geom: empty dataset")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	coords := make([]float64, 0, len(rows)*d)
	for i, p := range rows {
		if len(p) != d {
			return nil, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), d)
		}
		coords = append(coords, p...)
	}
	return &Dataset{Coords: coords, N: len(rows), Dim: d}, nil
}

// FromRows copies row-slice points into a fresh flat Dataset — the one
// copy the public [][]float64 API pays to enter the flat representation.
// It validates the rows like ValidateDataset (rectangular, d >= 1, no
// NaN/Inf).
func FromRows(rows [][]float64) (*Dataset, error) {
	ds, err := PackRows(rows)
	if err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// MustFromRows is FromRows for callers with known-good data (tests,
// generators); it panics on invalid input.
func MustFromRows(rows [][]float64) *Dataset {
	ds, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return ds
}

// At returns point i as a zero-copy subslice of the backing array. The
// capacity is clipped to Dim so an append through the returned slice can
// never bleed into the next point.
func (ds *Dataset) At(i int) Point {
	o := i * ds.Dim
	return ds.Coords[o : o+ds.Dim : o+ds.Dim]
}

// Len returns the number of points.
func (ds *Dataset) Len() int { return ds.N }

// Coord returns coordinate j of point i straight from the flat buffer —
// the single place that knows the row-major indexing arithmetic.
func (ds *Dataset) Coord(i int32, j int) float64 {
	return ds.Coords[int(i)*ds.Dim+j]
}

// Rows returns zero-copy row headers over the backing array: Rows()[i]
// aliases the same memory as At(i). It exists for row-oriented consumers
// (rendering, CSV emit) at the edge of the system; algorithms should stay
// on the flat representation.
func (ds *Dataset) Rows() [][]float64 {
	rows := make([][]float64, ds.N)
	for i := range rows {
		rows[i] = ds.At(i)
	}
	return rows
}

// Select gather-copies the given point indices into a new compact
// Dataset, preserving order. Used when an algorithm re-indexes a subset
// of points into its own dense id space.
func (ds *Dataset) Select(ids []int32) *Dataset {
	coords := make([]float64, 0, len(ids)*ds.Dim)
	for _, id := range ids {
		coords = append(coords, ds.At(int(id))...)
	}
	return &Dataset{Coords: coords, N: len(ids), Dim: ds.Dim}
}

// Validate checks that the dataset is non-empty, at least 1-dimensional,
// and free of NaN/Inf coordinates — the flat counterpart of
// ValidateDataset.
func (ds *Dataset) Validate() error {
	if ds.N == 0 {
		return fmt.Errorf("geom: empty dataset")
	}
	if ds.Dim == 0 {
		return fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	if len(ds.Coords) != ds.N*ds.Dim {
		return fmt.Errorf("geom: dataset has %d coords, want %d (N=%d, Dim=%d)", len(ds.Coords), ds.N*ds.Dim, ds.N, ds.Dim)
	}
	for o, x := range ds.Coords {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("geom: point %d coordinate %d is %v", o/ds.Dim, o%ds.Dim, x)
		}
	}
	return nil
}

// Bounds returns the minimum bounding rectangle of the dataset.
// It panics when the dataset is empty.
func (ds *Dataset) Bounds() Rect {
	if ds.N == 0 {
		panic("geom: Bounds of empty point set")
	}
	r := EmptyRect(ds.Dim)
	for i := 0; i < ds.N; i++ {
		r.Expand(ds.At(i))
	}
	return r
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's shape and
// the exact bit patterns of its coordinates. Two datasets fingerprint
// equally iff they are bit-identical, so the persistence layer uses it
// to pair a model snapshot with the dataset it was fitted on and to
// detect a preloaded dataset that matches a restored one.
func (ds *Dataset) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	mix(uint64(ds.N))
	mix(uint64(ds.Dim))
	for _, x := range ds.Coords {
		mix(math.Float64bits(x))
	}
	return h
}

// SqDistIdx returns the squared Euclidean distance between points i and
// j of the dataset — the flat-index twin of SqDist, and the innermost
// kernel of every algorithm here.
func SqDistIdx(ds *Dataset, i, j int32) float64 {
	d := ds.Dim
	a := ds.Coords[int(i)*d : int(i)*d+d]
	b := ds.Coords[int(j)*d : int(j)*d+d]
	var s float64
	for t := range a {
		v := a[t] - b[t]
		s += v * v
	}
	return s
}

// DistIdx returns the Euclidean distance between points i and j.
func DistIdx(ds *Dataset, i, j int32) float64 {
	return math.Sqrt(SqDistIdx(ds, i, j))
}

// SqDistIdxPartial is the flat-index twin of SqDistPartial: it abandons
// the sum as soon as it exceeds limit, returning (sum, false); when the
// full squared distance is at most limit it returns (sum, true).
func SqDistIdxPartial(ds *Dataset, i, j int32, limit float64) (float64, bool) {
	d := ds.Dim
	a := ds.Coords[int(i)*d : int(i)*d+d]
	b := ds.Coords[int(j)*d : int(j)*d+d]
	var s float64
	for t := range a {
		v := a[t] - b[t]
		s += v * v
		if s > limit {
			return s, false
		}
	}
	return s, true
}
