package geom

import (
	"fmt"
	"math"
)

// Dataset is a flat, row-major point set: point i occupies
// Coords[i*Dim : (i+1)*Dim]. One contiguous backing array replaces the
// [][]float64 representation on every hot path, so the inner distance
// loops of the clustering algorithms stream over contiguous memory
// instead of chasing a pointer per point — the cache-conscious layout
// the paper's multicore speedups assume.
//
// The zero value is an empty dataset. Construct with NewDataset over an
// existing flat buffer (zero copy) or FromRows over row slices (one
// copy). Mutating Coords after handing the Dataset to an index is the
// caller's responsibility, exactly as it was for shared [][]float64.
//
// A dataset stores its coordinates at one of two precisions. The
// default is float64 in Coords. The opt-in float32 mode (NewDataset32,
// ToFloat32) stores them in Coords32 instead — halving memory and
// bandwidth for embedding-like workloads — and leaves Coords nil; the
// distance kernels read the f32 rows directly, widening each element to
// float64 exactly, so all derived quantities stay float64. Exactly one
// of Coords/Coords32 is non-nil on a non-empty dataset.
type Dataset struct {
	// Coords is the float64 row-major backing array; len(Coords) ==
	// N*Dim. Nil when the dataset is stored at float32 precision.
	Coords []float64
	// Coords32 is the float32 backing array of an f32-precision
	// dataset; len(Coords32) == N*Dim. Nil in the default f64 mode.
	Coords32 []float32
	// N is the number of points.
	N int
	// Dim is the dimensionality of every point.
	Dim int
}

// NewDataset wraps an existing flat buffer without copying. It panics
// when dim < 1 or len(coords) is not a multiple of dim, because that is
// always a programming error in this codebase.
func NewDataset(coords []float64, dim int) *Dataset {
	if dim < 1 {
		panic(fmt.Sprintf("geom: NewDataset with dim %d", dim))
	}
	if len(coords)%dim != 0 {
		panic(fmt.Sprintf("geom: NewDataset with %d coords not divisible by dim %d", len(coords), dim))
	}
	return &Dataset{Coords: coords, N: len(coords) / dim, Dim: dim}
}

// NewDataset32 wraps an existing flat float32 buffer without copying —
// the f32-precision counterpart of NewDataset.
func NewDataset32(coords []float32, dim int) *Dataset {
	if dim < 1 {
		panic(fmt.Sprintf("geom: NewDataset32 with dim %d", dim))
	}
	if len(coords)%dim != 0 {
		panic(fmt.Sprintf("geom: NewDataset32 with %d coords not divisible by dim %d", len(coords), dim))
	}
	return &Dataset{Coords32: coords, N: len(coords) / dim, Dim: dim}
}

// Float32 reports whether the dataset stores its coordinates at float32
// precision.
func (ds *Dataset) Float32() bool { return ds.Coords32 != nil }

// Precision returns the dataset's storage precision as the API-facing
// string: "f32" or "f64".
func (ds *Dataset) Precision() string {
	if ds.Coords32 != nil {
		return "f32"
	}
	return "f64"
}

// ToFloat32 returns an f32-precision copy of the dataset, narrowing
// each coordinate with float32(x) (round to nearest). The receiver is
// returned unchanged when already f32. Narrowing is lossy; it is the
// explicit opt-in the upload ?precision=f32 parameter performs.
func (ds *Dataset) ToFloat32() *Dataset {
	if ds.Coords32 != nil {
		return ds
	}
	coords := make([]float32, len(ds.Coords))
	for i, x := range ds.Coords {
		coords[i] = float32(x)
	}
	return &Dataset{Coords32: coords, N: ds.N, Dim: ds.Dim}
}

// ToFloat64 returns an f64-precision copy of an f32 dataset (widening
// is exact). The receiver is returned unchanged when already f64.
func (ds *Dataset) ToFloat64() *Dataset {
	if ds.Coords32 == nil {
		return ds
	}
	coords := make([]float64, len(ds.Coords32))
	for i, x := range ds.Coords32 {
		coords[i] = float64(x)
	}
	return &Dataset{Coords: coords, N: ds.N, Dim: ds.Dim}
}

// row64 returns the float64 row of point i, capacity-clipped. Callers
// must know the dataset is f64 (the kernels branch on Coords32 first).
func (ds *Dataset) row64(i int32) []float64 {
	o := int(i) * ds.Dim
	return ds.Coords[o : o+ds.Dim : o+ds.Dim]
}

// row32 returns the float32 row of point i, capacity-clipped.
func (ds *Dataset) row32(i int32) []float32 {
	o := int(i) * ds.Dim
	return ds.Coords32[o : o+ds.Dim : o+ds.Dim]
}

// PackRows copies row-slice points into a fresh flat Dataset, checking
// only the shape (non-empty, rectangular, d >= 1). Callers that need the
// NaN/Inf guarantee use FromRows, or run Validate once on the result —
// the split lets the clustering entry points avoid scanning the
// coordinates twice.
func PackRows(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("geom: empty dataset")
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	coords := make([]float64, 0, len(rows)*d)
	for i, p := range rows {
		if len(p) != d {
			return nil, fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(p), d)
		}
		coords = append(coords, p...)
	}
	return &Dataset{Coords: coords, N: len(rows), Dim: d}, nil
}

// FromRows copies row-slice points into a fresh flat Dataset — the one
// copy the public [][]float64 API pays to enter the flat representation.
// It validates the rows like ValidateDataset (rectangular, d >= 1, no
// NaN/Inf).
func FromRows(rows [][]float64) (*Dataset, error) {
	ds, err := PackRows(rows)
	if err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// MustFromRows is FromRows for callers with known-good data (tests,
// generators); it panics on invalid input.
func MustFromRows(rows [][]float64) *Dataset {
	ds, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return ds
}

// At returns point i as a float64 row. On the default f64 precision it
// is a zero-copy subslice of the backing array with the capacity
// clipped to Dim, so an append through the returned slice can never
// bleed into the next point. On an f32 dataset it allocates a widened
// copy (widening is exact) — correct everywhere, but hot per-point code
// should use the Idx kernels or AtBuf instead.
func (ds *Dataset) At(i int) Point {
	if ds.Coords32 != nil {
		return ds.widen(i, make(Point, ds.Dim))
	}
	o := i * ds.Dim
	return ds.Coords[o : o+ds.Dim : o+ds.Dim]
}

// AtBuf is At reusing buf (when it has capacity Dim) for the widened
// row of an f32 dataset; on f64 datasets it returns the zero-copy view
// and ignores buf. The returned slice aliases the dataset on f64 and
// buf on f32 — callers that loop must not hold rows across iterations.
func (ds *Dataset) AtBuf(i int, buf Point) Point {
	if ds.Coords32 != nil {
		if cap(buf) < ds.Dim {
			buf = make(Point, ds.Dim)
		}
		return ds.widen(i, buf[:ds.Dim])
	}
	o := i * ds.Dim
	return ds.Coords[o : o+ds.Dim : o+ds.Dim]
}

func (ds *Dataset) widen(i int, dst Point) Point {
	row := ds.Coords32[i*ds.Dim : (i+1)*ds.Dim]
	for t, x := range row {
		dst[t] = float64(x)
	}
	return dst
}

// Len returns the number of points.
func (ds *Dataset) Len() int { return ds.N }

// Coord returns coordinate j of point i straight from the flat buffer —
// the single place that knows the row-major indexing arithmetic. On an
// f32 dataset the value is widened exactly.
func (ds *Dataset) Coord(i int32, j int) float64 {
	if ds.Coords32 != nil {
		return float64(ds.Coords32[int(i)*ds.Dim+j])
	}
	return ds.Coords[int(i)*ds.Dim+j]
}

// Rows returns zero-copy row headers over the backing array: Rows()[i]
// aliases the same memory as At(i). It exists for row-oriented consumers
// (rendering, CSV emit) at the edge of the system; algorithms should stay
// on the flat representation.
func (ds *Dataset) Rows() [][]float64 {
	rows := make([][]float64, ds.N)
	for i := range rows {
		rows[i] = ds.At(i)
	}
	return rows
}

// Select gather-copies the given point indices into a new compact
// Dataset, preserving order and precision. Used when an algorithm
// re-indexes a subset of points into its own dense id space.
func (ds *Dataset) Select(ids []int32) *Dataset {
	if ds.Coords32 != nil {
		coords := make([]float32, 0, len(ids)*ds.Dim)
		for _, id := range ids {
			coords = append(coords, ds.row32(id)...)
		}
		return &Dataset{Coords32: coords, N: len(ids), Dim: ds.Dim}
	}
	coords := make([]float64, 0, len(ids)*ds.Dim)
	for _, id := range ids {
		coords = append(coords, ds.At(int(id))...)
	}
	return &Dataset{Coords: coords, N: len(ids), Dim: ds.Dim}
}

// Validate checks that the dataset is non-empty, at least 1-dimensional,
// and free of NaN/Inf coordinates — the flat counterpart of
// ValidateDataset.
func (ds *Dataset) Validate() error {
	if ds.N == 0 {
		return fmt.Errorf("geom: empty dataset")
	}
	if ds.Dim == 0 {
		return fmt.Errorf("geom: zero-dimensional point at index 0")
	}
	if ds.Coords32 != nil {
		if ds.Coords != nil {
			return fmt.Errorf("geom: dataset has both float64 and float32 backing arrays")
		}
		if len(ds.Coords32) != ds.N*ds.Dim {
			return fmt.Errorf("geom: dataset has %d coords, want %d (N=%d, Dim=%d)", len(ds.Coords32), ds.N*ds.Dim, ds.N, ds.Dim)
		}
		for o, x := range ds.Coords32 {
			if v := float64(x); math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("geom: point %d coordinate %d is %v", o/ds.Dim, o%ds.Dim, v)
			}
		}
		return nil
	}
	if len(ds.Coords) != ds.N*ds.Dim {
		return fmt.Errorf("geom: dataset has %d coords, want %d (N=%d, Dim=%d)", len(ds.Coords), ds.N*ds.Dim, ds.N, ds.Dim)
	}
	for o, x := range ds.Coords {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("geom: point %d coordinate %d is %v", o/ds.Dim, o%ds.Dim, x)
		}
	}
	return nil
}

// Bounds returns the minimum bounding rectangle of the dataset.
// It panics when the dataset is empty.
func (ds *Dataset) Bounds() Rect {
	if ds.N == 0 {
		panic("geom: Bounds of empty point set")
	}
	r := EmptyRect(ds.Dim)
	buf := make(Point, ds.Dim)
	for i := 0; i < ds.N; i++ {
		r.Expand(ds.AtBuf(i, buf))
	}
	return r
}

// Fingerprint returns a 64-bit FNV-1a hash over the dataset's shape and
// the exact bit patterns of its coordinates. Two datasets fingerprint
// equally iff they are bit-identical (same precision, same bits), so
// the persistence layer uses it to pair a model snapshot with the
// dataset it was fitted on and to detect a preloaded dataset that
// matches a restored one. The f64 hash is unchanged from before the
// f32 mode existed, so snapshots taken then still verify; an f32
// dataset mixes a precision tag first so it can never collide with the
// f64 dataset holding the same widened values.
func (ds *Dataset) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	if ds.Coords32 != nil {
		mix('f'<<8 | '3'<<16 | '2'<<24)
		mix(uint64(ds.N))
		mix(uint64(ds.Dim))
		for _, x := range ds.Coords32 {
			mix(uint64(math.Float32bits(x)))
		}
		return h
	}
	mix(uint64(ds.N))
	mix(uint64(ds.Dim))
	for _, x := range ds.Coords {
		mix(math.Float64bits(x))
	}
	return h
}
