package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromRowsBasics(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	ds, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 3 || ds.Dim != 3 || len(ds.Coords) != 9 {
		t.Fatalf("got N=%d Dim=%d len=%d", ds.N, ds.Dim, len(ds.Coords))
	}
	for i, row := range rows {
		for j, v := range row {
			if ds.At(i)[j] != v {
				t.Fatalf("At(%d)[%d] = %v, want %v", i, j, ds.At(i)[j], v)
			}
		}
	}
	// FromRows copies: mutating the source rows must not affect the dataset.
	rows[0][0] = 999
	if ds.At(0)[0] == 999 {
		t.Error("FromRows aliased the source rows")
	}
}

func TestFromRowsErrors(t *testing.T) {
	cases := [][][]float64{
		nil,
		{},
		{{}},
		{{1, 2}, {3}},
		{{1, math.NaN()}},
		{{math.Inf(1), 1}},
	}
	for i, rows := range cases {
		if _, err := FromRows(rows); err == nil {
			t.Errorf("case %d: invalid rows accepted", i)
		}
	}
}

func TestAtAliasing(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 2}, {3, 4}})
	// At returns a view: writes through it hit the backing array.
	ds.At(1)[0] = 42
	if ds.Coords[2] != 42 {
		t.Errorf("At is not a zero-copy view: Coords[2] = %v", ds.Coords[2])
	}
	// The view's capacity is clipped: append must not bleed into point 2.
	ds2 := MustFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	row := ds2.At(0)
	_ = append(row, 777)
	if ds2.At(1)[0] == 777 {
		t.Error("append through At bled into the next point")
	}
	// Rows()[i] aliases At(i).
	rows := ds2.Rows()
	rows[2][1] = -1
	if ds2.At(2)[1] != -1 {
		t.Error("Rows does not alias the backing array")
	}
}

func TestNewDatasetPanics(t *testing.T) {
	for _, tc := range []struct {
		coords []float64
		dim    int
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{1}, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewDataset(%v, %d) did not panic", tc.coords, tc.dim)
				}
			}()
			NewDataset(tc.coords, tc.dim)
		}()
	}
}

func TestSelect(t *testing.T) {
	ds := MustFromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	sub := ds.Select([]int32{3, 1})
	if sub.N != 2 || sub.Dim != 2 {
		t.Fatalf("Select shape N=%d Dim=%d", sub.N, sub.Dim)
	}
	if sub.At(0)[0] != 3 || sub.At(1)[0] != 1 {
		t.Errorf("Select order wrong: %v", sub.Coords)
	}
	// Select copies.
	sub.At(0)[0] = -5
	if ds.At(3)[0] == -5 {
		t.Error("Select aliased the parent dataset")
	}
}

// TestIdxKernelsMatchSliceOracle checks the flat-index kernels against the
// slice-based SqDist/SqDistPartial on random data: identical inputs must
// give bit-identical outputs, since both iterate dimensions in order.
func TestIdxKernelsMatchSliceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 8} {
		rows := make([][]float64, 64)
		for i := range rows {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.NormFloat64() * 100
			}
			rows[i] = p
		}
		ds := MustFromRows(rows)
		for trial := 0; trial < 200; trial++ {
			i := int32(rng.Intn(len(rows)))
			j := int32(rng.Intn(len(rows)))
			want := SqDist(rows[i], rows[j])
			if got := SqDistIdx(ds, i, j); got != want {
				t.Fatalf("d=%d: SqDistIdx(%d,%d) = %v, want %v", d, i, j, got, want)
			}
			if got := DistIdx(ds, i, j); got != math.Sqrt(want) {
				t.Fatalf("d=%d: DistIdx(%d,%d) = %v", d, i, j, got)
			}
			limit := rng.Float64() * 2 * want
			wantS, wantOK := SqDistPartial(rows[i], rows[j], limit)
			gotS, gotOK := SqDistIdxPartial(ds, i, j, limit)
			if gotS != wantS || gotOK != wantOK {
				t.Fatalf("d=%d: SqDistIdxPartial(%d,%d,%v) = (%v,%v), want (%v,%v)",
					d, i, j, limit, gotS, gotOK, wantS, wantOK)
			}
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	if err := MustFromRows([][]float64{{1, 2}}).Validate(); err != nil {
		t.Errorf("valid dataset rejected: %v", err)
	}
	bad := []*Dataset{
		{},
		{Coords: []float64{1}, N: 1, Dim: 0},
		{Coords: []float64{1, 2, 3}, N: 2, Dim: 2},
		{Coords: []float64{1, math.NaN()}, N: 1, Dim: 2},
		{Coords: []float64{math.Inf(-1), 0}, N: 1, Dim: 2},
	}
	for i, ds := range bad {
		if err := ds.Validate(); err == nil {
			t.Errorf("case %d: invalid dataset accepted", i)
		}
	}
}

func TestDatasetBounds(t *testing.T) {
	ds := MustFromRows([][]float64{{1, 7}, {-2, 5}, {4, 6}})
	r := ds.Bounds()
	if r.Lo[0] != -2 || r.Lo[1] != 5 || r.Up[0] != 4 || r.Up[1] != 7 {
		t.Errorf("Bounds = %+v", r)
	}
	want := Bounds(ds.Rows())
	for j := range want.Lo {
		if r.Lo[j] != want.Lo[j] || r.Up[j] != want.Up[j] {
			t.Error("Dataset.Bounds disagrees with slice Bounds")
		}
	}
}
