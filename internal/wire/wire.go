// Package wire is the binary columnar codec for the dpcd serving hot
// path: a length-prefixed frame format carrying raw little-endian
// coordinate columns and label runs, so /v1/assign and /v1/assign/stream
// can skip JSON float parsing entirely — the dominant per-point cost of
// the text protocol. Both request directions of the streaming endpoint
// and the batch endpoint speak it under the media type
// "application/x-dpc-frame" (content negotiation lives in the service
// layer; this package only defines the bytes).
//
// One frame, little-endian:
//
//	magic      uint32  "DPCF"
//	version    uint8   format version (currently 1)
//	kind       uint8   1=header 2=points 3=labels 4=summary 5=error
//	                   6=decision
//	flags      uint8   bit0: float32 coordinates (points frames only)
//	reserved   uint8   must be 0
//	payloadLen uint32  bytes that follow, <= MaxPayload
//	payload    ...
//
// Payloads by kind:
//
//	header   dataset str, algorithm str, dcut f64, rho_min f64,
//	         delta_min f64, epsilon f64, seed i64
//	points   n u32, dim u32, n*dim coordinates (f64, or f32 widened
//	         losslessly to f64 on decode)
//	labels   n u32, n labels i32
//	summary  points i64, chunks i64, clusters u32, cache_hit u8
//	error    message str
//	decision n u32, n ids i32, n rho f64, n delta f64 (columnar)
//
// str is u32 length + bytes. A request stream is one header frame then
// any number of points frames; a response stream is any number of labels
// frames terminated by exactly one summary (success) or error frame.
// Every declared length — the payload length, string lengths, element
// counts — is validated against the bytes actually present before
// anything is allocated, the same hostile-input discipline as the DPS1
// snapshot codec in internal/persist.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/api"
	"repro/internal/geom"
)

// ContentType is the media type both directions of the frame protocol
// are served under.
const ContentType = "application/x-dpc-frame"

const (
	frameMagic   = uint32(0x46435044) // "DPCF" on the wire
	frameVersion = byte(1)

	// frameHeaderSize is the fixed prefix of every frame.
	frameHeaderSize = 12

	// MaxPayload caps one frame's payload so a hostile length field can
	// cost at most this much memory before the truncation error fires.
	// Encoders chunk larger point sets across frames.
	MaxPayload = 32 << 20

	// maxDim mirrors the dimensionality cap of the other binary decoders
	// (data.LoadBinary, persist): beyond it the header is corrupt, not a
	// dataset.
	maxDim = 1 << 20

	// maxNameLen bounds the header frame's name strings.
	maxNameLen = 1 << 12
)

// Frame kinds.
const (
	KindHeader  = byte(1)
	KindPoints  = byte(2)
	KindLabels  = byte(3)
	KindSummary = byte(4)
	KindError   = byte(5)
	// KindDecision carries decision-graph points — the binary response
	// body of GET /v1/decision-graph, for plotting clients that want the
	// (rho, delta) columns without JSON float parsing.
	KindDecision = byte(6)
)

// FlagFloat32 marks a points frame whose coordinates are float32 on the
// wire; decoding widens them losslessly to float64.
const FlagFloat32 = byte(1)

// Header is the decoded header frame: the (dataset, algorithm, params)
// triple that names the model, mirroring the JSON FitRequest.
type Header struct {
	Dataset   string
	Algorithm string
	DCut      float64
	RhoMin    float64
	DeltaMin  float64
	Epsilon   float64
	Seed      int64
}

// Summary is the decoded terminal summary frame of a successful stream.
type Summary struct {
	Points   int64
	Chunks   int64
	Clusters int
	CacheHit bool
}

// Frame is one decoded frame. Kind selects which fields are set.
type Frame struct {
	Kind    byte
	Header  Header    // KindHeader
	N, Dim  int       // KindPoints
	Coords  []float64 // KindPoints: N*Dim row-major values, f32 widened unless the reader keeps f32
	Float32 bool      // KindPoints: coordinates were float32 on the wire
	Labels  []int32   // KindLabels
	Summary Summary   // KindSummary
	ErrMsg  string    // KindError

	// Coords32 holds the raw float32 coordinates of a FlagFloat32 points
	// frame when the decoding Reader runs in keep-f32 mode (see
	// Reader.Keep32). Exactly one of Coords and Coords32 is non-nil for a
	// non-empty points frame; float64 frames always decode into Coords.
	Coords32 []float32

	// Decision holds KindDecision points in the frame's order (the
	// encoder preserves the caller's, conventionally descending delta).
	Decision []api.DecisionPoint
}

// Row returns points-frame row i as a view into Coords (no copy).
func (f *Frame) Row(i int) []float64 {
	return f.Coords[i*f.Dim : (i+1)*f.Dim : (i+1)*f.Dim]
}

// ---------------------------------------------------------------------------
// Encoding. All encoders append to dst and return the extended slice, so
// hot loops can reuse one buffer across frames.

// beginFrame appends a frame header with a zero payload length;
// endFrame patches the length in once the payload has been appended.
func beginFrame(dst []byte, kind, flags byte) (out []byte, mark int) {
	mark = len(dst)
	out = appendU32(dst, frameMagic)
	out = append(out,
		frameVersion, kind, flags, 0,
		0, 0, 0, 0, // payloadLen, patched by endFrame
	)
	return out, mark
}

func endFrame(dst []byte, mark int) []byte {
	payload := len(dst) - mark - frameHeaderSize
	binary.LittleEndian.PutUint32(dst[mark+8:], uint32(payload))
	return dst
}

func appendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func appendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }
func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

// AppendHeader appends one header frame.
func AppendHeader(dst []byte, h Header) []byte {
	dst, mark := beginFrame(dst, KindHeader, 0)
	dst = appendStr(dst, h.Dataset)
	dst = appendStr(dst, h.Algorithm)
	for _, v := range [...]float64{h.DCut, h.RhoMin, h.DeltaMin, h.Epsilon} {
		dst = appendU64(dst, math.Float64bits(v))
	}
	dst = appendU64(dst, uint64(h.Seed))
	return endFrame(dst, mark)
}

// AppendPointsFlat appends one points frame holding n = len(coords)/dim
// row-major points. With float32 set, coordinates are narrowed to f32 on
// the wire (halving bytes; only lossless if the values round-trip —
// see the README's guidance). len(coords) must be a multiple of dim and
// the frame must fit MaxPayload; violating either is a caller bug.
func AppendPointsFlat(dst []byte, coords []float64, dim int, float32w bool) []byte {
	n := 0
	if dim > 0 {
		n = len(coords) / dim
	}
	if n*dim != len(coords) {
		panic("wire: coords length is not a multiple of dim")
	}
	esize := 8
	flags := byte(0)
	if float32w {
		esize, flags = 4, FlagFloat32
	}
	if 8+len(coords)*esize > MaxPayload {
		panic("wire: points frame exceeds MaxPayload; chunk it")
	}
	dst, mark := beginFrame(dst, KindPoints, flags)
	dst = appendU32(dst, uint32(n))
	dst = appendU32(dst, uint32(dim))
	if float32w {
		for _, v := range coords {
			dst = appendU32(dst, math.Float32bits(float32(v)))
		}
	} else {
		for _, v := range coords {
			dst = appendU64(dst, math.Float64bits(v))
		}
	}
	return endFrame(dst, mark)
}

// AppendPointsFlat32 appends one FlagFloat32 points frame straight from
// float32 storage — the encoder a float32 dataset uses so its exact
// values hit the wire with no widen/narrow round trip. Constraints
// mirror AppendPointsFlat.
func AppendPointsFlat32(dst []byte, coords []float32, dim int) []byte {
	n := 0
	if dim > 0 {
		n = len(coords) / dim
	}
	if n*dim != len(coords) {
		panic("wire: coords length is not a multiple of dim")
	}
	if 8+len(coords)*4 > MaxPayload {
		panic("wire: points frame exceeds MaxPayload; chunk it")
	}
	dst, mark := beginFrame(dst, KindPoints, FlagFloat32)
	dst = appendU32(dst, uint32(n))
	dst = appendU32(dst, uint32(dim))
	for _, v := range coords {
		dst = appendU32(dst, math.Float32bits(v))
	}
	return endFrame(dst, mark)
}

// AppendPointsRows is AppendPointsFlat for row-slice points; all rows
// must share one width.
func AppendPointsRows(dst []byte, rows [][]float64, float32w bool) []byte {
	if len(rows) == 0 {
		return AppendPointsFlat(dst, nil, 0, float32w)
	}
	dim := len(rows[0])
	flat := make([]float64, 0, len(rows)*dim)
	for _, r := range rows {
		if len(r) != dim {
			panic("wire: ragged rows in one points frame")
		}
		flat = append(flat, r...)
	}
	return AppendPointsFlat(dst, flat, dim, float32w)
}

// AppendLabels appends one labels frame.
func AppendLabels(dst []byte, labels []int32) []byte {
	dst, mark := beginFrame(dst, KindLabels, 0)
	dst = appendU32(dst, uint32(len(labels)))
	for _, l := range labels {
		dst = appendU32(dst, uint32(l))
	}
	return endFrame(dst, mark)
}

// AppendSummary appends the terminal summary frame.
func AppendSummary(dst []byte, s Summary) []byte {
	dst, mark := beginFrame(dst, KindSummary, 0)
	dst = appendU64(dst, uint64(s.Points))
	dst = appendU64(dst, uint64(s.Chunks))
	dst = appendU32(dst, uint32(s.Clusters))
	hit := byte(0)
	if s.CacheHit {
		hit = 1
	}
	dst = append(dst, hit)
	return endFrame(dst, mark)
}

// AppendError appends the terminal error frame.
func AppendError(dst []byte, msg string) []byte {
	if len(msg) > MaxPayload/2 {
		msg = msg[:MaxPayload/2]
	}
	dst, mark := beginFrame(dst, KindError, 0)
	dst = appendStr(dst, msg)
	return endFrame(dst, mark)
}

// maxDecisionPerFrame keeps one decision frame (4-byte count plus 20
// bytes per point, columnar) under MaxPayload.
const maxDecisionPerFrame = (MaxPayload - 4) / 20

// AppendDecision appends pts as one or more decision frames, chunked so
// each frame respects MaxPayload, preserving order across frames.
func AppendDecision(dst []byte, pts []api.DecisionPoint) []byte {
	for {
		chunk := pts
		if len(chunk) > maxDecisionPerFrame {
			chunk = chunk[:maxDecisionPerFrame]
		}
		var mark int
		dst, mark = beginFrame(dst, KindDecision, 0)
		dst = appendU32(dst, uint32(len(chunk)))
		for _, p := range chunk {
			dst = appendU32(dst, uint32(p.ID))
		}
		for _, p := range chunk {
			dst = appendU64(dst, math.Float64bits(p.Rho))
		}
		for _, p := range chunk {
			dst = appendU64(dst, math.Float64bits(p.Delta))
		}
		dst = endFrame(dst, mark)
		pts = pts[len(chunk):]
		if len(pts) == 0 {
			return dst
		}
	}
}

// ---------------------------------------------------------------------------
// Decoding.

// payloadDecoder walks one payload with a sticky error; every read is
// bounds-checked against the bytes remaining before allocating.
type payloadDecoder struct {
	b   []byte
	err error
}

func (d *payloadDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *payloadDecoder) need(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.b) < n {
		d.fail("wire: truncated payload: need %d bytes, have %d", n, len(d.b))
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *payloadDecoder) u32() uint32 {
	b := d.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *payloadDecoder) u64() uint64 {
	b := d.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *payloadDecoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *payloadDecoder) str() string {
	n := d.u32()
	if d.err == nil && n > maxNameLen {
		d.fail("wire: string length %d exceeds limit %d", n, maxNameLen)
	}
	return string(d.need(int(n)))
}

func (d *payloadDecoder) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(d.b))
	}
	return nil
}

// parseFrameHeader validates the 12-byte prefix and returns (kind,
// flags, payloadLen).
func parseFrameHeader(b []byte) (kind, flags byte, payloadLen int, err error) {
	if m := binary.LittleEndian.Uint32(b); m != frameMagic {
		return 0, 0, 0, fmt.Errorf("wire: bad magic %#x", m)
	}
	if b[4] != frameVersion {
		return 0, 0, 0, fmt.Errorf("wire: unsupported frame version %d (want %d)", b[4], frameVersion)
	}
	kind, flags = b[5], b[6]
	if kind < KindHeader || kind > KindDecision {
		return 0, 0, 0, fmt.Errorf("wire: unknown frame kind %d", kind)
	}
	if flags&^FlagFloat32 != 0 {
		return 0, 0, 0, fmt.Errorf("wire: unknown flags %#x", flags)
	}
	if flags != 0 && kind != KindPoints {
		return 0, 0, 0, fmt.Errorf("wire: flags %#x on non-points frame kind %d", flags, kind)
	}
	if b[7] != 0 {
		return 0, 0, 0, fmt.Errorf("wire: nonzero reserved byte %d", b[7])
	}
	declared := binary.LittleEndian.Uint32(b[8:])
	if declared > MaxPayload {
		return 0, 0, 0, fmt.Errorf("wire: declared payload of %d bytes exceeds the %d limit", declared, MaxPayload)
	}
	return kind, flags, int(declared), nil
}

// decodePayload decodes one validated payload into a Frame. With keep32
// set, FlagFloat32 points frames decode into Frame.Coords32 instead of
// widening to float64 — the path a float32 dataset upload takes so the
// narrow representation survives the wire end to end.
func decodePayload(kind, flags byte, payload []byte, keep32 bool) (*Frame, error) {
	f := &Frame{Kind: kind}
	d := &payloadDecoder{b: payload}
	switch kind {
	case KindHeader:
		f.Header.Dataset = d.str()
		f.Header.Algorithm = d.str()
		f.Header.DCut = d.f64()
		f.Header.RhoMin = d.f64()
		f.Header.DeltaMin = d.f64()
		f.Header.Epsilon = d.f64()
		f.Header.Seed = int64(d.u64())
	case KindPoints:
		n := d.u32()
		dim := d.u32()
		esize := uint64(8)
		if flags&FlagFloat32 != 0 {
			f.Float32 = true
			esize = 4
		}
		if d.err == nil {
			if dim == 0 && n > 0 {
				d.fail("wire: zero-dimensional points")
			}
			if dim > maxDim {
				d.fail("wire: implausible dimensionality %d (max %d)", dim, maxDim)
			}
			// The element count must match the payload exactly; checked
			// before the coordinate slice is allocated, so a forged count
			// costs nothing. Products stay in uint64: both factors < 2^32.
			if want := uint64(n) * uint64(dim) * esize; d.err == nil && want != uint64(len(d.b)) {
				d.fail("wire: %dx%d points declare %d payload bytes, frame holds %d", n, dim, want, len(d.b))
			}
		}
		if d.err == nil {
			f.N, f.Dim = int(n), int(dim)
			switch {
			case f.Float32 && keep32:
				f.Coords32 = make([]float32, int(n)*int(dim))
				for i := range f.Coords32 {
					f.Coords32[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[4*i:]))
				}
			case f.Float32:
				f.Coords = make([]float64, int(n)*int(dim))
				for i := range f.Coords {
					f.Coords[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(d.b[4*i:])))
				}
			default:
				f.Coords = make([]float64, int(n)*int(dim))
				for i := range f.Coords {
					f.Coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[8*i:]))
				}
			}
			d.b = nil
		}
	case KindLabels:
		n := d.u32()
		if d.err == nil && uint64(n)*4 != uint64(len(d.b)) {
			d.fail("wire: %d labels declare %d payload bytes, frame holds %d", n, 4*n, len(d.b))
		}
		if d.err == nil {
			f.Labels = make([]int32, n)
			for i := range f.Labels {
				f.Labels[i] = int32(binary.LittleEndian.Uint32(d.b[4*i:]))
			}
			d.b = nil
		}
	case KindSummary:
		f.Summary.Points = int64(d.u64())
		f.Summary.Chunks = int64(d.u64())
		f.Summary.Clusters = int(int32(d.u32()))
		b := d.need(1)
		if b != nil {
			switch b[0] {
			case 0:
			case 1:
				f.Summary.CacheHit = true
			default:
				d.fail("wire: cache_hit byte %d is not 0 or 1", b[0])
			}
		}
	case KindError:
		f.ErrMsg = d.str()
	case KindDecision:
		n := d.u32()
		if d.err == nil && uint64(n)*20 != uint64(len(d.b)) {
			d.fail("wire: %d decision points declare %d payload bytes, frame holds %d", n, 20*n, len(d.b))
		}
		if d.err == nil {
			f.Decision = make([]api.DecisionPoint, n)
			ids, rhos := d.b, d.b[4*n:]
			deltas := rhos[8*n:]
			for i := range f.Decision {
				f.Decision[i] = api.DecisionPoint{
					ID:    int32(binary.LittleEndian.Uint32(ids[4*i:])),
					Rho:   math.Float64frombits(binary.LittleEndian.Uint64(rhos[8*i:])),
					Delta: math.Float64frombits(binary.LittleEndian.Uint64(deltas[8*i:])),
				}
			}
			d.b = nil
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// DecodeFrame decodes the first frame of raw and returns it plus the
// remaining bytes. It is total: corrupt, truncated, or hostile inputs
// return an error without panicking or allocating beyond the input size.
func DecodeFrame(raw []byte) (*Frame, []byte, error) {
	if len(raw) < frameHeaderSize {
		return nil, nil, fmt.Errorf("wire: truncated frame: %d bytes is shorter than the %d-byte frame header", len(raw), frameHeaderSize)
	}
	kind, flags, payloadLen, err := parseFrameHeader(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(raw)-frameHeaderSize < payloadLen {
		return nil, nil, fmt.Errorf("wire: truncated frame: declared payload of %d bytes, %d present", payloadLen, len(raw)-frameHeaderSize)
	}
	f, err := decodePayload(kind, flags, raw[frameHeaderSize:frameHeaderSize+payloadLen], false)
	if err != nil {
		return nil, nil, err
	}
	return f, raw[frameHeaderSize+payloadLen:], nil
}

// Reader decodes a frame stream incrementally: one frame per Next call,
// never holding more than one frame's payload in memory.
type Reader struct {
	r      io.Reader
	keep32 bool
	hdr    [frameHeaderSize]byte
}

// NewReader wraps r. Callers on the HTTP path hand it a bufio.Reader;
// the Reader itself issues only exact-size reads.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Keep32 switches the reader into keep-f32 mode: FlagFloat32 points
// frames decode into Frame.Coords32 without widening. It returns the
// reader for chaining. Float64 frames are unaffected.
func (r *Reader) Keep32(on bool) *Reader {
	r.keep32 = on
	return r
}

// Next returns the next frame. io.EOF is returned only at a clean frame
// boundary; a stream that ends inside a frame is a truncation error, so
// a dead upstream can never be mistaken for a finished stream.
func (r *Reader) Next() (*Frame, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: truncated frame header: %w", err)
	}
	kind, flags, payloadLen, err := parseFrameHeader(r.hdr[:])
	if err != nil {
		return nil, err
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r.r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame payload: %w", err)
	}
	return decodePayload(kind, flags, payload, r.keep32)
}

// ReadHeaderFrame reads exactly one frame from br, requires it to be a
// header frame, and returns both the decoded header and the raw frame
// bytes — the relay uses the raw bytes to reassemble the stream for the
// owning shard without re-encoding anything.
func ReadHeaderFrame(br *bufio.Reader) (Header, []byte, error) {
	raw := make([]byte, frameHeaderSize)
	if _, err := io.ReadFull(br, raw); err != nil {
		return Header{}, nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	kind, flags, payloadLen, err := parseFrameHeader(raw)
	if err != nil {
		return Header{}, nil, err
	}
	if kind != KindHeader {
		return Header{}, nil, fmt.Errorf("wire: stream must open with a header frame, got kind %d", kind)
	}
	raw = append(raw, make([]byte, payloadLen)...)
	if _, err := io.ReadFull(br, raw[frameHeaderSize:]); err != nil {
		return Header{}, nil, fmt.Errorf("wire: truncated header frame: %w", err)
	}
	f, err := decodePayload(kind, flags, raw[frameHeaderSize:], false)
	if err != nil {
		return Header{}, nil, err
	}
	return f.Header, raw, nil
}

// PeekDataset extracts the dataset name from a buffered frame-codec
// request body by decoding only the leading header frame — the binary
// analogue of the router's JSON peek; point frames are never touched.
func PeekDataset(body []byte) (string, error) {
	f, _, err := DecodeFrame(body)
	if err != nil {
		return "", err
	}
	if f.Kind != KindHeader {
		return "", fmt.Errorf("wire: request must open with a header frame, got kind %d", f.Kind)
	}
	return f.Header.Dataset, nil
}

// ReadDataset decodes an upload body — one or more points frames, all of
// one width — into a float64 dataset, widening f32 frames losslessly.
// The per-frame payload cap bounds each allocation; the caller bounds
// the body as a whole.
func ReadDataset(r io.Reader) (*geom.Dataset, error) {
	return ReadDataset32(r, false)
}

// ReadDataset32 is ReadDataset with an explicit target precision. With
// f32 set the dataset is stored as float32: FlagFloat32 frames keep
// their exact wire values (no widening round trip), and float64 frames
// are narrowed — lossy for values that do not round-trip, which is the
// caller's explicit choice by requesting f32. With f32 unset it behaves
// exactly like ReadDataset.
func ReadDataset32(r io.Reader, f32 bool) (*geom.Dataset, error) {
	fr := NewReader(bufio.NewReaderSize(r, 64<<10)).Keep32(f32)
	var (
		coords   []float64
		coords32 []float32
	)
	dim := -1
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if f.Kind != KindPoints {
			return nil, fmt.Errorf("wire: dataset upload must contain only points frames, got kind %d", f.Kind)
		}
		if f.N == 0 {
			continue
		}
		if dim == -1 {
			dim = f.Dim
		} else if f.Dim != dim {
			return nil, fmt.Errorf("wire: points frame has dimension %d, previous frames %d", f.Dim, dim)
		}
		if !f32 {
			coords = append(coords, f.Coords...)
			continue
		}
		if f.Coords32 != nil {
			coords32 = append(coords32, f.Coords32...)
		} else {
			for _, v := range f.Coords {
				coords32 = append(coords32, float32(v))
			}
		}
	}
	if dim <= 0 {
		return &geom.Dataset{}, nil
	}
	if f32 {
		return geom.NewDataset32(coords32, dim), nil
	}
	return geom.NewDataset(coords, dim), nil
}

// EncodePoints writes pts as chunked points frames until next returns
// io.EOF — the producer half of a binary assign stream, fed to one end
// of an io.Pipe whose other end is the client. chunk <= 0 picks a
// default that keeps frames well under MaxPayload at any sane width.
func EncodePoints(w io.Writer, next func() ([]float64, error), chunk int, float32w bool) error {
	if chunk <= 0 {
		chunk = 8192
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var (
		flat []float64
		dim  = -1
		buf  []byte
	)
	flush := func() error {
		if len(flat) == 0 {
			return nil
		}
		buf = AppendPointsFlat(buf[:0], flat, dim, float32w)
		flat = flat[:0]
		_, err := bw.Write(buf)
		return err
	}
	for {
		pt, err := next()
		if err == io.EOF {
			if err := flush(); err != nil {
				return err
			}
			return bw.Flush()
		}
		if err != nil {
			return err
		}
		if dim == -1 {
			dim = len(pt)
		} else if len(pt) != dim {
			return fmt.Errorf("wire: point has dimension %d, stream started with %d", len(pt), dim)
		}
		flat = append(flat, pt...)
		if dim > 0 && len(flat)/dim >= chunk {
			if err := flush(); err != nil {
				return err
			}
		}
	}
}

// Tracker follows frame boundaries in a byte stream without decoding
// payloads — the relay hop runs every forwarded byte through one so
// that, if the owner dies mid-stream, it knows whether a terminal error
// frame can legally be appended (only at a boundary; bytes welded onto a
// torn frame would corrupt the stream instead of explaining it).
type Tracker struct {
	have int // frame-header bytes collected so far
	need int // payload bytes still expected for the current frame
	hdr  [frameHeaderSize]byte
}

// Consume advances the tracker over p. It never validates — a corrupt
// stream makes boundary tracking meaningless anyway, and validation is
// the endpoints' job.
func (t *Tracker) Consume(p []byte) {
	for len(p) > 0 {
		if t.need > 0 {
			n := min(t.need, len(p))
			t.need -= n
			p = p[n:]
			continue
		}
		n := copy(t.hdr[t.have:], p)
		t.have += n
		p = p[n:]
		if t.have == frameHeaderSize {
			t.have = 0
			t.need = int(binary.LittleEndian.Uint32(t.hdr[8:]))
		}
	}
}

// AtBoundary reports whether every byte consumed so far forms whole
// frames.
func (t *Tracker) AtBoundary() bool { return t.have == 0 && t.need == 0 }
