package wire

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Dataset: "s2", Algorithm: "Ex-DPC",
		DCut: 2500, RhoMin: 5, DeltaMin: 12000, Epsilon: 0.5, Seed: -3,
	}
	raw := AppendHeader(nil, h)
	f, rest, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
	if f.Kind != KindHeader || f.Header != h {
		t.Fatalf("decoded %+v, want %+v", f.Header, h)
	}
}

func TestPointsRoundTrip(t *testing.T) {
	coords := []float64{1.5, -2.25, math.Pi, 0, 1e300, -1e-300}
	raw := AppendPointsFlat(nil, coords, 2, false)
	f, _, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindPoints || f.N != 3 || f.Dim != 2 || f.Float32 {
		t.Fatalf("frame = %+v", f)
	}
	for i, v := range coords {
		if f.Coords[i] != v {
			t.Fatalf("coord %d: %v != %v", i, f.Coords[i], v)
		}
	}
	if row := f.Row(1); row[0] != math.Pi || row[1] != 0 {
		t.Fatalf("Row(1) = %v", row)
	}
}

// Float32 frames halve the bytes; decoding must widen losslessly (every
// float32 is exactly representable as a float64).
func TestPointsFloat32(t *testing.T) {
	coords := []float64{1.5, -2.25, 100, 0.1}
	raw64 := AppendPointsFlat(nil, coords, 2, false)
	raw32 := AppendPointsFlat(nil, coords, 2, true)
	if want := len(raw64) - 8 - len(coords)*4; len(raw32)-8 != want {
		t.Fatalf("float32 frame is %d bytes, want %d", len(raw32), want+8)
	}
	f, _, err := DecodeFrame(raw32)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Float32 {
		t.Fatal("Float32 flag lost")
	}
	for i, v := range coords {
		if want := float64(float32(v)); f.Coords[i] != want {
			t.Fatalf("coord %d: %v, want widened %v", i, f.Coords[i], want)
		}
	}
	// 0.1 is not float32-representable: the round trip must show the
	// documented narrowing, not silently equal the original.
	if f.Coords[3] == 0.1 {
		t.Fatal("0.1 survived a float32 round trip; the test premise is wrong")
	}
}

func TestLabelsSummaryErrorRoundTrip(t *testing.T) {
	labels := []int32{0, -1, 5, 1 << 30}
	sum := Summary{Points: 1 << 40, Chunks: 3, Clusters: 7, CacheHit: true}
	var raw []byte
	raw = AppendLabels(raw, labels)
	raw = AppendSummary(raw, sum)
	raw = AppendError(raw, "boom")

	f, rest, err := DecodeFrame(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindLabels || len(f.Labels) != len(labels) {
		t.Fatalf("labels frame = %+v", f)
	}
	for i := range labels {
		if f.Labels[i] != labels[i] {
			t.Fatalf("label %d: %d != %d", i, f.Labels[i], labels[i])
		}
	}
	f, rest, err = DecodeFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindSummary || f.Summary != sum {
		t.Fatalf("summary = %+v, want %+v", f.Summary, sum)
	}
	f, rest, err = DecodeFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != KindError || f.ErrMsg != "boom" {
		t.Fatalf("error frame = %+v", f)
	}
	if len(rest) != 0 {
		t.Fatalf("%d leftover bytes", len(rest))
	}
}

func TestReaderStream(t *testing.T) {
	var raw []byte
	raw = AppendHeader(raw, Header{Dataset: "d", Algorithm: "Ex-DPC"})
	raw = AppendPointsFlat(raw, []float64{1, 2, 3, 4}, 2, false)
	raw = AppendPointsFlat(raw, nil, 0, false)
	r := NewReader(bytes.NewReader(raw))
	kinds := []byte{}
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, f.Kind)
	}
	if want := []byte{KindHeader, KindPoints, KindPoints}; !bytes.Equal(kinds, want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
}

// A stream ending inside a frame must be a truncation error, never a
// clean io.EOF — the client relies on this to detect a dead upstream.
func TestReaderTruncation(t *testing.T) {
	raw := AppendPointsFlat(nil, []float64{1, 2, 3, 4}, 2, false)
	for _, cut := range []int{1, frameHeaderSize - 1, frameHeaderSize + 3, len(raw) - 1} {
		r := NewReader(bytes.NewReader(raw[:cut]))
		_, err := r.Next()
		if err == nil || err == io.EOF || !strings.Contains(err.Error(), "truncated") {
			t.Errorf("cut at %d: err = %v, want truncation error", cut, err)
		}
	}
	// Clean boundary: io.EOF exactly.
	r := NewReader(bytes.NewReader(raw))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("at boundary: err = %v, want io.EOF", err)
	}
}

func TestDecodeRejectsHostileInputs(t *testing.T) {
	good := AppendLabels(nil, []int32{1, 2, 3})
	cases := map[string]func([]byte) []byte{
		"bad magic":       func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version":     func(b []byte) []byte { b[4] = 9; return b },
		"bad kind":        func(b []byte) []byte { b[5] = 99; return b },
		"bad flags":       func(b []byte) []byte { b[6] = 0x80; return b },
		"flags on labels": func(b []byte) []byte { b[6] = FlagFloat32; return b },
		"reserved":        func(b []byte) []byte { b[7] = 1; return b },
		"huge payload": func(b []byte) []byte {
			b[8], b[9], b[10], b[11] = 0xff, 0xff, 0xff, 0x7f
			return b
		},
		"count/size mismatch": func(b []byte) []byte { b[frameHeaderSize]++; return b },
	}
	for name, corrupt := range cases {
		b := corrupt(append([]byte(nil), good...))
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: decoded successfully", name)
		}
	}
	// Points-specific: n*dim overflowing the payload must fail before
	// allocation.
	pts := AppendPointsFlat(nil, []float64{1, 2}, 2, false)
	pts[frameHeaderSize] = 0xff // n = 255, payload holds 1 point
	if _, _, err := DecodeFrame(pts); err == nil {
		t.Error("forged point count decoded successfully")
	}
	hdr := AppendHeader(nil, Header{Dataset: "d"})
	hdr[frameHeaderSize] = 0xff // dataset length 255 > payload
	if _, _, err := DecodeFrame(hdr); err == nil {
		t.Error("forged string length decoded successfully")
	}
}

func TestReadHeaderFrameAndPeek(t *testing.T) {
	h := Header{Dataset: "ds-7", Algorithm: "Approx-DPC", DCut: 1}
	var raw []byte
	raw = AppendHeader(raw, h)
	raw = AppendPointsFlat(raw, []float64{1, 2}, 2, false)

	br := bufio.NewReader(bytes.NewReader(raw))
	got, hdrRaw, err := ReadHeaderFrame(br)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	// The raw bytes plus the unread remainder must reassemble the stream.
	rest, _ := io.ReadAll(br)
	if !bytes.Equal(append(hdrRaw, rest...), raw) {
		t.Fatal("raw header + remainder != original stream")
	}

	name, err := PeekDataset(raw)
	if err != nil || name != "ds-7" {
		t.Fatalf("PeekDataset = %q, %v", name, err)
	}
	if _, err := PeekDataset(AppendLabels(nil, nil)); err == nil {
		t.Error("PeekDataset accepted a non-header leading frame")
	}
	if _, _, err := ReadHeaderFrame(bufio.NewReader(bytes.NewReader(raw[frameHeaderSize+4:]))); err == nil {
		t.Error("ReadHeaderFrame accepted a stream not opening with a header frame")
	}
}

func TestReadDataset(t *testing.T) {
	var raw []byte
	raw = AppendPointsFlat(raw, []float64{1, 2, 3, 4}, 2, false)
	raw = AppendPointsFlat(raw, []float64{5, 6}, 2, false)
	ds, err := ReadDataset(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 3 || ds.Dim != 2 || ds.Coords[4] != 5 {
		t.Fatalf("dataset = %dx%d %v", ds.N, ds.Dim, ds.Coords)
	}
	// Width disagreement across frames is an error.
	bad := append(append([]byte(nil), raw...), AppendPointsFlat(nil, []float64{7, 8, 9}, 3, false)...)
	if _, err := ReadDataset(bytes.NewReader(bad)); err == nil {
		t.Error("mixed-width frames accepted")
	}
	// Non-points frames are rejected.
	if _, err := ReadDataset(bytes.NewReader(AppendHeader(nil, Header{}))); err == nil {
		t.Error("header frame accepted as dataset upload")
	}
}

func TestEncodePointsChunks(t *testing.T) {
	pts := make([][]float64, 10)
	for i := range pts {
		pts[i] = []float64{float64(i), float64(-i)}
	}
	i := 0
	next := func() ([]float64, error) {
		if i == len(pts) {
			return nil, io.EOF
		}
		i++
		return pts[i-1], nil
	}
	var buf bytes.Buffer
	if err := EncodePoints(&buf, next, 4, false); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got [][]float64
	frames := 0
	for {
		f, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames++
		for j := 0; j < f.N; j++ {
			got = append(got, f.Row(j))
		}
	}
	if frames != 3 { // 4+4+2
		t.Errorf("chunked into %d frames, want 3", frames)
	}
	if len(got) != len(pts) {
		t.Fatalf("%d points decoded, want %d", len(got), len(pts))
	}
	for i := range pts {
		if got[i][0] != pts[i][0] || got[i][1] != pts[i][1] {
			t.Fatalf("point %d: %v != %v", i, got[i], pts[i])
		}
	}
}

func TestTracker(t *testing.T) {
	var raw []byte
	raw = AppendHeader(raw, Header{Dataset: "d"})
	raw = AppendPointsFlat(raw, []float64{1, 2, 3, 4}, 2, false)
	raw = AppendLabels(raw, []int32{1})

	// Whole stream in one write: boundary.
	var tr Tracker
	tr.Consume(raw)
	if !tr.AtBoundary() {
		t.Error("full stream not at boundary")
	}
	// Byte-at-a-time: boundary only at frame edges.
	tr = Tracker{}
	boundaries := 0
	for _, b := range raw {
		tr.Consume([]byte{b})
		if tr.AtBoundary() {
			boundaries++
		}
	}
	if boundaries != 3 {
		t.Errorf("%d boundaries seen, want 3", boundaries)
	}
	// Torn mid-frame: not at boundary.
	tr = Tracker{}
	tr.Consume(raw[:len(raw)-2])
	if tr.AtBoundary() {
		t.Error("torn stream reported a boundary")
	}
}
