package wire

import (
	"bytes"
	"testing"
)

// FuzzDecodeFrame guards the binary wire decoder the same way
// FuzzDecodeSnapshot guards snapshot restores: arbitrary byte streams
// must decode or error, never panic or allocate past the input size, and
// an accepted frame must be internally consistent and re-encode to the
// exact bytes it was decoded from (float64 frames; float32 frames widen,
// so their canonical re-encode narrows back instead).
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendHeader(nil, Header{
		Dataset: "s2", Algorithm: "Ex-DPC",
		DCut: 2500, RhoMin: 5, DeltaMin: 12000, Epsilon: 0.5, Seed: 7,
	}))
	pts64 := AppendPointsFlat(nil, []float64{1.5, -2.25, 3, 4}, 2, false)
	pts32 := AppendPointsFlat(nil, []float64{1.5, -2.25, 3, 4}, 2, true)
	f.Add(pts64)
	f.Add(pts32)
	f.Add(AppendLabels(nil, []int32{0, -1, 7}))
	f.Add(AppendSummary(nil, Summary{Points: 9, Chunks: 2, Clusters: 3, CacheHit: true}))
	f.Add(AppendError(nil, "shard died"))
	f.Add(pts64[:frameHeaderSize-1])                       // torn header
	f.Add(pts64[:len(pts64)-3])                            // torn payload
	f.Add(append(append([]byte(nil), pts64...), pts32...)) // multi-frame
	f.Add([]byte("DPCF but not really a frame"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		fr, rest, err := DecodeFrame(raw)
		if err != nil {
			return
		}
		consumed := raw[:len(raw)-len(rest)]
		switch fr.Kind {
		case KindHeader:
			if re := AppendHeader(nil, fr.Header); !bytes.Equal(re, consumed) {
				t.Fatal("accepted header frame did not re-encode canonically")
			}
		case KindPoints:
			if fr.N*fr.Dim != len(fr.Coords) {
				t.Fatalf("inconsistent points frame: %dx%d with %d coords", fr.N, fr.Dim, len(fr.Coords))
			}
			if fr.N > 0 && fr.Dim == 0 {
				t.Fatal("zero-dimensional points accepted")
			}
			// Float32 payloads widen on decode; narrowing back must be
			// byte-exact because widening is lossless.
			if re := AppendPointsFlat(nil, fr.Coords, fr.Dim, fr.Float32); !bytes.Equal(re, consumed) {
				t.Fatal("accepted points frame did not re-encode canonically")
			}
		case KindLabels:
			if re := AppendLabels(nil, fr.Labels); !bytes.Equal(re, consumed) {
				t.Fatal("accepted labels frame did not re-encode canonically")
			}
		case KindSummary:
			if re := AppendSummary(nil, fr.Summary); !bytes.Equal(re, consumed) {
				t.Fatal("accepted summary frame did not re-encode canonically")
			}
		case KindError:
			if re := AppendError(nil, fr.ErrMsg); !bytes.Equal(re, consumed) {
				t.Fatal("accepted error frame did not re-encode canonically")
			}
		default:
			t.Fatalf("decoded unknown kind %d", fr.Kind)
		}
	})
}
