package core

import (
	"math"
	"sort"
	"sync"

	"repro/internal/geom"
	"repro/internal/partition"
)

// finalize performs the steps every algorithm shares after rho/delta/dep
// are known: noise detection, cluster-center selection (Definitions 4-5),
// and label propagation along the dependency forest (§2.2 step 4).
//
// Labels are assigned by memoized chain following rather than the simpler
// descending-density sweep because S-Approx-DPC lets a non-picked point
// depend on a picked point of *lower* density; chain following handles
// both shapes in O(n).
func finalize(res *Result, p Params) {
	n := len(res.Rho)
	res.Labels = make([]int32, n)
	const unknown = int32(-2)
	for i := range res.Labels {
		res.Labels[i] = unknown
	}

	// Centers in ascending point-index order so cluster ids are stable
	// across algorithms that agree on the center set (Theorem 4 checks).
	res.Centers = res.Centers[:0]
	for i := 0; i < n; i++ {
		if res.Rho[i] >= p.RhoMin && res.Delta[i] >= p.DeltaMin {
			res.Labels[i] = int32(len(res.Centers))
			res.Centers = append(res.Centers, int32(i))
		}
	}
	for i := 0; i < n; i++ {
		if res.Rho[i] < p.RhoMin {
			res.Labels[i] = NoCluster // noise overrides everything
		}
	}

	// Propagate: each unknown point inherits the label at the end of its
	// dependency chain. Paths are written back so total work is O(n).
	var path []int32
	for i := 0; i < n; i++ {
		if res.Labels[i] != unknown {
			continue
		}
		path = path[:0]
		cur := int32(i)
		for res.Labels[cur] == unknown {
			path = append(path, cur)
			nxt := res.Dep[cur]
			if nxt < 0 || len(path) > n {
				// Headless chain (a density peak that is not a center, or a
				// defensive cycle guard): everything on it is unclustered.
				res.Labels[cur] = NoCluster
				break
			}
			cur = nxt
		}
		l := res.Labels[cur]
		for _, q := range path {
			res.Labels[q] = l
		}
	}
}

// densityOrder returns point indices sorted by descending rho (ties —
// impossible after jitter, but harmless — break on ascending index).
// Every algorithm that scans "points with higher density" uses this
// order. The comparator is a strict total order, so the sorted
// permutation is unique and the parallel chunk-sort + pairwise-merge
// below returns byte-identical output for every worker count.
func densityOrder(rho []float64, workers int) []int32 {
	n := len(rho)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	less := func(a, b int32) bool {
		if rho[a] != rho[b] {
			return rho[a] > rho[b]
		}
		return a < b
	}
	if workers <= 1 || n < 1<<14 {
		sort.Slice(order, func(x, y int) bool { return less(order[x], order[y]) })
		return order
	}

	// Sort `workers` contiguous chunks concurrently…
	step := (n + workers - 1) / workers
	bounds := make([]int, 0, workers+1)
	for lo := 0; lo < n; lo += step {
		bounds = append(bounds, lo)
	}
	bounds = append(bounds, n)
	var wg sync.WaitGroup
	for c := 0; c+1 < len(bounds); c++ {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := order[lo:hi]
			sort.Slice(s, func(x, y int) bool { return less(s[x], s[y]) })
		}(bounds[c], bounds[c+1])
	}
	wg.Wait()

	// …then merge adjacent runs pairwise until one remains, ping-ponging
	// between the two buffers.
	buf := make([]int32, n)
	src, dst := order, buf
	for len(bounds) > 2 {
		nb := make([]int, 0, len(bounds)/2+2)
		var mg sync.WaitGroup
		for c := 0; c+2 < len(bounds); c += 2 {
			lo, mid, hi := bounds[c], bounds[c+1], bounds[c+2]
			nb = append(nb, lo)
			mg.Add(1)
			go func(lo, mid, hi int) {
				defer mg.Done()
				mergeRuns(dst[lo:hi], src[lo:mid], src[mid:hi], less)
			}(lo, mid, hi)
		}
		if len(bounds)%2 == 0 {
			// Odd run count: the last run has no partner this round.
			lo, hi := bounds[len(bounds)-2], bounds[len(bounds)-1]
			nb = append(nb, lo)
			copy(dst[lo:hi], src[lo:hi])
		}
		nb = append(nb, n)
		mg.Wait()
		bounds = nb
		src, dst = dst, src
	}
	return src
}

// mergeRuns merges two sorted runs into dst (len(dst) == len(a)+len(b)).
func mergeRuns(dst, a, b []int32, less func(x, y int32) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// scanDelta computes exact dependent points the straightforward way
// (§2.2 step 3): sort by descending density, then for the point of rank r
// scan the r points of higher density for the nearest one. Shared by Scan,
// R-tree+Scan, and CFSFDP-A (the paper swaps CFSFDP-A's own quadratic
// dependent-distance step for this one). Parallelized per point with
// dynamic scheduling; cost grows with rank, which static partitioning
// would balance poorly.
func scanDelta(ds *geom.Dataset, rho []float64, workers int) (delta []float64, dep []int32) {
	n := ds.N
	delta = make([]float64, n)
	dep = make([]int32, n)
	order := densityOrder(rho, workers)
	peak := order[0]
	delta[peak] = math.Inf(1)
	dep[peak] = NoDependent
	partition.DynamicChunked(n-1, workers, 8, func(k int) {
		r := k + 1 // rank in the density order
		i := order[r]
		bestSq := math.Inf(1)
		best := NoDependent
		for _, j := range order[:r] {
			if s, ok := geom.SqDistIdxPartial(ds, i, j, bestSq); ok && s < bestSq {
				bestSq = s
				best = j
			}
		}
		delta[i] = math.Sqrt(bestSq)
		dep[i] = best
	})
	return delta, dep
}

// DecisionPoint is one (rho, delta) pair of the decision graph (Figure 1).
type DecisionPoint struct {
	ID    int32
	Rho   float64
	Delta float64
}

// DecisionGraph returns the decision-graph points sorted by descending
// delta (infinite deltas first), the form users inspect to pick RhoMin and
// DeltaMin.
func DecisionGraph(res *Result) []DecisionPoint {
	out := make([]DecisionPoint, len(res.Rho))
	for i := range out {
		out[i] = DecisionPoint{ID: int32(i), Rho: res.Rho[i], Delta: res.Delta[i]}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Delta > out[b].Delta })
	return out
}

// SuggestDeltaMin proposes a delta_min that separates the k points of
// largest dependent distance (the presumed centers) from the rest, by
// taking the midpoint of the largest-relative gap boundary. Points below
// rhoMin are ignored, mirroring how an analyst reads the decision graph.
// It returns (suggestion, ok); ok is false when fewer than k+1 eligible
// points exist.
func SuggestDeltaMin(res *Result, k int, rhoMin float64) (float64, bool) {
	var deltas []float64
	for i := range res.Delta {
		if res.Rho[i] >= rhoMin {
			deltas = append(deltas, res.Delta[i])
		}
	}
	if len(deltas) <= k || k < 1 {
		return 0, false
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(deltas)))
	hi, lo := deltas[k-1], deltas[k]
	if math.IsInf(hi, 1) {
		// All top-k are infinite; any finite threshold above lo works.
		return lo * 2, true
	}
	return (hi + lo) / 2, true
}
